// Shared scaffolding for the paper-figure bench binaries.
//
// Every binary regenerates one table or figure from the paper's
// evaluation section and prints (a) the measured rows and (b) the paper's
// reported values where the paper gives them, so shape agreement can be
// checked at a glance. Common flags:
//   --scale=<f>   shrink input sizes (default 1.0 = paper sizes)
//   --quick       equivalent to --scale=0.25
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "kernels/benchmark.hpp"
#include "kernels/reference_kernels.hpp"
#include "kernels/suite.hpp"
#include "np/autotuner.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace cudanp::bench {

struct BenchOptions {
  double scale = 1.0;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0)
        opt.scale = std::atof(argv[i] + 8);
      else if (std::strcmp(argv[i], "--quick") == 0)
        opt.scale = 0.25;
      else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--scale=<f>] [--quick]\n", argv[0]);
        std::exit(0);
      }
    }
    return opt;
  }
};

inline void print_header(const char* figure, const char* claim,
                         const BenchOptions& opt) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Device model: GTX 680 (GK104) simulator; scale=%.2f\n",
              opt.scale);
  std::printf("==============================================================\n\n");
}

/// Autotunes one benchmark and returns the result (validating outputs).
inline np::TuneResult tune_benchmark(const kernels::Benchmark& bench,
                                     const sim::DeviceSpec& spec,
                                     np::TuneOptions opts = {}) {
  np::Autotuner tuner{np::Runner(spec)};
  return tuner.tune(bench.kernel(), [&] { return bench.make_workload(); },
                    opts);
}

/// Runs one kernel (no NP) and returns simulated seconds.
inline double run_baseline_seconds(const kernels::Benchmark& bench,
                                   const sim::DeviceSpec& spec) {
  np::Runner runner(spec);
  auto w = bench.make_workload();
  auto r =
      runner.execute(np::ExecutionRequest::baseline(bench.kernel(), w)).run;
  std::string msg;
  if (w.validate && !w.validate(*w.mem, &msg))
    throw SimError(bench.name() + " failed validation: " + msg);
  return r.timing.seconds;
}

inline std::string fmt(double v, int digits = 3) {
  return format_double(v, digits);
}

}  // namespace cudanp::bench
