// Figure 15: comparing the three ways to re-home a live local-memory
// array (paper Sec. 3.3) on LE and LIB, the two benchmarks where all
// three apply.
//
// Paper: global memory does not help (off-chip vs L1-cached local);
// shared memory helps LIB but hurts LE (LE's array is ~2x larger, so the
// shared-memory pressure kills occupancy); the register-file partition is
// best for both.
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 15: local-array placement (speedup over baseline, best "
      "slave size per placement)",
      "register > shared (helps LIB, hurts LE) > global",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  np::Runner runner(spec);
  Table table({"benchmark", "placement", "best speedup", "best config",
               "notes"});

  for (const char* name : {"LE", "LIB"}) {
    auto bench = kernels::make_benchmark(name, opt.scale);
    double baseline = bench::run_baseline_seconds(*bench, spec);
    auto probe = bench->make_workload();
    int master = static_cast<int>(probe.launch.block.count());

    for (auto placement :
         {transform::LocalPlacement::kRegister,
          transform::LocalPlacement::kShared,
          transform::LocalPlacement::kGlobal}) {
      double best = 0;
      std::string best_cfg = "(none applicable)";
      std::string note;
      for (auto type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
        for (int s : {2, 4, 8, 16}) {
          transform::NpConfig cfg;
          cfg.np_type = type;
          cfg.slave_size = s;
          cfg.master_count = master;
          cfg.placement = placement;
          try {
            auto variant = np::NpCompiler::transform(bench->kernel(), cfg);
            auto w = bench->make_workload();
            auto run =
                runner.execute(np::ExecutionRequest::transformed(variant, w))
                    .run;
            std::string msg;
            if (w.validate && !w.validate(*w.mem, &msg))
              throw SimError(msg);
            double sp = baseline / run.timing.seconds;
            if (sp > best) {
              best = sp;
              best_cfg = cfg.describe();
            }
          } catch (const CompileError& e) {
            note = e.what();
          } catch (const SimError& e) {
            note = e.what();
          }
        }
      }
      table.add_row({name, transform::to_string(placement),
                     best > 0 ? bench::fmt(best, 3) + "x" : "-", best_cfg,
                     best > 0 ? "" : note.substr(0, 48)});
      std::fflush(stdout);
    }
  }
  table.print(std::cout);
  return 0;
}
