// Figure 12: padding vs no-padding on LE (inter-warp NP).
//
// LE's loop count is 150. Power-of-two slave counts require padding the
// loop to a multiple of the group size, which adds idle guarded
// iterations; slave counts that divide 150 exactly (3, 5, 10, 15) need no
// padding. The paper compares adjacent pairs (2P vs 3NP, 4P vs 5NP,
// 8P vs 10NP, 16P vs 15NP) and finds no-padding always wins; the best
// no-padding version reaches 2.25x over baseline.
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 12: impact of padding on LE (inter-warp NP, loop count 150)",
      "no-padding (slave counts dividing 150) beats padding at comparable "
      "slave counts; best version 2.25x over baseline",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  auto bench = kernels::make_benchmark("LE", opt.scale);
  double baseline = bench::run_baseline_seconds(*bench, spec);
  np::Runner runner(spec);

  auto measure = [&](int slave, bool pad) -> double {
    transform::NpConfig cfg;
    cfg.np_type = ir::NpType::kInterWarp;
    cfg.slave_size = slave;
    cfg.master_count = 32;
    cfg.pad_loops = pad;
    auto variant = np::NpCompiler::transform(bench->kernel(), cfg);
    auto w = bench->make_workload();
    auto run =
        runner.execute(np::ExecutionRequest::transformed(variant, w)).run;
    std::string msg;
    if (w.validate && !w.validate(*w.mem, &msg))
      throw SimError("LE validation failed: " + msg);
    return baseline / run.timing.seconds;
  };

  Table table({"pair", "padded (P)", "speedup", "no padding (NP)",
               "speedup", "NP wins?"});
  struct Pair {
    int padded;
    int unpadded;
  };
  // The paper's comparable-slave-count pairs.
  const Pair pairs[] = {{2, 3}, {4, 5}, {8, 10}, {16, 15}};
  double best = 0;
  for (const auto& p : pairs) {
    double sp_p = measure(p.padded, /*pad=*/true);
    double sp_np = measure(p.unpadded, /*pad=*/false);
    best = std::max({best, sp_p, sp_np});
    table.add_row({std::to_string(p.padded) + "P vs " +
                       std::to_string(p.unpadded) + "NP",
                   std::to_string(p.padded) + " slaves (pad 150->" +
                       std::to_string((150 + p.padded - 1) / p.padded *
                                      p.padded) +
                       ")",
                   bench::fmt(sp_p, 3) + "x",
                   std::to_string(p.unpadded) + " slaves",
                   bench::fmt(sp_np, 3) + "x",
                   sp_np > sp_p ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("\nbest LE speedup over baseline: %.2fx (paper: 2.25x)\n",
              best);
  return 0;
}
