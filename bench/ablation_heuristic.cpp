// Ablation: how much of the exhaustive auto-tuner's benefit does the
// paper's Sec.-6 heuristic (static coalescing/divergence analysis +
// "3 or 7 slaves") capture, at zero tuning cost?
//
// The paper argues the search space is small enough to tune
// exhaustively; this ablation quantifies the alternative it sketches.
#include <vector>

#include "bench_common.hpp"
#include "np/heuristic.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Ablation: static heuristic pick vs exhaustive auto-tuning",
      "Sec. 6: coalescing/divergence decide inter vs intra; 3 or 7 "
      "slaves are close-to-optimal",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  np::Runner runner(spec);
  Table table({"Name", "heuristic pick", "rationale", "heuristic speedup",
               "exhaustive best", "captured"});
  std::vector<double> captured;

  for (auto& b : kernels::make_benchmark_suite(opt.scale)) {
    auto probe = b->make_workload();
    int master = static_cast<int>(probe.launch.block.count());
    auto choice = np::suggest_config(b->kernel(), master, spec);

    double heuristic_speedup = 0;
    std::string note;
    try {
      auto variant = np::NpCompiler::transform(b->kernel(), choice.config);
      auto w = b->make_workload();
      auto run =
          runner.execute(np::ExecutionRequest::transformed(variant, w)).run;
      std::string msg;
      if (w.validate && !w.validate(*w.mem, &msg)) throw SimError(msg);
      double baseline = bench::run_baseline_seconds(*b, spec);
      heuristic_speedup = baseline / run.timing.seconds;
    } catch (const std::exception& e) {
      note = e.what();
    }

    auto tune = bench::tune_benchmark(*b, spec);
    double best = tune.best_speedup();
    double frac = best > 0 ? heuristic_speedup / best : 0;
    captured.push_back(std::max(frac, 1e-6));
    table.add_row({b->name(), choice.config.describe(),
                   choice.rationale.substr(0, 44),
                   heuristic_speedup > 0
                       ? bench::fmt(heuristic_speedup, 3) + "x"
                       : note.substr(0, 24),
                   bench::fmt(best, 3) + "x",
                   bench::fmt(100 * frac, 3) + "%"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nGM of captured fraction: %.1f%% — a single static pick vs %s\n",
      100 * geometric_mean(captured),
      "testing every version on the simulator (the paper's approach).");
  return 0;
}
