// Table 1: benchmark characteristics and per-thread resource usage for
// the baseline (BL) and the best CUDA-NP version (OPT).
//
// Columns mirror the paper: PL (number of parallel loops), LC (largest
// loop count), R/S (reduction / scan / neither), and REG/SM/LM bytes per
// thread. Absolute register counts come from our estimator, not ptxas,
// so they track the paper's relative story (which resource limits TLP and
// how CUDA-NP shifts it) rather than its exact numbers.
#include "analysis/resources.hpp"
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table 1: benchmark characteristics (PL, LC, R/S) and bytes per "
      "thread",
      "small loop counts; LE/LIB/CFD local-memory heavy, LU/MV/SS/BK "
      "shared-memory heavy; CUDA-NP shifts local arrays out of local "
      "memory",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  Table table({"Name", "PL", "LC", "R/S", "BL REG B", "BL SM B", "BL LM B",
               "OPT REG B", "OPT SM B", "OPT LM B", "best config"});

  for (auto& bench_ptr : kernels::make_benchmark_suite(opt.scale)) {
    auto& b = *bench_ptr;
    auto row = b.table1();
    auto bl = analysis::estimate_resources(b.kernel(), spec);
    auto workload = b.make_workload();
    int master = static_cast<int>(workload.launch.block.count());

    // Tune and measure the winner's resources.
    auto tune = bench::tune_benchmark(b, spec);
    std::string cfg_text = "(baseline)";
    analysis::ResourceEstimate optr = bl;
    std::int64_t opt_smem_per_block = bl.usage.shared_mem_per_block;
    int opt_threads = master;
    if (tune.best_config()) {
      auto variant = np::NpCompiler::transform(b.kernel(),
                                               *tune.best_config());
      optr = analysis::estimate_resources(*variant.kernel, spec);
      opt_smem_per_block = optr.usage.shared_mem_per_block;
      opt_threads = tune.best_config()->block_threads();
      cfg_text = tune.best_config()->describe();
    }
    table.add_row(
        {b.name(), std::to_string(row.parallel_loops),
         std::to_string(row.max_loop_count), row.reduce_scan,
         std::to_string(bl.usage.registers_per_thread * 4),
         std::to_string(master > 0 ? bl.usage.shared_mem_per_block / master
                                   : 0),
         std::to_string(bl.usage.local_mem_per_thread),
         std::to_string(optr.usage.registers_per_thread * 4),
         std::to_string(opt_threads > 0 ? opt_smem_per_block / opt_threads
                                        : 0),
         std::to_string(optr.usage.local_mem_per_thread), cfg_text});
  }
  table.print(std::cout);
  std::printf(
      "\nPaper Table 1 (for comparison): LE BL LM=600->OPT 24; LIB BL "
      "LM=960->640(global)/0(reg); TMV BL SM=0 -> OPT 4 B/thread; shared-"
      "memory-bound benchmarks (LU/MV/SS/BK) shrink SM per thread.\n");
  return 0;
}
