// Figure 13: TMV on GTX 680 for matrices with variable widths and a
// constant height (2K), against the CUBLAS-style library kernel.
//
// Paper: the baseline performs like CUBLAS; CUDA-NP is significantly
// faster everywhere, and most dramatically at small widths where the
// baseline cannot fill the SMXs — 4.9x over CUBLAS at width 1K.
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 13: TMV vs CUBLAS-style gemv-T across widths (height 2K)",
      "baseline ~ CUBLAS; CUDA-NP wins everywhere, up to 4.9x over CUBLAS "
      "at width 1K where baseline TLP is lowest",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  const int height = static_cast<int>(2048 * opt.scale) / 32 * 32;
  Table table({"width", "baseline us", "cublas us", "CUDA-NP us",
               "NP vs baseline", "NP vs cublas"});

  // Paper Sec. 6: "using 3 or 7 slave threads achieves close-to-optimal
  // performance for all benchmarks" — the sweep here tunes over the
  // nearby power-of-two sizes to keep the width sweep fast.
  np::TuneOptions tune_opts;
  for (auto type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
    for (int s : {4, 8, 16}) {
      transform::NpConfig cfg;
      cfg.np_type = type;
      cfg.slave_size = s;
      cfg.master_count = 32;
      tune_opts.configs.push_back(cfg);
    }
  }

  for (int width : {512, 1024, 2048, 4096, 8192}) {
    int w = std::max(static_cast<int>(width * opt.scale) / 128 * 128, 128);
    auto baseline = kernels::make_tmv(w, height);
    auto cublas = kernels::make_tmv_cublas(w, height);
    double base_s = bench::run_baseline_seconds(*baseline, spec);
    double cublas_s = bench::run_baseline_seconds(*cublas, spec);
    auto tune = bench::tune_benchmark(*baseline, spec, tune_opts);
    double np_s = tune.best_seconds();
    table.add_row({std::to_string(w), bench::fmt(base_s * 1e6, 4),
                   bench::fmt(cublas_s * 1e6, 4), bench::fmt(np_s * 1e6, 4),
                   bench::fmt(base_s / np_s, 3) + "x",
                   bench::fmt(cublas_s / np_s, 3) + "x"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
