// Figure 14: MV on GTX 680 for matrices with variable heights and a
// constant width (2K), against the CUBLAS-style gemv-N and the SMM [42]
// reference.
//
// Paper: CUDA-NP always outperforms both SMM and CUBLAS; the height sets
// the baseline's total thread count, so small heights favor CUDA-NP most.
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 14: MV vs CUBLAS-style gemv-N and SMM across heights "
      "(width 2K)",
      "CUDA-NP > SMM > CUBLAS across all heights",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  const int width = std::max(static_cast<int>(2048 * opt.scale) / 32 * 32, 64);
  Table table({"height", "baseline us", "cublas us", "SMM us", "CUDA-NP us",
               "NP vs cublas", "NP vs SMM"});

  // Restricted tuning (see fig13: the paper reports 3/7 slaves are
  // close-to-optimal everywhere).
  np::TuneOptions tune_opts;
  for (auto type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
    for (int s : {4, 8, 16}) {
      transform::NpConfig cfg;
      cfg.np_type = type;
      cfg.slave_size = s;
      cfg.master_count = 32;
      tune_opts.configs.push_back(cfg);
    }
  }

  for (int height : {1024, 4096, 16384, 65536}) {
    int h = std::max(static_cast<int>(height * opt.scale) / 256 * 256, 256);
    auto baseline = kernels::make_mv(width, h);
    auto cublas = kernels::make_mv_cublas(width, h);
    auto smm = kernels::make_mv_smm(width, h);
    double base_s = bench::run_baseline_seconds(*baseline, spec);
    double cublas_s = bench::run_baseline_seconds(*cublas, spec);
    double smm_s = bench::run_baseline_seconds(*smm, spec);
    auto tune = bench::tune_benchmark(*baseline, spec, tune_opts);
    double np_s = tune.best_seconds();
    table.add_row({std::to_string(h), bench::fmt(base_s * 1e6, 4),
                   bench::fmt(cublas_s * 1e6, 4), bench::fmt(smm_s * 1e6, 4),
                   bench::fmt(np_s * 1e6, 4),
                   bench::fmt(cublas_s / np_s, 3) + "x",
                   bench::fmt(smm_s / np_s, 3) + "x"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
