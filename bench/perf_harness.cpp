// Perf-regression harness for the simulator host path.
//
// Times parse -> transform -> simulate for the paper benchmark suite at
// jobs=1 (serial) and jobs=N (parallel grid execution, see
// docs/performance.md), cross-checks that the two runs produce
// bit-identical stats, timing and output buffers, and writes a machine-
// readable BENCH_perf.json so CI can track host wall-clock regressions.
//
// Every benchmark is additionally run serially under both block engines
// (the AST walker and the bytecode VM, see docs/performance.md); the
// per-engine wall-clocks land as columns in the report and the two
// engines' stats, modeled timing and output buffers must be
// bit-identical or the harness fails.
//
// Note the distinction from the fig*_ benches: those report *modeled GPU
// time* (sim seconds), which is independent of the jobs count by
// construction. This harness reports *host wall-clock* of the simulator
// itself, which is what the parallel scheduler improves.
//
//   perf_harness [--scale=<f>] [--jobs=<n>] [--reps=<n>]
//                [--engine=auto|ast|vm|check] [--benchmarks=A,B,...]
//                [--out=<file>]
//
// --engine selects the engine for the serial-vs-parallel determinism
// runs (auto defers to CUDANP_ENGINE, then the VM); the AST-vs-VM
// comparison columns always measure both engines explicitly.
//
// Exit status: 0 on success, 1 on usage errors, 2 when the serial and
// parallel runs disagree or the engines diverge (determinism
// regression).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kernels/benchmark.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"

using namespace cudanp;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct HarnessOptions {
  double scale = 0.25;
  int jobs = 8;
  int reps = 3;
  std::string engine = "auto";
  std::vector<std::string> benchmarks;  // empty = whole suite
  std::string out = "BENCH_perf.json";
};

bool engine_from_name(const std::string& name, sim::Engine* out) {
  if (name == "auto") *out = sim::Engine::kAuto;
  else if (name == "ast") *out = sim::Engine::kAst;
  else if (name == "vm") *out = sim::Engine::kVm;
  else if (name == "check") *out = sim::Engine::kCheck;
  else return false;
  return true;
}

HarnessOptions parse_args(int argc, char** argv) {
  HarnessOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      opt.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      opt.jobs = std::atoi(a + 7);
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      opt.reps = std::max(1, std::atoi(a + 7));
    } else if (std::strncmp(a, "--benchmarks=", 13) == 0) {
      std::stringstream ss(a + 13);
      std::string name;
      while (std::getline(ss, name, ','))
        if (!name.empty()) opt.benchmarks.push_back(name);
    } else if (std::strncmp(a, "--engine=", 9) == 0) {
      opt.engine = a + 9;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      opt.out = a + 6;
    } else {
      std::fprintf(stderr,
                   "usage: perf_harness [--scale=<f>] [--jobs=<n>] "
                   "[--reps=<n>] [--engine=auto|ast|vm|check] "
                   "[--benchmarks=A,B,...] [--out=<file>]\n");
      std::exit(1);
    }
  }
  sim::Engine eng;
  if (opt.scale <= 0 || opt.jobs <= 0 || !engine_from_name(opt.engine, &eng))
    std::exit(1);
  return opt;
}

bool stats_equal(const sim::KernelStats& a, const sim::KernelStats& b) {
  return a.blocks == b.blocks && a.warps == b.warps &&
         a.issue_slots == b.issue_slots &&
         a.dram_transactions == b.dram_transactions &&
         a.global_transactions == b.global_transactions &&
         a.local_transactions == b.local_transactions &&
         a.local_l1_misses == b.local_l1_misses &&
         a.smem_accesses == b.smem_accesses &&
         a.smem_replays == b.smem_replays && a.shfl_ops == b.shfl_ops &&
         a.sync_ops == b.sync_ops &&
         a.divergent_branches == b.divergent_branches &&
         a.crit_path_cycles == b.crit_path_cycles;
}

bool memories_equal(const sim::DeviceMemory& a, const sim::DeviceMemory& b) {
  if (a.buffer_count() != b.buffer_count()) return false;
  for (std::size_t i = 0; i < a.buffer_count(); ++i) {
    const auto& ba = a.buffer(static_cast<sim::BufferId>(i));
    const auto& bb = b.buffer(static_cast<sim::BufferId>(i));
    if (ba.type() != bb.type() || ba.size() != bb.size()) return false;
    if (ba.type() == ir::ScalarType::kFloat) {
      auto fa = ba.f32();
      auto fb = bb.f32();
      if (!std::equal(fa.begin(), fa.end(), fb.begin(),
                      [](float x, float y) {
                        return std::memcmp(&x, &y, sizeof(float)) == 0;
                      }))
        return false;
    } else {
      auto ia = ba.i32();
      auto ib = bb.i32();
      if (!std::equal(ia.begin(), ia.end(), ib.begin())) return false;
    }
  }
  return true;
}

struct TimedRun {
  double wall_ms = 0;  // best of reps
  sim::RunResult result;
  std::unique_ptr<sim::DeviceMemory> mem;  // from the last rep
};

/// Runs the baseline kernel `reps` times at the given job count and keeps
/// the best wall-clock plus the final state for the identity cross-check.
TimedRun timed_run(const kernels::Benchmark& bench, const ir::Kernel& kernel,
                   const sim::DeviceSpec& spec, sim::Engine engine, int jobs,
                   int reps) {
  TimedRun out;
  sim::Interpreter::Options iopt;
  iopt.jobs = jobs;
  iopt.engine = engine;
  np::Runner runner(spec, iopt);
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    np::Workload w = bench.make_workload();
    auto t0 = Clock::now();
    out.result =
        runner.execute(np::ExecutionRequest::baseline(kernel, w)).run;
    out.wall_ms = std::min(out.wall_ms, ms_since(t0));
    if (r == reps - 1) out.mem = std::move(w.mem);
  }
  return out;
}

struct Row {
  std::string name;
  double parse_ms = 0;
  double transform_ms = 0;
  std::int64_t blocks = 0;
  double ast_ms = 0;
  double vm_ms = 0;
  double engine_speedup = 0;   // ast_ms / vm_ms
  bool engines_identical = false;
  double serial_ms = 0;
  double parallel_ms = 0;
  double speedup = 0;
  bool identical = false;  // serial==parallel AND ast==vm
};

bool runs_identical(const TimedRun& a, const TimedRun& b) {
  return stats_equal(a.result.stats, b.result.stats) &&
         a.result.timing.seconds == b.result.timing.seconds &&
         memories_equal(*a.mem, *b.mem);
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions opt = parse_args(argc, argv);
  sim::Engine eng = sim::Engine::kAuto;
  (void)engine_from_name(opt.engine, &eng);

  auto spec = sim::DeviceSpec::gtx680();
  std::vector<std::unique_ptr<kernels::Benchmark>> suite;
  if (opt.benchmarks.empty()) {
    suite = kernels::make_benchmark_suite(opt.scale);
  } else {
    for (const auto& name : opt.benchmarks)
      suite.push_back(kernels::make_benchmark(name, opt.scale));
  }

  std::printf("perf_harness: %zu benchmark(s), scale=%.2f, engine=%s, "
              "jobs=1 vs %d, reps=%d (hardware_concurrency=%u)\n\n",
              suite.size(), opt.scale, opt.engine.c_str(), opt.jobs, opt.reps,
              std::thread::hardware_concurrency());
  std::printf("%-6s %9s %12s %8s %8s %8s %6s %10s %12s %8s %s\n", "name",
              "parse ms", "transform ms", "blocks", "ast ms", "vm ms", "vmx",
              "serial ms", "parallel ms", "speedup", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  for (auto& b : suite) {
    Row row;
    row.name = b->name();

    auto t0 = Clock::now();
    auto program = np::NpCompiler::parse(b->source());
    row.parse_ms = ms_since(t0);
    const ir::Kernel* kernel = program->find_kernel(b->kernel_name());
    if (!kernel) {
      std::fprintf(stderr, "perf_harness: kernel '%s' missing in %s\n",
                   b->kernel_name().c_str(), row.name.c_str());
      return 1;
    }

    np::Workload probe = b->make_workload();
    auto configs = np::NpCompiler::enumerate_configs(
        *kernel, probe.launch.block.x, spec);
    if (!configs.empty()) {
      auto t1 = Clock::now();
      try {
        (void)np::NpCompiler::transform(*kernel, configs.front());
        row.transform_ms = ms_since(t1);
      } catch (const CompileError&) {
        row.transform_ms = 0;  // config inapplicable; parse/sim still timed
      }
    }
    row.blocks = probe.launch.grid.count();

    // Engine comparison: both engines serially, bit-identity required.
    TimedRun ast =
        timed_run(*b, *kernel, spec, sim::Engine::kAst, 1, opt.reps);
    TimedRun vm = timed_run(*b, *kernel, spec, sim::Engine::kVm, 1, opt.reps);
    row.ast_ms = ast.wall_ms;
    row.vm_ms = vm.wall_ms;
    row.engine_speedup = vm.wall_ms > 0 ? ast.wall_ms / vm.wall_ms : 0;
    row.engines_identical = runs_identical(ast, vm);

    // Determinism across job counts with the selected engine.
    TimedRun serial = timed_run(*b, *kernel, spec, eng, 1, opt.reps);
    TimedRun parallel = timed_run(*b, *kernel, spec, eng, opt.jobs, opt.reps);
    row.serial_ms = serial.wall_ms;
    row.parallel_ms = parallel.wall_ms;
    row.speedup = parallel.wall_ms > 0 ? serial.wall_ms / parallel.wall_ms : 0;
    row.identical = runs_identical(serial, parallel) && row.engines_identical;
    all_identical = all_identical && row.identical;

    std::printf(
        "%-6s %9.2f %12.2f %8lld %8.2f %8.2f %5.2fx %10.2f %12.2f %7.2fx "
        "%s\n",
        row.name.c_str(), row.parse_ms, row.transform_ms,
        static_cast<long long>(row.blocks), row.ast_ms, row.vm_ms,
        row.engine_speedup, row.serial_ms, row.parallel_ms, row.speedup,
        row.identical ? "yes" : "NO");
    std::fflush(stdout);
    rows.push_back(std::move(row));
  }

  double log_sum = 0;
  int counted = 0;
  double elog_sum = 0;
  int ecounted = 0;
  for (const auto& r : rows) {
    if (r.speedup > 0) {
      log_sum += std::log(r.speedup);
      ++counted;
    }
    if (r.engine_speedup > 0) {
      elog_sum += std::log(r.engine_speedup);
      ++ecounted;
    }
  }
  double geomean = counted ? std::exp(log_sum / counted) : 0;
  double engine_geomean = ecounted ? std::exp(elog_sum / ecounted) : 0;
  std::printf("\ngeomean host speedup (jobs=%d vs serial): %.2fx\n", opt.jobs,
              geomean);
  std::printf("geomean engine speedup (vm vs ast, jobs=1): %.2fx\n",
              engine_geomean);

  std::ofstream js(opt.out);
  if (!js) {
    std::fprintf(stderr, "perf_harness: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  js << "{\n"
     << "  \"scale\": " << opt.scale << ",\n"
     << "  \"jobs\": " << opt.jobs << ",\n"
     << "  \"reps\": " << opt.reps << ",\n"
     << "  \"engine\": \"" << opt.engine << "\",\n"
     << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "  \"geomean_speedup\": " << geomean << ",\n"
     << "  \"geomean_engine_speedup\": " << engine_geomean << ",\n"
     << "  \"all_identical\": " << (all_identical ? "true" : "false") << ",\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    js << "    {\"name\": \"" << r.name << "\", \"parse_ms\": " << r.parse_ms
       << ", \"transform_ms\": " << r.transform_ms
       << ", \"blocks\": " << r.blocks << ", \"ast_ms\": " << r.ast_ms
       << ", \"vm_ms\": " << r.vm_ms
       << ", \"engine_speedup\": " << r.engine_speedup
       << ", \"engines_identical\": "
       << (r.engines_identical ? "true" : "false")
       << ", \"serial_ms\": " << r.serial_ms
       << ", \"parallel_ms\": " << r.parallel_ms
       << ", \"speedup\": " << r.speedup << ", \"identical\": "
       << (r.identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::printf("wrote %s\n", opt.out.c_str());

  return all_identical ? 0 : 2;
}
