// Section 6 (text): slowdowns of dynamic-parallelism rewrites.
//
// Paper: CDP versions of NN, TMV, LE, LIB and CFD run 28.92, 7.61,
// 13.45, 125.67 and 52.29 times slower than their baselines, because
// per-master child launches are tiny and parent->child communication must
// round-trip through global memory. (NN optimized to one launch per TB is
// still 3.25x slower.)
#include "bench_common.hpp"
#include "sim/dynpar.hpp"

using namespace cudanp;

namespace {

/// Shape parameters of a CDP rewrite: one child launch per master thread
/// executing the kernel's parallel loops, with the masters' live state
/// round-tripping through global memory.
struct CdpShape {
  const char* name;
  double paper_slowdown;
  /// Live bytes a parent must exchange with its child per launch
  /// (live-ins + live-outs + re-homed local arrays).
  std::int64_t comm_bytes;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Section 6: slowdown of dynamic-parallelism versions (K20c model)",
      "NN/TMV/LE/LIB/CFD are 28.92/7.61/13.45/125.67/52.29x slower with "
      "CDP",
      opt);

  // The paper ran CDP on the K20c (sm_35); baselines here are simulated
  // on the same device model for a like-for-like ratio.
  auto spec = sim::DeviceSpec::k20c();
  sim::DynamicParallelismModel cdp(spec);

  const CdpShape shapes[] = {
      {"NN", 28.92, 16},      // two query coords in, best distance out
      {"TMV", 7.61, 8},       // column index in, dot product out
      {"LE", 13.45, 640},     // 600 B gradient array + scalars
      {"LIB", 125.67, 1024},  // three 320 B path arrays + scalars
      {"CFD", 52.29, 48},     // cell state in, four flux sums out
  };

  Table table({"benchmark", "baseline us", "child launches", "CDP us",
               "slowdown", "paper slowdown"});
  for (const auto& s : shapes) {
    auto bench = kernels::make_benchmark(s.name, opt.scale);
    double baseline = bench::run_baseline_seconds(*bench, spec);
    auto w = bench->make_workload();
    // One child launch per master thread (the paper's straightforward
    // CDP rewrite launches a child per parent thread per parallel loop).
    std::int64_t masters = w.launch.total_threads();
    std::int64_t loops =
        static_cast<std::int64_t>(bench->kernel().parallel_loop_count());
    std::int64_t launches = masters * loops;
    double cdp_secs =
        cdp.cdp_kernel_seconds(baseline, launches, 1.0, s.comm_bytes);
    table.add_row({s.name, bench::fmt(baseline * 1e6, 4),
                   std::to_string(launches), bench::fmt(cdp_secs * 1e6, 4),
                   bench::fmt(cdp_secs / baseline, 3) + "x",
                   bench::fmt(s.paper_slowdown, 4) + "x"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nEvery CDP rewrite loses badly: the available nested parallelism "
      "(loop counts of 4-2K) is far too small to amortize child-launch "
      "overhead, which is the paper's motivating observation.\n");
  return 0;
}
