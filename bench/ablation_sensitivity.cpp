// Ablation: sensitivity of the headline result (Fig. 10's geometric-mean
// speedup) to the simulator's calibration constants.
//
// A reproduction built on a performance model owes the reader evidence
// that its conclusions do not hinge on one lucky constant. This bench
// re-runs the full suite under perturbed DRAM bandwidth, memory latency
// and per-warp MLP, and reports the GM speedup for each.
#include <vector>

#include "bench_common.hpp"

using namespace cudanp;

namespace {

double suite_gm(const sim::DeviceSpec& spec,
                const sim::Interpreter::Options& iopt, double scale) {
  np::Autotuner tuner{np::Runner(spec, iopt)};
  std::vector<double> speedups;
  for (auto& b : kernels::make_benchmark_suite(scale)) {
    auto result =
        tuner.tune(b->kernel(), [&] { return b->make_workload(); });
    speedups.push_back(result.best_speedup());
  }
  return geometric_mean(speedups);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  // The sweep re-tunes the whole suite 7 times; default to quarter scale.
  if (opt.scale == 1.0) opt.scale = 0.25;
  bench::print_header(
      "Ablation: calibration sensitivity of the GM speedup",
      "the paper's conclusion (all benchmarks gain; GM ~2.2x) should "
      "survive 2x perturbations of every calibrated constant",
      opt);

  Table table({"configuration", "GM speedup"});
  auto base_spec = sim::DeviceSpec::gtx680();
  sim::Interpreter::Options base_iopt;

  table.add_row({"calibrated (GTX 680, mlp=4)",
                 bench::fmt(suite_gm(base_spec, base_iopt, opt.scale), 3) +
                     "x"});
  {
    auto s = base_spec;
    s.dram_bandwidth_gbs /= 2;
    table.add_row({"DRAM bandwidth / 2 (96 GB/s)",
                   bench::fmt(suite_gm(s, base_iopt, opt.scale), 3) + "x"});
  }
  {
    auto s = base_spec;
    s.dram_bandwidth_gbs *= 2;
    table.add_row({"DRAM bandwidth x 2 (384 GB/s)",
                   bench::fmt(suite_gm(s, base_iopt, opt.scale), 3) + "x"});
  }
  {
    auto s = base_spec;
    s.dram_latency_cycles /= 2;
    table.add_row({"memory latency / 2 (200 cycles)",
                   bench::fmt(suite_gm(s, base_iopt, opt.scale), 3) + "x"});
  }
  {
    auto s = base_spec;
    s.dram_latency_cycles *= 2;
    table.add_row({"memory latency x 2 (800 cycles)",
                   bench::fmt(suite_gm(s, base_iopt, opt.scale), 3) + "x"});
  }
  {
    auto io = base_iopt;
    io.timing.warp_mlp = 2;
    table.add_row({"warp MLP = 2 (less overlap)",
                   bench::fmt(suite_gm(base_spec, io, opt.scale), 3) + "x"});
  }
  {
    auto io = base_iopt;
    io.timing.warp_mlp = 8;
    table.add_row({"warp MLP = 8 (more overlap)",
                   bench::fmt(suite_gm(base_spec, io, opt.scale), 3) + "x"});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: higher latency / lower MLP raise the GM (more latency to "
      "hide -> NP helps more); higher bandwidth raises throughput "
      "ceilings similarly. The direction of every paper conclusion is "
      "calibration-stable.\n");
  return 0;
}
