// Figure 16: benefit of the __shfl instruction for reduction/scan when
// applying intra-warp NP, normalized to the best inter-warp version.
//
// Paper: shfl helps most on MC and LU (their shared memory is already
// under pressure, so shared-memory reductions hurt occupancy); the impact
// is minor elsewhere because reductions are a small share of runtime.
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 16: __shfl vs shared-memory reduction/scan under intra-warp "
      "NP (normalized to the best inter-warp version)",
      "shfl is a big win for the smem-pressured MC and LU, minor "
      "elsewhere",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  np::Runner runner(spec);
  Table table({"benchmark", "best inter us", "intra+smem / inter",
               "intra+shfl / inter", "shfl speedup over smem"});

  for (auto& b : kernels::make_benchmark_suite(opt.scale)) {
    if (std::string(b->table1().reduce_scan) == "X") continue;  // needs R/S
    auto probe = b->make_workload();
    int master = static_cast<int>(probe.launch.block.count());

    auto best_time = [&](ir::NpType type, bool use_shfl) -> double {
      double best = 1e18;
      for (int s : {2, 4, 8, 16, 32}) {
        transform::NpConfig cfg;
        cfg.np_type = type;
        cfg.slave_size = s;
        cfg.master_count = master;
        cfg.use_shfl = use_shfl;
        try {
          auto variant = np::NpCompiler::transform(b->kernel(), cfg);
          auto w = b->make_workload();
          auto run =
              runner.execute(np::ExecutionRequest::transformed(variant, w))
                  .run;
          std::string msg;
          if (w.validate && !w.validate(*w.mem, &msg)) continue;
          best = std::min(best, run.timing.seconds);
        } catch (const CompileError&) {
        } catch (const SimError&) {
        }
      }
      return best;
    };

    double inter = best_time(ir::NpType::kInterWarp, false);
    double intra_smem = best_time(ir::NpType::kIntraWarp, false);
    double intra_shfl = best_time(ir::NpType::kIntraWarp, true);
    table.add_row({b->name(), bench::fmt(inter * 1e6, 4),
                   bench::fmt(inter / intra_smem, 3) + "x",
                   bench::fmt(inter / intra_shfl, 3) + "x",
                   bench::fmt(intra_smem / intra_shfl, 3) + "x"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
