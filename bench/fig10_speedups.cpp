// Figure 10: speedup of the auto-tuned CUDA-NP version over the baseline
// for every benchmark, plus the geometric mean.
//
// Paper: 1.36x - 6.69x, geometric mean 2.18x across the ten benchmarks.
#include <vector>

#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 10: CUDA-NP speedup over baseline (auto-tuned)",
      "speedups 1.36x-6.69x, GM 2.18x; every benchmark improves",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  Table table({"Name", "baseline us", "CUDA-NP us", "speedup",
               "best configuration"});
  std::vector<double> speedups;
  for (auto& b : kernels::make_benchmark_suite(opt.scale)) {
    auto tune = bench::tune_benchmark(*b, spec);
    double sp = tune.best_speedup();
    speedups.push_back(sp);
    table.add_row({b->name(), bench::fmt(tune.baseline_seconds * 1e6, 4),
                   bench::fmt(tune.best_seconds() * 1e6, 4),
                   bench::fmt(sp, 3) + "x",
                   tune.best_config() ? tune.best_config()->describe()
                                      : "(baseline)"});
    std::fflush(stdout);
  }
  auto s = summarize(speedups);
  table.add_row({"GM", "", "", bench::fmt(s.geomean, 3) + "x",
                 "paper GM: 2.18x (range 1.36-6.69)"});
  table.print(std::cout);

  std::printf("\nmeasured range: %.2fx - %.2fx, GM %.2fx\n", s.min, s.max,
              s.geomean);
  return 0;
}
