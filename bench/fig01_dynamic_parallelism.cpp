// Figure 1: throughput of the memory-copy microbenchmark under dynamic
// parallelism on a Tesla K20c.
//
// Paper: copying 64M floats achieves 142 GB/s without CDP; merely
// compiling with CDP enabled drops it to 63 GB/s; splitting the copy into
// child launches degrades it further — 34 GB/s when each child has 16K
// threads, and rapidly worse with smaller children.
#include "bench_common.hpp"
#include "sim/dynpar.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 1: dynamic-parallelism memory-copy throughput (K20c)",
      "142 GB/s plain -> 63 GB/s CDP-enabled -> 34 GB/s @16K-thread "
      "children, degrading rapidly with more launches",
      opt);

  auto spec = sim::DeviceSpec::k20c();
  sim::DynamicParallelismModel model(spec);
  const std::int64_t total = static_cast<std::int64_t>(64e6 * opt.scale);

  // Cross-check the no-CDP baseline against the execution simulator with
  // a real copy kernel (scaled down so interpretation stays fast).
  {
    auto copy = kernels::make_memcopy(1 << 20);
    double secs = bench::run_baseline_seconds(*copy, spec);
    double bytes = 2.0 * (1 << 20) * 4;
    std::printf("simulated copy kernel achieves %.1f GB/s "
                "(analytic baseline %.1f GB/s, paper 142 GB/s)\n\n",
                bytes / secs / 1e9, model.baseline_copy_bandwidth_gbs());
  }

  Table table({"parent threads m", "child threads n", "launches",
               "GB/s", "paper GB/s"});
  table.add_row({"(no CDP)", "-", "0",
                 bench::fmt(model.baseline_copy_bandwidth_gbs()), "142"});
  table.add_row({"(CDP compiled, unused)", "-", "0",
                 bench::fmt(model.cdp_copy_bandwidth_gbs(total, total)),
                 "63"});
  struct Point {
    std::int64_t child;
    const char* paper;
  };
  const Point points[] = {
      {1 << 24, "-"}, {1 << 22, "-"}, {1 << 20, "-"},
      {1 << 18, "-"}, {1 << 16, "-"}, {1 << 14, "34"},
      {1 << 12, "-"}, {1 << 10, "-"},
  };
  for (const auto& p : points) {
    if (p.child > total) continue;
    std::int64_t m = total / p.child;
    table.add_row({std::to_string(m), std::to_string(p.child),
                   std::to_string(m),
                   bench::fmt(model.cdp_copy_bandwidth_gbs(total, p.child)),
                   p.paper});
  }
  table.print(std::cout);
  return 0;
}
