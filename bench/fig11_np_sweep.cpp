// Figure 11: inter-warp vs intra-warp NP across slave sizes.
//
// Paper observations this bench regenerates:
//  - LU and NN are the only benchmarks where intra-warp beats inter-warp
//    (LU: the `master_id < 16` divergence disappears intra-warp; NN:
//    memory-access pattern);
//  - MC/LIB/LE suffer slave imbalance intra-warp (loop counts 12/80/150
//    do not divide the power-of-two group sizes);
//  - larger slave counts eventually stop helping (CFD with LC=4 most
//    visibly).
#include "bench_common.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 11: inter-warp vs intra-warp NP across slave sizes "
      "(speedup over baseline; '-' = configuration not applicable)",
      "intra wins only for LU and NN; more slaves is not always better",
      opt);

  auto spec = sim::DeviceSpec::gtx680();
  const int sizes[] = {2, 4, 8, 16, 32};
  std::vector<std::string> header = {"Name", "type"};
  for (int s : sizes) header.push_back("S=" + std::to_string(s));
  Table table(header);

  for (auto& b : kernels::make_benchmark_suite(opt.scale)) {
    auto probe = b->make_workload();
    int master = static_cast<int>(probe.launch.block.count());
    double baseline = bench::run_baseline_seconds(*b, spec);
    np::Runner runner(spec);

    for (auto type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
      std::vector<std::string> row = {
          b->name(), type == ir::NpType::kInterWarp ? "inter" : "intra"};
      for (int s : sizes) {
        transform::NpConfig cfg;
        cfg.np_type = type;
        cfg.slave_size = s;
        cfg.master_count = master;
        std::string cell = "-";
        try {
          auto variant = np::NpCompiler::transform(b->kernel(), cfg);
          auto w = b->make_workload();
          auto run =
              runner.execute(np::ExecutionRequest::transformed(variant, w))
                  .run;
          std::string msg;
          if (w.validate && !w.validate(*w.mem, &msg))
            throw SimError("validation: " + msg);
          cell = bench::fmt(baseline / run.timing.seconds, 3);
        } catch (const CompileError&) {
        } catch (const SimError&) {
        }
        row.push_back(cell);
      }
      table.add_row(std::move(row));
    }
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
