// Quickstart: compile a kernel with a `#pragma np` annotation, inspect
// the transformed source, and measure the speedup on the simulated GPU.
//
//   $ ./examples/quickstart
//
// This walks through the full CUDA-NP pipeline on the paper's running
// example (transposed-matrix-vector multiplication, Fig. 2/3).
#include <cstdio>
#include <iostream>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "np/autotuner.hpp"
#include "support/rng.hpp"

using namespace cudanp;

// The paper's Fig. 2 kernel, annotated with one CUDA-NP pragma: the dot
// product loop is parallel with a sum reduction.
static const char* kSource = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

int main() {
  const int w = 1024, h = 1024;

  // 1. Parse the annotated kernel.
  auto program = np::NpCompiler::parse(kSource);
  const ir::Kernel& kernel = *program->find_kernel("tmv");
  std::printf("parsed kernel '%s' with %zu parallel loop(s)\n\n",
              kernel.name.c_str(), kernel.parallel_loop_count());

  // 2. Apply one NP transformation and show the source-to-source output.
  transform::NpConfig cfg;
  cfg.np_type = ir::NpType::kIntraWarp;  // slaves share the master's warp
  cfg.slave_size = 4;                    // 1 master + 3 slaves
  cfg.master_count = 32;                 // baseline thread-block size
  auto variant = np::NpCompiler::transform(kernel, cfg);
  std::printf("---- transformed kernel (%s) ----\n%s\n",
              cfg.describe().c_str(),
              ir::print_kernel(*variant.kernel).c_str());

  // 3. Build a workload: device buffers + launch config + validator.
  auto make_workload = [&] {
    np::Workload wl;
    auto A = wl.mem->alloc(ir::ScalarType::kFloat,
                           static_cast<std::size_t>(w) * h);
    auto B = wl.mem->alloc(ir::ScalarType::kFloat, h);
    auto C = wl.mem->alloc(ir::ScalarType::kFloat, w);
    SplitMix64 rng(1);
    for (auto& x : wl.mem->buffer(A).f32()) x = rng.next_float(-1, 1);
    for (auto& x : wl.mem->buffer(B).f32()) x = rng.next_float(-1, 1);
    wl.launch.grid = {w / 32, 1, 1};
    wl.launch.block = {32, 1, 1};
    wl.launch.args = {A, B, C, sim::Value::of_int(w), sim::Value::of_int(h)};
    return wl;
  };

  // 4. Auto-tune: try every legal {inter,intra} x slave_size variant on
  //    the simulated GTX 680 and pick the fastest (paper Sec. 6).
  np::Autotuner tuner{np::Runner(sim::DeviceSpec::gtx680())};
  np::TuneOptions opts;
  opts.validate = false;  // no validator attached in this example
  auto result = tuner.tune(kernel, make_workload, opts);

  std::printf("baseline: %.1f us\n", result.baseline_seconds * 1e6);
  for (const auto& e : result.entries) {
    if (e.ok)
      std::printf("  %-46s %8.1f us  (%.2fx)\n", e.config.describe().c_str(),
                  e.seconds * 1e6, result.baseline_seconds / e.seconds);
    else
      std::printf("  %-46s skipped: %s\n", e.config.describe().c_str(),
                  e.note.c_str());
  }
  std::printf("\nbest: %s -> %.2fx speedup\n",
              result.best_config() ? result.best_config()->describe().c_str()
                                   : "(baseline)",
              result.best_speedup());
  return 0;
}
