// Example: inspecting every stage of the source-to-source pipeline.
//
// Shows, for the paper's Fig. 5 leukocyte kernel:
//   1. the parsed & re-printed input,
//   2. each local-array placement's generated code side by side
//      (register partition / shared / global — paper Fig. 6a-c),
//   3. inter-warp vs intra-warp output for the same configuration,
//   4. the resource estimate driving the occupancy trade-off.
#include <cstdio>

#include "analysis/resources.hpp"
#include "ir/printer.hpp"
#include "kernels/benchmark.hpp"
#include "np/compiler.hpp"

using namespace cudanp;

static void show(const char* title, const ir::Kernel& k,
                 const sim::DeviceSpec& spec) {
  auto res = analysis::estimate_resources(k, spec);
  std::printf("---- %s ----\n%s", title, ir::print_kernel(k).c_str());
  std::printf("[resources: ~%d regs, %lld B smem/block, %lld B local/thread]\n\n",
              res.usage.registers_per_thread,
              static_cast<long long>(res.usage.shared_mem_per_block),
              static_cast<long long>(res.usage.local_mem_per_thread));
}

int main() {
  auto spec = sim::DeviceSpec::gtx680();
  auto bench = kernels::make_benchmark("LE", 0.1);
  const ir::Kernel& kernel = bench->kernel();
  show("input (parsed & re-printed)", kernel, spec);

  for (auto placement :
       {transform::LocalPlacement::kRegister,
        transform::LocalPlacement::kShared,
        transform::LocalPlacement::kGlobal}) {
    transform::NpConfig cfg;
    cfg.np_type = ir::NpType::kInterWarp;
    cfg.slave_size = 5;  // 150 % 5 == 0: no padding needed (Fig. 12)
    cfg.master_count = 32;
    cfg.placement = placement;
    auto variant = np::NpCompiler::transform(kernel, cfg);
    std::string title = std::string("local array -> ") +
                        transform::to_string(placement) + " (Fig. 6)";
    show(title.c_str(), *variant.kernel, spec);
  }

  // Intra-warp: same kernel, shfl-based communication instead of shared
  // memory (needs a power-of-two group: use 8 slaves, padded loops).
  transform::NpConfig intra;
  intra.np_type = ir::NpType::kIntraWarp;
  intra.slave_size = 8;
  intra.master_count = 32;
  intra.pad_loops = true;
  auto variant = np::NpCompiler::transform(kernel, intra);
  show("intra-warp with __shfl + padding to 152", *variant.kernel, spec);
  return 0;
}
