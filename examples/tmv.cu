// Transposed matrix-vector product (paper Fig. 1): each thread reduces one
// column of `a` against `b`. The annotated loop is the nested parallelism
// CUDA-NP distributes across slave threads.
//
// Try: cudanp-cc tmv.cu --all --report
//      cudanp-cc tmv.cu --sanitize
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
