// Example: bringing your own kernel to CUDA-NP.
//
// This writes a histogram-equalization-style kernel from scratch (not one
// of the paper benchmarks), annotates two parallel loops — one with a
// live local array, one with min/max reductions — and shows how the
// compiler re-homes the local array and validates against a CPU
// reference.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ir/printer.hpp"
#include "np/autotuner.hpp"
#include "support/rng.hpp"

using namespace cudanp;

// Each thread normalizes one 64-sample signal window: it loads the window
// into a per-thread array, finds its min/max (reductions), then rescales
// every sample to [0, 1]. The window array is a classic Sec.-3.3 live
// local array: written in one parallel loop, read in another.
static const char* kSource = R"(
#define WIN 64
__global__ void normalize(float* in, float* out, int n) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float window[WIN];
  float lo = 3.0e38f;
  float hi = -3.0e38f;
  #pragma np parallel for reduction(min:lo) reduction(max:hi)
  for (int i = 0; i < WIN; i++) {
    window[i] = in[tid * WIN + i];
    lo = fminf(lo, window[i]);
    hi = fmaxf(hi, window[i]);
  }
  float scale = 1.0f / (hi - lo + 0.000001f);
  #pragma np parallel for
  for (int i = 0; i < WIN; i++)
    out[tid * WIN + i] = (window[i] - lo) * scale;
}
)";

int main() {
  const int windows = 2048, win = 64;
  auto program = np::NpCompiler::parse(kSource);
  const ir::Kernel& kernel = *program->find_kernel("normalize");

  auto make_workload = [&] {
    np::Workload wl;
    std::size_t n = static_cast<std::size_t>(windows) * win;
    auto In = wl.mem->alloc(ir::ScalarType::kFloat, n);
    auto Out = wl.mem->alloc(ir::ScalarType::kFloat, n);
    SplitMix64 rng(99);
    for (auto& x : wl.mem->buffer(In).f32()) x = rng.next_float(-5, 5);

    // CPU reference, captured into the validator.
    std::vector<float> expect(n);
    {
      auto in = wl.mem->buffer(In).f32();
      for (int t = 0; t < windows; ++t) {
        float lo = 3.0e38f, hi = -3.0e38f;
        for (int i = 0; i < win; ++i) {
          lo = std::min(lo, in[static_cast<std::size_t>(t) * win + i]);
          hi = std::max(hi, in[static_cast<std::size_t>(t) * win + i]);
        }
        float scale = 1.0f / (hi - lo + 0.000001f);
        for (int i = 0; i < win; ++i)
          expect[static_cast<std::size_t>(t) * win + i] =
              (in[static_cast<std::size_t>(t) * win + i] - lo) * scale;
      }
    }
    wl.launch.grid = {windows / 64, 1, 1};
    wl.launch.block = {64, 1, 1};
    wl.launch.args = {In, Out, sim::Value::of_int(windows)};
    wl.validate = [Out, expect = std::move(expect)](
                      const sim::DeviceMemory& m, std::string* msg) {
      auto got = m.buffer(Out).f32();
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (std::fabs(got[i] - expect[i]) > 1e-4) {
          if (msg) *msg = "mismatch at " + std::to_string(i);
          return false;
        }
      }
      return true;
    };
    return wl;
  };

  // Show what the compiler decides to do with the local array.
  transform::NpConfig cfg;
  cfg.np_type = ir::NpType::kInterWarp;
  cfg.slave_size = 8;
  cfg.master_count = 64;
  auto variant = np::NpCompiler::transform(kernel, cfg);
  std::printf("compiler decisions:\n");
  for (const auto& note : variant.notes)
    std::printf("  - %s\n", note.c_str());
  std::printf("\n---- transformed ----\n%s\n",
              ir::print_kernel(*variant.kernel).c_str());

  // Tune with validation: wrong variants would be disqualified.
  np::Autotuner tuner{np::Runner(sim::DeviceSpec::gtx680())};
  auto result = tuner.tune(kernel, make_workload);
  std::printf("baseline %.1f us -> best %.1f us (%.2fx) with %s\n",
              result.baseline_seconds * 1e6, result.best_seconds() * 1e6,
              result.best_speedup(),
              result.best_config() ? result.best_config()->describe().c_str()
                                   : "(baseline)");
  std::printf("all variants validated against the CPU reference.\n");
  return 0;
}
