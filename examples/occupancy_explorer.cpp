// Example: exploring WHY CUDA-NP helps, using the simulator's occupancy
// calculator and timing breakdown.
//
// For one benchmark (default LE) it prints, per slave size, the
// transformed kernel's resource usage, the resident warps per SMX, and
// which term of the timing model bounds the run — making the latency ->
// throughput transition of the paper's Sec. 2.2 argument visible.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/resources.hpp"
#include "kernels/benchmark.hpp"
#include "np/autotuner.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace cudanp;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "LE";
  auto spec = sim::DeviceSpec::gtx680();
  auto bench = kernels::make_benchmark(name, 0.25);
  np::Runner runner(spec);

  Table table({"version", "threads/blk", "regs", "smemB", "localB",
               "warps/SMX", "bound", "us", "speedup"});

  auto w0 = bench->make_workload();
  auto base =
      runner.execute(np::ExecutionRequest::baseline(bench->kernel(), w0)).run;
  auto base_res = runner.resources(bench->kernel());
  table.add_row({"baseline",
                 std::to_string(w0.launch.block.count()),
                 std::to_string(base_res.usage.registers_per_thread),
                 std::to_string(base_res.usage.shared_mem_per_block),
                 std::to_string(base_res.usage.local_mem_per_thread),
                 std::to_string(base.occupancy.active_warps),
                 base.timing.bound,
                 format_double(base.timing.seconds * 1e6, 4), "1.00x"});

  for (int s : {2, 4, 8, 16}) {
    transform::NpConfig cfg;
    cfg.np_type = ir::NpType::kInterWarp;
    cfg.slave_size = s;
    cfg.master_count = static_cast<int>(w0.launch.block.count());
    if (cfg.block_threads() > spec.max_threads_per_block) continue;
    try {
      auto variant = np::NpCompiler::transform(bench->kernel(), cfg);
      auto res = runner.resources(*variant.kernel);
      auto w = bench->make_workload();
      auto run =
          runner.execute(np::ExecutionRequest::transformed(variant, w)).run;
      char label[32];
      std::snprintf(label, sizeof(label), "inter S=%d", s);
      table.add_row(
          {label, std::to_string(cfg.block_threads()),
           std::to_string(res.usage.registers_per_thread),
           std::to_string(res.usage.shared_mem_per_block),
           std::to_string(res.usage.local_mem_per_thread),
           std::to_string(run.occupancy.active_warps), run.timing.bound,
           format_double(run.timing.seconds * 1e6, 4),
           format_double(base.timing.seconds / run.timing.seconds, 3) +
               "x"});
    } catch (const std::exception& e) {
      table.add_row({"inter S=" + std::to_string(s), "-", "-", "-", "-",
                     "-", "error", e.what(), "-"});
    }
  }
  std::printf("How CUDA-NP shifts '%s' from latency-bound to "
              "throughput-bound (GTX 680 model):\n\n", name.c_str());
  table.print(std::cout);
  return 0;
}
