// Row scaling: a nested loop with independent iterations and no reduction,
// so the NP transform simply partitions the trip count across slaves.
//
// Try: cudanp-cc scale_rows.cu --sanitize --elems=32
__global__ void scale_rows(float* a, float* out, int n) {
  int row = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for
  for (int i = 0; i < n; i++)
    out[row * n + i] = a[row * n + i] * 2.0f;
}
