#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "kernels/benchmark.hpp"

namespace cudanp::ir {
namespace {

std::string print_of(const std::string& src) {
  auto p = frontend::parse_program_or_throw(src);
  return print_kernel(*p->kernels.front());
}

TEST(Printer, PrecedenceParenthesization) {
  std::string s = print_of(
      "__global__ void k(int* a) { a[0] = (1 + 2) * 3; a[1] = 1 + 2 * 3; }");
  EXPECT_NE(s.find("(1 + 2) * 3"), std::string::npos);
  EXPECT_NE(s.find("1 + 2 * 3"), std::string::npos);
}

TEST(Printer, FloatLiteralsKeepSuffix) {
  std::string s = print_of("__global__ void k(float* a) { a[0] = 2.0f; }");
  EXPECT_NE(s.find("2.0f"), std::string::npos);
}

TEST(Printer, IntegerFloatLiteralGetsDecimalPoint) {
  // A FloatLit with integral value must not print as an int literal, or
  // the round-trip would change its type.
  FloatLit f(3.0);
  EXPECT_EQ(print_expr(f), "3.0f");
}

TEST(Printer, SharedQualifierEmitted) {
  std::string s =
      print_of("__global__ void k() { __shared__ float t[4][4]; }");
  EXPECT_NE(s.find("__shared__ float t[4][4];"), std::string::npos);
}

TEST(Printer, PragmaEmitted) {
  std::string s = print_of(
      "__global__ void k(float* a, int n) {\n"
      "float x = 0.0f;\n"
      "#pragma np parallel for reduction(+:x)\n"
      "for (int i = 0; i < n; i++) x += a[i];\n"
      "a[0] = x; }");
  EXPECT_NE(s.find("#pragma np parallel for reduction(+:x)"),
            std::string::npos);
}

TEST(Printer, PragmaSuppressedWhenDisabled) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n) {\n"
      "#pragma np parallel for\n"
      "for (int i = 0; i < n; i++) a[i] = 0.0f; }");
  PrintOptions opts;
  opts.print_pragmas = false;
  EXPECT_EQ(print_kernel(*p->kernels.front(), opts).find("#pragma"),
            std::string::npos);
}

TEST(Printer, TernaryAndCast) {
  std::string s = print_of(
      "__global__ void k(float* a, int n) { a[0] = n > 0 ? (float)n : 0.5f; }");
  EXPECT_NE(s.find("n > 0 ? (float)n : 0.5f"), std::string::npos);
}

TEST(Printer, BraceInitializer) {
  std::string s = print_of("__global__ void k() { int t[3] = {9, 8, 7}; }");
  EXPECT_NE(s.find("= {9, 8, 7};"), std::string::npos);
}

TEST(Printer, ProgramIncludesDefines) {
  auto p = frontend::parse_program_or_throw(
      "#define N 4\n__global__ void k() { float t[N]; }");
  std::string s = print_program(*p);
  EXPECT_NE(s.find("#define N 4"), std::string::npos);
}

// Property: printing a parsed program and re-parsing the output reaches a
// fixpoint (print(parse(print(parse(src)))) == print(parse(src))).
class PrintRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(PrintRoundTrip, FixpointOnBenchmarkSources) {
  auto bench = kernels::make_benchmark(GetParam(), 0.1);
  auto p1 = frontend::parse_program_or_throw(bench->source());
  std::string printed1 = print_program(*p1);
  auto p2 = frontend::parse_program_or_throw(printed1);
  std::string printed2 = print_program(*p2);
  EXPECT_EQ(printed1, printed2);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PrintRoundTrip,
                         ::testing::ValuesIn(kernels::benchmark_names()));

}  // namespace
}  // namespace cudanp::ir
