#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace cudanp {
namespace {

TEST(StringUtils, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtils, SplitNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(starts_with("pragma np", "pragma"));
  EXPECT_FALSE(starts_with("np", "pragma"));
  EXPECT_TRUE(ends_with("kernel.cu", ".cu"));
  EXPECT_FALSE(ends_with("cu", "kernel.cu"));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtils, IsIdentifier) {
  EXPECT_TRUE(is_identifier("_np_var1"));
  EXPECT_TRUE(is_identifier("x"));
  EXPECT_FALSE(is_identifier("1x"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replace_all("aXbXc", "X", "yy"), "ayybyyc");
  EXPECT_EQ(replace_all("abc", "z", "q"), "abc");
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(format_double(2.5, 3), "2.5");
  EXPECT_EQ(format_double(1234.0, 2), "1.2e+03");
}

TEST(ParseI64, AcceptsWholeIntegers) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("+13"), 13);
  EXPECT_EQ(parse_i64("  99 "), 99);  // surrounding whitespace is trimmed
}

TEST(ParseI64, RejectsPartialParses) {
  // The atoi failure modes this parser exists to kill: "8x" silently
  // became 8, "x8" and "" silently became 0.
  EXPECT_FALSE(parse_i64("8x").has_value());
  EXPECT_FALSE(parse_i64("x8").has_value());
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("   ").has_value());
  EXPECT_FALSE(parse_i64("-").has_value());
  EXPECT_FALSE(parse_i64("+").has_value());
  EXPECT_FALSE(parse_i64("1.5").has_value());
  EXPECT_FALSE(parse_i64("1 2").has_value());
  EXPECT_FALSE(parse_i64("0x10").has_value());
}

TEST(ParseI64, RangeChecked) {
  EXPECT_EQ(parse_i64("5", 1, 10), 5);
  EXPECT_FALSE(parse_i64("0", 1, 10).has_value());
  EXPECT_FALSE(parse_i64("11", 1, 10).has_value());
  EXPECT_EQ(parse_i64("10", 1, 10), 10);  // bounds are inclusive
}

TEST(ParseI64, ExtremesAndOverflow) {
  EXPECT_EQ(parse_i64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());
  EXPECT_FALSE(parse_i64("-9223372036854775809").has_value());
  EXPECT_FALSE(parse_i64("99999999999999999999999").has_value());
}

TEST(ParseInt, NarrowsWithRange) {
  EXPECT_EQ(parse_int("1024", 1, 1024), 1024);
  EXPECT_FALSE(parse_int("1025", 1, 1024).has_value());
  EXPECT_FALSE(parse_int("abc", 1, 1024).has_value());
  EXPECT_EQ(parse_int("-3"), -3);
  // Values outside int's own range never narrow, whatever the caller's
  // bounds.
  EXPECT_FALSE(parse_int("4294967296").has_value());
}

TEST(Stats, GeometricMean) {
  double xs[] = {1.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, GeometricMeanMatchesPaperStyle) {
  // GM of identical speedups is the speedup itself.
  double xs[] = {2.18, 2.18, 2.18};
  EXPECT_NEAR(geometric_mean(xs), 2.18, 1e-9);
}

TEST(Stats, Summary) {
  double xs[] = {1.0, 2.0, 3.0};
  Summary s = summarize(xs);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
  EXPECT_NEAR(s.mean, 2.0, 1e-12);
  EXPECT_NEAR(s.geomean, std::cbrt(6.0), 1e-12);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  SplitMix64 rng(1234);
  for (int i = 0; i < 1000; ++i) {
    float v = rng.next_float(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NextBelow) {
  SplitMix64 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::string s = t.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine d;
  d.note({1, 1}, "n");
  d.warning({1, 2}, "w");
  EXPECT_FALSE(d.has_errors());
  d.error({2, 3}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.all().size(), 3u);
  EXPECT_NE(d.summary().find("2:3: error: e"), std::string::npos);
  d.clear();
  EXPECT_FALSE(d.has_errors());
}

TEST(Diagnostics, CompileErrorCarriesLocation) {
  CompileError e(SourceLoc{4, 7}, "bad");
  EXPECT_NE(std::string(e.what()).find("4:7"), std::string::npos);
  EXPECT_EQ(e.loc().line, 4u);
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc{}.valid());
  EXPECT_TRUE((SourceLoc{1, 1}).valid());
  EXPECT_EQ(SourceLoc{}.str(), "<synthesized>");
}

TEST(Json, EscapeUnescapeRoundTrip) {
  const std::string raw = "a\"b\\c\nd\te\rf\x01g";
  auto back = json::unescape(json::escape(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
  EXPECT_FALSE(json::unescape("trailing\\").has_value());
  EXPECT_FALSE(json::unescape("\\q").has_value());
}

TEST(Json, ParsesTheShapesTheReportsEmit) {
  auto v = json::parse(
      R"({"name":"tmv","ok":true,"n":42,"none":null,)"
      R"("xs":[1,2,3],"inner":{"deep":-7}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_str("name"), "tmv");
  EXPECT_TRUE(v->get_bool("ok"));
  EXPECT_EQ(v->get_i64("n"), 42);
  ASSERT_NE(v->find("none"), nullptr);
  EXPECT_TRUE(v->find("none")->is_null());
  ASSERT_EQ(v->find("xs")->arr().size(), 3u);
  EXPECT_EQ(v->find("xs")->arr()[1].as_i64(), 2);
  EXPECT_EQ(v->find("inner")->get_i64("deep"), -7);
  // Missing keys fall back to the caller's default, never throw.
  EXPECT_EQ(v->get_i64("absent", 99), 99);
  EXPECT_EQ(v->get_str("absent", "d"), "d");
}

TEST(Json, GetDoubleParsesDecimalsAndExponents) {
  auto v = json::parse(
      R"({"tol":0.001,"exp":1.5e-3,"big":2E2,"whole":3,"neg":-0.25})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->get_double("tol"), 0.001);
  EXPECT_DOUBLE_EQ(v->get_double("exp"), 1.5e-3);
  EXPECT_DOUBLE_EQ(v->get_double("big"), 200.0);
  // Integers are visible through both numeric views.
  EXPECT_DOUBLE_EQ(v->get_double("whole"), 3.0);
  EXPECT_EQ(v->get_i64("whole"), 3);
  EXPECT_DOUBLE_EQ(v->get_double("neg"), -0.25);
  EXPECT_DOUBLE_EQ(v->get_double("absent", 1e-3), 1e-3);
}

TEST(Json, DoubleRoundTripAtFullPrecision) {
  // The wire layer serializes f32_rel_tol with precision 17, which is
  // enough to reproduce any double exactly. Mimic that path.
  for (double d : {1e-3, 0.1, 1.0 / 3.0, 2.5e-7, 123456.789}) {
    std::ostringstream os;
    os.precision(17);
    os << "{\"x\":" << d << "}";
    auto v = json::parse(os.str());
    ASSERT_TRUE(v.has_value()) << os.str();
    EXPECT_EQ(v->get_double("x"), d) << os.str();
  }
}

TEST(Json, RejectsMalformedAndTornInput) {
  std::string err;
  EXPECT_FALSE(json::parse("", &err).has_value());
  EXPECT_FALSE(json::parse("{\"a\":1", &err).has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(json::parse("{'a':1}", &err).has_value());
  // A torn journal line — cut mid-record by SIGKILL — must fail to
  // parse, not yield a half-filled value.
  const std::string whole = R"({"k":3,"outcome":{"ran":true,"n":12}})";
  for (std::size_t cut = 1; cut < whole.size(); ++cut) {
    EXPECT_FALSE(json::parse(whole.substr(0, cut)).has_value())
        << whole.substr(0, cut);
  }
}

}  // namespace
}  // namespace cudanp
