// SanitizerEngine unit tests: each hazard class is provoked by a dedicated
// hand-written kernel and must surface as a structured HazardReport with
// the right category and source location — never as a thrown SimError.
#include <gtest/gtest.h>

#include <string>

#include "analysis/resources.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp {
namespace {

using sim::HazardKind;
using SanOptions = sim::SanitizerEngine::Options;

/// Parses `src`, builds a synthetic workload (pointer params get a
/// 4096-element buffer, int scalars the value 64, float scalars 1.0), and
/// runs the first kernel under the sanitizer.
np::ExecutionResult run_sanitized(const std::string& src, int block_x,
                                  SanOptions sopt = {}, int grid_x = 1) {
  auto program = np::NpCompiler::parse(src);
  const ir::Kernel& kernel = *program->kernels.front();
  np::Workload w;
  for (const auto& p : kernel.params) {
    if (p.type.is_pointer)
      w.launch.args.push_back(w.mem->alloc(p.type.scalar, 4096));
    else if (p.type.scalar == ir::ScalarType::kFloat)
      w.launch.args.push_back(sim::LaunchConfig::scalar_float(1.0));
    else
      w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
  }
  w.launch.block = {block_x, 1, 1};
  w.launch.grid = {grid_x, 1, 1};
  np::Runner runner(sim::DeviceSpec::gtx680());
  return runner.execute(
      np::ExecutionRequest::baseline(kernel, w).sanitized(sopt));
}

TEST(Sanitizer, DetectsLockstepWriteWriteRace) {
  auto run = run_sanitized(R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x] = s[0];
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_EQ(run.engine.reports().size(), 1u);
  const auto& r = run.engine.reports()[0];
  EXPECT_EQ(r.kind, HazardKind::kSharedRace);
  EXPECT_EQ(r.loc.line, 4);
  EXPECT_NE(r.message.find("write-write race on shared 's[0]'"),
            std::string::npos)
      << r.str();
  // 31 lanes collide with lane 0; deduplication keeps one report.
  EXPECT_EQ(run.engine.total_detected(), 31u);
}

TEST(Sanitizer, DetectsBarrierDivergence) {
  auto run = run_sanitized(R"(
__global__ void bdiv(float* out, int n) {
  if (threadIdx.x < 32) {
    __syncthreads();
  }
  out[threadIdx.x] = 1.0f;
}
)",
                           64);
  ASSERT_TRUE(run.ran);
  ASSERT_EQ(run.engine.count(HazardKind::kBarrierDivergence), 1u);
  const auto& r = run.engine.reports()[0];
  EXPECT_EQ(r.loc.line, 4);
  EXPECT_EQ(r.thread, 32);  // first live lane of the warp that never arrives
  EXPECT_NE(r.message.find("1 of 2 warps"), std::string::npos) << r.str();
}

TEST(Sanitizer, IntraWarpPartialMaskBarrierIsLegal) {
  // Kepler's bar.sync counts warp arrivals: one active lane per warp is
  // enough, so a barrier under a sub-warp guard must NOT be flagged.
  auto run = run_sanitized(R"(
__global__ void subwarp(float* out, int n) {
  if (threadIdx.x < 16) {
    __syncthreads();
  }
  out[threadIdx.x] = 1.0f;
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST(Sanitizer, DetectsUninitializedScalarRead) {
  auto run = run_sanitized(R"(
__global__ void uninit(float* out, int n) {
  float x;
  out[threadIdx.x] = x;
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_EQ(run.engine.count(HazardKind::kUninitRead), 1u);
  const auto& r = run.engine.reports()[0];
  EXPECT_EQ(r.loc.line, 4);
  EXPECT_NE(r.message.find("uninitialized variable 'x'"), std::string::npos)
      << r.str();
}

TEST(Sanitizer, DetectsUninitializedSharedRead) {
  auto run = run_sanitized(R"(
__global__ void uship(float* out, int n) {
  __shared__ float s[32];
  out[threadIdx.x] = s[threadIdx.x];
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_GE(run.engine.count(HazardKind::kUninitRead), 1u);
  EXPECT_NE(run.engine.reports()[0].message.find("uninitialized shared"),
            std::string::npos);
  EXPECT_EQ(run.engine.reports()[0].loc.line, 4);
}

TEST(Sanitizer, DetectsUninitializedLocalArrayElement) {
  auto run = run_sanitized(R"(
__global__ void ularr(float* out, int n) {
  float tmp[4];
  tmp[0] = 1.0f;
  out[threadIdx.x] = tmp[1];
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_GE(run.engine.count(HazardKind::kUninitRead), 1u);
  EXPECT_EQ(run.engine.reports()[0].loc.line, 5);
}

TEST(Sanitizer, BraceInitializerZeroFillsWholeArray) {
  // `float tmp[4] = {1.0f};` zero-fills the tail, so reading tmp[3] is fine.
  auto run = run_sanitized(R"(
__global__ void zfill(float* out, int n) {
  float tmp[4] = {1.0f};
  out[threadIdx.x] = tmp[3];
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST(Sanitizer, DetectsShflFromInactiveLane) {
  auto run = run_sanitized(R"(
__global__ void shfl_inactive(float* out, int n) {
  float v = threadIdx.x;
  if (threadIdx.x < 16) {
    v = __shfl(v, 20, 32);
  }
  out[threadIdx.x] = v;
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_GE(run.engine.count(HazardKind::kShflHazard), 1u);
  const auto& r = run.engine.reports()[0];
  EXPECT_EQ(r.loc.line, 5);
  EXPECT_NE(r.message.find("inactive source lane 20"), std::string::npos)
      << r.str();
}

TEST(Sanitizer, DetectsShflSelectorOutOfRange) {
  // n - 100 == -36 at runtime: on hardware this is undefined; the
  // interpreter must neither crash nor throw, just report.
  auto run = run_sanitized(R"(
__global__ void shfl_oob(float* out, int n) {
  float v = threadIdx.x;
  v = __shfl(v, n - 100, 32);
  out[threadIdx.x] = v;
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  ASSERT_GE(run.engine.count(HazardKind::kShflHazard), 1u);
  EXPECT_NE(run.engine.reports()[0].message.find("outside [0,"),
            std::string::npos)
      << run.engine.reports()[0].str();
}

TEST(Sanitizer, NegativeShflSelectorDoesNotCrashUnsanitized) {
  // The lane-index guard must hold even with the sanitizer off (it used to
  // index the lane vector with a negative subscript).
  auto program = np::NpCompiler::parse(R"(
__global__ void shfl_oob(float* out, int n) {
  float v = threadIdx.x;
  v = __shfl(v, n - 100, 32);
  out[threadIdx.x] = v;
}
)");
  np::Workload w;
  w.launch.args.push_back(w.mem->alloc(ir::ScalarType::kFloat, 4096));
  w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
  w.launch.block = {32, 1, 1};
  w.launch.grid = {1, 1, 1};
  np::Runner runner(sim::DeviceSpec::gtx680());
  EXPECT_NO_THROW((void)runner.execute(
      np::ExecutionRequest::baseline(*program->kernels.front(), w)));
}

TEST(Sanitizer, ErrorLimitStopsTheRunEarly) {
  SanOptions sopt;
  sopt.error_limit = 5;
  sopt.dedupe = false;
  auto run = run_sanitized(R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x] = s[0];
}
)",
                           32, sopt);
  ASSERT_TRUE(run.ran);
  EXPECT_EQ(run.engine.reports().size(), 5u);
  EXPECT_TRUE(run.engine.limit_reached());
}

TEST(Sanitizer, PerBlockSimFaultsAreContained) {
  // Every block reads out of bounds; without the sanitizer the first block
  // would abort the launch. With it, all four blocks run and the fault is
  // one deduplicated kSimFault observed four times.
  auto run = run_sanitized(R"(
__global__ void oob(float* out, int n) {
  out[threadIdx.x + n * 1000] = 1.0f;
}
)",
                           32, {}, /*grid_x=*/4);
  ASSERT_TRUE(run.ran);
  EXPECT_EQ(run.engine.count(HazardKind::kSimFault), 1u);
  EXPECT_EQ(run.engine.total_detected(), 4u);
  EXPECT_FALSE(run.clean());
}

TEST(Sanitizer, PortableModeFlagsCrossWarpHandoff) {
  const char* src = R"(
__global__ void crosswarp(float* out, int n) {
  __shared__ float s[64];
  s[threadIdx.x] = threadIdx.x;
  out[threadIdx.x] = s[63 - threadIdx.x];
}
)";
  // Lockstep mode accepts it: the simulator executes whole statements
  // block-wide, so the store completes before the load starts.
  auto lockstep = run_sanitized(src, 64);
  ASSERT_TRUE(lockstep.ran);
  EXPECT_TRUE(lockstep.clean()) << lockstep.engine.summary();
  // Portable mode flags the unsynchronized cross-warp read-after-write.
  SanOptions portable;
  portable.race_mode = sim::SanitizerEngine::RaceMode::kPortable;
  auto run = run_sanitized(src, 64, portable);
  ASSERT_TRUE(run.ran);
  EXPECT_GE(run.engine.count(HazardKind::kSharedRace), 1u)
      << run.engine.summary();
}

TEST(Sanitizer, PortableModeAcceptsBarrierSeparatedHandoff) {
  SanOptions portable;
  portable.race_mode = sim::SanitizerEngine::RaceMode::kPortable;
  auto run = run_sanitized(R"(
__global__ void handoff(float* out, int n) {
  __shared__ float s[64];
  s[threadIdx.x] = threadIdx.x;
  __syncthreads();
  out[threadIdx.x] = s[63 - threadIdx.x];
}
)",
                           64, portable);
  ASSERT_TRUE(run.ran);
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST(Sanitizer, SameValueStoresAreNotARace) {
  // All 64 lanes store 1.0f to s[0]: the outcome is deterministic, so the
  // lockstep checker suppresses it (matching racecheck's value filter).
  auto run = run_sanitized(R"(
__global__ void samewrite(float* out, int n) {
  __shared__ float s[4];
  s[0] = 1.0f;
  out[threadIdx.x] = s[0];
}
)",
                           64);
  ASSERT_TRUE(run.ran);
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST(Sanitizer, CleanKernelStaysClean) {
  auto run = run_sanitized(R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)",
                           32);
  ASSERT_TRUE(run.ran);
  EXPECT_TRUE(run.clean()) << run.engine.summary();
  EXPECT_EQ(run.engine.summary(), "sanitizer: no hazards detected\n");
}

TEST(Sanitizer, RegisteredBuffersTrackInitialization) {
  // A buffer registered as device scratch (the transform's re-homed local
  // arrays) must be written before it is read.
  auto program = np::NpCompiler::parse(R"(
__global__ void scratch(float* buf, int n) {
  buf[threadIdx.x + 32] = 1.0f;
  buf[threadIdx.x] = buf[threadIdx.x + n];
}
)");
  const ir::Kernel& kernel = *program->kernels.front();
  np::Workload w;
  sim::BufferId id = w.mem->alloc(ir::ScalarType::kFloat, 4096);
  w.launch.args.push_back(id);
  w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
  w.launch.block = {32, 1, 1};
  w.launch.grid = {1, 1, 1};

  sim::SanitizerEngine engine;
  engine.mark_buffer_uninitialized(id, 4096);
  sim::Interpreter::Options iopt;
  iopt.sanitizer = &engine;
  auto spec = sim::DeviceSpec::gtx680();
  auto res = analysis::estimate_resources(kernel, spec);
  (void)sim::run_and_time(spec, *w.mem, kernel, w.launch, res.usage, iopt);
  // Lanes read buf[tid + 64]: never written -> uninit. buf[tid + 32] was
  // written by the first statement, so n == 32 would have been clean.
  ASSERT_GE(engine.count(sim::HazardKind::kUninitRead), 1u);
  EXPECT_NE(engine.reports()[0].message.find("global buffer"),
            std::string::npos)
      << engine.reports()[0].str();
}

TEST(Sanitizer, ReportFormatting) {
  sim::HazardReport r;
  r.kind = HazardKind::kSharedRace;
  r.kernel = "k";
  r.block = {1, 2, 3};
  r.thread = 7;
  r.loc = SourceLoc{12, 5};
  r.message = "boom";
  EXPECT_EQ(r.str(),
            "shared-race: boom [kernel 'k' block (1,2,3) thread 7 at 12:5]");
  r.thread = -1;
  EXPECT_EQ(r.str(), "shared-race: boom [kernel 'k' block (1,2,3) at 12:5]");
}

TEST(Sanitizer, EngineDedupeAndCounters) {
  sim::SanitizerEngine engine;
  sim::HazardReport r;
  r.kind = HazardKind::kUninitRead;
  r.kernel = "k";
  r.loc = SourceLoc{3, 1};
  engine.report(r);
  engine.report(r);  // same site -> deduplicated
  r.loc = SourceLoc{4, 1};
  engine.report(r);
  EXPECT_EQ(engine.reports().size(), 2u);
  EXPECT_EQ(engine.total_detected(), 3u);
  EXPECT_EQ(engine.count(HazardKind::kUninitRead), 2u);
  EXPECT_EQ(engine.count(HazardKind::kSharedRace), 0u);
  EXPECT_FALSE(engine.clean());
  engine.clear();
  EXPECT_TRUE(engine.clean());
}

}  // namespace
}  // namespace cudanp
