#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace cudanp::frontend {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  auto toks = tokenize(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.summary();
  return toks;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::kEof);
}

TEST(Lexer, Identifiers) {
  auto toks = lex("__global__ foo _bar x9");
  EXPECT_TRUE(toks[0].is_ident("__global__"));
  EXPECT_TRUE(toks[1].is_ident("foo"));
  EXPECT_TRUE(toks[2].is_ident("_bar"));
  EXPECT_TRUE(toks[3].is_ident("x9"));
}

TEST(Lexer, IntLiterals) {
  auto toks = lex("0 42 1024 0x1F 7u 9L");
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 1024);
  EXPECT_EQ(toks[3].int_value, 31);
  EXPECT_EQ(toks[4].int_value, 7);
  EXPECT_EQ(toks[5].int_value, 9);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(toks[i].kind, TokKind::kIntLit);
}

TEST(Lexer, FloatLiterals) {
  auto toks = lex("1.5 2.0f .25 3e2 1e-3f 7f");
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 2.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.25);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 300.0);
  EXPECT_DOUBLE_EQ(toks[4].float_value, 1e-3);
  EXPECT_DOUBLE_EQ(toks[5].float_value, 7.0);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(toks[i].kind, TokKind::kFloatLit);
}

TEST(Lexer, TwoCharOperators) {
  auto toks = lex("&& || == != <= >= << >> += -= *= /= ++ --");
  const char* expected[] = {"&&", "||", "==", "!=", "<=", ">=", "<<",
                            ">>", "+=", "-=", "*=", "/=", "++", "--"};
  for (std::size_t i = 0; i < 14; ++i)
    EXPECT_TRUE(toks[i].is_punct(expected[i])) << toks[i].text;
}

TEST(Lexer, SingleCharPunctuation) {
  auto toks = lex("( ) { } [ ] ; , . ? : % ^ ~");
  EXPECT_TRUE(toks[0].is_punct("("));
  EXPECT_TRUE(toks[8].is_punct("."));
}

TEST(Lexer, LineComments) {
  auto toks = lex("a // comment with * stuff\nb");
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_TRUE(toks[1].is_ident("b"));
}

TEST(Lexer, BlockComments) {
  auto toks = lex("a /* multi\nline\ncomment */ b");
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_TRUE(toks[1].is_ident("b"));
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagnosticEngine diags;
  (void)tokenize("a /* never closed", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, DirectiveCapturesWholeLine) {
  auto toks = lex("#pragma np parallel for reduction(+:sum)\nx");
  ASSERT_EQ(toks[0].kind, TokKind::kDirective);
  EXPECT_EQ(toks[0].text, "pragma np parallel for reduction(+:sum)");
  EXPECT_TRUE(toks[1].is_ident("x"));
}

TEST(Lexer, DirectiveWithLineContinuation) {
  auto toks = lex("#define A \\\n 5\nx");
  ASSERT_EQ(toks[0].kind, TokKind::kDirective);
  EXPECT_NE(toks[0].text.find("5"), std::string::npos);
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = lex("a\nb\n  c");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[2].loc.line, 3u);
  EXPECT_EQ(toks[2].loc.column, 3u);
}

TEST(Lexer, UnexpectedCharacterReported) {
  DiagnosticEngine diags;
  (void)tokenize("a @ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, LeadingDotFloat) {
  auto toks = lex("x[.5]");
  EXPECT_TRUE(toks[0].is_ident("x"));
  EXPECT_TRUE(toks[1].is_punct("["));
  EXPECT_EQ(toks[2].kind, TokKind::kFloatLit);
}

}  // namespace
}  // namespace cudanp::frontend
