// Execution watchdog: non-terminating kernels (infinite while loops,
// for loops that never advance, divergent __shfl spins) must trip the
// per-block interpreted-statement budget instead of hanging the
// simulator, and the trip must be deterministic — bit-identical hazard
// reports at every job count (see docs/robustness.md). Also covers the
// structured launch validation that runs before any block executes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp {
namespace {

sim::Interpreter::Options with_budget(std::int64_t max_steps, int jobs = 1) {
  sim::Interpreter::Options opt;
  opt.limits.max_steps_per_block = max_steps;
  opt.jobs = jobs;
  return opt;
}

/// Parses `src` and builds the synthetic workload convention used across
/// the sanitizer tests: one 4096-element buffer per pointer, n for int
/// scalars.
struct Prepared {
  std::unique_ptr<ir::Program> program;
  np::Workload workload;
  const ir::Kernel& kernel() const { return *program->kernels.front(); }
};

Prepared prepare(const std::string& src, int block_x, int grid_x,
                 int n = 64) {
  Prepared p;
  p.program = np::NpCompiler::parse(src);
  for (const auto& param : p.kernel().params) {
    if (param.type.is_pointer)
      p.workload.launch.args.push_back(
          p.workload.mem->alloc(param.type.scalar, 4096));
    else if (param.type.scalar == ir::ScalarType::kFloat)
      p.workload.launch.args.push_back(sim::LaunchConfig::scalar_float(1.0));
    else
      p.workload.launch.args.push_back(sim::LaunchConfig::scalar_int(n));
  }
  p.workload.launch.block = {block_x, 1, 1};
  p.workload.launch.grid = {grid_x, 1, 1};
  return p;
}

void expect_reports_equal(const std::vector<sim::HazardReport>& a,
                          const std::vector<sim::HazardReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "report " << i;
    EXPECT_EQ(a[i].block.x, b[i].block.x) << "report " << i;
    EXPECT_EQ(a[i].loc.line, b[i].loc.line) << "report " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "report " << i;
  }
}

const char* kInfiniteWhile = R"(
__global__ void spin(float* out, int n) {
  float x = 0.0f;
  while (0 < 1) {
    x = x + 1.0f;
  }
  out[threadIdx.x] = x;
}
)";

TEST(Watchdog, UnsanitizedInfiniteLoopThrowsWatchdogError) {
  auto p = prepare(kInfiniteWhile, 32, 1);
  np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(1000));
  try {
    (void)runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload));
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    EXPECT_GT(e.steps(), 1000);
    EXPECT_GT(e.loc().line, 0);
    std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("step budget"), std::string::npos) << msg;
    // The diagnosis names the hot loop via its back-edge counts.
    EXPECT_NE(msg.find("back-edges"), std::string::npos) << msg;
  }
}

// An empty loop body executes zero statements per iteration; only
// counting the back-edge itself as a step lets the budget trip.
TEST(Watchdog, EmptyBodySpinStillTrips) {
  auto p = prepare(R"(
__global__ void spin(float* out, int n) {
  while (0 < 1) {
  }
  out[threadIdx.x] = 1.0f;
}
)",
                   32, 1);
  np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(500));
  EXPECT_THROW(
      (void)runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload)),
      sim::WatchdogError);
}

TEST(Watchdog, MissingIncrementForLoopTripsSanitized) {
  auto p = prepare(R"(
__global__ void stuck(float* out, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i = i + 0) {
    s = s + 1.0f;
  }
  out[threadIdx.x] = s;
}
)",
                   32, 1);
  np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(2000));
  auto run = runner.execute(
      np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
  ASSERT_EQ(run.engine.reports().size(), 1u) << run.engine.summary();
  const auto& r = run.engine.reports().front();
  EXPECT_EQ(r.kind, sim::HazardKind::kWatchdogTrip);
  EXPECT_NE(r.message.find("watchdog"), std::string::npos) << r.message;
}

// Only some lanes spin (divergent loop) and the spinning lanes keep
// pulling __shfl values: the block still never retires, so the watchdog
// must fire — identically at jobs=1 and jobs=8.
TEST(Watchdog, DivergentShflSpinTripsBitIdentically) {
  const char* src = R"(
__global__ void shfl_spin(float* out, int n) {
  float v = threadIdx.x;
  while (threadIdx.x < 16) {
    v = __shfl(v, 0, 32);
  }
  out[threadIdx.x] = v;
}
)";
  std::vector<sim::HazardReport> reports[2];
  int slot = 0;
  for (int jobs : {1, 8}) {
    auto p = prepare(src, 32, 4);
    np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(3000, jobs));
    auto run = runner.execute(
      np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
    bool tripped = false;
    for (const auto& r : run.engine.reports())
      tripped = tripped || r.kind == sim::HazardKind::kWatchdogTrip;
    EXPECT_TRUE(tripped) << "jobs=" << jobs << "\n" << run.engine.summary();
    reports[slot++] = run.engine.reports();
  }
  expect_reports_equal(reports[0], reports[1]);
}

// Every block of a wide grid spins: cooperative cancellation stops the
// launch after the first (lowest-index) trip, and the merged report
// stream must not depend on how many host threads were racing ahead.
TEST(Watchdog, WideGridCancellationIsDeterministic) {
  std::vector<sim::HazardReport> reports[2];
  sim::KernelStats stats[2];
  int slot = 0;
  for (int jobs : {1, 8}) {
    auto p = prepare(kInfiniteWhile, 32, 64);
    np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(1000, jobs));
    auto run = runner.execute(
      np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
    ASSERT_EQ(run.engine.reports().size(), 1u)
        << "jobs=" << jobs << "\n" << run.engine.summary();
    EXPECT_EQ(run.engine.reports().front().kind,
              sim::HazardKind::kWatchdogTrip);
    // The surviving trip is the deterministic first one: block (0,0,0).
    EXPECT_EQ(run.engine.reports().front().block.x, 0);
    reports[slot] = run.engine.reports();
    stats[slot] = run.run.stats;
    ++slot;
  }
  expect_reports_equal(reports[0], reports[1]);
  EXPECT_EQ(stats[0].blocks, stats[1].blocks);
  EXPECT_EQ(stats[0].issue_slots, stats[1].issue_slots);
  EXPECT_EQ(stats[0].crit_path_cycles, stats[1].crit_path_cycles);
}

TEST(Watchdog, FiniteKernelRunsCleanUnderDefaultBudget) {
  auto p = prepare(R"(
__global__ void fine(float* out, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i++) {
    s = s + 1.0f;
  }
  out[threadIdx.x] = s;
}
)",
                   32, 4);
  np::Runner runner(sim::DeviceSpec::gtx680());  // budget 0 = auto
  auto run = runner.execute(
      np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST(Watchdog, ResolveMaxStepsPrecedence) {
  using I = sim::Interpreter;
  EXPECT_EQ(I::resolve_max_steps(123), 123);
  EXPECT_EQ(I::resolve_max_steps(-1),
            std::numeric_limits<std::int64_t>::max());
  ::unsetenv("CUDANP_MAX_STEPS");
  EXPECT_EQ(I::resolve_max_steps(0), I::kDefaultMaxStepsPerBlock);
  ::setenv("CUDANP_MAX_STEPS", "4567", 1);
  EXPECT_EQ(I::resolve_max_steps(0), 4567);
  // Explicit request still beats the environment.
  EXPECT_EQ(I::resolve_max_steps(9), 9);
  ::unsetenv("CUDANP_MAX_STEPS");
}

// ---------------------------------------------------------------------
// Structured launch validation (runs before any block executes).

TEST(LaunchValidation, RejectsNonPositiveDimensions) {
  auto spec = sim::DeviceSpec::gtx680();
  sim::LaunchConfig cfg;
  cfg.block = {0, 1, 1};
  cfg.grid = {1, 1, 1};
  EXPECT_THROW(sim::validate_launch(spec, cfg), SimError);
  cfg.block = {32, 1, 1};
  cfg.grid = {-2, 1, 1};
  try {
    sim::validate_launch(spec, cfg);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("invalid launch"),
              std::string::npos)
        << e.what();
  }
}

TEST(LaunchValidation, RejectsOversizedBlock) {
  auto spec = sim::DeviceSpec::gtx680();
  sim::LaunchConfig cfg;
  cfg.block = {spec.max_threads_per_block + 1, 1, 1};
  cfg.grid = {1, 1, 1};
  try {
    sim::validate_launch(spec, cfg);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("invalid launch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("device limit"), std::string::npos) << msg;
  }
}

TEST(LaunchValidation, RejectsSharedMemoryOverflow) {
  auto spec = sim::DeviceSpec::gtx680();
  sim::LaunchConfig cfg;
  cfg.block = {32, 1, 1};
  cfg.grid = {1, 1, 1};
  EXPECT_NO_THROW(sim::validate_launch(spec, cfg, 1024));
  try {
    sim::validate_launch(spec, cfg, spec.shared_mem_per_smx + 1);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("shared memory"),
              std::string::npos)
        << e.what();
  }
}

TEST(LaunchValidation, RejectsZeroDimensionInEveryAxis) {
  auto spec = sim::DeviceSpec::gtx680();
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  const sim::Dim3 zero_blocks[] = {{0, 8, 8}, {8, 0, 8}, {8, 8, 0}};
  for (const auto& b : zero_blocks) {
    cfg.block = b;
    EXPECT_THROW(sim::validate_launch(spec, cfg), SimError);
  }
  cfg.block = {8, 8, 1};
  const sim::Dim3 zero_grids[] = {{0, 4, 4}, {4, 0, 4}, {4, 4, 0}};
  for (const auto& g : zero_grids) {
    cfg.grid = g;
    EXPECT_THROW(sim::validate_launch(spec, cfg), SimError);
  }
  cfg.grid = {4, 4, 4};
  EXPECT_NO_THROW(sim::validate_launch(spec, cfg));
}

TEST(LaunchValidation, RejectsBlockProductOverflowing32Bits) {
  // Each axis fits an int, but the product (65535 * 65535 * 64 ~ 2^38)
  // overflows 32 bits. Dim3::count() computes in 64 bits, so this must
  // be rejected as oversized rather than wrapping into a small in-range
  // count.
  auto spec = sim::DeviceSpec::gtx680();
  sim::LaunchConfig cfg;
  cfg.block = {65535, 65535, 64};
  cfg.grid = {1, 1, 1};
  EXPECT_GT(cfg.block.count(),
            static_cast<std::int64_t>(1) << 32);  // no 32-bit wrap
  try {
    sim::validate_launch(spec, cfg);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("device limit"), std::string::npos)
        << e.what();
  }
  // A product that a 32-bit wrap would make look tiny (2^31 * 2 = 2^32
  // wraps to 0) must still be rejected.
  cfg.block = {1 << 30, 4, 1};
  EXPECT_THROW(sim::validate_launch(spec, cfg), SimError);
}

TEST(LaunchValidation, SharedMemoryExactlyAtCapacityIsAccepted) {
  auto spec = sim::DeviceSpec::gtx680();
  ASSERT_EQ(spec.shared_mem_per_smx, 48 * 1024);
  sim::LaunchConfig cfg;
  cfg.block = {32, 1, 1};
  cfg.grid = {1, 1, 1};
  // The boundary is inclusive: exactly 48 KB launches, one byte more
  // does not.
  EXPECT_NO_THROW(sim::validate_launch(spec, cfg, 48 * 1024));
  EXPECT_THROW(sim::validate_launch(spec, cfg, 48 * 1024 + 1), SimError);
  EXPECT_NO_THROW(sim::validate_launch(spec, cfg, 0));
}

// The sanitized path turns an invalid launch into a structured kSimFault
// report with ran=false instead of an exception.
TEST(LaunchValidation, SanitizedRunRecordsStructuredFault) {
  auto p = prepare(kInfiniteWhile, 32, 1);
  p.workload.launch.block = {2048, 1, 1};  // over the 1024-thread limit
  np::Runner runner(sim::DeviceSpec::gtx680(), with_budget(100));
  auto run = runner.execute(
      np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
  EXPECT_FALSE(run.ran);
  EXPECT_FALSE(run.clean());
  ASSERT_EQ(run.engine.reports().size(), 1u) << run.engine.summary();
  const auto& r = run.engine.reports().front();
  EXPECT_EQ(r.kind, sim::HazardKind::kSimFault);
  EXPECT_NE(r.message.find("invalid launch"), std::string::npos)
      << r.message;
}

}  // namespace
}  // namespace cudanp
