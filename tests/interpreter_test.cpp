#include <gtest/gtest.h>

#include <cmath>

#include "frontend/parser.hpp"
#include "sim/interpreter.hpp"

namespace cudanp::sim {
namespace {

/// Parses `src`, launches its only kernel and returns the stats.
struct Harness {
  DeviceSpec spec = DeviceSpec::gtx680();
  DeviceMemory mem;
  std::unique_ptr<ir::Program> program;
  KernelStats stats;

  BufferId alloc_f(std::size_t n) { return mem.alloc(ir::ScalarType::kFloat, n); }
  BufferId alloc_i(std::size_t n) { return mem.alloc(ir::ScalarType::kInt, n); }

  void run(const std::string& src, LaunchConfig cfg,
           const std::string& kernel = "k") {
    program = frontend::parse_program_or_throw(src);
    Interpreter interp(spec, mem);
    stats = interp.run(*program->find_kernel(kernel), cfg);
  }
  std::span<const float> f32(BufferId b) { return mem.buffer(b).f32(); }
  std::span<const std::int32_t> i32(BufferId b) { return mem.buffer(b).i32(); }
};

TEST(Interpreter, ThreadGeometry) {
  Harness h;
  auto out = h.alloc_i(6 * 4);
  h.run(
      "__global__ void k(int* o) {"
      "  int tid = threadIdx.x + blockIdx.x * blockDim.x;"
      "  o[tid * 4 + 0] = threadIdx.x;"
      "  o[tid * 4 + 1] = blockIdx.x;"
      "  o[tid * 4 + 2] = blockDim.x;"
      "  o[tid * 4 + 3] = gridDim.x;"
      "}",
      {.grid = {2, 1, 1}, .block = {3, 1, 1}, .args = {out}});
  auto o = h.i32(out);
  EXPECT_EQ(o[0 * 4 + 0], 0);
  EXPECT_EQ(o[4 * 4 + 0], 1);   // tid 4 = block 1, thread 1
  EXPECT_EQ(o[4 * 4 + 1], 1);
  EXPECT_EQ(o[5 * 4 + 2], 3);
  EXPECT_EQ(o[5 * 4 + 3], 2);
}

TEST(Interpreter, IntegerArithmeticSemantics) {
  Harness h;
  auto out = h.alloc_i(8);
  h.run(
      "__global__ void k(int* o) {"
      "  o[0] = 7 / 2;"
      "  o[1] = 7 % 3;"
      "  o[2] = 1 << 4;"
      "  o[3] = 256 >> 2;"
      "  o[4] = 5 & 3;"
      "  o[5] = 5 | 2;"
      "  o[6] = 5 ^ 1;"
      "  o[7] = -3 / 2;"
      "}",
      {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}});
  auto o = h.i32(out);
  EXPECT_EQ(o[0], 3);
  EXPECT_EQ(o[1], 1);
  EXPECT_EQ(o[2], 16);
  EXPECT_EQ(o[3], 64);
  EXPECT_EQ(o[4], 1);
  EXPECT_EQ(o[5], 7);
  EXPECT_EQ(o[6], 4);
  EXPECT_EQ(o[7], -1);  // C truncation toward zero
}

TEST(Interpreter, FloatRoundsThroughF32) {
  Harness h;
  auto out = h.alloc_f(2);
  h.run(
      "__global__ void k(float* o) {"
      "  float x = 0.1f;"
      "  o[0] = x + 0.2f;"
      "  o[1] = 1.0f / 3.0f;"
      "}",
      {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}});
  EXPECT_FLOAT_EQ(h.f32(out)[0], 0.1f + 0.2f);
  EXPECT_FLOAT_EQ(h.f32(out)[1], 1.0f / 3.0f);
}

TEST(Interpreter, MathBuiltins) {
  Harness h;
  auto out = h.alloc_f(8);
  h.run(
      "__global__ void k(float* o) {"
      "  o[0] = sqrtf(16.0f);"
      "  o[1] = fabsf(0.0f - 2.5f);"
      "  o[2] = expf(0.0f);"
      "  o[3] = logf(1.0f);"
      "  o[4] = fminf(3.0f, 4.0f);"
      "  o[5] = fmaxf(3.0f, 4.0f);"
      "  o[6] = powf(2.0f, 10.0f);"
      "  o[7] = floorf(2.7f);"
      "}",
      {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}});
  auto o = h.f32(out);
  EXPECT_FLOAT_EQ(o[0], 4.0f);
  EXPECT_FLOAT_EQ(o[1], 2.5f);
  EXPECT_FLOAT_EQ(o[2], 1.0f);
  EXPECT_FLOAT_EQ(o[3], 0.0f);
  EXPECT_FLOAT_EQ(o[4], 3.0f);
  EXPECT_FLOAT_EQ(o[5], 4.0f);
  EXPECT_FLOAT_EQ(o[6], 1024.0f);
  EXPECT_FLOAT_EQ(o[7], 2.0f);
}

TEST(Interpreter, DivergentIfBothPathsExecute) {
  Harness h;
  auto out = h.alloc_i(64);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  if (t < 20) { o[t] = 1; } else { o[t] = 2; }"
      "}",
      {.grid = {1, 1, 1}, .block = {64, 1, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[19], 1);
  EXPECT_EQ(h.i32(out)[20], 2);
  // Warp 0 diverges (lanes 0-19 vs 20-31); warp 1 does not.
  EXPECT_EQ(h.stats.divergent_branches, 1);
}

TEST(Interpreter, PerLaneLoopTripCounts) {
  Harness h;
  auto out = h.alloc_i(8);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  int c = 0;"
      "  for (int i = 0; i < t; i++) c += 1;"
      "  o[t] = c;"
      "}",
      {.grid = {1, 1, 1}, .block = {8, 1, 1}, .args = {out}});
  for (int t = 0; t < 8; ++t) EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], t);
}

TEST(Interpreter, WhileLoop) {
  Harness h;
  auto out = h.alloc_i(4);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  int x = 1;"
      "  while (x < t + 2) x = x * 2;"
      "  o[t] = x;"
      "}",
      {.grid = {1, 1, 1}, .block = {4, 1, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[0], 2);
  EXPECT_EQ(h.i32(out)[1], 4);
  EXPECT_EQ(h.i32(out)[2], 4);
  EXPECT_EQ(h.i32(out)[3], 8);
}

TEST(Interpreter, ReturnMasksLanesForRestOfKernel) {
  Harness h;
  auto out = h.alloc_i(8);
  h.run(
      "__global__ void k(int* o, int n) {"
      "  int t = threadIdx.x;"
      "  o[t] = 1;"
      "  if (t >= n) { return; }"
      "  o[t] = 2;"
      "}",
      {.grid = {1, 1, 1},
       .block = {8, 1, 1},
       .args = {out, Value::of_int(4)}});
  for (int t = 0; t < 4; ++t) EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], 2);
  for (int t = 4; t < 8; ++t) EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], 1);
}

TEST(Interpreter, SharedMemoryCommunication) {
  Harness h;
  auto out = h.alloc_f(32);
  h.run(
      "__global__ void k(float* o) {"
      "  __shared__ float t[32];"
      "  int i = threadIdx.x;"
      "  t[i] = (float)i;"
      "  __syncthreads();"
      "  o[i] = t[31 - i];"
      "}",
      {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {out}});
  for (int i = 0; i < 32; ++i)
    EXPECT_FLOAT_EQ(h.f32(out)[static_cast<std::size_t>(i)], static_cast<float>(31 - i));
  EXPECT_GE(h.stats.sync_ops, 1);
}

TEST(Interpreter, SharedMemoryTreeReduction) {
  Harness h;
  auto out = h.alloc_f(1);
  h.run(
      "__global__ void k(float* o) {"
      "  __shared__ float red[64];"
      "  int i = threadIdx.x;"
      "  red[i] = 1.0f;"
      "  __syncthreads();"
      "  for (int off = 32; off > 0; off = off / 2) {"
      "    if (i < off) { red[i] += red[i + off]; }"
      "    __syncthreads();"
      "  }"
      "  if (i == 0) { o[0] = red[0]; }"
      "}",
      {.grid = {1, 1, 1}, .block = {64, 1, 1}, .args = {out}});
  EXPECT_FLOAT_EQ(h.f32(out)[0], 64.0f);
}

TEST(Interpreter, LocalArrayPerThreadPrivacy) {
  Harness h;
  auto out = h.alloc_i(16);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  int a[4];"
      "  for (int i = 0; i < 4; i++) a[i] = t * 10 + i;"
      "  o[t] = a[3];"
      "}",
      {.grid = {1, 1, 1}, .block = {16, 1, 1}, .args = {out}});
  for (int t = 0; t < 16; ++t)
    EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], t * 10 + 3);
  EXPECT_GT(h.stats.local_transactions, 0);
}

TEST(Interpreter, ConstantInitializerList) {
  Harness h;
  auto out = h.alloc_i(4);
  h.run(
      "__global__ void k(int* o) {"
      "  __constant__ int tab[4] = {5, 1, 4, 2};"
      "  int t = threadIdx.x;"
      "  o[t] = tab[t];"
      "}",
      {.grid = {1, 1, 1}, .block = {4, 1, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[0], 5);
  EXPECT_EQ(h.i32(out)[3], 2);
}

TEST(Interpreter, ShflBroadcastFromGroupLeader) {
  Harness h;
  auto out = h.alloc_i(32);
  // Paper Sec. 2.1 example: __shfl(var, 0, 4) -> lanes 0-3 read lane 0,
  // lanes 4-7 read lane 4, ...
  h.run(
      "__global__ void k(int* o) {"
      "  int v = threadIdx.x;"
      "  o[threadIdx.x] = __shfl(v, 0, 4);"
      "}",
      {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {out}});
  for (int l = 0; l < 32; ++l)
    EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(l)], l / 4 * 4);
}

TEST(Interpreter, ShflUpDownClampAtGroupBoundary) {
  Harness h;
  auto up = h.alloc_i(8);
  auto down = h.alloc_i(8);
  h.run(
      "__global__ void k(int* u, int* d) {"
      "  int v = threadIdx.x;"
      "  u[threadIdx.x] = __shfl_up(v, 1, 8);"
      "  d[threadIdx.x] = __shfl_down(v, 2, 8);"
      "}",
      {.grid = {1, 1, 1}, .block = {8, 1, 1}, .args = {up, down}});
  EXPECT_EQ(h.i32(up)[0], 0);  // no lane below: keeps own value
  EXPECT_EQ(h.i32(up)[1], 0);
  EXPECT_EQ(h.i32(up)[7], 6);
  EXPECT_EQ(h.i32(down)[0], 2);
  EXPECT_EQ(h.i32(down)[6], 6);  // beyond group: keeps own
  EXPECT_EQ(h.i32(down)[7], 7);
}

TEST(Interpreter, ShflXorButterflySum) {
  Harness h;
  auto out = h.alloc_i(16);
  h.run(
      "__global__ void k(int* o) {"
      "  int v = threadIdx.x;"
      "  for (int m = 4; m > 0; m = m / 2)"
      "    v = v + __shfl_xor(v, m, 8);"
      "  o[threadIdx.x] = v;"
      "}",
      {.grid = {1, 1, 1}, .block = {16, 1, 1}, .args = {out}});
  // Group 0 (lanes 0-7) sums 0..7 = 28; group 1 sums 8..15 = 92.
  for (int l = 0; l < 8; ++l) EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(l)], 28);
  for (int l = 8; l < 16; ++l) EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(l)], 92);
  EXPECT_EQ(h.stats.shfl_ops, 3);
}

TEST(Interpreter, ShflCrossesWarpsNever) {
  Harness h;
  auto out = h.alloc_i(64);
  h.run(
      "__global__ void k(int* o) {"
      "  int v = threadIdx.x;"
      "  o[threadIdx.x] = __shfl(v, 0, 32);"
      "}",
      {.grid = {1, 1, 1}, .block = {64, 1, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[31], 0);
  EXPECT_EQ(h.i32(out)[32], 32);  // second warp reads its own lane 0
}

TEST(Interpreter, ShflRequiresSm30) {
  Harness h;
  h.spec.sm_version = 20;
  auto out = h.alloc_i(32);
  EXPECT_THROW(
      h.run("__global__ void k(int* o) { o[threadIdx.x] = "
            "__shfl(threadIdx.x, 0, 4); }",
            {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, ShflBadWidthThrows) {
  Harness h;
  auto out = h.alloc_i(32);
  EXPECT_THROW(
      h.run("__global__ void k(int* o) { o[threadIdx.x] = "
            "__shfl(threadIdx.x, 0, 5); }",
            {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, TwoDimensionalBlocks) {
  Harness h;
  auto out = h.alloc_i(32);
  h.run(
      "__global__ void k(int* o) {"
      "  o[threadIdx.y * blockDim.x + threadIdx.x] ="
      "      threadIdx.y * 100 + threadIdx.x;"
      "}",
      {.grid = {1, 1, 1}, .block = {8, 4, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[0], 0);
  EXPECT_EQ(h.i32(out)[8], 100);
  EXPECT_EQ(h.i32(out)[31], 307);
}

TEST(Interpreter, GlobalOutOfBoundsThrows) {
  Harness h;
  auto out = h.alloc_i(4);
  EXPECT_THROW(
      h.run("__global__ void k(int* o) { o[99] = 1; }",
            {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, LocalArrayOutOfBoundsThrows) {
  Harness h;
  auto out = h.alloc_i(1);
  EXPECT_THROW(
      h.run("__global__ void k(int* o) { int a[4]; a[7] = 1; o[0] = a[7]; }",
            {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, UndeclaredVariableThrows) {
  Harness h;
  auto out = h.alloc_i(1);
  EXPECT_THROW(
      h.run("__global__ void k(int* o) { o[0] = nope; }",
            {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, DivisionByZeroThrows) {
  Harness h;
  auto out = h.alloc_i(1);
  EXPECT_THROW(
      h.run("__global__ void k(int* o, int z) { o[0] = 5 / z; }",
            {.grid = {1, 1, 1},
             .block = {1, 1, 1},
             .args = {out, Value::of_int(0)}}),
      SimError);
}

TEST(Interpreter, WrongArgCountThrows) {
  Harness h;
  auto out = h.alloc_i(1);
  EXPECT_THROW(
      h.run("__global__ void k(int* o, int n) { o[0] = n; }",
            {.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}}),
      SimError);
}

TEST(Interpreter, RunawayLoopGuard) {
  Harness h;
  auto out = h.alloc_i(1);
  Interpreter::Options opt;
  opt.limits.max_loop_iterations = 100;
  h.program = frontend::parse_program_or_throw(
      "__global__ void k(int* o) {"
      "  int x = 0;"
      "  while (x < 1000000) x += 1;"
      "  o[0] = x;"
      "}");
  Interpreter interp(h.spec, h.mem, opt);
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}, .args = {out}};
  EXPECT_THROW((void)interp.run(*h.program->find_kernel("k"), cfg), SimError);
}

TEST(Interpreter, CoalescedVsStridedTransactionCounts) {
  Harness h1, h2;
  auto a1 = h1.alloc_f(1024);
  auto o1 = h1.alloc_f(1024);
  h1.run("__global__ void k(float* a, float* o) {"
         "  o[threadIdx.x] = a[threadIdx.x]; }",
         {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {a1, o1}});
  auto a2 = h2.alloc_f(1024);
  auto o2 = h2.alloc_f(1024);
  h2.run("__global__ void k(float* a, float* o) {"
         "  o[threadIdx.x] = a[threadIdx.x * 32]; }",
         {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {a2, o2}});
  EXPECT_GT(h2.stats.global_transactions, h1.stats.global_transactions);
}

TEST(Interpreter, WarpChargedWhenAnyLaneActive) {
  // Intra-warp imbalance: one lane looping 10x costs the warp 10
  // iterations of issue (paper Sec. 3.4).
  Harness balanced, imbalanced;
  auto ob = balanced.alloc_i(32);
  balanced.run(
      "__global__ void k(int* o) {"
      "  int c = 0;"
      "  for (int i = 0; i < 10; i++) c += 1;"
      "  o[threadIdx.x] = c; }",
      {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {ob}});
  auto oi = imbalanced.alloc_i(32);
  imbalanced.run(
      "__global__ void k(int* o) {"
      "  int c = 0;"
      "  int n = 0;"
      "  if (threadIdx.x == 0) { n = 10; }"
      "  for (int i = 0; i < n; i++) c += 1;"
      "  o[threadIdx.x] = c; }",
      {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {oi}});
  // The imbalanced warp still pays roughly the full 10-iteration cost.
  EXPECT_GT(imbalanced.stats.issue_slots, 0.6 * balanced.stats.issue_slots);
}

}  // namespace
}  // namespace cudanp::sim
