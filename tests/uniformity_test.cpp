#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "analysis/uniformity.hpp"
#include "frontend/parser.hpp"

namespace cudanp::analysis {
namespace {

using namespace cudanp::ir;

struct Fixture {
  std::unique_ptr<Program> program;
  UniformityTracker tracker;

  explicit Fixture(const std::string& body,
                   std::set<std::string> seed = {"master_id"})
      : program(cudanp::frontend::parse_program_or_throw(
            "__global__ void k(float* a, int n) { " + body + " }")),
        tracker(build_symbol_table(*program->kernels[0]), std::move(seed)) {
    // Scalar params are uniform by construction, as the transformer seeds
    // them.
    tracker.mark_uniform("n");
  }

  const Stmt& stmt(std::size_t i) { return *program->kernels[0]->body->stmts[i]; }
};

TEST(Uniformity, LiteralInitIsUniform) {
  Fixture f("float x = 1.5f;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
  EXPECT_TRUE(f.tracker.is_uniform_var("x"));
}

TEST(Uniformity, ParamArithmeticIsUniform) {
  Fixture f("int off = n * 4 + 1;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, MasterIdSeedIsUniform) {
  // After the NP remap, master_id is shared by the whole group, so
  // `tx = master_id + blockIdx.x * 32` is redundantly computable
  // (paper Sec. 3.1).
  Fixture f("int tx = master_id + blockIdx.x * 32;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, ThreadIdxIsNotUniform) {
  Fixture f("int t = threadIdx.x;");
  EXPECT_FALSE(f.tracker.step(f.stmt(0)));
  EXPECT_FALSE(f.tracker.is_uniform_var("t"));
}

TEST(Uniformity, BlockGeometryIsUniform) {
  Fixture f("int b = blockIdx.x * blockDim.y + gridDim.x;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, MemoryReadIsNeverRedundant) {
  // Redundant loads would multiply global traffic; the paper keeps loads
  // in the master + broadcast path.
  Fixture f("float v = a[0];");
  EXPECT_FALSE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, PureMathCallsPropagate) {
  Fixture f("float x = sqrtf((float)n);");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, ShflIsNotPure) {
  Fixture f("float x = __shfl(1.0f, 0, 4);");
  EXPECT_FALSE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, FlowSensitivity) {
  Fixture f(
      "float x = 1.0f;"
      "float y = x * 2.0f;"
      "x = a[0];"
      "float z = x + 1.0f;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));   // x uniform
  EXPECT_TRUE(f.tracker.step(f.stmt(1)));   // y uniform (uses x)
  EXPECT_FALSE(f.tracker.step(f.stmt(2)));  // x killed by load
  EXPECT_FALSE(f.tracker.step(f.stmt(3)));  // z depends on killed x
  EXPECT_TRUE(f.tracker.is_uniform_var("y"));
  EXPECT_FALSE(f.tracker.is_uniform_var("x"));
}

TEST(Uniformity, CompoundAssignNeedsUniformTarget) {
  Fixture f(
      "float x = a[0];"
      "x += 1.0f;");
  EXPECT_FALSE(f.tracker.step(f.stmt(0)));
  EXPECT_FALSE(f.tracker.step(f.stmt(1)));  // x was not uniform
}

TEST(Uniformity, CompoundAssignOnUniformStaysUniform) {
  Fixture f(
      "float x = 1.0f;"
      "x += 2.0f;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
  EXPECT_TRUE(f.tracker.step(f.stmt(1)));
}

TEST(Uniformity, BareDeclExecutableButValueUnknown) {
  Fixture f("int x;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
  EXPECT_FALSE(f.tracker.is_uniform_var("x"));
}

TEST(Uniformity, ArrayStoreNotRedundant) {
  Fixture f("a[0] = 1.0f;");
  EXPECT_FALSE(f.tracker.step(f.stmt(0)));
}

TEST(Uniformity, MarkHelpers) {
  Fixture f("int x;");
  f.tracker.mark_uniform("q");
  EXPECT_TRUE(f.tracker.is_uniform_var("q"));
  f.tracker.mark_nonuniform("q");
  EXPECT_FALSE(f.tracker.is_uniform_var("q"));
}

TEST(Uniformity, TernaryAndCastPropagate) {
  Fixture f("float x = n > 0 ? (float)n : 0.5f;");
  EXPECT_TRUE(f.tracker.step(f.stmt(0)));
}

}  // namespace
}  // namespace cudanp::analysis
