#include <gtest/gtest.h>

#include "analysis/access_pattern.hpp"
#include "frontend/parser.hpp"
#include "kernels/benchmark.hpp"
#include "np/autotuner.hpp"
#include "np/heuristic.hpp"

namespace cudanp {
namespace {

using analysis::decompose_linear;
using analysis::summarize_access_patterns;

ir::ExprPtr parse_index(const std::string& expr_text) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(float* a, int w, int h) { a[" + expr_text +
      "] = 0.0f; }");
  auto& assign = static_cast<ir::AssignStmt&>(*p->kernels[0]->body->stmts[0]);
  auto& idx = static_cast<ir::ArrayIndex&>(*assign.lhs);
  static std::unique_ptr<ir::Program> keep;
  keep = std::move(p);
  return idx.indices[0]->clone();
}

TEST(LinearForm, MasterUnitStride) {
  auto e = parse_index("i * w + tx");
  auto lf = decompose_linear(*e, "tx", "i");
  ASSERT_TRUE(lf.affine);
  EXPECT_EQ(*lf.master_coeff, 1);
  EXPECT_EQ(*lf.iter_coeff, 0);  // w is symbolic: treated as invariant
}

TEST(LinearForm, IteratorUnitStride) {
  auto e = parse_index("tx * 128 + i");
  auto lf = decompose_linear(*e, "tx", "i");
  ASSERT_TRUE(lf.affine);
  EXPECT_EQ(*lf.master_coeff, 128);
  EXPECT_EQ(*lf.iter_coeff, 1);
}

TEST(LinearForm, ConstantFolding) {
  auto e = parse_index("tx * (4 * 8) + i * 2 + 5");
  auto lf = decompose_linear(*e, "tx", "i");
  ASSERT_TRUE(lf.affine);
  EXPECT_EQ(*lf.master_coeff, 32);
  EXPECT_EQ(*lf.iter_coeff, 2);
}

TEST(LinearForm, Subtraction) {
  auto e = parse_index("i - tx");
  auto lf = decompose_linear(*e, "tx", "i");
  ASSERT_TRUE(lf.affine);
  EXPECT_EQ(*lf.master_coeff, -1);
  EXPECT_EQ(*lf.iter_coeff, 1);
}

TEST(LinearForm, NonAffineProduct) {
  auto lf = decompose_linear(*parse_index("tx * i"), "tx", "i");
  EXPECT_FALSE(lf.affine);
}

TEST(LinearForm, InvariantProductStaysAffine) {
  auto lf = decompose_linear(*parse_index("w * h + tx"), "tx", "i");
  ASSERT_TRUE(lf.affine);
  EXPECT_EQ(*lf.master_coeff, 1);
}

TEST(AccessPattern, TmvIsMasterCoalesced) {
  // TMV reads a[i*w + tx] and b[i]: the tx-indexed access is coalesced
  // across masters (through the `tx = threadIdx.x + ...` definition).
  auto bench = kernels::make_benchmark("TMV", 0.1);
  auto s = summarize_access_patterns(bench->kernel());
  EXPECT_GT(s.global_accesses, 0);
  EXPECT_GE(s.coalesced_by_master, 1);
  EXPECT_FALSE(s.master_divergent_guard);
}

TEST(AccessPattern, SsIsIteratorRecoalescible) {
  // SS reads pts[tid*dim + ...+ j]: master stride = dim (>= 32),
  // iterator stride = 1 -> intra-warp NP re-coalesces.
  auto bench = kernels::make_benchmark("SS", 0.1);
  auto s = summarize_access_patterns(bench->kernel());
  EXPECT_GT(s.recoalesced_by_iterator, 0);
}

TEST(AccessPattern, LuHasMasterDivergentGuard) {
  auto bench = kernels::make_benchmark("LU", 0.1);
  auto s = summarize_access_patterns(bench->kernel());
  EXPECT_TRUE(s.master_divergent_guard);
}

TEST(AccessPattern, TripCountRecorded) {
  auto bench = kernels::make_benchmark("LE", 0.1);
  auto s = summarize_access_patterns(bench->kernel());
  EXPECT_EQ(s.max_const_trip, 150);
}

TEST(Heuristic, PrefersIntraForLu) {
  auto bench = kernels::make_benchmark("LU", 0.1);
  auto c = np::suggest_config(bench->kernel(), 32,
                              sim::DeviceSpec::gtx680());
  EXPECT_EQ(c.config.np_type, ir::NpType::kIntraWarp);
  EXPECT_NE(c.rationale.find("guard"), std::string::npos);
}

TEST(Heuristic, PrefersIntraForSs) {
  auto bench = kernels::make_benchmark("SS", 0.1);
  auto c = np::suggest_config(bench->kernel(), 128,
                              sim::DeviceSpec::gtx680());
  EXPECT_EQ(c.config.np_type, ir::NpType::kIntraWarp);
}

TEST(Heuristic, PrefersInterForCoalescedBaselines) {
  for (const char* name : {"TMV", "MV", "BK"}) {
    auto bench = kernels::make_benchmark(name, 0.1);
    auto probe = bench->make_workload();
    auto c = np::suggest_config(bench->kernel(),
                                static_cast<int>(probe.launch.block.count()),
                                sim::DeviceSpec::gtx680());
    EXPECT_EQ(c.config.np_type, ir::NpType::kInterWarp) << name;
  }
}

TEST(Heuristic, TinyLoopsGetSmallGroups) {
  auto bench = kernels::make_benchmark("CFD", 0.1);
  auto c = np::suggest_config(bench->kernel(), 128,
                              sim::DeviceSpec::gtx680());
  EXPECT_LE(c.config.slave_size, 4);  // LC = 4
}

TEST(Heuristic, RespectsBlockSizeCap) {
  auto bench = kernels::make_benchmark("SS", 0.1);
  auto c = np::suggest_config(bench->kernel(), 512,
                              sim::DeviceSpec::gtx680());
  EXPECT_LE(c.config.block_threads(), 1024);
}

TEST(Heuristic, SuggestionIsValidAndCorrect) {
  // The heuristic pick must transform cleanly and validate on every
  // benchmark.
  for (auto& bench : kernels::make_benchmark_suite(0.08)) {
    auto probe = bench->make_workload();
    auto c = np::suggest_config(bench->kernel(),
                                static_cast<int>(probe.launch.block.count()),
                                sim::DeviceSpec::gtx680());
    auto variant = np::NpCompiler::transform(bench->kernel(), c.config);
    np::Runner runner{sim::DeviceSpec::gtx680()};
    auto w = bench->make_workload();
    (void)runner.execute(np::ExecutionRequest::transformed(variant, w));
    std::string msg;
    EXPECT_TRUE(!w.validate || w.validate(*w.mem, &msg))
        << bench->name() << ": " << msg;
  }
}

}  // namespace
}  // namespace cudanp
