#include <gtest/gtest.h>

#include "frontend/pragma_parser.hpp"

namespace cudanp::frontend {
namespace {

using namespace cudanp::ir;

std::optional<NpPragma> parse(std::string_view text) {
  DiagnosticEngine diags;
  return parse_np_pragma(text, {1, 1}, diags);
}

TEST(PragmaParser, ParallelFor) {
  auto p = parse("pragma np parallel for");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->parallel_for);
  EXPECT_TRUE(p->reductions.empty());
}

TEST(PragmaParser, ShorthandForAccepted) {
  // Fig. 5 uses `#pragma np parallel for`; the short `np for` also works.
  auto p = parse("pragma np for");
  ASSERT_TRUE(p.has_value());
}

TEST(PragmaParser, NonNpPragmaIgnored) {
  EXPECT_FALSE(parse("pragma unroll 4").has_value());
  EXPECT_FALSE(parse("pragma omp parallel").has_value());
}

TEST(PragmaParser, ReductionAdd) {
  auto p = parse("pragma np parallel for reduction(+:sum)");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->reductions.size(), 1u);
  EXPECT_EQ(p->reductions[0].op, ReduceOp::kAdd);
  EXPECT_TRUE(p->names_reduction_var("sum"));
  EXPECT_FALSE(p->names_reduction_var("other"));
}

TEST(PragmaParser, ReductionMultipleVars) {
  auto p = parse("pragma np parallel for reduction(+:var, ep)");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->reductions[0].vars.size(), 2u);
  EXPECT_TRUE(p->names_reduction_var("ep"));
}

TEST(PragmaParser, AllReductionOps) {
  EXPECT_EQ(parse("pragma np parallel for reduction(*:x)")->reductions[0].op,
            ReduceOp::kMul);
  EXPECT_EQ(parse("pragma np parallel for reduction(min:x)")->reductions[0].op,
            ReduceOp::kMin);
  EXPECT_EQ(parse("pragma np parallel for reduction(max:x)")->reductions[0].op,
            ReduceOp::kMax);
}

TEST(PragmaParser, ScanClause) {
  auto p = parse("pragma np parallel for scan(+:acc)");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->scans.size(), 1u);
  EXPECT_TRUE(p->names_scan_var("acc"));
  EXPECT_TRUE(p->has_reduction_or_scan());
}

TEST(PragmaParser, CopyinClause) {
  auto p = parse("pragma np parallel for copyin(a, b, c)");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->copy_in.size(), 3u);
  EXPECT_EQ(p->copy_in[1], "b");
}

TEST(PragmaParser, NumThreadsAndNpType) {
  auto p = parse(
      "pragma np parallel for num_threads(8) np_type(inter) sm_version(35)");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_threads, 8);
  EXPECT_EQ(p->np_type, NpType::kInterWarp);
  EXPECT_EQ(p->sm_version, 35);
}

TEST(PragmaParser, IntraType) {
  EXPECT_EQ(parse("pragma np parallel for np_type(intra)")->np_type,
            NpType::kIntraWarp);
}

TEST(PragmaParser, CombinedClauses) {
  auto p = parse(
      "pragma np parallel for reduction(+:s) reduction(max:m) scan(*:acc) "
      "copyin(x) num_threads(4)");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->reductions.size(), 2u);
  EXPECT_EQ(p->scans.size(), 1u);
  EXPECT_EQ(p->copy_in.size(), 1u);
}

TEST(PragmaParser, MalformedReductionRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse_np_pragma("pragma np parallel for reduction(+sum)", {1, 1}, diags)
          .has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(PragmaParser, BadOpRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_np_pragma("pragma np parallel for reduction(-:x)",
                               {1, 1}, diags)
                   .has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(PragmaParser, UnknownClauseRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse_np_pragma("pragma np parallel for schedule(static)", {1, 1},
                      diags)
          .has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(PragmaParser, BadNpTypeRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_np_pragma("pragma np parallel for np_type(wide)",
                               {1, 1}, diags)
                   .has_value());
}

TEST(PragmaParser, MissingForRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_np_pragma("pragma np parallel", {1, 1}, diags)
                   .has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(NpPragma, RoundTripStr) {
  auto p = parse(
      "pragma np parallel for reduction(+:s) scan(+:acc) copyin(a,b) "
      "num_threads(8) np_type(intra)");
  ASSERT_TRUE(p.has_value());
  std::string s = p->str();
  EXPECT_NE(s.find("reduction(+:s)"), std::string::npos);
  EXPECT_NE(s.find("scan(+:acc)"), std::string::npos);
  EXPECT_NE(s.find("copyin(a,b)"), std::string::npos);
  EXPECT_NE(s.find("num_threads(8)"), std::string::npos);
  EXPECT_NE(s.find("np_type(intra)"), std::string::npos);
  // The rendered form must re-parse to the same clauses.
  DiagnosticEngine diags;
  auto again = parse_np_pragma(s.substr(1), {1, 1}, diags);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->num_threads, 8);
  EXPECT_EQ(again->copy_in.size(), 2u);
}

TEST(ReduceOp, Identities) {
  EXPECT_EQ(identity_of(ReduceOp::kAdd), 0.0);
  EXPECT_EQ(identity_of(ReduceOp::kMul), 1.0);
  EXPECT_GT(identity_of(ReduceOp::kMin), 1e30);
  EXPECT_LT(identity_of(ReduceOp::kMax), -1e30);
}

}  // namespace
}  // namespace cudanp::frontend
