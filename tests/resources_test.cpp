#include <gtest/gtest.h>

#include "analysis/resources.hpp"
#include "frontend/parser.hpp"
#include "kernels/benchmark.hpp"

namespace cudanp::analysis {
namespace {

ResourceEstimate estimate(const std::string& src) {
  auto p = cudanp::frontend::parse_program_or_throw(src);
  return estimate_resources(*p->kernels[0],
                            cudanp::sim::DeviceSpec::gtx680());
}

TEST(Resources, SharedMemoryIsExactSum) {
  auto r = estimate(
      "__global__ void k() {"
      "  __shared__ float a[16][16];"
      "  __shared__ float b[16][16];"
      "  __shared__ int c[32];"
      "}");
  EXPECT_EQ(r.usage.shared_mem_per_block, 16 * 16 * 4 * 2 + 32 * 4);
}

TEST(Resources, LocalArrayBytes) {
  // LE's Grad[150]: 600 B of local memory, matching Table 1.
  auto r = estimate("__global__ void k() { float grad[150]; }");
  EXPECT_EQ(r.declared_local_bytes, 600);
  EXPECT_EQ(r.usage.local_mem_per_thread, 600);
}

TEST(Resources, RegisterArrayCountsAsRegisters) {
  auto small = estimate("__global__ void k() { float x = 0.0f; }");
  auto with_arr = estimate(
      "__global__ void k() { float x = 0.0f; __shared__ float s[4]; }");
  (void)with_arr;
  auto base = small.usage.registers_per_thread;
  EXPECT_GT(base, 0);
  EXPECT_LE(base, 63);
}

TEST(Resources, MoreScalarsMoreRegisters) {
  auto a = estimate("__global__ void k() { float x = 0.0f; }");
  auto b = estimate(
      "__global__ void k() { float x = 0.0f; float y = 0.0f;"
      " float z = 0.0f; float w = 0.0f; }");
  EXPECT_GT(b.estimated_registers_raw, a.estimated_registers_raw);
}

TEST(Resources, RegisterClampAndSpill) {
  // A 64-element register-partitioned array exceeds the 63-register GK104
  // limit: the excess spills to local memory.
  std::string body = "__global__ void k() {";
  for (int i = 0; i < 80; ++i)
    body += " float v" + std::to_string(i) + " = 0.0f;";
  body += " }";
  auto r = estimate(body);
  EXPECT_EQ(r.usage.registers_per_thread, 63);
  EXPECT_GT(r.register_spill_bytes, 0);
  EXPECT_EQ(r.usage.local_mem_per_thread, r.register_spill_bytes);
}

TEST(Resources, RedeclarationInLoopCountedOnce) {
  auto a = estimate(
      "__global__ void k(int n) {"
      "  for (int i = 0; i < n; i++) { float t = 1.0f; }"
      "  for (int j = 0; j < n; j++) { float t = 2.0f; }"
      "}");
  auto b = estimate(
      "__global__ void k(int n) {"
      "  for (int i = 0; i < n; i++) { float t = 1.0f; }"
      "}");
  // `t` shadows across loops: only i/j differ.
  EXPECT_EQ(a.estimated_registers_raw, b.estimated_registers_raw + 1);
}

class BenchmarkResources : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkResources, BaselineFitsTheDevice) {
  auto bench = cudanp::kernels::make_benchmark(GetParam(), 0.1);
  auto spec = cudanp::sim::DeviceSpec::gtx680();
  auto r = estimate_resources(bench->kernel(), spec);
  EXPECT_GT(r.usage.registers_per_thread, 0);
  EXPECT_LE(r.usage.registers_per_thread, spec.max_registers_per_thread);
  EXPECT_LE(r.usage.shared_mem_per_block, spec.shared_mem_per_smx);
  auto workload = bench->make_workload();
  auto occ = cudanp::sim::compute_occupancy(
      spec, static_cast<int>(workload.launch.block.count()), r.usage);
  EXPECT_GT(occ.blocks_per_smx, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkResources,
    ::testing::ValuesIn(cudanp::kernels::benchmark_names()));

TEST(Resources, LeLocalMemoryMatchesTable1) {
  auto bench = cudanp::kernels::make_benchmark("LE", 0.1);
  auto r = estimate_resources(bench->kernel(),
                              cudanp::sim::DeviceSpec::gtx680());
  EXPECT_EQ(r.declared_local_bytes, 600);  // Table 1: LE BL LM = 600
}

TEST(Resources, LibLocalMemoryMatchesTable1) {
  auto bench = cudanp::kernels::make_benchmark("LIB", 0.1);
  auto r = estimate_resources(bench->kernel(),
                              cudanp::sim::DeviceSpec::gtx680());
  EXPECT_EQ(r.declared_local_bytes, 960);  // Table 1: LIB BL LM = 960
}

}  // namespace
}  // namespace cudanp::analysis
