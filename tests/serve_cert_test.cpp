// Certified serving: symbolic equivalence certificates as first-class
// serve artifacts. A certified batch pre-proves every candidate variant
// once (content-addressed in the artifact cache), ships the proofs with
// each attempt, quarantines refuted variants as proven-wrong before
// they can serve an answer, and — under the certified fast path — lets
// proven variants skip the per-run sanitized cross-check. None of this
// may change a clean report: certification is evidence, not behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "np/certifier.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/service.hpp"
#include "sim/device.hpp"

namespace cudanp {
namespace {

// Paper Fig. 1 kernel: compiles cleanly, has candidates, and its NP
// reduction certifies (modulo float reassociation).
const char* kTmv = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

serve::JobSpec tmv_job(const std::string& name) {
  serve::JobSpec j;
  j.name = name;
  j.source = kTmv;
  j.elems = 16;
  j.tb = 8;
  return j;
}

serve::ServiceReport run_batch(const std::vector<serve::JobSpec>& jobs,
                               serve::ServiceOptions opt) {
  serve::BatchService service(sim::DeviceSpec::gtx680(), opt);
  return service.run(jobs);
}

// The candidate configurations a TMV job enumerates, in compiler order
// — the set the service pre-certifies.
std::vector<std::string> tmv_configs(const serve::JobSpec& job) {
  auto program = np::NpCompiler::parse(job.source);
  const ir::Kernel& k = *program->kernels.front();
  np::Workload probe = np::make_synthetic_workload(k, job.elems, job.tb);
  std::vector<std::string> out;
  for (const auto& cfg : np::NpCompiler::enumerate_configs(
           k, static_cast<int>(probe.launch.block.count()),
           sim::DeviceSpec::gtx680()))
    out.push_back(cfg.describe());
  return out;
}

// The certifier options the service builds for a job — must stay in
// sync with BatchService::run_job for cache-key poisoning to land.
np::CertifyOptions service_copt(const serve::ServiceOptions& opt) {
  np::CertifyOptions copt;
  copt.f32_rel_tol = opt.f32_rel_tol;
  copt.interp.jobs = 1;
  return copt;
}

// ---------------------------------------------------------------------
// Certification must not change a clean report: off, on, and fast-path
// runs of the same batch render byte-identical ServiceReports.

TEST(CertifiedBatch, CleanReportIsByteIdenticalAcrossCertModes) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), tmv_job("b")};

  serve::ServiceOptions off;
  serve::ServiceReport plain = run_batch(jobs, off);
  ASSERT_EQ(plain.succeeded, 2u);

  serve::ServiceOptions on = off;
  on.certify = true;
  serve::ServiceReport certified = run_batch(jobs, on);

  serve::ServiceOptions fast = on;
  fast.certified_fast_path = true;
  serve::ServiceReport fast_path = run_batch(jobs, fast);

  EXPECT_EQ(plain.json(), certified.json());
  EXPECT_EQ(plain.json(), fast_path.json());
  EXPECT_EQ(plain.str(), fast_path.str());
}

// ---------------------------------------------------------------------
// Certificates are content-addressed serve artifacts: the second run of
// the same batch reuses every stored proof instead of re-deriving it.

TEST(CertifiedBatch, CertificatesPersistInTheArtifactCache) {
  serve::ArtifactCache cache(serve::ArtifactCacheOptions{});
  serve::ServiceOptions opt;
  opt.certify = true;
  opt.artifact_cache = &cache;

  std::vector<serve::JobSpec> jobs = {tmv_job("a")};
  serve::ServiceReport first = run_batch(jobs, opt);
  ASSERT_EQ(first.succeeded, 1u);
  const auto after_first = cache.stats();
  // Every candidate config stored a certificate (plus the attempt
  // entry itself).
  const std::size_t n_configs = tmv_configs(jobs[0]).size();
  ASSERT_GT(n_configs, 0u);
  EXPECT_GE(static_cast<std::size_t>(after_first.stores), n_configs + 1);

  serve::ServiceReport second = run_batch(jobs, opt);
  const auto after_second = cache.stats();
  // Second run: certificate lookups all hit; nothing new is stored.
  EXPECT_GE(after_second.hits, after_first.hits +
                                   static_cast<std::int64_t>(n_configs));
  EXPECT_EQ(after_second.stores, after_first.stores);
  // Caching can never change the report.
  EXPECT_EQ(first.json(), second.json());
}

// ---------------------------------------------------------------------
// Chaos: a damaged stored certificate (corrupt or torn) is quarantined
// as a miss and the variant re-certified — never trusted, and never a
// behaviour change.

TEST(CertifiedBatch, DamagedCertificatesAreQuarantinedAndRederived) {
  serve::ArtifactCache cache(serve::ArtifactCacheOptions{});
  serve::ServiceOptions opt;
  opt.certify = true;
  opt.certified_fast_path = true;
  opt.artifact_cache = &cache;

  serve::ServiceReport clean = run_batch({tmv_job("a")}, opt);
  ASSERT_EQ(clean.succeeded, 1u);
  const auto before = cache.stats();

  serve::JobSpec corrupt = tmv_job("a");
  corrupt.fault.corrupt_cert = true;  // serve-layer fault: no inject
  serve::ServiceReport after_corrupt = run_batch({corrupt}, opt);
  EXPECT_EQ(clean.json(), after_corrupt.json());
  EXPECT_GT(cache.stats().quarantined_corrupt, before.quarantined_corrupt);

  serve::JobSpec torn = tmv_job("a");
  torn.fault.tear_cert = true;
  serve::ServiceReport after_torn = run_batch({torn}, opt);
  EXPECT_EQ(clean.json(), after_torn.json());
  EXPECT_GT(cache.stats().quarantined_torn, before.quarantined_torn);
}

// ---------------------------------------------------------------------
// A refuted certificate is binding: poison the cache with a refutation
// for every candidate config and the job degrades straight to the
// guaranteed baseline with the permanent proven-wrong cause — no
// retries (a proof is not transient), no variant execution.

TEST(CertifiedBatch, RefutedCertificateQuarantinesBeforeExecution) {
  serve::ArtifactCache cache(serve::ArtifactCacheOptions{});
  serve::ServiceOptions opt;
  opt.certify = true;
  opt.artifact_cache = &cache;
  opt.retry.max_attempts = 3;

  serve::JobSpec job = tmv_job("a");
  const np::CertifyOptions copt = service_copt(opt);
  for (const std::string& config : tmv_configs(job)) {
    np::Certificate cert;
    cert.kernel = "tmv";
    cert.config = config;
    cert.verdict = np::Verdict::kRefuted;
    cert.detail = "poisoned for test";
    cert.counterexample_seed = 7;
    cache.store(
        serve::certificate_cache_key(job.source, "tmv", "gtx680", 30,
                                     job.elems, job.tb, config, copt),
        cert.json());
  }

  serve::ServiceReport report = run_batch({job}, opt);
  ASSERT_EQ(report.jobs.size(), 1u);
  const serve::JobResult& r = report.jobs[0];
  EXPECT_EQ(r.state, serve::JobState::kDegraded);
  EXPECT_EQ(r.cause, "proven-wrong");
  EXPECT_EQ(r.chosen_config, "baseline");
  // Proven-wrong is permanent evidence, not a transient blip: exactly
  // one attempt, every candidate quarantined with the same cause.
  EXPECT_EQ(r.attempts, 1);
  ASSERT_FALSE(r.quarantined.empty());
  for (const auto& q : r.quarantined)
    EXPECT_EQ(q.cause, np::FailureCause::kProvenWrong);
}

}  // namespace
}  // namespace cudanp
