// Chaos campaign: every fault class a sim::FaultPlan can inject — bit
// flips in device memory, SimErrors at a chosen statement, AST
// corruption (dropped barrier, skewed store index), block stalls — must
// be caught by one of the defence layers (sanitizer, watchdog, output
// cross-check / fallback quarantine) and never silently absorbed. Fault
// plans are seeded, so each campaign replays byte-identically; injected
// outcomes must also stay bit-identical across job counts (see
// docs/robustness.md).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/fault.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp {
namespace {

using SanOptions = sim::SanitizerEngine::Options;

sim::Interpreter::Options make_opts(int jobs,
                                    const sim::FaultInjector* fault = nullptr,
                                    std::int64_t max_steps = 0) {
  sim::Interpreter::Options opt;
  opt.jobs = jobs;
  opt.fault = fault;
  opt.limits.max_steps_per_block = max_steps;
  return opt;
}

struct Prepared {
  std::unique_ptr<ir::Program> program;
  np::Workload workload;
  ir::Kernel& kernel() { return *program->kernels.front(); }
};

Prepared prepare(const std::string& src, int block_x, int grid_x,
                 std::size_t buf_elems = 4096, int n = 64) {
  Prepared p;
  p.program = np::NpCompiler::parse(src);
  for (const auto& param : p.kernel().params) {
    if (param.type.is_pointer)
      p.workload.launch.args.push_back(
          p.workload.mem->alloc(param.type.scalar, buf_elems));
    else if (param.type.scalar == ir::ScalarType::kFloat)
      p.workload.launch.args.push_back(sim::LaunchConfig::scalar_float(1.0));
    else
      p.workload.launch.args.push_back(sim::LaunchConfig::scalar_int(n));
  }
  p.workload.launch.block = {block_x, 1, 1};
  p.workload.launch.grid = {grid_x, 1, 1};
  return p;
}

void expect_reports_equal(const std::vector<sim::HazardReport>& a,
                          const std::vector<sim::HazardReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "report " << i;
    EXPECT_EQ(a[i].block.x, b[i].block.x) << "report " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "report " << i;
  }
}

// ---------------------------------------------------------------------
// Fault class 1: bit flips in device memory. A corrupted variant input
// must be caught by the output cross-check, not averaged away.

TEST(Chaos, BitFlipIsCaughtByValidateCrossCheck) {
  auto bench = kernels::make_benchmark("tmv", 0.08);
  auto spec = sim::DeviceSpec::gtx680();
  auto probe = bench->make_workload();
  auto configs = np::NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()), spec);
  ASSERT_FALSE(configs.empty());

  sim::FaultPlan plan;
  plan.seed = 0xb17f11b5ULL;
  plan.bit_flips = 64;
  auto injector = std::make_shared<sim::FaultInjector>(plan);

  // The baseline (first factory call) gets pristine inputs; every
  // variant afterwards runs on flipped bits — the cross-check must flag
  // the divergence.
  int calls = 0;
  auto factory = [&]() {
    np::Workload w = bench->make_workload();
    if (++calls > 1) {
      int flipped = injector->corrupt_memory(*w.mem);
      EXPECT_GT(flipped, 0);
    }
    return w;
  };
  auto report = np::NpCompiler::validate(bench->kernel(), configs, factory,
                                         spec);
  EXPECT_FALSE(report.all_clean());
  bool mismatch_seen = false;
  for (const auto& e : report.entries)
    mismatch_seen = mismatch_seen || (e.transform_ok && e.ran &&
                                      !e.outputs_match);
  EXPECT_TRUE(mismatch_seen) << report.summary();
  ASSERT_FALSE(injector->log().empty());
  EXPECT_NE(injector->log().front().find("bit-flip"), std::string::npos);
}

TEST(Chaos, FaultPlanReplaysByteIdentically) {
  sim::FaultPlan plan;
  plan.seed = 0xdecafULL;
  plan.bit_flips = 16;
  std::vector<std::string> logs[2];
  std::vector<float> datas[2];
  for (int round = 0; round < 2; ++round) {
    sim::DeviceMemory mem;
    sim::BufferId id = mem.alloc(ir::ScalarType::kFloat, 256);
    sim::FaultInjector inj(plan);
    EXPECT_EQ(inj.corrupt_memory(mem), 16);
    logs[round] = inj.log();
    auto span = mem.buffer(id).f32();
    datas[round].assign(span.begin(), span.end());
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(datas[0].size(), datas[1].size());
  for (std::size_t i = 0; i < datas[0].size(); ++i)
    EXPECT_EQ(datas[0][i], datas[1][i]) << "element " << i;
}

// ---------------------------------------------------------------------
// Fault class 2: a SimError thrown at the Nth interpreted statement of
// one block. The sanitizer must contain it to a single kSimFault report
// while the rest of the grid completes — identically at every job count.

TEST(Chaos, InjectedSimErrorIsContainedDeterministically) {
  const char* src = R"(
__global__ void work(float* out, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i++) {
    s = s + 1.0f;
  }
  out[threadIdx.x + blockIdx.x * blockDim.x] = s;
}
)";
  sim::FaultPlan plan;
  plan.sim_error_at_step = 50;
  plan.fault_block = 3;
  sim::FaultInjector injector(plan);

  std::vector<sim::HazardReport> reports[2];
  int slot = 0;
  for (int jobs : {1, 8}) {
    auto p = prepare(src, 32, 8);
    np::Runner runner(sim::DeviceSpec::gtx680(), make_opts(jobs, &injector));
    auto run = runner.execute(
        np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
    EXPECT_TRUE(run.ran);
    ASSERT_EQ(run.engine.reports().size(), 1u)
        << "jobs=" << jobs << "\n" << run.engine.summary();
    const auto& r = run.engine.reports().front();
    EXPECT_EQ(r.kind, sim::HazardKind::kSimFault);
    EXPECT_EQ(r.block.x, 3);
    EXPECT_NE(r.message.find("injected fault"), std::string::npos)
        << r.message;
    reports[slot++] = run.engine.reports();
  }
  expect_reports_equal(reports[0], reports[1]);
}

TEST(Chaos, InjectedSimErrorUnsanitizedThrows) {
  sim::FaultPlan plan;
  plan.sim_error_at_step = 5;
  sim::FaultInjector injector(plan);
  auto p = prepare(R"(
__global__ void work(float* out, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i++) {
    s = s + 1.0f;
  }
  out[threadIdx.x] = s;
}
)",
                   32, 2);
  np::Runner runner(sim::DeviceSpec::gtx680(), make_opts(1, &injector));
  try {
    (void)runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload));
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Fault class 3a: AST corruption dropping a __syncthreads(). Invisible
// to the lockstep execution model by design — the portable race mode is
// the layer that must catch it.

TEST(Chaos, DroppedBarrierIsCaughtByPortableRaceMode) {
  // Two warps so the staged exchange crosses a warp boundary: portable
  // racecheck is warp-granular (same-warp lockstep order is guaranteed
  // even on hardware).
  const char* src = R"(
__global__ void stage(float* out, int n) {
  __shared__ float s[64];
  s[threadIdx.x] = threadIdx.x;
  __syncthreads();
  out[threadIdx.x + blockIdx.x * blockDim.x] = s[63 - threadIdx.x];
}
)";
  SanOptions portable;
  portable.race_mode = sim::SanitizerEngine::RaceMode::kPortable;

  // Intact kernel: hazard-free even under the stricter mode.
  {
    auto p = prepare(src, 64, 4);
    np::Runner runner(sim::DeviceSpec::gtx680(), make_opts(1));
    auto run = runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload)
                                  .sanitized(portable));
    EXPECT_TRUE(run.clean()) << run.engine.summary();
  }

  // Corrupted kernel: the barrier between the staged write and the
  // crossed read is gone; portable racecheck must flag it.
  {
    auto p = prepare(src, 64, 4);
    sim::FaultPlan plan;
    plan.drop_barrier = true;
    sim::FaultInjector injector(plan);
    ASSERT_TRUE(injector.corrupt_kernel(p.kernel()));
    ASSERT_FALSE(injector.log().empty());
    EXPECT_NE(injector.log().front().find("__syncthreads"),
              std::string::npos)
        << injector.log().front();
    np::Runner runner(sim::DeviceSpec::gtx680(), make_opts(1));
    auto run = runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload)
                                  .sanitized(portable));
    EXPECT_FALSE(run.clean()) << "dropped barrier was silently absorbed";
    bool race_seen = false;
    for (const auto& r : run.engine.reports())
      race_seen = race_seen || r.kind == sim::HazardKind::kSharedRace;
    EXPECT_TRUE(race_seen) << run.engine.summary();
  }
}

// Fault class 3b: AST corruption skewing a store index, modelling a slot
// arithmetic bug in a transform. With exactly-sized buffers the skew
// walks off the end: an OOB kSimFault.

TEST(Chaos, SkewedStoreIndexIsCaughtAsOutOfBounds) {
  const char* src = R"(
__global__ void ident(float* out, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  out[i] = 1.0f;
}
)";
  auto p = prepare(src, 32, 4, /*buf_elems=*/128, /*n=*/128);
  sim::FaultPlan plan;
  plan.seed = 0x5eedULL;
  plan.skew_index = true;
  sim::FaultInjector injector(plan);
  ASSERT_TRUE(injector.corrupt_kernel(p.kernel()));
  ASSERT_FALSE(injector.log().empty());
  EXPECT_NE(injector.log().front().find("skew"), std::string::npos)
      << injector.log().front();

  np::Runner runner(sim::DeviceSpec::gtx680(), make_opts(1));
  auto run = runner.execute(
        np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
  EXPECT_FALSE(run.clean()) << "skewed index was silently absorbed";
  bool oob_seen = false;
  for (const auto& r : run.engine.reports())
    oob_seen = oob_seen ||
               (r.kind == sim::HazardKind::kSimFault &&
                r.message.find("out of bounds") != std::string::npos);
  EXPECT_TRUE(oob_seen) << run.engine.summary();
}

// ---------------------------------------------------------------------
// Fault class 4: a stalled block. The watchdog is the defence layer, and
// the trip must be bit-identical across job counts.

TEST(Chaos, StalledBlockIsCaughtByWatchdogDeterministically) {
  const char* src = R"(
__global__ void fine(float* out, int n) {
  out[threadIdx.x + blockIdx.x * blockDim.x] = 2.0f;
}
)";
  sim::FaultPlan plan;
  plan.stall_block = 2;
  sim::FaultInjector injector(plan);

  std::vector<sim::HazardReport> reports[2];
  int slot = 0;
  for (int jobs : {1, 8}) {
    auto p = prepare(src, 32, 8);
    np::Runner runner(sim::DeviceSpec::gtx680(),
                      make_opts(jobs, &injector, /*max_steps=*/2000));
    auto run = runner.execute(
        np::ExecutionRequest::baseline(p.kernel(), p.workload).sanitized());
    ASSERT_EQ(run.engine.reports().size(), 1u)
        << "jobs=" << jobs << "\n" << run.engine.summary();
    const auto& r = run.engine.reports().front();
    EXPECT_EQ(r.kind, sim::HazardKind::kWatchdogTrip);
    EXPECT_EQ(r.block.x, 2);
    reports[slot++] = run.engine.reports();
  }
  expect_reports_equal(reports[0], reports[1]);
}

// A stall with the watchdog disabled must degrade to an immediate error,
// never an actual hang (the harness itself must stay chaos-safe).
TEST(Chaos, StallWithWatchdogDisabledAbortsInsteadOfHanging) {
  sim::FaultPlan plan;
  plan.stall_block = 0;
  sim::FaultInjector injector(plan);
  auto p = prepare(R"(
__global__ void fine(float* out, int n) {
  out[threadIdx.x] = 2.0f;
}
)",
                   32, 1);
  np::Runner runner(sim::DeviceSpec::gtx680(),
                    make_opts(1, &injector, /*max_steps=*/-1));
  try {
    (void)runner.execute(np::ExecutionRequest::baseline(p.kernel(), p.workload));
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("injected stall"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Graceful degradation: when chaos quarantines every NP candidate, the
// compiler must still produce a runnable answer (the baseline) plus a
// machine-readable account of everything it rejected.

TEST(Chaos, FallbackQuarantinesEverythingAndKeepsBaseline) {
  auto bench = kernels::make_benchmark("tmv", 0.08);
  auto spec = sim::DeviceSpec::gtx680();

  sim::FaultPlan plan;
  plan.seed = 0xfa11bacULL;
  plan.bit_flips = 64;
  auto injector = std::make_shared<sim::FaultInjector>(plan);
  int calls = 0;
  auto factory = [&]() {
    np::Workload w = bench->make_workload();
    if (++calls > 1) (void)injector->corrupt_memory(*w.mem);
    return w;
  };

  auto result = np::NpCompiler::compile_with_fallback(
      bench->kernel(), /*configs=*/{}, factory, spec);
  const auto& d = result.decision;
  EXPECT_TRUE(d.used_baseline);
  EXPECT_FALSE(d.pristine());
  ASSERT_FALSE(d.quarantined.empty());
  for (const auto& f : d.quarantined) {
    EXPECT_EQ(f.kernel, "tmv");
    EXPECT_FALSE(f.config.empty());
    EXPECT_FALSE(f.detail.empty());
    // str() and json() are both non-empty, structured renderings.
    EXPECT_NE(f.str().find("quarantined"), std::string::npos);
    EXPECT_NE(f.json().find("\"cause\""), std::string::npos);
  }
  std::string json = d.json();
  EXPECT_NE(json.find("\"used_baseline\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined\""), std::string::npos) << json;
  EXPECT_FALSE(d.summary().empty());
}

// Without chaos the same kernel picks a real NP variant, first try.
TEST(Chaos, FallbackIsPristineWithoutFaults) {
  auto bench = kernels::make_benchmark("tmv", 0.08);
  auto spec = sim::DeviceSpec::gtx680();
  auto factory = [&]() { return bench->make_workload(); };
  auto result = np::NpCompiler::compile_with_fallback(
      bench->kernel(), /*configs=*/{}, factory, spec);
  EXPECT_FALSE(result.decision.used_baseline);
  EXPECT_FALSE(result.decision.chosen_config.empty());
  EXPECT_TRUE(result.decision.pristine())
      << result.decision.summary();
  ASSERT_NE(result.variant.kernel, nullptr);
  std::string json = result.decision.json();
  EXPECT_NE(json.find("\"used_baseline\":false"), std::string::npos)
      << json;
}

// A stalled variant block must be quarantined as a watchdog trip, and
// the fallback must still deliver the baseline rather than hanging.
TEST(Chaos, FallbackSurvivesStalledVariants) {
  auto bench = kernels::make_benchmark("tmv", 0.08);
  auto spec = sim::DeviceSpec::gtx680();
  sim::FaultPlan plan;
  plan.stall_block = 0;  // every launch's first block spins
  sim::FaultInjector injector(plan);
  auto factory = [&]() { return bench->make_workload(); };
  np::ValidationOptions vopt;
  vopt.interp.fault = &injector;
  vopt.interp.limits.max_steps_per_block = 2000;
  auto result = np::NpCompiler::compile_with_fallback(
      bench->kernel(), /*configs=*/{}, factory, spec, vopt);
  const auto& d = result.decision;
  // The baseline itself stalls too, so everything is quarantined — but a
  // runnable answer (the baseline kernel) still comes back with the trip
  // recorded in the report.
  EXPECT_TRUE(d.used_baseline);
  ASSERT_FALSE(d.quarantined.empty());
  bool trip_recorded = false;
  for (const auto& f : d.quarantined)
    trip_recorded =
        trip_recorded || f.cause == np::FailureCause::kWatchdogTrip;
  EXPECT_TRUE(trip_recorded) << d.summary();
}

}  // namespace
}  // namespace cudanp
