// Certifier verdict fuzzing: seeded random reduction kernels are
// certified against their NP variants, and every verdict is
// cross-validated against ground truth the certifier did not use:
//
//   kProven   -> the variant must run hazard-free under the sanitizer
//                and match the baseline's outputs on several concrete
//                input assignments (beyond the proof's replay check);
//   kRefuted  -> the recorded counterexample seed must independently
//                reproduce through Runner::execute (baseline clean,
//                variant hazarding or mismatching).
//
// A proof whose empirical replay fails, or a refutation whose
// counterexample does not reproduce, fails the test. Roughly a third of
// the corpus is deliberately corrupted (sim::FaultInjector skew_index)
// so both halves of the lattice are exercised on every run.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "frontend/parser.hpp"
#include "np/certifier.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/fault.hpp"
#include "sim/symexec.hpp"

namespace cudanp {
namespace {

using np::Certificate;
using np::Certifier;
using np::NpCompiler;
using np::Verdict;

constexpr double kRelTol = 1e-3;
constexpr double kAbsTol = 1e-4;

// ---------------------------------------------------------------------
// Random kernel generator. Every generated program is a per-thread
// reduction over h iterations — the shape `#pragma np parallel for`
// accepts — with a randomly grown arithmetic term over the float
// inputs. Int data (loop bounds, indices) stays affine in i/tx so the
// kernel is valid for the synthetic 8x8 workload geometry.

struct Rng {
  std::mt19937_64 gen;
  explicit Rng(std::uint64_t seed) : gen(seed) {}
  int pick(int n) {
    return static_cast<int>(
        std::uniform_int_distribution<int>(0, n - 1)(gen));
  }
};

std::string gen_term(Rng& rng, int depth) {
  if (depth <= 0 || rng.pick(3) == 0) {
    switch (rng.pick(5)) {
      case 0: return "a[i * w + tx]";
      case 1: return "b[i]";
      case 2: return "a[i]";
      case 3: return "0.5f";
      default: return "-0.75f";
    }
  }
  std::string x = gen_term(rng, depth - 1);
  std::string y = gen_term(rng, depth - 1);
  switch (rng.pick(6)) {
    case 0: return "(" + x + " + " + y + ")";
    case 1: return "(" + x + " - " + y + ")";
    case 2: return "(" + x + " * " + y + ")";
    case 3: return "fminf(" + x + ", " + y + ")";
    case 4: return "fmaxf(" + x + ", " + y + ")";
    default: return "fabsf(" + x + ")";
  }
}

std::string gen_kernel_source(std::uint64_t seed) {
  Rng rng(seed);
  const char* ops[] = {"+", "*", "min", "max"};
  const char* op = ops[rng.pick(4)];
  std::string term = gen_term(rng, 2);
  std::string init, combine;
  if (op[0] == '+') {
    init = "0.0f";
    combine = "acc += " + term + ";";
  } else if (op[0] == '*') {
    // Inputs are in [-1, 1]; keep multiplicative factors near one so an
    // 8-term product stays far from overflow and from underflow-to-zero
    // (either would let a skewed store hide behind saturated values).
    init = "1.0f";
    combine = "acc *= (0.75f + 0.25f * fabsf(" + term + "));";
  } else if (op[0] == 'm' && op[1] == 'i') {
    init = "1.0e30f";
    combine = "acc = fminf(acc, " + term + ");";
  } else {
    init = "-1.0e30f";
    combine = "acc = fmaxf(acc, " + term + ");";
  }
  std::string post = rng.pick(2) == 0 ? "acc" : "acc * 0.5f";
  std::string src;
  src += "__global__ void k(float* a, float* b, float* c, int w, int h) {\n";
  src += "  float acc = " + init + ";\n";
  src += "  int tx = threadIdx.x + blockIdx.x * blockDim.x;\n";
  src += "  #pragma np parallel for reduction(" + std::string(op) +
         ":acc)\n";
  src += "  for (int i = 0; i < h; i++) {\n";
  src += "    " + combine + "\n";
  src += "  }\n";
  src += "  c[tx] = " + post + ";\n";
  src += "}\n";
  return src;
}

// ---------------------------------------------------------------------
// Empirical ground truth: run one case sanitized and collect every
// float buffer the launch references.

struct RunOut {
  bool clean = false;
  std::vector<std::vector<float>> floats;
};

RunOut run_case(const np::Runner& runner, const ir::Kernel* baseline,
                const transform::TransformResult* variant, np::Workload& w) {
  auto req = baseline != nullptr
                 ? np::ExecutionRequest::baseline(*baseline, w)
                 : np::ExecutionRequest::transformed(*variant, w);
  auto res = runner.execute(req.sanitized());
  RunOut out;
  out.clean = res.clean();
  for (const auto& arg : w.launch.args) {
    if (const auto* id = std::get_if<sim::BufferId>(&arg)) {
      const sim::DeviceBuffer& buf = w.mem->buffer(*id);
      if (buf.type() == ir::ScalarType::kFloat) {
        auto f = buf.f32();
        out.floats.emplace_back(f.begin(), f.end());
      }
    }
  }
  return out;
}

bool outputs_match(const RunOut& ref, const RunOut& got) {
  if (ref.floats.size() != got.floats.size()) return false;
  for (std::size_t b = 0; b < ref.floats.size(); ++b) {
    if (ref.floats[b].size() != got.floats[b].size()) return false;
    for (std::size_t e = 0; e < ref.floats[b].size(); ++e)
      if (!np::floats_close(ref.floats[b][e], got.floats[b][e], kAbsTol,
                            kRelTol))
        return false;
  }
  return true;
}

np::Workload seeded_workload(const ir::Kernel& kernel, std::uint64_t seed) {
  np::Workload w = np::make_synthetic_workload(kernel, 8, 8);
  np::seed_certify_floats(w, seed);
  return w;
}

// ---------------------------------------------------------------------

TEST(CertFuzz, VerdictsAgreeWithEmpiricalGroundTruth) {
  constexpr std::uint64_t kCorpus = 15;
  auto spec = sim::DeviceSpec::gtx680();
  Certifier certifier(spec);
  np::Runner runner(spec);

  int proven_total = 0;
  int refuted_total = 0;
  int inconclusive_total = 0;

  for (std::uint64_t fuzz = 0; fuzz < kCorpus; ++fuzz) {
    const bool corrupt = fuzz % 3 == 2;
    std::string src = gen_kernel_source(fuzz);
    SCOPED_TRACE("fuzz seed " + std::to_string(fuzz) +
                 (corrupt ? " (corrupted)" : "") + "\n" + src);
    auto prog = frontend::parse_program_or_throw(src);
    ir::Kernel& kernel = *prog->find_kernel("k");
    auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };

    for (const auto& cfg : NpCompiler::enumerate_configs(kernel, 8, spec)) {
      transform::TransformResult variant;
      try {
        variant = NpCompiler::transform(kernel, cfg);
      } catch (const CompileError&) {
        continue;  // configuration legitimately inapplicable
      }
      SCOPED_TRACE(cfg.describe());
      if (corrupt) {
        sim::FaultPlan plan;
        plan.skew_index = true;
        if (!sim::FaultInjector(plan).corrupt_kernel(*variant.kernel))
          continue;
      }

      Certificate cert = certifier.certify_variant(kernel, variant, factory);

      if (cert.proven()) {
        ++proven_total;
        // A corrupted variant certified as proven would be a soundness
        // hole — the whole point of the skew is an observable change.
        EXPECT_FALSE(corrupt) << cert.str();
        // Cross-validate the proof on concrete inputs the symbolic run
        // never saw: the variant must be hazard-free and match the
        // baseline bit-for-tolerance on every float buffer.
        for (std::uint64_t input_seed : {11u, 42u}) {
          np::Workload wb = seeded_workload(kernel, input_seed);
          np::Workload wv = seeded_workload(kernel, input_seed);
          RunOut ref = run_case(runner, &kernel, nullptr, wb);
          RunOut got = run_case(runner, nullptr, &variant, wv);
          EXPECT_TRUE(ref.clean) << cert.str();
          EXPECT_TRUE(got.clean)
              << "proven variant hazards on input seed " << input_seed
              << "\n" << cert.str();
          EXPECT_TRUE(outputs_match(ref, got))
              << "proven variant mismatches on input seed " << input_seed
              << "\n" << cert.str();
        }
      } else if (cert.verdict == Verdict::kRefuted) {
        ++refuted_total;
        // Refutations may only come from deliberate corruption: a
        // refuted clean transform would mean the transformer (or the
        // certifier) is wrong, and either deserves a red test.
        EXPECT_TRUE(corrupt) << cert.str();
        // Independently reproduce the counterexample: the certifier's
        // own replay already passed, but re-derive it here from nothing
        // but the certificate to pin the recorded seed.
        np::Workload wb = seeded_workload(kernel, cert.counterexample_seed);
        np::Workload wv = seeded_workload(kernel, cert.counterexample_seed);
        RunOut ref = run_case(runner, &kernel, nullptr, wb);
        EXPECT_TRUE(ref.clean) << cert.str();
        RunOut got = run_case(runner, nullptr, &variant, wv);
        bool misbehaves = !got.clean || !outputs_match(ref, got);
        EXPECT_TRUE(misbehaves)
            << "refutation does not reproduce: " << cert.str();
      } else {
        ++inconclusive_total;
      }
    }
  }

  // The corpus must exercise both halves of the verdict lattice, and
  // the symbolic engine must handle the overwhelming share of this
  // deliberately in-envelope grammar.
  EXPECT_GT(proven_total, 0);
  EXPECT_GT(refuted_total, 0);
  EXPECT_LT(inconclusive_total, proven_total);
}

}  // namespace
}  // namespace cudanp
