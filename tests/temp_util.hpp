// Shared temp-file scaffolding for subprocess-driving tests.
//
// ctest runs each test binary as its own process, possibly in parallel:
// every temp path must be unique per process, and files are created
// O_EXCL so a collision (pid reuse, leftover from a killed run) fails
// loudly instead of silently interleaving two tests' data.
//
// ScopedTempDir is the preferred shape: one pid-unique directory per
// fixture, removed recursively on destruction, so tests stop hand-
// rolling unlink lists (and stop leaking files when an EXPECT fails
// before the cleanup lines run).
#pragma once

#include <gtest/gtest.h>

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>

namespace cudanp::test {

/// Pid-unique path under the gtest temp root.
inline std::string temp_name(const std::string& prefix,
                             const std::string& name) {
  return ::testing::TempDir() + prefix + "_" +
         std::to_string(::getpid()) + "_" + name;
}

/// O_EXCL create-and-write; recreates fresh when an earlier test in the
/// same process already used the name.
inline std::string write_exclusive(const std::string& path,
                                   const std::string& body) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    ::unlink(path.c_str());
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  }
  EXPECT_GE(fd, 0) << "cannot create " << path;
  ssize_t n = ::write(fd, body.data(), body.size());
  EXPECT_EQ(n, static_cast<ssize_t>(body.size()));
  ::close(fd);
  return path;
}

/// A pid-unique directory that removes itself (one level of files plus
/// one level of subdirectories — enough for journals and cache dirs)
/// when it goes out of scope.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag)
      : path_(temp_name(tag, "d")) {
    // A leftover from a killed previous run with the same pid: clear it
    // so O_EXCL file creation inside does not trip.
    remove_tree(path_);
    EXPECT_EQ(::mkdir(path_.c_str(), 0755), 0)
        << "cannot create " << path_;
  }

  ~ScopedTempDir() { remove_tree(path_); }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Path of a (not yet created) file inside the directory.
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }
  /// Creates `name` inside the directory with `body`.
  std::string write(const std::string& name,
                    const std::string& body) const {
    return write_exclusive(file(name), body);
  }

 private:
  static void remove_tree(const std::string& dir) {
    DIR* d = ::opendir(dir.c_str());
    if (!d) return;
    while (dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = dir + "/" + name;
      if (::unlink(child.c_str()) != 0 &&
          (errno == EISDIR || errno == EPERM))
        remove_tree(child);
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }

  std::string path_;
};

}  // namespace cudanp::test
