#include <gtest/gtest.h>

#include <cmath>

#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {
namespace {

TEST(ApproxEqual, ExactMatch) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::string msg;
  EXPECT_TRUE(approx_equal(a, a, 0.0, &msg)) << msg;
}

TEST(ApproxEqual, WithinRelativeTolerance) {
  std::vector<float> got = {100.0f};
  std::vector<float> want = {100.05f};
  EXPECT_TRUE(approx_equal(got, want, 1e-3, nullptr));
  EXPECT_FALSE(approx_equal(got, want, 1e-6, nullptr));
}

TEST(ApproxEqual, SmallValuesUseAbsoluteFloor) {
  // Denominator is max(1, |want|): tiny values compare near-absolutely.
  std::vector<float> got = {1e-7f};
  std::vector<float> want = {0.0f};
  EXPECT_TRUE(approx_equal(got, want, 1e-6, nullptr));
}

TEST(ApproxEqual, SizeMismatch) {
  std::vector<float> a = {1.0f};
  std::vector<float> b = {1.0f, 2.0f};
  std::string msg;
  EXPECT_FALSE(approx_equal(a, b, 1.0, &msg));
  EXPECT_EQ(msg, "size mismatch");
}

TEST(ApproxEqual, NanAlwaysFails) {
  std::vector<float> got = {std::nanf("")};
  std::vector<float> want = {0.0f};
  EXPECT_FALSE(approx_equal(got, want, 1e30, nullptr));
}

TEST(ApproxEqual, ReportsFirstMismatch) {
  std::vector<float> got = {1.0f, 5.0f, 9.0f};
  std::vector<float> want = {1.0f, 2.0f, 3.0f};
  std::string msg;
  EXPECT_FALSE(approx_equal(got, want, 1e-3, &msg));
  EXPECT_NE(msg.find("element 1"), std::string::npos);
}

TEST(ExactEqual, Matches) {
  std::vector<std::int32_t> a = {1, -2, 3};
  EXPECT_TRUE(exact_equal(a, a, nullptr));
}

TEST(ExactEqual, Mismatch) {
  std::vector<std::int32_t> a = {1, 2};
  std::vector<std::int32_t> b = {1, 3};
  std::string msg;
  EXPECT_FALSE(exact_equal(a, b, &msg));
  EXPECT_NE(msg.find("element 1"), std::string::npos);
}

TEST(Scaled, RoundsDownToMultiple) {
  EXPECT_EQ(scaled(1000, 1.0, 32), 992);
  EXPECT_EQ(scaled(1024, 1.0, 32), 1024);
  EXPECT_EQ(scaled(1024, 0.5, 32), 512);
}

TEST(Scaled, NeverBelowOneMultiple) {
  EXPECT_EQ(scaled(1024, 0.001, 32), 32);
  EXPECT_EQ(scaled(10, 0.5, 128), 128);
}

TEST(FillUniform, RespectsRange) {
  sim::DeviceMemory mem;
  auto b = mem.alloc(ir::ScalarType::kFloat, 1000);
  SplitMix64 rng(5);
  fill_uniform(mem.buffer(b), rng, 2.0f, 3.0f);
  for (float v : mem.buffer(b).f32()) {
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(FillUniform, DeterministicAcrossCalls) {
  sim::DeviceMemory m1, m2;
  auto b1 = m1.alloc(ir::ScalarType::kFloat, 64);
  auto b2 = m2.alloc(ir::ScalarType::kFloat, 64);
  SplitMix64 r1(7), r2(7);
  fill_uniform(m1.buffer(b1), r1);
  fill_uniform(m2.buffer(b2), r2);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(m1.buffer(b1).f32()[i], m2.buffer(b2).f32()[i]);
}

}  // namespace
}  // namespace cudanp::kernels
