// Feature-level tests of the NP transformation: each test inspects the
// generated kernel structure and/or executes it against a reference.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/interpreter.hpp"
#include "transform/transformer.hpp"

namespace cudanp::transform {
namespace {

using namespace cudanp::ir;
using namespace cudanp::sim;

NpConfig inter(int slave, int master, LocalPlacement p = LocalPlacement::kAuto) {
  NpConfig c;
  c.np_type = NpType::kInterWarp;
  c.slave_size = slave;
  c.master_count = master;
  c.placement = p;
  return c;
}

NpConfig intra(int slave, int master, LocalPlacement p = LocalPlacement::kAuto) {
  NpConfig c = inter(slave, master, p);
  c.np_type = NpType::kIntraWarp;
  return c;
}

TransformResult transform(const std::string& src, const NpConfig& cfg,
                          const std::string& kernel = "k") {
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  return apply_np_transform(*p->find_kernel(kernel), cfg, diags);
}

constexpr const char* kTmvSrc = R"(
__global__ void k(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

TEST(Transformer, PrologueAndBlockDims) {
  auto r = transform(kTmvSrc, inter(4, 32));
  EXPECT_EQ(r.kernel->name, "k_np");
  EXPECT_EQ(r.block_dims.x, 32);
  EXPECT_EQ(r.block_dims.y, 4);
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("int master_id = threadIdx.x;"), std::string::npos);
  EXPECT_NE(s.find("int slave_id = threadIdx.y;"), std::string::npos);
}

TEST(Transformer, IntraWarpSwapsDimensions) {
  auto r = transform(kTmvSrc, intra(4, 32));
  EXPECT_EQ(r.block_dims.x, 4);
  EXPECT_EQ(r.block_dims.y, 32);
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("int master_id = threadIdx.y;"), std::string::npos);
}

TEST(Transformer, GeometryRewritten) {
  auto r = transform(kTmvSrc, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  // blockDim.x becomes the master count literal; threadIdx.x the master id.
  EXPECT_NE(s.find("master_id + blockIdx.x * 32"), std::string::npos);
  EXPECT_EQ(s.find("threadIdx.x + blockIdx"), std::string::npos);
}

TEST(Transformer, CyclicLoopDistribution) {
  auto r = transform(kTmvSrc, inter(8, 32));
  std::string s = print_kernel(*r.kernel);
  // Fig. 3b: i starts at slave_id and strides by slave_size.
  EXPECT_NE(s.find("int i = 0 + slave_id; i < h; i += 8"), std::string::npos);
}

TEST(Transformer, ReductionIdentityInitAndGuardedEpilogue) {
  auto r = transform(kTmvSrc, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  // Slaves start from the identity (Sec. 3.2) ...
  EXPECT_NE(s.find("if (slave_id != 0)"), std::string::npos);
  // ... and the final store is master-only.
  EXPECT_NE(s.find("if (slave_id == 0)"), std::string::npos);
  EXPECT_NE(s.find("c[tx] = sum;"), std::string::npos);
}

TEST(Transformer, InterWarpUsesSharedMemoryReduction) {
  auto r = transform(kTmvSrc, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("__shared__ float __np_red_f[4][32];"), std::string::npos);
  EXPECT_EQ(s.find("__shfl"), std::string::npos);
}

TEST(Transformer, IntraWarpUsesShfl) {
  auto r = transform(kTmvSrc, intra(4, 32));
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("__shfl_xor"), std::string::npos);
  EXPECT_EQ(s.find("__np_red_f"), std::string::npos);
}

TEST(Transformer, RedundantComputationForUniformStatements) {
  // `tx = master_id + blockIdx.x*32` is group-uniform after the remap:
  // it must run unguarded in all threads (Sec. 3.1), not under
  // `if (slave_id == 0)`.
  auto r = transform(kTmvSrc, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  auto tx_pos = s.find("int tx = master_id");
  auto guard_pos = s.find("if (slave_id == 0)");
  ASSERT_NE(tx_pos, std::string::npos);
  EXPECT_LT(tx_pos, guard_pos);
}

TEST(Transformer, NonUniformLiveInIsBroadcast) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float base = a[threadIdx.x];
  float s = 0.0f;
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < n; i++)
    s += a[i] * base;
  c[threadIdx.x] = s;
}
)";
  auto inter_r = transform(src, inter(4, 32));
  std::string si = print_kernel(*inter_r.kernel);
  // Inter-warp: shared-memory broadcast of `base`.
  EXPECT_NE(si.find("__np_bcast_f[master_id] = base"), std::string::npos);
  EXPECT_NE(si.find("base = __np_bcast_f[master_id]"), std::string::npos);
  auto intra_r = transform(src, intra(4, 32));
  std::string sa = print_kernel(*intra_r.kernel);
  EXPECT_NE(sa.find("base = __shfl(base, 0, 4)"), std::string::npos);
}

TEST(Transformer, DeclSplitHoistsDeclaration) {
  // Fig. 3b: a non-uniform initialization is guarded but the declaration
  // stays in scope.
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float base = a[threadIdx.x];
  float s = 0.0f;
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < n; i++) s += base;
  c[threadIdx.x] = s;
}
)";
  auto r = transform(src, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("float base;"), std::string::npos);
  EXPECT_NE(s.find("base = a[master_id];"), std::string::npos);
}

TEST(Transformer, SelectLiveOutGetsZeroInitAndAddReduce) {
  // Sec. 3.2's `if (i == 3) x = a[i];` pattern.
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float x = 0.0f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) {
    if (i == 3) {
      x = a[i];
    }
  }
  c[threadIdx.x] = x;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  // A warning documents the select transformation.
  bool warned = false;
  for (const auto& d : diags.all())
    if (d.severity == Severity::kWarning) warned = true;
  EXPECT_TRUE(warned);
  // Execute: x must equal a[3] for every master.
  DeviceMemory mem;
  auto A = mem.alloc(ScalarType::kFloat, 64);
  auto C = mem.alloc(ScalarType::kFloat, 32);
  for (int i = 0; i < 64; ++i)
    mem.buffer(A).store(static_cast<std::size_t>(i),
                        Value::of_float(i * 1.5));
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = r.block_dims;
  cfg.args = {A, C, Value::of_int(64)};
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(*r.kernel, cfg);
  for (int m = 0; m < 32; ++m)
    EXPECT_FLOAT_EQ(mem.buffer(C).f32()[static_cast<std::size_t>(m)], 4.5f);
}

TEST(Transformer, PaddingAddsGuard) {
  const char* src = R"(
__global__ void k(float* a, float* c) {
  float s = 0.0f;
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < 150; i++) s += a[i];
  c[threadIdx.x] = s;
}
)";
  NpConfig cfg = inter(4, 32);
  cfg.pad_loops = true;
  auto r = transform(src, cfg);
  std::string s = print_kernel(*r.kernel);
  // 150 padded to 152 with an `if (i < 150)` guard (Sec. 3.7 item 3).
  EXPECT_NE(s.find("i < 152"), std::string::npos);
  EXPECT_NE(s.find("if (i < 150)"), std::string::npos);
}

TEST(Transformer, NoPaddingWhenDividesEvenly) {
  const char* src = R"(
__global__ void k(float* a, float* c) {
  float s = 0.0f;
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < 160; i++) s += a[i];
  c[threadIdx.x] = s;
}
)";
  NpConfig cfg = inter(4, 32);
  cfg.pad_loops = true;
  auto r = transform(src, cfg);
  EXPECT_EQ(print_kernel(*r.kernel).find("if (i < 160)"), std::string::npos);
}

// ---- local array placements (Sec. 3.3 / Fig. 6) ----

constexpr const char* kLocalArraySrc = R"(
__global__ void k(float* a, float* c, int n) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float grad[64];
  float s = 0.0f;
  #pragma np parallel for
  for (int i = 0; i < 64; i++) grad[i] = a[tid * 64 + i];
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < 64; i++) s += grad[i];
  c[tid] = s;
}
)";

void check_local_array_result(const TransformResult& r) {
  DeviceMemory mem;
  auto A = mem.alloc(ScalarType::kFloat, 64 * 64);
  auto C = mem.alloc(ScalarType::kFloat, 64);
  for (int i = 0; i < 64 * 64; ++i)
    mem.buffer(A).store(static_cast<std::size_t>(i),
                        Value::of_float((i % 97) * 0.25));
  LaunchConfig cfg;
  cfg.grid = {2, 1, 1};
  cfg.block = r.block_dims;
  cfg.args = {A, C, Value::of_int(64)};
  for (const auto& extra : r.extra_buffers)
    cfg.args.push_back(
        mem.alloc(extra.type, static_cast<std::size_t>(extra.elems_per_block) * 2));
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(*r.kernel, cfg);
  for (int t = 0; t < 64; ++t) {
    float want = 0.0f;
    for (int i = 0; i < 64; ++i)
      want += ((t * 64 + i) % 97) * 0.25f;
    EXPECT_NEAR(mem.buffer(C).f32()[static_cast<std::size_t>(t)], want, 0.05)
        << "thread " << t;
  }
}

TEST(Transformer, LocalArrayAutoPicksRegisterWhenPartitionable) {
  auto r = transform(kLocalArraySrc, inter(4, 32));
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].second, LocalPlacement::kRegister);
  // Partitioned: 64/4 = 16 elements per slave, indexed by the private
  // counter (the Fig. 6 "ni" form).
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("grad[__np_k]"), std::string::npos);
  check_local_array_result(r);
}

TEST(Transformer, LocalArrayForcedShared) {
  auto r = transform(kLocalArraySrc, inter(4, 32, LocalPlacement::kShared));
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("__shared__ float grad[64][32];"), std::string::npos);
  EXPECT_NE(s.find("grad[i][master_id]"), std::string::npos);
  check_local_array_result(r);
}

TEST(Transformer, LocalArrayForcedGlobal) {
  auto r = transform(kLocalArraySrc, inter(4, 32, LocalPlacement::kGlobal));
  ASSERT_EQ(r.extra_buffers.size(), 1u);
  EXPECT_EQ(r.extra_buffers[0].param_name, "__np_grad_g");
  EXPECT_EQ(r.extra_buffers[0].elems_per_block, 64 * 32);
  std::string s = print_kernel(*r.kernel);
  EXPECT_NE(s.find("__np_grad_g["), std::string::npos);
  check_local_array_result(r);
}

TEST(Transformer, NonIteratorAccessPreventsRegisterPartition) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float buf[8];
  #pragma np parallel for
  for (int i = 0; i < 8; i++) buf[i] = a[i];
  c[threadIdx.x] = buf[3];
}
)";
  auto r = transform(src, inter(4, 32));
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_NE(r.placements[0].second, LocalPlacement::kRegister);
  EXPECT_THROW(transform(src, inter(4, 32, LocalPlacement::kRegister)),
               CompileError);
}

TEST(Transformer, LargeLocalArrayFallsBackToGlobal) {
  // 600 B > the 384 B shared-memory threshold (Sec. 3.3 policy), and the
  // non-iterator access rules out registers.
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float buf[150];
  #pragma np parallel for
  for (int i = 0; i < 150; i++) buf[i] = a[i];
  c[threadIdx.x] = buf[0];
}
)";
  auto r = transform(src, inter(4, 32));
  EXPECT_EQ(r.placements[0].second, LocalPlacement::kGlobal);
}

// ---- structured control flow around parallel loops ----

TEST(Transformer, UniformConditionKeptForAllThreads) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float s = 0.0f;
  if (threadIdx.x < 16) {
    #pragma np parallel for reduction(+:s)
    for (int i = 0; i < n; i++) s += a[i];
  }
  c[threadIdx.x] = s;
}
)";
  auto r = transform(src, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  // master_id < 16 is group-uniform: evaluated by every thread.
  EXPECT_NE(s.find("if (master_id < 16)"), std::string::npos);
}

TEST(Transformer, SequentialLoopAroundParallelLoopExecutesForAll) {
  const char* src = R"(
__global__ void k(float* a, float* c, int w) {
  float sum = 0.0f;
  for (int t = 0; t < w / 32; t++) {
    #pragma np parallel for reduction(+:sum)
    for (int j = 0; j < 32; j++)
      sum += a[t * 32 + j];
  }
  c[threadIdx.x] = sum;
}
)";
  auto r = transform(src, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  // The tile loop header must not be guarded.
  EXPECT_NE(s.find("for (int t = 0; t < w / 32; t += 1)"), std::string::npos);
}

TEST(Transformer, ReturnBecomesGroupWide) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float s = 0.0f;
  if (tid >= n) { return; }
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < n; i++) s += a[i];
  c[tid] = s;
}
)";
  auto r = transform(src, inter(4, 32));
  std::string s = print_kernel(*r.kernel);
  // The bounds check executes in every thread (tid is uniform), so whole
  // groups return together.
  EXPECT_NE(s.find("return;"), std::string::npos);
  auto ret_pos = s.find("return;");
  auto guard_pos = s.find("if (slave_id == 0)");
  EXPECT_LT(ret_pos, guard_pos);
}

// ---- validation errors ----

TEST(Transformer, RejectsMissingMasterCount) {
  NpConfig cfg;
  cfg.slave_size = 4;
  EXPECT_THROW(transform(kTmvSrc, cfg), CompileError);
}

TEST(Transformer, RejectsOversizedBlock) {
  EXPECT_THROW(transform(kTmvSrc, inter(32, 64)), CompileError);  // 2048
}

TEST(Transformer, RejectsNonPow2IntraWarp) {
  EXPECT_THROW(transform(kTmvSrc, intra(3, 32)), CompileError);
}

TEST(Transformer, RejectsKernelWithoutPragmas) {
  EXPECT_THROW(
      transform("__global__ void k(float* a) { a[0] = 1.0f; }", inter(4, 32)),
      CompileError);
}

TEST(Transformer, RejectsReservedNames) {
  EXPECT_THROW(
      transform(R"(
__global__ void k(float* a, int n) {
  int slave_id = 3;
  #pragma np parallel for
  for (int i = 0; i < n; i++) a[i] = 0.0f;
})",
                inter(4, 32)),
      CompileError);
}

TEST(Transformer, RejectsNonCanonicalParallelLoop) {
  EXPECT_THROW(
      transform(R"(
__global__ void k(float* a, int n) {
  #pragma np parallel for
  for (int i = n; i > 0; i -= 1) a[i] = 0.0f;
})",
                inter(4, 32)),
      CompileError);
}

TEST(Transformer, SlaveSizeBounds) {
  EXPECT_THROW(transform(kTmvSrc, inter(1, 32)), CompileError);
  EXPECT_THROW(transform(kTmvSrc, inter(64, 8)), CompileError);
}

TEST(Transformer, NotesDescribeDecisions) {
  auto r = transform(kLocalArraySrc, inter(4, 32));
  bool placement_note = false;
  for (const auto& n : r.notes)
    if (n.find("grad") != std::string::npos) placement_note = true;
  EXPECT_TRUE(placement_note);
}

}  // namespace
}  // namespace cudanp::transform
namespace cudanp::transform {
namespace {

TEST(AutoReduction, UnannotatedSumDetected) {
  // Live-out updated only via `s += ...` is recognized as an add
  // reduction even without a reduction clause.
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float s = 0.0f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) s += a[i];
  c[threadIdx.x] = s;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  bool detected = false;
  for (const auto& n : r.notes)
    if (n.find("auto-detected reduction on 's'") != std::string::npos)
      detected = true;
  EXPECT_TRUE(detected);
  // No select warning for s.
  for (const auto& d : diags.all())
    EXPECT_EQ(d.severity == Severity::kWarning &&
                  d.message.find("'s'") != std::string::npos,
              false)
        << d.message;

  // And it computes the right answer.
  DeviceMemory mem;
  auto A = mem.alloc(ScalarType::kFloat, 64);
  auto C = mem.alloc(ScalarType::kFloat, 32);
  float want = 0;
  for (int i = 0; i < 64; ++i) {
    mem.buffer(A).store(static_cast<std::size_t>(i), Value::of_float(0.5 * i));
    want += 0.5f * static_cast<float>(i);
  }
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = r.block_dims,
                   .args = {A, C, Value::of_int(64)}};
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(*r.kernel, cfg);
  EXPECT_NEAR(mem.buffer(C).f32()[0], want, 1e-2);
}

TEST(AutoReduction, MinViaFminfDetected) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float m = 3.0e38f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) m = fminf(m, a[i]);
  c[threadIdx.x] = m;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  bool detected = false;
  for (const auto& n : r.notes)
    if (n.find("auto-detected") != std::string::npos) detected = true;
  EXPECT_TRUE(detected);
}

TEST(AutoReduction, ExplicitSelfAddFormDetected) {
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float s = 0.0f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) s = s + a[i];
  c[threadIdx.x] = s;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  bool detected = false;
  for (const auto& n : r.notes)
    if (n.find("auto-detected") != std::string::npos) detected = true;
  EXPECT_TRUE(detected);
}

TEST(AutoReduction, MixedOpsNotDetected) {
  // `s += ...` then `s *= ...` is not an associative reduction: falls
  // back to the select transformation (with its warning).
  const char* src = R"(
__global__ void k(float* a, float* c, int n) {
  float s = 1.0f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) {
    s += a[i];
    s *= 2.0f;
  }
  c[threadIdx.x] = s;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  bool detected = false;
  for (const auto& n : r.notes)
    if (n.find("auto-detected") != std::string::npos) detected = true;
  EXPECT_FALSE(detected);
  bool warned = false;
  for (const auto& d : diags.all())
    if (d.severity == Severity::kWarning) warned = true;
  EXPECT_TRUE(warned);
}

TEST(AutoReduction, VarReadElsewhereNotDetected) {
  // The running value is *observed* inside the loop (b[i] = s): a
  // parallel reduction would change the stored values, so detection
  // must refuse (this is a scan, not a reduction).
  const char* src = R"(
__global__ void k(float* a, float* b, float* c, int n) {
  float s = 0.0f;
  #pragma np parallel for
  for (int i = 0; i < n; i++) {
    s += a[i];
    b[i] = s;
  }
  c[threadIdx.x] = s;
}
)";
  auto p = cudanp::frontend::parse_program_or_throw(src);
  DiagnosticEngine diags;
  auto r = apply_np_transform(*p->find_kernel("k"), inter(4, 32), diags);
  bool detected = false;
  for (const auto& n : r.notes)
    if (n.find("auto-detected") != std::string::npos) detected = true;
  EXPECT_FALSE(detected);
}

}  // namespace
}  // namespace cudanp::transform
