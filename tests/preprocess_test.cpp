#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/interpreter.hpp"
#include "transform/preprocess.hpp"

namespace cudanp::transform {
namespace {

using namespace cudanp::ir;
using namespace cudanp::sim;

std::unique_ptr<Program> parse(const std::string& src) {
  return cudanp::frontend::parse_program_or_throw(src);
}

/// Runs a kernel and returns the contents of its first (output) buffer.
std::vector<std::int32_t> run_i32(const Kernel& k, Dim3 grid, Dim3 block,
                                  std::size_t out_elems) {
  DeviceMemory mem;
  auto out = mem.alloc(ScalarType::kInt, out_elems);
  LaunchConfig cfg;
  cfg.grid = grid;
  cfg.block = block;
  cfg.args = {out};
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(k, cfg);
  auto s = mem.buffer(out).i32();
  return {s.begin(), s.end()};
}

TEST(FlattenThreadDims, EquivalentResults) {
  // A kernel written for 4x8 blocks, flattened to 32x1: every thread must
  // compute the same value (Fig. 8 mapping).
  const char* src =
      "__global__ void k(int* o) {"
      "  int id = threadIdx.y * blockDim.x + threadIdx.x;"
      "  o[blockIdx.x * 32 + id] = threadIdx.y * 1000 + threadIdx.x;"
      "}";
  auto p2d = parse(src);
  auto want = run_i32(*p2d->kernels[0], {2, 1, 1}, {4, 8, 1}, 64);

  auto pflat = parse(src);
  int flat = flatten_thread_dims(*pflat->kernels[0], {4, 8, 1});
  EXPECT_EQ(flat, 32);
  auto got = run_i32(*pflat->kernels[0], {2, 1, 1}, {32, 1, 1}, 64);
  EXPECT_EQ(got, want);
}

TEST(FlattenThreadDims, ThreeDimensional) {
  const char* src =
      "__global__ void k(int* o) {"
      "  int id = (threadIdx.z * blockDim.y + threadIdx.y) * blockDim.x"
      "           + threadIdx.x;"
      "  o[id] = threadIdx.z * 100 + threadIdx.y * 10 + threadIdx.x;"
      "}";
  auto p3d = parse(src);
  auto want = run_i32(*p3d->kernels[0], {1, 1, 1}, {2, 3, 4}, 24);
  auto pflat = parse(src);
  int flat = flatten_thread_dims(*pflat->kernels[0], {2, 3, 4});
  EXPECT_EQ(flat, 24);
  auto got = run_i32(*pflat->kernels[0], {1, 1, 1}, {24, 1, 1}, 24);
  EXPECT_EQ(got, want);
}

TEST(FlattenThreadDims, OneDimensionalIsIdentity) {
  auto p = parse("__global__ void k(int* o) { o[threadIdx.x] = 1; }");
  std::string before = print_kernel(*p->kernels[0]);
  int flat = flatten_thread_dims(*p->kernels[0], {64, 1, 1});
  EXPECT_EQ(flat, 64);
  EXPECT_EQ(print_kernel(*p->kernels[0]), before);
}

TEST(Reroll, CombinesUnrolledStatements) {
  // Fig. 9: manually unrolled statements with non-linear indices become a
  // loop over constant index tables.
  auto p = parse(
      "__global__ void k(float* a, float* b) {"
      "  a[3] += b[0];"
      "  a[1] += b[1];"
      "  a[4] += b[2];"
      "  a[1] += b[3];"
      "  a[5] += b[4];"
      "}");
  auto r = reroll_unrolled_statements(*p->kernels[0]);
  EXPECT_EQ(r.loops_created, 1);
  EXPECT_EQ(r.statements_absorbed, 5);
  std::string s = print_kernel(*p->kernels[0]);
  EXPECT_NE(s.find("__rr_tab0"), std::string::npos);
  EXPECT_NE(s.find("for (int __rr_u = 0; __rr_u < 5;"), std::string::npos);
}

TEST(Reroll, RerolledKernelComputesSameValues) {
  const char* src =
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  o[t * 4 + 0] = t + 3;"
      "  o[t * 4 + 1] = t + 1;"
      "  o[t * 4 + 2] = t + 4;"
      "  o[t * 4 + 3] = t + 1;"
      "}";
  auto pref = parse(src);
  auto want = run_i32(*pref->kernels[0], {1, 1, 1}, {8, 1, 1}, 32);
  auto p = parse(src);
  auto r = reroll_unrolled_statements(*p->kernels[0]);
  EXPECT_EQ(r.loops_created, 1);
  auto got = run_i32(*p->kernels[0], {1, 1, 1}, {8, 1, 1}, 32);
  EXPECT_EQ(got, want);
}

TEST(Reroll, ConstantColumnsStayLiteral) {
  auto p = parse(
      "__global__ void k(int* o) {"
      "  o[0] = 7;"
      "  o[1] = 7;"
      "  o[2] = 7;"
      "}");
  (void)reroll_unrolled_statements(*p->kernels[0]);
  std::string s = print_kernel(*p->kernels[0]);
  // The stored value 7 is constant across the run: no table for it.
  EXPECT_NE(s.find("= 7;"), std::string::npos);
  EXPECT_NE(s.find("__rr_tab0"), std::string::npos);  // the index varies
}

TEST(Reroll, ShortRunsLeftAlone) {
  auto p = parse(
      "__global__ void k(int* o) {"
      "  o[0] = 1;"
      "  o[1] = 2;"
      "}");
  auto r = reroll_unrolled_statements(*p->kernels[0]);
  EXPECT_EQ(r.loops_created, 0);
}

TEST(Reroll, DifferentShapesNotMerged) {
  auto p = parse(
      "__global__ void k(int* o, float* f) {"
      "  o[0] = 1;"
      "  f[1] = 2.0f;"
      "  o[2] = 3;"
      "}");
  auto r = reroll_unrolled_statements(*p->kernels[0]);
  EXPECT_EQ(r.loops_created, 0);
}

TEST(Reroll, MarkParallelAttachesPragma) {
  auto p = parse(
      "__global__ void k(int* o) {"
      "  o[0] = 1;"
      "  o[1] = 2;"
      "  o[2] = 3;"
      "}");
  (void)reroll_unrolled_statements(*p->kernels[0], /*mark_parallel=*/true);
  EXPECT_EQ(p->kernels[0]->parallel_loop_count(), 1u);
}

TEST(Reroll, RecursesIntoControlFlow) {
  auto p = parse(
      "__global__ void k(int* o, int n) {"
      "  if (n > 0) {"
      "    o[0] = 1;"
      "    o[1] = 2;"
      "    o[2] = 3;"
      "    o[3] = 4;"
      "  }"
      "}");
  auto r = reroll_unrolled_statements(*p->kernels[0]);
  EXPECT_EQ(r.loops_created, 1);
  EXPECT_EQ(r.statements_absorbed, 4);
}

}  // namespace
}  // namespace cudanp::transform
