#include <gtest/gtest.h>

#include "analysis/loop_info.hpp"
#include "frontend/parser.hpp"

namespace cudanp::analysis {
namespace {

using namespace cudanp::ir;

const ForStmt& first_loop(const Program& p) {
  const ForStmt* found = nullptr;
  for_each_stmt(*p.kernels[0]->body, [&](const Stmt& s) {
    if (!found && s.kind() == StmtKind::kFor)
      found = &static_cast<const ForStmt&>(s);
  });
  EXPECT_NE(found, nullptr);
  return *found;
}

std::optional<LoopInfo> analyze(const std::string& body,
                                std::string* why = nullptr) {
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n, int m) { " + body + " }");
  // Keep the program alive while analyzing.
  static std::unique_ptr<Program> keep;
  keep = std::move(p);
  return analyze_loop(first_loop(*keep), why);
}

TEST(LoopInfo, CanonicalDeclForm) {
  auto info = analyze("for (int i = 0; i < n; i++) a[i] = 0.0f;");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->iterator, "i");
  EXPECT_EQ(info->step, 1);
  EXPECT_TRUE(info->declares_iterator);
  EXPECT_FALSE(info->const_trip_count.has_value());
}

TEST(LoopInfo, ConstTripCount) {
  auto info = analyze("for (int i = 0; i < 150; i++) a[i] = 0.0f;");
  ASSERT_TRUE(info.has_value());
  ASSERT_TRUE(info->const_trip_count.has_value());
  EXPECT_EQ(*info->const_trip_count, 150);
}

TEST(LoopInfo, ConstTripWithStep) {
  auto info = analyze("for (int i = 0; i < 10; i += 3) a[i] = 0.0f;");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->step, 3);
  EXPECT_EQ(*info->const_trip_count, 4);  // 0,3,6,9
}

TEST(LoopInfo, AssignedIterator) {
  auto info = analyze("int i; for (i = 2; i < n; i = i + 1) a[i] = 0.0f;");
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->declares_iterator);
  EXPECT_EQ(info->step, 1);
}

TEST(LoopInfo, RejectsNonComparisonCondition) {
  std::string why;
  EXPECT_FALSE(analyze("for (int i = 0; n; i++) a[i] = 0.0f;", &why));
  EXPECT_FALSE(why.empty());
}

TEST(LoopInfo, RejectsGreaterThan) {
  EXPECT_FALSE(analyze("for (int i = n; i > 0; i += 1) a[i] = 0.0f;"));
}

TEST(LoopInfo, RejectsNegativeStep) {
  EXPECT_FALSE(analyze("for (int i = n; i < m; i -= 1) a[i] = 0.0f;"));
}

TEST(LoopInfo, RejectsNonConstStep) {
  EXPECT_FALSE(analyze("for (int i = 0; i < n; i += m) a[i] = 0.0f;"));
}

TEST(LoopInfo, RejectsIteratorModifiedInBody) {
  std::string why;
  EXPECT_FALSE(
      analyze("for (int i = 0; i < n; i++) { a[i] = 0.0f; i = i + 2; }",
              &why));
  EXPECT_NE(why.find("modified"), std::string::npos);
}

TEST(LoopInfo, RejectsMissingClauses) {
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(int n) { int i = 0; for (; i < n; i++) { } }");
  EXPECT_FALSE(analyze_loop(first_loop(*p)).has_value());
}

TEST(LoopInfo, ZeroTripWhenBoundBelowInit) {
  auto info = analyze("for (int i = 5; i < 3; i++) a[i] = 0.0f;");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(*info->const_trip_count, 0);
}

}  // namespace
}  // namespace cudanp::analysis
