#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>

#include "sim/memory.hpp"

namespace cudanp::sim {
namespace {

std::array<std::uint8_t, 32> all_active() {
  std::array<std::uint8_t, 32> a;
  a.fill(1);
  return a;
}

TEST(DeviceMemory, AllocatesAlignedNonOverlapping) {
  DeviceMemory mem;
  auto a = mem.alloc(ir::ScalarType::kFloat, 10);
  auto b = mem.alloc(ir::ScalarType::kFloat, 10);
  EXPECT_EQ(mem.buffer(a).base_addr() % 256, 0u);
  EXPECT_EQ(mem.buffer(b).base_addr() % 256, 0u);
  EXPECT_GE(mem.buffer(b).base_addr(),
            mem.buffer(a).base_addr() + 40);
}

TEST(DeviceMemory, LoadStoreRoundTrip) {
  DeviceMemory mem;
  auto f = mem.alloc(ir::ScalarType::kFloat, 4);
  auto i = mem.alloc(ir::ScalarType::kInt, 4);
  mem.buffer(f).store(2, Value::of_float(1.5));
  mem.buffer(i).store(3, Value::of_int(-7));
  EXPECT_DOUBLE_EQ(mem.buffer(f).load(2).as_f(), 1.5);
  EXPECT_EQ(mem.buffer(i).load(3).as_i(), -7);
}

TEST(DeviceMemory, StoreCoercesToElementType) {
  DeviceMemory mem;
  auto i = mem.alloc(ir::ScalarType::kInt, 1);
  mem.buffer(i).store(0, Value::of_float(3.9));
  EXPECT_EQ(mem.buffer(i).load(0).as_i(), 3);
}

TEST(DeviceMemory, OutOfBoundsThrows) {
  DeviceMemory mem;
  auto f = mem.alloc(ir::ScalarType::kFloat, 4);
  EXPECT_THROW(mem.buffer(f).load(4), SimError);
  EXPECT_THROW(mem.buffer(f).store(100, Value::of_float(0)), SimError);
  EXPECT_THROW(mem.buffer(99), SimError);
}

TEST(Coalescing, FullyCoalescedWarp) {
  // 32 lanes x consecutive 4B words = 128 B = four 32 B transactions.
  std::array<std::uint64_t, 32> addrs;
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = 1024 + 4 * static_cast<std::uint64_t>(l);
  auto act = all_active();
  EXPECT_EQ(coalesced_transactions(addrs, act, 32), 4);
  EXPECT_EQ(coalesced_transactions(addrs, act, 128), 1);
}

TEST(Coalescing, BroadcastIsOneTransaction) {
  std::array<std::uint64_t, 32> addrs;
  addrs.fill(4096);
  auto act = all_active();
  EXPECT_EQ(coalesced_transactions(addrs, act, 32), 1);
}

TEST(Coalescing, FullyScattered) {
  std::array<std::uint64_t, 32> addrs;
  for (int l = 0; l < 32; ++l)
    addrs[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 8192;
  auto act = all_active();
  EXPECT_EQ(coalesced_transactions(addrs, act, 32), 32);
}

TEST(Coalescing, InactiveLanesIgnored) {
  std::array<std::uint64_t, 32> addrs;
  for (int l = 0; l < 32; ++l)
    addrs[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 8192;
  std::array<std::uint8_t, 32> act{};
  act[3] = 1;
  EXPECT_EQ(coalesced_transactions(addrs, act, 32), 1);
  std::array<std::uint8_t, 32> none{};
  EXPECT_EQ(coalesced_transactions(addrs, none, 32), 0);
}

TEST(Coalescing, StridedAccessScalesWithStride) {
  // Stride-2 floats: touches twice the segments of stride-1.
  auto act = all_active();
  std::array<std::uint64_t, 32> s1, s2;
  for (int l = 0; l < 32; ++l) {
    s1[static_cast<std::size_t>(l)] = 4 * static_cast<std::uint64_t>(l);
    s2[static_cast<std::size_t>(l)] = 8 * static_cast<std::uint64_t>(l);
  }
  EXPECT_EQ(coalesced_transactions(s2, act, 32),
            2 * coalesced_transactions(s1, act, 32));
}

TEST(BankConflicts, ConflictFreeUnitStride) {
  std::array<std::uint64_t, 32> words;
  std::iota(words.begin(), words.end(), 0);
  auto act = all_active();
  EXPECT_EQ(smem_replays(words, act, 32), 1);
}

TEST(BankConflicts, BroadcastSameWordIsFree) {
  std::array<std::uint64_t, 32> words;
  words.fill(17);
  auto act = all_active();
  EXPECT_EQ(smem_replays(words, act, 32), 1);
}

TEST(BankConflicts, TwoWayConflictStride2) {
  // Stride 2 over 32 banks: two lanes per bank -> 2 replays.
  std::array<std::uint64_t, 32> words;
  for (int l = 0; l < 32; ++l)
    words[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 2;
  auto act = all_active();
  EXPECT_EQ(smem_replays(words, act, 32), 2);
}

TEST(BankConflicts, SixteenWayConflictStride16) {
  // Stride 16: lanes alternate between banks 0 and 16, with 16 distinct
  // words on each -> 16 replays.
  std::array<std::uint64_t, 32> words;
  for (int l = 0; l < 32; ++l)
    words[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 16;
  auto act = all_active();
  EXPECT_EQ(smem_replays(words, act, 32), 16);
}

TEST(BankConflicts, WorstCaseStride32) {
  std::array<std::uint64_t, 32> words;
  for (int l = 0; l < 32; ++l)
    words[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 32;
  auto act = all_active();
  EXPECT_EQ(smem_replays(words, act, 32), 32);
}

TEST(BankConflicts, MinimumOneEvenWhenIdle) {
  std::array<std::uint64_t, 32> words{};
  std::array<std::uint8_t, 32> none{};
  EXPECT_EQ(smem_replays(words, none, 32), 1);
}

TEST(L1Cache, HitAfterMiss) {
  L1Cache c(1024, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same line
  EXPECT_FALSE(c.access(128));
}

TEST(L1Cache, LruEviction) {
  // 2 sets x 4 ways x 128 B lines = 1 KB. Fill one set beyond its ways.
  L1Cache c(1024, 128, 4);
  // Addresses mapping to set 0: line % 2 == 0 -> addr multiples of 256.
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(c.access(static_cast<std::uint64_t>(i) * 256));
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(c.access(static_cast<std::uint64_t>(i) * 256));
  EXPECT_FALSE(c.access(4 * 256));  // evicts LRU (line 0)
  EXPECT_FALSE(c.access(0));        // line 0 gone
}

TEST(L1Cache, ZeroCapacityAlwaysMisses) {
  L1Cache c(0, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(0));
}

TEST(L1Cache, ResetClears) {
  L1Cache c(1024, 128);
  (void)c.access(0);
  c.reset();
  EXPECT_FALSE(c.access(0));
}

TEST(L1Cache, WorkingSetSmallerThanCapacityAllHits) {
  L1Cache c(16 * 1024, 128, 4);
  for (int rep = 0; rep < 3; ++rep) {
    int misses = 0;
    for (std::uint64_t a = 0; a < 8 * 1024; a += 128)
      if (!c.access(a)) ++misses;
    if (rep > 0) EXPECT_EQ(misses, 0);
  }
}

TEST(FreeList, ReleaseRecyclesSameShape) {
  DeviceMemory mem;
  auto a = mem.alloc(ir::ScalarType::kFloat, 100);
  std::uint64_t base = mem.buffer(a).base_addr();
  mem.buffer(a).store(0, Value::of_float(9.0));
  mem.release(a);
  EXPECT_EQ(mem.free_list_bytes(), 400u);
  auto b = mem.alloc(ir::ScalarType::kFloat, 100);
  EXPECT_EQ(b, a);  // same slot, same address, zeroed contents
  EXPECT_EQ(mem.buffer(b).base_addr(), base);
  EXPECT_DOUBLE_EQ(mem.buffer(b).load(0).as_f(), 0.0);
  EXPECT_EQ(mem.free_list_bytes(), 0u);
}

TEST(FreeList, DoubleReleaseThrows) {
  DeviceMemory mem;
  auto a = mem.alloc(ir::ScalarType::kInt, 8);
  mem.release(a);
  EXPECT_THROW(mem.release(a), SimError);
}

TEST(FreeList, RetentionIsBoundedByLimit) {
  DeviceMemory mem;
  mem.set_free_limit_bytes(1024);
  // Heterogeneous shapes so nothing recycles: every release adds to the
  // pool, which must stay under the cap by evicting the oldest.
  for (std::size_t elems = 10; elems < 100; elems += 7) {
    auto id = mem.alloc(ir::ScalarType::kFloat, elems);
    mem.release(id);
    EXPECT_LE(mem.free_list_bytes(), mem.free_limit_bytes());
  }
}

TEST(FreeList, TrimEvictsOldestFirst) {
  DeviceMemory mem;
  mem.set_free_limit_bytes(1000);
  auto old_id = mem.alloc(ir::ScalarType::kFloat, 150);  // 600 B
  auto new_id = mem.alloc(ir::ScalarType::kFloat, 100);  // 400 B
  mem.release(old_id);
  mem.release(new_id);  // 1000 B retained: exactly at the cap
  EXPECT_EQ(mem.free_list_bytes(), 1000u);
  auto third = mem.alloc(ir::ScalarType::kFloat, 50);  // 200 B
  mem.release(third);  // over the cap -> the oldest release is discarded
  EXPECT_TRUE(mem.buffer(old_id).discarded());
  EXPECT_FALSE(mem.buffer(new_id).discarded());
  EXPECT_EQ(mem.free_list_bytes(), 600u);
}

TEST(FreeList, DiscardedSlotIsNeverRecycled) {
  DeviceMemory mem;
  mem.set_free_limit_bytes(0);  // every release discards immediately
  auto a = mem.alloc(ir::ScalarType::kFloat, 64);
  mem.release(a);
  EXPECT_TRUE(mem.buffer(a).discarded());
  EXPECT_EQ(mem.free_list_bytes(), 0u);
  auto b = mem.alloc(ir::ScalarType::kFloat, 64);
  EXPECT_NE(b, a);  // fresh slot; the discarded id stays valid but empty
  EXPECT_THROW(mem.buffer(a).load(0), SimError);
  EXPECT_THROW(mem.release(a), SimError);
}

TEST(FreeList, LoweringLimitTrimsImmediately) {
  DeviceMemory mem;
  auto a = mem.alloc(ir::ScalarType::kInt, 256);  // 1 KiB
  auto b = mem.alloc(ir::ScalarType::kInt, 512);  // 2 KiB
  mem.release(a);
  mem.release(b);
  EXPECT_EQ(mem.free_list_bytes(), 3072u);
  mem.set_free_limit_bytes(2048);
  EXPECT_EQ(mem.free_list_bytes(), 2048u);
  EXPECT_TRUE(mem.buffer(a).discarded());
  EXPECT_FALSE(mem.buffer(b).discarded());
}

TEST(FreeList, ServiceChurnAllocationVolumeStaysBounded) {
  // A long-lived service processing heterogeneous jobs must not retain
  // every buffer shape it has ever seen: with the default cap, total
  // retained bytes stay bounded no matter how many shapes churn through.
  DeviceMemory mem;
  mem.set_free_limit_bytes(16 * 1024);
  std::uint64_t peak = 0;
  for (int job = 0; job < 200; ++job) {
    std::size_t elems = 64 + static_cast<std::size_t>(job) * 13;  // all distinct
    auto id = mem.alloc(ir::ScalarType::kFloat, elems);
    mem.release(id);
    peak = std::max(peak, mem.free_list_bytes());
  }
  EXPECT_LE(peak, 16u * 1024u);
  EXPECT_LE(mem.free_list_bytes(), 16u * 1024u);
}

TEST(DeviceBuffer, ConstantFlag) {
  DeviceMemory mem;
  auto b = mem.alloc(ir::ScalarType::kFloat, 8);
  EXPECT_FALSE(mem.buffer(b).is_constant());
  mem.buffer(b).set_constant(true);
  EXPECT_TRUE(mem.buffer(b).is_constant());
}

}  // namespace
}  // namespace cudanp::sim
