// End-to-end tests of the cudanp-cc command-line compiler (invoked as a
// subprocess, exactly as a user would).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "temp_util.hpp"

#ifndef CUDANP_CC_PATH
#define CUDANP_CC_PATH "tools/cudanp-cc"
#endif

namespace {

using cudanp::test::ScopedTempDir;
using cudanp::test::write_exclusive;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_cli(const std::string& args) {
  std::string cmd = std::string(CUDANP_CC_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buf;
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return r;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe))
    r.output += buf.data();
  int status = pclose(pipe);
  r.exit_code = WEXITSTATUS(status);
  return r;
}

// Pid-unique temp paths + O_EXCL creation live in tests/temp_util.hpp
// (shared with the daemon/supervisor suites).
std::string temp_name(const std::string& name) {
  return cudanp::test::temp_name("cudanp_cli", name);
}

std::string write_temp_kernel(const std::string& body) {
  return write_exclusive(temp_name("test.cu"), body);
}

const char* kTmv = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

TEST(Cli, TransformsToStdout) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --slave-size=8 --np-type=intra");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tmv_np"), std::string::npos);
  EXPECT_NE(r.output.find("__shfl_xor"), std::string::npos);
  EXPECT_NE(r.output.find("slave_id"), std::string::npos);
}

TEST(Cli, WritesOutputFile) {
  auto path = write_temp_kernel(kTmv);
  std::string out = temp_name("out.cu");
  auto r = run_cli(path + " -o " + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream f(out);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("tmv_np"), std::string::npos);
}

TEST(Cli, ReportMode) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --report --slave-size=4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("occupancy:"), std::string::npos);
  EXPECT_NE(r.output.find("registers:"), std::string::npos);
}

TEST(Cli, AllEmitsEveryCandidate) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --all");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("inter-warp slave_size=2"), std::string::npos);
  EXPECT_NE(r.output.find("intra-warp slave_size=32"), std::string::npos);
}

TEST(Cli, NoShflForcesSharedMemory) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --np-type=intra --slave-size=4 --no-shfl");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("__shfl"), std::string::npos);
  EXPECT_NE(r.output.find("__np_red_f"), std::string::npos);
}

TEST(Cli, OldSmVersionAvoidsShfl) {
  // Paper Sec. 3.6: sm_version < 30 must not use __shfl.
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --np-type=intra --slave-size=4 --sm=20");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("__shfl"), std::string::npos);
}

TEST(Cli, PreprocessRerolls) {
  auto path = write_temp_kernel(R"(
__global__ void k(float* a, float* b, int n) {
  float s = 0.0f;
  s += a[3] * b[0];
  s += a[1] * b[1];
  s += a[4] * b[2];
  s += a[1] * b[3];
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < n; i++) s += a[i];
  b[threadIdx.x] = s;
}
)");
  auto r = run_cli(path + " --preprocess");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("re-rolled 4 statements"), std::string::npos);
  EXPECT_NE(r.output.find("__rr_tab"), std::string::npos);
}

TEST(Cli, MissingFileFails) {
  auto r = run_cli("/nonexistent/kernel.cu");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, NoArgumentsShowsUsage) {
  auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, KernelWithoutPragmasFails) {
  auto path = write_temp_kernel(
      "__global__ void k(float* a) { a[0] = 1.0f; }");
  auto r = run_cli(path);
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, SyntaxErrorFails) {
  auto path = write_temp_kernel("__global__ void k(float* a) { a[0] = ; }");
  auto r = run_cli(path);
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, UnknownOptionFails) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --frobnicate");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, SanitizeCleanKernelPasses) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --sanitize");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("baseline: clean"), std::string::npos);
  EXPECT_NE(r.output.find("PASS"), std::string::npos);
}

TEST(Cli, SanitizeRacyKernelExitsThree) {
  auto path = write_temp_kernel(R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x] = s[0];
}
)");
  auto r = run_cli(path + " --sanitize");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("shared-race"), std::string::npos);
  EXPECT_NE(r.output.find("write-write race"), std::string::npos);
}

TEST(Cli, SanitizeUnannotatedKernelRunsBaselineOnly) {
  // Without pragmas there is nothing to transform, but guarded execution
  // still audits the kernel (unlike plain mode, which rejects it).
  auto path = write_temp_kernel(R"(
__global__ void uninit(float* out, int n) {
  float x;
  out[threadIdx.x] = x;
}
)");
  auto r = run_cli(path + " --sanitize");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("uninit-read"), std::string::npos);
}

TEST(Cli, SanitizeErrorLimitIsReported) {
  auto path = write_temp_kernel(R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x] = s[0];
}
)");
  auto r = run_cli(path + " --sanitize --error-limit=1");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("error limit reached"), std::string::npos);
}

TEST(Cli, SanitizeRejectsBadErrorLimit) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --sanitize --error-limit=-2");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, WatchdogStepsTripsRunawayKernel) {
  // An unannotated infinite loop under --sanitize: the watchdog converts
  // the would-be hang into a watchdog-trip hazard (exit 3, like any
  // other hazard in sanitize mode).
  auto path = write_temp_kernel(R"(
__global__ void spin(float* out, int n) {
  float x = 0.0f;
  while (0 < 1) {
    x = x + 1.0f;
  }
  out[threadIdx.x] = x;
}
)");
  auto r = run_cli(path + " --sanitize --watchdog-steps=1000");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("watchdog-trip"), std::string::npos) << r.output;
}

TEST(Cli, FallbackPicksVariantWhenClean) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --fallback=baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tmv_np"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"used_baseline\":false"), std::string::npos)
      << r.output;
}

TEST(Cli, FallbackDegradesToBaselineWithReport) {
  // The synthetic workload at this size sends the baseline itself out of
  // bounds, so every candidate (and the baseline) is quarantined — the
  // tool must still print a runnable kernel and exit 6 with the JSON
  // failure report.
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --fallback=baseline --elems=16");
  EXPECT_EQ(r.exit_code, 6) << r.output;
  EXPECT_NE(r.output.find("__global__ void tmv"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"used_baseline\":true"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("quarantined"), std::string::npos) << r.output;
}

TEST(Cli, FallbackAcceptsUnannotatedKernel) {
  // A kernel with no #pragma np loops has nothing to fall back from, but
  // --fallback must still accept it (like --sanitize does) and run the
  // baseline; a watchdog trip there is a degraded outcome, exit 6.
  auto path = write_temp_kernel(R"(
__global__ void spin(float* out, int n) {
  float x = 0.0f;
  while (0 < 1) {
    x = x + 1.0f;
  }
  out[threadIdx.x] = x;
}
)");
  auto r = run_cli(path + " --fallback=baseline --watchdog-steps=1000");
  EXPECT_EQ(r.exit_code, 6) << r.output;
  EXPECT_NE(r.output.find("no #pragma np loops"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("__global__ void spin"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("watchdog-trip"), std::string::npos) << r.output;
}

TEST(Cli, FallbackRejectsUnknownPolicy) {
  auto path = write_temp_kernel(kTmv);
  auto r = run_cli(path + " --fallback=frobnicate");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, RejectsGarbageNumericFlags) {
  // The atoi era: --tb=8x silently meant 8 and --jobs=x meant 0. Every
  // numeric flag now goes through the checked parser.
  auto path = write_temp_kernel(kTmv);
  for (const char* flag :
       {"--tb=8x", "--tb=", "--tb=99999", "--slave-size=four", "--sm=abc",
        "--elems=1e3", "--jobs=0", "--watchdog-steps=10x",
        "--error-limit=-2", "--queue-cap=0x10", "--deadline-ms=soon",
        "--retries=1.5"}) {
    auto r = run_cli(path + " " + flag);
    EXPECT_EQ(r.exit_code, 1) << flag << ": " << r.output;
  }
  auto ok = run_cli(path + " --tb=64");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

std::string write_temp_file(const std::string& name,
                            const std::string& body) {
  return write_exclusive(temp_name(name), body);
}

TEST(Cli, BatchHealthyManifestExitsZero) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "healthy.txt", "file=" + kernel + " elems=16 tb=8 name=ok\n");
  auto r = run_cli("--batch=" + manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ok: succeeded"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("SERVED\n"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"submitted\":1"), std::string::npos)
      << r.output;
}

TEST(Cli, BatchMixedManifestExitsSevenWithAllTerminalStates) {
  auto kernel = write_temp_kernel(kTmv);
  auto spin = write_temp_file("spin.cu", R"(
__global__ void spin(int* a, int n) {
  int i = 0;
  while (n > 0) { i = i + 1; }
  a[0] = i;
}
)");
  auto manifest = write_temp_file(
      "mixed.txt",
      "# healthy / flaky / broken / hanging\n"
      "file=" + kernel + " elems=16 tb=8 name=healthy\n"
      "file=" + kernel +
          " elems=16 tb=8 fault-step=5 transient-attempts=1 name=flaky\n"
      "file=" + kernel + " elems=16 tb=8 fault-step=5 name=broken\n"
      "file=" + spin + " deadline-ms=20 name=hang\n");
  auto r = run_cli("--batch=" + manifest + " --jobs=4");
  EXPECT_EQ(r.exit_code, 7) << r.output;
  EXPECT_NE(r.output.find("healthy: succeeded"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("flaky: succeeded-after-retry"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("broken: degraded"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("hang: degraded (deadline-exceeded)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("SERVED-DEGRADED"), std::string::npos)
      << r.output;
}

TEST(Cli, BatchBadManifestExitsOneWithLineNumber) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "bad.txt", "file=" + kernel + " elems=64x\n");
  auto r = run_cli("--batch=" + manifest);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("line 1: bad elems=64x"), std::string::npos)
      << r.output;
}

TEST(Cli, BatchMissingManifestExitsOne) {
  auto r = run_cli("--batch=/nonexistent/manifest.txt");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot read manifest"), std::string::npos)
      << r.output;
}

TEST(Cli, BatchAndInputFileAreMutuallyExclusive) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest =
      write_temp_file("both.txt", "file=" + kernel + " name=x\n");
  auto r = run_cli(kernel + " --batch=" + manifest);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(Cli, EmittedOutputIsReparsable) {
  // Feed cudanp-cc its own output: source-to-source must close the loop.
  auto path = write_temp_kernel(kTmv);
  std::string out = temp_name("round.cu");
  auto r1 = run_cli(path + " --slave-size=4 -o " + out);
  ASSERT_EQ(r1.exit_code, 0) << r1.output;
  // The transformed kernel has no pragmas left, so ask for a report of a
  // named kernel instead of re-transforming.
  auto r2 = run_cli(out + " --kernel=tmv_np --report");
  EXPECT_EQ(r2.exit_code, 0) << r2.output;
  EXPECT_NE(r2.output.find("kernel tmv_np"), std::string::npos);
}

// ---------------------------------------------------------------------
// Crash isolation and durable recovery (--isolate / --journal).

TEST(Cli, IsolatedCrashingBatchExitsEightDegraded) {
  // A kernel that raises a genuine SIGSEGV mid-interpretation: without
  // isolation it kills cudanp-cc outright; under --isolate=process the
  // batch completes degraded with the crashed-but-completed exit code.
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "crash.txt",
      "file=" + kernel + " elems=16 tb=8 name=ok\n"
      "file=" + kernel +
          " elems=16 tb=8 crash-step=3 attempts=2 name=boom\n");
  auto r = run_cli("--batch=" + manifest + " --isolate=process");
  EXPECT_EQ(r.exit_code, 8) << r.output;
  EXPECT_NE(r.output.find("ok: succeeded"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("boom: degraded (crash)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("crashed attempt(s)"), std::string::npos)
      << r.output;
}

TEST(Cli, UnisolatedReportHasNoIsolationLine) {
  // Zero-crash batches must print the exact pre-isolation report.
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "quiet.txt", "file=" + kernel + " elems=16 tb=8 name=ok\n");
  auto r = run_cli("--batch=" + manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("isolation:"), std::string::npos) << r.output;
}

TEST(Cli, WorkerMemoryCapExitsEightWithResourceLimit) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "oom.txt",
      "file=" + kernel + " elems=16 tb=8 oom-mb=4096 name=fat\n");
  auto r = run_cli("--batch=" + manifest +
                   " --isolate=process --worker-mem-mb=512");
  EXPECT_EQ(r.exit_code, 8) << r.output;
  EXPECT_NE(r.output.find("fat: degraded (resource-limit)"),
            std::string::npos)
      << r.output;
}

TEST(Cli, JournaledRunThenResumeReproducesReportBitForBit) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "journal.txt",
      "file=" + kernel + " elems=16 tb=8 name=a\n"
      "file=" + kernel + " elems=16 tb=8 fault-step=5"
      " transient-attempts=1 name=flaky\n"
      "file=" + kernel + " elems=16 tb=8 crash-step=3 name=boom\n");
  ScopedTempDir tmp("cudanp_cli_journal");
  std::string j_full = tmp.file("full.journal");
  std::string j_cut = tmp.file("cut.journal");
  std::string args = "--batch=" + manifest +
                     " --isolate=process --commit-chunk=1 --journal=";
  auto full = run_cli(args + j_full);
  EXPECT_EQ(full.exit_code, 8) << full.output;

  // Simulate a SIGKILL after the first commit: keep the header and the
  // first record, truncating mid-way through the second (a torn tail).
  {
    std::ifstream in(j_full);
    std::string line, kept;
    for (int i = 0; i < 2 && std::getline(in, line); ++i)
      kept += line + "\n";
    std::getline(in, line);
    kept += line.substr(0, line.size() / 2);  // torn final record
    write_exclusive(j_cut, kept);
  }
  auto resumed = run_cli(args + j_cut + " --resume --jobs=2");
  EXPECT_EQ(resumed.exit_code, 8) << resumed.output;
  EXPECT_EQ(full.output, resumed.output);
}

TEST(Cli, SigkilledBatchResumesToIdenticalReport) {
  // The real thing: SIGKILL the process mid-batch (a wedge job holds it
  // in flight), then --resume and diff against an uninterrupted run.
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "kill.txt",
      "file=" + kernel + " elems=16 tb=8 name=a\n"
      "file=" + kernel + " elems=16 tb=8 name=b\n"
      "file=" + kernel + " elems=16 tb=8 wedge attempts=1 name=stuck\n"
      "file=" + kernel + " elems=16 tb=8 name=c\n");
  ScopedTempDir tmp("cudanp_cli_sigkill");
  std::string j_full = tmp.file("sk_full.journal");
  std::string j_kill = tmp.file("sk_kill.journal");
  std::string common = "--batch=" + manifest +
                       " --isolate=process --commit-chunk=1"
                       " --worker-timeout-ms=4000 --jobs=1 --journal=";
  auto full = run_cli(common + j_full);
  EXPECT_EQ(full.exit_code, 8) << full.output;

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Quiet child: the report goes nowhere, only the journal matters.
    ::execl("/bin/sh", "sh", "-c",
            (std::string(CUDANP_CC_PATH) + " " + common + j_kill +
             " >/dev/null 2>&1")
                .c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  // a and b commit fast; "stuck" then wedges for seconds — kill lands
  // mid-batch with a partially written journal.
  ::usleep(800 * 1000);
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);

  std::ifstream probe(j_kill);
  ASSERT_TRUE(probe.good()) << "journal was never created";
  auto resumed = run_cli(common + j_kill + " --resume");
  EXPECT_EQ(resumed.exit_code, 8) << resumed.output;
  EXPECT_EQ(full.output, resumed.output);
}

TEST(Cli, ResumeMismatchExitsNine) {
  auto kernel = write_temp_kernel(kTmv);
  auto m1 = write_temp_file(
      "m1.txt", "file=" + kernel + " elems=16 tb=8 name=a\n");
  auto m2 = write_temp_file(
      "m2.txt", "file=" + kernel + " elems=16 tb=8 name=renamed\n");
  ScopedTempDir tmp("cudanp_cli_mismatch");
  std::string j = tmp.file("mismatch.journal");
  auto r1 = run_cli("--batch=" + m1 + " --journal=" + j);
  EXPECT_EQ(r1.exit_code, 0) << r1.output;
  auto r2 = run_cli("--batch=" + m2 + " --journal=" + j + " --resume");
  EXPECT_EQ(r2.exit_code, 9) << r2.output;
  EXPECT_NE(r2.output.find("different batch"), std::string::npos)
      << r2.output;
}

TEST(Cli, ResumeRequiresJournal) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "nr.txt", "file=" + kernel + " name=a\n");
  auto r = run_cli("--batch=" + manifest + " --resume");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--resume requires --journal"),
            std::string::npos)
      << r.output;
}

TEST(Cli, RejectsBadIsolateValue) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "bi.txt", "file=" + kernel + " name=a\n");
  auto r = run_cli("--batch=" + manifest + " --isolate=vm");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("bad value for --isolate"), std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------
// Heartbeat/timeout validation and the persistent serve daemon.

TEST(Cli, HeartbeatMustFitInsideWorkerTimeout) {
  // 2 * heartbeat must fit inside the supervisor read timeout, or a
  // healthy worker would be declared wedged between beats. Caught at
  // parse time with a structured message.
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "hb.txt", "file=" + kernel + " name=a\n");
  auto r = run_cli("--batch=" + manifest +
                   " --heartbeat-ms=800 --worker-timeout-ms=1000");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("2*heartbeat <= --worker-timeout-ms"),
            std::string::npos)
      << r.output;
  // The boundary case is legal: 2 * 500 == 1000.
  auto ok = run_cli("--batch=" + manifest +
                    " --heartbeat-ms=500 --worker-timeout-ms=1000");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

/// Launches `cudanp-cc --serve` as a real subprocess and waits for the
/// socket to appear; kills the daemon on destruction if the test did
/// not shut it down.
struct ScopedDaemon {
  pid_t pid = -1;
  std::string socket;
  bool reaped = false;

  ScopedDaemon(const std::string& sock, const std::string& extra_args)
      : socket(sock) {
    // `exec` makes the daemon replace the shell, so `pid` is the daemon
    // itself and signals land directly.
    std::string cmd = "exec " + std::string(CUDANP_CC_PATH) +
                      " --serve=" + sock + " " + extra_args +
                      " >/dev/null 2>&1";
    pid = ::fork();
    if (pid == 0) {
      ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    for (int i = 0; i < 200 && ::access(sock.c_str(), F_OK) != 0; ++i)
      ::usleep(25 * 1000);
    EXPECT_EQ(::access(sock.c_str(), F_OK), 0)
        << "daemon never bound " << sock;
  }

  /// Waits for the daemon to exit and returns its exit code.
  int wait() {
    int status = 0;
    ::waitpid(pid, &status, 0);
    reaped = true;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~ScopedDaemon() {
    if (!reaped && pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

TEST(Cli, DaemonServesManifestIdenticalToBatchThenDrains) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "daemon.txt",
      "file=" + kernel + " elems=16 tb=8 name=ok\n"
      "file=" + kernel +
          " elems=16 tb=8 fault-step=5 transient-attempts=1 name=flaky\n");
  ScopedTempDir tmp("cudanp_cli_daemon");
  ScopedDaemon daemon(tmp.file("d.sock"), "--cache-entries=64");

  auto local = run_cli("--batch=" + manifest);
  auto served = run_cli("--connect=" + daemon.socket + " --batch=" +
                        manifest + " --tenant=t1");
  EXPECT_EQ(served.exit_code, local.exit_code) << served.output;
  // The daemon's answer — report text, JSON, and exit code — is
  // byte-identical to a local --batch run (the determinism contract).
  EXPECT_EQ(served.output, local.output);
  // A second submission hits the compile cache; the report must not
  // change.
  auto again = run_cli("--connect=" + daemon.socket + " --batch=" +
                       manifest + " --tenant=t2");
  EXPECT_EQ(again.output, local.output);

  auto status = run_cli("--connect=" + daemon.socket + " --status");
  EXPECT_EQ(status.exit_code, 0) << status.output;
  EXPECT_NE(status.output.find("\"served\":2"), std::string::npos)
      << status.output;
  EXPECT_NE(status.output.find("\"hits\":"), std::string::npos)
      << status.output;
  auto health = run_cli("--connect=" + daemon.socket + " --healthz");
  EXPECT_NE(health.output.find("\"status\":\"ok\""), std::string::npos)
      << health.output;

  auto sd = run_cli("--connect=" + daemon.socket + " --shutdown");
  EXPECT_EQ(sd.exit_code, 0) << sd.output;
  EXPECT_NE(sd.output.find("draining"), std::string::npos) << sd.output;
  EXPECT_EQ(daemon.wait(), 0);
  // After a graceful drain, new connections find no daemon.
  auto after = run_cli("--connect=" + daemon.socket + " --status");
  EXPECT_EQ(after.exit_code, 1) << after.output;
}

TEST(Cli, DaemonSigtermDrainsGracefully) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "sig.txt", "file=" + kernel + " elems=16 tb=8 name=ok\n");
  ScopedTempDir tmp("cudanp_cli_sigterm");
  ScopedDaemon daemon(tmp.file("d.sock"), "");
  auto served = run_cli("--connect=" + daemon.socket + " --batch=" +
                        manifest);
  EXPECT_EQ(served.exit_code, 0) << served.output;
  // The signal path, not the 'Q' frame: SIGTERM begins a graceful drain
  // and the daemon exits 0.
  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(Cli, DaemonRejectsBadManifestWithExitTen) {
  ScopedTempDir tmp("cudanp_cli_reject");
  ScopedDaemon daemon(tmp.file("d.sock"), "");
  auto bad = write_temp_file("badm.txt", "file=/nonexistent/x.cu name=a\n");
  auto r = run_cli("--connect=" + daemon.socket + " --batch=" + bad);
  EXPECT_EQ(r.exit_code, 10) << r.output;
  EXPECT_NE(r.output.find("rejected: bad-manifest"), std::string::npos)
      << r.output;
  // The daemon survives the bad request and still serves.
  auto health = run_cli("--connect=" + daemon.socket + " --healthz");
  EXPECT_NE(health.output.find("\"status\":\"ok\""), std::string::npos)
      << health.output;
  auto sd = run_cli("--connect=" + daemon.socket + " --shutdown");
  EXPECT_EQ(sd.exit_code, 0) << sd.output;
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(Cli, DaemonRestartReplaysJournalBitForBit) {
  auto kernel = write_temp_kernel(kTmv);
  auto manifest = write_temp_file(
      "replay.txt",
      "file=" + kernel + " elems=16 tb=8 name=a\n"
      "file=" + kernel + " elems=16 tb=8 fault-step=5 name=broken\n");
  ScopedTempDir tmp("cudanp_cli_replay");
  const std::string args = "--journal-dir=" + tmp.file("journals");

  std::string first_out;
  {
    ScopedDaemon daemon(tmp.file("d.sock"), args);
    auto r = run_cli("--connect=" + daemon.socket + " --batch=" +
                     manifest);
    EXPECT_EQ(r.exit_code, 7) << r.output;
    first_out = r.output;
    auto sd = run_cli("--connect=" + daemon.socket + " --shutdown");
    EXPECT_EQ(daemon.wait(), 0);
  }
  // Restart on the same socket + journal dir: the same manifest resumes
  // its fingerprint-named journal (all outcomes replayed, nothing
  // re-executed) and the report is byte-identical.
  {
    ScopedDaemon daemon(tmp.file("d.sock"), args);
    auto r = run_cli("--connect=" + daemon.socket + " --batch=" +
                     manifest);
    EXPECT_EQ(r.exit_code, 7) << r.output;
    EXPECT_EQ(r.output, first_out);
    auto sd = run_cli("--connect=" + daemon.socket + " --shutdown");
    EXPECT_EQ(daemon.wait(), 0);
  }
}

}  // namespace
