// Guarded-execution gate for the paper suite: the baseline and every
// enumerated NP variant of every benchmark must run hazard-clean under the
// sanitizer, and NpCompiler::validate must agree that variant outputs match
// the baseline. A transform bug that races, diverges at a barrier, or reads
// a re-homed array before writing it fails here with a source location.
#include <gtest/gtest.h>

#include "kernels/benchmark.hpp"
#include "np/autotuner.hpp"

namespace cudanp {
namespace {

constexpr double kTestScale = 0.08;

class SanitizedBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(SanitizedBenchmarks, BaselineIsHazardClean) {
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto w = bench->make_workload();
  auto run = runner.execute(
      np::ExecutionRequest::baseline(bench->kernel(), w).sanitized());
  EXPECT_TRUE(run.clean()) << run.engine.summary();
}

TEST_P(SanitizedBenchmarks, EveryNpVariantIsHazardClean) {
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto probe = bench->make_workload();
  auto configs = np::NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()),
      runner.spec());
  ASSERT_FALSE(configs.empty());
  int executed = 0;
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.describe());
    transform::TransformResult variant;
    try {
      variant = np::NpCompiler::transform(bench->kernel(), cfg);
    } catch (const CompileError&) {
      continue;  // configuration legitimately inapplicable
    }
    auto w = bench->make_workload();
    auto run = runner.execute(
        np::ExecutionRequest::transformed(variant, w).sanitized());
    EXPECT_TRUE(run.clean()) << run.engine.summary();
    ++executed;
  }
  EXPECT_GT(executed, 0);
}

TEST_P(SanitizedBenchmarks, ValidateCrossChecksAllVariants) {
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  auto spec = sim::DeviceSpec::gtx680();
  auto probe = bench->make_workload();
  auto configs = np::NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()), spec);
  auto report = np::NpCompiler::validate(
      bench->kernel(), configs, [&] { return bench->make_workload(); }, spec);
  EXPECT_TRUE(report.all_clean()) << report.summary();
  EXPECT_EQ(report.hazard_count(), 0u) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SanitizedBenchmarks,
                         ::testing::ValuesIn(kernels::benchmark_names()));

}  // namespace
}  // namespace cudanp
