// Additional interpreter coverage: multi-dimensional grids, nested
// control flow, cost-accounting invariants, and the local-memory L1
// working-set behaviour that drives Fig. 15.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "sim/interpreter.hpp"

namespace cudanp::sim {
namespace {

struct Harness {
  DeviceSpec spec = DeviceSpec::gtx680();
  DeviceMemory mem;
  std::unique_ptr<ir::Program> program;
  KernelStats stats;

  BufferId alloc_i(std::size_t n) { return mem.alloc(ir::ScalarType::kInt, n); }
  BufferId alloc_f(std::size_t n) { return mem.alloc(ir::ScalarType::kFloat, n); }

  void run(const std::string& src, LaunchConfig cfg, int resident = 1) {
    program = frontend::parse_program_or_throw(src);
    Interpreter interp(spec, mem);
    stats = interp.run(*program->find_kernel("k"), cfg, resident);
  }
  std::span<const std::int32_t> i32(BufferId b) { return mem.buffer(b).i32(); }
};

TEST(InterpreterGrid, TwoDimensionalGrid) {
  Harness h;
  auto out = h.alloc_i(6);
  h.run(
      "__global__ void k(int* o) {"
      "  o[blockIdx.y * gridDim.x + blockIdx.x] ="
      "      blockIdx.y * 10 + blockIdx.x;"
      "}",
      {.grid = {3, 2, 1}, .block = {1, 1, 1}, .args = {out}});
  EXPECT_EQ(h.i32(out)[0], 0);
  EXPECT_EQ(h.i32(out)[2], 2);
  EXPECT_EQ(h.i32(out)[3], 10);
  EXPECT_EQ(h.i32(out)[5], 12);
  EXPECT_EQ(h.stats.blocks, 6);
}

TEST(InterpreterGrid, ThreeDimensionalGridCount) {
  Harness h;
  auto out = h.alloc_i(1);
  h.run(
      "__global__ void k(int* o) { o[0] = gridDim.x * gridDim.y * gridDim.z; }",
      {.grid = {2, 3, 4}, .block = {1, 1, 1}, .args = {out}});
  EXPECT_EQ(h.stats.blocks, 24);
  EXPECT_EQ(h.i32(out)[0], 24);
}

TEST(InterpreterControl, NestedLoopsAndConditionals) {
  Harness h;
  auto out = h.alloc_i(4);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  int acc = 0;"
      "  for (int i = 0; i < 4; i++) {"
      "    for (int j = 0; j < 4; j++) {"
      "      if ((i + j) % 2 == 0) {"
      "        if (j > t) { acc += 10; } else { acc += 1; }"
      "      }"
      "    }"
      "  }"
      "  o[t] = acc;"
      "}",
      {.grid = {1, 1, 1}, .block = {4, 1, 1}, .args = {out}});
  // 8 (i+j) even pairs; per thread t: pairs with j>t count 10 else 1.
  for (int t = 0; t < 4; ++t) {
    int want = 0;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        if ((i + j) % 2 == 0) want += j > t ? 10 : 1;
    EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], want) << t;
  }
}

TEST(InterpreterControl, ReturnInsideLoopStopsIterating) {
  Harness h;
  auto out = h.alloc_i(4);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  o[t] = 0;"
      "  for (int i = 0; i < 10; i++) {"
      "    if (i == t + 1) { return; }"
      "    o[t] = o[t] + 1;"
      "  }"
      "}",
      {.grid = {1, 1, 1}, .block = {4, 1, 1}, .args = {out}});
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(t)], t + 1);
}

TEST(InterpreterCost, IssueSlotsScaleWithActiveWarps) {
  // Same per-thread program: a 64-thread block issues twice the warp
  // instructions of a 32-thread block.
  auto measure = [](int threads) {
    Harness h;
    auto out = h.alloc_i(static_cast<std::size_t>(threads));
    h.run(
        "__global__ void k(int* o) {"
        "  int acc = 0;"
        "  for (int i = 0; i < 100; i++) acc += i;"
        "  o[threadIdx.x] = acc;"
        "}",
        {.grid = {1, 1, 1}, .block = {threads, 1, 1}, .args = {out}});
    return h.stats.issue_slots;
  };
  double w1 = measure(32);
  double w2 = measure(64);
  EXPECT_NEAR(w2 / w1, 2.0, 0.01);
}

TEST(InterpreterCost, SyncCountsPerExecution) {
  Harness h;
  auto out = h.alloc_i(32);
  h.run(
      "__global__ void k(int* o) {"
      "  __shared__ int t[32];"
      "  for (int i = 0; i < 5; i++) {"
      "    t[threadIdx.x] = i;"
      "    __syncthreads();"
      "  }"
      "  o[threadIdx.x] = t[threadIdx.x];"
      "}",
      {.grid = {2, 1, 1}, .block = {32, 1, 1}, .args = {out}});
  EXPECT_EQ(h.stats.sync_ops, 2 * 5);  // two blocks, five iterations
}

TEST(InterpreterCost, LocalArrayWorkingSetDrivesL1Misses) {
  // A 64 B/thread array fits the per-block L1 slice and re-reads hit;
  // a 4 KB/thread array thrashes it and misses keep coming — this is
  // the LE local-memory effect behind Fig. 15.
  auto misses = [](int elems, int resident) {
    Harness h;
    auto out = h.alloc_f(64);
    std::string n = std::to_string(elems);
    h.run(
        "__global__ void k(float* o) {"
        "  float a[" + n + "];"
        "  for (int r = 0; r < 4; r++) {"
        "    for (int i = 0; i < " + n + "; i++) {"
        "      a[i] = (float)i;"
        "    }"
        "    for (int i = 0; i < " + n + "; i++) {"
        "      o[threadIdx.x] = a[i];"
        "    }"
        "  }"
        "}",
        {.grid = {1, 1, 1}, .block = {64, 1, 1}, .args = {out}}, resident);
    return static_cast<double>(h.stats.local_l1_misses) /
           static_cast<double>(h.stats.local_transactions);
  };
  double small = misses(16, 1);    // 64 threads * 64 B = 4 KB working set
  double large = misses(1024, 8);  // 64 threads * 4 KB / slice of 2 KB
  EXPECT_LT(small, 0.2);
  EXPECT_GT(large, 0.8);
}

TEST(InterpreterCost, DivergenceCountedPerDynamicBranch) {
  Harness h;
  auto out = h.alloc_i(32);
  h.run(
      "__global__ void k(int* o) {"
      "  int t = threadIdx.x;"
      "  o[t] = 0;"
      "  for (int i = 0; i < 3; i++) {"
      "    if (t < 16) { o[t] = o[t] + 1; } else { o[t] = o[t] + 2; }"
      "  }"
      "}",
      {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {out}});
  EXPECT_EQ(h.stats.divergent_branches, 3);
}

TEST(InterpreterCost, UniformBranchIsNotDivergent) {
  Harness h;
  auto out = h.alloc_i(32);
  h.run(
      "__global__ void k(int* o, int n) {"
      "  if (n > 0) { o[threadIdx.x] = 1; } else { o[threadIdx.x] = 2; }"
      "}",
      {.grid = {1, 1, 1},
       .block = {32, 1, 1},
       .args = {out, Value::of_int(5)}});
  EXPECT_EQ(h.stats.divergent_branches, 0);
}

TEST(InterpreterCost, ConstantBufferBroadcastCheaperThanScatter) {
  auto run_with = [](bool constant) {
    Harness h;
    auto tab = h.alloc_f(64);
    auto out = h.alloc_f(32);
    h.mem.buffer(tab).set_constant(constant);
    h.run(
        "__global__ void k(float* t, float* o) {"
        "  o[threadIdx.x] = t[threadIdx.x % 2];"  // 2 distinct words
        "}",
        {.grid = {1, 1, 1}, .block = {32, 1, 1}, .args = {tab, out}});
    return h.stats;
  };
  auto c = run_with(true);
  auto g = run_with(false);
  // Constant path books no DRAM transactions for the table read.
  EXPECT_LT(c.dram_transactions, g.dram_transactions);
}

TEST(InterpreterValidation, GridOfManyBlocksAggregates) {
  Harness h;
  auto out = h.alloc_i(1024);
  h.run(
      "__global__ void k(int* o) {"
      "  int tid = threadIdx.x + blockIdx.x * blockDim.x;"
      "  o[tid] = tid;"
      "}",
      {.grid = {16, 1, 1}, .block = {64, 1, 1}, .args = {out}});
  EXPECT_EQ(h.stats.blocks, 16);
  EXPECT_EQ(h.stats.warps, 16 * 2);
  for (int i = 0; i < 1024; i += 97)
    EXPECT_EQ(h.i32(out)[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace cudanp::sim
