#include <gtest/gtest.h>

#include "kernels/suite.hpp"
#include "np/autotuner.hpp"

namespace cudanp::np {
namespace {

using transform::NpConfig;

Runner make_runner() { return Runner(sim::DeviceSpec::gtx680()); }

TEST(CompilerFacade, ParseAndTransform) {
  auto prog = NpCompiler::parse(
      "__global__ void k(float* a, int n) {\n"
      "float s = 0.0f;\n"
      "#pragma np parallel for reduction(+:s)\n"
      "for (int i = 0; i < n; i++) s += a[i];\n"
      "a[0] = s; }");
  ASSERT_NE(prog->find_kernel("k"), nullptr);
  NpConfig cfg;
  cfg.slave_size = 4;
  cfg.master_count = 32;
  auto variant = NpCompiler::transform(*prog->find_kernel("k"), cfg);
  EXPECT_EQ(variant.kernel->name, "k_np");
}

TEST(EnumerateConfigs, RespectsBlockSizeCap) {
  auto prog = NpCompiler::parse(
      "__global__ void k(float* a, int n) {\n"
      "#pragma np parallel for\n"
      "for (int i = 0; i < n; i++) a[i] = 0.0f; }");
  auto spec = sim::DeviceSpec::gtx680();
  auto c32 = NpCompiler::enumerate_configs(*prog->find_kernel("k"), 32, spec);
  auto c512 = NpCompiler::enumerate_configs(*prog->find_kernel("k"), 512, spec);
  EXPECT_GT(c32.size(), c512.size());
  for (const auto& c : c512)
    EXPECT_LE(c.block_threads(), spec.max_threads_per_block);
}

TEST(EnumerateConfigs, HonorsPragmaHints) {
  auto prog = NpCompiler::parse(
      "__global__ void k(float* a, int n) {\n"
      "#pragma np parallel for num_threads(8) np_type(inter)\n"
      "for (int i = 0; i < n; i++) a[i] = 0.0f; }");
  auto configs = NpCompiler::enumerate_configs(
      *prog->find_kernel("k"), 32, sim::DeviceSpec::gtx680());
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].slave_size, 8);
  EXPECT_EQ(configs[0].np_type, ir::NpType::kInterWarp);
}

TEST(EnumerateConfigs, IntraWarpRequiresWarpDivisor) {
  auto prog = NpCompiler::parse(
      "__global__ void k(float* a, int n) {\n"
      "#pragma np parallel for np_type(intra)\n"
      "for (int i = 0; i < n; i++) a[i] = 0.0f; }");
  auto configs = NpCompiler::enumerate_configs(
      *prog->find_kernel("k"), 16, sim::DeviceSpec::gtx680());
  for (const auto& c : configs) EXPECT_EQ(32 % c.slave_size, 0);
}

TEST(Autotuner, FindsAWinnerOnTmv) {
  auto bench = kernels::make_tmv(256, 256);
  Autotuner tuner(make_runner());
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); });
  EXPECT_GT(result.baseline_seconds, 0.0);
  ASSERT_GE(result.best, 0);
  EXPECT_GT(result.best_speedup(), 1.0);
  EXPECT_NE(result.best_config(), nullptr);
  // Every enumerated entry either succeeded or carries a reason.
  for (const auto& e : result.entries)
    EXPECT_TRUE(e.ok || !e.note.empty());
}

TEST(Autotuner, BestEntryHasMinimalTime) {
  auto bench = kernels::make_nn(128, 512);
  Autotuner tuner(make_runner());
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); });
  ASSERT_GE(result.best, 0);
  double best = result.entries[static_cast<std::size_t>(result.best)].seconds;
  for (const auto& e : result.entries)
    if (e.ok) EXPECT_GE(e.seconds, best);
}

TEST(Autotuner, ExplicitConfigListRestrictsSearch) {
  auto bench = kernels::make_tmv(128, 128);
  Autotuner tuner(make_runner());
  TuneOptions opts;
  NpConfig only;
  only.np_type = ir::NpType::kInterWarp;
  only.slave_size = 4;
  only.master_count = 32;
  opts.configs = {only};
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); },
                 opts);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_TRUE(result.entries[0].ok);
}

TEST(Autotuner, InvalidConfigRecordedNotThrown) {
  auto bench = kernels::make_tmv(128, 128);
  Autotuner tuner(make_runner());
  TuneOptions opts;
  NpConfig bad;
  bad.np_type = ir::NpType::kIntraWarp;
  bad.slave_size = 3;  // not a power of two
  bad.master_count = 32;
  opts.configs = {bad};
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); },
                 opts);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_FALSE(result.entries[0].ok);
  EXPECT_NE(result.entries[0].note.find("transform failed"),
            std::string::npos);
  EXPECT_EQ(result.best, -1);
  EXPECT_DOUBLE_EQ(result.best_speedup(), 1.0);  // falls back to baseline
}

TEST(Runner, VariantAllocatesExtraBuffers) {
  // LE with a forced-global local array needs one extra buffer per launch.
  auto bench = kernels::make_le(64);
  NpConfig cfg;
  cfg.np_type = ir::NpType::kInterWarp;
  cfg.slave_size = 4;
  cfg.master_count = 32;
  cfg.placement = transform::LocalPlacement::kGlobal;
  auto variant = NpCompiler::transform(bench->kernel(), cfg);
  ASSERT_EQ(variant.extra_buffers.size(), 1u);
  Runner runner = make_runner();
  auto w = bench->make_workload();
  std::size_t before = w.mem->buffer_count();
  auto run = runner.execute(ExecutionRequest::transformed(variant, w)).run;
  EXPECT_EQ(w.mem->buffer_count(), before + 1);
  EXPECT_GT(run.timing.seconds, 0.0);
  std::string msg;
  EXPECT_TRUE(w.validate(*w.mem, &msg)) << msg;
}

}  // namespace
}  // namespace cudanp::np
