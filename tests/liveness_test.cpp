#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "frontend/parser.hpp"

namespace cudanp::analysis {
namespace {

using namespace cudanp::ir;

struct Fixture {
  std::unique_ptr<Program> program;
  const Kernel* kernel = nullptr;
  const ForStmt* loop = nullptr;

  explicit Fixture(const std::string& src) {
    program = cudanp::frontend::parse_program_or_throw(src);
    kernel = program->kernels[0].get();
    for_each_stmt(*kernel->body, [&](const Stmt& s) {
      if (!loop && s.kind() == StmtKind::kFor &&
          static_cast<const ForStmt&>(s).pragma)
        loop = &static_cast<const ForStmt&>(s);
    });
    EXPECT_NE(loop, nullptr);
  }
};

TEST(CollectVars, UsesDefsDecls) {
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n) {"
      "  int x = n + 1;"
      "  a[x] = a[x] * 2.0f;"
      "}");
  VarSets vs = collect_vars(*p->kernels[0]->body);
  EXPECT_TRUE(vs.decls.count("x"));
  EXPECT_TRUE(vs.uses.count("n"));
  EXPECT_TRUE(vs.uses.count("a"));
  EXPECT_TRUE(vs.defs.count("a"));
  EXPECT_TRUE(vs.defs.count("x"));
  EXPECT_FALSE(vs.uses.count("threadIdx.x"));
}

TEST(CollectVars, CompoundAssignCountsAsUse) {
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(float* a) { float s = 0.0f; s += a[0]; }");
  VarSets vs = collect_vars(*p->kernels[0]->body->stmts[1]);
  EXPECT_TRUE(vs.uses.count("s"));
  EXPECT_TRUE(vs.defs.count("s"));
}

TEST(SymbolTable, IncludesParamsAndDecls) {
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n) {"
      "  __shared__ float t[8];"
      "  float grad[16];"
      "  float x = 0.0f;"
      "}");
  auto table = build_symbol_table(*p->kernels[0]);
  EXPECT_TRUE(table.at("a").is_pointer);
  EXPECT_EQ(table.at("t").space, AddrSpace::kShared);
  EXPECT_EQ(table.at("grad").space, AddrSpace::kLocal);
  EXPECT_TRUE(table.at("x").is_scalar());
  EXPECT_EQ(table.count("missing"), 0u);
}

TEST(ParallelLoopLiveness, ScalarLiveInDetected) {
  Fixture f(
      "__global__ void k(float* a, int n) {"
      "  int base = threadIdx.x * n;"
      "  float s = 0.0f;"
      "  #pragma np parallel for reduction(+:s)\n"
      "  for (int i = 0; i < n; i++) s += a[base + i];"
      "  a[base] = s;"
      "}");
  auto live = analyze_parallel_loop(*f.kernel, *f.loop,
                                    uses_from(*f.kernel->body, 3));
  EXPECT_TRUE(live.live_in.count("base"));
  EXPECT_TRUE(live.live_in.count("s"));  // compound update reads s
  EXPECT_TRUE(live.live_out.count("s"));
  EXPECT_TRUE(live.local_arrays.empty());
}

TEST(ParallelLoopLiveness, ParamsAndSharedExcluded) {
  Fixture f(
      "__global__ void k(float* a, int n) {"
      "  __shared__ float t[32];"
      "  #pragma np parallel for\n"
      "  for (int i = 0; i < n; i++) t[i % 32] = a[i] * n;"
      "}");
  auto live = analyze_parallel_loop(*f.kernel, *f.loop, {});
  EXPECT_FALSE(live.live_in.count("n"));  // param: uniform already
  EXPECT_FALSE(live.live_in.count("a"));
  EXPECT_FALSE(live.live_in.count("t"));
}

TEST(ParallelLoopLiveness, IteratorAndBodyLocalsExcluded) {
  Fixture f(
      "__global__ void k(float* a, int n) {"
      "  float s = 0.0f;"
      "  #pragma np parallel for reduction(+:s)\n"
      "  for (int i = 0; i < n; i++) { float tmp = a[i]; s += tmp; }"
      "  a[0] = s;"
      "}");
  auto live = analyze_parallel_loop(*f.kernel, *f.loop,
                                    uses_from(*f.kernel->body, 2));
  EXPECT_FALSE(live.live_in.count("i"));
  EXPECT_FALSE(live.live_in.count("tmp"));
}

TEST(ParallelLoopLiveness, LocalArrayDetected) {
  Fixture f(
      "__global__ void k(float* a) {"
      "  float grad[150];"
      "  #pragma np parallel for\n"
      "  for (int i = 0; i < 150; i++) grad[i] = a[i];"
      "  a[0] = grad[0];"
      "}");
  auto live = analyze_parallel_loop(*f.kernel, *f.loop, {});
  EXPECT_TRUE(live.local_arrays.count("grad"));
}

TEST(ParallelLoopLiveness, LiveOutOnlyWhenUsedAfter) {
  Fixture f(
      "__global__ void k(float* a, int n) {"
      "  float s = 0.0f;"
      "  #pragma np parallel for reduction(+:s)\n"
      "  for (int i = 0; i < n; i++) s += a[i];"
      "}");
  auto live_no_after = analyze_parallel_loop(*f.kernel, *f.loop, {});
  EXPECT_FALSE(live_no_after.live_out.count("s"));
  auto live_with = analyze_parallel_loop(*f.kernel, *f.loop, {"s"});
  EXPECT_TRUE(live_with.live_out.count("s"));
}

TEST(UsesFrom, SuffixOfBlock) {
  // uses_from collects *reads*: a store-only reference does not keep a
  // value live.
  auto p = cudanp::frontend::parse_program_or_throw(
      "__global__ void k(float* a, float* b, float x, float y) {"
      "  a[0] = x;"
      "  b[0] = y;"
      "}");
  auto all = uses_from(*p->kernels[0]->body, 0);
  EXPECT_TRUE(all.count("x"));
  EXPECT_TRUE(all.count("y"));
  auto tail = uses_from(*p->kernels[0]->body, 1);
  EXPECT_FALSE(tail.count("x"));
  EXPECT_TRUE(tail.count("y"));
  EXPECT_FALSE(tail.count("a"));  // `a` is only ever written
  EXPECT_TRUE(uses_from(*p->kernels[0]->body, 2).empty());
}

}  // namespace
}  // namespace cudanp::analysis
