#include <gtest/gtest.h>

#include "sim/device.hpp"

namespace cudanp::sim {
namespace {

TEST(DeviceSpec, Gtx680Preset) {
  auto s = DeviceSpec::gtx680();
  EXPECT_EQ(s.sm_version, 30);
  EXPECT_EQ(s.num_smx, 8);
  EXPECT_EQ(s.shared_mem_per_smx, 48 * 1024);
  EXPECT_FALSE(s.supports_dynamic_parallelism);
  EXPECT_GT(s.dram_bytes_per_cycle_per_smx(), 0.0);
}

TEST(DeviceSpec, K20cPreset) {
  auto s = DeviceSpec::k20c();
  EXPECT_EQ(s.sm_version, 35);
  EXPECT_TRUE(s.supports_dynamic_parallelism);
  EXPECT_EQ(s.num_smx, 13);
}

TEST(Occupancy, ThreadLimited) {
  auto spec = DeviceSpec::gtx680();
  ResourceUsage r{.registers_per_thread = 16, .shared_mem_per_block = 0,
                  .local_mem_per_thread = 0};
  Occupancy o = compute_occupancy(spec, 256, r);
  // 2048 threads / 256 = 8 blocks.
  EXPECT_EQ(o.blocks_per_smx, 8);
  EXPECT_EQ(o.active_warps, 64);
  EXPECT_EQ(o.limiting_factor, "threads");
  EXPECT_DOUBLE_EQ(o.occupancy_fraction(spec), 1.0);
}

TEST(Occupancy, BlockLimited) {
  auto spec = DeviceSpec::gtx680();
  ResourceUsage r{.registers_per_thread = 16, .shared_mem_per_block = 0,
                  .local_mem_per_thread = 0};
  // Tiny 32-thread blocks: capped at 16 blocks/SMX = 512 threads.
  Occupancy o = compute_occupancy(spec, 32, r);
  EXPECT_EQ(o.blocks_per_smx, 16);
  EXPECT_EQ(o.active_warps, 16);
  EXPECT_EQ(o.limiting_factor, "blocks");
}

TEST(Occupancy, SharedMemoryLimited) {
  auto spec = DeviceSpec::gtx680();
  // 12 KB/block -> 4 blocks fit in 48 KB (the paper's lud_perimeter
  // discussion: 3 KB blocks -> 16 concurrent).
  ResourceUsage r{.registers_per_thread = 16,
                  .shared_mem_per_block = 12 * 1024,
                  .local_mem_per_thread = 0};
  Occupancy o = compute_occupancy(spec, 64, r);
  EXPECT_EQ(o.blocks_per_smx, 4);
  EXPECT_EQ(o.limiting_factor, "smem");
}

TEST(Occupancy, PaperLudExample) {
  // Paper Sec. 3: 32-thread TBs with 3 KB shared memory -> 16 TBs per SMX.
  auto spec = DeviceSpec::gtx680();
  ResourceUsage r{.registers_per_thread = 20,
                  .shared_mem_per_block = 3 * 1024,
                  .local_mem_per_thread = 0};
  Occupancy o = compute_occupancy(spec, 32, r);
  EXPECT_EQ(o.blocks_per_smx, 16);
}

TEST(Occupancy, RegisterLimited) {
  auto spec = DeviceSpec::gtx680();
  // 63 regs * 1024 threads = 64512 regs/block -> 1 block (65536 available).
  ResourceUsage r{.registers_per_thread = 63, .shared_mem_per_block = 0,
                  .local_mem_per_thread = 0};
  Occupancy o = compute_occupancy(spec, 1024, r);
  EXPECT_EQ(o.blocks_per_smx, 1);
  EXPECT_EQ(o.limiting_factor, "registers");
}

TEST(Occupancy, CannotLaunchWhenSmemExceedsSmx) {
  auto spec = DeviceSpec::gtx680();
  ResourceUsage r{.registers_per_thread = 16,
                  .shared_mem_per_block = 49 * 1024,
                  .local_mem_per_thread = 0};
  EXPECT_EQ(compute_occupancy(spec, 64, r).blocks_per_smx, 0);
}

TEST(Occupancy, InvalidBlockSize) {
  auto spec = DeviceSpec::gtx680();
  ResourceUsage r{};
  EXPECT_EQ(compute_occupancy(spec, 0, r).blocks_per_smx, 0);
  EXPECT_EQ(compute_occupancy(spec, 2048, r).blocks_per_smx, 0);
}

TEST(Occupancy, RegisterClampAppliesArchLimit) {
  auto spec = DeviceSpec::gtx680();
  ResourceUsage hi{.registers_per_thread = 500, .shared_mem_per_block = 0,
                   .local_mem_per_thread = 0};
  ResourceUsage at{.registers_per_thread = 63, .shared_mem_per_block = 0,
                   .local_mem_per_thread = 0};
  EXPECT_EQ(compute_occupancy(spec, 256, hi).blocks_per_smx,
            compute_occupancy(spec, 256, at).blocks_per_smx);
}

// Property: occupancy never increases when any resource demand grows.
class OccupancyMonotonic
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OccupancyMonotonic, MoreResourcesNeverMoreBlocks) {
  auto spec = DeviceSpec::gtx680();
  auto [threads, regs] = GetParam();
  for (std::int64_t smem : {0, 1024, 4096, 16384, 32768}) {
    ResourceUsage lo{.registers_per_thread = regs,
                     .shared_mem_per_block = smem,
                     .local_mem_per_thread = 0};
    ResourceUsage hi = lo;
    hi.registers_per_thread += 8;
    hi.shared_mem_per_block += 1024;
    EXPECT_GE(compute_occupancy(spec, threads, lo).blocks_per_smx,
              compute_occupancy(spec, threads, hi).blocks_per_smx)
        << "threads=" << threads << " regs=" << regs << " smem=" << smem;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OccupancyMonotonic,
    ::testing::Combine(::testing::Values(32, 64, 128, 256, 512, 1024),
                       ::testing::Values(8, 16, 32, 48)));

}  // namespace
}  // namespace cudanp::sim
