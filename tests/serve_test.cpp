// Resilient batch serving: admission control, deadline mapping, retry
// with deterministic backoff, per-variant circuit breakers, drain, and
// the exactly-one-terminal-state contract. The batch report must be
// bit-identical at every job count (the determinism contract extended
// to the serving layer).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "serve/breaker.hpp"
#include "serve/clock.hpp"
#include "serve/manifest.hpp"
#include "serve/retry.hpp"
#include "serve/service.hpp"
#include "sim/device.hpp"

namespace cudanp {
namespace {

// Paper Fig. 1 kernel: compiles cleanly and has candidates to choose.
const char* kTmv = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

// Unannotated spin kernel: hangs until the watchdog (and therefore the
// deadline mapping) trips it.
const char* kSpin = R"(
__global__ void spin(int* a, int n) {
  int i = 0;
  while (n > 0) { i = i + 1; }
  a[0] = i;
}
)";

serve::JobSpec tmv_job(const std::string& name) {
  serve::JobSpec j;
  j.name = name;
  j.source = kTmv;
  j.elems = 16;
  j.tb = 8;
  return j;
}

serve::JobSpec faulty_job(const std::string& name, int transient_attempts) {
  serve::JobSpec j = tmv_job(name);
  j.inject = true;
  j.fault.sim_error_at_step = 5;
  j.transient_attempts = transient_attempts;
  return j;
}

serve::JobSpec spin_job(const std::string& name, std::int64_t deadline_ms) {
  serve::JobSpec j;
  j.name = name;
  j.source = kSpin;
  j.elems = 8;
  j.tb = 8;
  j.deadline_ms = deadline_ms;
  return j;
}

serve::ServiceReport run_batch(const std::vector<serve::JobSpec>& jobs,
                               serve::ServiceOptions opt) {
  serve::BatchService service(sim::DeviceSpec::gtx680(), opt);
  return service.run(jobs);
}

// Every submitted job must land in exactly one terminal state, and the
// per-state counters must account for every job.
void expect_complete(const serve::ServiceReport& r) {
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.submitted,
            r.succeeded + r.succeeded_after_retry + r.degraded + r.shed +
                r.rejected_admission + r.drained + r.rejected_execution);
}

// ---------------------------------------------------------------------
// Virtual clock.

TEST(VirtualClock, AdvancesMonotonically) {
  serve::VirtualClock c;
  EXPECT_EQ(c.now_ms(), 0);
  c.advance_ms(50);
  c.advance_ms(0);
  c.advance_ms(-10);  // non-positive deltas are ignored
  EXPECT_EQ(c.now_ms(), 50);
}

// ---------------------------------------------------------------------
// Retry policy: exponential, capped, deterministically jittered.

TEST(RetryPolicy, BackoffIsDeterministic) {
  serve::RetryPolicy p;
  for (int attempt = 1; attempt <= 5; ++attempt)
    EXPECT_EQ(p.backoff_ms(7, attempt), p.backoff_ms(7, attempt));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  serve::RetryPolicy p;
  p.jitter_ms = 0;
  p.base_backoff_ms = 20;
  p.max_backoff_ms = 100;
  EXPECT_EQ(p.backoff_ms(0, 1), 20);
  EXPECT_EQ(p.backoff_ms(0, 2), 40);
  EXPECT_EQ(p.backoff_ms(0, 3), 80);
  EXPECT_EQ(p.backoff_ms(0, 4), 100);  // capped
  EXPECT_EQ(p.backoff_ms(0, 10), 100);
}

TEST(RetryPolicy, JitterStaysInRangeAndDecorrelatesJobs) {
  serve::RetryPolicy p;
  p.jitter_ms = 10;
  bool differ = false;
  for (std::uint64_t job = 0; job < 64; ++job) {
    std::int64_t b = p.backoff_ms(job, 1);
    EXPECT_GE(b, p.base_backoff_ms);
    EXPECT_LT(b, p.base_backoff_ms + p.jitter_ms);
    if (b != p.backoff_ms(0, 1)) differ = true;
  }
  // Different jobs back off out of phase (no thundering herd).
  EXPECT_TRUE(differ);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine.

TEST(CircuitBreaker, OpensAtThresholdAndShortCircuits) {
  serve::BreakerPolicy pol;
  pol.failure_threshold = 3;
  pol.cooldown_ms = 100;
  serve::CircuitBreaker br(pol);
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);
  ASSERT_TRUE(br.allow(0));
  br.on_failure(0);
  ASSERT_TRUE(br.allow(1));
  br.on_failure(1);
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);
  ASSERT_TRUE(br.allow(2));
  br.on_failure(2);  // third consecutive failure
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(br.opens(), 1);
  EXPECT_FALSE(br.allow(50));  // cooldown not expired
  EXPECT_EQ(br.short_circuits(), 1);
}

TEST(CircuitBreaker, SuccessResetsFailureRun) {
  serve::BreakerPolicy pol;
  pol.failure_threshold = 3;
  serve::CircuitBreaker br(pol);
  br.on_failure(0);
  br.on_failure(1);
  br.on_success();
  EXPECT_EQ(br.consecutive_failures(), 0);
  br.on_failure(2);
  br.on_failure(3);
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);  // run restarted
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  serve::BreakerPolicy pol;
  pol.failure_threshold = 1;
  pol.cooldown_ms = 100;
  serve::CircuitBreaker br(pol);
  br.on_failure(0);
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_FALSE(br.allow(99));
  EXPECT_TRUE(br.allow(100));  // cooldown expired -> half-open probe
  EXPECT_EQ(br.state(), serve::BreakerState::kHalfOpen);
  EXPECT_EQ(br.probes(), 1);
  br.on_success();
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopens) {
  serve::BreakerPolicy pol;
  pol.failure_threshold = 2;
  pol.cooldown_ms = 100;
  serve::CircuitBreaker br(pol);
  br.on_failure(0);
  br.on_failure(1);
  ASSERT_TRUE(br.allow(101));  // probe
  br.on_failure(101);          // probe fails -> straight back to open
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(br.opens(), 2);
  EXPECT_FALSE(br.allow(150));
  EXPECT_GE(br.open_until_ms(), 201);
}

// ---------------------------------------------------------------------
// Admission control.

TEST(BatchService, ShedsBeyondQueueCapacity) {
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(tmv_job("j" + std::to_string(i)));
  serve::ServiceOptions opt;
  opt.queue_capacity = 4;
  opt.jobs = 2;
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  EXPECT_EQ(r.accepted, 4u);
  EXPECT_EQ(r.shed, 2u);
  EXPECT_EQ(r.jobs[4].state, serve::JobState::kRejected);
  EXPECT_EQ(r.jobs[4].cause, "queue-full");
  EXPECT_EQ(r.jobs[5].cause, "queue-full");
  EXPECT_FALSE(r.all_succeeded());
}

TEST(BatchService, RejectsInfeasibleDeadlineAndEmptySource) {
  serve::JobSpec infeasible = tmv_job("too-tight");
  infeasible.deadline_ms = 2;
  serve::JobSpec empty;
  empty.name = "empty";
  serve::ServiceOptions opt;
  opt.jobs = 1;
  opt.min_feasible_ms = 5;
  auto r = run_batch({infeasible, empty, tmv_job("fine")}, opt);
  expect_complete(r);
  EXPECT_EQ(r.rejected_admission, 2u);
  EXPECT_EQ(r.jobs[0].cause, "deadline-infeasible");
  EXPECT_EQ(r.jobs[1].cause, "empty-source");
  EXPECT_EQ(r.jobs[2].state, serve::JobState::kSucceeded);
}

// ---------------------------------------------------------------------
// Execution outcomes.

TEST(BatchService, HealthyBatchAllSucceed) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), tmv_job("b"),
                                      tmv_job("c")};
  serve::ServiceOptions opt;
  opt.jobs = 2;
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  EXPECT_EQ(r.succeeded, 3u);
  EXPECT_TRUE(r.all_succeeded());
  for (const auto& j : r.jobs) {
    EXPECT_TRUE(j.terminal_ok());
    EXPECT_EQ(j.attempts, 1);
    EXPECT_NE(j.chosen_config, "");
    EXPECT_NE(j.chosen_config, "baseline");
  }
  EXPECT_NE(r.str().find("SERVED"), std::string::npos);
}

TEST(BatchService, TransientFaultSucceedsAfterRetry) {
  // The fault injects only on attempt 1; the retry loop outlives it.
  auto r = run_batch({faulty_job("flaky", /*transient_attempts=*/1)},
                     serve::ServiceOptions{});
  expect_complete(r);
  ASSERT_EQ(r.succeeded_after_retry, 1u);
  EXPECT_EQ(r.jobs[0].state, serve::JobState::kSucceededAfterRetry);
  EXPECT_EQ(r.jobs[0].attempts, 2);
  EXPECT_EQ(r.retries, 1u);
  // Virtual time: two attempt costs plus one backoff were charged.
  serve::ServiceOptions defaults;
  EXPECT_GE(r.jobs[0].virtual_ms,
            2 * defaults.attempt_cost_ms + defaults.retry.base_backoff_ms);
  EXPECT_TRUE(r.all_succeeded());
}

TEST(BatchService, PersistentFaultDegradesToBaseline) {
  auto r = run_batch({faulty_job("broken", /*transient_attempts=*/0)},
                     serve::ServiceOptions{});
  expect_complete(r);
  ASSERT_EQ(r.degraded, 1u);
  const auto& j = r.jobs[0];
  EXPECT_EQ(j.state, serve::JobState::kDegraded);
  EXPECT_EQ(j.chosen_config, "baseline");
  EXPECT_EQ(j.cause, "run-error");  // transient-class, so it was retried
  EXPECT_EQ(j.attempts, 3);         // the full retry budget
  EXPECT_FALSE(j.quarantined.empty());
}

TEST(BatchService, HangingKernelTripsAtItsDeadline) {
  serve::ServiceOptions opt;
  opt.jobs = 1;
  auto r = run_batch({spin_job("hang", /*deadline_ms=*/20)}, opt);
  expect_complete(r);
  ASSERT_EQ(r.degraded, 1u);
  const auto& j = r.jobs[0];
  EXPECT_EQ(j.cause, "deadline-exceeded");
  EXPECT_TRUE(j.deadline_exceeded);
  // A deadline-bound watchdog trip consumes the whole remaining budget.
  EXPECT_EQ(j.virtual_ms, 20);
  EXPECT_EQ(r.deadline_exceeded, 1u);
}

TEST(BatchService, CompileErrorIsRejectedNotThrown) {
  serve::JobSpec bad;
  bad.name = "bad";
  bad.source = "__global__ void broken(int* a) { a[0] = ; }";
  auto r = run_batch({bad, tmv_job("good")}, serve::ServiceOptions{});
  expect_complete(r);
  EXPECT_EQ(r.rejected_execution, 1u);
  EXPECT_EQ(r.jobs[0].state, serve::JobState::kRejected);
  EXPECT_EQ(r.jobs[0].cause, "compile-error");
  EXPECT_FALSE(r.jobs[0].detail.empty());
  EXPECT_EQ(r.jobs[1].state, serve::JobState::kSucceeded);
}

// ---------------------------------------------------------------------
// Circuit breaker integration: the repeat offender gets routed to the
// baseline, and probes re-admit it after cooldown.

TEST(BatchService, BreakerOpensForRepeatOffenderAndRoutesToBaseline) {
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(faulty_job("b" + std::to_string(i), 0));
  serve::ServiceOptions opt;
  opt.jobs = 2;
  opt.breaker.failure_threshold = 3;
  opt.breaker.cooldown_ms = 100000;  // no probe within this batch
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  EXPECT_EQ(r.degraded, 4u);
  EXPECT_EQ(r.breaker_opens, 1u);
  EXPECT_EQ(r.breaker_short_circuits, 1u);
  // Jobs 0-2 burn their retry budget; job 3 is routed without running
  // the doomed variant again.
  EXPECT_EQ(r.jobs[3].cause, "breaker-open");
  EXPECT_TRUE(r.jobs[3].breaker_routed);
  EXPECT_EQ(r.jobs[3].chosen_config, "baseline");
  ASSERT_EQ(r.breakers.size(), 1u);
  EXPECT_EQ(r.breakers[0].state, serve::BreakerState::kOpen);
}

TEST(BatchService, BreakerHalfOpenProbesAfterCooldown) {
  // Three failures open the breaker; by the time the next job of the
  // same key commits, enough virtual time has passed (each failed job
  // charges attempts + backoffs) that it becomes the half-open probe.
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 5; ++i)
    jobs.push_back(faulty_job("b" + std::to_string(i), 0));
  serve::ServiceOptions opt;
  opt.jobs = 1;
  opt.breaker.failure_threshold = 3;
  opt.breaker.cooldown_ms = 50;
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  EXPECT_GE(r.breaker_probes, 1u);
  EXPECT_GE(r.breaker_opens, 2u);  // probe failed and re-opened
}

TEST(BatchService, BreakersArePerKernel) {
  // A sick kernel must not open the breaker for a healthy one.
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(faulty_job("sick", 0));
  jobs.push_back(tmv_job("healthy"));
  jobs.back().kernel = "tmv";
  serve::ServiceOptions opt;
  opt.jobs = 2;
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  // The healthy job shares the kernel name but not the failing history:
  // injected-fault jobs key on tmv|baseline (their baseline is the
  // first quarantine), the healthy one on tmv|<first candidate>.
  EXPECT_EQ(r.jobs[3].state, serve::JobState::kSucceeded);
  std::set<std::string> keys;
  for (const auto& b : r.breakers) keys.insert(b.key);
  EXPECT_EQ(keys.size(), 2u);
}

// ---------------------------------------------------------------------
// Drain.

TEST(BatchService, DrainRejectsQueuedJobsWithDistinctCause) {
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(tmv_job("j" + std::to_string(i)));
  serve::ServiceOptions opt;
  opt.jobs = 1;
  opt.drain_before_job = 2;  // deterministic drain point
  auto r = run_batch(jobs, opt);
  expect_complete(r);
  EXPECT_EQ(r.succeeded, 2u);
  EXPECT_EQ(r.drained, 3u);
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(r.jobs[i].state, serve::JobState::kRejected);
    EXPECT_EQ(r.jobs[i].cause, "drained");
  }
  EXPECT_FALSE(r.all_succeeded());
}

// ---------------------------------------------------------------------
// The acceptance criterion: a 50-job mixed batch completes with no job
// lost, and the full report is bit-identical at --jobs=1 and --jobs=8.

std::vector<serve::JobSpec> mixed_batch() {
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 50; ++i) {
    switch (i % 7) {
      case 0:
      case 1:
      case 2:
        jobs.push_back(tmv_job("healthy" + std::to_string(i)));
        break;
      case 3:
        jobs.push_back(faulty_job("flaky" + std::to_string(i), 1));
        break;
      case 4:
        jobs.push_back(faulty_job("broken" + std::to_string(i), 0));
        break;
      case 5:
        jobs.push_back(spin_job("hang" + std::to_string(i), 15));
        break;
      default: {
        serve::JobSpec bad;
        bad.name = "bad" + std::to_string(i);
        bad.source = "__global__ void oops(int* a) { a[0] = ; }";
        jobs.push_back(bad);
        break;
      }
    }
  }
  jobs[49].deadline_ms = -1;  // falls back to the service default
  return jobs;
}

TEST(BatchService, MixedBatchNoJobLostAndBitIdenticalAcrossJobCounts) {
  serve::ServiceOptions opt;
  opt.queue_capacity = 45;  // force some shedding too
  opt.breaker.cooldown_ms = 150;
  opt.jobs = 1;
  auto serial = run_batch(mixed_batch(), opt);
  opt.jobs = 8;
  auto parallel = run_batch(mixed_batch(), opt);

  expect_complete(serial);
  expect_complete(parallel);
  EXPECT_GT(serial.succeeded, 0u);
  EXPECT_GT(serial.succeeded_after_retry, 0u);
  EXPECT_GT(serial.degraded, 0u);
  EXPECT_GT(serial.rejected_execution, 0u);
  EXPECT_EQ(serial.shed, 5u);
  // The whole report — every terminal state, cause, attempt count,
  // virtual timestamp and breaker transition — is scheduling-invariant.
  EXPECT_EQ(serial.json(), parallel.json());
  EXPECT_EQ(serial.str(), parallel.str());
}

// ---------------------------------------------------------------------
// Manifest parsing.

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/cudanp_serve_test_" + std::to_string(::getpid());
    std::string cmd = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ofstream(dir_ + "/k.cu") << kTmv;
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)std::system(cmd.c_str());
  }
  std::string dir_;
};

TEST_F(ManifestTest, ParsesFieldsAndDefaults) {
  serve::ManifestDefaults d;
  d.elems = 48;
  d.deadline_ms = 99;
  std::string error;
  auto jobs = serve::parse_manifest(
      "# comment\n"
      "\n"
      "file=k.cu kernel=tmv elems=64 tb=16 deadline-ms=500 attempts=2\n"
      "file=k.cu fault-step=5 transient-attempts=1 name=flaky\n"
      "file=k.cu drop-barrier\n",
      dir_, d, &error);
  ASSERT_EQ(jobs.size(), 3u) << error;
  EXPECT_EQ(jobs[0].kernel, "tmv");
  EXPECT_EQ(jobs[0].elems, 64);
  EXPECT_EQ(jobs[0].tb, 16);
  EXPECT_EQ(jobs[0].deadline_ms, 500);
  EXPECT_EQ(jobs[0].max_attempts, 2);
  EXPECT_EQ(jobs[0].name, "k.cu:3");  // default: basename + line number
  EXPECT_FALSE(jobs[0].inject);
  EXPECT_NE(jobs[0].source.find("__global__"), std::string::npos);
  EXPECT_EQ(jobs[1].name, "flaky");
  EXPECT_TRUE(jobs[1].inject);
  EXPECT_EQ(jobs[1].fault.sim_error_at_step, 5);
  EXPECT_EQ(jobs[1].transient_attempts, 1);
  EXPECT_EQ(jobs[1].elems, 48);        // defaults applied
  EXPECT_EQ(jobs[1].deadline_ms, 99);  // defaults applied
  EXPECT_TRUE(jobs[2].fault.drop_barrier);
}

TEST_F(ManifestTest, RejectsBadNumericsWithLineNumbers) {
  serve::ManifestDefaults d;
  std::string error;
  auto jobs =
      serve::parse_manifest("file=k.cu elems=64x\n", dir_, d, &error);
  EXPECT_TRUE(jobs.empty());
  EXPECT_EQ(error, "line 1: bad elems=64x");
  jobs = serve::parse_manifest("file=k.cu\nfile=k.cu tb=0\n", dir_, d,
                               &error);
  EXPECT_TRUE(jobs.empty());
  EXPECT_EQ(error, "line 2: bad tb=0");
}

TEST_F(ManifestTest, RejectsUnknownFieldsMissingFileAndUnreadableFile) {
  serve::ManifestDefaults d;
  std::string error;
  EXPECT_TRUE(
      serve::parse_manifest("file=k.cu bogus=1\n", dir_, d, &error).empty());
  EXPECT_EQ(error, "line 1: unknown field 'bogus=1'");
  EXPECT_TRUE(serve::parse_manifest("elems=64\n", dir_, d, &error).empty());
  EXPECT_EQ(error, "line 1: missing file=");
  EXPECT_TRUE(
      serve::parse_manifest("file=nope.cu\n", dir_, d, &error).empty());
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

TEST_F(ManifestTest, LoadManifestResolvesRelativeToItsOwnDirectory) {
  std::ofstream(dir_ + "/m.txt") << "file=k.cu name=one\n";
  serve::ManifestDefaults d;
  std::string error;
  auto jobs = serve::load_manifest(dir_ + "/m.txt", d, &error);
  ASSERT_EQ(jobs.size(), 1u) << error;
  EXPECT_EQ(jobs[0].name, "one");
  EXPECT_TRUE(
      serve::load_manifest(dir_ + "/absent.txt", d, &error).empty());
  EXPECT_NE(error.find("cannot read manifest"), std::string::npos);
}

}  // namespace
}  // namespace cudanp
