// Differential fuzzing of the kernel interpreter: seeded random
// straight-line programs are executed both by the SIMT interpreter (one
// thread) and by a direct reference evaluator over the same AST. Any
// divergence is an interpreter (or reference) bug.
//
// The generator covers: int/float scalars, the full binary operator set
// with C semantics (integer division truncation, shifts, comparisons),
// unary ops, casts, ternaries, min/max/fabs/sqrt-style calls, and
// compound assignments. Programs are generated so that division and
// modulo never see zero and shifts stay in range.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "support/rng.hpp"

namespace cudanp {
namespace {

using namespace cudanp::ir;

/// Reference scalar value mirroring sim::Value semantics.
struct RefValue {
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0;

  static RefValue of_int(std::int64_t v) { return {false, v, 0}; }
  static RefValue of_float(double v) {
    return {true, 0, static_cast<double>(static_cast<float>(v))};
  }
  double as_f() const { return is_float ? f : static_cast<double>(i); }
  std::int64_t as_i() const {
    return is_float ? static_cast<std::int64_t>(f) : i;
  }
  bool truthy() const { return is_float ? f != 0 : i != 0; }
};

/// Direct AST evaluator (the "oracle").
class RefEval {
 public:
  std::vector<std::pair<std::string, RefValue>> vars;

  RefValue* find(const std::string& name) {
    for (auto& [n, v] : vars)
      if (n == name) return &v;
    return nullptr;
  }

  RefValue eval(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return RefValue::of_int(static_cast<const IntLit&>(e).value);
      case ExprKind::kFloatLit:
        return RefValue::of_float(static_cast<const FloatLit&>(e).value);
      case ExprKind::kVarRef: {
        auto* v = find(static_cast<const VarRef&>(e).name);
        EXPECT_NE(v, nullptr);
        return v ? *v : RefValue{};
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        RefValue l = eval(*b.lhs);
        RefValue r = eval(*b.rhs);
        bool fl = l.is_float || r.is_float;
        switch (b.op) {
          case BinOp::kAdd:
            return fl ? RefValue::of_float(l.as_f() + r.as_f())
                      : RefValue::of_int(l.i + r.i);
          case BinOp::kSub:
            return fl ? RefValue::of_float(l.as_f() - r.as_f())
                      : RefValue::of_int(l.i - r.i);
          case BinOp::kMul:
            return fl ? RefValue::of_float(l.as_f() * r.as_f())
                      : RefValue::of_int(l.i * r.i);
          case BinOp::kDiv:
            return fl ? RefValue::of_float(l.as_f() / r.as_f())
                      : RefValue::of_int(l.i / r.i);
          case BinOp::kMod: return RefValue::of_int(l.i % r.i);
          case BinOp::kLt:
            return RefValue::of_int(fl ? l.as_f() < r.as_f() : l.i < r.i);
          case BinOp::kLe:
            return RefValue::of_int(fl ? l.as_f() <= r.as_f() : l.i <= r.i);
          case BinOp::kGt:
            return RefValue::of_int(fl ? l.as_f() > r.as_f() : l.i > r.i);
          case BinOp::kGe:
            return RefValue::of_int(fl ? l.as_f() >= r.as_f() : l.i >= r.i);
          case BinOp::kEq:
            return RefValue::of_int(fl ? l.as_f() == r.as_f() : l.i == r.i);
          case BinOp::kNe:
            return RefValue::of_int(fl ? l.as_f() != r.as_f() : l.i != r.i);
          case BinOp::kLAnd: return RefValue::of_int(l.truthy() && r.truthy());
          case BinOp::kLOr: return RefValue::of_int(l.truthy() || r.truthy());
          case BinOp::kBitAnd: return RefValue::of_int(l.as_i() & r.as_i());
          case BinOp::kBitOr: return RefValue::of_int(l.as_i() | r.as_i());
          case BinOp::kBitXor: return RefValue::of_int(l.as_i() ^ r.as_i());
          case BinOp::kShl: return RefValue::of_int(l.as_i() << r.as_i());
          case BinOp::kShr: return RefValue::of_int(l.as_i() >> r.as_i());
        }
        return {};
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        RefValue v = eval(*u.operand);
        if (u.op == UnOp::kNeg)
          return v.is_float ? RefValue::of_float(-v.f) : RefValue::of_int(-v.i);
        return RefValue::of_int(v.truthy() ? 0 : 1);
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        return eval(*t.cond).truthy() ? eval(*t.then_value)
                                      : eval(*t.else_value);
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        RefValue v = eval(*c.operand);
        return c.to == ScalarType::kFloat ? RefValue::of_float(v.as_f())
                                          : RefValue::of_int(v.as_i());
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        if (c.callee == "fminf")
          return RefValue::of_float(
              std::min(eval(*c.args[0]).as_f(), eval(*c.args[1]).as_f()));
        if (c.callee == "fmaxf")
          return RefValue::of_float(
              std::max(eval(*c.args[0]).as_f(), eval(*c.args[1]).as_f()));
        if (c.callee == "fabsf")
          return RefValue::of_float(std::fabs(eval(*c.args[0]).as_f()));
        if (c.callee == "sqrtf")
          return RefValue::of_float(std::sqrt(eval(*c.args[0]).as_f()));
        ADD_FAILURE() << "unexpected call " << c.callee;
        return {};
      }
      default:
        ADD_FAILURE() << "unexpected expr kind";
        return {};
    }
  }
};

/// Random program generator.
class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}

  /// Generates a straight-line program over `nvars` variables, returning
  /// statements plus the variable declarations.
  BlockPtr generate(int nvars, int nstmts) {
    auto body = make_block();
    // Declare variables with literal initializers.
    for (int v = 0; v < nvars; ++v) {
      bool is_float = rng_.next_below(2) == 0;
      std::string name = var_name(v);
      types_.push_back(is_float ? ScalarType::kFloat : ScalarType::kInt);
      ExprPtr init = is_float
                         ? make_float(rng_.next_float(-8.0f, 8.0f))
                         : make_int(static_cast<std::int64_t>(
                               rng_.next_below(17)) - 8);
      body->push(std::make_unique<DeclStmt>(Type::scalar_of(types_.back()),
                                            name, std::move(init)));
    }
    for (int s = 0; s < nstmts; ++s) {
      int target = static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(nvars)));
      ExprPtr rhs = expr(3);
      // Keep values bounded so no intermediate overflows int64 or floats
      // reach infinity (identical clamping on both evaluators): int
      // variables stay in (-97, 97), float variables in [-100, 100].
      if (types_[static_cast<std::size_t>(target)] == ScalarType::kInt) {
        rhs = make_bin(BinOp::kMod,
                       std::make_unique<CastExpr>(ScalarType::kInt,
                                                  std::move(rhs)),
                       make_int(97));
      } else {
        std::vector<ExprPtr> lo;
        lo.push_back(std::move(rhs));
        lo.push_back(make_float(-100.0));
        ExprPtr clamped_lo = make_call("fmaxf", std::move(lo));
        std::vector<ExprPtr> hi;
        hi.push_back(std::move(clamped_lo));
        hi.push_back(make_float(100.0));
        rhs = make_call("fminf", std::move(hi));
      }
      body->push(std::make_unique<AssignStmt>(
          make_var(var_name(target)), AssignOp::kAssign, std::move(rhs)));
    }
    return body;
  }

  [[nodiscard]] static std::string var_name(int v) {
    return "v" + std::to_string(v);
  }
  [[nodiscard]] const std::vector<ScalarType>& types() const { return types_; }

 private:
  ExprPtr expr(int depth) {
    if (depth == 0 || rng_.next_below(4) == 0) return leaf();
    switch (rng_.next_below(5)) {
      case 0:
      case 1: {  // binary, safe subset
        static const BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                     BinOp::kLt,  BinOp::kGe,  BinOp::kEq,
                                     BinOp::kLAnd, BinOp::kLOr};
        BinOp op = kOps[rng_.next_below(8)];
        return make_bin(op, expr(depth - 1), expr(depth - 1));
      }
      case 2: {  // division/modulo/shift with safe right operands
        switch (rng_.next_below(3)) {
          case 0:
            return make_bin(BinOp::kDiv, expr(depth - 1),
                            make_int(1 + static_cast<std::int64_t>(
                                             rng_.next_below(7))));
          case 1:
            return make_bin(BinOp::kMod, int_expr(depth - 1),
                            make_int(1 + static_cast<std::int64_t>(
                                             rng_.next_below(7))));
          default:
            return make_bin(rng_.next_below(2) ? BinOp::kShl : BinOp::kShr,
                            int_expr(depth - 1),
                            make_int(static_cast<std::int64_t>(
                                rng_.next_below(5))));
        }
      }
      case 3: {  // unary / cast / ternary
        switch (rng_.next_below(3)) {
          case 0:
            return std::make_unique<UnaryExpr>(
                rng_.next_below(2) ? UnOp::kNeg : UnOp::kLNot,
                expr(depth - 1));
          case 1:
            return std::make_unique<CastExpr>(
                rng_.next_below(2) ? ScalarType::kInt : ScalarType::kFloat,
                expr(depth - 1));
          default:
            return std::make_unique<TernaryExpr>(
                expr(depth - 1), expr(depth - 1), expr(depth - 1));
        }
      }
      default: {  // calls
        std::vector<ExprPtr> args;
        if (rng_.next_below(2)) {
          args.push_back(expr(depth - 1));
          args.push_back(expr(depth - 1));
          return make_call(rng_.next_below(2) ? "fminf" : "fmaxf",
                           std::move(args));
        }
        args.push_back(expr(depth - 1));
        return make_call("fabsf", std::move(args));
      }
    }
  }

  /// An expression guaranteed to be integer-typed (for %, <<, >>).
  ExprPtr int_expr(int depth) {
    return std::make_unique<CastExpr>(ScalarType::kInt, expr(depth));
  }

  ExprPtr leaf() {
    switch (rng_.next_below(3)) {
      case 0:
        return make_int(static_cast<std::int64_t>(rng_.next_below(21)) - 10);
      case 1:
        return make_float(rng_.next_float(-4.0f, 4.0f));
      default:
        if (types_.empty()) return make_int(1);
        return make_var(var_name(static_cast<int>(
            rng_.next_below(types_.size()))));
    }
  }

  SplitMix64 rng_;
  std::vector<ScalarType> types_;
};

class InterpreterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(InterpreterFuzz, MatchesReferenceEvaluator) {
  const int nvars = 6;
  const int nstmts = 24;
  Generator gen(0xf022u + static_cast<std::uint64_t>(GetParam()) * 7919);
  BlockPtr body = gen.generate(nvars, nstmts);

  // Reference execution over the same AST.
  RefEval ref;
  for (const auto& s : body->stmts) {
    if (s->kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(*s);
      RefValue v = ref.eval(*d.init);
      ref.vars.emplace_back(d.name, d.type.scalar == ScalarType::kFloat
                                        ? RefValue::of_float(v.as_f())
                                        : RefValue::of_int(v.as_i()));
    } else {
      const auto& a = static_cast<const AssignStmt&>(*s);
      const auto& name = static_cast<const VarRef&>(*a.lhs).name;
      RefValue v = ref.eval(*a.rhs);
      RefValue* slot = ref.find(name);
      ASSERT_NE(slot, nullptr);
      *slot = slot->is_float ? RefValue::of_float(v.as_f())
                             : RefValue::of_int(v.as_i());
    }
  }

  // Interpreter execution: wrap in a kernel that stores every variable.
  auto kernel = std::make_unique<Kernel>();
  kernel->name = "fuzz";
  kernel->params.push_back({Type::pointer_to(ScalarType::kFloat), "out"});
  kernel->body = std::move(body);
  for (int v = 0; v < nvars; ++v) {
    kernel->body->push(make_assign(
        make_index1("out", make_int(v)),
        std::make_unique<CastExpr>(ScalarType::kFloat,
                                   make_var(Generator::var_name(v)))));
  }

  sim::DeviceMemory mem;
  auto out = mem.alloc(ScalarType::kFloat, nvars);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  cfg.args = {out};
  sim::Interpreter interp(sim::DeviceSpec::gtx680(), mem);
  (void)interp.run(*kernel, cfg);

  for (int v = 0; v < nvars; ++v) {
    float got = mem.buffer(out).f32()[static_cast<std::size_t>(v)];
    float want = static_cast<float>(ref.vars[static_cast<std::size_t>(v)]
                                        .second.as_f());
    // Identical operation order: results must agree to float rounding of
    // the final cast.
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got)) << "var " << v;
    } else {
      EXPECT_FLOAT_EQ(got, want)
          << "var " << v << " in program:\n"
          << ir::print_kernel(*kernel);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterFuzz, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Sanitized fuzzing: deliberately hazardous kernels — shared-memory races,
// out-of-bounds indices, barriers under divergent guards, wild shfl
// selectors, uninitialized reads — must never crash the interpreter or
// escape as exceptions once a sanitizer is attached. Everything surfaces as
// HazardReports, capped by the error limit.

/// Emits a random kernel mixing every hazard class the sanitizer knows.
std::string hazardous_kernel(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::ostringstream os;
  os << "__global__ void hazmat(float* out, int n) {\n"
     << "  __shared__ float s[64];\n"
     << "  float a[8];\n"
     << "  float v = threadIdx.x;\n"
     << "  float x;\n";  // never initialized
  auto idx = [&]() -> std::string {
    switch (rng.next_below(4)) {
      case 0: return "threadIdx.x";
      case 1: return "threadIdx.x % 64";
      case 2: return "(threadIdx.x * 7) % 64";
      // Constant index, occasionally out of bounds (-> contained SimError).
      default: return std::to_string(rng.next_below(70));
    }
  };
  auto expr = [&]() -> std::string {
    switch (rng.next_below(4)) {
      case 0: return "threadIdx.x";
      case 1: return std::to_string(rng.next_below(9)) + ".5f";
      case 2: return "v";
      default: return "x";  // uninitialized read
    }
  };
  int nstmts = 6 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < nstmts; ++i) {
    switch (rng.next_below(7)) {
      case 0:
        os << "  s[" << idx() << "] = " << expr() << ";\n";
        break;
      case 1:
        os << "  v = s[" << idx() << "];\n";
        break;
      case 2:
        os << "  a[" << rng.next_below(10) << "] = " << expr() << ";\n";
        break;
      case 3:
        os << "  v = a[" << rng.next_below(10) << "];\n";
        break;
      case 4:
        // Barrier under a (possibly divergent) guard.
        os << "  if (threadIdx.x < " << (8 << rng.next_below(4))
           << ") {\n    __syncthreads();\n  }\n";
        break;
      case 5: {
        // Shfl selector anywhere in [-3, 40].
        std::int64_t sel = static_cast<std::int64_t>(rng.next_below(44)) - 3;
        os << "  v = __shfl(v, " << sel << ", 32);\n";
        break;
      }
      default:
        os << "  __syncthreads();\n";
        break;
    }
  }
  os << "  out[threadIdx.x] = v;\n}\n";
  return os.str();
}

class SanitizedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SanitizedFuzz, HazardousKernelsNeverEscapeTheSanitizer) {
  std::string src =
      hazardous_kernel(0xbad5eedu + static_cast<std::uint64_t>(GetParam()));
  auto program = frontend::parse_program_or_throw(src);
  const auto& kernel = *program->kernels.front();

  sim::SanitizerEngine::Options sopt;
  sopt.error_limit = 64;
  sim::SanitizerEngine engine(sopt);

  sim::DeviceMemory mem;
  auto out = mem.alloc(ScalarType::kFloat, 64);
  sim::LaunchConfig cfg;
  cfg.grid = {2, 1, 1};
  cfg.block = {64, 1, 1};
  cfg.args = {out, sim::LaunchConfig::scalar_int(64)};

  sim::Interpreter::Options iopt;
  iopt.sanitizer = &engine;
  sim::Interpreter interp(sim::DeviceSpec::gtx680(), mem, iopt);
  EXPECT_NO_THROW((void)interp.run(kernel, cfg)) << src;
  EXPECT_LE(engine.reports().size(), sopt.error_limit) << src;
  // The same kernel without a sanitizer must at worst throw SimError —
  // never crash or loop (the shfl lane guard holds unconditionally).
  sim::DeviceMemory mem2;
  cfg.args = {mem2.alloc(ScalarType::kFloat, 64),
              sim::LaunchConfig::scalar_int(64)};
  sim::Interpreter plain(sim::DeviceSpec::gtx680(), mem2);
  try {
    (void)plain.run(kernel, cfg);
  } catch (const SimError&) {
    // expected for out-of-bounds programs
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SanitizedFuzz, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Watchdog-bounded loop fuzzing: random loop nests whose increments are
// sometimes missing or zero — i.e. kernels that may genuinely never
// terminate — must always come back within the step budget. The
// interpreter either finishes, reports a kWatchdogTrip (sanitized), or
// throws WatchdogError (unsanitized); it can never hang. The ctest
// TIMEOUT property on this binary backs the assertion up externally.

/// Emits a kernel of random sequential loops; each loop's step is drawn
/// from {0, 1, 2}, so roughly a third of the loops never advance.
std::string loopy_kernel(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::ostringstream os;
  os << "__global__ void loopy(float* out, int n) {\n"
     << "  float v = 1.0f;\n";
  int nloops = 1 + static_cast<int>(rng.next_below(3));
  for (int l = 0; l < nloops; ++l) {
    std::uint64_t bound = 1 + rng.next_below(64);
    std::uint64_t step = rng.next_below(3);
    if (rng.next_below(2)) {
      os << "  for (int i" << l << " = 0; i" << l << " < " << bound
         << "; i" << l << " = i" << l << " + " << step << ") {\n"
         << "    v = v + 0.5f;\n  }\n";
    } else {
      os << "  int j" << l << " = 0;\n"
         << "  while (j" << l << " < " << bound << ") {\n"
         << "    v = v * 1.5f;\n"
         << "    j" << l << " = j" << l << " + " << step << ";\n  }\n";
    }
  }
  os << "  out[threadIdx.x] = v;\n}\n";
  return os.str();
}

class WatchdogFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WatchdogFuzz, LoopNestsNeverOutliveTheBudget) {
  std::string src =
      loopy_kernel(0x10075eedu + static_cast<std::uint64_t>(GetParam()));
  auto program = frontend::parse_program_or_throw(src);
  const auto& kernel = *program->kernels.front();

  sim::LaunchConfig cfg;
  cfg.grid = {2, 1, 1};
  cfg.block = {32, 1, 1};

  // Sanitized: a non-terminating draw surfaces as exactly one
  // kWatchdogTrip report, a terminating one runs clean — never an
  // exception, never a hang.
  sim::SanitizerEngine::Options sopt;
  sim::SanitizerEngine engine(sopt);
  sim::DeviceMemory mem;
  cfg.args = {mem.alloc(ScalarType::kFloat, 64),
              sim::LaunchConfig::scalar_int(64)};
  sim::Interpreter::Options iopt;
  iopt.sanitizer = &engine;
  iopt.limits.max_steps_per_block = 10000;
  sim::Interpreter interp(sim::DeviceSpec::gtx680(), mem, iopt);
  EXPECT_NO_THROW((void)interp.run(kernel, cfg)) << src;
  bool tripped = false;
  for (const auto& r : engine.reports())
    tripped = tripped || r.kind == sim::HazardKind::kWatchdogTrip;
  EXPECT_EQ(engine.reports().size(), tripped ? 1u : 0u) << src;

  // Unsanitized: the same draw either completes or throws WatchdogError.
  sim::DeviceMemory mem2;
  cfg.args = {mem2.alloc(ScalarType::kFloat, 64),
              sim::LaunchConfig::scalar_int(64)};
  sim::Interpreter::Options popt;
  popt.limits.max_steps_per_block = 10000;
  sim::Interpreter plain(sim::DeviceSpec::gtx680(), mem2, popt);
  try {
    (void)plain.run(kernel, cfg);
    EXPECT_FALSE(tripped) << "sanitized run tripped but plain run finished:\n"
                          << src;
  } catch (const sim::WatchdogError& e) {
    EXPECT_TRUE(tripped) << "plain run tripped but sanitized run finished:\n"
                         << src;
    EXPECT_GT(e.steps(), 10000);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatchdogFuzz, ::testing::Range(0, 40));

}  // namespace
}  // namespace cudanp
