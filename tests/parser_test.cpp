#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"

namespace cudanp::frontend {
namespace {

using namespace cudanp::ir;

std::unique_ptr<Program> parse(const std::string& src) {
  return parse_program_or_throw(src);
}

const Kernel& only_kernel(const Program& p) {
  EXPECT_EQ(p.kernels.size(), 1u);
  return *p.kernels.front();
}

TEST(Parser, MinimalKernel) {
  auto p = parse("__global__ void k() { }");
  const Kernel& k = only_kernel(*p);
  EXPECT_EQ(k.name, "k");
  EXPECT_TRUE(k.params.empty());
  EXPECT_TRUE(k.body->stmts.empty());
}

TEST(Parser, Parameters) {
  auto p = parse("__global__ void k(float* a, int n, float x) {}");
  const Kernel& k = only_kernel(*p);
  ASSERT_EQ(k.params.size(), 3u);
  EXPECT_TRUE(k.params[0].type.is_pointer);
  EXPECT_EQ(k.params[0].type.scalar, ScalarType::kFloat);
  EXPECT_EQ(k.params[1].type.scalar, ScalarType::kInt);
  EXPECT_FALSE(k.params[1].type.is_pointer);
  EXPECT_EQ(k.params[2].name, "x");
}

TEST(Parser, ConstRestrictParamsAccepted) {
  auto p = parse("__global__ void k(const float* __restrict__ a) {}");
  EXPECT_TRUE(only_kernel(*p).params[0].type.is_pointer);
}

TEST(Parser, ScalarDeclWithInit) {
  auto p = parse("__global__ void k() { float sum = 0.0f; int i = 3; }");
  const auto& b = *only_kernel(*p).body;
  ASSERT_EQ(b.stmts.size(), 2u);
  const auto& d = static_cast<const DeclStmt&>(*b.stmts[0]);
  EXPECT_EQ(d.name, "sum");
  EXPECT_EQ(d.type.scalar, ScalarType::kFloat);
  ASSERT_NE(d.init, nullptr);
}

TEST(Parser, SharedArrayDecl) {
  auto p = parse("__global__ void k() { __shared__ float t[16][32]; }");
  const auto& d =
      static_cast<const DeclStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(d.type.space, AddrSpace::kShared);
  ASSERT_EQ(d.type.array_dims.size(), 2u);
  EXPECT_EQ(d.type.array_dims[0], 16);
  EXPECT_EQ(d.type.array_dims[1], 32);
  EXPECT_EQ(d.type.size_bytes(), 16 * 32 * 4);
}

TEST(Parser, LocalArrayDefaultsToLocalSpace) {
  auto p = parse("__global__ void k() { float grad[150]; }");
  const auto& d =
      static_cast<const DeclStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(d.type.space, AddrSpace::kLocal);
  EXPECT_EQ(d.type.element_count(), 150);
}

TEST(Parser, MultiDeclaratorList) {
  auto p = parse(
      "__global__ void k() { __shared__ float a[4][4], b[4][4], c[4][4]; }");
  EXPECT_EQ(only_kernel(*p).body->stmts.size(), 3u);
}

TEST(Parser, DefineSubstitution) {
  auto p = parse(
      "#define N 64\n__global__ void k(float* a) { float t[N]; a[N] = 1.0f; }");
  const auto& d =
      static_cast<const DeclStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(d.type.element_count(), 64);
  EXPECT_EQ(p->defines.at("N"), 64);
}

TEST(Parser, ConstantFoldedArrayDims) {
  auto p = parse("#define N 8\n__global__ void k() { float t[N * 2 + 1]; }");
  const auto& d =
      static_cast<const DeclStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(d.type.element_count(), 17);
}

TEST(Parser, NonConstArrayDimThrows) {
  EXPECT_THROW(parse("__global__ void k(int n) { float t[n]; }"),
               CompileError);
}

TEST(Parser, BraceInitializer) {
  auto p = parse("__global__ void k() { int t[3] = {4, 5, 6}; }");
  const auto& d =
      static_cast<const DeclStmt&>(*only_kernel(*p).body->stmts[0]);
  ASSERT_EQ(d.init_list.size(), 3u);
  EXPECT_EQ(static_cast<const IntLit&>(*d.init_list[1]).value, 5);
}

TEST(Parser, BuiltinGeometryMembers) {
  auto p = parse(
      "__global__ void k(float* a) { a[threadIdx.x + blockIdx.y * "
      "blockDim.z] = 0.0f; }");
  EXPECT_EQ(p->kernels.size(), 1u);
}

TEST(Parser, BadGeometryMemberThrows) {
  EXPECT_THROW(parse("__global__ void k(float* a) { a[threadIdx.w] = 0.0f; }"),
               CompileError);
}

TEST(Parser, OperatorPrecedence) {
  auto p = parse("__global__ void k(int* a) { a[0] = 1 + 2 * 3; }");
  const auto& assign =
      static_cast<const AssignStmt&>(*only_kernel(*p).body->stmts[0]);
  const auto& add = static_cast<const BinaryExpr&>(*assign.rhs);
  EXPECT_EQ(add.op, BinOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinOp::kMul);
}

TEST(Parser, TernaryAndComparison) {
  auto p = parse("__global__ void k(int* a, int n) { a[0] = n > 3 ? 1 : 2; }");
  const auto& assign =
      static_cast<const AssignStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(assign.rhs->kind(), ExprKind::kTernary);
}

TEST(Parser, CompoundAssignments) {
  auto p = parse(
      "__global__ void k(int* a) { int x = 0; x += 1; x -= 2; x *= 3; "
      "x /= 4; x++; --x; a[0] = x; }");
  const auto& b = *only_kernel(*p).body;
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[1]).op, AssignOp::kAdd);
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[2]).op, AssignOp::kSub);
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[3]).op, AssignOp::kMul);
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[4]).op, AssignOp::kDiv);
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[5]).op, AssignOp::kAdd);
  EXPECT_EQ(static_cast<const AssignStmt&>(*b.stmts[6]).op, AssignOp::kSub);
}

TEST(Parser, ForLoopCanonical) {
  auto p = parse(
      "__global__ void k(float* a, int n) {"
      "  for (int i = 0; i < n; i++) a[i] = 0.0f;"
      "}");
  const auto& f = static_cast<const ForStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(f.init->kind(), StmtKind::kDecl);
  ASSERT_NE(f.cond, nullptr);
  EXPECT_EQ(f.body->stmts.size(), 1u);
}

TEST(Parser, IfElseWithoutBraces) {
  auto p = parse(
      "__global__ void k(float* a, int n) {"
      "  if (n > 0) a[0] = 1.0f; else a[0] = 2.0f;"
      "}");
  const auto& i = static_cast<const IfStmt&>(*only_kernel(*p).body->stmts[0]);
  ASSERT_NE(i.else_body, nullptr);
  EXPECT_EQ(i.then_body->stmts.size(), 1u);
}

TEST(Parser, WhileLoop) {
  auto p = parse(
      "__global__ void k(int* a) { int i = 0; while (i < 4) { i++; } }");
  EXPECT_EQ(only_kernel(*p).body->stmts[1]->kind(), StmtKind::kWhile);
}

TEST(Parser, PragmaAttachesToFollowingFor) {
  auto p = parse(
      "__global__ void k(float* a, int n) {"
      "  float s = 0.0f;"
      "  #pragma np parallel for reduction(+:s)\n"
      "  for (int i = 0; i < n; i++) s += a[i];"
      "  a[0] = s;"
      "}");
  const auto& f = static_cast<const ForStmt&>(*only_kernel(*p).body->stmts[1]);
  ASSERT_TRUE(f.pragma.has_value());
  EXPECT_TRUE(f.pragma->names_reduction_var("s"));
  EXPECT_EQ(only_kernel(*p).parallel_loop_count(), 1u);
}

TEST(Parser, PragmaOnNonLoopIsError) {
  DiagnosticEngine diags;
  EXPECT_THROW(
      (void)parse_program("__global__ void k(float* a) {\n"
                          "#pragma np parallel for\n"
                          "a[0] = 1.0f; }",
                          diags),
      CompileError);
}

TEST(Parser, SyncthreadsCall) {
  auto p = parse("__global__ void k() { __syncthreads(); }");
  const auto& e = static_cast<const ExprStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(static_cast<const CallExpr&>(*e.expr).callee, "__syncthreads");
}

TEST(Parser, CastExpressions) {
  auto p = parse("__global__ void k(float* a, int n) { a[0] = (float)n; }");
  const auto& assign =
      static_cast<const AssignStmt&>(*only_kernel(*p).body->stmts[0]);
  EXPECT_EQ(assign.rhs->kind(), ExprKind::kCast);
}

TEST(Parser, ReturnBreakContinue) {
  auto p = parse(
      "__global__ void k(int n) {"
      "  if (n < 0) { return; }"
      "  for (int i = 0; i < n; i++) { if (i == 1) { continue; } "
      "    if (i == 2) { break; } }"
      "}");
  EXPECT_EQ(p->kernels.size(), 1u);
}

TEST(Parser, MultipleKernels) {
  auto p = parse(
      "__global__ void a() {}\n__global__ void b() {}\n");
  EXPECT_NE(p->find_kernel("a"), nullptr);
  EXPECT_NE(p->find_kernel("b"), nullptr);
  EXPECT_EQ(p->find_kernel("c"), nullptr);
}

TEST(Parser, NonVoidKernelThrows) {
  EXPECT_THROW(parse("__global__ int k() {}"), CompileError);
}

TEST(Parser, AssignToRvalueThrows) {
  EXPECT_THROW(parse("__global__ void k(int n) { n + 1 = 3; }"),
               CompileError);
}

TEST(Parser, UnterminatedBlockThrows) {
  EXPECT_THROW(parse("__global__ void k() { float x = 0.0f;"), CompileError);
}

TEST(Parser, MultiDimIndexing) {
  auto p = parse(
      "__global__ void k() { __shared__ float t[4][8]; "
      "t[1][2] = t[3][4] + 1.0f; }");
  const auto& assign =
      static_cast<const AssignStmt&>(*only_kernel(*p).body->stmts[1]);
  const auto& idx = static_cast<const ArrayIndex&>(*assign.lhs);
  EXPECT_EQ(idx.indices.size(), 2u);
}

TEST(Parser, IncludeDirectiveIgnored) {
  auto p = parse("#include <cuda.h>\n__global__ void k() {}");
  EXPECT_EQ(p->kernels.size(), 1u);
}

// ---------------------------------------------------------------------
// Error recovery: statement-level errors synchronize to the next ';' (or
// the enclosing '}') and keep parsing, so one compile surfaces every
// independent mistake instead of just the first.

TEST(ParserRecovery, CollectsMultipleStatementErrors) {
  DiagnosticEngine diags;
  try {
    (void)parse_program(
        "__global__ void k(float* a, int n) {\n"
        "  a[threadIdx.w] = 1.0f;\n"   // bad geometry member
        "  float t[n];\n"              // non-constant array dim
        "  a[0] = (1 + );\n"           // malformed expression
        "  a[1] = 2.0f;\n"             // fine
        "}\n",
        diags);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("parse errors"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(diags.error_count(), 3u) << diags.summary();
}

TEST(ParserRecovery, RecoveryCrossesKernelBoundaries) {
  DiagnosticEngine diags;
  EXPECT_THROW((void)parse_program("__global__ void a(float* p) {\n"
                                   "  p[0] = (;\n"
                                   "}\n"
                                   "__global__ void b(float* p) {\n"
                                   "  p[threadIdx.q] = 1.0f;\n"
                                   "}\n",
                                   diags),
               CompileError);
  EXPECT_EQ(diags.error_count(), 2u) << diags.summary();
}

TEST(ParserRecovery, SynchronizesOverNestedBraces) {
  DiagnosticEngine diags;
  // The error is ahead of a nested block; recovery must skip the whole
  // balanced region rather than resuming inside it.
  EXPECT_THROW(
      (void)parse_program("__global__ void k(float* a, int n) {\n"
                          "  float t[n];\n"
                          "  if (n > 0) { a[0] = 1.0f; }\n"
                          "  a[1] = (2 + );\n"
                          "}\n",
                          diags),
      CompileError);
  EXPECT_EQ(diags.error_count(), 2u) << diags.summary();
}

TEST(ParserRecovery, ErrorCapMirrorsSanitizerLimit) {
  std::string src = "__global__ void k(float* a, int n) {\n";
  for (int i = 0; i < 150; ++i) src += "  a[0] = (1 + );\n";
  src += "}\n";
  DiagnosticEngine diags;
  EXPECT_THROW((void)parse_program(src, diags), CompileError);
  EXPECT_EQ(diags.error_count(), 100u);
  EXPECT_NE(diags.summary().find("too many parse errors"),
            std::string::npos)
      << diags.summary();
}

TEST(ParserRecovery, CleanSourceLeavesDiagnosticsEmpty) {
  DiagnosticEngine diags;
  auto p = parse_program("__global__ void k(float* a) { a[0] = 1.0f; }",
                         diags);
  EXPECT_EQ(diags.error_count(), 0u);
  EXPECT_EQ(p->kernels.size(), 1u);
}

}  // namespace
}  // namespace cudanp::frontend
