// Focused tests of the scan-loop transformation (paper Sec. 3.2): the
// two-pass chunk scheme must reproduce sequential prefix semantics for
// every fabric, group size and trip-count shape.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/interpreter.hpp"
#include "transform/transformer.hpp"

namespace cudanp::transform {
namespace {

using namespace cudanp::ir;
using namespace cudanp::sim;

struct ScanCase {
  NpType np_type;
  int slave_size;
  int trip;  // loop count; deliberately including non-divisible ones
};

std::string case_name(const ::testing::TestParamInfo<ScanCase>& info) {
  return std::string(info.param.np_type == NpType::kIntraWarp ? "Intra"
                                                              : "Inter") +
         "S" + std::to_string(info.param.slave_size) + "N" +
         std::to_string(info.param.trip);
}

class ScanTransform : public ::testing::TestWithParam<ScanCase> {};

TEST_P(ScanTransform, PrefixSumsMatchSequentialSemantics) {
  const auto& param = GetParam();
  const int masters = 32;
  const int n = param.trip;
  std::string src =
      "__global__ void k(float* a, float* out, float* fin) {\n"
      "  int tid = threadIdx.x + blockIdx.x * blockDim.x;\n"
      "  float acc = 0.0f;\n"
      "  #pragma np parallel for scan(+:acc)\n"
      "  for (int i = 0; i < " + std::to_string(n) + "; i++) {\n"
      "    acc += a[tid * " + std::to_string(n) + " + i];\n"
      "    out[tid * " + std::to_string(n) + " + i] = acc;\n"
      "  }\n"
      "  fin[tid] = acc;\n"
      "}\n";
  auto prog = cudanp::frontend::parse_program_or_throw(src);

  NpConfig cfg;
  cfg.np_type = param.np_type;
  cfg.slave_size = param.slave_size;
  cfg.master_count = masters;
  DiagnosticEngine diags;
  auto variant = apply_np_transform(*prog->find_kernel("k"), cfg, diags);

  DeviceMemory mem;
  std::size_t total = static_cast<std::size_t>(masters) * static_cast<std::size_t>(n);
  auto A = mem.alloc(ScalarType::kFloat, total);
  auto Out = mem.alloc(ScalarType::kFloat, total);
  auto Fin = mem.alloc(ScalarType::kFloat, masters);
  for (std::size_t i = 0; i < total; ++i)
    mem.buffer(A).store(i, Value::of_float(0.25 * ((i * 7) % 11) - 1.0));

  LaunchConfig launch;
  launch.grid = {1, 1, 1};
  launch.block = variant.block_dims;
  launch.args = {A, Out, Fin};
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(*variant.kernel, launch);

  auto a = mem.buffer(A).f32();
  auto out = mem.buffer(Out).f32();
  auto fin = mem.buffer(Fin).f32();
  for (int t = 0; t < masters; ++t) {
    float acc = 0.0f;
    for (int i = 0; i < n; ++i) {
      acc += a[static_cast<std::size_t>(t) * static_cast<std::size_t>(n) + static_cast<std::size_t>(i)];
      EXPECT_NEAR(out[static_cast<std::size_t>(t) * static_cast<std::size_t>(n) + static_cast<std::size_t>(i)],
                  acc, 1e-3)
          << "t=" << t << " i=" << i;
    }
    EXPECT_NEAR(fin[static_cast<std::size_t>(t)], acc, 1e-3) << "t=" << t;
  }
}

std::vector<ScanCase> scan_cases() {
  std::vector<ScanCase> out;
  for (int s : {2, 4, 8}) {
    for (int n : {16, 30, 7}) {  // divisible, non-divisible, tiny
      out.push_back({NpType::kInterWarp, s, n});
      out.push_back({NpType::kIntraWarp, s, n});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScanTransform,
                         ::testing::ValuesIn(scan_cases()), case_name);

TEST(ScanTransform, StructureHasTwoPassesAndFinalBroadcast) {
  const char* src = R"(
__global__ void k(float* a, float* out, int n) {
  int tid = threadIdx.x;
  float acc = 0.0f;
  #pragma np parallel for scan(+:acc)
  for (int i = 0; i < 64; i++) {
    acc += a[i];
    out[tid * 64 + i] = acc;
  }
  a[tid] = acc;
}
)";
  auto prog = cudanp::frontend::parse_program_or_throw(src);
  NpConfig cfg;
  cfg.np_type = NpType::kIntraWarp;
  cfg.slave_size = 4;
  cfg.master_count = 32;
  DiagnosticEngine diags;
  auto variant = apply_np_transform(*prog->find_kernel("k"), cfg, diags);
  std::string s = print_kernel(*variant.kernel);
  // Pass-1 accumulator and exclusive prefix, chunk bounds, and the
  // final read from the last slave.
  EXPECT_NE(s.find("__np_local0"), std::string::npos);
  EXPECT_NE(s.find("__np_prefix0"), std::string::npos);
  EXPECT_NE(s.find("__np_lo0"), std::string::npos);
  EXPECT_NE(s.find("__shfl(acc, 3, 4)"), std::string::npos);
  // Pass 1 must not contain the store to `out`.
  auto first_loop = s.find("for (int i = __np_lo0");
  auto second_loop = s.find("for (int i = __np_lo0", first_loop + 1);
  ASSERT_NE(second_loop, std::string::npos);
  std::string pass1 = s.substr(first_loop, second_loop - first_loop);
  EXPECT_EQ(pass1.find("out["), std::string::npos);
}

TEST(ScanTransform, MultiplicativeScan) {
  const char* src = R"(
__global__ void k(float* a, float* out) {
  int tid = threadIdx.x;
  float p = 1.0f;
  #pragma np parallel for scan(*:p)
  for (int i = 0; i < 12; i++) {
    p *= a[tid * 12 + i];
    out[tid * 12 + i] = p;
  }
}
)";
  auto prog = cudanp::frontend::parse_program_or_throw(src);
  NpConfig cfg;
  cfg.np_type = NpType::kInterWarp;
  cfg.slave_size = 4;
  cfg.master_count = 16;
  DiagnosticEngine diags;
  auto variant = apply_np_transform(*prog->find_kernel("k"), cfg, diags);

  DeviceMemory mem;
  auto A = mem.alloc(ScalarType::kFloat, 16 * 12);
  auto Out = mem.alloc(ScalarType::kFloat, 16 * 12);
  for (std::size_t i = 0; i < 16 * 12; ++i)
    mem.buffer(A).store(i, Value::of_float(1.0 + 0.01 * (i % 9)));
  LaunchConfig launch;
  launch.grid = {1, 1, 1};
  launch.block = variant.block_dims;
  launch.args = {A, Out};
  Interpreter interp(DeviceSpec::gtx680(), mem);
  (void)interp.run(*variant.kernel, launch);
  auto a = mem.buffer(A).f32();
  auto out = mem.buffer(Out).f32();
  for (int t = 0; t < 16; ++t) {
    float p = 1.0f;
    for (int i = 0; i < 12; ++i) {
      p *= a[static_cast<std::size_t>(t) * 12 + static_cast<std::size_t>(i)];
      EXPECT_NEAR(out[static_cast<std::size_t>(t) * 12 + static_cast<std::size_t>(i)], p, 1e-3);
    }
  }
}

TEST(ScanTransform, TwoScanVarsRejected) {
  const char* src = R"(
__global__ void k(float* a, float* o1, float* o2, int n) {
  float x = 0.0f;
  float y = 0.0f;
  #pragma np parallel for scan(+:x) scan(+:y)
  for (int i = 0; i < n; i++) {
    x += a[i];
    y += a[i];
    o1[i] = x;
    o2[i] = y;
  }
}
)";
  auto prog = cudanp::frontend::parse_program_or_throw(src);
  NpConfig cfg;
  cfg.slave_size = 4;
  cfg.master_count = 32;
  DiagnosticEngine diags;
  EXPECT_THROW(
      (void)apply_np_transform(*prog->find_kernel("k"), cfg, diags),
      CompileError);
}

TEST(ScanTransform, ScanMixedWithReductionRejected) {
  const char* src = R"(
__global__ void k(float* a, float* o, int n) {
  float x = 0.0f;
  float s = 0.0f;
  #pragma np parallel for scan(+:x) reduction(+:s)
  for (int i = 0; i < n; i++) {
    x += a[i];
    s += x;
    o[i] = x;
  }
  o[0] = s;
}
)";
  auto prog = cudanp::frontend::parse_program_or_throw(src);
  NpConfig cfg;
  cfg.slave_size = 4;
  cfg.master_count = 32;
  DiagnosticEngine diags;
  EXPECT_THROW(
      (void)apply_np_transform(*prog->find_kernel("k"), cfg, diags),
      CompileError);
}

TEST(ScanTransform, KernelWithScanUsesChunkDistributionEverywhere) {
  // The element->slave mapping must be prefix-compatible, so *all* loops
  // in a scan kernel use contiguous chunks rather than cyclic striding.
  const char* src = R"(
__global__ void k(float* a, float* out) {
  int tid = threadIdx.x;
  float acc = 0.0f;
  float s = 0.0f;
  #pragma np parallel for reduction(+:s)
  for (int i = 0; i < 64; i++) s += a[tid * 64 + i];
  #pragma np parallel for scan(+:acc)
  for (int i = 0; i < 64; i++) {
    acc += a[tid * 64 + i];
    out[tid * 64 + i] = acc;
  }
  a[tid] = s + acc;
}
)";
  auto prog = cudanp::frontend::parse_program_or_throw(src);
  NpConfig cfg;
  cfg.np_type = NpType::kInterWarp;
  cfg.slave_size = 8;
  cfg.master_count = 32;
  DiagnosticEngine diags;
  auto variant = apply_np_transform(*prog->find_kernel("k"), cfg, diags);
  std::string s = print_kernel(*variant.kernel);
  // No cyclic "i += 8" loops; chunk bounds for both loops instead.
  EXPECT_EQ(s.find("i += 8"), std::string::npos);
  EXPECT_NE(s.find("__np_lo0"), std::string::npos);
  EXPECT_NE(s.find("__np_lo1"), std::string::npos);
}

}  // namespace
}  // namespace cudanp::transform
