// Engine-equivalence contract: the AST walker and the bytecode VM must
// be observationally indistinguishable — bit-identical output buffers,
// cost-model stats, modeled timing, watchdog trip points and sanitizer
// hazard streams — across the whole paper suite (baseline and every NP
// variant, serial and parallel) and across randomized divergent control
// flow. Both engines execute through the shared exec::BlockCore, so a
// failure here means the lowering or the VM dispatch diverged from the
// AST semantics. See docs/performance.md.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "support/rng.hpp"

namespace cudanp {
namespace {

constexpr double kTestScale = 0.05;

void expect_stats_equal(const sim::KernelStats& a, const sim::KernelStats& b) {
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.issue_slots, b.issue_slots);
  EXPECT_EQ(a.dram_transactions, b.dram_transactions);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.local_transactions, b.local_transactions);
  EXPECT_EQ(a.local_l1_misses, b.local_l1_misses);
  EXPECT_EQ(a.smem_accesses, b.smem_accesses);
  EXPECT_EQ(a.smem_replays, b.smem_replays);
  EXPECT_EQ(a.shfl_ops, b.shfl_ops);
  EXPECT_EQ(a.sync_ops, b.sync_ops);
  EXPECT_EQ(a.divergent_branches, b.divergent_branches);
  EXPECT_EQ(a.crit_path_cycles, b.crit_path_cycles);
}

void expect_memories_equal(const sim::DeviceMemory& a,
                           const sim::DeviceMemory& b) {
  ASSERT_EQ(a.buffer_count(), b.buffer_count());
  for (std::size_t i = 0; i < a.buffer_count(); ++i) {
    const auto& ba = a.buffer(static_cast<sim::BufferId>(i));
    const auto& bb = b.buffer(static_cast<sim::BufferId>(i));
    ASSERT_EQ(ba.type(), bb.type()) << "buffer " << i;
    ASSERT_EQ(ba.size(), bb.size()) << "buffer " << i;
    if (ba.type() == ir::ScalarType::kFloat) {
      auto fa = ba.f32();
      auto fb = bb.f32();
      for (std::size_t e = 0; e < fa.size(); ++e)
        ASSERT_EQ(std::memcmp(&fa[e], &fb[e], sizeof(float)), 0)
            << "buffer " << i << " element " << e;
    } else {
      auto ia = ba.i32();
      auto ib = bb.i32();
      for (std::size_t e = 0; e < ia.size(); ++e)
        ASSERT_EQ(ia[e], ib[e]) << "buffer " << i << " element " << e;
    }
  }
}

void expect_reports_equal(const std::vector<sim::HazardReport>& a,
                          const std::vector<sim::HazardReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "report " << i;
    EXPECT_EQ(a[i].kernel, b[i].kernel) << "report " << i;
    EXPECT_EQ(a[i].thread, b[i].thread) << "report " << i;
    EXPECT_EQ(a[i].loc.line, b[i].loc.line) << "report " << i;
    EXPECT_EQ(a[i].loc.column, b[i].loc.column) << "report " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "report " << i;
  }
}

/// Runs the request under both engines (fresh workload each) and checks
/// every observable for bit-identity.
template <typename MakeWorkload, typename MakeRequest>
void expect_engines_agree(const MakeWorkload& make_workload,
                          const MakeRequest& make_request, int jobs,
                          bool sanitize) {
  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto run_engine = [&](sim::Engine eng) {
    auto w = std::make_shared<np::Workload>(make_workload());
    np::ExecutionRequest req = make_request(*w);
    req.with_engine(eng).with_jobs(jobs);
    if (sanitize) req.sanitized();
    auto out = std::make_shared<np::ExecutionResult>(runner.execute(req));
    return std::make_pair(w, out);
  };
  auto [wa, ra] = run_engine(sim::Engine::kAst);
  auto [wv, rv] = run_engine(sim::Engine::kVm);
  EXPECT_EQ(ra->ran, rv->ran);
  expect_stats_equal(ra->run.stats, rv->run.stats);
  EXPECT_EQ(ra->run.timing.seconds, rv->run.timing.seconds);
  expect_memories_equal(*wa->mem, *wv->mem);
  expect_reports_equal(ra->hazards(), rv->hazards());
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EngineEquivalence, BaselineBitIdentical) {
  auto [name, jobs] = GetParam();
  auto bench = kernels::make_benchmark(name, kTestScale);
  expect_engines_agree(
      [&] { return bench->make_workload(); },
      [&](np::Workload& w) {
        return np::ExecutionRequest::baseline(bench->kernel(), w);
      },
      jobs, /*sanitize=*/false);
}

TEST_P(EngineEquivalence, BaselineSanitizedHazardStreamIdentical) {
  auto [name, jobs] = GetParam();
  auto bench = kernels::make_benchmark(name, kTestScale);
  expect_engines_agree(
      [&] { return bench->make_workload(); },
      [&](np::Workload& w) {
        return np::ExecutionRequest::baseline(bench->kernel(), w);
      },
      jobs, /*sanitize=*/true);
}

TEST_P(EngineEquivalence, EveryNpVariantBitIdentical) {
  auto [name, jobs] = GetParam();
  auto bench = kernels::make_benchmark(name, kTestScale);
  auto probe = bench->make_workload();
  auto configs = np::NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()),
      sim::DeviceSpec::gtx680());
  ASSERT_FALSE(configs.empty());
  int executed = 0;
  // Variants own their kernel; keep them alive across the runs.
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.describe());
    transform::TransformResult variant;
    try {
      variant = np::NpCompiler::transform(bench->kernel(), cfg);
    } catch (const CompileError&) {
      continue;  // configuration legitimately inapplicable
    }
    expect_engines_agree(
        [&] { return bench->make_workload(); },
        [&](np::Workload& w) {
          return np::ExecutionRequest::transformed(variant, w);
        },
        jobs, /*sanitize=*/false);
    ++executed;
  }
  EXPECT_GT(executed, 0);
}

std::vector<std::tuple<std::string, int>> suite_params() {
  std::vector<std::tuple<std::string, int>> out;
  for (const auto& name : kernels::benchmark_names())
    for (int jobs : {1, 8}) out.emplace_back(name, jobs);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EngineEquivalence, ::testing::ValuesIn(suite_params()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_jobs" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------- watchdog trip points ----------------

constexpr const char* kSpinSource = R"(
__global__ void spin(float* out, int n) {
  int tid = threadIdx.x;
  float acc = 0.0f;
  while (n > 0) {
    acc = acc + 1.0f;
  }
  out[tid] = acc;
}
)";

np::Workload spin_workload() {
  np::Workload w;
  w.launch.args.push_back(w.mem->alloc(ir::ScalarType::kFloat, 4096));
  w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
  w.launch.block = {32, 1, 1};
  w.launch.grid = {1, 1, 1};
  return w;
}

TEST(EngineEquivalenceWatchdog, UnsanitizedTripsAtTheSamePoint) {
  auto program = np::NpCompiler::parse(kSpinSource);
  const ir::Kernel& kernel = *program->kernels.front();
  sim::ExecutionLimits limits;
  limits.max_steps_per_block = 10000;

  auto trip_message = [&](sim::Engine eng) -> std::string {
    sim::Interpreter::Options opt;
    np::Runner runner{sim::DeviceSpec::gtx680(), opt};
    auto w = spin_workload();
    try {
      (void)runner.execute(np::ExecutionRequest::baseline(kernel, w)
                               .with_engine(eng)
                               .with_limits(limits));
    } catch (const sim::WatchdogError& e) {
      return std::string(e.what()) + " @" + e.loc().str();
    }
    return "<no trip>";
  };
  std::string ast = trip_message(sim::Engine::kAst);
  std::string vm = trip_message(sim::Engine::kVm);
  EXPECT_NE(ast, "<no trip>");
  EXPECT_EQ(ast, vm);
}

TEST(EngineEquivalenceWatchdog, SanitizedTripReportsIdentical) {
  auto program = np::NpCompiler::parse(kSpinSource);
  const ir::Kernel& kernel = *program->kernels.front();
  sim::ExecutionLimits limits;
  limits.max_steps_per_block = 10000;

  auto reports = [&](sim::Engine eng) {
    np::Runner runner{sim::DeviceSpec::gtx680()};
    auto w = spin_workload();
    auto run = runner.execute(np::ExecutionRequest::baseline(kernel, w)
                                  .sanitized()
                                  .with_engine(eng)
                                  .with_limits(limits));
    return run.engine.reports();
  };
  auto ast = reports(sim::Engine::kAst);
  auto vm = reports(sim::Engine::kVm);
  ASSERT_FALSE(ast.empty());
  expect_reports_equal(ast, vm);
}

// ---------------- hazard streams on a racy kernel ----------------

constexpr const char* kRacySource = R"(
__global__ void racy(float* out, int n) {
  __shared__ float buf[32];
  int tid = threadIdx.x;
  buf[tid % 16] = out[tid];
  __syncthreads();
  out[tid] = buf[(tid * 3) % 32];
}
)";

TEST(EngineEquivalenceHazards, RacyKernelStreamsIdentical) {
  auto program = np::NpCompiler::parse(kRacySource);
  const ir::Kernel& kernel = *program->kernels.front();
  auto reports = [&](sim::Engine eng) {
    np::Runner runner{sim::DeviceSpec::gtx680()};
    np::Workload w;
    w.launch.args.push_back(w.mem->alloc(ir::ScalarType::kFloat, 4096));
    w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
    w.launch.block = {32, 1, 1};
    w.launch.grid = {2, 1, 1};
    auto run = runner.execute(np::ExecutionRequest::baseline(kernel, w)
                                  .sanitized()
                                  .with_engine(eng));
    return run.engine.reports();
  };
  auto ast = reports(sim::Engine::kAst);
  auto vm = reports(sim::Engine::kVm);
  ASSERT_FALSE(ast.empty());  // the write race must be visible
  expect_reports_equal(ast, vm);
}

// ---------------- divergent-control-flow fuzzing ----------------

/// Generates a seeded kernel whose control flow diverges per-lane:
/// nested tid-keyed ifs, loops with lane-dependent trip counts, a
/// shared-memory stage with a barrier, and lane-varying arithmetic.
/// Constants are chosen so div/mod never see zero.
std::string fuzz_source(std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  };
  std::ostringstream os;
  os << "__global__ void fz(float* out, int n) {\n"
     << "  __shared__ float buf[32];\n"
     << "  int tid = threadIdx.x + blockIdx.x * blockDim.x;\n"
     << "  int lane = threadIdx.x;\n"
     << "  float acc = " << pick(1, 4) << ".0f;\n";
  int depth = pick(1, 3);
  for (int d = 0; d < depth; ++d) {
    int mod = pick(2, 7);
    int cut = pick(0, mod - 1);
    os << "  if (lane % " << mod << " > " << cut << ") {\n"
       << "    for (int i = 0; i < " << pick(1, 4) << " + lane % "
       << pick(2, 5) << "; i++) {\n"
       << "      acc += " << pick(1, 3) << ".0f * i;\n"
       << "      if (acc > " << pick(8, 64) << ".0f) acc = acc * 0.5f;\n"
       << "    }\n"
       << "  } else {\n"
       << "    acc = acc - " << pick(1, 3) << ".0f;\n"
       << "  }\n";
  }
  os << "  buf[lane] = acc;\n"
     << "  __syncthreads();\n"
     << "  acc += buf[(lane * " << pick(3, 9) << ") % 32];\n"
     << "  int k = " << pick(1, 6) << ";\n"
     << "  while (k > 0) {\n"
     << "    acc = acc + 0.25f;\n"
     << "    k = k - 1;\n"
     << "  }\n"
     << "  out[tid] = acc;\n"
     << "}\n";
  return os.str();
}

TEST(EngineEquivalenceFuzz, DivergentControlFlowBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::string src = fuzz_source(seed);
    std::unique_ptr<ir::Program> program;
    try {
      program = np::NpCompiler::parse(src);
    } catch (const CompileError& e) {
      FAIL() << "generator produced unparseable source: " << e.what()
             << "\n" << src;
    }
    const ir::Kernel& kernel = *program->kernels.front();
    expect_engines_agree(
        [&] {
          np::Workload w;
          w.launch.args.push_back(w.mem->alloc(ir::ScalarType::kFloat, 4096));
          w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
          w.launch.block = {32, 1, 1};
          w.launch.grid = {2, 1, 1};
          return w;
        },
        [&](np::Workload& w) {
          return np::ExecutionRequest::baseline(kernel, w);
        },
        /*jobs=*/1, /*sanitize=*/false);
  }
}

// ---------------- request plumbing ----------------

// Sanitized and unsanitized requests over the same workload agree on
// stats, timing and memory: the sanitizer observes, it never perturbs.
TEST(ExecutionRequests, SanitizeIsObservationOnly) {
  auto bench = kernels::make_benchmark("MV", kTestScale);
  np::Runner runner{sim::DeviceSpec::gtx680()};

  auto w1 = bench->make_workload();
  auto plain =
      runner.execute(np::ExecutionRequest::baseline(bench->kernel(), w1));
  auto w2 = bench->make_workload();
  auto sanitized = runner.execute(
      np::ExecutionRequest::baseline(bench->kernel(), w2).sanitized());
  EXPECT_TRUE(sanitized.ran);
  EXPECT_TRUE(sanitized.clean()) << sanitized.engine.summary();
  expect_stats_equal(plain.run.stats, sanitized.run.stats);
  EXPECT_EQ(plain.run.timing.seconds, sanitized.run.timing.seconds);
  expect_memories_equal(*w1.mem, *w2.mem);
}

}  // namespace
}  // namespace cudanp
