// Parallel grid execution must be invisible: running the same launch at
// jobs=1 and jobs=8 has to produce bit-identical stats, timing, output
// buffers and sanitizer hazard streams (see docs/performance.md for the
// determinism contract). Also doubles as the TSan target for the pool.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp {
namespace {

using SanOptions = sim::SanitizerEngine::Options;

sim::Interpreter::Options with_jobs(int jobs) {
  sim::Interpreter::Options opt;
  opt.jobs = jobs;
  return opt;
}

void expect_stats_equal(const sim::KernelStats& a, const sim::KernelStats& b) {
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.issue_slots, b.issue_slots);
  EXPECT_EQ(a.dram_transactions, b.dram_transactions);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.local_transactions, b.local_transactions);
  EXPECT_EQ(a.local_l1_misses, b.local_l1_misses);
  EXPECT_EQ(a.smem_accesses, b.smem_accesses);
  EXPECT_EQ(a.smem_replays, b.smem_replays);
  EXPECT_EQ(a.shfl_ops, b.shfl_ops);
  EXPECT_EQ(a.sync_ops, b.sync_ops);
  EXPECT_EQ(a.divergent_branches, b.divergent_branches);
  EXPECT_EQ(a.crit_path_cycles, b.crit_path_cycles);
}

void expect_timing_equal(const sim::TimingBreakdown& a,
                         const sim::TimingBreakdown& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.t_issue_cycles, b.t_issue_cycles);
  EXPECT_EQ(a.t_dram_cycles, b.t_dram_cycles);
  EXPECT_EQ(a.t_smem_cycles, b.t_smem_cycles);
  EXPECT_EQ(a.t_crit_cycles, b.t_crit_cycles);
  EXPECT_STREQ(a.bound, b.bound);
}

void expect_memories_equal(const sim::DeviceMemory& a,
                           const sim::DeviceMemory& b) {
  ASSERT_EQ(a.buffer_count(), b.buffer_count());
  for (std::size_t i = 0; i < a.buffer_count(); ++i) {
    const auto& ba = a.buffer(static_cast<sim::BufferId>(i));
    const auto& bb = b.buffer(static_cast<sim::BufferId>(i));
    ASSERT_EQ(ba.type(), bb.type());
    ASSERT_EQ(ba.size(), bb.size());
    if (ba.type() == ir::ScalarType::kFloat) {
      // Bitwise, not ==: NaNs and signed zeros must match too.
      EXPECT_EQ(std::memcmp(ba.f32().data(), bb.f32().data(),
                            ba.size() * sizeof(float)),
                0)
          << "float buffer " << i << " differs";
    } else {
      EXPECT_EQ(std::memcmp(ba.i32().data(), bb.i32().data(),
                            ba.size() * sizeof(std::int32_t)),
                0)
          << "int buffer " << i << " differs";
    }
  }
}

void expect_reports_equal(const std::vector<sim::HazardReport>& a,
                          const std::vector<sim::HazardReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "report " << i;
    EXPECT_EQ(a[i].kernel, b[i].kernel) << "report " << i;
    EXPECT_EQ(a[i].block.x, b[i].block.x) << "report " << i;
    EXPECT_EQ(a[i].block.y, b[i].block.y) << "report " << i;
    EXPECT_EQ(a[i].block.z, b[i].block.z) << "report " << i;
    EXPECT_EQ(a[i].thread, b[i].thread) << "report " << i;
    EXPECT_EQ(a[i].loc.line, b[i].loc.line) << "report " << i;
    EXPECT_EQ(a[i].loc.column, b[i].loc.column) << "report " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "report " << i;
  }
}

class ParallelExecBenchmarks : public ::testing::TestWithParam<std::string> {};

// Every paper benchmark, whole pipeline, serial vs 8 host threads: the
// stats, the modeled time and every output byte must agree exactly.
TEST_P(ParallelExecBenchmarks, BitIdenticalToSerial) {
  auto bench = kernels::make_benchmark(GetParam(), 0.25);
  auto spec = sim::DeviceSpec::gtx680();

  np::Runner serial(spec, with_jobs(1));
  np::Runner parallel(spec, with_jobs(8));

  np::Workload ws = bench->make_workload();
  auto rs =
      serial.execute(np::ExecutionRequest::baseline(bench->kernel(), ws)).run;
  np::Workload wp = bench->make_workload();
  auto rp =
      parallel.execute(np::ExecutionRequest::baseline(bench->kernel(), wp))
          .run;

  expect_stats_equal(rs.stats, rp.stats);
  expect_timing_equal(rs.timing, rp.timing);
  expect_memories_equal(*ws.mem, *wp.mem);
  std::string msg;
  if (wp.validate)
    EXPECT_TRUE(wp.validate(*wp.mem, &msg)) << GetParam() << ": " << msg;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelExecBenchmarks,
                         ::testing::ValuesIn(kernels::benchmark_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// Runs `src`'s first kernel under the sanitizer at the given job count
/// (same synthetic workload convention as sanitizer_test.cpp).
np::ExecutionResult run_sanitized_jobs(const std::string& src, int block_x,
                                       int grid_x, int jobs,
                                       SanOptions sopt = {}) {
  auto program = np::NpCompiler::parse(src);
  const ir::Kernel& kernel = *program->kernels.front();
  np::Workload w;
  for (const auto& p : kernel.params) {
    if (p.type.is_pointer)
      w.launch.args.push_back(w.mem->alloc(p.type.scalar, 4096));
    else if (p.type.scalar == ir::ScalarType::kFloat)
      w.launch.args.push_back(sim::LaunchConfig::scalar_float(1.0));
    else
      w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
  }
  w.launch.block = {block_x, 1, 1};
  w.launch.grid = {grid_x, 1, 1};
  np::Runner runner(sim::DeviceSpec::gtx680(), with_jobs(jobs));
  return runner.execute(
      np::ExecutionRequest::baseline(kernel, w).sanitized(sopt));
}

struct HazardCase {
  const char* name;
  const char* src;
  int block_x;
  int grid_x;
  SanOptions sopt;
};

std::vector<HazardCase> hazard_cases() {
  std::vector<HazardCase> cases;
  // Multi-block cases index out[] by global tid: thread blocks must be
  // independent (as on real hardware), otherwise parallel execution of
  // overlapping global stores would itself be a host-level data race.
  cases.push_back({"write_write_race", R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x + blockIdx.x * blockDim.x] = s[0];
}
)",
                   32, 8, {}});
  cases.push_back({"barrier_divergence", R"(
__global__ void bdiv(float* out, int n) {
  if (threadIdx.x < 32) {
    __syncthreads();
  }
  out[threadIdx.x + blockIdx.x * blockDim.x] = 1.0f;
}
)",
                   64, 8, {}});
  cases.push_back({"uninit_scalar", R"(
__global__ void uninit(float* out, int n) {
  float x;
  out[threadIdx.x + blockIdx.x * blockDim.x] = x;
}
)",
                   32, 8, {}});
  cases.push_back({"shfl_inactive_lane", R"(
__global__ void shfl_inactive(float* out, int n) {
  float v = threadIdx.x;
  if (threadIdx.x < 16) {
    v = __shfl(v, 20, 32);
  }
  out[threadIdx.x + blockIdx.x * blockDim.x] = v;
}
)",
                   32, 8, {}});
  // Every block faults out of bounds: the kSimFault containment path.
  cases.push_back({"per_block_sim_fault", R"(
__global__ void oob(float* out, int n) {
  out[threadIdx.x + n * 1000] = 1.0f;
}
)",
                   32, 16, {}});
  // Error limit hit mid-grid: later blocks' reports and stats must be
  // discarded identically at every job count.
  SanOptions limited;
  limited.error_limit = 5;
  limited.dedupe = false;
  cases.push_back({"error_limit", R"(
__global__ void racy(float* out, int n) {
  __shared__ float s[32];
  s[0] = threadIdx.x;
  out[threadIdx.x + blockIdx.x * blockDim.x] = s[0];
}
)",
                   32, 8, limited});
  return cases;
}

// The hazard stream the engine ends up with — order, dedupe, counters,
// limit behaviour — must not depend on the job count.
TEST(ParallelExec, HazardStreamsBitIdentical) {
  for (const auto& c : hazard_cases()) {
    SCOPED_TRACE(c.name);
    auto serial = run_sanitized_jobs(c.src, c.block_x, c.grid_x, 1, c.sopt);
    auto parallel = run_sanitized_jobs(c.src, c.block_x, c.grid_x, 8, c.sopt);
    EXPECT_EQ(serial.ran, parallel.ran);
    EXPECT_EQ(serial.engine.total_detected(), parallel.engine.total_detected());
    EXPECT_EQ(serial.engine.limit_reached(), parallel.engine.limit_reached());
    expect_reports_equal(serial.engine.reports(), parallel.engine.reports());
    expect_stats_equal(serial.run.stats, parallel.run.stats);
  }
}

// Unsanitized failing launch: every job count must surface the same
// SimError text (the lowest-block-index failure).
TEST(ParallelExec, SerialAndParallelThrowTheSameError) {
  const char* src = R"(
__global__ void oob(float* out, int n) {
  out[threadIdx.x + n * 1000] = 1.0f;
}
)";
  std::string serial_err;
  std::string parallel_err;
  for (int jobs : {1, 8}) {
    auto program = np::NpCompiler::parse(src);
    np::Workload w;
    w.launch.args.push_back(w.mem->alloc(ir::ScalarType::kFloat, 4096));
    w.launch.args.push_back(sim::LaunchConfig::scalar_int(64));
    w.launch.block = {32, 1, 1};
    w.launch.grid = {16, 1, 1};
    np::Runner runner(sim::DeviceSpec::gtx680(), with_jobs(jobs));
    try {
      (void)runner.execute(
          np::ExecutionRequest::baseline(*program->kernels.front(), w));
      FAIL() << "expected SimError at jobs=" << jobs;
    } catch (const SimError& e) {
      (jobs == 1 ? serial_err : parallel_err) = e.what();
    }
  }
  EXPECT_EQ(serial_err, parallel_err);
}

// Many tiny blocks through the pool repeatedly: the TSan stress case.
// Run under the ci.yml thread-sanitizer job; any data race in ExecPool,
// the stats merge or the shadow bitmaps trips it.
TEST(ParallelExec, StressManyBlocksManyLaunches) {
  auto program = np::NpCompiler::parse(R"(
__global__ void scale(float* data, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  data[i] = data[i] * 2.0f + 1.0f;
}
)");
  const ir::Kernel& kernel = *program->kernels.front();
  auto spec = sim::DeviceSpec::gtx680();
  for (int round = 0; round < 4; ++round) {
    np::Workload ws;
    np::Workload wp;
    for (np::Workload* w : {&ws, &wp}) {
      sim::BufferId id = w->mem->alloc(ir::ScalarType::kFloat, 256 * 32);
      auto f = w->mem->buffer(id).f32();
      for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = static_cast<float>(i % 97) * 0.5f;
      w->launch.args.push_back(id);
      w->launch.args.push_back(sim::LaunchConfig::scalar_int(256 * 32));
      w->launch.block = {32, 1, 1};
      w->launch.grid = {256, 1, 1};
    }
    auto rs = np::Runner(spec, with_jobs(1))
                  .execute(np::ExecutionRequest::baseline(kernel, ws))
                  .run;
    auto rp = np::Runner(spec, with_jobs(8))
                  .execute(np::ExecutionRequest::baseline(kernel, wp))
                  .run;
    expect_stats_equal(rs.stats, rp.stats);
    expect_memories_equal(*ws.mem, *wp.mem);
  }
}

}  // namespace
}  // namespace cudanp
