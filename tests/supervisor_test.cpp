// Crash-isolated execution workers and durable batch recovery: the
// supervisor contains native crashes (SIGSEGV), wedged workers (read
// timeout), and RLIMIT_AS overruns as structured failure causes; the
// write-ahead journal makes a SIGKILL'd batch resumable with a
// byte-identical report. Reports must stay bit-identical across
// isolation modes (for non-crashing batches), job counts, commit chunk
// sizes, and resume boundaries.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "sim/device.hpp"
#include "temp_util.hpp"

#ifndef CUDANP_CC_PATH
#define CUDANP_CC_PATH "tools/cudanp-cc"
#endif

namespace cudanp {
namespace {

const char* kTmv = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

serve::JobSpec tmv_job(const std::string& name) {
  serve::JobSpec j;
  j.name = name;
  j.source = kTmv;
  j.elems = 16;
  j.tb = 8;
  return j;
}

serve::JobSpec crashing_job(const std::string& name) {
  serve::JobSpec j = tmv_job(name);
  j.inject = true;
  j.fault.crash_at_step = 3;
  return j;
}

serve::JobSpec wedging_job(const std::string& name) {
  serve::JobSpec j = tmv_job(name);
  j.inject = true;
  j.fault.wedge_worker = true;
  j.max_attempts = 1;
  return j;
}

/// Process-isolated options pointing the supervisor at the real
/// cudanp-cc binary (the test binary itself has no --worker mode).
serve::ServiceOptions isolated_options() {
  serve::ServiceOptions opt;
  opt.isolate = serve::IsolationMode::kProcess;
  opt.worker_cmd = {CUDANP_CC_PATH, "--worker"};
  return opt;
}

serve::ServiceReport run_batch(const std::vector<serve::JobSpec>& jobs,
                               serve::ServiceOptions opt) {
  serve::BatchService service(sim::DeviceSpec::gtx680(), opt);
  return service.run(jobs);
}

/// ctest runs suites in parallel processes: every temp path must be
/// pid-unique, and journals are created O_EXCL by the writer itself.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "cudanp_sup_" +
         std::to_string(::getpid()) + "_" + name;
}

// ---------------------------------------------------------------------
// Crash isolation.

TEST(Supervisor, NativeCrashDegradesInsteadOfKillingTheBatch) {
  // In-process this SIGSEGV would take the whole test runner down; the
  // worker sandbox must convert it into a structured kCrash degradation
  // while neighbouring jobs succeed untouched.
  auto report = run_batch(
      {tmv_job("a"), crashing_job("boom"), tmv_job("b")},
      isolated_options());
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.jobs[0].state, serve::JobState::kSucceeded);
  EXPECT_EQ(report.jobs[2].state, serve::JobState::kSucceeded);

  const serve::JobResult& boom = report.jobs[1];
  EXPECT_EQ(boom.state, serve::JobState::kDegraded);
  EXPECT_EQ(boom.cause, "crash");
  EXPECT_EQ(boom.chosen_config, "baseline");
  EXPECT_GT(boom.crashed_attempts, 0);
  ASSERT_FALSE(boom.quarantined.empty());
  EXPECT_EQ(boom.quarantined.front().cause, np::FailureCause::kCrash);
  EXPECT_NE(boom.quarantined.front().detail.find("signal"),
            std::string::npos)
      << boom.quarantined.front().detail;
  EXPECT_GT(report.crashes, 0u);
}

TEST(Supervisor, CrashIsTransientAndRetried) {
  // kCrash is a transient cause: the job gets its full attempt budget,
  // each on a fresh worker (the persistent fault crashes every one).
  serve::JobSpec j = crashing_job("boom");
  j.max_attempts = 3;
  auto report = run_batch({j}, isolated_options());
  EXPECT_EQ(report.jobs[0].attempts, 3);
  EXPECT_EQ(report.jobs[0].crashed_attempts, 3);
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_EQ(report.retries, 2u);
}

TEST(Supervisor, ReportBitIdenticalAcrossIsolationModes) {
  // The isolation mode is an execution detail: a batch that does not
  // crash must produce the same bytes either way.
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), tmv_job("b")};
  serve::JobSpec flaky = tmv_job("flaky");
  flaky.inject = true;
  flaky.fault.sim_error_at_step = 5;
  flaky.transient_attempts = 1;
  jobs.push_back(flaky);

  serve::ServiceOptions in_process;
  auto a = run_batch(jobs, in_process);
  auto b = run_batch(jobs, isolated_options());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.json(), b.json());
}

TEST(Supervisor, CrashingBatchBitIdenticalAcrossJobCounts) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), crashing_job("boom"),
                                      tmv_job("b"), crashing_job("boom2"),
                                      tmv_job("c")};
  serve::ServiceOptions opt = isolated_options();
  opt.jobs = 1;
  auto serial = run_batch(jobs, opt);
  opt.jobs = 4;
  auto parallel = run_batch(jobs, opt);
  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_EQ(serial.json(), parallel.json());
}

TEST(Supervisor, UnlaunchableWorkerIsAStructuredCrashNotAHang) {
  // exec of the worker binary fails: the child _exits 127 (the shell
  // convention), which the supervisor reaps into a deterministic
  // structured crash — the batch completes degraded, never hangs.
  serve::ServiceOptions opt = isolated_options();
  opt.worker_cmd = {"/nonexistent/cudanp-worker", "--worker"};
  auto report = run_batch({tmv_job("a")}, opt);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, serve::JobState::kDegraded);
  EXPECT_EQ(report.jobs[0].cause, "crash");
  ASSERT_FALSE(report.jobs[0].quarantined.empty());
  EXPECT_EQ(report.jobs[0].quarantined.front().detail,
            "worker exited with status 127");
}

// ---------------------------------------------------------------------
// Read-timeout regression: a worker that stops responding mid-job.

TEST(Supervisor, WedgedWorkerTripsReadTimeoutNotForever) {
  // The worker takes the job and then goes silent — no heartbeat, no
  // result, no exit. Every blocking supervisor read has a deadline, so
  // the batch must finish (well inside the ctest timeout) with the
  // wedged job degraded as a crash.
  serve::ServiceOptions opt = isolated_options();
  opt.worker_read_timeout_ms = 500;
  opt.worker_heartbeat_ms = 50;
  auto report =
      run_batch({wedging_job("stuck"), tmv_job("after")}, opt);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, serve::JobState::kDegraded);
  EXPECT_EQ(report.jobs[0].cause, "crash");
  ASSERT_FALSE(report.jobs[0].quarantined.empty());
  EXPECT_NE(
      report.jobs[0].quarantined.front().detail.find("unresponsive"),
      std::string::npos)
      << report.jobs[0].quarantined.front().detail;
  // The slot was reclaimed: the next job ran on a fresh worker.
  EXPECT_EQ(report.jobs[1].state, serve::JobState::kSucceeded);
}

TEST(Supervisor, SlowButAliveWorkerIsNotKilled) {
  // Heartbeats arrive faster than the read timeout, so a job that takes
  // longer than one timeout interval still completes.
  serve::ServiceOptions opt = isolated_options();
  opt.worker_read_timeout_ms = 300;
  opt.worker_heartbeat_ms = 50;
  serve::JobSpec big = tmv_job("big");
  big.elems = 4096;
  big.tb = 64;
  auto report = run_batch({big}, opt);
  EXPECT_EQ(report.jobs[0].state, serve::JobState::kSucceeded)
      << report.str();
  EXPECT_EQ(report.crashes, 0u);
}

// ---------------------------------------------------------------------
// Resource limits.

TEST(Supervisor, MemoryCapSurfacesAsResourceLimit) {
  serve::ServiceOptions opt = isolated_options();
  opt.worker_mem_mb = 512;
  serve::JobSpec fat = tmv_job("fat");
  fat.inject = true;
  fat.fault.oom_mb = 4096;  // far past the cap
  fat.max_attempts = 3;
  auto report = run_batch({fat, tmv_job("thin")}, opt);
  ASSERT_EQ(report.jobs.size(), 2u);
  const serve::JobResult& r = report.jobs[0];
  EXPECT_EQ(r.state, serve::JobState::kDegraded);
  EXPECT_EQ(r.cause, "resource-limit");
  // Deterministic for a given cap: never retried.
  EXPECT_EQ(r.attempts, 1);
  ASSERT_FALSE(r.quarantined.empty());
  EXPECT_EQ(r.quarantined.front().cause,
            np::FailureCause::kResourceLimit);
  EXPECT_EQ(report.resource_limited, 1u);
  EXPECT_EQ(report.crashes, 0u);
  // A modest job under the same cap is unaffected.
  EXPECT_EQ(report.jobs[1].state, serve::JobState::kSucceeded);
}

TEST(Supervisor, ResourceLimitFeedsTheBreaker) {
  // Non-transient and breaker-eligible: repeat offenders open the
  // breaker exactly like any other persistent failure.
  serve::ServiceOptions opt = isolated_options();
  opt.worker_mem_mb = 512;
  opt.breaker.failure_threshold = 2;
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    serve::JobSpec j = tmv_job("fat" + std::to_string(i));
    j.inject = true;
    j.fault.oom_mb = 4096;
    jobs.push_back(j);
  }
  auto report = run_batch(jobs, opt);
  EXPECT_GT(report.breaker_opens, 0u);
  bool routed = false;
  for (const auto& j : report.jobs) routed |= j.breaker_routed;
  EXPECT_TRUE(routed) << report.str();
}

TEST(Supervisor, OomProbeIsHarmlessWithoutACap) {
  serve::ServiceOptions opt = isolated_options();
  serve::JobSpec j = tmv_job("probe");
  j.inject = true;
  j.fault.oom_mb = 64;  // allocatable: probe succeeds, job is clean
  auto report = run_batch({j}, opt);
  EXPECT_EQ(report.jobs[0].state, serve::JobState::kSucceeded)
      << report.str();
  EXPECT_EQ(report.resource_limited, 0u);
}

// ---------------------------------------------------------------------
// Write-ahead journal and resume.

TEST(Journal, UninterruptedJournaledRunMatchesUnjournaled) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), crashing_job("boom"),
                                      tmv_job("b")};
  serve::ServiceOptions opt = isolated_options();
  auto plain = run_batch(jobs, opt);

  std::string path = temp_path("j_uninterrupted.log");
  opt.journal_path = path;
  opt.commit_chunk = 1;
  auto journaled = run_batch(jobs, opt);
  EXPECT_EQ(plain.str(), journaled.str());
  EXPECT_EQ(plain.json(), journaled.json());
  std::remove(path.c_str());
}

TEST(Journal, ResumeReplaysCompletedJobsWithoutReexecution) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), tmv_job("b"),
                                      crashing_job("boom"), tmv_job("c")};
  std::string path = temp_path("j_replay.log");
  serve::ServiceOptions opt = isolated_options();
  opt.journal_path = path;
  opt.commit_chunk = 1;
  auto full = run_batch(jobs, opt);

  // Truncate the journal to the header + first two records — as if the
  // batch had been SIGKILL'd after committing two jobs.
  std::ifstream in(path);
  std::string line, kept;
  for (int i = 0; i < 3 && std::getline(in, line); ++i)
    kept += line + "\n";
  in.close();
  std::remove(path.c_str());
  std::ofstream(path) << kept;

  opt.resume = true;
  auto resumed = run_batch(jobs, opt);
  EXPECT_EQ(full.str(), resumed.str());
  EXPECT_EQ(full.json(), resumed.json());
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsDiscardedAndReexecuted) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), tmv_job("b")};
  std::string path = temp_path("j_torn.log");
  serve::ServiceOptions opt = isolated_options();
  opt.journal_path = path;
  opt.commit_chunk = 1;
  auto full = run_batch(jobs, opt);

  // Chop the final record mid-line: a SIGKILL during append.
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::size_t cut = text.rfind("\"success\"");
  ASSERT_NE(cut, std::string::npos);
  std::remove(path.c_str());
  std::ofstream(path) << text.substr(0, cut);

  std::string error;
  auto contents = serve::load_journal(path, &error);
  ASSERT_TRUE(contents.has_value()) << error;
  EXPECT_EQ(contents->records.size(), 1u);  // torn record dropped
  EXPECT_LT(static_cast<std::size_t>(contents->valid_bytes), text.size());

  opt.resume = true;
  auto resumed = run_batch(jobs, opt);
  EXPECT_EQ(full.str(), resumed.str());
  std::remove(path.c_str());
}

TEST(Journal, HeaderOnlyJournalResumesFromScratch) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a")};
  serve::ServiceOptions opt = isolated_options();
  auto full = run_batch(jobs, opt);

  std::string path = temp_path("j_header.log");
  std::string error;
  {
    auto w = serve::JournalWriter::create(
        path, serve::batch_fingerprint(jobs, opt), &error);
    ASSERT_TRUE(w.has_value()) << error;
  }
  opt.journal_path = path;
  opt.resume = true;
  auto resumed = run_batch(jobs, opt);
  EXPECT_EQ(full.str(), resumed.str());
  std::remove(path.c_str());
}

TEST(Journal, ResumeAgainstDifferentBatchThrowsMismatch) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a")};
  std::string path = temp_path("j_mismatch.log");
  serve::ServiceOptions opt = isolated_options();
  opt.journal_path = path;
  (void)run_batch(jobs, opt);

  opt.resume = true;
  std::vector<serve::JobSpec> other = {tmv_job("renamed")};
  EXPECT_THROW((void)run_batch(other, opt), serve::ResumeMismatchError);
  // Changed determinism-relevant options also mismatch.
  serve::ServiceOptions tweaked = opt;
  tweaked.attempt_cost_ms = 99;
  EXPECT_THROW((void)run_batch(jobs, tweaked),
               serve::ResumeMismatchError);
  std::remove(path.c_str());
}

TEST(Journal, MissingJournalOnResumeStartsFresh) {
  // Killed before the header landed (or never ran): resume is a fresh
  // run, not an error — the recovery loop must converge.
  std::vector<serve::JobSpec> jobs = {tmv_job("a")};
  serve::ServiceOptions opt = isolated_options();
  auto full = run_batch(jobs, opt);
  std::string path = temp_path("j_missing.log");
  opt.journal_path = path;
  opt.resume = true;
  auto resumed = run_batch(jobs, opt);
  EXPECT_EQ(full.str(), resumed.str());
  std::remove(path.c_str());
}

TEST(Journal, FingerprintIgnoresJobsCountAndCommitChunk) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a")};
  serve::ServiceOptions a;
  serve::ServiceOptions b;
  b.jobs = 8;
  b.commit_chunk = 1;
  EXPECT_EQ(serve::batch_fingerprint(jobs, a),
            serve::batch_fingerprint(jobs, b));
  b.worker_mem_mb = 512;  // outcome-relevant: must change the print
  EXPECT_NE(serve::batch_fingerprint(jobs, a),
            serve::batch_fingerprint(jobs, b));
}

TEST(Journal, FuzzTruncateAtEveryByteOfLastTwoRecords) {
  // A crash can cut the journal at ANY byte. For every truncation point
  // inside the last two records (including cutting a line mid-JSON and
  // cutting exactly at a boundary), resume must replay the intact
  // prefix and re-execute the rest, reproducing the uninterrupted
  // report byte-for-byte — never fabricating an outcome from a torn
  // line. In-process jobs keep the loop hot: the journal logic under
  // test is identical across isolation modes.
  serve::JobSpec flaky = tmv_job("flaky");
  flaky.inject = true;
  flaky.fault.sim_error_at_step = 5;  // persistent: degrades to baseline
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), flaky, tmv_job("c")};

  test::ScopedTempDir tmp("cudanp_jfuzz");
  const std::string path = tmp.file("j.log");
  serve::ServiceOptions opt;
  opt.journal_path = path;
  opt.commit_chunk = 1;
  auto full = run_batch(jobs, opt);
  const std::string full_text = full.str();
  const std::string full_json = full.json();

  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Line start offsets: header, then one line per record.
  std::vector<std::size_t> starts = {0};
  for (std::size_t i = 0; i + 1 < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  ASSERT_EQ(starts.size(), 1u + jobs.size());
  const std::size_t fuzz_from = starts[starts.size() - 2];

  for (std::size_t cut = fuzz_from; cut <= text.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(text.data(), static_cast<std::streamsize>(cut));
    }
    std::string error;
    auto contents = serve::load_journal(path, &error);
    ASSERT_TRUE(contents.has_value()) << "cut=" << cut << ": " << error;
    // Only whole intact records may load, in order — a torn tail is
    // dropped, never parsed into a fabricated outcome.
    ASSERT_LE(contents->records.size(), jobs.size()) << "cut=" << cut;
    ASSERT_LE(contents->valid_bytes, static_cast<std::int64_t>(cut))
        << "cut=" << cut;
    for (std::size_t i = 0; i < contents->records.size(); ++i)
      ASSERT_EQ(contents->records[i].k, i) << "cut=" << cut;

    serve::ServiceOptions ropt = opt;
    ropt.resume = true;
    auto resumed = run_batch(jobs, ropt);
    ASSERT_TRUE(resumed.str() == full_text) << "cut=" << cut;
    ASSERT_TRUE(resumed.json() == full_json) << "cut=" << cut;
  }
}

TEST(Journal, CommitChunkCannotAffectTheReport) {
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < 7; ++i) jobs.push_back(tmv_job("j" + std::to_string(i)));
  jobs.push_back(crashing_job("boom"));
  serve::ServiceOptions opt = isolated_options();
  std::string p1 = temp_path("j_chunk1.log");
  std::string p3 = temp_path("j_chunk3.log");
  opt.journal_path = p1;
  opt.commit_chunk = 1;
  auto one = run_batch(jobs, opt);
  opt.journal_path = p3;
  opt.commit_chunk = 3;
  auto three = run_batch(jobs, opt);
  EXPECT_EQ(one.str(), three.str());
  EXPECT_EQ(one.json(), three.json());
  std::remove(p1.c_str());
  std::remove(p3.c_str());
}

// ---------------------------------------------------------------------
// JSON round trips: every wire/journal/report type must satisfy
// parse(str(x)) == x for every terminal state.

TEST(RoundTrip, ServiceReportSurvivesJsonForEveryTerminalState) {
  // One batch exercising succeeded, succeeded-after-retry, degraded
  // (crash + resource-limit), and rejected.
  serve::JobSpec flaky = tmv_job("flaky");
  flaky.inject = true;
  flaky.fault.sim_error_at_step = 5;
  flaky.transient_attempts = 1;
  serve::JobSpec broken = tmv_job("broken");
  broken.source = "__global__ void oops(";
  serve::JobSpec fat = tmv_job("fat");
  fat.inject = true;
  fat.fault.oom_mb = 4096;
  serve::ServiceOptions opt = isolated_options();
  opt.worker_mem_mb = 512;
  auto report = run_batch(
      {tmv_job("a"), flaky, crashing_job("boom"), broken, fat}, opt);
  EXPECT_GT(report.crashes, 0u);
  EXPECT_GT(report.resource_limited, 0u);

  auto parsed = serve::ServiceReport::from_json(report.json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->json(), report.json());
  EXPECT_EQ(parsed->str(), report.str());
}

TEST(RoundTrip, JobOutcomeSurvivesJson) {
  serve::JobOutcome o;
  o.ran = true;
  o.success = false;
  o.rejected = false;
  o.attempts = 3;
  o.crashed_attempts = 2;
  o.virtual_ms = 145;
  o.deadline_exceeded = true;
  o.deadline_ms = 150;
  o.breaker_key = "tmv";
  o.decision.kernel = "tmv";
  o.decision.used_baseline = true;
  np::VariantFailure f;
  f.kernel = "tmv";
  f.config = "worker";
  f.cause = np::FailureCause::kCrash;
  f.detail = "worker killed by signal 11";
  o.decision.quarantined.push_back(f);
  auto parsed = serve::JobOutcome::from_json(o.json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->json(), o.json());
}

TEST(RoundTrip, JournalRecordsSurviveLoad) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), crashing_job("boom")};
  std::string path = temp_path("j_roundtrip.log");
  serve::ServiceOptions opt = isolated_options();
  opt.journal_path = path;
  opt.commit_chunk = 1;
  (void)run_batch(jobs, opt);

  std::string error;
  auto contents = serve::load_journal(path, &error);
  ASSERT_TRUE(contents.has_value()) << error;
  EXPECT_EQ(contents->fingerprint, serve::batch_fingerprint(jobs, opt));
  ASSERT_EQ(contents->records.size(), 2u);
  // Loaded outcomes re-serialize to the exact bytes that were appended.
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  for (const auto& rec : contents->records) {
    std::getline(in, line);
    EXPECT_EQ(line, "{\"k\":" + std::to_string(rec.k) +
                        ",\"outcome\":" + rec.outcome.json() + "}");
  }
  std::remove(path.c_str());
}

TEST(RoundTrip, WireTypesSurviveJson) {
  serve::AttemptRequest req;
  req.source = kTmv;
  req.kernel = "tmv";
  req.elems = 64;
  req.tb = 16;
  req.device = "k20c";
  req.sm_version = 35;
  req.max_steps = 1 << 20;
  req.corrupt_ast = true;
  req.hook_faults = true;
  req.fault.seed = 77;
  req.fault.crash_at_step = 9;
  req.fault.oom_mb = 12;
  req.fault.wedge_worker = true;
  req.error_limit = 5;
  req.portable_races = true;
  req.dedupe = false;
  req.f32_rel_tol = 2.5e-4;
  req.heartbeat_ms = 125;
  auto req2 = serve::AttemptRequest::from_json(req.json());
  ASSERT_TRUE(req2.has_value());
  EXPECT_EQ(req2->json(), req.json());

  serve::AttemptResult res;
  res.rejected = true;
  res.reject_cause = "compile-error";
  res.reject_detail = "line 1: expected ')'";
  res.kernel_name = "tmv";
  auto res2 = serve::AttemptResult::from_json(res.json());
  ASSERT_TRUE(res2.has_value());
  EXPECT_EQ(res2->json(), res.json());
}

TEST(RoundTrip, EnumSlugsReverse) {
  using serve::IsolationMode;
  using serve::JobState;
  for (JobState s :
       {JobState::kSucceeded, JobState::kSucceededAfterRetry,
        JobState::kDegraded, JobState::kRejected})
    EXPECT_EQ(serve::job_state_from_string(serve::to_string(s)), s);
  for (IsolationMode m : {IsolationMode::kNone, IsolationMode::kProcess})
    EXPECT_EQ(serve::isolation_mode_from_string(serve::to_string(m)), m);
  for (np::FailureCause c :
       {np::FailureCause::kCrash, np::FailureCause::kResourceLimit})
    EXPECT_EQ(np::failure_cause_from_string(np::to_string(c)), c);
  EXPECT_FALSE(serve::job_state_from_string("nope").has_value());
  EXPECT_FALSE(serve::isolation_mode_from_string("vm").has_value());
}

// ---------------------------------------------------------------------
// Wire protocol plumbing.

TEST(Wire, FramesRoundTripThroughAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(serve::write_frame(fds[1], serve::kFrameJob, "payload"));
  serve::Frame f;
  ASSERT_EQ(serve::read_frame(fds[0], &f, 1000),
            serve::ReadStatus::kOk);
  EXPECT_EQ(f.type, serve::kFrameJob);
  EXPECT_EQ(f.payload, "payload");
  close(fds[1]);
  EXPECT_EQ(serve::read_frame(fds[0], &f, 1000),
            serve::ReadStatus::kEof);
  close(fds[0]);
}

TEST(Wire, ReadTimesOutOnASilentPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  serve::Frame f;
  EXPECT_EQ(serve::read_frame(fds[0], &f, 50),
            serve::ReadStatus::kTimeout);
  close(fds[0]);
  close(fds[1]);
}

TEST(Wire, OversizedFrameIsAnErrorNotAnAllocation) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Hand-craft a header claiming a payload beyond kMaxFramePayload.
  unsigned char hdr[5];
  hdr[0] = static_cast<unsigned char>(serve::kFrameResult);
  std::uint32_t n = serve::kMaxFramePayload + 1;
  hdr[1] = n & 0xff;
  hdr[2] = (n >> 8) & 0xff;
  hdr[3] = (n >> 16) & 0xff;
  hdr[4] = (n >> 24) & 0xff;
  ASSERT_EQ(write(fds[1], hdr, sizeof(hdr)),
            static_cast<ssize_t>(sizeof(hdr)));
  serve::Frame f;
  EXPECT_EQ(serve::read_frame(fds[0], &f, 1000),
            serve::ReadStatus::kError);
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace cudanp
