// Source-to-source round trip: the transformed kernel is *emitted as
// CUDA-like source text*, re-parsed, and re-executed — it must still
// reproduce the CPU reference. This pins down that the printer emits
// exactly the semantics the transformer produced (the property a real
// source-to-source compiler like CUDA-NP/Cetus must have).
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "kernels/benchmark.hpp"
#include "np/autotuner.hpp"

namespace cudanp {
namespace {

struct RoundTripCase {
  std::string benchmark;
  ir::NpType np_type;
  int slave_size;
};

std::string case_name(const ::testing::TestParamInfo<RoundTripCase>& info) {
  return info.param.benchmark +
         (info.param.np_type == ir::NpType::kIntraWarp ? "Intra" : "Inter") +
         "S" + std::to_string(info.param.slave_size);
}

class TransformRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TransformRoundTrip, EmittedSourceReExecutesCorrectly) {
  const auto& param = GetParam();
  auto bench = kernels::make_benchmark(param.benchmark, 0.05);
  auto probe = bench->make_workload();

  transform::NpConfig cfg;
  cfg.np_type = param.np_type;
  cfg.slave_size = param.slave_size;
  cfg.master_count = static_cast<int>(probe.launch.block.count());
  if (cfg.block_threads() > 1024) GTEST_SKIP() << "block too large";

  auto variant = np::NpCompiler::transform(bench->kernel(), cfg);

  // Emit source, re-parse, and swap the re-parsed kernel into the result.
  std::string emitted = ir::print_kernel(*variant.kernel);
  auto reparsed = frontend::parse_program_or_throw(emitted);
  ASSERT_EQ(reparsed->kernels.size(), 1u);
  variant.kernel = std::move(reparsed->kernels.front());

  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto w = bench->make_workload();
  auto run = runner.execute(np::ExecutionRequest::transformed(variant, w)).run;
  EXPECT_GT(run.timing.seconds, 0.0);
  std::string msg;
  EXPECT_TRUE(w.validate(*w.mem, &msg)) << msg << "\n--- emitted ---\n"
                                        << emitted;
}

std::vector<RoundTripCase> cases() {
  std::vector<RoundTripCase> out;
  for (const auto& name : kernels::benchmark_names()) {
    out.push_back({name, ir::NpType::kInterWarp, 4});
    out.push_back({name, ir::NpType::kIntraWarp, 8});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TransformRoundTrip,
                         ::testing::ValuesIn(cases()), case_name);

}  // namespace
}  // namespace cudanp
