// Symbolic equivalence certification: the arena's normalization algebra,
// verdicts on tiny kernels and on every paper benchmark, refutation of
// deliberately corrupted variants, certificate serialization, and the
// compiler integration (kProvenWrong quarantine + certified fast path).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "frontend/parser.hpp"
#include "kernels/benchmark.hpp"
#include "np/certifier.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/fault.hpp"
#include "sim/symexec.hpp"

namespace cudanp {
namespace {

using np::Certificate;
using np::Certifier;
using np::CertifyOptions;
using np::NpCompiler;
using np::Verdict;
using transform::NpConfig;

constexpr double kTestScale = 0.08;

// ---------------------------------------------------------------------
// floats_close: mixed absolute/relative tolerance (satellite of the
// certification PR — the same comparator backs cross-checks & replays).

TEST(FloatsClose, AbsoluteRegimeNearZero) {
  // Tiny magnitudes: relative error is meaningless, the absolute term
  // must carry the comparison.
  EXPECT_TRUE(np::floats_close(0.0f, 5e-5f, 1e-4, 1e-3));
  EXPECT_TRUE(np::floats_close(-4e-5f, 4e-5f, 1e-4, 1e-3));
  EXPECT_FALSE(np::floats_close(0.0f, 3e-4f, 1e-4, 1e-3));
}

TEST(FloatsClose, RelativeRegimeLargeMagnitude) {
  // Large magnitudes: the absolute term alone would reject reassociated
  // reductions; the relative term must scale with the operands.
  EXPECT_TRUE(np::floats_close(1000.0f, 1000.9f, 1e-4, 1e-3));
  EXPECT_FALSE(np::floats_close(1000.0f, 1002.5f, 1e-4, 1e-3));
  EXPECT_TRUE(np::floats_close(-1000.0f, -1000.9f, 1e-4, 1e-3));
}

TEST(FloatsClose, NanMatchesNanOnly) {
  float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(np::floats_close(nan, nan, 1e-4, 1e-3));
  EXPECT_FALSE(np::floats_close(nan, 1.0f, 1e-4, 1e-3));
  EXPECT_FALSE(np::floats_close(1.0f, nan, 1e-4, 1e-3));
}

// ---------------------------------------------------------------------
// SymArena: constant folding and normalization algebra.

TEST(SymArena, FoldsIntConstants) {
  sim::SymArena a;
  EXPECT_EQ(a.bin(ir::BinOp::kAdd, a.cint(2), a.cint(3)), a.cint(5));
  EXPECT_EQ(a.bin(ir::BinOp::kMul, a.cint(-4), a.cint(6)), a.cint(-24));
  EXPECT_EQ(a.bin(ir::BinOp::kDiv, a.cint(7), a.cint(2)), a.cint(3));
}

TEST(SymArena, FoldsFloatsThroughF32) {
  sim::SymArena a;
  // The fold must replicate interpreter arithmetic: round through f32.
  float expect = 0.1f + 0.2f;
  EXPECT_EQ(a.bin(ir::BinOp::kAdd, a.cfloat(0.1), a.cfloat(0.2)),
            a.cfloat(static_cast<double>(expect)));
}

TEST(SymArena, IntDivByZeroFaults) {
  sim::SymArena a;
  EXPECT_THROW((void)a.bin(ir::BinOp::kDiv, a.cint(1), a.cint(0)),
               sim::SymFault);
}

TEST(SymArena, NormalizeIsReassociationInvariant) {
  sim::SymArena a;
  auto x = a.input(0, 0, ir::ScalarType::kFloat);
  auto y = a.input(0, 1, ir::ScalarType::kFloat);
  auto z = a.input(0, 2, ir::ScalarType::kFloat);
  auto left = a.bin(ir::BinOp::kAdd, a.bin(ir::BinOp::kAdd, x, y), z);
  auto right = a.bin(ir::BinOp::kAdd, x, a.bin(ir::BinOp::kAdd, y, z));
  EXPECT_NE(left, right);  // raw DAGs differ
  EXPECT_EQ(a.normalize(left), a.normalize(right));
}

TEST(SymArena, NormalizeIsCommutationInvariant) {
  sim::SymArena a;
  auto x = a.input(0, 0, ir::ScalarType::kFloat);
  auto y = a.input(0, 1, ir::ScalarType::kFloat);
  EXPECT_EQ(a.normalize(a.bin(ir::BinOp::kMul, x, y)),
            a.normalize(a.bin(ir::BinOp::kMul, y, x)));
}

TEST(SymArena, NormalizeRewritesSubIntoAddNeg) {
  sim::SymArena a;
  auto x = a.input(0, 0, ir::ScalarType::kFloat);
  auto y = a.input(0, 1, ir::ScalarType::kFloat);
  auto sub = a.bin(ir::BinOp::kSub, x, y);
  auto addneg = a.bin(ir::BinOp::kAdd, x,
                      a.bin(ir::BinOp::kMul, a.cint(-1), y));
  EXPECT_EQ(a.normalize(sub), a.normalize(addneg));
}

TEST(SymArena, NormalizeRewritesSelectOverLessIntoMin) {
  sim::SymArena a;
  auto x = a.input(0, 0, ir::ScalarType::kFloat);
  auto y = a.input(0, 1, ir::ScalarType::kFloat);
  auto sel = a.select(a.bin(ir::BinOp::kLt, x, y), x, y);
  auto fmin = a.call(sim::SymFn::kFminf, {x, y});
  EXPECT_EQ(a.normalize(sel), a.normalize(fmin));
  auto selmax = a.select(a.bin(ir::BinOp::kLt, x, y), y, x);
  auto fmax = a.call(sim::SymFn::kFmaxf, {x, y});
  EXPECT_EQ(a.normalize(selmax), a.normalize(fmax));
}

// ---------------------------------------------------------------------
// Certificate serialization.

TEST(Certificate, JsonRoundTripIsExact) {
  Certificate c;
  c.kernel = "tmv";
  c.config = "inter-warp slave=4 \"quoted\"";
  c.verdict = Verdict::kRefuted;
  c.counterexample_seed = 3;
  c.geometry = "grid 2x1x1 block 8x1x1";
  c.detail = "output 'c[0]' differs: line1\nline2";
  auto back = Certificate::from_json(c.json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->json(), c.json());
  EXPECT_EQ(back->verdict, Verdict::kRefuted);
  EXPECT_EQ(back->counterexample_seed, 3u);
  EXPECT_EQ(back->detail, c.detail);
  EXPECT_FALSE(Certificate::from_json("{\"verdict\":\"bogus\"}").has_value());
  EXPECT_FALSE(Certificate::from_json("not json").has_value());
}

TEST(Certificate, VerdictStringsRoundTrip) {
  for (Verdict v : {Verdict::kProven, Verdict::kProvenModuloReassoc,
                    Verdict::kRefuted, Verdict::kInconclusive}) {
    auto back = np::verdict_from_string(np::to_string(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(np::verdict_from_string("almost-proven").has_value());
}

// ---------------------------------------------------------------------
// Certifying small hand-written kernels.

constexpr const char* kDotSrc = R"(
__global__ void k(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

ir::Kernel& parse_kernel(std::unique_ptr<ir::Program>& holder,
                         const char* src) {
  holder = frontend::parse_program_or_throw(src);
  return *holder->find_kernel("k");
}

TEST(Certifier, ProvesNpReductionVariants) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  Certifier certifier(spec);
  int proven = 0;
  for (const auto& cfg : NpCompiler::enumerate_configs(kernel, 8, spec)) {
    SCOPED_TRACE(cfg.describe());
    transform::TransformResult variant;
    try {
      variant = NpCompiler::transform(kernel, cfg);
    } catch (const CompileError&) {
      continue;  // configuration legitimately inapplicable
    }
    Certificate cert = certifier.certify_variant(kernel, variant, factory);
    EXPECT_TRUE(cert.proven()) << cert.str();
    proven += cert.proven() ? 1 : 0;
  }
  EXPECT_GT(proven, 0);
}

TEST(Certifier, SkewedStoreIndexIsRefutedWithReplay) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  auto configs = NpCompiler::enumerate_configs(kernel, 8, spec);
  ASSERT_FALSE(configs.empty());
  int refuted = 0;
  for (const auto& cfg : configs) {
    transform::TransformResult variant;
    try {
      variant = NpCompiler::transform(kernel, cfg);
    } catch (const CompileError&) {
      continue;
    }
    SCOPED_TRACE(cfg.describe());
    sim::FaultPlan plan;
    plan.skew_index = true;
    sim::FaultInjector injector(plan);
    ASSERT_TRUE(injector.corrupt_kernel(*variant.kernel));
    Certificate cert =
        Certifier(spec).certify_variant(kernel, variant, factory);
    // A skewed store lands out of bounds or on the wrong cell; either
    // way the certifier may only call it refuted with interpreter
    // evidence — and must never call it proven.
    EXPECT_FALSE(cert.proven()) << cert.str();
    if (cert.verdict == Verdict::kRefuted) {
      ++refuted;
      EXPECT_NE(cert.detail.find("replay"), std::string::npos) << cert.str();
    }
  }
  EXPECT_GT(refuted, 0);
}

TEST(Certifier, DroppedBarrierIsFlaggedOnTheCertificate) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  // 16-thread baseline so slave-sliced blocks span several warps: a
  // dropped __syncthreads in a single-warp block is invisible (warps
  // are lockstep), so only multi-warp variants make a meaningful test.
  auto factory = [&] { return np::make_synthetic_workload(kernel, 16, 16); };
  auto spec = sim::DeviceSpec::gtx680();
  int corrupted = 0;
  for (const auto& cfg : NpCompiler::enumerate_configs(kernel, 16, spec)) {
    transform::TransformResult variant;
    try {
      variant = NpCompiler::transform(kernel, cfg);
    } catch (const CompileError&) {
      continue;
    }
    if (variant.block_dims.count() <= 32) continue;  // single warp
    SCOPED_TRACE(cfg.describe());
    sim::FaultPlan plan;
    plan.drop_barrier = true;
    sim::FaultInjector injector(plan);
    if (!injector.corrupt_kernel(*variant.kernel))
      continue;  // this variant has no barrier to drop
    ++corrupted;
    Certificate cert =
        Certifier(spec).certify_variant(kernel, variant, factory);
    // Under the simulator's lockstep contract a dropped barrier leaves
    // the values bit-identical (the documented execution model orders
    // the handoff deterministically), so the verdict stays a proof —
    // but the certificate must carry the portable-model race note so
    // the hazard is never silently absorbed.
    if (cert.proven())
      EXPECT_NE(cert.detail.find("portable-model race"), std::string::npos)
          << cert.str();
  }
  EXPECT_GT(corrupted, 0);
}

// ---------------------------------------------------------------------
// The headline guarantee: every paper benchmark certifies as equivalent
// (exactly, or modulo float reassociation) under every applicable NP
// configuration.

class BenchmarkCertification : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkCertification, EveryNpVariantIsProven) {
  // Proofs are per-workload-shape, so certify at a reduced scale: the
  // expression DAGs grow with the iteration count, and the full test
  // scale proves the same structure at several times the cost.
  constexpr double kCertifyScale = 0.02;
  auto bench = kernels::make_benchmark(GetParam(), kCertifyScale);
  auto spec = sim::DeviceSpec::gtx680();
  auto factory = [&] { return bench->make_workload(); };
  auto probe = bench->make_workload();
  auto configs = NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()), spec);
  ASSERT_FALSE(configs.empty());
  Certifier certifier(spec);
  int certified = 0;
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.describe());
    transform::TransformResult variant;
    try {
      variant = NpCompiler::transform(bench->kernel(), cfg);
    } catch (const CompileError&) {
      continue;  // configuration legitimately inapplicable
    }
    Certificate cert =
        certifier.certify_variant(bench->kernel(), variant, factory);
    EXPECT_TRUE(cert.proven()) << cert.str();
    certified += cert.proven() ? 1 : 0;
  }
  EXPECT_GT(certified, 0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkCertification,
                         ::testing::ValuesIn(kernels::benchmark_names()));

// ---------------------------------------------------------------------
// Compiler integration: kProvenWrong quarantine and the certified fast
// path.

TEST(CompilerCertification, ValidateRecordsVerdicts) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  np::ValidationOptions opt;
  opt.certify = true;
  auto configs = NpCompiler::enumerate_configs(kernel, 8, spec);
  auto report = NpCompiler::validate(kernel, configs, factory, spec, opt);
  ASSERT_FALSE(report.entries.empty());
  for (const auto& e : report.entries) {
    if (!e.transform_ok) continue;
    EXPECT_TRUE(e.verdict == "proven" || e.verdict == "proven-modulo-reassoc")
        << e.config << ": " << e.verdict << " (" << e.verdict_detail << ")";
  }
}

TEST(CompilerCertification, RefutedCertificateQuarantinesBeforeAnyRun) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  auto configs = NpCompiler::enumerate_configs(kernel, 8, spec);
  ASSERT_FALSE(configs.empty());

  np::ValidationOptions opt;
  opt.certify = true;
  // A provider that swears every variant is proven wrong: the compiler
  // must quarantine them all (kProvenWrong) and fall back to baseline
  // without ever spawning a variant run.
  opt.certificates.load = [](const std::string& config) {
    Certificate c;
    c.config = config;
    c.verdict = Verdict::kRefuted;
    c.counterexample_seed = 7;
    c.detail = "cached refutation";
    return std::optional<Certificate>(c);
  };
  auto result =
      NpCompiler::compile_with_fallback(kernel, configs, factory, spec, opt);
  EXPECT_TRUE(result.decision.used_baseline);
  ASSERT_FALSE(result.decision.quarantined.empty());
  for (const auto& f : result.decision.quarantined) {
    EXPECT_EQ(f.cause, np::FailureCause::kProvenWrong) << f.str();
    EXPECT_NE(f.detail.find("counterexample seed 7"), std::string::npos)
        << f.detail;
  }
}

TEST(CompilerCertification, ProviderSavesFreshCertificates) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  auto configs = NpCompiler::enumerate_configs(kernel, 8, spec);

  std::map<std::string, Certificate> store;
  int loads = 0;
  np::ValidationOptions opt;
  opt.certify = true;
  opt.certificates.load =
      [&](const std::string& config) -> std::optional<Certificate> {
    ++loads;
    auto it = store.find(config);
    if (it == store.end()) return std::nullopt;
    return it->second;
  };
  opt.certificates.save = [&](const Certificate& c) { store[c.config] = c; };

  (void)NpCompiler::compile_with_fallback(kernel, configs, factory, spec, opt);
  EXPECT_FALSE(store.empty());
  for (const auto& [config, cert] : store) {
    EXPECT_TRUE(cert.proven()) << cert.str();
    EXPECT_EQ(cert.config, config);
  }
  // Second compile: every certificate must come from the cache (loads
  // only, no growth).
  auto size_before = store.size();
  (void)NpCompiler::compile_with_fallback(kernel, configs, factory, spec, opt);
  EXPECT_EQ(store.size(), size_before);
  EXPECT_GT(loads, 0);
}

TEST(CompilerCertification, CertifiedFastPathPicksTheSameVariant) {
  std::unique_ptr<ir::Program> prog;
  ir::Kernel& kernel = parse_kernel(prog, kDotSrc);
  auto factory = [&] { return np::make_synthetic_workload(kernel, 8, 8); };
  auto spec = sim::DeviceSpec::gtx680();
  auto configs = NpCompiler::enumerate_configs(kernel, 8, spec);

  np::ValidationOptions plain;
  auto ref =
      NpCompiler::compile_with_fallback(kernel, configs, factory, spec, plain);

  np::ValidationOptions fast;
  fast.certify = true;
  fast.certified_fast_path = true;
  auto got =
      NpCompiler::compile_with_fallback(kernel, configs, factory, spec, fast);

  EXPECT_EQ(got.decision.used_baseline, ref.decision.used_baseline);
  EXPECT_EQ(got.decision.chosen_config, ref.decision.chosen_config);
  EXPECT_EQ(got.decision.quarantined.size(), ref.decision.quarantined.size());
}

}  // namespace
}  // namespace cudanp
