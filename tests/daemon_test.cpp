// Persistent serve daemon: the content-addressed compile cache
// (checksums, quarantine, LRU, disk reload), tenant-fair DRR admission,
// cross-request breaker sharing, and the in-process daemon end-to-end
// over a real AF_UNIX socket.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "np/compiler.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/daemon.hpp"
#include "serve/manifest.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/device.hpp"
#include "temp_util.hpp"

namespace cudanp {
namespace {

using test::ScopedTempDir;

const char* kTmv = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

serve::JobSpec tmv_job(const std::string& name) {
  serve::JobSpec j;
  j.name = name;
  j.source = kTmv;
  j.elems = 16;
  j.tb = 8;
  return j;
}

serve::JobSpec broken_job(const std::string& name) {
  serve::JobSpec j = tmv_job(name);
  j.inject = true;
  j.fault.sim_error_at_step = 5;  // persistent: fails every attempt
  return j;
}

serve::ServiceReport run_batch(const std::vector<serve::JobSpec>& jobs,
                               serve::ServiceOptions opt) {
  serve::BatchService service(sim::DeviceSpec::gtx680(), opt);
  return service.run(jobs);
}

// ---------------------------------------------------------------------
// Content-addressed keys.

TEST(ArtifactKey, DeterministicAndInputSensitive) {
  const std::string k1 = np::NpCompiler::artifact_key(kTmv, "opts-a");
  EXPECT_EQ(k1, np::NpCompiler::artifact_key(kTmv, "opts-a"));
  EXPECT_EQ(k1.size(), 16u);
  EXPECT_NE(k1, np::NpCompiler::artifact_key(kTmv, "opts-b"));
  EXPECT_NE(k1, np::NpCompiler::artifact_key("other source", "opts-a"));
  // The field separator means (ab, c) and (a, bc) cannot collide.
  EXPECT_NE(np::NpCompiler::artifact_key("ab", "c"),
            np::NpCompiler::artifact_key("a", "bc"));
}

// ---------------------------------------------------------------------
// ArtifactCache: verification, quarantine, LRU, persistence.

TEST(ArtifactCache, HitReturnsStoredBytes) {
  serve::ArtifactCache cache({/*max_entries=*/8, /*dir=*/""});
  cache.store("aa11", "payload-bytes");
  auto hit = cache.lookup("aa11");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_FALSE(cache.lookup("bb22").has_value());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ArtifactCache, CorruptEntryIsQuarantinedNotServed) {
  serve::ArtifactCache cache({8, ""});
  cache.store("aa11", "payload-bytes");
  ASSERT_TRUE(cache.corrupt_entry("aa11"));
  EXPECT_FALSE(cache.lookup("aa11").has_value());
  EXPECT_EQ(cache.stats().quarantined_corrupt, 1);
  EXPECT_EQ(cache.stats().quarantined_torn, 0);
  EXPECT_EQ(cache.size(), 0u);  // erased, so the caller re-stores
  // Re-store heals it.
  cache.store("aa11", "payload-bytes");
  EXPECT_TRUE(cache.lookup("aa11").has_value());
}

TEST(ArtifactCache, TornEntryIsQuarantinedAsTorn) {
  serve::ArtifactCache cache({8, ""});
  cache.store("aa11", "payload-bytes");
  ASSERT_TRUE(cache.tear_entry("aa11"));
  EXPECT_FALSE(cache.lookup("aa11").has_value());
  EXPECT_EQ(cache.stats().quarantined_torn, 1);
  EXPECT_EQ(cache.stats().quarantined_corrupt, 0);
}

TEST(ArtifactCache, ChaosHooksOnMissingEntryReturnFalse) {
  serve::ArtifactCache cache({8, ""});
  EXPECT_FALSE(cache.corrupt_entry("nope"));
  EXPECT_FALSE(cache.tear_entry("nope"));
}

TEST(ArtifactCache, LruBoundsCapacity) {
  serve::ArtifactCache cache({2, ""});
  cache.store("a1", "one");
  cache.store("b2", "two");
  ASSERT_TRUE(cache.lookup("a1").has_value());  // a1 now most recent
  cache.store("c3", "three");                   // evicts b2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup("a1").has_value());
  EXPECT_FALSE(cache.lookup("b2").has_value());
  EXPECT_TRUE(cache.lookup("c3").has_value());
}

TEST(ArtifactCache, ZeroCapacityDisablesStoring) {
  serve::ArtifactCache cache({0, ""});
  cache.store("a1", "one");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("a1").has_value());
}

TEST(ArtifactCache, PersistsAcrossInstances) {
  ScopedTempDir tmp("cudanp_cache");
  const std::string dir = tmp.file("cache");
  {
    serve::ArtifactCache cache({8, dir});
    cache.store("deadbeef00112233", "durable-payload");
  }
  serve::ArtifactCache reloaded({8, dir});
  auto hit = reloaded.lookup("deadbeef00112233");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "durable-payload");
}

TEST(ArtifactCache, ReloadQuarantinesDamagedFiles) {
  ScopedTempDir tmp("cudanp_cache_dmg");
  const std::string dir = tmp.file("cache");
  {
    serve::ArtifactCache cache({8, dir});
    cache.store("aaaa000011112222", "will-be-torn");
    cache.store("bbbb000011112222", "will-be-corrupt");
  }
  // Damage the files on disk the way a crashed writer would: truncate
  // one mid-payload, flip a byte in the other.
  {
    const std::string torn_path = dir + "/aaaa000011112222.art";
    std::ifstream in(torn_path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(all.size(), 4u);
    std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() - 4));
  }
  {
    const std::string cor_path = dir + "/bbbb000011112222.art";
    std::ifstream in(cor_path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(all.size(), 3u);
    all[all.size() - 3] = static_cast<char>(all[all.size() - 3] ^ 0x40);
    std::ofstream out(cor_path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size()));
  }
  serve::ArtifactCache reloaded({8, dir});
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_EQ(reloaded.stats().quarantined_torn, 1);
  EXPECT_EQ(reloaded.stats().quarantined_corrupt, 1);
  EXPECT_FALSE(reloaded.lookup("aaaa000011112222").has_value());
  EXPECT_FALSE(reloaded.lookup("bbbb000011112222").has_value());
}

// ---------------------------------------------------------------------
// DRR scheduler: quotas and fairness.

std::shared_ptr<serve::ServeRequest> request(const std::string& tenant,
                                             int jobs) {
  auto r = std::make_shared<serve::ServeRequest>();
  r->tenant = tenant;
  r->jobs.assign(static_cast<std::size_t>(jobs), tmv_job("j"));
  return r;
}

TEST(DrrScheduler, TenantQuotaShedsWithStructuredCause) {
  serve::DrrScheduler sched(/*tenant_quota=*/2, /*max_pending=*/64,
                            /*quantum=*/8);
  EXPECT_EQ(sched.submit(request("a", 1)), "");
  EXPECT_EQ(sched.submit(request("a", 1)), "");
  EXPECT_EQ(sched.submit(request("a", 1)), "tenant-quota");
  // Another tenant is unaffected by a's quota.
  EXPECT_EQ(sched.submit(request("b", 1)), "");
  // Quota covers queued + executing: dequeuing alone frees nothing...
  auto r = sched.next();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->tenant, "a");
  EXPECT_EQ(sched.submit(request("a", 1)), "tenant-quota");
  // ...only finishing does.
  sched.finished("a");
  EXPECT_EQ(sched.submit(request("a", 1)), "");
}

TEST(DrrScheduler, GlobalBoundShedsQueueFull) {
  serve::DrrScheduler sched(/*tenant_quota=*/64, /*max_pending=*/2,
                            /*quantum=*/8);
  EXPECT_EQ(sched.submit(request("a", 1)), "");
  EXPECT_EQ(sched.submit(request("b", 1)), "");
  EXPECT_EQ(sched.submit(request("c", 1)), "queue-full");
}

TEST(DrrScheduler, FloodingTenantDoesNotStarveOthers) {
  serve::DrrScheduler sched(8, 64, /*quantum=*/8);
  auto a1 = request("flood", 1), a2 = request("flood", 1),
       a3 = request("flood", 1);
  auto b1 = request("meek", 1);
  ASSERT_EQ(sched.submit(a1), "");
  ASSERT_EQ(sched.submit(a2), "");
  ASSERT_EQ(sched.submit(a3), "");
  ASSERT_EQ(sched.submit(b1), "");
  // One request per tenant visit: the meek tenant is served second, not
  // after the whole flood.
  EXPECT_EQ(sched.next(), a1);
  EXPECT_EQ(sched.next(), b1);
  EXPECT_EQ(sched.next(), a2);
  EXPECT_EQ(sched.next(), a3);
  EXPECT_EQ(sched.next(), nullptr);
}

TEST(DrrScheduler, CostWeightedDeficitDelaysLargeRequests) {
  // quantum=1: a 3-job manifest must accumulate three visits of credit,
  // during which the 1-job tenant keeps being served.
  serve::DrrScheduler sched(8, 64, /*quantum=*/1);
  auto big = request("bulk", 3);
  auto s1 = request("small", 1), s2 = request("small", 1),
       s3 = request("small", 1);
  ASSERT_EQ(sched.submit(big), "");
  ASSERT_EQ(sched.submit(s1), "");
  ASSERT_EQ(sched.submit(s2), "");
  ASSERT_EQ(sched.submit(s3), "");
  EXPECT_EQ(sched.next(), s1);
  EXPECT_EQ(sched.next(), s2);
  EXPECT_EQ(sched.next(), big);  // third visit: deficit 3 covers cost 3
  EXPECT_EQ(sched.next(), s3);
  EXPECT_EQ(sched.next(), nullptr);
}

// ---------------------------------------------------------------------
// Cache + service integration: caching can never change a report.

TEST(ServiceCache, ReportsIdenticalWithAndWithoutCache) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), broken_job("bad"),
                                      tmv_job("b")};
  serve::ServiceOptions plain;
  const std::string baseline = run_batch(jobs, plain).json();

  serve::ArtifactCache cache({64, ""});
  serve::ServiceOptions cached;
  cached.artifact_cache = &cache;
  // Cold pass (stores), then a warm pass (hits): every rendering must
  // stay byte-identical to the uncached run.
  EXPECT_EQ(run_batch(jobs, cached).json(), baseline);
  EXPECT_EQ(run_batch(jobs, cached).json(), baseline);
  EXPECT_GT(cache.stats().hits, 0);
  EXPECT_GT(cache.stats().stores, 0);
}

TEST(ServiceCache, ChaosFaultKeysQuarantineAndRecompile) {
  serve::ArtifactCache cache({64, ""});
  serve::ServiceOptions opt;
  opt.artifact_cache = &cache;

  // Warm the cache with a clean run.
  serve::ServiceReport warm = run_batch({tmv_job("warm")}, opt);
  EXPECT_EQ(warm.jobs[0].state, serve::JobState::kSucceeded);
  ASSERT_GT(cache.stats().stores, 0);

  // cache-corrupt: the stored entry is damaged just before lookup; the
  // job must quarantine it, recompile, and succeed (the fault key does
  // not mark the attempt itself as injected, so it stays cacheable).
  serve::JobSpec chaos = tmv_job("warm");
  chaos.fault.corrupt_cache = true;
  serve::ServiceReport r = run_batch({chaos}, opt);
  EXPECT_EQ(r.jobs[0].state, serve::JobState::kSucceeded);
  EXPECT_EQ(cache.stats().quarantined_corrupt, 1);

  serve::JobSpec torn = tmv_job("warm");
  torn.fault.tear_cache = true;
  r = run_batch({torn}, opt);
  EXPECT_EQ(r.jobs[0].state, serve::JobState::kSucceeded);
  EXPECT_EQ(cache.stats().quarantined_torn, 1);
}

TEST(ServiceCache, ManifestKeysParseIntoCacheFaults) {
  ScopedTempDir tmp("cudanp_manifest");
  tmp.write("k.cu", kTmv);
  serve::ManifestDefaults defaults;
  std::string error;
  auto jobs = serve::parse_manifest("file=k.cu\n", tmp.path(), defaults,
                                    &error);
  ASSERT_EQ(jobs.size(), 1u) << error;
  EXPECT_FALSE(jobs[0].fault.corrupt_cache);
  jobs = serve::parse_manifest(
      "file=k.cu cache-corrupt\n"
      "file=k.cu cache-torn\n",
      tmp.path(), defaults, &error);
  ASSERT_EQ(jobs.size(), 2u) << error;
  EXPECT_TRUE(jobs[0].fault.corrupt_cache);
  EXPECT_FALSE(jobs[0].inject);  // cache chaos is not an exec fault
  EXPECT_TRUE(jobs[1].fault.tear_cache);
  EXPECT_FALSE(jobs[1].inject);
}

// ---------------------------------------------------------------------
// Shared breakers across requests (the daemon's opt-in mode).

TEST(SharedBreakers, SingleRunMatchesStandaloneReport) {
  std::vector<serve::JobSpec> jobs = {tmv_job("a"), broken_job("bad"),
                                      tmv_job("b")};
  serve::ServiceOptions plain;
  const std::string baseline = run_batch(jobs, plain).json();

  serve::BreakerRegistry registry;
  serve::ServiceOptions shared;
  shared.breaker_registry = &registry;
  // A run that shares breakers with nobody reports exactly what a
  // standalone run would, and leaves its state behind in the registry.
  EXPECT_EQ(run_batch(jobs, shared).json(), baseline);
  // Two keys: the healthy jobs' first-choice variant and the faulted
  // job's baseline-degraded key.
  EXPECT_EQ(registry.breakers.size(), 2u);
  EXPECT_GT(registry.base_ms, 0);
}

TEST(SharedBreakers, TwoTenantsSeeDeterministicTransitions) {
  // Satellite: two tenants hammer the same (kernel, first-choice
  // variant) breaker across separate requests. The breaker must walk
  // closed -> open -> (short-circuit) -> half-open probe -> re-open in
  // admission order, identically at every --jobs count.
  auto sequence = [](int jobs_knob) {
    serve::BreakerRegistry registry;
    serve::ServiceOptions opt;
    opt.breaker_registry = &registry;
    opt.breaker.failure_threshold = 3;
    opt.breaker.cooldown_ms = 100000;  // virtual ms; expired manually
    opt.jobs = jobs_knob;

    std::string transcript;
    // Tenant A: three persistent failures open the breaker.
    serve::ServiceReport a = run_batch(
        {broken_job("a1"), broken_job("a2"), broken_job("a3")}, opt);
    EXPECT_GE(a.breaker_opens, 1u);
    transcript += a.json();
    EXPECT_EQ(registry.breakers.begin()->second.state(),
              serve::BreakerState::kOpen);
    // Tenant B immediately after: same breaker key, still cooling down
    // -> short-circuited to the baseline without burning an attempt.
    serve::ServiceReport b1 = run_batch({broken_job("b1")}, opt);
    EXPECT_TRUE(b1.jobs[0].breaker_routed);
    EXPECT_EQ(b1.jobs[0].cause, "breaker-open");
    transcript += b1.json();
    // Virtual idle time passes (the daemon's base_ms keeps the shared
    // cooldown ticking between requests).
    registry.base_ms += opt.breaker.cooldown_ms;
    // Tenant B again: the cooldown has expired, so this request's job
    // is the half-open probe; it fails and re-opens the breaker.
    serve::ServiceReport b2 = run_batch({broken_job("b2")}, opt);
    EXPECT_GE(b2.breaker_probes, 1u);
    transcript += b2.json();
    EXPECT_EQ(registry.breakers.begin()->second.state(),
              serve::BreakerState::kOpen);
    return transcript;
  };
  // The whole cross-request transcript is scheduling-invariant.
  EXPECT_EQ(sequence(1), sequence(4));
}

// ---------------------------------------------------------------------
// Daemon end-to-end over a real AF_UNIX socket (in-process daemon,
// frame-level clients).

struct FrameClient {
  int fd = -1;
  explicit FrameClient(const std::string& sock)
      : fd(serve::connect_unix(sock)) {}
  ~FrameClient() {
    if (fd >= 0) ::close(fd);
  }
  serve::Frame roundtrip(char type, const std::string& payload) {
    EXPECT_TRUE(serve::write_frame(fd, type, payload));
    serve::Frame f;
    EXPECT_EQ(serve::read_frame(fd, &f, 30000), serve::ReadStatus::kOk);
    return f;
  }
};

TEST(Daemon, ServesStatusRejectsAndDrains) {
  ScopedTempDir tmp("cudanp_daemon");
  tmp.write("k.cu", kTmv);

  // What a --batch run of the same manifest would report.
  const std::string manifest = "file=k.cu name=ok elems=16 tb=8\n";
  std::string perror;
  auto jobs = serve::parse_manifest(manifest, tmp.path(),
                                    serve::ManifestDefaults{}, &perror);
  ASSERT_EQ(jobs.size(), 1u) << perror;
  serve::ServiceReport expect = run_batch(jobs, serve::ServiceOptions{});

  serve::DaemonOptions dopt;
  dopt.socket_path = tmp.file("d.sock");
  dopt.cache_entries = 64;
  serve::ServeDaemon daemon(std::move(dopt));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  int rc = -1;
  std::thread server([&] { rc = daemon.serve(); });

  {
    // Bad manifest: structured reject, daemon survives.
    FrameClient c(daemon.options().socket_path);
    ASSERT_GE(c.fd, 0);
    serve::SubmitRequest bad;
    bad.tenant = "alice";
    bad.manifest = "file=__missing__ name=x\n";
    serve::Frame f = c.roundtrip(serve::kFrameSubmit, bad.json());
    EXPECT_EQ(f.type, serve::kFrameReject);
    auto rej = serve::RejectReply::from_json(f.payload);
    ASSERT_TRUE(rej);
    EXPECT_EQ(rej->cause, "bad-manifest");
  }
  {
    // Malformed frame type: reject, connection stays usable.
    FrameClient c(daemon.options().socket_path);
    ASSERT_GE(c.fd, 0);
    serve::Frame f = c.roundtrip('Z', "garbage");
    EXPECT_EQ(f.type, serve::kFrameReject);
    f = c.roundtrip(serve::kFrameStatus, "healthz");
    EXPECT_EQ(f.type, serve::kFrameStatusReply);
    EXPECT_NE(f.payload.find("\"status\":\"ok\""), std::string::npos);
  }
  {
    // Healthy submit: the daemon's reply carries both ServiceReport
    // renderings byte-identical to the direct run.
    FrameClient c(daemon.options().socket_path);
    ASSERT_GE(c.fd, 0);
    serve::SubmitRequest good;
    good.tenant = "alice";
    good.manifest = manifest;
    good.base_dir = tmp.path();
    serve::Frame f = c.roundtrip(serve::kFrameSubmit, good.json());
    ASSERT_EQ(f.type, serve::kFrameReport) << f.payload;
    auto reply = serve::SubmitReply::from_json(f.payload);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->report_text, expect.str());
    EXPECT_EQ(reply->report_json, expect.json());

    // Status reflects the served request and the attached cache.
    f = c.roundtrip(serve::kFrameStatus, "status");
    EXPECT_EQ(f.type, serve::kFrameStatusReply);
    EXPECT_NE(f.payload.find("\"served\":1"), std::string::npos)
        << f.payload;
    EXPECT_NE(f.payload.find("\"cache\":{"), std::string::npos)
        << f.payload;
  }
  {
    // 'Q' begins a graceful drain; serve() returns 0.
    FrameClient c(daemon.options().socket_path);
    ASSERT_GE(c.fd, 0);
    serve::Frame f = c.roundtrip(serve::kFrameShutdown, "");
    EXPECT_EQ(f.type, serve::kFrameStatusReply);
    EXPECT_NE(f.payload.find("draining"), std::string::npos);
  }
  server.join();
  EXPECT_EQ(rc, 0);
}

TEST(Daemon, ReapsIdleSessions) {
  ScopedTempDir tmp("cudanp_daemon_idle");
  serve::DaemonOptions dopt;
  dopt.socket_path = tmp.file("d.sock");
  dopt.session_idle_ms = 100;  // aggressive for the test
  serve::ServeDaemon daemon(std::move(dopt));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  int rc = -1;
  std::thread server([&] { rc = daemon.serve(); });

  // A client that connects and goes silent is reaped; a healthy client
  // afterwards is unaffected.
  int idle_fd = serve::connect_unix(daemon.options().socket_path);
  ASSERT_GE(idle_fd, 0);
  std::string status;
  for (int i = 0; i < 100; ++i) {
    ::usleep(50 * 1000);
    FrameClient c(daemon.options().socket_path);
    if (c.fd < 0) continue;
    serve::Frame f = c.roundtrip(serve::kFrameStatus, "status");
    status = f.payload;
    if (status.find("\"reaped\":0") == std::string::npos) break;
  }
  EXPECT_EQ(status.find("\"reaped\":0"), std::string::npos) << status;
  ::close(idle_fd);

  daemon.request_drain();
  server.join();
  EXPECT_EQ(rc, 0);
}

TEST(Daemon, SubmitAfterDrainIsRejected) {
  ScopedTempDir tmp("cudanp_daemon_drain");
  serve::DaemonOptions dopt;
  dopt.socket_path = tmp.file("d.sock");
  serve::ServeDaemon daemon(std::move(dopt));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  int rc = -1;
  std::thread server([&] { rc = daemon.serve(); });

  daemon.request_drain();
  auto r = std::make_shared<serve::ServeRequest>();
  r->tenant = "late";
  r->jobs = {tmv_job("x")};
  EXPECT_EQ(daemon.submit(r), "draining");

  server.join();
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace cudanp
