#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"

namespace cudanp::ir {
namespace {

TEST(Type, ScalarSizes) {
  EXPECT_EQ(Type::scalar_size_bytes(ScalarType::kInt), 4);
  EXPECT_EQ(Type::scalar_size_bytes(ScalarType::kFloat), 4);
  EXPECT_EQ(Type::scalar_size_bytes(ScalarType::kBool), 1);
  EXPECT_EQ(Type::scalar_size_bytes(ScalarType::kVoid), 0);
}

TEST(Type, ArraySizes) {
  Type t = Type::array_of(ScalarType::kFloat, {16, 16}, AddrSpace::kShared);
  EXPECT_EQ(t.element_count(), 256);
  EXPECT_EQ(t.size_bytes(), 1024);
  EXPECT_TRUE(t.is_array());
  EXPECT_FALSE(t.is_scalar());
}

TEST(Type, PointerSize) {
  Type t = Type::pointer_to(ScalarType::kFloat);
  EXPECT_EQ(t.size_bytes(), 8);
  EXPECT_FALSE(t.is_scalar());
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::scalar_of(ScalarType::kInt),
            Type::scalar_of(ScalarType::kInt));
  EXPECT_FALSE(Type::scalar_of(ScalarType::kInt) ==
               Type::scalar_of(ScalarType::kFloat));
}

TEST(Type, Str) {
  EXPECT_EQ(Type::array_of(ScalarType::kFloat, {8}, AddrSpace::kShared).str(),
            "__shared__ float[8]");
  EXPECT_EQ(Type::pointer_to(ScalarType::kInt).str(), "int*");
}

TEST(Expr, CloneIsDeep) {
  auto e = make_bin(BinOp::kAdd, make_var("x"), make_int(3));
  auto c = e->clone();
  // Mutate the original; clone must be unaffected.
  static_cast<BinaryExpr&>(*e).op = BinOp::kMul;
  static_cast<VarRef&>(*static_cast<BinaryExpr&>(*e).lhs).name = "y";
  const auto& cb = static_cast<const BinaryExpr&>(*c);
  EXPECT_EQ(cb.op, BinOp::kAdd);
  EXPECT_EQ(static_cast<const VarRef&>(*cb.lhs).name, "x");
}

TEST(Stmt, ForCloneKeepsPragma) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n) {\n"
      "#pragma np parallel for num_threads(4)\n"
      "for (int i = 0; i < n; i++) a[i] = 0.0f; }");
  auto clone = p->kernels[0]->body->stmts[0]->clone();
  const auto& f = static_cast<const ForStmt&>(*clone);
  ASSERT_TRUE(f.pragma.has_value());
  EXPECT_EQ(f.pragma->num_threads, 4);
}

TEST(Kernel, CloneIsDeep) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(float* a) { a[0] = 1.0f; }");
  auto c = p->kernels[0]->clone();
  c->name = "other";
  c->params[0].name = "b";
  EXPECT_EQ(p->kernels[0]->name, "k");
  EXPECT_EQ(p->kernels[0]->params[0].name, "a");
  EXPECT_EQ(print_kernel(*p->kernels[0]).find("other"), std::string::npos);
}

TEST(Kernel, FindParam) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(float* a, int n) {}");
  EXPECT_NE(p->kernels[0]->find_param("a"), nullptr);
  EXPECT_NE(p->kernels[0]->find_param("n"), nullptr);
  EXPECT_EQ(p->kernels[0]->find_param("z"), nullptr);
}

TEST(Walk, ForEachExprVisitsAllNodes) {
  auto e = make_bin(BinOp::kAdd, make_var("x"),
                    make_bin(BinOp::kMul, make_int(2), make_var("y")));
  int count = 0;
  for_each_expr(*e, [&](const Expr&) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(Walk, ForEachStmtVisitsNested) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(int n) {"
      "  if (n > 0) { for (int i = 0; i < n; i++) { int x = i; } }"
      "}");
  int fors = 0, decls = 0;
  for_each_stmt(*p->kernels[0]->body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kFor) ++fors;
    if (s.kind() == StmtKind::kDecl) ++decls;
  });
  EXPECT_EQ(fors, 1);
  EXPECT_EQ(decls, 2);  // iterator + x
}

TEST(Walk, ForEachExprInFindsConditionUses) {
  auto p = frontend::parse_program_or_throw(
      "__global__ void k(int n) { while (n > 0) { n -= 1; } }");
  bool saw_n = false;
  for_each_expr_in(*p->kernels[0]->body, [&](const Expr& e) {
    if (e.kind() == ExprKind::kVarRef &&
        static_cast<const VarRef&>(e).name == "n")
      saw_n = true;
  });
  EXPECT_TRUE(saw_n);
}

TEST(Builtin, GeometryNames) {
  EXPECT_TRUE(is_builtin_geometry("threadIdx.x"));
  EXPECT_TRUE(is_builtin_geometry("gridDim.z"));
  EXPECT_FALSE(is_builtin_geometry("threadIdx"));
  EXPECT_FALSE(is_builtin_geometry("master_id"));
}

TEST(BinOpHelpers, PrecedenceOrdering) {
  EXPECT_GT(precedence(BinOp::kMul), precedence(BinOp::kAdd));
  EXPECT_GT(precedence(BinOp::kAdd), precedence(BinOp::kLt));
  EXPECT_GT(precedence(BinOp::kLt), precedence(BinOp::kLAnd));
  EXPECT_GT(precedence(BinOp::kLAnd), precedence(BinOp::kLOr));
}

}  // namespace
}  // namespace cudanp::ir
