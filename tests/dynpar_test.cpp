#include <gtest/gtest.h>

#include "sim/dynpar.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim {
namespace {

DynamicParallelismModel model() {
  return DynamicParallelismModel(DeviceSpec::k20c());
}

TEST(DynPar, BaselineBandwidthMatchesPaperBallpark) {
  // Paper Sec. 2.1: 142 GB/s plain memcopy on K20c.
  EXPECT_NEAR(model().baseline_copy_bandwidth_gbs(), 142.0, 3.0);
}

TEST(DynPar, RdcOverheadHalvesBandwidth) {
  // Paper: merely enabling the CDP compile path drops 142 -> 63 GB/s.
  auto m = model();
  const std::int64_t total = 64 << 20;
  double bw = m.cdp_copy_bandwidth_gbs(total, total);
  EXPECT_NEAR(bw, 63.0, 8.0);
}

TEST(DynPar, SixteenKChildrenReachPaperPoint) {
  // Paper Fig. 1: 16K-thread children -> ~34 GB/s overall.
  auto m = model();
  double bw = m.cdp_copy_bandwidth_gbs(64 << 20, 16 << 10);
  EXPECT_NEAR(bw, 34.0, 8.0);
}

TEST(DynPar, BandwidthDegradesMonotonicallyWithMoreLaunches) {
  auto m = model();
  const std::int64_t total = 64 << 20;
  double prev = 1e18;
  for (std::int64_t child = total; child >= 1024; child /= 4) {
    double bw = m.cdp_copy_bandwidth_gbs(total, child);
    EXPECT_LE(bw, prev * 1.0001) << "child=" << child;
    prev = bw;
  }
}

TEST(DynPar, RequiresSm35) {
  DynamicParallelismModel m(DeviceSpec::gtx680());
  EXPECT_THROW(m.cdp_copy_bandwidth_gbs(1 << 20, 1 << 10), SimError);
}

TEST(DynPar, InvalidConfigThrows) {
  auto m = model();
  EXPECT_THROW(m.cdp_copy_bandwidth_gbs(0, 1), SimError);
  EXPECT_THROW(m.cdp_copy_bandwidth_gbs(100, 0), SimError);
  EXPECT_THROW(m.cdp_copy_bandwidth_gbs(100, 200), SimError);
}

TEST(DynPar, LaunchOverheadScalesLinearly) {
  auto m = model();
  double t1 = m.launch_overhead_seconds(1000);
  double t2 = m.launch_overhead_seconds(2000);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 / t1, 2.0, 0.15);
  EXPECT_EQ(m.launch_overhead_seconds(0), 0.0);
}

TEST(DynPar, CommunicationHasLatencyFloor) {
  auto m = model();
  EXPECT_GT(m.communication_seconds(4), 0.0);
  EXPECT_GT(m.communication_seconds(1 << 20),
            m.communication_seconds(1 << 10));
  EXPECT_EQ(m.communication_seconds(0), 0.0);
}

TEST(DynPar, CdpKernelAlwaysSlowerThanBaseline) {
  // Sec. 6: every CDP rewrite of the paper benchmarks lost, by 7.6x to
  // 125.7x. The model must never predict a CDP win for these shapes.
  auto m = model();
  for (std::int64_t launches : {100, 10000, 1000000}) {
    double t = m.cdp_kernel_seconds(/*baseline_seconds=*/1e-3, launches,
                                    /*child_fraction=*/1.0,
                                    /*comm_bytes_per_launch=*/256);
    EXPECT_GT(t, 1e-3) << launches;
  }
}

TEST(DynPar, SlowdownGrowsWithLaunchCount) {
  auto m = model();
  double few = m.cdp_kernel_seconds(1e-3, 1000, 1.0, 128);
  double many = m.cdp_kernel_seconds(1e-3, 100000, 1.0, 128);
  EXPECT_GT(many, few);
}

}  // namespace
}  // namespace cudanp::sim
