#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim {
namespace {

KernelStats base_stats() {
  KernelStats s;
  s.blocks = 64;
  s.warps = 64 * 8;
  s.issue_slots = 64 * 8 * 1000.0;
  s.dram_transactions = 64 * 100;
  s.smem_accesses = 64 * 50;
  s.crit_path_cycles = 2000;
  return s;
}

Occupancy occ_with(int blocks, int warps_per_block = 8) {
  Occupancy o;
  o.threads_per_block = warps_per_block * 32;
  o.blocks_per_smx = blocks;
  o.warps_per_block = warps_per_block;
  o.active_warps = blocks * warps_per_block;
  return o;
}

TEST(TimingModel, ZeroBlocksZeroTime) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s;
  EXPECT_EQ(m.estimate(s, occ_with(1)).seconds, 0.0);
}

TEST(TimingModel, ThrowsOnZeroOccupancy) {
  TimingModel m(DeviceSpec::gtx680());
  EXPECT_THROW(m.estimate(base_stats(), occ_with(0)), SimError);
}

TEST(TimingModel, DramBoundKernelScalesWithTraffic) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.dram_transactions = 64 * 100000;  // clearly memory bound
  auto t1 = m.estimate(s, occ_with(8));
  s.dram_transactions *= 2;
  auto t2 = m.estimate(s, occ_with(8));
  EXPECT_STREQ(t1.bound, "dram");
  EXPECT_NEAR(t2.seconds / t1.seconds, 2.0, 0.05);
}

TEST(TimingModel, LatencyBoundWhenCritPathDominates) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.crit_path_cycles = 1e7;
  auto t = m.estimate(s, occ_with(8));
  EXPECT_STREQ(t.bound, "latency");
}

TEST(TimingModel, IssueBoundWhenComputeDominates) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.issue_slots = 64.0 * 1e7;
  s.crit_path_cycles = 10;
  s.dram_transactions = 0;
  s.smem_accesses = 0;
  auto t = m.estimate(s, occ_with(8));
  EXPECT_STREQ(t.bound, "issue");
}

TEST(TimingModel, SmemBoundDetected) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.smem_accesses = 64 * 1000000;
  s.crit_path_cycles = 10;
  auto t = m.estimate(s, occ_with(8));
  EXPECT_STREQ(t.bound, "smem");
}

TEST(TimingModel, WavesComputedFromGridAndOccupancy) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.blocks = 256;  // 8 SMX * 8 resident = 64 concurrent -> 4 waves
  auto t = m.estimate(s, occ_with(8));
  EXPECT_DOUBLE_EQ(t.waves, 4.0);
}

TEST(TimingModel, SmallGridsSpreadAcrossSmxs) {
  // 8 blocks on 8 SMXs run as one wave with one block per SMX even when
  // occupancy would allow stacking all 8 on a single SMX.
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.blocks = 8;
  s.dram_transactions = 8 * 100;  // same per-block traffic as base_stats
  s.issue_slots = 8 * 8 * 1000.0;
  s.smem_accesses = 8 * 50;
  auto t = m.estimate(s, occ_with(8));
  EXPECT_DOUBLE_EQ(t.waves, 1.0);
  // 64 blocks stack 8 per SMX: each SMX chews 8x the per-wave traffic.
  KernelStats s64 = base_stats();
  auto t64 = m.estimate(s64, occ_with(8));
  EXPECT_GT(t64.t_dram_cycles, t.t_dram_cycles);
}

TEST(TimingModel, LatencyBoundKernelSpeedsUpWithMoreResidentBlocks) {
  // The core CUDA-NP mechanism: a latency-bound kernel finishes faster
  // when more blocks are resident because waves shrink while the
  // per-wave critical path stays fixed.
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.blocks = 256;
  s.crit_path_cycles = 1e6;
  auto t_low = m.estimate(s, occ_with(2));
  auto t_high = m.estimate(s, occ_with(16));
  EXPECT_LT(t_high.seconds, t_low.seconds);
}

TEST(TimingModel, ThroughputBoundKernelInsensitiveToExtraOccupancy) {
  TimingModel m(DeviceSpec::gtx680());
  KernelStats s = base_stats();
  s.blocks = 1024;
  s.dram_transactions = s.blocks * 1000000;
  s.crit_path_cycles = 100;
  auto t8 = m.estimate(s, occ_with(8));
  auto t16 = m.estimate(s, occ_with(16));
  EXPECT_NEAR(t16.seconds / t8.seconds, 1.0, 0.1);
}

TEST(TimingModel, BreakdownTermsNonNegative) {
  TimingModel m(DeviceSpec::gtx680());
  auto t = m.estimate(base_stats(), occ_with(4));
  EXPECT_GE(t.t_issue_cycles, 0.0);
  EXPECT_GE(t.t_dram_cycles, 0.0);
  EXPECT_GE(t.t_smem_cycles, 0.0);
  EXPECT_GE(t.t_crit_cycles, 0.0);
  EXPECT_GT(t.seconds, 0.0);
}

TEST(KernelStats, AddBlockAccumulates) {
  KernelStats total;
  KernelStats b;
  b.blocks = 1;
  b.warps = 4;
  b.issue_slots = 100;
  b.dram_transactions = 7;
  b.smem_accesses = 3;
  b.shfl_ops = 2;
  total.add_block(b);
  total.add_block(b);
  EXPECT_EQ(total.blocks, 2);
  EXPECT_EQ(total.warps, 8);
  EXPECT_DOUBLE_EQ(total.issue_slots, 200.0);
  EXPECT_EQ(total.dram_transactions, 14);
  EXPECT_EQ(total.shfl_ops, 4);
}

}  // namespace
}  // namespace cudanp::sim
