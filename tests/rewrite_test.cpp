#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "transform/rewrite.hpp"

namespace cudanp::transform {
namespace {

using namespace cudanp::ir;

std::unique_ptr<Program> parse(const std::string& src) {
  return cudanp::frontend::parse_program_or_throw(src);
}

TEST(Rewrite, RenameVarEverywhere) {
  auto p = parse(
      "__global__ void k(float* a, int n) {"
      "  int x = n;"
      "  for (int i = x; i < n + x; i++) a[i] = (float)x;"
      "}");
  rename_var(*p->kernels[0]->body, "x", "y");
  std::string s = print_kernel(*p->kernels[0]);
  EXPECT_NE(s.find("a[i] = (float)y"), std::string::npos);
  EXPECT_NE(s.find("int i = y; i < n + y;"), std::string::npos);
  EXPECT_EQ(s.find("(float)x"), std::string::npos);
  // Declarations are not renamed (rename targets references only).
  EXPECT_NE(s.find("int x = n"), std::string::npos);
}

TEST(Rewrite, ReplaceVarWithExpression) {
  auto p = parse("__global__ void k(float* a) { a[threadIdx.x] = 0.0f; }");
  replace_var(*p->kernels[0]->body, "threadIdx.x",
              [] { return make_var("master_id"); });
  EXPECT_NE(print_kernel(*p->kernels[0]).find("a[master_id]"),
            std::string::npos);
}

TEST(Rewrite, BottomUpAllowsNestedReplacement) {
  auto p = parse("__global__ void k(int* a) { a[0] = 1 + 2; }");
  int int_lits = 0;
  rewrite_exprs(*p->kernels[0]->body, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kIntLit) ++int_lits;
  });
  EXPECT_EQ(int_lits, 3);  // 0, 1, 2
}

TEST(Rewrite, VisitsForHeaderExpressions) {
  auto p = parse(
      "__global__ void k(float* a, int n) {"
      "  for (int i = n; i < n * 2; i += 1) a[i] = 0.0f;"
      "}");
  int n_refs = 0;
  rewrite_exprs(*p->kernels[0]->body, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kVarRef &&
        static_cast<const VarRef&>(*e).name == "n")
      ++n_refs;
  });
  EXPECT_EQ(n_refs, 2);
}

TEST(Rewrite, VisitsWhileAndIfConditions) {
  auto p = parse(
      "__global__ void k(int n) {"
      "  while (n > 0) { if (n == 3) { n -= 2; } n -= 1; }"
      "}");
  int cmp = 0;
  rewrite_exprs(*p->kernels[0]->body, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kBinary) {
      auto op = static_cast<const BinaryExpr&>(*e).op;
      if (op == BinOp::kGt || op == BinOp::kEq) ++cmp;
    }
  });
  EXPECT_EQ(cmp, 2);
}

TEST(Rewrite, ReplacementExprIsCloned) {
  auto p = parse("__global__ void k(int* a) { a[0] = x + x; }");
  int calls = 0;
  replace_var(*p->kernels[0]->body, "x", [&] {
    ++calls;
    return make_int(7);
  });
  EXPECT_EQ(calls, 2);  // one fresh expression per occurrence
}

}  // namespace
}  // namespace cudanp::transform
