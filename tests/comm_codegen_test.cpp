// Property tests for the communication code generators: the emitted IR is
// executed on the simulator and checked against direct computation, for
// every operator, group size and communication fabric (shfl vs shared
// memory).
#include <gtest/gtest.h>

#include <cmath>

#include "ir/printer.hpp"
#include "sim/interpreter.hpp"
#include "transform/comm_codegen.hpp"

namespace cudanp::transform {
namespace {

using namespace cudanp::ir;
using namespace cudanp::sim;

struct Mode {
  NpType np_type;
  bool use_shfl;
};

struct Case {
  Mode mode;
  int slave_size;
  int master_count;
  ReduceOp op;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string s = c.mode.np_type == NpType::kIntraWarp ? "intra" : "inter";
  s += c.mode.use_shfl ? "Shfl" : "Smem";
  s += "S" + std::to_string(c.slave_size);
  s += "M" + std::to_string(c.master_count);
  switch (c.op) {
    case ReduceOp::kAdd: s += "Add"; break;
    case ReduceOp::kMul: s += "Mul"; break;
    case ReduceOp::kMin: s += "Min"; break;
    case ReduceOp::kMax: s += "Max"; break;
  }
  return s;
}

/// Builds a kernel whose body is: prologue; float v = f(master, slave);
/// <generated comm code>; out[tid] = v.
class CommHarness {
 public:
  CommHarness(const Case& c) : c_(c) {
    cfg_.np_type = c.mode.np_type;
    cfg_.use_shfl = c.mode.use_shfl;
    cfg_.slave_size = c.slave_size;
    cfg_.master_count = c.master_count;
    cfg_.sm_version = 30;
  }

  /// `value_expr` initializes per-thread v; `emit` appends the comm code.
  std::vector<float> run(ExprPtr value_expr,
                         const std::function<void(CommCodegen&, Block&)>& emit) {
    auto kernel = std::make_unique<Kernel>();
    kernel->name = "t";
    kernel->params.push_back({Type::pointer_to(ScalarType::kFloat), "out"});

    CommCodegen comm(cfg_);
    auto body = make_block();
    bool inter = cfg_.np_type == NpType::kInterWarp;
    body->push(std::make_unique<DeclStmt>(
        Type::scalar_of(ScalarType::kInt), "master_id",
        make_var(inter ? "threadIdx.x" : "threadIdx.y")));
    body->push(std::make_unique<DeclStmt>(
        Type::scalar_of(ScalarType::kInt), "slave_id",
        make_var(inter ? "threadIdx.y" : "threadIdx.x")));
    body->push(std::make_unique<DeclStmt>(Type::scalar_of(ScalarType::kFloat),
                                          "v", std::move(value_expr)));
    auto tail = make_block();
    emit(comm, *tail);
    // tid = master * S + slave for output indexing.
    tail->push(make_assign(
        make_index1("out",
                    make_bin(BinOp::kAdd,
                             make_bin(BinOp::kMul, make_var("master_id"),
                                      make_int(cfg_.slave_size)),
                             make_var("slave_id"))),
        make_var("v")));
    auto full = make_block();
    for (auto& d : comm.take_shared_decls()) full->push(std::move(d));
    for (auto& s : body->stmts) full->push(std::move(s));
    for (auto& s : tail->stmts) full->push(std::move(s));
    kernel->body = std::move(full);

    DeviceMemory mem;
    std::size_t n = static_cast<std::size_t>(cfg_.master_count) *
                    static_cast<std::size_t>(cfg_.slave_size);
    auto out = mem.alloc(ScalarType::kFloat, n);
    LaunchConfig launch;
    launch.grid = {1, 1, 1};
    launch.block = inter ? Dim3{cfg_.master_count, cfg_.slave_size, 1}
                         : Dim3{cfg_.slave_size, cfg_.master_count, 1};
    launch.args = {out};
    Interpreter interp(DeviceSpec::gtx680(), mem);
    (void)interp.run(*kernel, launch);
    auto span = mem.buffer(out).f32();
    return {span.begin(), span.end()};
  }

  NpConfig cfg_;
  Case c_;
};

/// v = 1 + 0.01*master + 0.003*slave (distinct per thread; near 1 so
/// 32-way products stay in float range).
ExprPtr seed_value() {
  return make_bin(
      BinOp::kAdd,
      make_bin(BinOp::kAdd,
               make_bin(BinOp::kMul, make_var("master_id"),
                        make_float(0.01)),
               make_bin(BinOp::kMul, make_var("slave_id"),
                        make_float(0.003))),
      make_float(1.0));
}

double seed(int master, int slave) {
  return master * 0.01 + slave * 0.003 + 1.0;
}

double apply(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kAdd: return a + b;
    case ReduceOp::kMul: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return 0;
}

class CommCodegenTest : public ::testing::TestWithParam<Case> {};

TEST_P(CommCodegenTest, BroadcastDeliversMasterValue) {
  CommHarness h(GetParam());
  auto out = h.run(seed_value(), [&](CommCodegen& comm, Block& b) {
    comm.emit_broadcast(b, "v", ScalarType::kFloat);
  });
  const auto& cfg = h.cfg_;
  for (int m = 0; m < cfg.master_count; ++m)
    for (int s = 0; s < cfg.slave_size; ++s)
      EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(m * cfg.slave_size + s)],
                      static_cast<float>(seed(m, 0)))
          << "m=" << m << " s=" << s;
}

TEST_P(CommCodegenTest, ReductionCombinesWholeGroup) {
  const Case& c = GetParam();
  CommHarness h(c);
  auto out = h.run(seed_value(), [&](CommCodegen& comm, Block& b) {
    comm.emit_reduction(b, "v", ScalarType::kFloat, c.op);
  });
  const auto& cfg = h.cfg_;
  for (int m = 0; m < cfg.master_count; ++m) {
    double want = seed(m, 0);
    for (int s = 1; s < cfg.slave_size; ++s)
      want = apply(c.op, want, seed(m, s));
    for (int s = 0; s < cfg.slave_size; ++s)
      EXPECT_NEAR(out[static_cast<std::size_t>(m * cfg.slave_size + s)], want,
                  std::fabs(want) * 1e-3 + 1e-3)
          << "m=" << m << " s=" << s;
  }
}

TEST_P(CommCodegenTest, ExclusiveScanPrefixes) {
  const Case& c = GetParam();
  if (c.op == ReduceOp::kMin || c.op == ReduceOp::kMax)
    GTEST_SKIP() << "scan is exercised for +/* (the paper's LIB uses +)";
  CommHarness h(c);
  auto out = h.run(seed_value(), [&](CommCodegen& comm, Block& b) {
    b.push(std::make_unique<DeclStmt>(
        Type::scalar_of(ScalarType::kFloat), "pfx",
        CommCodegen::identity_expr(c.op, ScalarType::kFloat)));
    comm.emit_exclusive_scan(b, "v", "pfx", ScalarType::kFloat, c.op);
    b.push(make_assign(make_var("v"), make_var("pfx")));
  });
  const auto& cfg = h.cfg_;
  for (int m = 0; m < cfg.master_count; ++m) {
    double want = c.op == ReduceOp::kMul ? 1.0 : 0.0;
    for (int s = 0; s < cfg.slave_size; ++s) {
      EXPECT_NEAR(out[static_cast<std::size_t>(m * cfg.slave_size + s)], want,
                  std::fabs(want) * 1e-4 + 1e-3)
          << "m=" << m << " s=" << s;
      want = apply(c.op, want, seed(m, s));
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (ReduceOp op : {ReduceOp::kAdd, ReduceOp::kMul, ReduceOp::kMin,
                      ReduceOp::kMax}) {
    // Intra-warp with shfl: power-of-two group sizes within a warp.
    for (int s : {2, 4, 8, 16, 32})
      cases.push_back({{NpType::kIntraWarp, true}, s, 8, op});
    // Intra-warp forced to shared memory (the Fig. 16 comparison).
    for (int s : {2, 8})
      cases.push_back({{NpType::kIntraWarp, false}, s, 8, op});
    // Inter-warp (shared memory), including non-power-of-two sizes
    // (Fig. 12's no-padding slave counts 3/5/15).
    for (int s : {2, 3, 5, 8, 15})
      cases.push_back({{NpType::kInterWarp, false}, s, 16, op});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, CommCodegenTest,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(CommCodegen, SharedDeclsReportBytes) {
  NpConfig cfg;
  cfg.np_type = NpType::kInterWarp;
  cfg.slave_size = 8;
  cfg.master_count = 32;
  CommCodegen comm(cfg);
  Block b;
  comm.emit_broadcast(b, "v", ScalarType::kFloat);
  comm.emit_reduction(b, "v", ScalarType::kFloat, ReduceOp::kAdd);
  // bcast buffer: 32 floats; reduction buffer: 8x32 floats.
  EXPECT_EQ(comm.shared_bytes_added(), 32 * 4 + 8 * 32 * 4);
  EXPECT_EQ(comm.take_shared_decls().size(), 2u);
}

TEST(CommCodegen, ShflPathAddsNoSharedMemory) {
  NpConfig cfg;
  cfg.np_type = NpType::kIntraWarp;
  cfg.use_shfl = true;
  cfg.slave_size = 8;
  cfg.master_count = 4;
  CommCodegen comm(cfg);
  Block b;
  comm.emit_broadcast(b, "v", ScalarType::kFloat);
  comm.emit_reduction(b, "v", ScalarType::kFloat, ReduceOp::kAdd);
  EXPECT_EQ(comm.shared_bytes_added(), 0);
}

TEST(CommCodegen, IdentityExprValues) {
  using CC = CommCodegen;
  EXPECT_EQ(print_expr(*CC::identity_expr(ReduceOp::kAdd, ScalarType::kInt)),
            "0");
  EXPECT_EQ(print_expr(*CC::identity_expr(ReduceOp::kMul, ScalarType::kInt)),
            "1");
  EXPECT_EQ(print_expr(*CC::identity_expr(ReduceOp::kMin, ScalarType::kInt)),
            "2147483647");
}

}  // namespace
}  // namespace cudanp::transform
