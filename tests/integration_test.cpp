// End-to-end integration: every paper benchmark, transformed under every
// enumerated NP configuration, must reproduce the CPU reference exactly
// (within float-reassociation tolerance). This is the correctness
// guarantee behind every figure the bench harness regenerates.
#include <gtest/gtest.h>

#include "kernels/benchmark.hpp"
#include "np/autotuner.hpp"

namespace cudanp {
namespace {

constexpr double kTestScale = 0.08;

class BenchmarkIntegration : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkIntegration, BaselineMatchesReference) {
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto w = bench->make_workload();
  auto run =
      runner.execute(np::ExecutionRequest::baseline(bench->kernel(), w)).run;
  EXPECT_GT(run.timing.seconds, 0.0);
  EXPECT_GT(run.occupancy.blocks_per_smx, 0);
  std::string msg;
  ASSERT_TRUE(w.validate(*w.mem, &msg)) << msg;
}

TEST_P(BenchmarkIntegration, EveryNpVariantMatchesReference) {
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  np::Runner runner{sim::DeviceSpec::gtx680()};
  auto probe = bench->make_workload();
  auto configs = np::NpCompiler::enumerate_configs(
      bench->kernel(), static_cast<int>(probe.launch.block.count()),
      runner.spec());
  ASSERT_FALSE(configs.empty());
  int executed = 0;
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.describe());
    transform::TransformResult variant;
    try {
      variant = np::NpCompiler::transform(bench->kernel(), cfg);
    } catch (const CompileError&) {
      continue;  // configuration legitimately inapplicable
    }
    auto w = bench->make_workload();
    auto run =
        runner.execute(np::ExecutionRequest::transformed(variant, w)).run;
    EXPECT_GT(run.timing.seconds, 0.0);
    std::string msg;
    EXPECT_TRUE(w.validate(*w.mem, &msg)) << msg;
    ++executed;
  }
  EXPECT_GT(executed, 0);
}

TEST_P(BenchmarkIntegration, AutotunerNeverLosesToBaseline) {
  // The tuner tests versions exhaustively and can always fall back to the
  // baseline, so its pick must never be a slowdown.
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  np::Autotuner tuner{np::Runner{sim::DeviceSpec::gtx680()}};
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); });
  EXPECT_GE(result.best_speedup(), 1.0);
}

TEST_P(BenchmarkIntegration, NpRaisesThreadLevelParallelism) {
  // The mechanism of the paper (Sec. 2.2): for benchmarks whose baseline
  // TLP is capped by tiny thread blocks, the winning NP variant keeps
  // strictly more warps resident per SMX. (Benchmarks with large
  // baseline blocks can already saturate the SMX; there NP wins through
  // shorter per-warp critical paths instead.)
  auto bench = kernels::make_benchmark(GetParam(), kTestScale);
  auto probe = bench->make_workload();
  if (probe.launch.block.count() > 32)
    GTEST_SKIP() << "baseline TLP not block-size limited";
  np::Autotuner tuner{np::Runner{sim::DeviceSpec::gtx680()}};
  auto result =
      tuner.tune(bench->kernel(), [&] { return bench->make_workload(); });
  ASSERT_GE(result.best, 0);
  const auto& best = result.entries[static_cast<std::size_t>(result.best)];
  EXPECT_GT(best.occupancy.active_warps,
            result.baseline_occupancy.active_warps);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkIntegration,
                         ::testing::ValuesIn(kernels::benchmark_names()));

TEST(Integration, Table1MetadataMatchesKernels) {
  for (auto& bench : kernels::make_benchmark_suite(kTestScale)) {
    auto row = bench->table1();
    EXPECT_EQ(bench->kernel().parallel_loop_count(),
              static_cast<std::size_t>(row.parallel_loops))
        << bench->name();
  }
}

TEST(Integration, FreshWorkloadsAreIndependent) {
  auto bench = kernels::make_benchmark("TMV", kTestScale);
  auto w1 = bench->make_workload();
  auto w2 = bench->make_workload();
  EXPECT_NE(w1.mem.get(), w2.mem.get());
  // Same deterministic inputs in both.
  auto b1 = std::get<sim::BufferId>(w1.launch.args[0]);
  auto b2 = std::get<sim::BufferId>(w2.launch.args[0]);
  EXPECT_EQ(w1.mem->buffer(b1).f32()[17], w2.mem->buffer(b2).f32()[17]);
}

}  // namespace
}  // namespace cudanp
