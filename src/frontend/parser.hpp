// Recursive-descent parser for the CUDA-C kernel subset.
//
// Supported surface syntax (everything the ten paper benchmarks need):
//   - `__global__ void k(float* a, int n) { ... }`
//   - declarations: `float x = e;`, `__shared__ float t[16][16];`,
//     per-thread arrays `float grad[150];` (local-memory resident),
//     multi-declarator lists `__shared__ float a[N][N], b[N][N];`
//   - statements: assignment (=, +=, -=, *=, /=, ++, --), if/else, for,
//     while, break, continue, return, expression statements
//   - expressions: full C operator set with standard precedence, calls,
//     ?:, casts, multi-dim indexing, `threadIdx.x`-style builtins
//   - `#define NAME <int>` constants (substituted at parse time)
//   - `#pragma np parallel for ...` attached to the following loop
#pragma once

#include <memory>
#include <string_view>

#include "ir/kernel.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::frontend {

/// Parses a translation unit. Throws CompileError on unrecoverable syntax
/// errors; accumulated diagnostics are in `diags`.
[[nodiscard]] std::unique_ptr<cudanp::ir::Program> parse_program(
    std::string_view source, cudanp::DiagnosticEngine& diags);

/// Convenience: parse and throw on any error, returning the program.
[[nodiscard]] std::unique_ptr<cudanp::ir::Program> parse_program_or_throw(
    std::string_view source);

}  // namespace cudanp::frontend
