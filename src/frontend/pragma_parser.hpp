// Parser for the `#pragma np` directive mini-language (paper Sec. 3.6).
#pragma once

#include <optional>
#include <string_view>

#include "ir/pragma.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::frontend {

/// Parses the text of a `#pragma` directive (without the leading '#').
/// Returns nullopt for pragmas that are not `np` pragmas (they are ignored,
/// like unknown pragmas in a real compiler); reports malformed np pragmas
/// to `diags` and returns nullopt.
[[nodiscard]] std::optional<cudanp::ir::NpPragma> parse_np_pragma(
    std::string_view directive_text, cudanp::SourceLoc loc,
    cudanp::DiagnosticEngine& diags);

}  // namespace cudanp::frontend
