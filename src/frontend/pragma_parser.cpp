#include "frontend/pragma_parser.hpp"

#include <cctype>
#include <string>
#include <vector>

#include "support/string_utils.hpp"

namespace cudanp::frontend {

using cudanp::ir::NpPragma;
using cudanp::ir::NpType;
using cudanp::ir::ReduceOp;
using cudanp::ir::ReductionClause;

namespace {

/// Cursor over the directive text.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }
  /// Reads an identifier-like word; empty when none.
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_'))
      ++pos_;
    return std::string(s_.substr(start, pos_ - start));
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  /// Reads up to (not including) `stop`, returning the raw contents.
  std::string until(char stop) {
    std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != stop) ++pos_;
    return std::string(s_.substr(start, pos_ - start));
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

bool parse_reduce_op(std::string_view text, ReduceOp& op) {
  if (text == "+") {
    op = ReduceOp::kAdd;
    return true;
  }
  if (text == "*") {
    op = ReduceOp::kMul;
    return true;
  }
  if (text == "min") {
    op = ReduceOp::kMin;
    return true;
  }
  if (text == "max") {
    op = ReduceOp::kMax;
    return true;
  }
  return false;
}

/// Parses `(op:var,var,...)` following a reduction/scan keyword.
bool parse_reduction_clause(Cursor& cur, ReductionClause& clause) {
  if (!cur.consume('(')) return false;
  std::string inner = cur.until(')');
  if (!cur.consume(')')) return false;
  auto colon = inner.find(':');
  if (colon == std::string::npos) return false;
  std::string op_text(cudanp::trim(inner.substr(0, colon)));
  if (!parse_reduce_op(op_text, clause.op)) return false;
  for (const auto& piece : cudanp::split(inner.substr(colon + 1), ',')) {
    std::string var(cudanp::trim(piece));
    if (!cudanp::is_identifier(var)) return false;
    clause.vars.push_back(std::move(var));
  }
  return !clause.vars.empty();
}

bool parse_paren_int(Cursor& cur, int& out) {
  if (!cur.consume('(')) return false;
  std::string inner = cur.until(')');
  if (!cur.consume(')')) return false;
  try {
    out = std::stoi(std::string(cudanp::trim(inner)));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

std::optional<NpPragma> parse_np_pragma(std::string_view text,
                                        cudanp::SourceLoc loc,
                                        cudanp::DiagnosticEngine& diags) {
  Cursor cur(text);
  if (cur.word() != "pragma") return std::nullopt;
  if (cur.word() != "np") return std::nullopt;  // other pragma family

  NpPragma pragma;
  // Accept both `parallel for` and the shorthand `for` used in Fig. 5.
  std::string w = cur.word();
  if (w == "parallel") w = cur.word();
  if (w != "for") {
    diags.error(loc, "expected 'parallel for' after '#pragma np'");
    return std::nullopt;
  }
  pragma.parallel_for = true;

  while (!cur.at_end()) {
    std::string clause = cur.word();
    if (clause == "reduction") {
      ReductionClause rc;
      if (!parse_reduction_clause(cur, rc)) {
        diags.error(loc, "malformed reduction clause");
        return std::nullopt;
      }
      pragma.reductions.push_back(std::move(rc));
    } else if (clause == "scan") {
      ReductionClause rc;
      if (!parse_reduction_clause(cur, rc)) {
        diags.error(loc, "malformed scan clause");
        return std::nullopt;
      }
      pragma.scans.push_back(std::move(rc));
    } else if (clause == "copyin") {
      if (!cur.consume('(')) {
        diags.error(loc, "malformed copyin clause");
        return std::nullopt;
      }
      std::string inner = cur.until(')');
      cur.consume(')');
      for (const auto& piece : cudanp::split(inner, ',')) {
        std::string var(cudanp::trim(piece));
        if (!cudanp::is_identifier(var)) {
          diags.error(loc, "bad identifier in copyin: '" + var + "'");
          return std::nullopt;
        }
        pragma.copy_in.push_back(std::move(var));
      }
    } else if (clause == "num_threads") {
      if (!parse_paren_int(cur, pragma.num_threads)) {
        diags.error(loc, "malformed num_threads clause");
        return std::nullopt;
      }
    } else if (clause == "sm_version") {
      if (!parse_paren_int(cur, pragma.sm_version)) {
        diags.error(loc, "malformed sm_version clause");
        return std::nullopt;
      }
    } else if (clause == "np_type") {
      if (!cur.consume('(')) {
        diags.error(loc, "malformed np_type clause");
        return std::nullopt;
      }
      std::string inner(cudanp::trim(cur.until(')')));
      cur.consume(')');
      if (inner == "inter") {
        pragma.np_type = NpType::kInterWarp;
      } else if (inner == "intra") {
        pragma.np_type = NpType::kIntraWarp;
      } else {
        diags.error(loc, "np_type must be 'inter' or 'intra'");
        return std::nullopt;
      }
    } else {
      diags.error(loc, "unknown np pragma clause '" + clause + "'");
      return std::nullopt;
    }
  }
  return pragma;
}

}  // namespace cudanp::frontend
