// Lexer for the CUDA-C kernel subset.
//
// Preprocessor lines (`#define`, `#pragma np ...`) are emitted as whole-line
// kDirective tokens; the parser interprets them. Comments (// and /* */)
// are skipped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/source_location.hpp"

namespace cudanp::frontend {

enum class TokKind : std::uint8_t {
  kIdent,
  kIntLit,
  kFloatLit,
  kPunct,      // operators & punctuation, multi-char ops pre-merged
  kDirective,  // full `#...` line, text excludes the leading '#'
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;

  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == TokKind::kPunct && text == p;
  }
  [[nodiscard]] bool is_ident(std::string_view id) const {
    return kind == TokKind::kIdent && text == id;
  }
};

/// Tokenizes `source`; lexical errors are reported to `diags` and lexing
/// continues so multiple problems surface in one pass.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source,
                                          cudanp::DiagnosticEngine& diags);

}  // namespace cudanp::frontend
