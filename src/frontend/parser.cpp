#include "frontend/parser.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "frontend/lexer.hpp"
#include "frontend/pragma_parser.hpp"
#include "support/string_utils.hpp"

namespace cudanp::frontend {

using namespace cudanp::ir;

namespace {

/// Control-flow signal: the statement-recovery error cap was reached.
/// Deliberately not a CompileError so enclosing recovery sites do not
/// swallow it; only Parser::run catches it and returns the partial
/// program (parse_program then throws the accumulated summary).
struct TooManyParseErrors {};

class Parser {
 public:
  /// Statement-level recovery stops after this many recorded errors,
  /// mirroring SanitizerEngine::Options::error_limit.
  static constexpr std::size_t kMaxParseErrors = 100;

  Parser(std::vector<Token> toks, cudanp::DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::unique_ptr<Program> run() {
    auto prog = std::make_unique<Program>();
    prog_ = prog.get();
    try {
      while (!at(TokKind::kEof)) {
        if (at(TokKind::kDirective)) {
          handle_top_level_directive();
        } else if (cur().is_ident("__global__")) {
          prog->kernels.push_back(parse_kernel());
        } else {
          throw cudanp::CompileError(
              cur().loc, "expected '__global__' kernel or directive, got '" +
                             cur().text + "'");
        }
      }
    } catch (const TooManyParseErrors&) {
      // The cap note is already in the diagnostics; hand back what was
      // parsed so the caller reports everything collected so far.
    }
    return prog;
  }

 private:
  // ---- token helpers ----
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& peek(std::size_t off = 1) const {
    std::size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }
  const Token& take() { return toks_[pos_++]; }
  bool accept_punct(std::string_view p) {
    if (cur().is_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(std::string_view p) {
    if (!accept_punct(p))
      throw cudanp::CompileError(cur().loc, "expected '" + std::string(p) +
                                                "', got '" + cur().text + "'");
  }
  bool accept_ident(std::string_view id) {
    if (cur().is_ident(id)) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string expect_ident() {
    if (!at(TokKind::kIdent))
      throw cudanp::CompileError(cur().loc,
                                 "expected identifier, got '" + cur().text +
                                     "'");
    return take().text;
  }

  // ---- directives ----
  void handle_top_level_directive() {
    const Token& tok = take();
    std::string_view text = tok.text;
    auto trimmed = cudanp::trim(text);
    if (cudanp::starts_with(trimmed, "define")) {
      std::istringstream is{std::string(trimmed.substr(6))};
      std::string name;
      std::int64_t value = 0;
      if (!(is >> name >> value))
        throw cudanp::CompileError(
            tok.loc, "only `#define NAME <int>` defines are supported");
      prog_->defines[name] = value;
    } else if (cudanp::starts_with(trimmed, "pragma")) {
      // `#pragma np` must precede a loop inside a kernel body; elsewhere it
      // is dangling.
      diags_.warning(tok.loc, "ignoring pragma outside a kernel body");
    } else if (cudanp::starts_with(trimmed, "include")) {
      // Accepted and ignored: kernels are self-contained.
    } else {
      diags_.warning(tok.loc, "ignoring unknown directive: #" +
                                  std::string(trimmed));
    }
  }

  // ---- types ----
  [[nodiscard]] static std::optional<ScalarType> scalar_keyword(
      const Token& t) {
    if (t.is_ident("int")) return ScalarType::kInt;
    if (t.is_ident("float")) return ScalarType::kFloat;
    if (t.is_ident("bool")) return ScalarType::kBool;
    if (t.is_ident("void")) return ScalarType::kVoid;
    return std::nullopt;
  }

  [[nodiscard]] bool starts_decl() const {
    const Token& t = cur();
    if (t.is_ident("__shared__") || t.is_ident("__constant__")) return true;
    return scalar_keyword(t).has_value();
  }

  // ---- kernel ----
  std::unique_ptr<Kernel> parse_kernel() {
    take();  // __global__
    if (!accept_ident("void"))
      throw cudanp::CompileError(cur().loc, "kernels must return void");
    auto kernel = std::make_unique<Kernel>();
    kernel->name = expect_ident();
    expect_punct("(");
    if (!cur().is_punct(")")) {
      do {
        kernel->params.push_back(parse_param());
      } while (accept_punct(","));
    }
    expect_punct(")");
    kernel->body = parse_block();
    return kernel;
  }

  Param parse_param() {
    accept_ident("const");
    auto st = scalar_keyword(cur());
    if (!st)
      throw cudanp::CompileError(cur().loc,
                                 "expected parameter type, got '" +
                                     cur().text + "'");
    take();
    bool is_ptr = accept_punct("*");
    accept_ident("__restrict__");
    Param p;
    p.name = expect_ident();
    p.type = is_ptr ? Type::pointer_to(*st) : Type::scalar_of(*st);
    return p;
  }

  // ---- statement-level error recovery ----
  /// Records a recoverable statement error, stripping the location prefix
  /// CompileError bakes into what() so the diagnostic does not repeat it.
  void record_error(const cudanp::CompileError& e) {
    std::string msg = e.what();
    if (e.loc().valid()) {
      std::string prefix = e.loc().str() + ": ";
      if (msg.rfind(prefix, 0) == 0) msg = msg.substr(prefix.size());
    }
    diags_.error(e.loc(), std::move(msg));
  }

  /// Skips ahead to the next statement boundary: consumes through the
  /// next top-level ';' or stops (without consuming) at the '}' closing
  /// the current block, balancing nested braces on the way.
  void synchronize() {
    int depth = 0;
    while (!at(TokKind::kEof)) {
      if (depth == 0 && cur().is_punct(";")) {
        take();
        return;
      }
      if (cur().is_punct("}")) {
        if (depth == 0) return;
        --depth;
      } else if (cur().is_punct("{")) {
        ++depth;
      }
      take();
    }
  }

  /// One recovery step: record, enforce the error cap, re-synchronize.
  void report_and_recover(const cudanp::CompileError& e) {
    if (diags_.error_count() >= kMaxParseErrors) throw TooManyParseErrors{};
    record_error(e);
    if (diags_.error_count() >= kMaxParseErrors) {
      diags_.note(e.loc(), "too many parse errors (limit " +
                               std::to_string(kMaxParseErrors) +
                               "); giving up on this compile");
      throw TooManyParseErrors{};
    }
    synchronize();
  }

  // ---- statements ----
  BlockPtr parse_block() {
    SourceLoc loc = cur().loc;
    expect_punct("{");
    auto block = std::make_unique<Block>(loc);
    std::optional<NpPragma> pending_pragma;
    while (!cur().is_punct("}")) {
      if (at(TokKind::kEof))
        throw cudanp::CompileError(cur().loc, "unterminated block");
      if (at(TokKind::kDirective)) {
        const Token& tok = take();
        auto pragma = parse_np_pragma(tok.text, tok.loc, diags_);
        if (pragma) {
          if (pending_pragma)
            diags_.warning(tok.loc, "pragma overrides a previous pragma");
          pending_pragma = pragma;
        }
        continue;
      }
      // A statement that fails to parse is recorded and skipped (to the
      // next ';' or the closing '}'), so one compile reports every
      // independent diagnostic instead of only the first.
      try {
        // Multi-declarator lists splice directly into the enclosing block
        // so each declaration is an independent statement.
        if (starts_decl()) {
          auto decls = parse_decl_list();
          expect_punct(";");
          if (pending_pragma) {
            diags_.error(decls.front()->loc(),
                         "#pragma np must be followed by a for loop");
            pending_pragma.reset();
          }
          for (auto& d : decls) block->push(std::move(d));
          continue;
        }
        StmtPtr s = parse_stmt();
        if (pending_pragma) {
          if (s->kind() == StmtKind::kFor) {
            static_cast<ForStmt&>(*s).pragma = std::move(pending_pragma);
          } else {
            diags_.error(s->loc(),
                         "#pragma np must be followed by a for loop");
          }
          pending_pragma.reset();
        }
        block->push(std::move(s));
      } catch (const cudanp::CompileError& e) {
        report_and_recover(e);
        pending_pragma.reset();
      }
    }
    expect_punct("}");
    return block;
  }

  /// Single statement or `{...}`; single statements are wrapped in a Block
  /// when used as a control-flow body.
  BlockPtr parse_body() {
    if (cur().is_punct("{")) return parse_block();
    auto block = std::make_unique<Block>(cur().loc);
    block->push(parse_stmt());
    return block;
  }

  StmtPtr parse_stmt() {
    SourceLoc loc = cur().loc;
    if (cur().is_punct("{")) return parse_block();
    if (cur().is_punct(";")) {
      take();
      return std::make_unique<Block>(loc);  // empty statement
    }
    if (cur().is_ident("if")) return parse_if();
    if (cur().is_ident("for")) return parse_for();
    if (cur().is_ident("while")) return parse_while();
    if (cur().is_ident("return")) {
      take();
      expect_punct(";");
      return std::make_unique<ReturnStmt>(loc);
    }
    if (cur().is_ident("break")) {
      take();
      expect_punct(";");
      return std::make_unique<BreakStmt>(loc);
    }
    if (cur().is_ident("continue")) {
      take();
      expect_punct(";");
      return std::make_unique<ContinueStmt>(loc);
    }
    if (starts_decl()) {
      auto stmts = parse_decl_list();
      expect_punct(";");
      if (stmts.size() == 1) return std::move(stmts.front());
      auto block = std::make_unique<Block>(loc);
      for (auto& s : stmts) block->push(std::move(s));
      return block;
    }
    StmtPtr s = parse_assign_or_expr();
    expect_punct(";");
    return s;
  }

  /// `[qualifier] type declarator (, declarator)*` without the ';'.
  std::vector<StmtPtr> parse_decl_list() {
    SourceLoc loc = cur().loc;
    AddrSpace space = AddrSpace::kRegister;
    if (accept_ident("__shared__")) space = AddrSpace::kShared;
    else if (accept_ident("__constant__")) space = AddrSpace::kConstant;
    auto st = scalar_keyword(cur());
    if (!st)
      throw cudanp::CompileError(cur().loc, "expected type in declaration");
    take();
    std::vector<StmtPtr> out;
    do {
      bool is_ptr = accept_punct("*");
      std::string name = expect_ident();
      std::vector<std::int64_t> dims;
      while (accept_punct("[")) {
        dims.push_back(parse_const_int());
        expect_punct("]");
      }
      ExprPtr init;
      std::vector<ExprPtr> init_list;
      if (accept_punct("=")) {
        if (accept_punct("{")) {
          if (dims.empty())
            throw cudanp::CompileError(cur().loc,
                                       "brace initializer requires an array");
          if (!cur().is_punct("}")) {
            do {
              init_list.push_back(parse_expr());
            } while (accept_punct(","));
          }
          expect_punct("}");
        } else {
          init = parse_expr();
        }
      }
      Type type;
      if (is_ptr) {
        type = Type::pointer_to(*st);
      } else if (!dims.empty()) {
        // A per-thread array defaults to local memory (paper Sec. 3.3);
        // __shared__/__constant__ qualifiers override.
        AddrSpace arr_space =
            space == AddrSpace::kRegister ? AddrSpace::kLocal : space;
        type = Type::array_of(*st, std::move(dims), arr_space);
      } else {
        type = Type::scalar_of(*st, space);
      }
      auto decl = std::make_unique<DeclStmt>(type, std::move(name),
                                             std::move(init), loc);
      decl->init_list = std::move(init_list);
      out.push_back(std::move(decl));
    } while (accept_punct(","));
    return out;
  }

  std::int64_t parse_const_int() {
    ExprPtr e = parse_expr();
    return fold_const(*e);
  }

  std::int64_t fold_const(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return static_cast<const IntLit&>(e).value;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        std::int64_t l = fold_const(*b.lhs);
        std::int64_t r = fold_const(*b.rhs);
        switch (b.op) {
          case BinOp::kAdd: return l + r;
          case BinOp::kSub: return l - r;
          case BinOp::kMul: return l * r;
          case BinOp::kDiv: return r == 0 ? 0 : l / r;
          case BinOp::kMod: return r == 0 ? 0 : l % r;
          case BinOp::kShl: return l << r;
          case BinOp::kShr: return l >> r;
          default: break;
        }
        break;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnOp::kNeg) return -fold_const(*u.operand);
        break;
      }
      default:
        break;
    }
    throw cudanp::CompileError(e.loc(),
                               "array dimension is not a compile-time "
                               "integer constant");
  }

  StmtPtr parse_if() {
    SourceLoc loc = take().loc;  // if
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    BlockPtr then_body = parse_body();
    BlockPtr else_body;
    if (accept_ident("else")) else_body = parse_body();
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_body),
                                    std::move(else_body), loc);
  }

  StmtPtr parse_for() {
    SourceLoc loc = take().loc;  // for
    expect_punct("(");
    StmtPtr init;
    if (!cur().is_punct(";")) {
      if (starts_decl()) {
        auto decls = parse_decl_list();
        if (decls.size() == 1) {
          init = std::move(decls.front());
        } else {
          // `int i = 0, k = 0`: a compound init clause.
          auto b = std::make_unique<Block>(loc);
          for (auto& d : decls) b->push(std::move(d));
          init = std::move(b);
        }
      } else {
        init = parse_assign_or_expr();
      }
    }
    expect_punct(";");
    ExprPtr cond;
    if (!cur().is_punct(";")) cond = parse_expr();
    expect_punct(";");
    StmtPtr inc;
    if (!cur().is_punct(")")) {
      inc = parse_assign_or_expr();
      if (cur().is_punct(",")) {
        // Comma-operator increment: `i += 8, k += 1`.
        auto b = std::make_unique<Block>(loc);
        b->push(std::move(inc));
        while (accept_punct(",")) b->push(parse_assign_or_expr());
        inc = std::move(b);
      }
    }
    expect_punct(")");
    BlockPtr body = parse_body();
    return std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                     std::move(inc), std::move(body), loc);
  }

  StmtPtr parse_while() {
    SourceLoc loc = take().loc;  // while
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    BlockPtr body = parse_body();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body), loc);
  }

  /// Assignment (incl. compound and ++/--) or bare expression statement.
  StmtPtr parse_assign_or_expr() {
    SourceLoc loc = cur().loc;
    // `++x` prefix form.
    if (cur().is_punct("++") || cur().is_punct("--")) {
      bool inc = take().text == "++";
      ExprPtr lhs = parse_unary();
      return std::make_unique<AssignStmt>(
          std::move(lhs), inc ? AssignOp::kAdd : AssignOp::kSub, make_int(1),
          loc);
    }
    ExprPtr lhs = parse_expr();
    if (cur().is_punct("=") || cur().is_punct("+=") || cur().is_punct("-=") ||
        cur().is_punct("*=") || cur().is_punct("/=")) {
      std::string op_text = take().text;
      AssignOp op = AssignOp::kAssign;
      if (op_text == "+=") op = AssignOp::kAdd;
      else if (op_text == "-=") op = AssignOp::kSub;
      else if (op_text == "*=") op = AssignOp::kMul;
      else if (op_text == "/=") op = AssignOp::kDiv;
      ExprPtr rhs = parse_expr();
      require_lvalue(*lhs);
      return std::make_unique<AssignStmt>(std::move(lhs), op, std::move(rhs),
                                          loc);
    }
    if (cur().is_punct("++") || cur().is_punct("--")) {
      bool inc = take().text == "++";
      require_lvalue(*lhs);
      return std::make_unique<AssignStmt>(
          std::move(lhs), inc ? AssignOp::kAdd : AssignOp::kSub, make_int(1),
          loc);
    }
    return std::make_unique<ExprStmt>(std::move(lhs), loc);
  }

  void require_lvalue(const Expr& e) {
    if (e.kind() != ExprKind::kVarRef && e.kind() != ExprKind::kArrayIndex)
      throw cudanp::CompileError(e.loc(), "assignment target is not an "
                                          "lvalue");
  }

  // ---- expressions (precedence climbing) ----
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(1);
    if (accept_punct("?")) {
      ExprPtr t = parse_expr();
      expect_punct(":");
      ExprPtr f = parse_expr();
      return std::make_unique<TernaryExpr>(std::move(cond), std::move(t),
                                           std::move(f));
    }
    return cond;
  }

  [[nodiscard]] static std::optional<BinOp> binop_of(const Token& t) {
    if (t.kind != TokKind::kPunct) return std::nullopt;
    const std::string& p = t.text;
    if (p == "*") return BinOp::kMul;
    if (p == "/") return BinOp::kDiv;
    if (p == "%") return BinOp::kMod;
    if (p == "+") return BinOp::kAdd;
    if (p == "-") return BinOp::kSub;
    if (p == "<<") return BinOp::kShl;
    if (p == ">>") return BinOp::kShr;
    if (p == "<") return BinOp::kLt;
    if (p == "<=") return BinOp::kLe;
    if (p == ">") return BinOp::kGt;
    if (p == ">=") return BinOp::kGe;
    if (p == "==") return BinOp::kEq;
    if (p == "!=") return BinOp::kNe;
    if (p == "&") return BinOp::kBitAnd;
    if (p == "^") return BinOp::kBitXor;
    if (p == "|") return BinOp::kBitOr;
    if (p == "&&") return BinOp::kLAnd;
    if (p == "||") return BinOp::kLOr;
    return std::nullopt;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      auto op = binop_of(cur());
      if (!op) break;
      int prec = precedence(*op);
      if (prec < min_prec) break;
      SourceLoc loc = take().loc;
      ExprPtr rhs = parse_binary(prec + 1);
      lhs = std::make_unique<BinaryExpr>(*op, std::move(lhs), std::move(rhs),
                                         loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    SourceLoc loc = cur().loc;
    if (accept_punct("-"))
      return std::make_unique<UnaryExpr>(UnOp::kNeg, parse_unary(), loc);
    if (accept_punct("!"))
      return std::make_unique<UnaryExpr>(UnOp::kLNot, parse_unary(), loc);
    if (accept_punct("+")) return parse_unary();
    // Cast: `(int) e` / `(float) e`.
    if (cur().is_punct("(") &&
        (peek(1).is_ident("int") || peek(1).is_ident("float")) &&
        peek(2).is_punct(")")) {
      take();
      ScalarType to =
          take().is_ident("int") ? ScalarType::kInt : ScalarType::kFloat;
      take();
      return std::make_unique<CastExpr>(to, parse_unary(), loc);
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (cur().is_punct("[")) {
      std::vector<ExprPtr> indices;
      while (accept_punct("[")) {
        indices.push_back(parse_expr());
        expect_punct("]");
      }
      e = std::make_unique<ArrayIndex>(std::move(e), std::move(indices),
                                       e->loc());
    }
    return e;
  }

  ExprPtr parse_primary() {
    SourceLoc loc = cur().loc;
    if (at(TokKind::kIntLit)) return std::make_unique<IntLit>(take().int_value, loc);
    if (at(TokKind::kFloatLit))
      return std::make_unique<FloatLit>(take().float_value, loc);
    if (accept_punct("(")) {
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (at(TokKind::kIdent)) {
      std::string name = take().text;
      // Builtin geometry: threadIdx.x etc.
      if ((name == "threadIdx" || name == "blockIdx" || name == "blockDim" ||
           name == "gridDim") &&
          cur().is_punct(".")) {
        take();
        std::string member = expect_ident();
        if (member != "x" && member != "y" && member != "z")
          throw cudanp::CompileError(loc, name + " has no member '" + member +
                                              "'");
        return std::make_unique<VarRef>(name + "." + member, loc);
      }
      // Call.
      if (cur().is_punct("(")) {
        take();
        std::vector<ExprPtr> args;
        if (!cur().is_punct(")")) {
          do {
            args.push_back(parse_expr());
          } while (accept_punct(","));
        }
        expect_punct(")");
        return std::make_unique<CallExpr>(std::move(name), std::move(args),
                                          loc);
      }
      // #define substitution.
      auto it = prog_->defines.find(name);
      if (it != prog_->defines.end())
        return std::make_unique<IntLit>(it->second, loc);
      return std::make_unique<VarRef>(std::move(name), loc);
    }
    throw cudanp::CompileError(loc, "unexpected token '" + cur().text +
                                        "' in expression");
  }

  std::vector<Token> toks_;
  cudanp::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  Program* prog_ = nullptr;
};

}  // namespace

std::unique_ptr<Program> parse_program(std::string_view source,
                                       cudanp::DiagnosticEngine& diags) {
  auto toks = tokenize(source, diags);
  if (diags.has_errors())
    throw cudanp::CompileError("lexical errors:\n" + diags.summary());
  Parser parser(std::move(toks), diags);
  std::unique_ptr<Program> prog;
  try {
    prog = parser.run();
  } catch (const cudanp::CompileError& e) {
    // Fatal, non-recoverable error (kernel signature, top level); fold in
    // any statement errors recovered before it so nothing is lost.
    if (!diags.has_errors()) throw;
    throw cudanp::CompileError("parse errors:\n" + diags.summary() +
                               e.what());
  }
  if (diags.has_errors())
    throw cudanp::CompileError("parse errors:\n" + diags.summary());
  return prog;
}

std::unique_ptr<Program> parse_program_or_throw(std::string_view source) {
  cudanp::DiagnosticEngine diags;
  return parse_program(source, diags);
}

}  // namespace cudanp::frontend
