#include "frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

namespace cudanp::frontend {

namespace {

class Lexer {
 public:
  Lexer(std::string_view src, cudanp::DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      if (at_end()) break;
      SourceLoc loc = here();
      char c = peek();
      if (c == '#') {
        out.push_back(lex_directive(loc));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(lex_ident(loc));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' &&
                  pos_ + 1 < src_.size() &&
                  std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        out.push_back(lex_number(loc));
      } else {
        out.push_back(lex_punct(loc));
      }
    }
    Token eof;
    eof.kind = TokKind::kEof;
    eof.loc = here();
    out.push_back(eof);
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  void skip_ws_and_comments() {
    while (!at_end()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (!at_end()) {
          advance();
          advance();
        } else {
          diags_.error(here(), "unterminated block comment");
        }
      } else {
        break;
      }
    }
  }

  Token lex_directive(SourceLoc loc) {
    advance();  // '#'
    std::string text;
    // A directive may be continued with trailing backslash.
    while (!at_end() && peek() != '\n') {
      char c = advance();
      if (c == '\\' && peek() == '\n') {
        advance();
        continue;
      }
      text += c;
    }
    Token t;
    t.kind = TokKind::kDirective;
    t.text = std::move(text);
    t.loc = loc;
    return t;
  }

  Token lex_ident(SourceLoc loc) {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_'))
      text += advance();
    Token t;
    t.kind = TokKind::kIdent;
    t.text = std::move(text);
    t.loc = loc;
    return t;
  }

  Token lex_number(SourceLoc loc) {
    std::string text;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      is_hex = true;
      text += advance();
      text += advance();
      while (!at_end() &&
             std::isxdigit(static_cast<unsigned char>(peek())))
        text += advance();
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        text += advance();
      if (peek() == '.') {
        is_float = true;
        text += advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
          text += advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        text += advance();
        if (peek() == '+' || peek() == '-') text += advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
          text += advance();
      }
    }
    // Suffixes: f/F force float, u/U/l/L are ignored for ints.
    if (peek() == 'f' || peek() == 'F') {
      is_float = true;
      advance();
    } else {
      while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
        advance();
    }
    Token t;
    t.loc = loc;
    t.text = text;
    if (is_float) {
      t.kind = TokKind::kFloatLit;
      t.float_value = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokKind::kIntLit;
      t.int_value = std::strtoll(text.c_str(), nullptr, is_hex ? 16 : 10);
    }
    return t;
  }

  Token lex_punct(SourceLoc loc) {
    static constexpr std::array<std::string_view, 19> kTwoChar = {
        "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=",
        "*=", "/=", "%=", "++", "--", "->", "&=", "|=", "^="};
    Token t;
    t.kind = TokKind::kPunct;
    t.loc = loc;
    char c0 = peek();
    char c1 = peek(1);
    std::string two{c0, c1};
    for (auto tc : kTwoChar) {
      if (two == tc) {
        advance();
        advance();
        t.text = two;
        return t;
      }
    }
    advance();
    t.text = std::string(1, c0);
    static constexpr std::string_view kSingles = "+-*/%<>=!&|^~?:;,.(){}[]";
    if (kSingles.find(c0) == std::string_view::npos)
      diags_.error(loc, std::string("unexpected character '") + c0 + "'");
    return t;
  }

  std::string_view src_;
  cudanp::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source,
                            cudanp::DiagnosticEngine& diags) {
  return Lexer(source, diags).run();
}

}  // namespace cudanp::frontend
