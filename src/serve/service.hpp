// Resilient batch serving: the failure *policy* layered on PR 3's
// failure primitives.
//
// A BatchService accepts compile-and-run jobs (kernel source + workload
// + sanitizer options) into a bounded queue and drives each one through
// the full guarded pipeline (parse -> NpCompiler::compile_with_fallback
// under sanitizer + watchdog), surviving every failure mode the chaos
// harness can produce:
//
//   admission   - structured overload rejection: infeasible deadlines
//                 are rejected up front, and jobs beyond the queue
//                 capacity are shed with a distinct cause;
//   deadlines   - each job's remaining wall-clock budget is mapped onto
//                 the per-block step watchdog (remaining_ms *
//                 steps_per_ms), so a hanging kernel trips at its
//                 deadline instead of consuming the global budget;
//   retry       - transient failures (np::transient) retry with
//                 exponential backoff and deterministic jitter until
//                 attempts or deadline run out;
//   breakers    - a per-(kernel, first-choice variant) circuit breaker
//                 opens after K consecutive failures, routes traffic to
//                 the guaranteed baseline, and half-open-probes back;
//   drain       - request_drain() lets in-flight jobs finish and
//                 rejects queued ones with cause "drained".
//
// Every job ends in exactly one terminal state — succeeded /
// succeeded-after-retry / degraded-to-baseline / rejected — and the run
// emits a ServiceReport with str() + json(). All time is virtual
// (serve/clock.hpp) and breaker transitions commit in admission order,
// so a whole run is bit-identical at every --jobs count. Scheduling
// runs on the PR-2 exec_pool: jobs execute concurrently, each
// simulating its grid serially (the pool is not reentrant).
//
// Exposed as `cudanp-cc --batch=<manifest>`; see serve/manifest.hpp and
// docs/robustness.md ("Serving and degradation policy").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "np/compiler.hpp"
#include "serve/breaker.hpp"
#include "serve/retry.hpp"
#include "sim/device.hpp"
#include "sim/fault.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp::serve {

class ArtifactCache;
class WorkerSupervisor;

/// Breakers that outlive a single BatchService::run — the daemon's
/// cross-request (and, when enabled, cross-tenant) breaker state.
/// Breaker cooldowns are measured in virtual time, which restarts at 0
/// every run; base_ms carries the virtual clock forward across runs so
/// an open breaker keeps cooling down between requests. Not
/// thread-safe: the daemon executes requests serially.
struct BreakerRegistry {
  std::map<std::string, CircuitBreaker> breakers;
  std::int64_t base_ms = 0;
};

/// One compile-and-run job.
struct JobSpec {
  /// Label used in reports; defaults to "job<index>" when empty.
  std::string name;
  /// Kernel source text (required).
  std::string source;
  /// Kernel to compile; empty = first kernel with #pragma np loops,
  /// else the first kernel.
  std::string kernel;
  /// Synthetic workload problem size and baseline block size.
  int elems = 32;
  int tb = 32;
  /// Per-job wall-clock deadline in virtual ms; 0 = service default.
  std::int64_t deadline_ms = 0;
  /// Attempt cap for this job; 0 = the retry policy's max_attempts.
  int max_attempts = 0;
  /// Per-block watchdog budget (0 = auto); the deadline clamps it.
  long long watchdog_steps = 0;
  /// Chaos knobs: when inject is true, `fault` is wired into the
  /// interpreter. transient_attempts > 0 limits injection to the first
  /// N attempts (a transient fault the retry loop outlives); 0 injects
  /// on every attempt (a persistent fault the breaker learns about).
  bool inject = false;
  sim::FaultPlan fault;
  int transient_attempts = 0;
};

/// The four terminal states; every submitted job ends in exactly one.
enum class JobState : std::uint8_t {
  kSucceeded,            // pristine first attempt
  kSucceededAfterRetry,  // pristine after >= 1 retry
  kDegraded,             // ran, but a quarantine/breaker/deadline meant
                         // a non-first-choice (usually baseline) answer
  kRejected,             // never produced an answer: admission, drain,
                         // compile error, or internal error
};

[[nodiscard]] const char* to_string(JobState s);
/// Reverses to_string; nullopt on an unknown slug.
[[nodiscard]] std::optional<JobState> job_state_from_string(
    std::string_view s);

/// Where each job's compile-and-run step executes.
enum class IsolationMode : std::uint8_t {
  kNone,     // in-process (the historical default)
  kProcess,  // sandboxed worker subprocess per attempt (crash-isolated)
};

[[nodiscard]] const char* to_string(IsolationMode m);
[[nodiscard]] std::optional<IsolationMode> isolation_mode_from_string(
    std::string_view s);

struct JobResult {
  std::size_t index = 0;
  std::string name;
  JobState state = JobState::kRejected;
  /// Terminal cause slug: empty on success; "queue-full",
  /// "deadline-infeasible", "empty-source", "drained", "compile-error",
  /// "no-kernel", "internal-error", "breaker-open",
  /// "deadline-exceeded", or a np::FailureCause slug.
  std::string cause;
  /// Human detail for rejections (compile diagnostics etc.).
  std::string detail;
  /// Chosen configuration ("baseline" when degraded to baseline).
  std::string chosen_config;
  /// Breaker key this job reported to; empty when it never ran.
  std::string breaker_key;
  int attempts = 0;
  /// Attempts that died with the worker (--isolate=process only): the
  /// worker crashed, was killed, or went silent past the read timeout.
  int crashed_attempts = 0;
  std::int64_t deadline_ms = 0;
  /// Virtual ms this job consumed (attempt costs + backoffs).
  std::int64_t virtual_ms = 0;
  bool deadline_exceeded = false;
  /// True when an open breaker routed this job to the baseline.
  bool breaker_routed = false;
  /// Quarantine records from the final attempt.
  std::vector<np::VariantFailure> quarantined;

  [[nodiscard]] bool terminal_ok() const {
    return state == JobState::kSucceeded ||
           state == JobState::kSucceededAfterRetry;
  }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;
  /// Parses a json() document back; nullopt on malformed input.
  [[nodiscard]] static std::optional<JobResult> from_json(
      std::string_view text);
  [[nodiscard]] static std::optional<JobResult> from_json_value(
      const json::Value& v);
};

/// Final state of one circuit breaker, for the report.
struct BreakerSnapshot {
  std::string key;  // "<kernel>|<first-choice config>"
  BreakerState state = BreakerState::kClosed;
  int opens = 0;
  int probes = 0;
  int short_circuits = 0;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<BreakerSnapshot> from_json(
      std::string_view text);
  [[nodiscard]] static std::optional<BreakerSnapshot> from_json_value(
      const json::Value& v);
};

/// Speculative per-job outcome: what execution produced, before the
/// serial commit turns it into a JobResult. Public (and serializable)
/// because the write-ahead journal persists exactly these — the commit
/// pass is a pure function of outcomes in admission order, which is why
/// a resumed batch reproduces an uninterrupted report byte for byte.
struct JobOutcome {
  bool ran = false;       // executed (false = drained slot)
  bool success = false;   // pristine decision on the final attempt
  bool rejected = false;  // terminal kRejected during execution
  std::string reject_cause;
  std::string reject_detail;
  int attempts = 0;
  int crashed_attempts = 0;
  std::int64_t virtual_ms = 0;
  bool deadline_exceeded = false;
  std::int64_t deadline_ms = 0;
  std::string breaker_key;
  np::FallbackDecision decision;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<JobOutcome> from_json(
      std::string_view text);
  [[nodiscard]] static std::optional<JobOutcome> from_json_value(
      const json::Value& v);
};

/// Per-run accounting: every counter a long-lived operator cares about.
struct ServiceReport {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  /// Load-shed at admission (queue full).
  std::size_t shed = 0;
  /// Rejected at admission for structured reasons other than shedding
  /// (infeasible deadline, empty source).
  std::size_t rejected_admission = 0;
  /// Accepted but rejected by a drain before starting.
  std::size_t drained = 0;
  std::size_t succeeded = 0;
  std::size_t succeeded_after_retry = 0;
  std::size_t degraded = 0;
  /// Terminal kRejected during execution (compile errors etc.).
  std::size_t rejected_execution = 0;
  /// Extra attempts performed across all jobs.
  std::size_t retries = 0;
  /// Attempts that died with their worker process (exit / signal /
  /// wedge), across all jobs. Nonzero only under --isolate=process;
  /// nonzero crashes flip cudanp-cc's exit to 8 (crashed-but-completed).
  std::size_t crashes = 0;
  /// Jobs whose final decision hit a resource cap (RLIMIT_AS) — the
  /// non-transient, breaker-eligible cousin of a crash.
  std::size_t resource_limited = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t breaker_opens = 0;
  std::size_t breaker_probes = 0;
  std::size_t breaker_short_circuits = 0;
  /// Final virtual clock (sum of committed job costs).
  std::int64_t virtual_ms = 0;

  std::vector<JobResult> jobs;
  std::vector<BreakerSnapshot> breakers;

  /// True when every submitted job reached a terminal state (always, by
  /// construction — asserted by tests, relied on by CI).
  [[nodiscard]] bool complete() const { return jobs.size() == submitted; }
  /// True when every job succeeded (possibly after retries).
  [[nodiscard]] bool all_succeeded() const {
    return degraded == 0 && rejected_admission == 0 && shed == 0 &&
           drained == 0 && rejected_execution == 0;
  }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;
  /// Parses a json() document back; nullopt on malformed input. The
  /// round trip is exact — the resume CI job diffs json() of a resumed
  /// run against an uninterrupted one byte for byte.
  [[nodiscard]] static std::optional<ServiceReport> from_json(
      std::string_view text);
};

struct ServiceOptions {
  /// Bounded admission queue; submissions beyond it are shed.
  int queue_capacity = 256;
  /// Host threads executing jobs concurrently (exec_pool semantics:
  /// 0 = CUDANP_JOBS env, else hardware concurrency).
  int jobs = 0;
  /// Deadline applied to jobs that do not set one.
  std::int64_t default_deadline_ms = 2000;
  /// Admission floor: declared deadlines below this are rejected
  /// outright (structured overload rejection) rather than admitted to
  /// fail.
  std::int64_t min_feasible_ms = 1;
  /// Deadline -> watchdog mapping: a job with R virtual ms remaining
  /// runs its next attempt under a step budget of R * steps_per_ms.
  std::int64_t steps_per_ms = 4096;
  /// Virtual cost charged per completed attempt (a watchdog trip whose
  /// budget was deadline-bound charges the full remaining deadline
  /// instead).
  std::int64_t attempt_cost_ms = 10;
  /// Deterministic drain point for tests: accepted-queue positions >=
  /// this are rejected with cause "drained" (as if request_drain() had
  /// been called after that many jobs were claimed). Negative = never.
  std::int64_t drain_before_job = -1;
  RetryPolicy retry;
  BreakerPolicy breaker;
  sim::SanitizerEngine::Options sanitizer;
  double f32_rel_tol = 1e-3;

  /// Symbolic equivalence certification (np/certifier.hpp): each
  /// (kernel, variant) pair is certified once per batch — proven
  /// variants carry a machine-checkable certificate, refuted ones are
  /// quarantined as proven-wrong before any worker spawns. Certificates
  /// are content-addressed serve artifacts: with an artifact_cache they
  /// persist across runs (checksummed; torn/corrupt entries quarantined
  /// and re-certified).
  bool certify = false;
  /// With certify: variants whose certificate verdict is proven skip
  /// the per-run sanitized cross-check and execute on the fast path
  /// (the watchdog still applies). Off, certificates only gate refuted
  /// variants.
  bool certified_fast_path = false;

  /// Crash isolation: kProcess runs every attempt in a sandboxed worker
  /// subprocess (serve/supervisor.hpp), so a natively crashing,
  /// aborting, or wedged job cannot take the batch down. Reports are
  /// bit-identical across modes for batches that do not actually crash.
  IsolationMode isolate = IsolationMode::kNone;
  /// Worker command line; empty = re-exec /proc/self/exe --worker.
  std::vector<std::string> worker_cmd;
  /// RLIMIT_AS cap per worker in MiB (0 = uncapped); overruns surface
  /// as the "resource-limit" failure cause.
  std::int64_t worker_mem_mb = 0;
  /// Supervisor read timeout / worker heartbeat interval (real ms).
  int worker_read_timeout_ms = 10000;
  int worker_heartbeat_ms = 200;

  /// Write-ahead commit journal: when set, every job's outcome is
  /// appended durably (fsync per record) in admission order before its
  /// commit. A batch killed at any point — including SIGKILL — can then
  /// finish under resume=true with a ServiceReport byte-identical to an
  /// uninterrupted run; a journal whose fingerprint does not match the
  /// submitted batch raises ResumeMismatchError (exit 9 in cudanp-cc).
  std::string journal_path;
  bool resume = false;
  /// Jobs executed per execute->journal->commit round when journaling
  /// (bounds how much re-execution a crash can cost). Chunking cannot
  /// affect the report: outcomes are independent and commit order is
  /// fixed. <= 0 runs the whole batch as one chunk.
  int commit_chunk = 16;

  /// Content-addressed compile cache shared across runs (non-owning;
  /// the daemon owns one). A hit returns the byte-identical
  /// AttemptResult recompilation would produce, so caching can never
  /// change a report — only skip work. Null = no caching.
  ArtifactCache* artifact_cache = nullptr;
  /// Long-lived worker pool shared across runs (non-owning). When set
  /// (and isolate == kProcess) the service uses it instead of spawning
  /// its own, so crash-loop respawn backoff accumulates daemon-wide
  /// instead of resetting per batch. Null = per-run supervisor.
  WorkerSupervisor* shared_supervisor = nullptr;
  /// Cross-run breaker state (non-owning). When set, this run reads
  /// and advances the shared breakers (keyed identically to the local
  /// ones) and snapshots only the keys it touched, in sorted order —
  /// so a run that shares breakers with nobody reports exactly what a
  /// standalone run would. Null = per-run breakers (the default, and
  /// the strict determinism contract).
  BreakerRegistry* breaker_registry = nullptr;
};

/// Content-addressed artifact-cache key of one equivalence certificate:
/// the job source plus everything that changes the proof (kernel,
/// device model, workload shape, config, certifier options). Exposed so
/// tests and operators can address stored certificates directly.
[[nodiscard]] std::string certificate_cache_key(
    const std::string& source, const std::string& kernel,
    const std::string& device, int sm_version, int elems, int tb,
    const std::string& config, const np::CertifyOptions& copt);

class BatchService {
 public:
  BatchService(sim::DeviceSpec spec, ServiceOptions opt);
  ~BatchService();

  /// Runs a whole batch to completion and returns the report. Every job
  /// in `jobs` appears in report.jobs (same order) in exactly one
  /// terminal state; the call never throws on job misbehaviour (a
  /// resume fingerprint mismatch throws ResumeMismatchError — operator
  /// error, not job misbehaviour).
  [[nodiscard]] ServiceReport run(const std::vector<JobSpec>& jobs);

  /// Graceful shutdown: jobs already executing finish and commit;
  /// queued jobs are rejected with cause "drained". Safe to call from
  /// any thread while run() is in flight. (For deterministic tests use
  /// ServiceOptions::drain_before_job instead — which jobs a live drain
  /// catches depends on scheduling, by nature.)
  void request_drain() { drain_.store(true, std::memory_order_relaxed); }

 private:
  void run_job(const JobSpec& spec, std::size_t index,
               JobOutcome* out) const;

  sim::DeviceSpec spec_;
  ServiceOptions opt_;
  std::atomic<bool> drain_{false};
  /// Live only while run() executes with isolate == kProcess and no
  /// shared supervisor was provided.
  std::unique_ptr<WorkerSupervisor> owned_supervisor_;
  /// The supervisor run_job executes through (owned or shared); null
  /// outside run() or under isolate == kNone.
  WorkerSupervisor* sup_ = nullptr;
};

}  // namespace cudanp::serve
