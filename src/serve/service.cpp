#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "np/runner.hpp"
#include "serve/clock.hpp"
#include "sim/exec_pool.hpp"
#include "sim/interpreter.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::serve {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kSucceeded: return "succeeded";
    case JobState::kSucceededAfterRetry: return "succeeded-after-retry";
    case JobState::kDegraded: return "degraded";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const ir::Kernel* pick_kernel(const ir::Program& program,
                              const std::string& name) {
  if (!name.empty()) return program.find_kernel(name);
  for (const auto& k : program.kernels)
    if (k->parallel_loop_count() > 0) return k.get();
  return program.kernels.empty() ? nullptr : program.kernels.front().get();
}

}  // namespace

std::string JobResult::str() const {
  std::ostringstream os;
  os << name << ": " << to_string(state);
  if (!cause.empty()) os << " (" << cause << ")";
  if (!chosen_config.empty()) os << " -> " << chosen_config;
  os << " [attempts=" << attempts << ", virtual_ms=" << virtual_ms << "]";
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string JobResult::json() const {
  std::ostringstream os;
  os << "{\"index\":" << index << ",\"name\":\"" << json_escape(name)
     << "\",\"state\":\"" << to_string(state) << "\",\"cause\":\""
     << json_escape(cause) << "\",\"chosen_config\":\""
     << json_escape(chosen_config) << "\",\"breaker_key\":\""
     << json_escape(breaker_key) << "\",\"attempts\":" << attempts
     << ",\"deadline_ms\":" << deadline_ms
     << ",\"virtual_ms\":" << virtual_ms << ",\"deadline_exceeded\":"
     << (deadline_exceeded ? "true" : "false") << ",\"breaker_routed\":"
     << (breaker_routed ? "true" : "false") << ",\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    if (i) os << ",";
    os << quarantined[i].json();
  }
  os << "]}";
  return os.str();
}

std::string BreakerSnapshot::json() const {
  std::ostringstream os;
  os << "{\"key\":\"" << json_escape(key) << "\",\"state\":\""
     << to_string(state) << "\",\"opens\":" << opens
     << ",\"probes\":" << probes
     << ",\"short_circuits\":" << short_circuits << "}";
  return os.str();
}

std::string ServiceReport::str() const {
  std::ostringstream os;
  os << "batch: " << submitted << " submitted, " << accepted << " accepted, "
     << shed << " shed, " << rejected_admission << " rejected at admission, "
     << drained << " drained\n"
     << "outcomes: " << succeeded << " succeeded, " << succeeded_after_retry
     << " succeeded after retry, " << degraded << " degraded, "
     << rejected_execution << " rejected in execution\n"
     << "retries: " << retries << " extra attempt(s), " << deadline_exceeded
     << " deadline(s) exceeded\n"
     << "breakers: " << breaker_opens << " open(s), " << breaker_probes
     << " probe(s), " << breaker_short_circuits
     << " short-circuit(s); virtual clock " << virtual_ms << " ms\n";
  for (const auto& b : breakers)
    os << "  breaker " << b.key << ": " << to_string(b.state) << " (opens "
       << b.opens << ", probes " << b.probes << ", short-circuits "
       << b.short_circuits << ")\n";
  for (const auto& j : jobs) os << "  " << j.str() << "\n";
  os << (all_succeeded() ? "SERVED" : "SERVED-DEGRADED") << "\n";
  return os.str();
}

std::string ServiceReport::json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"shed\":" << shed
     << ",\"rejected_admission\":" << rejected_admission
     << ",\"drained\":" << drained << ",\"succeeded\":" << succeeded
     << ",\"succeeded_after_retry\":" << succeeded_after_retry
     << ",\"degraded\":" << degraded
     << ",\"rejected_execution\":" << rejected_execution
     << ",\"retries\":" << retries
     << ",\"deadline_exceeded\":" << deadline_exceeded
     << ",\"breaker_opens\":" << breaker_opens
     << ",\"breaker_probes\":" << breaker_probes
     << ",\"breaker_short_circuits\":" << breaker_short_circuits
     << ",\"virtual_ms\":" << virtual_ms << ",\"breakers\":[";
  for (std::size_t i = 0; i < breakers.size(); ++i) {
    if (i) os << ",";
    os << breakers[i].json();
  }
  os << "],\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) os << ",";
    os << jobs[i].json();
  }
  os << "]}";
  return os.str();
}

/// Speculative per-job result, produced on worker threads and committed
/// (breaker decisions, counters, clock) serially in admission order.
struct BatchService::Outcome {
  bool ran = false;       // run_job executed (false = drained slot)
  bool success = false;   // pristine decision on the final attempt
  bool rejected = false;  // terminal kRejected during execution
  std::string reject_cause;
  std::string reject_detail;
  int attempts = 0;
  std::int64_t virtual_ms = 0;
  bool deadline_exceeded = false;
  std::int64_t deadline_ms = 0;
  std::string breaker_key;
  np::FallbackDecision decision;
};

void BatchService::run_job(const JobSpec& spec, std::size_t index,
                           Outcome* out) const {
  out->ran = true;
  const std::int64_t deadline =
      spec.deadline_ms > 0 ? spec.deadline_ms : opt_.default_deadline_ms;
  out->deadline_ms = deadline;
  const int max_attempts =
      std::max(1, spec.max_attempts > 0 ? spec.max_attempts
                                        : opt_.retry.max_attempts);

  std::unique_ptr<ir::Program> program;
  try {
    program = np::NpCompiler::parse(spec.source);
  } catch (const CompileError& e) {
    out->rejected = true;
    out->reject_cause = "compile-error";
    out->reject_detail = e.what();
    return;
  }
  const ir::Kernel* kernel = pick_kernel(*program, spec.kernel);
  if (!kernel) {
    out->rejected = true;
    out->reject_cause = "no-kernel";
    return;
  }

  // Chaos: AST corruption exists before the first launch, like a real
  // transform bug; statement-level faults hook in per attempt below.
  sim::FaultInjector injector(spec.fault);
  std::unique_ptr<ir::Kernel> corrupted;
  if (spec.inject && (spec.fault.drop_barrier || spec.fault.skew_index)) {
    corrupted = kernel->clone();
    (void)injector.corrupt_kernel(*corrupted);
    kernel = corrupted.get();
  }
  out->breaker_key = kernel->name;

  const std::int64_t configured_steps =
      sim::Interpreter::resolve_max_steps(spec.watchdog_steps);
  std::int64_t elapsed = 0;
  for (int attempt = 1;; ++attempt) {
    const std::int64_t remaining = deadline - elapsed;
    if (remaining <= 0) {
      out->deadline_exceeded = true;
      break;
    }
    // Map the remaining wall-clock budget onto the step watchdog
    // (saturating): a hanging kernel trips at its deadline.
    std::int64_t deadline_steps =
        remaining > std::numeric_limits<std::int64_t>::max() /
                        std::max<std::int64_t>(1, opt_.steps_per_ms)
            ? std::numeric_limits<std::int64_t>::max()
            : remaining * opt_.steps_per_ms;
    np::ValidationOptions vopt;
    vopt.sanitizer = opt_.sanitizer;
    vopt.f32_rel_tol = opt_.f32_rel_tol;
    // Jobs are the unit of parallelism; each job simulates its grid
    // serially (the exec_pool is not reentrant from worker threads).
    vopt.interp.jobs = 1;
    vopt.interp.max_steps_per_block =
        sim::Interpreter::resolve_max_steps(spec.watchdog_steps,
                                            deadline_steps);
    const bool inject_now =
        spec.inject && (spec.transient_attempts <= 0 ||
                        attempt <= spec.transient_attempts);
    if (inject_now) vopt.interp.fault = &injector;

    const ir::Kernel& k = *kernel;
    const int elems = spec.elems;
    const int tb = spec.tb;
    auto factory = [&k, elems, tb] {
      return np::make_synthetic_workload(k, elems, tb);
    };
    np::FallbackResult result = np::NpCompiler::compile_with_fallback(
        k, /*configs=*/{}, factory, spec_, vopt);
    out->attempts = attempt;
    out->decision = std::move(result.decision);

    // Virtual cost: a watchdog trip whose budget the deadline tightened
    // consumed the job's whole remaining budget; any other attempt
    // charges the flat attempt cost.
    bool deadline_bound_trip = false;
    bool any_transient = false;
    for (const auto& q : out->decision.quarantined) {
      if (np::transient(q.cause)) any_transient = true;
      if (q.cause == np::FailureCause::kWatchdogTrip &&
          deadline_steps < configured_steps)
        deadline_bound_trip = true;
    }
    elapsed += deadline_bound_trip
                   ? remaining
                   : std::min(opt_.attempt_cost_ms, remaining);
    out->virtual_ms = elapsed;

    if (out->decision.pristine()) {
      out->success = true;
      break;
    }
    if (!any_transient || attempt >= max_attempts) break;
    std::int64_t backoff = opt_.retry.backoff_ms(index, attempt);
    elapsed += std::min(backoff, deadline - elapsed);
    out->virtual_ms = elapsed;
    if (elapsed >= deadline) {
      out->deadline_exceeded = true;
      break;
    }
  }
  if (!out->success && elapsed >= deadline) out->deadline_exceeded = true;
}

ServiceReport BatchService::run(const std::vector<JobSpec>& jobs) {
  ServiceReport report;
  report.submitted = jobs.size();
  report.jobs.resize(jobs.size());

  // --- Admission (arrival order): structured rejection + shedding. ---
  std::vector<std::size_t> accepted;
  accepted.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobResult& r = report.jobs[i];
    r.index = i;
    r.name = jobs[i].name.empty() ? "job" + std::to_string(i) : jobs[i].name;
    const std::int64_t deadline = jobs[i].deadline_ms > 0
                                      ? jobs[i].deadline_ms
                                      : opt_.default_deadline_ms;
    r.deadline_ms = deadline;
    if (jobs[i].source.empty()) {
      r.state = JobState::kRejected;
      r.cause = "empty-source";
      ++report.rejected_admission;
      continue;
    }
    if (deadline < opt_.min_feasible_ms) {
      r.state = JobState::kRejected;
      r.cause = "deadline-infeasible";
      ++report.rejected_admission;
      continue;
    }
    if (static_cast<std::int64_t>(accepted.size()) >=
        static_cast<std::int64_t>(opt_.queue_capacity)) {
      r.state = JobState::kRejected;
      r.cause = "queue-full";
      ++report.shed;
      continue;
    }
    accepted.push_back(i);
  }
  report.accepted = accepted.size();

  // --- Execution: jobs in parallel on the exec_pool; results land in
  // per-index storage (the pool's determinism contract). ---
  std::vector<Outcome> outcomes(accepted.size());
  const std::int64_t drain_at = opt_.drain_before_job;
  auto run_one = [&](std::int64_t k) {
    if (drain_.load(std::memory_order_relaxed) ||
        (drain_at >= 0 && k >= drain_at))
      return;  // drained: the commit loop rejects it
    const std::size_t i = accepted[static_cast<std::size_t>(k)];
    try {
      run_job(jobs[i], i, &outcomes[static_cast<std::size_t>(k)]);
    } catch (const std::exception& e) {
      Outcome& o = outcomes[static_cast<std::size_t>(k)];
      o.ran = true;
      o.rejected = true;
      o.reject_cause = "internal-error";
      o.reject_detail = e.what();
    } catch (...) {
      Outcome& o = outcomes[static_cast<std::size_t>(k)];
      o.ran = true;
      o.rejected = true;
      o.reject_cause = "internal-error";
    }
  };
  sim::ExecPool::instance().parallel_for(
      static_cast<std::int64_t>(accepted.size()),
      sim::ExecPool::resolve_jobs(opt_.jobs), run_one);

  // --- Commit (admission order): virtual clock, breakers, counters. ---
  VirtualClock clock;
  std::map<std::string, CircuitBreaker> breakers;
  for (std::size_t k = 0; k < accepted.size(); ++k) {
    const std::size_t i = accepted[k];
    Outcome& o = outcomes[k];
    JobResult& r = report.jobs[i];
    if (!o.ran) {
      r.state = JobState::kRejected;
      r.cause = "drained";
      ++report.drained;
      continue;
    }
    r.attempts = o.attempts;
    r.virtual_ms = o.virtual_ms;
    r.deadline_exceeded = o.deadline_exceeded;
    r.quarantined = o.decision.quarantined;
    if (o.attempts > 1)
      report.retries += static_cast<std::size_t>(o.attempts - 1);
    if (o.rejected) {
      r.state = JobState::kRejected;
      r.cause = o.reject_cause;
      r.detail = o.reject_detail;
      ++report.rejected_execution;
      continue;
    }
    clock.advance_ms(o.virtual_ms);
    // Breakers track the health of the first-choice variant (the
    // baseline when the kernel has no candidates).
    r.breaker_key = o.breaker_key + "|" +
                    (o.decision.first_choice.empty()
                         ? "baseline"
                         : o.decision.first_choice);
    CircuitBreaker& br =
        breakers.try_emplace(r.breaker_key, CircuitBreaker(opt_.breaker))
            .first->second;
    if (!br.allow(clock.now_ms())) {
      // Open breaker: traffic routes straight to the guaranteed
      // baseline; the speculative result is discarded and no failure is
      // counted against the (already open) breaker.
      r.state = JobState::kDegraded;
      r.cause = "breaker-open";
      r.chosen_config = "baseline";
      r.breaker_routed = true;
      ++report.degraded;
      continue;
    }
    if (o.success) {
      r.state = o.attempts > 1 ? JobState::kSucceededAfterRetry
                               : JobState::kSucceeded;
      r.chosen_config = o.decision.chosen_config;
      if (r.state == JobState::kSucceeded)
        ++report.succeeded;
      else
        ++report.succeeded_after_retry;
      br.on_success();
    } else {
      r.state = JobState::kDegraded;
      r.chosen_config = o.decision.used_baseline
                            ? "baseline"
                            : o.decision.chosen_config;
      if (o.deadline_exceeded) {
        r.cause = "deadline-exceeded";
        ++report.deadline_exceeded;
      } else if (!o.decision.quarantined.empty()) {
        r.cause = np::to_string(o.decision.quarantined.front().cause);
      } else {
        r.cause = "degraded";
      }
      ++report.degraded;
      br.on_failure(clock.now_ms());
    }
  }
  report.virtual_ms = clock.now_ms();
  for (const auto& [key, br] : breakers) {
    BreakerSnapshot s;
    s.key = key;
    s.state = br.state();
    s.opens = br.opens();
    s.probes = br.probes();
    s.short_circuits = br.short_circuits();
    report.breaker_opens += static_cast<std::size_t>(br.opens());
    report.breaker_probes += static_cast<std::size_t>(br.probes());
    report.breaker_short_circuits +=
        static_cast<std::size_t>(br.short_circuits());
    report.breakers.push_back(std::move(s));
  }
  return report;
}

}  // namespace cudanp::serve
