#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "np/runner.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/clock.hpp"
#include "serve/journal.hpp"
#include "serve/supervisor.hpp"
#include "serve/worker.hpp"
#include "sim/exec_pool.hpp"
#include "sim/interpreter.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace cudanp::serve {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kSucceeded: return "succeeded";
    case JobState::kSucceededAfterRetry: return "succeeded-after-retry";
    case JobState::kDegraded: return "degraded";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

std::optional<JobState> job_state_from_string(std::string_view s) {
  for (JobState st :
       {JobState::kSucceeded, JobState::kSucceededAfterRetry,
        JobState::kDegraded, JobState::kRejected})
    if (s == to_string(st)) return st;
  return std::nullopt;
}

const char* to_string(IsolationMode m) {
  switch (m) {
    case IsolationMode::kNone: return "none";
    case IsolationMode::kProcess: return "process";
  }
  return "unknown";
}

std::optional<IsolationMode> isolation_mode_from_string(
    std::string_view s) {
  for (IsolationMode m : {IsolationMode::kNone, IsolationMode::kProcess})
    if (s == to_string(m)) return m;
  return std::nullopt;
}

namespace {

std::string json_escape(const std::string& s) { return json::escape(s); }

const ir::Kernel* pick_kernel(const ir::Program& program,
                              const std::string& name) {
  if (!name.empty()) return program.find_kernel(name);
  for (const auto& k : program.kernels)
    if (k->parallel_loop_count() > 0) return k.get();
  return program.kernels.empty() ? nullptr : program.kernels.front().get();
}

/// Content identity of one attempt: the source plus every request field
/// that can change its AttemptResult (max_steps included — a tighter
/// watchdog budget can change the decision). Attempts with interpreter
/// faults hooked in are never cached, so the fault plan is not part of
/// the key.
std::string attempt_cache_key(const AttemptRequest& req) {
  std::ostringstream os;
  os.precision(17);
  os << req.kernel << '\x1f' << req.elems << '\x1f' << req.tb << '\x1f'
     << req.device << '\x1f' << req.sm_version << '\x1f' << req.max_steps
     << '\x1f' << req.error_limit << '\x1f'
     << (req.portable_races ? 1 : 0) << '\x1f' << (req.dedupe ? 1 : 0)
     << '\x1f' << req.f32_rel_tol << '\x1f' << (req.certify ? 1 : 0)
     << '\x1f' << (req.certified_fast_path ? 1 : 0);
  return np::NpCompiler::artifact_key(req.source, os.str());
}

}  // namespace

std::string JobResult::str() const {
  std::ostringstream os;
  os << name << ": " << to_string(state);
  if (!cause.empty()) os << " (" << cause << ")";
  if (!chosen_config.empty()) os << " -> " << chosen_config;
  os << " [attempts=" << attempts << ", virtual_ms=" << virtual_ms << "]";
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string JobResult::json() const {
  std::ostringstream os;
  os << "{\"index\":" << index << ",\"name\":\"" << json_escape(name)
     << "\",\"state\":\"" << to_string(state) << "\",\"cause\":\""
     << json_escape(cause) << "\",\"detail\":\"" << json_escape(detail)
     << "\",\"chosen_config\":\"" << json_escape(chosen_config)
     << "\",\"breaker_key\":\"" << json_escape(breaker_key)
     << "\",\"attempts\":" << attempts
     << ",\"crashed_attempts\":" << crashed_attempts
     << ",\"deadline_ms\":" << deadline_ms
     << ",\"virtual_ms\":" << virtual_ms << ",\"deadline_exceeded\":"
     << (deadline_exceeded ? "true" : "false") << ",\"breaker_routed\":"
     << (breaker_routed ? "true" : "false") << ",\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    if (i) os << ",";
    os << quarantined[i].json();
  }
  os << "]}";
  return os.str();
}

std::optional<JobResult> JobResult::from_json_value(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  JobResult r;
  r.index = static_cast<std::size_t>(v.get_i64("index"));
  r.name = v.get_str("name");
  auto state = job_state_from_string(v.get_str("state"));
  if (!state) return std::nullopt;
  r.state = *state;
  r.cause = v.get_str("cause");
  r.detail = v.get_str("detail");
  r.chosen_config = v.get_str("chosen_config");
  r.breaker_key = v.get_str("breaker_key");
  r.attempts = static_cast<int>(v.get_i64("attempts"));
  r.crashed_attempts = static_cast<int>(v.get_i64("crashed_attempts"));
  r.deadline_ms = v.get_i64("deadline_ms");
  r.virtual_ms = v.get_i64("virtual_ms");
  r.deadline_exceeded = v.get_bool("deadline_exceeded");
  r.breaker_routed = v.get_bool("breaker_routed");
  if (const json::Value* q = v.find("quarantined")) {
    if (!q->is_array()) return std::nullopt;
    for (const auto& item : q->arr()) {
      auto f = np::VariantFailure::from_json_value(item);
      if (!f) return std::nullopt;
      r.quarantined.push_back(std::move(*f));
    }
  }
  return r;
}

std::optional<JobResult> JobResult::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

std::string BreakerSnapshot::json() const {
  std::ostringstream os;
  os << "{\"key\":\"" << json_escape(key) << "\",\"state\":\""
     << to_string(state) << "\",\"opens\":" << opens
     << ",\"probes\":" << probes
     << ",\"short_circuits\":" << short_circuits << "}";
  return os.str();
}

std::optional<BreakerSnapshot> BreakerSnapshot::from_json_value(
    const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  BreakerSnapshot b;
  b.key = v.get_str("key");
  auto state = breaker_state_from_string(v.get_str("state"));
  if (!state) return std::nullopt;
  b.state = *state;
  b.opens = static_cast<int>(v.get_i64("opens"));
  b.probes = static_cast<int>(v.get_i64("probes"));
  b.short_circuits = static_cast<int>(v.get_i64("short_circuits"));
  return b;
}

std::optional<BreakerSnapshot> BreakerSnapshot::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

std::string JobOutcome::json() const {
  std::ostringstream os;
  os << "{\"ran\":" << (ran ? "true" : "false") << ",\"success\":"
     << (success ? "true" : "false") << ",\"rejected\":"
     << (rejected ? "true" : "false") << ",\"reject_cause\":\""
     << json_escape(reject_cause) << "\",\"reject_detail\":\""
     << json_escape(reject_detail) << "\",\"attempts\":" << attempts
     << ",\"crashed_attempts\":" << crashed_attempts
     << ",\"virtual_ms\":" << virtual_ms << ",\"deadline_exceeded\":"
     << (deadline_exceeded ? "true" : "false")
     << ",\"deadline_ms\":" << deadline_ms << ",\"breaker_key\":\""
     << json_escape(breaker_key) << "\",\"decision\":" << decision.json()
     << "}";
  return os.str();
}

std::optional<JobOutcome> JobOutcome::from_json_value(
    const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  JobOutcome o;
  o.ran = v.get_bool("ran");
  o.success = v.get_bool("success");
  o.rejected = v.get_bool("rejected");
  o.reject_cause = v.get_str("reject_cause");
  o.reject_detail = v.get_str("reject_detail");
  o.attempts = static_cast<int>(v.get_i64("attempts"));
  o.crashed_attempts = static_cast<int>(v.get_i64("crashed_attempts"));
  o.virtual_ms = v.get_i64("virtual_ms");
  o.deadline_exceeded = v.get_bool("deadline_exceeded");
  o.deadline_ms = v.get_i64("deadline_ms");
  o.breaker_key = v.get_str("breaker_key");
  if (const json::Value* d = v.find("decision")) {
    auto dec = np::FallbackDecision::from_json_value(*d);
    if (!dec) return std::nullopt;
    o.decision = std::move(*dec);
  }
  return o;
}

std::optional<JobOutcome> JobOutcome::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

std::string ServiceReport::str() const {
  std::ostringstream os;
  os << "batch: " << submitted << " submitted, " << accepted << " accepted, "
     << shed << " shed, " << rejected_admission << " rejected at admission, "
     << drained << " drained\n"
     << "outcomes: " << succeeded << " succeeded, " << succeeded_after_retry
     << " succeeded after retry, " << degraded << " degraded, "
     << rejected_execution << " rejected in execution\n"
     << "retries: " << retries << " extra attempt(s), " << deadline_exceeded
     << " deadline(s) exceeded\n";
  // Only crashing batches grow an isolation line, so byte-for-byte
  // output of every pre-isolation batch is preserved.
  if (crashes > 0 || resource_limited > 0)
    os << "isolation: " << crashes << " crashed attempt(s), "
       << resource_limited << " resource-limited job(s)\n";
  os << "breakers: " << breaker_opens << " open(s), " << breaker_probes
     << " probe(s), " << breaker_short_circuits
     << " short-circuit(s); virtual clock " << virtual_ms << " ms\n";
  for (const auto& b : breakers)
    os << "  breaker " << b.key << ": " << to_string(b.state) << " (opens "
       << b.opens << ", probes " << b.probes << ", short-circuits "
       << b.short_circuits << ")\n";
  for (const auto& j : jobs) os << "  " << j.str() << "\n";
  os << (all_succeeded() ? "SERVED" : "SERVED-DEGRADED") << "\n";
  return os.str();
}

std::string ServiceReport::json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"shed\":" << shed
     << ",\"rejected_admission\":" << rejected_admission
     << ",\"drained\":" << drained << ",\"succeeded\":" << succeeded
     << ",\"succeeded_after_retry\":" << succeeded_after_retry
     << ",\"degraded\":" << degraded
     << ",\"rejected_execution\":" << rejected_execution
     << ",\"retries\":" << retries << ",\"crashes\":" << crashes
     << ",\"resource_limited\":" << resource_limited
     << ",\"deadline_exceeded\":" << deadline_exceeded
     << ",\"breaker_opens\":" << breaker_opens
     << ",\"breaker_probes\":" << breaker_probes
     << ",\"breaker_short_circuits\":" << breaker_short_circuits
     << ",\"virtual_ms\":" << virtual_ms << ",\"breakers\":[";
  for (std::size_t i = 0; i < breakers.size(); ++i) {
    if (i) os << ",";
    os << breakers[i].json();
  }
  os << "],\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) os << ",";
    os << jobs[i].json();
  }
  os << "]}";
  return os.str();
}

std::optional<ServiceReport> ServiceReport::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  ServiceReport r;
  auto sz = [&](const char* key) {
    return static_cast<std::size_t>(v->get_i64(key));
  };
  r.submitted = sz("submitted");
  r.accepted = sz("accepted");
  r.shed = sz("shed");
  r.rejected_admission = sz("rejected_admission");
  r.drained = sz("drained");
  r.succeeded = sz("succeeded");
  r.succeeded_after_retry = sz("succeeded_after_retry");
  r.degraded = sz("degraded");
  r.rejected_execution = sz("rejected_execution");
  r.retries = sz("retries");
  r.crashes = sz("crashes");
  r.resource_limited = sz("resource_limited");
  r.deadline_exceeded = sz("deadline_exceeded");
  r.breaker_opens = sz("breaker_opens");
  r.breaker_probes = sz("breaker_probes");
  r.breaker_short_circuits = sz("breaker_short_circuits");
  r.virtual_ms = v->get_i64("virtual_ms");
  if (const json::Value* bs = v->find("breakers")) {
    if (!bs->is_array()) return std::nullopt;
    for (const auto& item : bs->arr()) {
      auto b = BreakerSnapshot::from_json_value(item);
      if (!b) return std::nullopt;
      r.breakers.push_back(std::move(*b));
    }
  }
  if (const json::Value* js = v->find("jobs")) {
    if (!js->is_array()) return std::nullopt;
    for (const auto& item : js->arr()) {
      auto j = JobResult::from_json_value(item);
      if (!j) return std::nullopt;
      r.jobs.push_back(std::move(*j));
    }
  }
  return r;
}

std::string certificate_cache_key(
    const std::string& source, const std::string& kernel,
    const std::string& device, int sm_version, int elems, int tb,
    const std::string& config, const np::CertifyOptions& copt) {
  std::ostringstream os;
  os << "cert" << '\x1f' << kernel << '\x1f' << device << '\x1f'
     << sm_version << '\x1f' << elems << '\x1f' << tb << '\x1f' << config
     << '\x1f' << copt.fingerprint();
  return np::NpCompiler::artifact_key(source, os.str());
}

BatchService::BatchService(sim::DeviceSpec spec, ServiceOptions opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {}

BatchService::~BatchService() = default;

void BatchService::run_job(const JobSpec& spec, std::size_t index,
                           JobOutcome* out) const {
  out->ran = true;
  const std::int64_t deadline =
      spec.deadline_ms > 0 ? spec.deadline_ms : opt_.default_deadline_ms;
  out->deadline_ms = deadline;
  const int max_attempts =
      std::max(1, spec.max_attempts > 0 ? spec.max_attempts
                                        : opt_.retry.max_attempts);

  // Admission-grade structural checks run in-process regardless of the
  // isolation mode: an unparseable job must not cost a worker spawn,
  // and the breaker key (kernel name) must be known even if every
  // isolated attempt later crashes before reporting.
  std::unique_ptr<ir::Program> program;
  try {
    program = np::NpCompiler::parse(spec.source);
  } catch (const CompileError& e) {
    out->rejected = true;
    out->reject_cause = "compile-error";
    out->reject_detail = e.what();
    return;
  }
  const ir::Kernel* kernel = pick_kernel(*program, spec.kernel);
  if (!kernel) {
    out->rejected = true;
    out->reject_cause = "no-kernel";
    return;
  }
  out->breaker_key = kernel->name;

  AttemptRequest req;
  req.source = spec.source;
  req.kernel = spec.kernel;
  req.elems = spec.elems;
  req.tb = spec.tb;
  req.device = spec_.name == sim::DeviceSpec::k20c().name ? "k20c"
                                                          : "gtx680";
  req.sm_version = spec_.sm_version;
  // AST corruption exists before the first launch, like a real
  // transform bug, and persists across attempts (it is seeded, so each
  // attempt reconstructs the identical corrupted kernel).
  req.corrupt_ast =
      spec.inject && (spec.fault.drop_barrier || spec.fault.skew_index);
  req.fault = spec.fault;
  req.error_limit = static_cast<std::int64_t>(opt_.sanitizer.error_limit);
  req.portable_races = opt_.sanitizer.race_mode ==
                       sim::SanitizerEngine::RaceMode::kPortable;
  req.dedupe = opt_.sanitizer.dedupe;
  req.f32_rel_tol = opt_.f32_rel_tol;
  req.heartbeat_ms = opt_.worker_heartbeat_ms;
  req.certify = opt_.certify;
  req.certified_fast_path = opt_.certified_fast_path;

  // Symbolic pre-certification: every candidate (kernel, variant) pair
  // is certified once, in-process, before any worker spawns — the
  // certificates ship with the attempt, so a refuted variant is
  // quarantined as proven-wrong without the worker re-deriving the
  // verdict, and retries reuse the same proofs. Certificates are
  // content-addressed serve artifacts: with an artifact cache they
  // persist across runs and daemon requests. Chaos-corrupted ASTs skip
  // this (corruption is chaos, not content — the worker certifies the
  // corrupted kernel fresh and refutes it there).
  if (opt_.certify && !req.corrupt_ast && kernel->parallel_loop_count() > 0) {
    np::CertifyOptions copt;
    copt.f32_rel_tol = opt_.f32_rel_tol;
    copt.interp.jobs = 1;
    const np::Certifier certifier(spec_, copt);
    const ir::Kernel& k = *kernel;
    const int elems = spec.elems;
    const int tb = spec.tb;
    auto factory = [&k, elems, tb] {
      return np::make_synthetic_workload(k, elems, tb);
    };
    np::Workload probe = factory();
    ArtifactCache* cache = opt_.artifact_cache;
    for (const auto& cfg : np::NpCompiler::enumerate_configs(
             k, static_cast<int>(probe.launch.block.count()), spec_)) {
      std::string key;
      if (cache) {
        key = certificate_cache_key(req.source, k.name, req.device,
                                    req.sm_version, elems, tb,
                                    cfg.describe(), copt);
        // The chaos hooks damage the stored certificate *before*
        // lookup, so a torn/corrupt entry runs the exact
        // quarantine-and-recertify path a production hit would.
        if (spec.fault.corrupt_cert) (void)cache->corrupt_entry(key);
        if (spec.fault.tear_cert) (void)cache->tear_entry(key);
        if (auto payload = cache->lookup(key)) {
          if (auto cert = np::Certificate::from_json(*payload);
              cert && cert->config == cfg.describe()) {
            req.certificates.push_back(std::move(*payload));
            continue;
          }
        }
      }
      np::Certificate cert = certifier.certify(k, cfg, factory);
      std::string payload = cert.json();
      if (cache) cache->store(key, payload);
      req.certificates.push_back(std::move(payload));
    }
  }

  sim::ExecutionLimits limits;
  limits.max_steps_per_block = spec.watchdog_steps;
  const std::int64_t configured_steps = limits.resolve();
  std::int64_t elapsed = 0;
  for (int attempt = 1;; ++attempt) {
    const std::int64_t remaining = deadline - elapsed;
    if (remaining <= 0) {
      out->deadline_exceeded = true;
      break;
    }
    // Map the remaining wall-clock budget onto the step watchdog
    // (saturating): a hanging kernel trips at its deadline.
    limits.deadline_steps =
        remaining > std::numeric_limits<std::int64_t>::max() /
                        std::max<std::int64_t>(1, opt_.steps_per_ms)
            ? std::numeric_limits<std::int64_t>::max()
            : remaining * opt_.steps_per_ms;
    req.max_steps = limits.resolve();
    req.hook_faults =
        spec.inject && (spec.transient_attempts <= 0 ||
                        attempt <= spec.transient_attempts);

    // Content-addressed cache: only clean attempts are cacheable (an
    // injected-fault or corrupted-AST attempt is chaos, not content).
    // The chaos hooks damage the stored entry *before* lookup, so the
    // quarantine-and-recompile path runs under the exact code the
    // production hit path uses.
    ArtifactCache* cache = opt_.artifact_cache;
    const bool cacheable =
        cache != nullptr && !req.corrupt_ast && !req.hook_faults;
    std::string cache_key;
    bool cache_hit = false;
    AttemptResult result;
    if (cacheable) {
      cache_key = attempt_cache_key(req);
      if (spec.fault.corrupt_cache) (void)cache->corrupt_entry(cache_key);
      if (spec.fault.tear_cache) (void)cache->tear_entry(cache_key);
      if (auto payload = cache->lookup(cache_key)) {
        if (auto cached = AttemptResult::from_json(*payload)) {
          result = std::move(*cached);
          cache_hit = true;
        }
      }
    }

    bool crashed = false;
    std::string crash_detail;
    if (cache_hit) {
      // Nothing to execute: the verified entry is byte-identical to
      // what recompilation would produce (virtual cost is still charged
      // below — caching must not change the report).
    } else if (sup_) {
      SupervisedAttempt sa = sup_->execute(req);
      if (sa.status == AttemptStatus::kCompleted) {
        result = std::move(sa.result);
      } else {
        crashed = true;
        crash_detail = std::move(sa.detail);
      }
    } else {
      result = execute_attempt(req, spec_);
    }
    if (cacheable && !cache_hit && !crashed)
      cache->store(cache_key, result.json());

    if (crashed) {
      // The worker died with the attempt. Synthesize the decision the
      // retry/breaker/fallback machinery expects: degraded to the
      // guaranteed baseline, with a structured kCrash quarantine. kCrash
      // is transient — the next attempt gets a fresh worker.
      ++out->crashed_attempts;
      np::VariantFailure f;
      f.kernel = out->breaker_key;
      f.config = "worker";
      f.cause = np::FailureCause::kCrash;
      f.detail = std::move(crash_detail);
      result = AttemptResult{};
      result.kernel_name = out->breaker_key;
      result.decision.kernel = out->breaker_key;
      result.decision.used_baseline = true;
      result.decision.quarantined.push_back(std::move(f));
    } else if (result.rejected) {
      // Structural rejection from the attempt itself (worker-side parse
      // or internal error): terminal, uncharged, like the in-process
      // pre-loop rejection above.
      out->rejected = true;
      out->reject_cause = result.reject_cause;
      out->reject_detail = result.reject_detail;
      return;
    }

    out->attempts = attempt;
    out->decision = std::move(result.decision);

    // Virtual cost: a watchdog trip whose budget the deadline tightened
    // consumed the job's whole remaining budget; any other attempt
    // charges the flat attempt cost.
    bool deadline_bound_trip = false;
    bool any_transient = false;
    for (const auto& q : out->decision.quarantined) {
      if (np::transient(q.cause)) any_transient = true;
      if (q.cause == np::FailureCause::kWatchdogTrip &&
          limits.deadline_steps < configured_steps)
        deadline_bound_trip = true;
    }
    elapsed += deadline_bound_trip
                   ? remaining
                   : std::min(opt_.attempt_cost_ms, remaining);
    out->virtual_ms = elapsed;

    if (out->decision.pristine()) {
      out->success = true;
      break;
    }
    if (!any_transient || attempt >= max_attempts) break;
    std::int64_t backoff = opt_.retry.backoff_ms(index, attempt);
    elapsed += std::min(backoff, deadline - elapsed);
    out->virtual_ms = elapsed;
    if (elapsed >= deadline) {
      out->deadline_exceeded = true;
      break;
    }
  }
  if (!out->success && elapsed >= deadline) out->deadline_exceeded = true;
}

ServiceReport BatchService::run(const std::vector<JobSpec>& jobs) {
  ServiceReport report;
  report.submitted = jobs.size();
  report.jobs.resize(jobs.size());

  // --- Admission (arrival order): structured rejection + shedding. ---
  std::vector<std::size_t> accepted;
  accepted.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobResult& r = report.jobs[i];
    r.index = i;
    r.name = jobs[i].name.empty() ? "job" + std::to_string(i) : jobs[i].name;
    const std::int64_t deadline = jobs[i].deadline_ms > 0
                                      ? jobs[i].deadline_ms
                                      : opt_.default_deadline_ms;
    r.deadline_ms = deadline;
    if (jobs[i].source.empty()) {
      r.state = JobState::kRejected;
      r.cause = "empty-source";
      ++report.rejected_admission;
      continue;
    }
    if (deadline < opt_.min_feasible_ms) {
      r.state = JobState::kRejected;
      r.cause = "deadline-infeasible";
      ++report.rejected_admission;
      continue;
    }
    if (static_cast<std::int64_t>(accepted.size()) >=
        static_cast<std::int64_t>(opt_.queue_capacity)) {
      r.state = JobState::kRejected;
      r.cause = "queue-full";
      ++report.shed;
      continue;
    }
    accepted.push_back(i);
  }
  report.accepted = accepted.size();

  // --- Journal: replay what a previous (killed) run already proved,
  // and arrange durable append-before-commit for everything else. ---
  std::vector<std::optional<JobOutcome>> replayed(accepted.size());
  std::optional<JournalWriter> journal;
  if (!opt_.journal_path.empty()) {
    const std::string fp = batch_fingerprint(jobs, opt_);
    std::string error;
    std::optional<JournalContents> prior;
    if (opt_.resume) prior = load_journal(opt_.journal_path, &error);
    if (prior) {
      if (prior->fingerprint != fp)
        throw ResumeMismatchError(
            "journal " + opt_.journal_path +
            " was written for a different batch or different options "
            "(fingerprint " +
            prior->fingerprint + ", batch " + fp + ")");
      for (JournalRecord& rec : prior->records)
        if (rec.k < replayed.size())
          replayed[rec.k] = std::move(rec.outcome);
      journal = JournalWriter::open_for_resume(opt_.journal_path,
                                               prior->valid_bytes, &error);
    } else {
      // Fresh journal — also the resume path when there is nothing to
      // resume from (the batch was killed before the header landed, or
      // never ran).
      journal = JournalWriter::create(opt_.journal_path, fp, &error);
    }
  }

  // --- Worker sandbox for --isolate=process. A daemon-provided shared
  // supervisor keeps one worker pool (and its crash-loop backoff state)
  // alive across requests; otherwise the pool lives for this run only.
  if (opt_.isolate == IsolationMode::kProcess) {
    if (opt_.shared_supervisor) {
      sup_ = opt_.shared_supervisor;
    } else {
      SupervisorOptions sopt;
      sopt.worker_cmd = opt_.worker_cmd;
      sopt.worker_mem_mb = opt_.worker_mem_mb;
      sopt.read_timeout_ms = opt_.worker_read_timeout_ms;
      sopt.heartbeat_ms = opt_.worker_heartbeat_ms;
      owned_supervisor_ = std::make_unique<WorkerSupervisor>(std::move(sopt));
      sup_ = owned_supervisor_.get();
    }
  }

  // --- Execution + commit, chunked when journaling. Each round runs a
  // chunk of jobs in parallel on the exec_pool, appends their outcomes
  // durably in admission order, then commits them. Chunking (and the
  // chunk size) cannot affect the report: outcomes are independent and
  // the commit scan order is fixed. ---
  const std::size_t chunk =
      journal && opt_.commit_chunk > 0
          ? static_cast<std::size_t>(opt_.commit_chunk)
          : (accepted.empty() ? 1 : accepted.size());
  std::vector<JobOutcome> outcomes(accepted.size());
  const std::int64_t drain_at = opt_.drain_before_job;
  VirtualClock clock;
  // Breakers live in the shared registry when one is provided (daemon
  // mode), else in a registry local to this run. base_ms offsets the
  // per-run virtual clock into the registry's continuing timeline so
  // cooldowns keep elapsing across requests; the report still uses the
  // run-local clock, keeping virtual_ms identical to a standalone run.
  BreakerRegistry local_registry;
  BreakerRegistry& registry =
      opt_.breaker_registry ? *opt_.breaker_registry : local_registry;
  const std::int64_t breaker_base = registry.base_ms;
  std::set<std::string> touched_breakers;

  for (std::size_t base = 0; base < accepted.size(); base += chunk) {
    const std::size_t count = std::min(chunk, accepted.size() - base);
    auto run_one = [&](std::int64_t rel) {
      const std::size_t k = base + static_cast<std::size_t>(rel);
      if (replayed[k]) return;  // already journaled by the killed run
      if (drain_.load(std::memory_order_relaxed) ||
          (drain_at >= 0 && static_cast<std::int64_t>(k) >= drain_at))
        return;  // drained: the commit loop rejects it
      const std::size_t i = accepted[k];
      try {
        run_job(jobs[i], i, &outcomes[k]);
      } catch (const std::exception& e) {
        JobOutcome& o = outcomes[k];
        o = JobOutcome{};
        o.ran = true;
        o.rejected = true;
        o.reject_cause = "internal-error";
        o.reject_detail = e.what();
      } catch (...) {
        JobOutcome& o = outcomes[k];
        o = JobOutcome{};
        o.ran = true;
        o.rejected = true;
        o.reject_cause = "internal-error";
      }
    };
    sim::ExecPool::instance().parallel_for(
        static_cast<std::int64_t>(count),
        sim::ExecPool::resolve_jobs(opt_.jobs), run_one);

    // Durable write-ahead, admission order, before any commit in this
    // chunk: a kill after this loop re-executes nothing.
    for (std::size_t k = base; k < base + count; ++k) {
      if (replayed[k])
        outcomes[k] = std::move(*replayed[k]);
      else if (journal)
        (void)journal->append(k, outcomes[k]);
    }

    // --- Commit (admission order): virtual clock, breakers, counters. ---
    for (std::size_t k = base; k < base + count; ++k) {
      const std::size_t i = accepted[k];
      JobOutcome& o = outcomes[k];
      JobResult& r = report.jobs[i];
      if (!o.ran) {
        r.state = JobState::kRejected;
        r.cause = "drained";
        ++report.drained;
        continue;
      }
      r.attempts = o.attempts;
      r.crashed_attempts = o.crashed_attempts;
      r.virtual_ms = o.virtual_ms;
      r.deadline_exceeded = o.deadline_exceeded;
      r.quarantined = o.decision.quarantined;
      if (o.attempts > 1)
        report.retries += static_cast<std::size_t>(o.attempts - 1);
      report.crashes += static_cast<std::size_t>(o.crashed_attempts);
      for (const auto& q : o.decision.quarantined) {
        if (q.cause == np::FailureCause::kResourceLimit) {
          ++report.resource_limited;
          break;
        }
      }
      if (o.rejected) {
        r.state = JobState::kRejected;
        r.cause = o.reject_cause;
        r.detail = o.reject_detail;
        ++report.rejected_execution;
        continue;
      }
      clock.advance_ms(o.virtual_ms);
      // Breakers track the health of the first-choice variant (the
      // baseline when the kernel has no candidates).
      r.breaker_key = o.breaker_key + "|" +
                      (o.decision.first_choice.empty()
                           ? "baseline"
                           : o.decision.first_choice);
      CircuitBreaker& br =
          registry.breakers
              .try_emplace(r.breaker_key, CircuitBreaker(opt_.breaker))
              .first->second;
      touched_breakers.insert(r.breaker_key);
      if (!br.allow(breaker_base + clock.now_ms())) {
        // Open breaker: traffic routes straight to the guaranteed
        // baseline; the speculative result is discarded and no failure is
        // counted against the (already open) breaker.
        r.state = JobState::kDegraded;
        r.cause = "breaker-open";
        r.chosen_config = "baseline";
        r.breaker_routed = true;
        ++report.degraded;
        continue;
      }
      if (o.success) {
        r.state = o.attempts > 1 ? JobState::kSucceededAfterRetry
                                 : JobState::kSucceeded;
        r.chosen_config = o.decision.chosen_config;
        if (r.state == JobState::kSucceeded)
          ++report.succeeded;
        else
          ++report.succeeded_after_retry;
        br.on_success();
      } else {
        r.state = JobState::kDegraded;
        r.chosen_config = o.decision.used_baseline
                              ? "baseline"
                              : o.decision.chosen_config;
        if (o.deadline_exceeded) {
          r.cause = "deadline-exceeded";
          ++report.deadline_exceeded;
        } else if (!o.decision.quarantined.empty()) {
          r.cause = np::to_string(o.decision.quarantined.front().cause);
        } else {
          r.cause = "degraded";
        }
        ++report.degraded;
        br.on_failure(breaker_base + clock.now_ms());
      }
    }
  }
  owned_supervisor_.reset();
  sup_ = nullptr;

  report.virtual_ms = clock.now_ms();
  // Snapshot only the keys this run touched, in sorted order (std::set
  // matches the old std::map iteration): a run whose keys nobody else
  // shares reports exactly what a standalone run would.
  for (const auto& key : touched_breakers) {
    const CircuitBreaker& br = registry.breakers.at(key);
    BreakerSnapshot s;
    s.key = key;
    s.state = br.state();
    s.opens = br.opens();
    s.probes = br.probes();
    s.short_circuits = br.short_circuits();
    report.breaker_opens += static_cast<std::size_t>(br.opens());
    report.breaker_probes += static_cast<std::size_t>(br.probes());
    report.breaker_short_circuits +=
        static_cast<std::size_t>(br.short_circuits());
    report.breakers.push_back(std::move(s));
  }
  registry.base_ms = breaker_base + clock.now_ms();
  return report;
}

}  // namespace cudanp::serve
