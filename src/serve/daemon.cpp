#include "serve/daemon.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

#include "serve/journal.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "support/json.hpp"

namespace cudanp::serve {

namespace {

/// Drain self-pipe write end for the signal handler. One daemon per
/// process (cudanp-cc --serve runs exactly one), so a single slot is
/// enough; -1 means no daemon is live.
std::atomic<int> g_drain_fd{-1};

void drain_signal_handler(int) {
  const int fd = g_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // Best effort: the pipe is O_NONBLOCK; a full pipe already woke the
    // accept loop.
    (void)!::write(fd, &byte, 1);
  }
}

bool set_nonblock(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// --- DrrScheduler -----------------------------------------------------

DrrScheduler::DrrScheduler(int tenant_quota, int max_pending, int quantum)
    : quota_(tenant_quota < 1 ? 1 : tenant_quota),
      max_pending_(max_pending < 1 ? 1 : max_pending),
      quantum_(quantum < 1 ? 1 : quantum) {}

std::string DrrScheduler::submit(std::shared_ptr<ServeRequest> r) {
  if (pending_ >= static_cast<std::size_t>(max_pending_))
    return "queue-full";
  Tenant& t = tenants_[r->tenant];
  if (t.in_flight >= quota_) return "tenant-quota";
  t.in_flight += 1;
  if (t.q.empty()) {
    // Newly active: joins the round-robin ring at the back, in
    // first-arrival order.
    if (std::find(active_.begin(), active_.end(), r->tenant) ==
        active_.end())
      active_.push_back(r->tenant);
  }
  r->cost = static_cast<std::int64_t>(r->jobs.size());
  t.q.push_back(std::move(r));
  pending_ += 1;
  return "";
}

std::shared_ptr<ServeRequest> DrrScheduler::next() {
  if (pending_ == 0) return nullptr;
  // Bounded scan: each visit grants quantum_ credit, so within
  // ceil(max_cost / quantum_) laps some head request becomes servable.
  for (;;) {
    if (rr_ >= active_.size()) rr_ = 0;
    const std::string name = active_[rr_];
    Tenant& t = tenants_[name];
    if (t.q.empty()) {
      // Deactivated tenant (served dry on an earlier lap).
      t.deficit = 0;
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(rr_));
      continue;
    }
    t.deficit += quantum_;
    if (t.deficit >= t.q.front()->cost) {
      std::shared_ptr<ServeRequest> r = std::move(t.q.front());
      t.q.pop_front();
      pending_ -= 1;
      // Leftover credit is clamped to one quantum: an idle-then-bursty
      // tenant cannot bank unbounded deficit.
      t.deficit = std::min<std::int64_t>(t.deficit - r->cost, quantum_);
      if (t.q.empty()) {
        t.deficit = 0;
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(rr_));
      } else {
        rr_ += 1;  // one request per visit keeps the interleave tight
      }
      return r;
    }
    rr_ += 1;  // not yet enough credit — move to the next tenant
  }
}

void DrrScheduler::finished(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.in_flight > 0)
    it->second.in_flight -= 1;
}

std::int64_t DrrScheduler::in_flight(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

// --- ServeDaemon ------------------------------------------------------

ServeDaemon::ServeDaemon(DaemonOptions opt)
    : opt_(std::move(opt)),
      sched_(opt_.tenant_quota, opt_.max_pending, opt_.drr_quantum) {}

ServeDaemon::~ServeDaemon() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_executor_ = true;
  }
  work_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (SessionSlot& s : sessions_) {
      if (s.session) s.session->wake();
    }
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (SessionSlot& s : sessions_) {
      if (s.thread.joinable()) s.thread.join();
    }
    sessions_.clear();
  }
  g_drain_fd.store(-1, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (drain_rd_ >= 0) ::close(drain_rd_);
  if (drain_wr_ >= 0) ::close(drain_wr_);
  if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
}

bool ServeDaemon::start(std::string* error) {
  if (opt_.socket_path.empty()) {
    if (error) *error = "empty socket path";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + opt_.socket_path;
    return false;
  }
  ::memcpy(addr.sun_path, opt_.socket_path.c_str(),
           opt_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + ::strerror(errno);
    return false;
  }
  // A previous daemon's socket file would make bind fail with
  // EADDRINUSE; restart must be idempotent, so remove it first. A
  // *live* daemon on the same path loses its socket — single-instance
  // locking is the operator's job (distinct paths per daemon).
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error)
      *error = "bind/listen " + opt_.socket_path + ": " +
               ::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  int pipefd[2];
  if (::pipe2(pipefd, O_CLOEXEC | O_NONBLOCK) != 0) {
    if (error) *error = std::string("pipe2: ") + ::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  drain_rd_ = pipefd[0];
  drain_wr_ = pipefd[1];
  g_drain_fd.store(drain_wr_, std::memory_order_relaxed);

  // A client that disappears mid-reply must surface as EPIPE, never
  // kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  if (opt_.cache_entries > 0) {
    ArtifactCacheOptions co;
    co.max_entries = opt_.cache_entries;
    co.dir = opt_.cache_dir;
    cache_ = std::make_unique<ArtifactCache>(co);
  }
  if (opt_.service.isolate == IsolationMode::kProcess) {
    SupervisorOptions so;
    so.worker_cmd = opt_.service.worker_cmd;
    so.worker_mem_mb = opt_.service.worker_mem_mb;
    so.read_timeout_ms = opt_.service.worker_read_timeout_ms;
    so.heartbeat_ms = opt_.service.worker_heartbeat_ms;
    supervisor_ = std::make_unique<WorkerSupervisor>(so);
  }
  if (!opt_.journal_dir.empty()) {
    ::mkdir(opt_.journal_dir.c_str(), 0755);
  }

  executor_ = std::thread([this] { executor_loop(); });
  return true;
}

int ServeDaemon::serve() {
  for (;;) {
    reap_finished_sessions();

    if (draining()) {
      // Done once nothing is pending, nothing is executing, and every
      // session thread has returned.
      bool idle;
      {
        std::lock_guard<std::mutex> lk(mu_);
        idle = sched_.pending() == 0 && !executing_;
      }
      if (idle) {
        std::lock_guard<std::mutex> lk(sessions_mu_);
        bool all_done = true;
        for (const SessionSlot& s : sessions_) {
          if (s.session && !s.session->done()) {
            all_done = false;
            break;
          }
        }
        if (all_done) return 0;
      }
    }

    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {drain_rd_, POLLIN, 0}};
    int pr = ::poll(fds, 2, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (fds[1].revents & POLLIN) {
      char buf[16];
      while (::read(drain_rd_, buf, sizeof(buf)) > 0) {
      }
      request_drain();
      continue;
    }
    if (!(fds[0].revents & POLLIN)) continue;

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining()) {
      // Structured refusal even for connections that raced the drain.
      RejectReply rej;
      rej.cause = "draining";
      rej.detail = "daemon is draining";
      (void)set_nonblock(fd);
      (void)write_frame_deadline(fd, kFrameReject, rej.json(),
                                 opt_.reply_timeout_ms);
      ::close(fd);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.rejected_draining += 1;
      }
      continue;
    }
    if (!set_nonblock(fd)) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    auto session =
        std::make_shared<Session>(fd, next_session_id_++, this);
    SessionSlot slot;
    slot.session = session;
    slot.thread = std::thread([session] { session->run(); });
    sessions_.push_back(std::move(slot));
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      stats_.sessions_opened += 1;
    }
  }
}

void ServeDaemon::request_drain() {
  bool was = draining_.exchange(true, std::memory_order_acq_rel);
  if (was) return;
  // Idle sessions sit in read_frame under the idle timeout; kick them
  // so drain completes promptly. Busy sessions get their in-flight
  // reply first (their read side is not waiting) and exit on the next
  // loop pass.
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (SessionSlot& s : sessions_) {
    if (s.session && !s.session->busy()) s.session->wake();
  }
}

std::string ServeDaemon::submit(std::shared_ptr<ServeRequest> r) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests_submitted += 1;
  }
  if (draining()) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.rejected_draining += 1;
    return "draining";
  }
  std::string cause;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cause = sched_.submit(std::move(r));
  }
  if (cause.empty()) {
    work_cv_.notify_one();
  } else {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (cause == "tenant-quota")
      stats_.rejected_tenant_quota += 1;
    else
      stats_.rejected_queue_full += 1;
  }
  return cause;
}

void ServeDaemon::executor_loop() {
  for (;;) {
    std::shared_ptr<ServeRequest> r;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_executor_ || sched_.pending() > 0;
      });
      // On stop, finish what was admitted (drain semantics) before
      // exiting.
      if (sched_.pending() == 0) {
        if (stop_executor_) return;
        continue;
      }
      r = sched_.next();
      executing_ = true;
    }
    run_request(*r);
    {
      std::lock_guard<std::mutex> lk(mu_);
      sched_.finished(r->tenant);
      executing_ = false;
    }
    work_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lk(r->m);
      r->done = true;
    }
    r->cv.notify_all();
  }
}

void ServeDaemon::run_request(ServeRequest& r) {
  ServiceOptions svc = opt_.service;
  svc.artifact_cache = cache_.get();
  svc.shared_supervisor = supervisor_.get();
  // Requests run serially, so the shared registry is copied in and
  // merged back under mu_ — status_json can snapshot it mid-request
  // without racing BatchService's commit pass.
  BreakerRegistry local_registry;
  if (opt_.shared_breakers) {
    std::lock_guard<std::mutex> lk(mu_);
    local_registry = registry_;
  }
  svc.breaker_registry = opt_.shared_breakers ? &local_registry : nullptr;
  if (!opt_.journal_dir.empty()) {
    // Fingerprint-derived journal name: a restarted daemon receiving
    // the same manifest resumes the old journal instead of re-running
    // finished jobs, and the resumed report is byte-identical. The
    // fingerprint covers the same option set as --batch resume, so a
    // mismatched replay is impossible by construction.
    svc.journal_path = opt_.journal_dir + "/req-" +
                       batch_fingerprint(r.jobs, svc) + ".journal";
    svc.resume = true;
  }
  try {
    BatchService service(opt_.spec, svc);
    r.report = service.run(r.jobs);
    if (opt_.shared_breakers) {
      std::lock_guard<std::mutex> lk(mu_);
      registry_ = local_registry;
    }
    accumulate(r.report);
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests_served += 1;
  } catch (const std::exception& e) {
    // Nothing a client sends may kill the daemon: the failure becomes a
    // structured reject for this request only.
    r.failed = true;
    r.error = e.what();
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests_failed += 1;
  }
}

void ServeDaemon::accumulate(const ServiceReport& rep) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.jobs_submitted += static_cast<std::int64_t>(rep.submitted);
  stats_.jobs_succeeded += static_cast<std::int64_t>(rep.succeeded);
  stats_.jobs_succeeded_after_retry +=
      static_cast<std::int64_t>(rep.succeeded_after_retry);
  stats_.jobs_degraded += static_cast<std::int64_t>(rep.degraded);
  stats_.jobs_rejected += static_cast<std::int64_t>(
      rep.shed + rep.rejected_admission + rep.drained +
      rep.rejected_execution);
  stats_.retries += static_cast<std::int64_t>(rep.retries);
  stats_.crashes += static_cast<std::int64_t>(rep.crashes);
  stats_.resource_limited +=
      static_cast<std::int64_t>(rep.resource_limited);
  stats_.deadline_exceeded +=
      static_cast<std::int64_t>(rep.deadline_exceeded);
  stats_.breaker_opens += static_cast<std::int64_t>(rep.breaker_opens);
  stats_.breaker_short_circuits +=
      static_cast<std::int64_t>(rep.breaker_short_circuits);
}

std::string ServeDaemon::status_json() {
  DaemonStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  std::size_t pending;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending = sched_.pending();
  }
  std::ostringstream os;
  os << "{\"draining\":" << (draining() ? "true" : "false")
     << ",\"pending\":" << pending
     << ",\"requests\":{\"submitted\":" << s.requests_submitted
     << ",\"served\":" << s.requests_served
     << ",\"failed\":" << s.requests_failed
     << ",\"rejected_tenant_quota\":" << s.rejected_tenant_quota
     << ",\"rejected_queue_full\":" << s.rejected_queue_full
     << ",\"rejected_draining\":" << s.rejected_draining
     << ",\"rejected_bad_request\":" << s.rejected_bad_request << "}"
     << ",\"sessions\":{\"opened\":" << s.sessions_opened
     << ",\"reaped\":" << s.sessions_reaped << "}"
     << ",\"jobs\":{\"submitted\":" << s.jobs_submitted
     << ",\"succeeded\":" << s.jobs_succeeded
     << ",\"succeeded_after_retry\":" << s.jobs_succeeded_after_retry
     << ",\"degraded\":" << s.jobs_degraded
     << ",\"rejected\":" << s.jobs_rejected
     << ",\"retries\":" << s.retries << ",\"crashes\":" << s.crashes
     << ",\"resource_limited\":" << s.resource_limited
     << ",\"deadline_exceeded\":" << s.deadline_exceeded
     << ",\"breaker_opens\":" << s.breaker_opens
     << ",\"breaker_short_circuits\":" << s.breaker_short_circuits
     << "}";
  os << ",\"cache\":";
  if (cache_)
    os << cache_->stats().json();
  else
    os << "null";
  os << ",\"workers\":";
  if (supervisor_) {
    os << "{\"spawned\":" << supervisor_->spawned()
       << ",\"crashes\":" << supervisor_->crashes()
       << ",\"timeouts\":" << supervisor_->timeouts()
       << ",\"consecutive_failures\":"
       << supervisor_->consecutive_failures() << "}";
  } else {
    os << "null";
  }
  os << ",\"breakers\":[";
  {
    // The executor only touches registry_ under mu_ (copy-in/merge-out
    // around each request), so this snapshot never races a run.
    std::lock_guard<std::mutex> lk(mu_);
    bool first = true;
    for (const auto& [key, br] : registry_.breakers) {
      if (!first) os << ",";
      first = false;
      os << "{\"key\":\"" << json::escape(key) << "\",\"state\":\""
         << to_string(br.state()) << "\",\"opens\":" << br.opens()
         << ",\"probes\":" << br.probes()
         << ",\"short_circuits\":" << br.short_circuits() << "}";
    }
  }
  os << "]}";
  return os.str();
}

std::string ServeDaemon::healthz_json() {
  const int failures =
      supervisor_ ? supervisor_->consecutive_failures() : 0;
  const char* status = "ok";
  if (draining())
    status = "draining";
  else if (failures >= opt_.crash_loop_threshold)
    status = "crash-loop";
  std::ostringstream os;
  os << "{\"status\":\"" << status
     << "\",\"consecutive_worker_failures\":" << failures
     << ",\"crash_loop_threshold\":" << opt_.crash_loop_threshold << "}";
  return os.str();
}

void ServeDaemon::note_session_reaped() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.sessions_reaped += 1;
}

void ServeDaemon::note_bad_request() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.rejected_bad_request += 1;
}

void ServeDaemon::reap_finished_sessions() {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->session && it->session->done()) {
      if (it->thread.joinable()) it->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  ::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace cudanp::serve
