// Persistent serve daemon: `cudanp-cc --serve=<socket>`.
//
// A ServeDaemon listens on an AF_UNIX stream socket and drives every
// submitted manifest through the full BatchService pipeline without
// ever dying from client-induced failures. The moving parts:
//
//   accept loop   - one thread (serve()) polling {listen fd, signal
//                   self-pipe}; each accepted connection gets a Session
//                   thread (serve/session.hpp);
//   admission     - DrrScheduler: per-tenant quotas (a tenant past its
//                   quota is shed with cause "tenant-quota") and
//                   deficit-round-robin dequeue, so one flooding tenant
//                   delays but never starves the others; a global
//                   pending bound sheds with "queue-full";
//   executor      - one thread running admitted requests serially
//                   through BatchService (the exec_pool parallelizes
//                   jobs *within* a request; serial requests keep every
//                   report bit-identical to a standalone --batch run);
//   shared state  - one WorkerSupervisor (crash-loop backoff becomes
//                   daemon-wide policy), one ArtifactCache (compile
//                   once across tenants, checksummed + quarantining),
//                   and optionally one BreakerRegistry (cross-tenant
//                   breakers — off by default to keep the strict
//                   per-client determinism contract);
//   lifecycle     - SIGTERM/SIGINT (or a 'Q' frame) begins a graceful
//                   drain: admitted requests finish and journal, new
//                   connections get a structured "draining" reject, and
//                   serve() returns 0. With --journal-dir each request
//                   journals under a fingerprint-derived name and
//                   resumes idempotently after a restart.
//
// Determinism contract: one client's manifest stream produces
// ServiceReports bit-identical to --batch runs of the same manifests —
// the cache only skips work, journal resume replays outcomes, and
// breaker sharing is opt-in.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/artifact_cache.hpp"
#include "serve/manifest.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "sim/device.hpp"

namespace cudanp::serve {

class Session;

/// One admitted (or to-be-admitted) client request: a manifest's worth
/// of jobs plus the rendezvous the session thread blocks on.
struct ServeRequest {
  std::string tenant;
  std::vector<JobSpec> jobs;
  /// DRR cost: number of jobs (set at admission).
  std::int64_t cost = 0;

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  std::string error;
  ServiceReport report;
};

/// Tenant-fair admission: per-tenant FIFO queues with quotas, dequeued
/// deficit-round-robin. Each visit to a tenant grants `quantum` credit;
/// the head request is served once credit covers its cost, so a
/// many-job manifest waits proportionally instead of starving everyone
/// (and instead of being starved). One request is served per visit,
/// which keeps the interleave across tenants tight. Not internally
/// locked — the daemon guards it with its scheduler mutex; tests drive
/// it single-threaded.
class DrrScheduler {
 public:
  DrrScheduler(int tenant_quota, int max_pending, int quantum);

  /// Admits or sheds. Returns "" on admit, else the structured cause:
  /// "tenant-quota" (this tenant has quota_ requests queued+running)
  /// or "queue-full" (global pending bound).
  [[nodiscard]] std::string submit(std::shared_ptr<ServeRequest> r);

  /// DRR dequeue; nullptr when nothing is pending.
  [[nodiscard]] std::shared_ptr<ServeRequest> next();

  /// Releases the tenant's quota slot once its request finished.
  void finished(const std::string& tenant);

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::int64_t in_flight(const std::string& tenant) const;

 private:
  struct Tenant {
    std::deque<std::shared_ptr<ServeRequest>> q;
    std::int64_t deficit = 0;
    /// Queued + executing requests; bounded by the quota.
    std::int64_t in_flight = 0;
  };

  int quota_;
  int max_pending_;
  int quantum_;
  std::size_t pending_ = 0;
  std::map<std::string, Tenant> tenants_;
  /// Tenants with a non-empty queue, in first-arrival order; rr_ is the
  /// round-robin cursor into it.
  std::vector<std::string> active_;
  std::size_t rr_ = 0;
};

/// Operator counters for `status`; ServiceReport counters are summed
/// across every served request.
struct DaemonStats {
  std::int64_t requests_submitted = 0;
  std::int64_t requests_served = 0;
  std::int64_t requests_failed = 0;
  std::int64_t rejected_tenant_quota = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_draining = 0;
  std::int64_t rejected_bad_request = 0;
  std::int64_t sessions_opened = 0;
  std::int64_t sessions_reaped = 0;
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_succeeded = 0;
  std::int64_t jobs_succeeded_after_retry = 0;
  std::int64_t jobs_degraded = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t retries = 0;
  std::int64_t crashes = 0;
  std::int64_t resource_limited = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_short_circuits = 0;
};

struct DaemonOptions {
  std::string socket_path;
  /// Template for every request's BatchService (the shared supervisor /
  /// cache / breaker pointers are filled in per request by the daemon).
  ServiceOptions service;
  ManifestDefaults defaults;
  sim::DeviceSpec spec = sim::DeviceSpec::gtx680();

  /// Max requests one tenant may have queued + executing.
  int tenant_quota = 4;
  /// Global pending bound across tenants.
  int max_pending = 64;
  /// DRR credit granted per tenant visit (in jobs).
  int drr_quantum = 8;
  /// A session silent this long (real ms) is reaped.
  int session_idle_ms = 30000;
  /// Deadline for writing one reply frame to a client.
  int reply_timeout_ms = 10000;
  /// Consecutive worker failures before healthz reports "crash-loop".
  int crash_loop_threshold = 8;

  /// Compile cache: entry capacity (0 disables) and optional backing
  /// directory for restart-warm entries.
  int cache_entries = 0;
  std::string cache_dir;
  /// Per-request write-ahead journals land here as
  /// req-<fingerprint>.journal with resume-if-present semantics, making
  /// restart idempotent. Empty = no journaling.
  std::string journal_dir;
  /// Share circuit breakers across requests and tenants. Off by
  /// default: sharing makes one tenant's failures visible in another's
  /// report, deliberately trading the strict per-client determinism
  /// contract for cross-tenant protection.
  bool shared_breakers = false;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(DaemonOptions opt);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds the socket, installs drain signal handlers, starts the
  /// executor. False (with *error) on bind/listen failure.
  [[nodiscard]] bool start(std::string* error);

  /// Accept loop; returns the process exit code (0 after a graceful
  /// drain). Call start() first.
  int serve();

  /// Begins a graceful drain (idempotent, any thread): admitted
  /// requests finish, new work is refused with "draining", serve()
  /// returns once everything settled.
  void request_drain();
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // --- Session-facing interface. ---
  /// Admits a request into the scheduler ("" = admitted, else the
  /// structured reject cause, including "draining").
  [[nodiscard]] std::string submit(std::shared_ptr<ServeRequest> r);
  [[nodiscard]] std::string status_json();
  [[nodiscard]] std::string healthz_json();
  void note_session_reaped();
  void note_bad_request();
  [[nodiscard]] const DaemonOptions& options() const { return opt_; }

 private:
  struct SessionSlot {
    std::shared_ptr<Session> session;
    std::thread thread;
  };

  void executor_loop();
  void run_request(ServeRequest& r);
  void accumulate(const ServiceReport& report);
  void reap_finished_sessions();

  DaemonOptions opt_;
  int listen_fd_ = -1;
  int drain_rd_ = -1;
  int drain_wr_ = -1;
  std::atomic<bool> draining_{false};

  /// Request scheduling state (scheduler, executor handshake).
  std::mutex mu_;
  std::condition_variable work_cv_;
  DrrScheduler sched_;
  bool executing_ = false;
  bool stop_executor_ = false;
  std::thread executor_;

  /// Shared across every request.
  std::unique_ptr<ArtifactCache> cache_;
  std::unique_ptr<WorkerSupervisor> supervisor_;
  BreakerRegistry registry_;

  std::mutex stats_mu_;
  DaemonStats stats_;

  std::mutex sessions_mu_;
  std::vector<SessionSlot> sessions_;
  std::uint64_t next_session_id_ = 1;
};

/// Connects to a daemon socket (client side + tests). Returns the fd or
/// -1 with errno set.
[[nodiscard]] int connect_unix(const std::string& socket_path);

}  // namespace cudanp::serve
