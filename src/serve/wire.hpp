// Wire protocol between the batch supervisor and its sandboxed
// execution workers (`cudanp-cc --worker`).
//
// A worker speaks length-prefixed frames over a pipe pair:
//
//   [1 byte type][4 bytes little-endian payload length][payload]
//
//   'J'  job      supervisor -> worker   AttemptRequest JSON
//   'R'  result   worker -> supervisor   AttemptResult JSON
//   'H'  heartbeat worker -> supervisor  empty payload, sent on a real
//        timer while an attempt is executing so the supervisor can tell
//        "slow but alive" from "wedged"
//
// One frame in, one frame out: the worker executes exactly ONE attempt
// per 'J' frame (the retry/deadline/backoff loop stays in the
// supervisor, where it remains a pure function of virtual time). All
// framed reads in the supervisor go through read_frame's poll-based
// timeout, so a worker that stops responding mid-job — crashed, wedged,
// or killed — can never hang the batch (ISSUE: crash isolation).
//
// Payloads are JSON (support/json.hpp) rather than a packed struct so a
// torn or corrupt frame degrades to a structured parse failure, which
// the supervisor classifies as a crash, never undefined behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "np/compiler.hpp"
#include "sim/fault.hpp"

namespace cudanp::serve {

inline constexpr char kFrameJob = 'J';
inline constexpr char kFrameResult = 'R';
inline constexpr char kFrameHeartbeat = 'H';

// Daemon frames (`cudanp-cc --serve`, same framing over an AF_UNIX
// stream; see serve/daemon.hpp and docs/robustness.md "Persistent
// serving"):
//
//   'M'  submit       client -> daemon   SubmitRequest JSON (a whole
//        manifest, driven through BatchService as one request)
//   'P'  report       daemon -> client   SubmitReply JSON (the
//        ServiceReport, human + JSON renderings)
//   'X'  reject       daemon -> client   RejectReply JSON with a
//        structured cause: "tenant-quota" / "queue-full" / "draining" /
//        "bad-request" / "bad-manifest" / "internal-error"
//   'S'  status       client -> daemon   payload "status" or "healthz"
//   'T'  status-reply daemon -> client   JSON counters document
//   'Q'  shutdown     client -> daemon   empty; begins a graceful drain
inline constexpr char kFrameSubmit = 'M';
inline constexpr char kFrameReport = 'P';
inline constexpr char kFrameReject = 'X';
inline constexpr char kFrameStatus = 'S';
inline constexpr char kFrameStatusReply = 'T';
inline constexpr char kFrameShutdown = 'Q';

/// Frames above this are treated as stream corruption (a real request
/// is kernel source + options, well under a mebibyte).
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

struct Frame {
  char type = 0;
  std::string payload;
};

enum class ReadStatus : std::uint8_t {
  kOk,       // a complete frame was read
  kTimeout,  // nothing (or a partial frame) within the time budget
  kEof,      // orderly close — the peer exited
  kError,    // read error or a corrupt frame header
};

/// Writes one complete frame to `fd`, retrying on EINTR / short writes.
/// Returns false on any write error (e.g. EPIPE from a dead worker; the
/// supervisor runs with SIGPIPE ignored so this surfaces as an error
/// return, not a process kill).
bool write_frame(int fd, char type, std::string_view payload);

/// Reads one complete frame from `fd`. `timeout_ms` bounds the whole
/// read (poll-based, measured against CLOCK_MONOTONIC); negative waits
/// forever. Every blocking supervisor read goes through this — the
/// read-timeout satellite of the crash-isolation issue. Handles
/// O_NONBLOCK fds (daemon session sockets) as well as blocking pipes.
ReadStatus read_frame(int fd, Frame* out, int timeout_ms);

/// write_frame with a wall-clock deadline, for O_NONBLOCK session
/// sockets: a client that stops draining its receive buffer (a wedged
/// reader) makes this return false within `timeout_ms` instead of
/// blocking the session thread forever — the daemon reaps the session.
bool write_frame_deadline(int fd, char type, std::string_view payload,
                          int timeout_ms);

/// One attempt's worth of work, shipped to a worker (or executed
/// in-process via execute_attempt — both isolation modes run exactly
/// this struct, which is why their reports are bit-identical).
struct AttemptRequest {
  std::string source;
  /// Requested kernel name; empty = first kernel with NP pragmas.
  std::string kernel;
  int elems = 32;
  int tb = 32;
  /// Device model: resolved by name ("gtx680"/"k20c") + sm override so
  /// the worker reconstructs the supervisor's spec exactly.
  std::string device = "gtx680";
  int sm_version = 30;
  /// Final per-block step budget for this attempt (the supervisor has
  /// already folded the deadline clamp in).
  std::int64_t max_steps = 0;
  /// Apply the fault plan's AST corruption before compiling (mirrors
  /// spec.inject && (drop_barrier || skew_index); corruption persists
  /// across attempts like a real transform bug).
  bool corrupt_ast = false;
  /// Wire the fault plan's statement-level hooks (and the OOM probe /
  /// worker wedge) into this attempt. The supervisor clears this after
  /// JobSpec::transient_attempts, which is how injected faults stay
  /// transient under retry.
  bool hook_faults = false;
  sim::FaultPlan fault;
  /// Sanitizer knobs (sim::SanitizerEngine::Options, flattened).
  std::int64_t error_limit = 100;
  bool portable_races = false;
  bool dedupe = true;
  double f32_rel_tol = 1e-3;
  /// Real-time heartbeat interval the worker keeps while executing.
  int heartbeat_ms = 200;
  /// Symbolic-equivalence certification (np/certifier.hpp): certify
  /// every candidate variant and quarantine refuted ones as
  /// proven-wrong before they can serve an answer.
  bool certify = false;
  /// With certify: proven variants skip the per-run sanitized
  /// cross-check (the watchdog still applies).
  bool certified_fast_path = false;
  /// Pre-certified payloads (np::Certificate::json()), one per already
  /// certified candidate config. The worker binds these as its
  /// certificate provider so cached / supervisor-side verdicts are
  /// reused instead of re-derived per attempt.
  std::vector<std::string> certificates;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<AttemptRequest> from_json(
      std::string_view text);
};

/// What one attempt produced. Either a structured rejection (parse
/// failed, kernel missing, internal error) or a FallbackDecision — the
/// same split BatchService::run_job has always committed.
struct AttemptResult {
  bool rejected = false;
  std::string reject_cause;   // "compile-error" / "no-kernel" /
                              // "internal-error"
  std::string reject_detail;
  /// Name of the kernel actually compiled (breaker identity).
  std::string kernel_name;
  np::FallbackDecision decision;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<AttemptResult> from_json(
      std::string_view text);
};

/// One client request to the daemon: a whole manifest, attributed to a
/// tenant for admission accounting. base_dir resolves relative file=
/// entries (the client sends its manifest's parent directory).
struct SubmitRequest {
  std::string tenant;
  std::string manifest;
  std::string base_dir;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<SubmitRequest> from_json(
      std::string_view text);
};

/// The daemon's answer to an admitted request: both renderings of the
/// ServiceReport, verbatim — the client re-emits them so its output is
/// byte-identical to a --batch run of the same manifest.
struct SubmitReply {
  std::string report_text;
  std::string report_json;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<SubmitReply> from_json(
      std::string_view text);
};

/// Structured refusal ('X' frame): the request never entered the
/// pipeline. cause is machine-readable; detail is for humans.
struct RejectReply {
  std::string cause;
  std::string detail;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<RejectReply> from_json(
      std::string_view text);
};

}  // namespace cudanp::serve
