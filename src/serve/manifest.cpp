#include "serve/manifest.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "support/string_utils.hpp"

namespace cudanp::serve {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::string basename_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::vector<JobSpec> parse_manifest(const std::string& text,
                                    const std::string& base_dir,
                                    const ManifestDefaults& defaults,
                                    std::string* error) {
  std::vector<JobSpec> jobs;
  auto fail = [&](int line_no, const std::string& msg) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + msg;
    jobs.clear();
    return jobs;
  };

  int line_no = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv[0] == '#') continue;

    JobSpec job;
    job.elems = defaults.elems;
    job.tb = defaults.tb;
    job.deadline_ms = defaults.deadline_ms;
    job.max_attempts = defaults.max_attempts;
    job.watchdog_steps = defaults.watchdog_steps;
    std::string file;

    std::istringstream fields{std::string(sv)};
    std::string field;
    while (fields >> field) {
      std::size_t eq = field.find('=');
      std::string key = field.substr(0, eq);
      std::string value =
          eq == std::string::npos ? "" : field.substr(eq + 1);
      // parse_i64 rejects partial parses ("64x"), empties and
      // out-of-range values; each bad field is a manifest error.
      auto num = [&](std::int64_t min, std::int64_t max,
                     std::int64_t* out) {
        auto v = parse_i64(value, min, max);
        if (v) *out = *v;
        return v.has_value();
      };
      std::int64_t n = 0;
      if (key == "file") {
        file = value;
      } else if (key == "name") {
        job.name = value;
      } else if (key == "kernel") {
        job.kernel = value;
      } else if (key == "elems") {
        if (!num(1, 1 << 20, &n)) return fail(line_no, "bad elems=" + value);
        job.elems = static_cast<int>(n);
      } else if (key == "tb") {
        if (!num(1, 1024, &n)) return fail(line_no, "bad tb=" + value);
        job.tb = static_cast<int>(n);
      } else if (key == "deadline-ms") {
        if (!num(1, std::numeric_limits<std::int64_t>::max() / 2, &n))
          return fail(line_no, "bad deadline-ms=" + value);
        job.deadline_ms = n;
      } else if (key == "attempts") {
        if (!num(1, 1000, &n)) return fail(line_no, "bad attempts=" + value);
        job.max_attempts = static_cast<int>(n);
      } else if (key == "watchdog-steps") {
        if (!num(-1, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad watchdog-steps=" + value);
        job.watchdog_steps = n;
      } else if (key == "seed") {
        if (!num(0, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad seed=" + value);
        job.fault.seed = static_cast<std::uint64_t>(n);
        job.inject = true;
      } else if (key == "fault-step") {
        if (!num(1, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad fault-step=" + value);
        job.fault.sim_error_at_step = n;
        job.inject = true;
      } else if (key == "fault-block") {
        if (!num(-1, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad fault-block=" + value);
        job.fault.fault_block = n;
        job.inject = true;
      } else if (key == "stall-block") {
        if (!num(0, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad stall-block=" + value);
        job.fault.stall_block = n;
        job.inject = true;
      } else if (key == "transient-attempts") {
        if (!num(0, 1000, &n))
          return fail(line_no, "bad transient-attempts=" + value);
        job.transient_attempts = static_cast<int>(n);
      } else if (key == "crash-step") {
        if (!num(1, std::numeric_limits<std::int64_t>::max(), &n))
          return fail(line_no, "bad crash-step=" + value);
        job.fault.crash_at_step = n;
        job.inject = true;
      } else if (key == "oom-mb") {
        if (!num(1, 1LL << 20, &n))
          return fail(line_no, "bad oom-mb=" + value);
        job.fault.oom_mb = n;
        job.inject = true;
      } else if (key == "wedge") {
        job.fault.wedge_worker = true;
        job.inject = true;
      } else if (key == "cache-corrupt") {
        // Serve-layer fault: acts on the artifact cache, not the
        // interpreter, so it does not set inject (the attempt itself
        // stays clean and cacheable once recompiled).
        job.fault.corrupt_cache = true;
      } else if (key == "cache-torn") {
        job.fault.tear_cache = true;
      } else if (key == "cert-corrupt") {
        // Certificate-store fault: like cache-corrupt, acts on the
        // artifact cache entry holding this job's certificates; the
        // damaged certificate must be quarantined and re-derived.
        job.fault.corrupt_cert = true;
      } else if (key == "cert-torn") {
        job.fault.tear_cert = true;
      } else if (key == "drop-barrier") {
        job.fault.drop_barrier = true;
        job.inject = true;
      } else if (key == "skew-index") {
        job.fault.skew_index = true;
        job.inject = true;
      } else {
        return fail(line_no, "unknown field '" + field + "'");
      }
    }
    if (file.empty()) return fail(line_no, "missing file=");
    std::string path = file;
    if (!base_dir.empty() && !file.empty() && file[0] != '/')
      path = base_dir + "/" + file;
    if (!read_file(path, &job.source))
      return fail(line_no, "cannot read " + path);
    if (job.name.empty())
      job.name = basename_of(file) + ":" + std::to_string(line_no);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> load_manifest(const std::string& path,
                                   const ManifestDefaults& defaults,
                                   std::string* error) {
  std::string text;
  if (!read_file(path, &text)) {
    if (error) *error = "cannot read manifest " + path;
    return {};
  }
  std::size_t slash = path.find_last_of('/');
  std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  return parse_manifest(text, base_dir, defaults, error);
}

}  // namespace cudanp::serve
