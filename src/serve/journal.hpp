// Write-ahead commit journal: durable batch recovery for BatchService.
//
// Layout (one JSON document per line):
//
//   {"cudanp_journal":1,"fingerprint":"<16 hex>"}     header
//   {"k":0,"outcome":{...}}                           one per outcome,
//   {"k":1,"outcome":{...}}                           accepted-queue
//   ...                                               order
//
// The journal records JobOutcomes — execution results — not JobResults.
// The commit pass (virtual clock, breakers, counters) is a pure
// function of outcomes in admission order, so replaying journaled
// outcomes and re-deriving the commit yields a ServiceReport
// byte-identical to the uninterrupted run. That is the whole recovery
// contract: `--journal=J` then SIGKILL at any instant, then
// `--journal=J --resume` finishes the batch with the exact report.
//
// Durability discipline (the temp-file satellite of the issue):
//   - the header segment is created as a pid-unique O_EXCL temp file,
//     fsync'd, then renamed into place (and the directory fsync'd), so
//     a crash during creation leaves either nothing or a valid header —
//     never a half-written journal at the final path;
//   - every record append is fsync'd before the outcome commits;
//   - a SIGKILL mid-append leaves a torn final line, which load_journal
//     tolerates (the record is simply re-executed on resume) and
//     open_for_resume truncates before appending;
//   - temp segments are registered with serve::cleanup so signal exit
//     unlinks them.
//
// The fingerprint (FNV-1a over every job spec + every
// determinism-relevant service option) guards resume: replaying a
// journal against a different batch would silently fabricate a report,
// so it raises ResumeMismatchError instead (cudanp-cc exit 9).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace cudanp::serve {

/// `--resume` against a journal written for a different batch (or
/// different determinism-relevant options). Deliberately an exception:
/// this is operator error, not job misbehaviour, and must not produce a
/// report at all.
class ResumeMismatchError : public std::runtime_error {
 public:
  explicit ResumeMismatchError(const std::string& what)
      : std::runtime_error(what) {}
};

struct JournalRecord {
  std::size_t k = 0;  // accepted-queue position
  JobOutcome outcome;
};

struct JournalContents {
  std::string fingerprint;
  std::vector<JournalRecord> records;
  /// Byte offset just past the last intact line; a torn tail (SIGKILL
  /// mid-append) lies beyond it and is discarded on resume.
  std::int64_t valid_bytes = 0;
};

/// FNV-1a over the job specs and every service option that feeds the
/// report. Two batches with equal fingerprints produce byte-identical
/// reports from equal outcomes.
[[nodiscard]] std::string batch_fingerprint(
    const std::vector<JobSpec>& jobs, const ServiceOptions& opt);

/// Reads a journal back. Returns nullopt (with *error) when the file is
/// missing or its header is unreadable; a torn final record is not an
/// error. Does not check the fingerprint — the caller compares against
/// batch_fingerprint and raises ResumeMismatchError on a mismatch.
[[nodiscard]] std::optional<JournalContents> load_journal(
    const std::string& path, std::string* error);

class JournalWriter {
 public:
  /// Creates a fresh journal at `path` (replacing any previous one)
  /// via the O_EXCL-temp + fsync + rename discipline above.
  [[nodiscard]] static std::optional<JournalWriter> create(
      const std::string& path, const std::string& fingerprint,
      std::string* error);

  /// Opens an existing journal to continue a resumed batch: truncates
  /// the torn tail at `valid_bytes` and appends after it.
  [[nodiscard]] static std::optional<JournalWriter> open_for_resume(
      const std::string& path, std::int64_t valid_bytes,
      std::string* error);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one outcome record and fsyncs it. Returns false on an I/O
  /// error (the batch continues — journaling is belt, not suspenders —
  /// but the failure is sticky and visible via ok()).
  bool append(std::size_t k, const JobOutcome& outcome);

  [[nodiscard]] bool ok() const { return fd_ >= 0 && !write_failed_; }

 private:
  JournalWriter() = default;

  int fd_ = -1;
  bool write_failed_ = false;
};

}  // namespace cudanp::serve
