#include "serve/journal.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "serve/supervisor.hpp"
#include "support/json.hpp"

namespace cudanp::serve {

namespace {

constexpr int kJournalVersion = 1;

std::string dirname_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync the directory so the rename (or append target) itself is
/// durable, not just the file contents.
void fsync_dir(const std::string& dir) {
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)fsync(fd);
  close(fd);
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void fnv1a(std::uint64_t* h, std::string_view s) {
  for (char c : s) {
    *h ^= static_cast<std::uint8_t>(c);
    *h *= 0x100000001b3ULL;
  }
  // Field separator: "ab" + "c" must hash differently from "a" + "bc".
  *h ^= 0x1f;
  *h *= 0x100000001b3ULL;
}

void fnv1a_i64(std::uint64_t* h, std::int64_t v) {
  fnv1a(h, std::to_string(v));
}

}  // namespace

std::string batch_fingerprint(const std::vector<JobSpec>& jobs,
                              const ServiceOptions& opt) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv1a_i64(&h, kJournalVersion);
  fnv1a_i64(&h, static_cast<std::int64_t>(jobs.size()));
  for (const JobSpec& j : jobs) {
    fnv1a(&h, j.name);
    fnv1a(&h, j.source);
    fnv1a(&h, j.kernel);
    fnv1a_i64(&h, j.elems);
    fnv1a_i64(&h, j.tb);
    fnv1a_i64(&h, j.deadline_ms);
    fnv1a_i64(&h, j.max_attempts);
    fnv1a_i64(&h, j.watchdog_steps);
    fnv1a_i64(&h, j.inject ? 1 : 0);
    fnv1a(&h, j.fault.json());
    fnv1a_i64(&h, j.transient_attempts);
  }
  // Every option that can change an outcome or the commit derivation.
  // --jobs and commit_chunk are deliberately absent: reports are
  // bit-identical across both.
  fnv1a_i64(&h, opt.queue_capacity);
  fnv1a_i64(&h, opt.default_deadline_ms);
  fnv1a_i64(&h, opt.min_feasible_ms);
  fnv1a_i64(&h, opt.steps_per_ms);
  fnv1a_i64(&h, opt.attempt_cost_ms);
  fnv1a_i64(&h, opt.drain_before_job);
  fnv1a_i64(&h, opt.retry.max_attempts);
  fnv1a_i64(&h, opt.retry.base_backoff_ms);
  fnv1a_i64(&h, opt.retry.max_backoff_ms);
  fnv1a_i64(&h, opt.retry.jitter_ms);
  fnv1a_i64(&h, static_cast<std::int64_t>(opt.retry.seed));
  fnv1a_i64(&h, opt.breaker.failure_threshold);
  fnv1a_i64(&h, opt.breaker.cooldown_ms);
  fnv1a_i64(&h, static_cast<std::int64_t>(opt.sanitizer.error_limit));
  fnv1a_i64(&h, static_cast<std::int64_t>(opt.sanitizer.race_mode));
  fnv1a_i64(&h, opt.sanitizer.dedupe ? 1 : 0);
  std::ostringstream tol;
  tol.precision(17);
  tol << opt.f32_rel_tol;
  fnv1a(&h, tol.str());
  fnv1a(&h, to_string(opt.isolate));
  fnv1a_i64(&h, opt.worker_mem_mb);
  fnv1a_i64(&h, opt.certify ? 1 : 0);
  fnv1a_i64(&h, opt.certified_fast_path ? 1 : 0);

  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx",
           static_cast<unsigned long long>(h));
  return buf;
}

std::optional<JournalContents> load_journal(const std::string& path,
                                            std::string* error) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error) *error = "cannot open journal " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      close(fd);
      if (error) *error = "cannot read journal " + path;
      return std::nullopt;
    }
    if (r == 0) break;
    text.append(buf, static_cast<std::size_t>(r));
  }
  close(fd);

  JournalContents out;
  std::size_t pos = 0;
  bool have_header = false;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: no newline yet
    std::string_view line(text.data() + pos, nl - pos);
    auto v = json::parse(line);
    if (!v || !v->is_object()) {
      // A torn or corrupt line ends the intact prefix; everything
      // after it is re-executed on resume.
      break;
    }
    if (!have_header) {
      if (v->get_i64("cudanp_journal") != kJournalVersion) {
        if (error) *error = path + ": not a cudanp journal";
        return std::nullopt;
      }
      out.fingerprint = v->get_str("fingerprint");
      have_header = true;
    } else {
      const json::Value* o = v->find("outcome");
      if (!o) break;
      auto outcome = JobOutcome::from_json_value(*o);
      if (!outcome) break;
      JournalRecord rec;
      rec.k = static_cast<std::size_t>(v->get_i64("k"));
      rec.outcome = std::move(*outcome);
      out.records.push_back(std::move(rec));
    }
    pos = nl + 1;
  }
  if (!have_header) {
    if (error) *error = path + ": missing journal header";
    return std::nullopt;
  }
  out.valid_bytes = static_cast<std::int64_t>(pos);
  return out;
}

std::optional<JournalWriter> JournalWriter::create(
    const std::string& path, const std::string& fingerprint,
    std::string* error) {
  // pid-unique temp segment, O_EXCL so two racing batches can never
  // interleave writes into one half-written header.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (error)
      *error = "cannot create journal segment " + tmp + ": " +
               strerror(errno);
    return std::nullopt;
  }
  cleanup::register_path(tmp);
  std::string header = "{\"cudanp_journal\":" +
                       std::to_string(kJournalVersion) +
                       ",\"fingerprint\":\"" + json::escape(fingerprint) +
                       "\"}\n";
  bool ok = write_all(fd, header.data(), header.size()) && fsync(fd) == 0;
  if (!ok || rename(tmp.c_str(), path.c_str()) != 0) {
    close(fd);
    unlink(tmp.c_str());
    cleanup::unregister_path(tmp);
    if (error) *error = "cannot write journal " + path;
    return std::nullopt;
  }
  cleanup::unregister_path(tmp);
  fsync_dir(dirname_of(path));
  JournalWriter w;
  w.fd_ = fd;
  return w;
}

std::optional<JournalWriter> JournalWriter::open_for_resume(
    const std::string& path, std::int64_t valid_bytes,
    std::string* error) {
  int fd = open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    if (error) *error = "cannot open journal " + path;
    return std::nullopt;
  }
  // Drop the torn tail before appending: the journal must stay a clean
  // prefix of intact lines at all times.
  if (ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      lseek(fd, 0, SEEK_END) < 0) {
    close(fd);
    if (error) *error = "cannot truncate journal " + path;
    return std::nullopt;
  }
  JournalWriter w;
  w.fd_ = fd;
  return w;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_), write_failed_(other.write_failed_) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    write_failed_ = other.write_failed_;
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) close(fd_);
}

bool JournalWriter::append(std::size_t k, const JobOutcome& outcome) {
  if (fd_ < 0 || write_failed_) return false;
  std::string line = "{\"k\":" + std::to_string(k) +
                     ",\"outcome\":" + outcome.json() + "}\n";
  if (!write_all(fd_, line.data(), line.size()) || fsync(fd_) != 0) {
    write_failed_ = true;
    return false;
  }
  return true;
}

}  // namespace cudanp::serve
