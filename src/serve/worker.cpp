#include "serve/worker.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#include "np/runner.hpp"
#include "sim/fault.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::serve {

namespace {

/// Same selection rule as BatchService: the requested name, else the
/// first kernel with NP pragmas, else the first kernel.
const ir::Kernel* pick_kernel(const ir::Program& program,
                              const std::string& name) {
  if (!name.empty()) return program.find_kernel(name);
  for (const auto& k : program.kernels)
    if (k->parallel_loop_count() > 0) return k.get();
  return program.kernels.empty() ? nullptr : program.kernels.front().get();
}

/// Heartbeat thread: writes 'H' frames on a real-time interval while an
/// attempt executes, so the supervisor can tell slow-but-alive from
/// wedged. Joins promptly via a condition variable.
class Heartbeat {
 public:
  Heartbeat(int fd, int interval_ms)
      : thread_([this, fd, interval_ms] {
          const auto interval =
              std::chrono::milliseconds(std::max(1, interval_ms));
          std::unique_lock<std::mutex> lock(mu_);
          while (!done_) {
            if (cv_.wait_for(lock, interval, [this] { return done_; }))
              break;
            if (!write_frame(fd, kFrameHeartbeat, {})) break;
          }
        }) {}

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

sim::DeviceSpec resolve_device(const AttemptRequest& req) {
  sim::DeviceSpec spec = req.device == "k20c" ? sim::DeviceSpec::k20c()
                                              : sim::DeviceSpec::gtx680();
  spec.sm_version = req.sm_version;
  return spec;
}

AttemptResult execute_attempt(const AttemptRequest& req,
                              const sim::DeviceSpec& spec) {
  AttemptResult res;
  try {
    auto program = np::NpCompiler::parse(req.source);
    const ir::Kernel* kernel = pick_kernel(*program, req.kernel);
    if (!kernel) {
      res.rejected = true;
      res.reject_cause = "no-kernel";
      return res;
    }
    // Planned AST corruption exists before the first launch, like a
    // real transform bug; it is seeded, so every attempt that re-runs
    // this function reconstructs the identical corrupted kernel.
    sim::FaultInjector injector(req.fault);
    std::unique_ptr<ir::Kernel> corrupted;
    if (req.corrupt_ast) {
      corrupted = kernel->clone();
      (void)injector.corrupt_kernel(*corrupted);
      kernel = corrupted.get();
    }
    res.kernel_name = kernel->name;
    res.decision.kernel = kernel->name;

    // OOM probe: a single pre-launch allocation of the planned size.
    // Under the worker's RLIMIT_AS it throws bad_alloc (classified
    // resource-limit below); uncapped it is allocated untouched and
    // freed, a no-op.
    if (req.hook_faults && req.fault.oom_mb > 0) {
      std::size_t bytes =
          static_cast<std::size_t>(req.fault.oom_mb) << 20;
      // Direct operator-new call: a plain new-expression pair may be
      // elided (N3664); this one must really reserve address space.
      void* probe = ::operator new(bytes);
      ::operator delete(probe);
    }

    np::ValidationOptions vopt;
    vopt.sanitizer.error_limit =
        static_cast<std::size_t>(req.error_limit);
    vopt.sanitizer.race_mode =
        req.portable_races ? sim::SanitizerEngine::RaceMode::kPortable
                           : sim::SanitizerEngine::RaceMode::kLockstep;
    vopt.sanitizer.dedupe = req.dedupe;
    vopt.f32_rel_tol = req.f32_rel_tol;
    vopt.certify = req.certify;
    vopt.certified_fast_path = req.certified_fast_path;
    if (req.certify && !req.certificates.empty()) {
      // Bind the shipped certificates as a read-only provider: a hit
      // reuses the supervisor's (possibly cached) verdict; a miss
      // certifies fresh in-process.
      const std::vector<std::string>& payloads = req.certificates;
      vopt.certificates.load =
          [&payloads](const std::string& config)
          -> std::optional<np::Certificate> {
        for (const std::string& p : payloads)
          if (auto c = np::Certificate::from_json(p); c && c->config == config)
            return c;
        return std::nullopt;
      };
    }
    // Each attempt simulates its grid serially; batch parallelism lives
    // a layer up (the exec_pool is not reentrant from worker threads).
    vopt.interp.jobs = 1;
    vopt.interp.limits.max_steps_per_block = req.max_steps;
    if (req.hook_faults) vopt.interp.fault = &injector;

    const ir::Kernel& k = *kernel;
    const int elems = req.elems;
    const int tb = req.tb;
    auto factory = [&k, elems, tb] {
      return np::make_synthetic_workload(k, elems, tb);
    };
    np::FallbackResult result = np::NpCompiler::compile_with_fallback(
        k, /*configs=*/{}, factory, spec, vopt);
    res.decision = std::move(result.decision);
  } catch (const CompileError& e) {
    res.rejected = true;
    res.reject_cause = "compile-error";
    res.reject_detail = e.what();
  } catch (const std::bad_alloc&) {
    // The attempt blew the worker's address-space budget. Deterministic
    // for a given cap, so never retried — but breaker-eligible, and the
    // job still degrades to the guaranteed baseline.
    np::VariantFailure f;
    f.kernel = res.kernel_name;
    f.config = "worker";
    f.cause = np::FailureCause::kResourceLimit;
    f.detail = "allocation of " + std::to_string(req.fault.oom_mb) +
               " MiB failed under the worker memory cap";
    res.rejected = false;
    res.decision = {};
    res.decision.kernel = res.kernel_name;
    res.decision.used_baseline = true;
    res.decision.quarantined.push_back(std::move(f));
  } catch (const std::exception& e) {
    res.rejected = true;
    res.reject_cause = "internal-error";
    res.reject_detail = e.what();
  }
  return res;
}

int run_worker_loop(int in_fd, int out_fd, std::int64_t mem_mb) {
  if (mem_mb > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(mem_mb) << 20;
    // Best-effort: a failed setrlimit leaves the worker uncapped, which
    // only softens the resource-limit fault class, never correctness.
    (void)setrlimit(RLIMIT_AS, &rl);
  }
  for (;;) {
    Frame frame;
    ReadStatus s = read_frame(in_fd, &frame, /*timeout_ms=*/-1);
    if (s == ReadStatus::kEof) return 0;  // supervisor closed: retire
    if (s != ReadStatus::kOk || frame.type != kFrameJob) return 1;
    auto req = AttemptRequest::from_json(frame.payload);
    if (!req) {
      AttemptResult bad;
      bad.rejected = true;
      bad.reject_cause = "internal-error";
      bad.reject_detail = "worker: malformed attempt request";
      if (!write_frame(out_fd, kFrameResult, bad.json())) return 1;
      continue;
    }
    if (req->hook_faults && req->fault.wedge_worker) {
      // Chaos: hold the job forever — no heartbeat, no result, no
      // exit. Only the supervisor's read timeout can reclaim the slot
      // (the regression test for every blocking pipe read).
      for (;;) pause();
    }
    AttemptResult res;
    {
      Heartbeat beat(out_fd, req->heartbeat_ms);
      res = execute_attempt(*req, resolve_device(*req));
    }  // heartbeat joined: 'R' below cannot interleave with an 'H'
    if (!write_frame(out_fd, kFrameResult, res.json())) return 1;
  }
}

}  // namespace cudanp::serve
