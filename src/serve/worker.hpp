// Execution-worker side of the process-isolation split.
//
// execute_attempt() is the single implementation of "run one attempt of
// one job": parse, pick the kernel, apply planned AST corruption, run
// NpCompiler::compile_with_fallback under sanitizer + watchdog. Both
// isolation modes call exactly this function — in-process from
// BatchService::run_job, out-of-process from run_worker_loop — which is
// what makes `--isolate=none` and `--isolate=process` reports
// bit-identical for any batch that does not actually crash.
//
// run_worker_loop() is the body of `cudanp-cc --worker`: read one 'J'
// frame, execute the attempt while a real-time heartbeat thread keeps
// the supervisor's read timeout at bay, write one 'R' frame, repeat
// until EOF. A worker never outlives its pipe: when the supervisor dies
// the read returns EOF and the worker exits. Native faults (SIGSEGV
// from the chaos plan's crash_at_step, an abort, a runaway loop past
// every watchdog) kill only this process; the supervisor classifies the
// death as FailureCause::kCrash and the batch continues.
//
// Resource caps: the worker applies RLIMIT_AS to itself (per
// --worker-mem-mb) before touching any job, so an attempt whose
// allocations exceed the cap fails with std::bad_alloc — classified as
// the non-transient, breaker-eligible "resource-limit" cause rather
// than a generic crash.
#pragma once

#include <cstdint>

#include "serve/wire.hpp"
#include "sim/device.hpp"

namespace cudanp::serve {

/// Runs one attempt to completion. Never throws: parse failures,
/// missing kernels, allocation failures (resource caps) and internal
/// errors all come back as a structured AttemptResult. Native crashes
/// are, by nature, not containable here — that is the supervisor's job.
[[nodiscard]] AttemptResult execute_attempt(const AttemptRequest& req,
                                            const sim::DeviceSpec& spec);

/// Resolves the device model a request names (AttemptRequest::device +
/// sm_version). Shared by the worker loop and tests.
[[nodiscard]] sim::DeviceSpec resolve_device(const AttemptRequest& req);

/// `cudanp-cc --worker`: serve attempts over [in_fd, out_fd] until EOF.
/// When mem_mb > 0, caps the worker's own address space (RLIMIT_AS)
/// first. Returns the process exit code (0 on orderly EOF).
int run_worker_loop(int in_fd, int out_fd, std::int64_t mem_mb);

}  // namespace cudanp::serve
