// One daemon client connection (`cudanp-cc --serve`).
//
// A Session owns the accepted AF_UNIX stream fd and runs on its own
// thread, decoding wire frames in a loop: 'M' submits a manifest
// through the daemon's admission scheduler and blocks until the
// executor delivers the ServiceReport (or a structured reject), 'S'
// answers status/healthz, 'Q' begins a graceful drain. A client may
// stream any number of requests over one connection.
//
// Robustness contract (the wedged-session watchdog):
//   - every read carries the daemon's idle timeout — a client that goes
//     silent is reaped (counted in status) without touching any other
//     session;
//   - every reply write carries a deadline (write_frame_deadline on the
//     O_NONBLOCK fd) — a client that stops draining its socket cannot
//     pin the session thread;
//   - a malformed frame or manifest earns an 'X' reject, never a
//     daemon-side crash; the connection stays usable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cudanp::serve {

class ServeDaemon;

class Session {
 public:
  /// Takes ownership of `fd` (already O_NONBLOCK); closed on destruction.
  Session(int fd, std::uint64_t id, ServeDaemon* daemon);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Thread body: frame loop until EOF, idle timeout, error, or drain.
  void run();

  /// Wakes a read blocked in run() (shutdown(2) on the fd, which stays
  /// open until destruction — safe against fd reuse). Called by the
  /// daemon on drain/exit for sessions that are not mid-request.
  void wake();

  /// True while a submitted request is in flight (admission through
  /// reply); the daemon does not wake() busy sessions on drain — their
  /// in-flight reply is delivered first.
  [[nodiscard]] bool busy() const {
    return busy_.load(std::memory_order_acquire);
  }
  /// True once run() returned; the daemon joins and reaps the slot.
  [[nodiscard]] bool done() const {
    return done_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  void handle_submit(const std::string& payload);
  void handle_status(const std::string& payload);
  void send_reject(const std::string& cause, const std::string& detail);

  int fd_;
  std::uint64_t id_;
  ServeDaemon* daemon_;
  std::atomic<bool> busy_{false};
  std::atomic<bool> done_{false};
};

}  // namespace cudanp::serve
