#include "serve/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "serve/daemon.hpp"
#include "serve/manifest.hpp"
#include "serve/wire.hpp"

namespace cudanp::serve {

Session::Session(int fd, std::uint64_t id, ServeDaemon* daemon)
    : fd_(fd), id_(id), daemon_(daemon) {}

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

void Session::wake() {
  // shutdown(2), not close(2): the fd number stays reserved until the
  // destructor, so a concurrent wake can never hit a recycled fd.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::send_reject(const std::string& cause,
                          const std::string& detail) {
  RejectReply rej;
  rej.cause = cause;
  rej.detail = detail;
  (void)write_frame_deadline(fd_, kFrameReject, rej.json(),
                             daemon_->options().reply_timeout_ms);
}

void Session::run() {
  for (;;) {
    Frame f;
    ReadStatus s =
        read_frame(fd_, &f, daemon_->options().session_idle_ms);
    if (s == ReadStatus::kTimeout) {
      // Wedged (or merely idle) client: reap this session. Healthy
      // sessions are untouched — the timeout is per-connection.
      daemon_->note_session_reaped();
      break;
    }
    if (s != ReadStatus::kOk) break;  // EOF or error: client went away
    switch (f.type) {
      case kFrameSubmit:
        handle_submit(f.payload);
        break;
      case kFrameStatus:
        handle_status(f.payload);
        break;
      case kFrameShutdown:
        // Ack before draining: request_drain() wakes idle sessions via
        // shutdown(2), which would cut off this very reply.
        (void)write_frame_deadline(fd_, kFrameStatusReply,
                                   "{\"status\":\"draining\"}",
                                   daemon_->options().reply_timeout_ms);
        daemon_->request_drain();
        break;
      default:
        daemon_->note_bad_request();
        send_reject("bad-request", "unknown frame type");
        break;
    }
    // After a drain begins, each session finishes the exchange it was
    // in and closes; new submissions would be rejected anyway.
    if (daemon_->draining()) break;
  }
  done_.store(true, std::memory_order_release);
}

void Session::handle_submit(const std::string& payload) {
  busy_.store(true, std::memory_order_release);
  auto req = SubmitRequest::from_json(payload);
  if (!req) {
    daemon_->note_bad_request();
    send_reject("bad-request", "malformed submit payload");
    busy_.store(false, std::memory_order_release);
    return;
  }
  std::string error;
  std::vector<JobSpec> jobs = parse_manifest(
      req->manifest, req->base_dir, daemon_->options().defaults, &error);
  if (jobs.empty()) {
    daemon_->note_bad_request();
    send_reject("bad-manifest",
                error.empty() ? "empty manifest" : error);
    busy_.store(false, std::memory_order_release);
    return;
  }
  auto r = std::make_shared<ServeRequest>();
  r->tenant = req->tenant.empty() ? "default" : req->tenant;
  r->jobs = std::move(jobs);
  const std::string cause = daemon_->submit(r);
  if (!cause.empty()) {
    send_reject(cause, "");
    busy_.store(false, std::memory_order_release);
    return;
  }
  {
    std::unique_lock<std::mutex> lk(r->m);
    r->cv.wait(lk, [&] { return r->done; });
  }
  if (r->failed) {
    send_reject("internal-error", r->error);
  } else {
    SubmitReply reply;
    reply.report_text = r->report.str();
    reply.report_json = r->report.json();
    if (!write_frame_deadline(fd_, kFrameReport, reply.json(),
                              daemon_->options().reply_timeout_ms))
      daemon_->note_session_reaped();
  }
  busy_.store(false, std::memory_order_release);
}

void Session::handle_status(const std::string& payload) {
  const std::string body = payload == "healthz" ? daemon_->healthz_json()
                                                : daemon_->status_json();
  (void)write_frame_deadline(fd_, kFrameStatusReply, body,
                             daemon_->options().reply_timeout_ms);
}

}  // namespace cudanp::serve
