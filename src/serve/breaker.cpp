#include "serve/breaker.hpp"

namespace cudanp::serve {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

std::optional<BreakerState> breaker_state_from_string(std::string_view s) {
  for (BreakerState st : {BreakerState::kClosed, BreakerState::kOpen,
                          BreakerState::kHalfOpen})
    if (s == to_string(st)) return st;
  return std::nullopt;
}

bool CircuitBreaker::allow(std::int64_t now_ms) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_ms >= open_until_ms_) {
        state_ = BreakerState::kHalfOpen;
        ++probes_;
        return true;
      }
      ++short_circuits_;
      return false;
    case BreakerState::kHalfOpen:
      // Commits are serialized in admission order, so the probe that
      // half-opened the breaker resolves (on_success / on_failure)
      // before any other job consults it; a second concurrent probe
      // cannot happen by construction.
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(std::int64_t now_ms) {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_ms_ = now_ms + policy_.cooldown_ms;
    ++opens_;
  }
}

}  // namespace cudanp::serve
