// Per-(kernel, variant) circuit breaker.
//
// Tracks the health of one first-choice NP configuration across jobs.
// K consecutive failures open the breaker; while open, committed jobs
// with the same key are routed straight to the guaranteed baseline
// fallback (graceful degradation) instead of burning a doomed variant
// attempt. After cooldown_ms of virtual time the breaker half-opens and
// lets exactly one probe job through: a pristine result closes it, a
// failure re-opens it for another cooldown.
//
// Every transition happens at commit time, in admission order, under
// the service's virtual clock — never from worker threads — so breaker
// evolution (and therefore every routed job) is bit-identical at every
// --jobs count. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cudanp::serve {

struct BreakerPolicy {
  /// Consecutive first-choice failures that open the breaker.
  int failure_threshold = 3;
  /// Virtual ms the breaker stays open before half-open probing.
  std::int64_t cooldown_ms = 200;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(BreakerState s);
/// Reverses to_string; nullopt on an unknown slug.
[[nodiscard]] std::optional<BreakerState> breaker_state_from_string(
    std::string_view s);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

  /// True when traffic may flow to the variant: closed, or open with an
  /// expired cooldown (which moves the breaker to half-open and counts
  /// a probe). False short-circuits the job to the baseline (counted).
  [[nodiscard]] bool allow(std::int64_t now_ms);

  /// A pristine commit: closes the breaker and resets the failure run.
  void on_success();

  /// A first-choice failure commit: extends the failure run; opens the
  /// breaker at the threshold, and re-opens immediately from half-open
  /// (a failed probe proves the variant is still sick).
  void on_failure(std::int64_t now_ms);

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const {
    return consecutive_failures_;
  }
  [[nodiscard]] int opens() const { return opens_; }
  [[nodiscard]] int probes() const { return probes_; }
  [[nodiscard]] int short_circuits() const { return short_circuits_; }
  [[nodiscard]] std::int64_t open_until_ms() const { return open_until_ms_; }

 private:
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  std::int64_t open_until_ms_ = 0;
  int opens_ = 0;
  int probes_ = 0;
  int short_circuits_ = 0;
};

}  // namespace cudanp::serve
