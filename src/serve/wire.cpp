#include "serve/wire.hpp"

#include <errno.h>
#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "support/json.hpp"

namespace cudanp::serve {

namespace {

std::int64_t monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         ts.tv_nsec / 1000000;
}

/// Writes all of `n` bytes, riding out EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes with a poll-based deadline. deadline_ms < 0
/// blocks forever.
ReadStatus read_exact(int fd, char* data, std::size_t n,
                      std::int64_t deadline_ms) {
  while (n > 0) {
    if (deadline_ms >= 0) {
      std::int64_t remaining = deadline_ms - monotonic_ms();
      if (remaining <= 0) return ReadStatus::kTimeout;
      pollfd p{fd, POLLIN, 0};
      int pr = ::poll(&p, 1,
                      static_cast<int>(remaining > 1000000 ? 1000000
                                                           : remaining));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return ReadStatus::kError;
      }
      if (pr == 0) continue;  // re-check the deadline
    }
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // O_NONBLOCK fd raced a spurious poll wakeup. With a deadline
        // the loop re-polls; without one, block here until readable.
        if (deadline_ms < 0) {
          pollfd p{fd, POLLIN, 0};
          (void)::poll(&p, 1, -1);
        }
        continue;
      }
      return ReadStatus::kError;
    }
    if (r == 0) return ReadStatus::kEof;
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

std::string frame_buffer(char type, std::string_view payload) {
  std::string buf;
  buf.reserve(5 + payload.size());
  buf.push_back(type);
  auto len = static_cast<std::uint32_t>(payload.size());
  char hdr[4] = {static_cast<char>(len & 0xff),
                 static_cast<char>((len >> 8) & 0xff),
                 static_cast<char>((len >> 16) & 0xff),
                 static_cast<char>((len >> 24) & 0xff)};
  buf.append(hdr, 4);
  buf.append(payload.data(), payload.size());
  return buf;
}

}  // namespace

bool write_frame(int fd, char type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  // One contiguous buffer per frame: a single writer thread per fd plus
  // whole-frame writes keep frames from interleaving on the pipe.
  std::string buf = frame_buffer(type, payload);
  return write_all(fd, buf.data(), buf.size());
}

bool write_frame_deadline(int fd, char type, std::string_view payload,
                          int timeout_ms) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string buf = frame_buffer(type, payload);
  const std::int64_t deadline = monotonic_ms() + timeout_ms;
  const char* data = buf.data();
  std::size_t n = buf.size();
  while (n > 0) {
    std::int64_t remaining = deadline - monotonic_ms();
    if (remaining <= 0) return false;
    pollfd p{fd, POLLOUT, 0};
    int pr = ::poll(&p, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) continue;  // re-check the deadline
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

ReadStatus read_frame(int fd, Frame* out, int timeout_ms) {
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : monotonic_ms() + timeout_ms;
  char hdr[5];
  ReadStatus s = read_exact(fd, hdr, sizeof(hdr), deadline);
  if (s != ReadStatus::kOk) return s;
  out->type = hdr[0];
  std::uint32_t len = static_cast<std::uint8_t>(hdr[1]) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[2]))
                       << 8) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[3]))
                       << 16) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[4]))
                       << 24);
  if (len > kMaxFramePayload) return ReadStatus::kError;
  out->payload.resize(len);
  if (len == 0) return ReadStatus::kOk;
  return read_exact(fd, out->payload.data(), len, deadline);
}

std::string AttemptRequest::json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"source\":\"" << json::escape(source) << "\",\"kernel\":\""
     << json::escape(kernel) << "\",\"elems\":" << elems
     << ",\"tb\":" << tb << ",\"device\":\"" << json::escape(device)
     << "\",\"sm_version\":" << sm_version
     << ",\"max_steps\":" << max_steps << ",\"corrupt_ast\":"
     << (corrupt_ast ? "true" : "false") << ",\"hook_faults\":"
     << (hook_faults ? "true" : "false") << ",\"fault\":" << fault.json()
     << ",\"error_limit\":" << error_limit << ",\"portable_races\":"
     << (portable_races ? "true" : "false") << ",\"dedupe\":"
     << (dedupe ? "true" : "false") << ",\"f32_rel_tol\":" << f32_rel_tol
     << ",\"heartbeat_ms\":" << heartbeat_ms << ",\"certify\":"
     << (certify ? "true" : "false") << ",\"certified_fast_path\":"
     << (certified_fast_path ? "true" : "false") << ",\"certificates\":[";
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json::escape(certificates[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

std::optional<AttemptRequest> AttemptRequest::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  AttemptRequest r;
  r.source = v->get_str("source");
  r.kernel = v->get_str("kernel");
  r.elems = static_cast<int>(v->get_i64("elems", 32));
  r.tb = static_cast<int>(v->get_i64("tb", 32));
  r.device = v->get_str("device", "gtx680");
  r.sm_version = static_cast<int>(v->get_i64("sm_version", 30));
  r.max_steps = v->get_i64("max_steps");
  r.corrupt_ast = v->get_bool("corrupt_ast");
  r.hook_faults = v->get_bool("hook_faults");
  if (const json::Value* f = v->find("fault")) {
    auto plan = sim::FaultPlan::from_json_value(*f);
    if (!plan) return std::nullopt;
    r.fault = *plan;
  }
  r.error_limit = v->get_i64("error_limit", 100);
  r.portable_races = v->get_bool("portable_races");
  r.dedupe = v->get_bool("dedupe", true);
  r.f32_rel_tol = v->get_double("f32_rel_tol", 1e-3);
  r.heartbeat_ms = static_cast<int>(v->get_i64("heartbeat_ms", 200));
  r.certify = v->get_bool("certify");
  r.certified_fast_path = v->get_bool("certified_fast_path");
  if (const json::Value* c = v->find("certificates")) {
    if (!c->is_array()) return std::nullopt;
    for (const auto& item : c->arr()) {
      if (!item.is_string()) return std::nullopt;
      r.certificates.push_back(item.as_str());
    }
  }
  return r;
}

std::string AttemptResult::json() const {
  std::ostringstream os;
  os << "{\"rejected\":" << (rejected ? "true" : "false")
     << ",\"reject_cause\":\"" << json::escape(reject_cause)
     << "\",\"reject_detail\":\"" << json::escape(reject_detail)
     << "\",\"kernel_name\":\"" << json::escape(kernel_name)
     << "\",\"decision\":" << decision.json() << "}";
  return os.str();
}

std::optional<AttemptResult> AttemptResult::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  AttemptResult r;
  r.rejected = v->get_bool("rejected");
  r.reject_cause = v->get_str("reject_cause");
  r.reject_detail = v->get_str("reject_detail");
  r.kernel_name = v->get_str("kernel_name");
  if (const json::Value* d = v->find("decision")) {
    auto dec = np::FallbackDecision::from_json_value(*d);
    if (!dec) return std::nullopt;
    r.decision = std::move(*dec);
  }
  return r;
}

std::string SubmitRequest::json() const {
  std::ostringstream os;
  os << "{\"tenant\":\"" << json::escape(tenant) << "\",\"manifest\":\""
     << json::escape(manifest) << "\",\"base_dir\":\""
     << json::escape(base_dir) << "\"}";
  return os.str();
}

std::optional<SubmitRequest> SubmitRequest::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  SubmitRequest r;
  r.tenant = v->get_str("tenant");
  r.manifest = v->get_str("manifest");
  r.base_dir = v->get_str("base_dir");
  return r;
}

std::string SubmitReply::json() const {
  std::ostringstream os;
  os << "{\"report_text\":\"" << json::escape(report_text)
     << "\",\"report_json\":\"" << json::escape(report_json) << "\"}";
  return os.str();
}

std::optional<SubmitReply> SubmitReply::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  SubmitReply r;
  r.report_text = v->get_str("report_text");
  r.report_json = v->get_str("report_json");
  return r;
}

std::string RejectReply::json() const {
  std::ostringstream os;
  os << "{\"cause\":\"" << json::escape(cause) << "\",\"detail\":\""
     << json::escape(detail) << "\"}";
  return os.str();
}

std::optional<RejectReply> RejectReply::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v || !v->is_object()) return std::nullopt;
  RejectReply r;
  r.cause = v->get_str("cause");
  r.detail = v->get_str("detail");
  return r;
}

}  // namespace cudanp::serve
