// Supervisor side of the process-isolation split (`--isolate=process`).
//
// A WorkerSupervisor owns a pool of sandboxed worker subprocesses
// (`cudanp-cc --worker`, wire protocol in serve/wire.hpp) and executes
// one attempt per call: frame the AttemptRequest out, then read frames
// under a wall-clock timeout until the result arrives. Heartbeats reset
// the timer, so a slow-but-alive attempt is never killed; a worker that
// stops responding entirely is.
//
// Every way a worker can die maps to a structured verdict the retry /
// breaker / baseline-fallback machinery already understands:
//
//   nonzero exit          -> kCrashed ("worker exited with status N")
//   killed by a signal    -> kCrashed ("worker killed by signal N")
//   wedged pipe / silence -> kTimedOut (SIGKILL + reap, deterministic
//                            detail — the read-timeout satellite)
//   malformed result      -> kCrashed (corrupt stream, never UB)
//
// The detail strings carry no timing values, so reports built from them
// stay bit-identical run over run. Workers are respawned on demand with
// crash-loop backoff: consecutive worker deaths back the respawn rate
// off exponentially (real sleeps — invisible to the virtual clock).
//
// The cleanup registry at the bottom is the async-signal-safe inventory
// of live worker pids and temp files; cudanp-cc's batch mode installs
// SIGINT/SIGTERM handlers over it so an interrupted batch never leaks
// workers or half-written journal segments.
#pragma once

#include <signal.h>
#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace cudanp::serve {

struct SupervisorOptions {
  /// Worker command line; empty means re-exec ourselves:
  /// {"/proc/self/exe", "--worker"}.
  std::vector<std::string> worker_cmd;
  /// Address-space cap handed to each worker (--worker-mem-mb); 0 = no
  /// cap.
  std::int64_t worker_mem_mb = 0;
  /// Wall-clock budget for each framed read from a worker. Heartbeats
  /// reset it; only total silence trips it.
  int read_timeout_ms = 10000;
  /// Heartbeat interval workers are asked to keep (must be well under
  /// read_timeout_ms).
  int heartbeat_ms = 200;
};

enum class AttemptStatus : std::uint8_t {
  kCompleted,   // result frame received and parsed
  kCrashed,     // worker died (exit / signal / corrupt stream)
  kTimedOut,    // worker went silent; SIGKILLed and reaped
  kSpawnFailed, // could not start a worker at all
};

struct SupervisedAttempt {
  AttemptStatus status = AttemptStatus::kSpawnFailed;
  /// Valid only when status == kCompleted.
  AttemptResult result;
  /// Deterministic description for the non-completed statuses.
  std::string detail;
};

class WorkerSupervisor {
 public:
  explicit WorkerSupervisor(SupervisorOptions opt);
  /// Kills and reaps every pooled worker.
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Executes one attempt on a pooled (or freshly spawned) worker.
  /// Thread-safe: BatchService calls this concurrently from exec_pool
  /// workers; each call owns one subprocess for its duration. Never
  /// throws; every failure mode comes back as a status.
  [[nodiscard]] SupervisedAttempt execute(const AttemptRequest& req);

  /// Pool observability (tests assert respawn-after-crash here).
  [[nodiscard]] int spawned() const;
  [[nodiscard]] int crashes() const;
  [[nodiscard]] int timeouts() const;
  /// Live crash-loop depth: consecutive worker deaths / spawn failures
  /// with no completed attempt in between. When the supervisor is
  /// shared daemon-wide (ServiceOptions::shared_supervisor), this value
  /// persists across batches — the respawn backoff becomes daemon
  /// policy, and healthz flips to "crash-loop" past a threshold.
  [[nodiscard]] int consecutive_failures() const;

 private:
  struct Worker {
    pid_t pid = -1;
    int to_fd = -1;    // supervisor writes job frames here
    int from_fd = -1;  // supervisor reads result/heartbeat frames here
  };

  std::optional<Worker> spawn_locked();
  std::optional<Worker> checkout();
  void checkin(Worker w);
  /// SIGKILL (if still alive) + reap + close + unregister.
  void destroy(Worker& w);
  /// Reaps a dead worker and renders the deterministic death detail.
  std::string reap_detail(Worker& w);

  SupervisorOptions opt_;
  mutable std::mutex mu_;
  std::vector<Worker> free_;
  int spawned_ = 0;
  int crashes_ = 0;
  int timeouts_ = 0;
  /// Consecutive worker deaths / spawn failures; drives the crash-loop
  /// respawn backoff, reset by any completed attempt.
  int consecutive_failures_ = 0;
  /// Previous SIGPIPE disposition (ignored while the supervisor lives —
  /// a write to a just-died worker must surface as EPIPE, not kill the
  /// batch).
  struct sigaction old_sigpipe_ {};
};

/// Async-signal-safe inventory of live worker pids and temp paths, and
/// the SIGINT/SIGTERM handlers cudanp-cc installs over it in batch
/// mode. Fixed-capacity (no allocation in handlers); registration past
/// capacity is dropped — cleanup is best-effort by design.
namespace cleanup {

void register_pid(pid_t pid);
void unregister_pid(pid_t pid);
void register_path(const std::string& path);
void unregister_path(const std::string& path);

/// Installs SIGINT/SIGTERM handlers that kill registered pids, unlink
/// registered paths, then re-raise with the default disposition (so the
/// caller still dies by the signal). Idempotent.
void install_signal_handlers();

}  // namespace cleanup

}  // namespace cudanp::serve
