#include "serve/supervisor.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

namespace cudanp::serve {

namespace {

/// Crash-loop backoff: real-time sleep before the Nth consecutive
/// respawn-after-death. Purely a host-resource brake — virtual time and
/// therefore the report never see it.
void respawn_backoff(int consecutive_failures) {
  if (consecutive_failures <= 0) return;
  int shift = consecutive_failures > 6 ? 6 : consecutive_failures;
  std::this_thread::sleep_for(std::chrono::milliseconds(5 << shift));
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(SupervisorOptions opt)
    : opt_(std::move(opt)) {
  if (opt_.worker_cmd.empty())
    opt_.worker_cmd = {"/proc/self/exe", "--worker"};
  if (opt_.worker_mem_mb > 0)
    opt_.worker_cmd.push_back("--worker-mem-mb=" +
                              std::to_string(opt_.worker_mem_mb));
  struct sigaction ign {};
  ign.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ign, &old_sigpipe_);
}

WorkerSupervisor::~WorkerSupervisor() {
  for (Worker& w : free_) destroy(w);
  free_.clear();
  sigaction(SIGPIPE, &old_sigpipe_, nullptr);
}

std::optional<WorkerSupervisor::Worker> WorkerSupervisor::spawn_locked() {
  int to_worker[2];    // supervisor -> worker stdin
  int from_worker[2];  // worker stdout -> supervisor
  if (pipe2(to_worker, O_CLOEXEC) != 0) return std::nullopt;
  if (pipe2(from_worker, O_CLOEXEC) != 0) {
    close(to_worker[0]);
    close(to_worker[1]);
    return std::nullopt;
  }
  std::vector<char*> argv;
  argv.reserve(opt_.worker_cmd.size() + 1);
  for (const std::string& a : opt_.worker_cmd)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    close(to_worker[0]);
    close(to_worker[1]);
    close(from_worker[0]);
    close(from_worker[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    if (dup2(to_worker[0], STDIN_FILENO) < 0 ||
        dup2(from_worker[1], STDOUT_FILENO) < 0)
      _exit(127);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(to_worker[0]);
  close(from_worker[1]);
  ++spawned_;
  cleanup::register_pid(pid);
  return Worker{pid, to_worker[1], from_worker[0]};
}

std::optional<WorkerSupervisor::Worker> WorkerSupervisor::checkout() {
  int backoff_failures = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      Worker w = free_.back();
      free_.pop_back();
      return w;
    }
    backoff_failures = consecutive_failures_;
  }
  respawn_backoff(backoff_failures);
  std::lock_guard<std::mutex> lock(mu_);
  return spawn_locked();
}

void WorkerSupervisor::checkin(Worker w) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  free_.push_back(w);
}

void WorkerSupervisor::destroy(Worker& w) {
  if (w.pid > 0) {
    kill(w.pid, SIGKILL);
    int status = 0;
    while (waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {}
    cleanup::unregister_pid(w.pid);
  }
  if (w.to_fd >= 0) close(w.to_fd);
  if (w.from_fd >= 0) close(w.from_fd);
  w = Worker{};
}

std::string WorkerSupervisor::reap_detail(Worker& w) {
  int status = 0;
  pid_t r;
  while ((r = waitpid(w.pid, &status, 0)) < 0 && errno == EINTR) {}
  cleanup::unregister_pid(w.pid);
  close(w.to_fd);
  close(w.from_fd);
  w = Worker{};
  if (r < 0) return "worker disappeared";
  if (WIFSIGNALED(status))
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  if (WIFEXITED(status))
    return "worker exited with status " +
           std::to_string(WEXITSTATUS(status));
  return "worker died";
}

SupervisedAttempt WorkerSupervisor::execute(const AttemptRequest& req) {
  SupervisedAttempt out;
  auto worker = checkout();
  if (!worker) {
    std::lock_guard<std::mutex> lock(mu_);
    ++consecutive_failures_;
    out.status = AttemptStatus::kSpawnFailed;
    out.detail = "could not spawn execution worker";
    return out;
  }
  Worker w = *worker;

  AttemptRequest wire_req = req;
  wire_req.heartbeat_ms = opt_.heartbeat_ms;
  if (!write_frame(w.to_fd, kFrameJob, wire_req.json())) {
    // EPIPE: the pooled worker died between jobs. Classify and report
    // as a crash; the retry layer decides what happens next.
    out.status = AttemptStatus::kCrashed;
    out.detail = reap_detail(w);
    std::lock_guard<std::mutex> lock(mu_);
    ++crashes_;
    ++consecutive_failures_;
    return out;
  }

  for (;;) {
    Frame frame;
    ReadStatus s = read_frame(w.from_fd, &frame, opt_.read_timeout_ms);
    if (s == ReadStatus::kOk && frame.type == kFrameHeartbeat)
      continue;  // alive: the next read gets a fresh timeout
    if (s == ReadStatus::kOk && frame.type == kFrameResult) {
      auto result = AttemptResult::from_json(frame.payload);
      if (!result) {
        destroy(w);
        out.status = AttemptStatus::kCrashed;
        out.detail = "worker returned a malformed result frame";
        std::lock_guard<std::mutex> lock(mu_);
        ++crashes_;
        ++consecutive_failures_;
        return out;
      }
      out.status = AttemptStatus::kCompleted;
      out.result = std::move(*result);
      checkin(w);
      return out;
    }
    if (s == ReadStatus::kTimeout) {
      // Wedged: no result, no heartbeat, within the whole budget. Take
      // the slot back by force.
      destroy(w);
      out.status = AttemptStatus::kTimedOut;
      out.detail =
          "worker unresponsive: no heartbeat or result within the read "
          "timeout";
      std::lock_guard<std::mutex> lock(mu_);
      ++timeouts_;
      ++consecutive_failures_;
      return out;
    }
    // kEof / kError / unexpected frame type: the worker is gone or the
    // stream is corrupt — same verdict either way.
    if (s == ReadStatus::kOk) {
      destroy(w);
      out.detail = "worker sent an unexpected frame";
    } else {
      out.detail = reap_detail(w);
    }
    out.status = AttemptStatus::kCrashed;
    std::lock_guard<std::mutex> lock(mu_);
    ++crashes_;
    ++consecutive_failures_;
    return out;
  }
}

int WorkerSupervisor::spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spawned_;
}

int WorkerSupervisor::crashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

int WorkerSupervisor::timeouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeouts_;
}

int WorkerSupervisor::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

namespace cleanup {

namespace {

// Fixed-size, lock-free registries: every operation here must be
// callable between fork/exec and from a signal handler.
constexpr int kMaxPids = 256;
constexpr int kMaxPaths = 16;
constexpr int kMaxPathLen = 512;

std::atomic<pid_t> g_pids[kMaxPids];
char g_paths[kMaxPaths][kMaxPathLen];
std::atomic<bool> g_path_used[kMaxPaths];
std::atomic<bool> g_installed{false};

void cleanup_signal_handler(int sig) {
  for (auto& slot : g_pids) {
    pid_t pid = slot.load(std::memory_order_relaxed);
    if (pid > 0) kill(pid, SIGKILL);
  }
  for (int i = 0; i < kMaxPaths; ++i)
    if (g_path_used[i].load(std::memory_order_relaxed)) unlink(g_paths[i]);
  // Re-raise with the default disposition: the process still dies by
  // this signal, observable to the parent shell / CI harness.
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void register_pid(pid_t pid) {
  for (auto& slot : g_pids) {
    pid_t expected = 0;
    if (slot.compare_exchange_strong(expected, pid,
                                     std::memory_order_relaxed))
      return;
  }
}

void unregister_pid(pid_t pid) {
  for (auto& slot : g_pids) {
    pid_t expected = pid;
    if (slot.compare_exchange_strong(expected, 0,
                                     std::memory_order_relaxed))
      return;
  }
}

void register_path(const std::string& path) {
  if (path.size() + 1 > kMaxPathLen) return;
  for (int i = 0; i < kMaxPaths; ++i) {
    bool expected = false;
    if (g_path_used[i].compare_exchange_strong(
            expected, true, std::memory_order_relaxed)) {
      memcpy(g_paths[i], path.c_str(), path.size() + 1);
      return;
    }
  }
}

void unregister_path(const std::string& path) {
  for (int i = 0; i < kMaxPaths; ++i) {
    if (g_path_used[i].load(std::memory_order_relaxed) &&
        path == g_paths[i]) {
      g_path_used[i].store(false, std::memory_order_relaxed);
      return;
    }
  }
}

void install_signal_handlers() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa {};
  sa.sa_handler = cleanup_signal_handler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace cleanup

}  // namespace cudanp::serve
