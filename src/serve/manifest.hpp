// Batch manifest: the `cudanp-cc --batch=<file>` input format.
//
// One job per line; blank lines and `#` comments are skipped. A line is
// whitespace-separated `key=value` fields (plus bare flag keys):
//
//   file=examples/tmv.cu kernel=tmv elems=64 tb=32 deadline-ms=500
//   file=bad.cu fault-step=5 fault-block=0 transient-attempts=1
//   file=spin.cu stall-block=0 deadline-ms=50 name=hang
//
// Keys:
//   file=<path>            kernel source file (required)
//   name=<label>           report label (default: file + line number)
//   kernel=<name>          kernel to compile (default: first annotated)
//   elems=<n> tb=<n>       workload size / baseline block size
//   deadline-ms=<n>        per-job virtual deadline
//   attempts=<n>           per-job attempt cap
//   watchdog-steps=<n>     per-block step budget (deadline still clamps)
//   seed=<n>               fault plan seed
//   fault-step=<n>         inject a SimError at the Nth statement
//   fault-block=<n>        block the injected SimError targets (-1=all)
//   stall-block=<n>        block that spins until the watchdog trips
//   transient-attempts=<n> inject only on the first N attempts
//   drop-barrier           corrupt the AST: remove first __syncthreads
//   skew-index             corrupt the AST: skew first indexed store
//   crash-step=<n>         raise SIGSEGV at the Nth statement (a real
//                          native crash; survivable only under
//                          --isolate=process)
//   oom-mb=<n>             allocate N MiB before the first launch; fails
//                          as "resource-limit" under --worker-mem-mb
//   wedge                  worker stops responding (no heartbeat, no
//                          result); caught by the supervisor read
//                          timeout (--isolate=process only)
//   cache-corrupt          flip a byte in this job's artifact-cache
//                          entry before lookup; the cache must detect
//                          the checksum mismatch, quarantine the entry
//                          and recompile (no-op without a cache)
//   cache-torn             truncate the cache entry (torn write); same
//                          quarantine-and-recompile contract
//   cert-corrupt           flip a byte in this job's stored equivalence
//                          certificates before lookup; the damaged
//                          certificate must be quarantined and the
//                          variant re-certified, never fast-pathed
//                          (no-op without a cache or without --certify)
//   cert-torn              truncate the stored certificates (torn
//                          write); same quarantine-and-recertify
//                          contract
//
// Every numeric field goes through the checked parser — `elems=64x`
// is a manifest error, not a silent 64 (or 0).
#pragma once

#include <string>
#include <vector>

#include "serve/service.hpp"

namespace cudanp::serve {

/// Defaults applied to fields a manifest line does not set.
struct ManifestDefaults {
  int elems = 32;
  int tb = 32;
  std::int64_t deadline_ms = 0;      // 0 = ServiceOptions default
  int max_attempts = 0;              // 0 = retry policy default
  long long watchdog_steps = 0;
};

/// Parses manifest text. On success returns the jobs (kernel sources
/// loaded from each line's file=, resolved relative to `base_dir` when
/// not absolute). On failure returns an empty vector and sets *error to
/// a "line N: ..." message.
[[nodiscard]] std::vector<JobSpec> parse_manifest(
    const std::string& text, const std::string& base_dir,
    const ManifestDefaults& defaults, std::string* error);

/// Reads and parses a manifest file (base_dir = the manifest's parent
/// directory, so file= entries resolve relative to the manifest).
[[nodiscard]] std::vector<JobSpec> load_manifest(
    const std::string& path, const ManifestDefaults& defaults,
    std::string* error);

}  // namespace cudanp::serve
