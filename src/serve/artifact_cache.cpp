#include "serve/artifact_cache.hpp"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "support/json.hpp"

namespace cudanp::serve {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool key_is_safe(const std::string& key) {
  for (char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
          (c >= 'A' && c <= 'F')))
      return false;
  return !key.empty();
}

}  // namespace

std::string CacheStats::json() const {
  std::ostringstream os;
  os << "{\"hits\":" << hits << ",\"misses\":" << misses
     << ",\"stores\":" << stores << ",\"evictions\":" << evictions
     << ",\"quarantined_corrupt\":" << quarantined_corrupt
     << ",\"quarantined_torn\":" << quarantined_torn << "}";
  return os.str();
}

ArtifactCache::ArtifactCache(ArtifactCacheOptions opt)
    : opt_(std::move(opt)) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!opt_.dir.empty()) {
    ::mkdir(opt_.dir.c_str(), 0755);
    load_dir_locked();
  }
}

std::string ArtifactCache::file_path(const std::string& key) const {
  return opt_.dir + "/" + key + ".art";
}

void ArtifactCache::persist_locked(const std::string& key,
                                   const Entry& e) const {
  if (opt_.dir.empty()) return;
  const std::string final_path = file_path(key);
  const std::string tmp = final_path + ".tmp." + std::to_string(getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  std::string doc = "{\"cudanp_artifact\":1,\"key\":\"" + key +
                    "\",\"len\":" + std::to_string(e.declared_len) +
                    ",\"checksum\":\"" + hex16(e.checksum) + "\"}\n" +
                    e.payload;
  const char* data = doc.data();
  std::size_t n = doc.size();
  bool ok = true;
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  if (ok) (void)::fsync(fd);
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), final_path.c_str()) != 0)
    ::unlink(tmp.c_str());
}

void ArtifactCache::load_dir_locked() {
  DIR* d = ::opendir(opt_.dir.c_str());
  if (!d) return;
  // Collect names first so quarantine order is deterministic (readdir
  // order is not).
  std::map<std::string, std::string> files;  // key -> path
  while (dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.size() <= 4 || name.substr(name.size() - 4) != ".art")
      continue;
    files.emplace(name.substr(0, name.size() - 4), opt_.dir + "/" + name);
  }
  ::closedir(d);
  for (const auto& [key, path] : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::string header;
    std::getline(in, header);
    std::stringstream rest;
    rest << in.rdbuf();
    std::string payload = rest.str();
    auto v = json::parse(header);
    bool torn = false;
    bool ok = false;
    if (v && v->is_object() && v->get_i64("cudanp_artifact") == 1 &&
        v->get_str("key") == key && key_is_safe(key)) {
      auto len = static_cast<std::size_t>(v->get_i64("len", -1));
      const std::string sum = v->get_str("checksum");
      if (payload.size() != len) {
        torn = true;
      } else if (sum == hex16(fnv1a(payload))) {
        ok = true;
      }
    }
    if (!ok) {
      ::unlink(path.c_str());
      if (torn)
        ++stats_.quarantined_torn;
      else
        ++stats_.quarantined_corrupt;
      continue;
    }
    lru_.push_front(key);
    Entry e;
    e.payload = std::move(payload);
    e.declared_len = e.payload.size();
    e.checksum = fnv1a(e.payload);
    e.lru_it = lru_.begin();
    entries_.emplace(key, std::move(e));
  }
  evict_past_capacity_locked();
}

void ArtifactCache::quarantine_locked(const std::string& key, bool torn) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  if (!opt_.dir.empty()) ::unlink(file_path(key).c_str());
  if (torn)
    ++stats_.quarantined_torn;
  else
    ++stats_.quarantined_corrupt;
}

void ArtifactCache::evict_past_capacity_locked() {
  const std::size_t cap =
      opt_.max_entries > 0 ? static_cast<std::size_t>(opt_.max_entries) : 0;
  while (entries_.size() > cap) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    if (!opt_.dir.empty()) ::unlink(file_path(victim).c_str());
    ++stats_.evictions;
  }
}

std::optional<std::string> ArtifactCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& e = it->second;
  if (e.payload.size() != e.declared_len) {
    quarantine_locked(key, /*torn=*/true);
    ++stats_.misses;
    return std::nullopt;
  }
  if (fnv1a(e.payload) != e.checksum) {
    quarantine_locked(key, /*torn=*/false);
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  ++stats_.hits;
  return e.payload;
}

void ArtifactCache::store(const std::string& key, std::string_view payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (opt_.max_entries <= 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(key);
  Entry e;
  e.payload.assign(payload.data(), payload.size());
  e.declared_len = e.payload.size();
  e.checksum = fnv1a(e.payload);
  e.lru_it = lru_.begin();
  persist_locked(key, e);
  entries_.emplace(key, std::move(e));
  ++stats_.stores;
  evict_past_capacity_locked();
}

bool ArtifactCache::corrupt_entry(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  // Flip one byte mid-payload; declared_len and checksum stay stale, so
  // the next lookup sees a full-length mismatch (corrupt, not torn).
  it->second.payload[it->second.payload.size() / 2] ^=
      static_cast<char>(0x40);
  persist_locked(key, it->second);
  return true;
}

bool ArtifactCache::tear_entry(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  // Truncate to half: the payload no longer matches declared_len, which
  // is exactly what a write cut short by a crash looks like.
  it->second.payload.resize(it->second.payload.size() / 2);
  persist_locked(key, it->second);
  return true;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace cudanp::serve
