// Virtual time for the serve layer.
//
// The batch service never reads the host clock: deadlines, retry
// backoffs and breaker cooldowns are all accounted in virtual
// milliseconds that the scheduler advances deterministically (each job
// is charged for the attempts and backoffs it actually performed, in
// commit order). This is what makes every serve test — and the whole
// 50-job chaos manifest — bit-identical between --jobs=1 and --jobs=8:
// nothing downstream of admission depends on wall-clock scheduling.
#pragma once

#include <cstdint>

namespace cudanp::serve {

class VirtualClock {
 public:
  [[nodiscard]] std::int64_t now_ms() const { return now_ms_; }
  void advance_ms(std::int64_t delta) {
    if (delta > 0) now_ms_ += delta;
  }

 private:
  std::int64_t now_ms_ = 0;
};

}  // namespace cudanp::serve
