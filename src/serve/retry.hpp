// Retry with exponential backoff and deterministic jitter.
//
// Transient failures (injected faults, watchdog trips at tightened
// budgets — see np::transient(FailureCause)) are retried up to
// max_attempts, sleeping backoff_ms() of virtual time between attempts.
// The jitter is a pure function of (seed, job index, attempt), so two
// jobs never thunder in phase yet every run replays byte-identically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/rng.hpp"

namespace cudanp::serve {

struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 3;
  std::int64_t base_backoff_ms = 20;
  std::int64_t max_backoff_ms = 1000;
  /// Jitter added on top of the exponential term, in [0, jitter_ms).
  std::int64_t jitter_ms = 10;
  std::uint64_t seed = 0x5eedULL;

  /// Virtual backoff charged after failed attempt number `attempt`
  /// (1-based): base * 2^(attempt-1), capped, plus deterministic jitter.
  [[nodiscard]] std::int64_t backoff_ms(std::uint64_t job,
                                        int attempt) const {
    std::int64_t b = base_backoff_ms;
    for (int i = 1; i < attempt && b < max_backoff_ms; ++i) b *= 2;
    b = std::min(b, max_backoff_ms);
    if (jitter_ms > 0) {
      SplitMix64 rng(seed ^ (job + 1) * 0x9e3779b97f4a7c15ULL ^
                     static_cast<std::uint64_t>(attempt));
      b += static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(jitter_ms)));
    }
    return b;
  }
};

}  // namespace cudanp::serve
