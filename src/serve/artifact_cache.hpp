// Content-addressed compile cache for the serve layer.
//
// An ArtifactCache maps np::NpCompiler::artifact_key(source, options)
// to the serialized AttemptResult that key produced, so a daemon
// serving many tenants compiles each (source, options) pair once.
// Because execution is deterministic, a hit returns bytes identical to
// what recompilation would produce — caching changes wall time, never a
// ServiceReport (the determinism contract tests assert exactly this).
//
// Crash safety is the headline:
//   - every entry carries its payload length and an FNV-1a checksum;
//   - lookup() verifies both. A wrong-length payload is a *torn* entry
//     (a write that did not finish), a right-length payload with a
//     checksum mismatch is a *corrupt* one. Either way the entry is
//     quarantined — removed and counted, never served — and the caller
//     recompiles and re-stores;
//   - when backed by a directory, entry files are written to a
//     pid-unique temp name and rename()d into place, and a reload scan
//     quarantines any file that fails its own header check, so a daemon
//     killed mid-store restarts with only verified entries.
//
// Capacity is LRU-bounded (max_entries); eviction also unlinks the
// disk file. corrupt_entry()/tear_entry() are the chaos hooks behind
// the manifest's `cache-corrupt` / `cache-torn` fault keys: they damage
// a stored entry in place to prove the quarantine-and-recompile path.
//
// Thread-safe: BatchService calls lookup/store from exec_pool workers.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace cudanp::serve {

/// Operator counters, exported through the daemon's `status` request.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stores = 0;
  std::int64_t evictions = 0;
  /// Entries quarantined for a checksum mismatch at full length.
  std::int64_t quarantined_corrupt = 0;
  /// Entries quarantined for a payload shorter than declared.
  std::int64_t quarantined_torn = 0;

  [[nodiscard]] std::string json() const;
};

struct ArtifactCacheOptions {
  /// LRU capacity; <= 0 disables storing entirely (every lookup misses).
  int max_entries = 1024;
  /// Optional backing directory: entries persist across restarts via
  /// temp-file + rename. Empty = memory only.
  std::string dir;
};

class ArtifactCache {
 public:
  explicit ArtifactCache(ArtifactCacheOptions opt);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Returns the verified payload for `key`, or nullopt on a miss. A
  /// damaged entry (torn or corrupt) is quarantined — erased from
  /// memory and disk, counted in stats — and reported as a miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one past capacity.
  void store(const std::string& key, std::string_view payload);

  /// Chaos hooks: damage the stored entry for `key` in place (memory
  /// and disk). Return false when no such entry exists.
  bool corrupt_entry(const std::string& key);
  bool tear_entry(const std::string& key);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string payload;
    /// Length and checksum recorded at store time; lookup re-verifies
    /// the payload against both.
    std::size_t declared_len = 0;
    std::uint64_t checksum = 0;
    std::list<std::string>::iterator lru_it;
  };

  void quarantine_locked(const std::string& key, bool torn);
  void evict_past_capacity_locked();
  [[nodiscard]] std::string file_path(const std::string& key) const;
  void persist_locked(const std::string& key, const Entry& e) const;
  void load_dir_locked();

  ArtifactCacheOptions opt_;
  mutable std::mutex mu_;
  /// Most recently used at the front.
  std::list<std::string> lru_;
  std::map<std::string, Entry> entries_;
  CacheStats stats_;
};

}  // namespace cudanp::serve
