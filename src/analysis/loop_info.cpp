#include "analysis/loop_info.hpp"

namespace cudanp::analysis {

using namespace cudanp::ir;

namespace {

bool fail(std::string* why, const char* msg) {
  if (why) *why = msg;
  return false;
}

/// `i < bound` or `i <= bound-1`-style conditions; returns bound expr.
const Expr* match_bound(const Expr& cond, const std::string& iter,
                        std::string* why) {
  if (cond.kind() != ExprKind::kBinary) {
    fail(why, "loop condition is not a comparison");
    return nullptr;
  }
  const auto& b = static_cast<const BinaryExpr&>(cond);
  if (b.op != BinOp::kLt) {
    fail(why, "loop condition must be `iterator < bound`");
    return nullptr;
  }
  if (b.lhs->kind() != ExprKind::kVarRef ||
      static_cast<const VarRef&>(*b.lhs).name != iter) {
    fail(why, "loop condition LHS must be the iterator");
    return nullptr;
  }
  return b.rhs.get();
}

/// `i++`, `i += c` forms; returns step or 0.
std::int64_t match_step(const Stmt& inc, const std::string& iter,
                        std::string* why) {
  if (inc.kind() != StmtKind::kAssign) {
    fail(why, "loop increment is not an assignment");
    return 0;
  }
  const auto& a = static_cast<const AssignStmt&>(inc);
  if (a.lhs->kind() != ExprKind::kVarRef ||
      static_cast<const VarRef&>(*a.lhs).name != iter) {
    fail(why, "loop increment must update the iterator");
    return 0;
  }
  if (a.op == AssignOp::kAdd && a.rhs->kind() == ExprKind::kIntLit) {
    std::int64_t s = static_cast<const IntLit&>(*a.rhs).value;
    if (s > 0) return s;
  }
  // `i = i + c`
  if (a.op == AssignOp::kAssign && a.rhs->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*a.rhs);
    if (b.op == BinOp::kAdd && b.lhs->kind() == ExprKind::kVarRef &&
        static_cast<const VarRef&>(*b.lhs).name == iter &&
        b.rhs->kind() == ExprKind::kIntLit) {
      std::int64_t s = static_cast<const IntLit&>(*b.rhs).value;
      if (s > 0) return s;
    }
  }
  fail(why, "loop step must be a positive integer constant");
  return 0;
}

/// True if the iterator is assigned anywhere in the body.
bool iterator_modified(const Block& body, const std::string& iter) {
  bool modified = false;
  for_each_stmt(body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kAssign) {
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.lhs->kind() == ExprKind::kVarRef &&
          static_cast<const VarRef&>(*a.lhs).name == iter)
        modified = true;
    }
    if (s.kind() == StmtKind::kDecl &&
        static_cast<const DeclStmt&>(s).name == iter)
      modified = true;
  });
  return modified;
}

}  // namespace

std::optional<LoopInfo> analyze_loop(const ForStmt& loop,
                                     std::string* why_not) {
  LoopInfo info;
  if (!loop.init || !loop.cond || !loop.inc) {
    fail(why_not, "loop must have init, condition and increment");
    return std::nullopt;
  }

  if (loop.init->kind() == StmtKind::kDecl) {
    const auto& d = static_cast<const DeclStmt&>(*loop.init);
    if (!d.init) {
      fail(why_not, "iterator declaration has no initializer");
      return std::nullopt;
    }
    info.iterator = d.name;
    info.init = d.init.get();
    info.declares_iterator = true;
  } else if (loop.init->kind() == StmtKind::kAssign) {
    const auto& a = static_cast<const AssignStmt&>(*loop.init);
    if (a.op != AssignOp::kAssign ||
        a.lhs->kind() != ExprKind::kVarRef) {
      fail(why_not, "loop init must assign the iterator");
      return std::nullopt;
    }
    info.iterator = static_cast<const VarRef&>(*a.lhs).name;
    info.init = a.rhs.get();
  } else {
    fail(why_not, "unsupported loop init form");
    return std::nullopt;
  }

  info.bound = match_bound(*loop.cond, info.iterator, why_not);
  if (!info.bound) return std::nullopt;

  info.step = match_step(*loop.inc, info.iterator, why_not);
  if (info.step == 0) return std::nullopt;

  if (iterator_modified(*loop.body, info.iterator)) {
    fail(why_not, "iterator is modified inside the loop body");
    return std::nullopt;
  }

  if (info.init->kind() == ExprKind::kIntLit &&
      info.bound->kind() == ExprKind::kIntLit) {
    std::int64_t lo = static_cast<const IntLit&>(*info.init).value;
    std::int64_t hi = static_cast<const IntLit&>(*info.bound).value;
    info.const_trip_count =
        hi > lo ? (hi - lo + info.step - 1) / info.step : 0;
  }
  return info;
}

}  // namespace cudanp::analysis
