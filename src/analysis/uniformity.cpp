#include "analysis/uniformity.hpp"

#include "analysis/liveness.hpp"

namespace cudanp::analysis {

using namespace cudanp::ir;

UniformityTracker::UniformityTracker(
    std::unordered_map<std::string, Type> symbols,
    std::set<std::string> uniform_seed)
    : symbols_(std::move(symbols)), uniform_(std::move(uniform_seed)) {}

bool UniformityTracker::is_uniform_pure(const Expr& e) const {
  switch (e.kind()) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      return true;
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRef&>(e);
      // blockIdx/blockDim/gridDim are uniform across the whole block;
      // threadIdx.* is not (the transformer rewrites the master dimension
      // to master_id, which it seeds as uniform).
      if (is_builtin_geometry(v.name))
        return v.name.rfind("threadIdx", 0) != 0;
      if (uniform_.count(v.name)) return true;
      // Scalar kernel parameters are uniform (they have no DeclStmt, so
      // they are in the symbol table but never killed).
      auto it = symbols_.find(v.name);
      if (it != symbols_.end() && it->second.is_scalar() &&
          uniform_.count(v.name) == 0) {
        // Only parameters are implicitly uniform; locals must be tracked.
        return false;
      }
      return false;
    }
    case ExprKind::kArrayIndex:
      return false;  // memory access: never redundantly computed
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return is_uniform_pure(*b.lhs) && is_uniform_pure(*b.rhs);
    }
    case ExprKind::kUnary:
      return is_uniform_pure(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      // Pure math builtins only; __shfl/__syncthreads/etc. are not
      // redundant-computation candidates.
      static const std::set<std::string> kPure = {
          "sqrtf", "sqrt", "fabsf", "fabs", "expf", "exp",  "logf",
          "log",   "sinf", "cosf",  "powf", "min",  "max",  "fminf",
          "fmaxf", "abs",  "floorf", "rsqrtf"};
      if (!kPure.count(c.callee)) return false;
      for (const auto& a : c.args)
        if (!is_uniform_pure(*a)) return false;
      return true;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return is_uniform_pure(*t.cond) && is_uniform_pure(*t.then_value) &&
             is_uniform_pure(*t.else_value);
    }
    case ExprKind::kCast:
      return is_uniform_pure(*static_cast<const CastExpr&>(e).operand);
  }
  return false;
}

bool UniformityTracker::step(const Stmt& s) {
  switch (s.kind()) {
    case StmtKind::kDecl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      if (d.type.is_scalar() && d.init && is_uniform_pure(*d.init)) {
        uniform_.insert(d.name);
        return true;
      }
      if (!d.init) {
        // A bare declaration is "uniform" to execute (it computes
        // nothing), but the variable holds no uniform value yet.
        uniform_.erase(d.name);
        return true;
      }
      uniform_.erase(d.name);
      return false;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.lhs->kind() == ExprKind::kVarRef) {
        const auto& v = static_cast<const VarRef&>(*a.lhs);
        bool rhs_uniform = is_uniform_pure(*a.rhs);
        bool self_ok = a.op == AssignOp::kAssign || uniform_.count(v.name);
        if (rhs_uniform && self_ok) {
          uniform_.insert(v.name);
          return true;
        }
        uniform_.erase(v.name);
        return false;
      }
      // Stores to arrays/global memory must not be duplicated by slaves.
      return false;
    }
    default:
      // Control flow, calls, returns: handled structurally by the
      // transformer, not classified here. Kill nothing.
      return false;
  }
}

}  // namespace cudanp::analysis
