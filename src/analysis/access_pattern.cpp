#include "analysis/access_pattern.hpp"

#include <set>
#include <unordered_map>

#include "analysis/loop_info.hpp"

namespace cudanp::analysis {

using namespace cudanp::ir;

namespace {

/// Internal linear value: tracks the master and iterator coefficients
/// *independently* — an `i * w` term (iterator times a symbolic width)
/// has an unknown iterator stride but is still known to be
/// master-invariant, which is exactly what the coalescing question
/// needs.
struct Lin {
  bool cm_known = true;
  bool ci_known = true;
  std::int64_t cm = 0;
  std::int64_t ci = 0;
  bool is_const = false;
  std::int64_t cval = 0;

  static Lin constant(std::int64_t v) {
    Lin l;
    l.is_const = true;
    l.cval = v;
    return l;
  }
  static Lin unknown() {
    Lin l;
    l.cm_known = false;
    l.ci_known = false;
    return l;
  }
  [[nodiscard]] bool invariant_known() const {
    return cm_known && ci_known && cm == 0 && ci == 0;
  }
};

/// Flow-insensitive scalar definition map (last definition wins); good
/// enough to resolve `tx = threadIdx.x + blockIdx.x * blockDim.x`.
std::unordered_map<std::string, const Expr*> build_defs(const Kernel& k) {
  std::unordered_map<std::string, const Expr*> defs;
  for_each_stmt(*k.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(s);
      if (d.init && d.type.is_scalar()) defs[d.name] = d.init.get();
    } else if (s.kind() == StmtKind::kAssign) {
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.op == AssignOp::kAssign && a.lhs->kind() == ExprKind::kVarRef)
        defs[static_cast<const VarRef&>(*a.lhs).name] = a.rhs.get();
    }
  });
  return defs;
}

class Decomposer {
 public:
  Decomposer(std::string master, std::string iter,
             const std::unordered_map<std::string, const Expr*>& defs)
      : master_(std::move(master)), iter_(std::move(iter)), defs_(defs) {}

  Lin decompose(const Expr& e, int depth = 0) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return Lin::constant(static_cast<const IntLit&>(e).value);
      case ExprKind::kFloatLit:
        return Lin::unknown();  // float indexing is not a thing here
      case ExprKind::kVarRef: {
        const auto& name = static_cast<const VarRef&>(e).name;
        if (name == master_) {
          Lin l;
          l.cm = 1;
          return l;
        }
        if (name == iter_) {
          Lin l;
          l.ci = 1;
          return l;
        }
        if (is_builtin_geometry(name)) return Lin{};  // block-uniform
        // Resolve through the definition map (bounded, cycle-guarded).
        auto it = defs_.find(name);
        if (it != defs_.end() && depth < 6 && !visiting_.count(name)) {
          visiting_.insert(name);
          Lin l = decompose(*it->second, depth + 1);
          visiting_.erase(name);
          return l;
        }
        return Lin{};  // unknown scalar: lane-invariant offset
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        Lin l = decompose(*b.lhs, depth);
        Lin r = decompose(*b.rhs, depth);
        switch (b.op) {
          case BinOp::kAdd:
          case BinOp::kSub: {
            std::int64_t sign = b.op == BinOp::kAdd ? 1 : -1;
            Lin out;
            out.is_const = l.is_const && r.is_const;
            out.cval = l.cval + sign * r.cval;
            out.cm_known = l.cm_known && r.cm_known;
            out.ci_known = l.ci_known && r.ci_known;
            out.cm = l.cm + sign * r.cm;
            out.ci = l.ci + sign * r.ci;
            return out;
          }
          case BinOp::kMul: {
            if (l.is_const || r.is_const) {
              const Lin& c = l.is_const ? l : r;
              Lin out = l.is_const ? r : l;
              out.cval *= c.cval;
              out.cm *= c.cval;
              out.ci *= c.cval;
              out.is_const = l.is_const && r.is_const;
              return out;
            }
            // var * var: each coefficient is known (zero) only when both
            // factors are invariant in that variable.
            Lin out;
            out.cm_known = l.cm_known && r.cm_known && l.cm == 0 &&
                           r.cm == 0;
            out.ci_known = l.ci_known && r.ci_known && l.ci == 0 &&
                           r.ci == 0;
            return out;
          }
          default: {
            if (l.is_const && r.is_const && b.op == BinOp::kDiv &&
                r.cval != 0)
              return Lin::constant(l.cval / r.cval);
            Lin out;
            out.cm_known = l.cm_known && r.cm_known && l.cm == 0 &&
                           r.cm == 0;
            out.ci_known = l.ci_known && r.ci_known && l.ci == 0 &&
                           r.ci == 0;
            return out;
          }
        }
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Lin l = decompose(*u.operand, depth);
        if (u.op == UnOp::kNeg) {
          l.cval = -l.cval;
          l.cm = -l.cm;
          l.ci = -l.ci;
        } else {
          // Logical not of anything lane-varying is unknown.
          if (!l.invariant_known()) return Lin::unknown();
          l = Lin{};
        }
        return l;
      }
      case ExprKind::kCast:
        return decompose(*static_cast<const CastExpr&>(e).operand, depth);
      default:
        return Lin::unknown();
    }
  }

 private:
  std::string master_;
  std::string iter_;
  const std::unordered_map<std::string, const Expr*>& defs_;
  std::set<std::string> visiting_;
};

}  // namespace

LinearForm decompose_linear(const Expr& e, const std::string& master,
                            const std::string& iter) {
  std::unordered_map<std::string, const Expr*> empty;
  Decomposer d(master, iter, empty);
  Lin l = d.decompose(e);
  LinearForm out;
  out.affine = l.cm_known || l.ci_known;
  if (l.cm_known) out.master_coeff = l.cm;
  if (l.ci_known) out.iter_coeff = l.ci;
  return out;
}

AccessPatternSummary summarize_access_patterns(const Kernel& kernel) {
  AccessPatternSummary out;
  auto defs = build_defs(kernel);
  std::set<std::string> pointer_params;
  for (const auto& p : kernel.params)
    if (p.type.is_pointer) pointer_params.insert(p.name);

  // Walk annotated loops; inspect their bodies' global accesses.
  for_each_stmt(*kernel.body, [&](const Stmt& s) {
    if (s.kind() != StmtKind::kFor) return;
    const auto& f = static_cast<const ForStmt&>(s);
    if (!f.pragma) return;
    auto info = analyze_loop(f);
    if (!info) return;
    if (info->const_trip_count)
      out.max_const_trip = std::max(out.max_const_trip,
                                    *info->const_trip_count);

    Decomposer d("threadIdx.x", info->iterator, defs);
    for_each_expr_in(*f.body, [&](const Expr& e) {
      if (e.kind() != ExprKind::kArrayIndex) return;
      const auto& ai = static_cast<const ArrayIndex&>(e);
      if (ai.base->kind() != ExprKind::kVarRef) return;
      if (!pointer_params.count(static_cast<const VarRef&>(*ai.base).name))
        return;
      if (ai.indices.size() != 1) return;
      ++out.global_accesses;
      Lin l = d.decompose(*ai.indices[0]);
      if (l.cm_known && l.cm == 1) {
        ++out.coalesced_by_master;
      } else if (l.ci_known && l.ci == 1 &&
                 (!l.cm_known || l.cm == 0 || l.cm >= 32 || l.cm <= -32)) {
        // Master stride large or unknown, iterator unit-stride: an
        // intra-warp group walks consecutive addresses.
        ++out.recoalesced_by_iterator;
      }
    });
  });

  // LU-shaped master-dependent guards around annotated loops.
  for_each_stmt(*kernel.body, [&](const Stmt& s) {
    if (s.kind() != StmtKind::kIf) return;
    const auto& i = static_cast<const IfStmt&>(s);
    bool has_parallel = false;
    for_each_stmt(*i.then_body, [&](const Stmt& c) {
      if (c.kind() == StmtKind::kFor &&
          static_cast<const ForStmt&>(c).pragma)
        has_parallel = true;
    });
    if (i.else_body) {
      for_each_stmt(*i.else_body, [&](const Stmt& c) {
        if (c.kind() == StmtKind::kFor &&
            static_cast<const ForStmt&>(c).pragma)
          has_parallel = true;
      });
    }
    if (!has_parallel) return;
    bool master_dep = false;
    for_each_expr(*i.cond, [&](const Expr& e) {
      if (e.kind() == ExprKind::kVarRef &&
          static_cast<const VarRef&>(e).name == "threadIdx.x")
        master_dep = true;
    });
    if (master_dep) out.master_divergent_guard = true;
  });
  return out;
}

}  // namespace cudanp::analysis
