// Static resource estimation: registers / shared memory / local memory
// per thread, reproducing the accounting of the paper's Table 1.
//
// Shared memory and local memory are exact (sums of declared sizes).
// Registers are estimated the way a developer reads `ptxas -v` output:
// a base allocation for the ABI plus live scalar variables plus
// expression temporaries, with per-thread arrays that the compiler can
// promote (AddrSpace::kRegister after CUDA-NP's partitioning) counted at
// one register per element; anything beyond the per-thread architectural
// limit spills to local memory.
#pragma once

#include "ir/kernel.hpp"
#include "sim/device.hpp"

namespace cudanp::analysis {

struct ResourceEstimate {
  sim::ResourceUsage usage;          // what the occupancy calculator needs
  int estimated_registers_raw = 0;   // before clamping to the arch limit
  std::int64_t register_spill_bytes = 0;  // raw regs beyond the limit
  std::int64_t declared_local_bytes = 0;  // local arrays kept in local mem
};

/// Estimates resources for `kernel` launched with `threads_per_block`
/// threads (shared memory is per block, so the block size matters only
/// for reporting).
[[nodiscard]] ResourceEstimate estimate_resources(const ir::Kernel& kernel,
                                                  const sim::DeviceSpec& spec);

}  // namespace cudanp::analysis
