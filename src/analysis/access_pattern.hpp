// Static memory-access-pattern analysis for the heuristic tuner.
//
// Paper Sec. 6: "our experiments also reveal some key factors to find
// the optimal version for CUDA-NP. First, memory coalescing and
// intra-warp divergence can be used to determine the priority between
// intra-warp NP and inter-warp NP. Second, using 3 or 7 slave threads
// achieves close-to-optimal performance."
//
// This analysis inspects every global-memory access inside annotated
// loops and decomposes the index expression into a linear form
//     index = cm * master_id + ci * iterator + (rest)
// (best-effort; nullopt coefficients mean "not affine"). From the
// coefficients:
//   - cm == 1            -> the *baseline* access is coalesced across
//                           masters; intra-warp NP would break it;
//   - cm > warp width    -> the baseline is scattered; if ci == 1 the
//                           iterator is contiguous and intra-warp NP
//                           re-coalesces it (the SS/NN effect).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace cudanp::analysis {

/// Linear decomposition of an index expression.
struct LinearForm {
  /// Coefficient of `master_id` (nullopt when the term is non-affine).
  std::optional<std::int64_t> master_coeff;
  /// Coefficient of the enclosing parallel loop's iterator.
  std::optional<std::int64_t> iter_coeff;
  bool affine = true;  // false when unknown constructs appear
};

/// Decomposes `e` with respect to variables `master` and `iter`. Other
/// variables are treated as lane-invariant offsets (sound for the
/// coalescing question: they are uniform across the group after
/// broadcast).
[[nodiscard]] LinearForm decompose_linear(const ir::Expr& e,
                                          const std::string& master,
                                          const std::string& iter);

struct AccessPatternSummary {
  int global_accesses = 0;          // in annotated loops
  int coalesced_by_master = 0;      // cm == 1: intra would break these
  int recoalesced_by_iterator = 0;  // cm large/unknown, ci == 1
  /// Parallel loops guarded by master-dependent control flow (the LU
  /// `master_id < 16` shape): intra-warp NP removes that divergence.
  bool master_divergent_guard = false;
  /// Largest constant trip count among annotated loops (0 if none).
  std::int64_t max_const_trip = 0;
};

/// Analyzes the (un-transformed) kernel: `master_var` is the name that
/// plays the master id in the baseline ("threadIdx.x").
[[nodiscard]] AccessPatternSummary summarize_access_patterns(
    const ir::Kernel& kernel);

}  // namespace cudanp::analysis
