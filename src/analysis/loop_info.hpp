// Canonical-loop recognition for `#pragma np parallel for` loops.
//
// CUDA-NP distributes loop iterations over slave threads, which requires
// the loop to be in canonical form:
//     for (i = <init>; i < <bound>; i += <step>)    (step a positive const)
// with the iterator not otherwise modified in the body. This mirrors the
// OpenMP canonical-form requirement the paper's pragmas inherit.
#pragma once

#include <optional>
#include <string>

#include "ir/stmt.hpp"

namespace cudanp::analysis {

struct LoopInfo {
  std::string iterator;
  /// Cloneable expressions (owned by the loop; do not outlive it).
  const ir::Expr* init = nullptr;   // initial value of the iterator
  const ir::Expr* bound = nullptr;  // exclusive upper bound (i < bound)
  std::int64_t step = 1;
  /// Iterator is declared in the init clause (vs assigned).
  bool declares_iterator = false;
  /// Compile-time trip count when init/bound are integer constants
  /// (after #define substitution); nullopt for runtime bounds.
  std::optional<std::int64_t> const_trip_count;
};

/// Recognizes the canonical form; returns nullopt (with a reason in
/// `why_not` if non-null) otherwise.
[[nodiscard]] std::optional<LoopInfo> analyze_loop(const ir::ForStmt& loop,
                                                   std::string* why_not = nullptr);

}  // namespace cudanp::analysis
