// Use/def collection and live-in / live-out analysis for parallel sections.
//
// CUDA-NP needs to know, for each `#pragma np` loop (paper Secs. 3.1/3.2):
//   - live-in scalars: defined before the loop, used inside it -> must be
//     broadcast master -> slaves (unless group-uniform);
//   - live-out scalars: assigned inside, used after -> must be combined
//     back (reduction/scan/select);
//   - referenced local arrays -> must be re-homed (Sec. 3.3).
#pragma once

#include <set>
#include <string>
#include <unordered_map>

#include "ir/kernel.hpp"

namespace cudanp::analysis {

struct VarSets {
  std::set<std::string> uses;   // names read (incl. array bases)
  std::set<std::string> defs;   // names written (scalars & array bases)
  std::set<std::string> decls;  // names declared inside
};

/// Collects uses/defs/decls for one statement subtree. Builtin geometry
/// names (threadIdx.x, ...) are excluded.
[[nodiscard]] VarSets collect_vars(const ir::Stmt& s);

/// Symbol table mapping every name declared anywhere in the kernel
/// (including parameters) to its declared type.
[[nodiscard]] std::unordered_map<std::string, ir::Type> build_symbol_table(
    const ir::Kernel& k);

struct ParallelLoopLiveness {
  /// Register/local scalars live into the loop (used inside, not declared
  /// inside, not the iterator, not a parameter).
  std::set<std::string> live_in;
  /// Scalars assigned inside and used after the loop.
  std::set<std::string> live_out;
  /// Local-memory arrays referenced in the loop.
  std::set<std::string> local_arrays;
};

/// Analyzes liveness of `loop`, which must appear somewhere inside
/// `kernel`'s body; `after` contains every statement that can execute
/// after the loop (the caller, which knows the region structure, supplies
/// the conservative "rest of the kernel" set).
[[nodiscard]] ParallelLoopLiveness analyze_parallel_loop(
    const ir::Kernel& kernel, const ir::ForStmt& loop,
    const std::set<std::string>& used_after);

/// Names used by any statement at or after `from_index` in `body`,
/// recursing into nested statements. Helper for building `used_after`.
[[nodiscard]] std::set<std::string> uses_from(const ir::Block& body,
                                              std::size_t from_index);

}  // namespace cudanp::analysis
