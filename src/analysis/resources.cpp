#include "analysis/resources.hpp"

#include <algorithm>
#include <set>

namespace cudanp::analysis {

using namespace cudanp::ir;

namespace {

/// Depth of the widest expression tree in the kernel — a proxy for
/// temporary-register pressure.
int expr_depth(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kVarRef:
      return 1;
    case ExprKind::kArrayIndex: {
      const auto& ai = static_cast<const ArrayIndex&>(e);
      int d = 1;
      for (const auto& i : ai.indices) d = std::max(d, expr_depth(*i));
      return d + 1;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return 1 + std::max(expr_depth(*b.lhs), expr_depth(*b.rhs));
    }
    case ExprKind::kUnary:
      return 1 + expr_depth(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      int d = 1;
      for (const auto& a : c.args) d = std::max(d, expr_depth(*a));
      return d + 1;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return 1 + std::max({expr_depth(*t.cond), expr_depth(*t.then_value),
                           expr_depth(*t.else_value)});
    }
    case ExprKind::kCast:
      return 1 + expr_depth(*static_cast<const CastExpr&>(e).operand);
  }
  return 1;
}

}  // namespace

ResourceEstimate estimate_resources(const Kernel& kernel,
                                    const sim::DeviceSpec& spec) {
  ResourceEstimate out;

  // ABI base: kernel arguments and special registers.
  const int kBaseRegisters = 10;
  int scalar_regs = 0;
  int reg_array_elems = 0;
  int max_depth = 1;
  std::set<std::string> counted;

  for_each_stmt(*kernel.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(s);
      if (counted.count(d.name)) return;
      counted.insert(d.name);
      switch (d.type.space) {
        case AddrSpace::kShared:
          out.usage.shared_mem_per_block += d.type.size_bytes();
          break;
        case AddrSpace::kLocal:
          out.declared_local_bytes += d.type.size_bytes();
          break;
        case AddrSpace::kRegister:
          if (d.type.is_array())
            reg_array_elems += static_cast<int>(d.type.element_count());
          else
            ++scalar_regs;
          break;
        case AddrSpace::kConstant:
        case AddrSpace::kGlobal:
          break;
      }
    }
  });
  for_each_expr_in(*kernel.body, [&](const Expr& e) {
    max_depth = std::max(max_depth, expr_depth(e));
  });

  out.estimated_registers_raw = kBaseRegisters +
                                static_cast<int>(kernel.params.size()) +
                                scalar_regs + reg_array_elems + max_depth;
  int limit = spec.max_registers_per_thread;
  out.usage.registers_per_thread =
      std::min(out.estimated_registers_raw, limit);
  if (out.estimated_registers_raw > limit)
    out.register_spill_bytes =
        static_cast<std::int64_t>(out.estimated_registers_raw - limit) * 4;

  out.usage.local_mem_per_thread =
      out.declared_local_bytes + out.register_spill_bytes;
  return out;
}

}  // namespace cudanp::analysis
