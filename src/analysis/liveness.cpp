#include "analysis/liveness.hpp"

#include "analysis/loop_info.hpp"

namespace cudanp::analysis {

using namespace cudanp::ir;

namespace {

void collect_expr_uses(const Expr& e, std::set<std::string>& uses) {
  for_each_expr(e, [&](const Expr& sub) {
    if (sub.kind() == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRef&>(sub);
      if (!is_builtin_geometry(v.name)) uses.insert(v.name);
    }
  });
}

void collect_into(const Stmt& s, VarSets& out) {
  switch (s.kind()) {
    case StmtKind::kBlock:
      for (const auto& c : static_cast<const Block&>(s).stmts)
        collect_into(*c, out);
      return;
    case StmtKind::kDecl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      out.decls.insert(d.name);
      out.defs.insert(d.name);
      if (d.init) collect_expr_uses(*d.init, out.uses);
      for (const auto& e : d.init_list) collect_expr_uses(*e, out.uses);
      return;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      collect_expr_uses(*a.rhs, out.uses);
      if (a.lhs->kind() == ExprKind::kVarRef) {
        const auto& v = static_cast<const VarRef&>(*a.lhs);
        out.defs.insert(v.name);
        // Compound assignment also reads the target.
        if (a.op != AssignOp::kAssign) out.uses.insert(v.name);
      } else if (a.lhs->kind() == ExprKind::kArrayIndex) {
        const auto& ai = static_cast<const ArrayIndex&>(*a.lhs);
        if (ai.base->kind() == ExprKind::kVarRef)
          out.defs.insert(static_cast<const VarRef&>(*ai.base).name);
        for (const auto& i : ai.indices) collect_expr_uses(*i, out.uses);
        if (a.op != AssignOp::kAssign) collect_expr_uses(*a.lhs, out.uses);
      }
      return;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(s);
      collect_expr_uses(*i.cond, out.uses);
      collect_into(*i.then_body, out);
      if (i.else_body) collect_into(*i.else_body, out);
      return;
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(s);
      if (f.init) collect_into(*f.init, out);
      if (f.cond) collect_expr_uses(*f.cond, out.uses);
      if (f.inc) collect_into(*f.inc, out);
      collect_into(*f.body, out);
      return;
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(s);
      collect_expr_uses(*w.cond, out.uses);
      collect_into(*w.body, out);
      return;
    }
    case StmtKind::kExpr:
      collect_expr_uses(*static_cast<const ExprStmt&>(s).expr, out.uses);
      return;
    case StmtKind::kReturn:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return;
  }
}

}  // namespace

VarSets collect_vars(const Stmt& s) {
  VarSets out;
  collect_into(s, out);
  return out;
}

std::unordered_map<std::string, Type> build_symbol_table(const Kernel& k) {
  std::unordered_map<std::string, Type> table;
  for (const auto& p : k.params) table[p.name] = p.type;
  for_each_stmt(*k.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(s);
      table[d.name] = d.type;
    }
  });
  return table;
}

std::set<std::string> uses_from(const Block& body, std::size_t from_index) {
  std::set<std::string> uses;
  for (std::size_t i = from_index; i < body.stmts.size(); ++i) {
    VarSets s = collect_vars(*body.stmts[i]);
    uses.insert(s.uses.begin(), s.uses.end());
  }
  return uses;
}

ParallelLoopLiveness analyze_parallel_loop(
    const Kernel& kernel, const ForStmt& loop,
    const std::set<std::string>& used_after) {
  ParallelLoopLiveness out;
  auto symbols = build_symbol_table(kernel);
  VarSets body = collect_vars(*loop.body);
  if (loop.cond) collect_expr_uses(*loop.cond, body.uses);
  std::string iterator;
  if (auto info = analyze_loop(loop)) iterator = info->iterator;

  for (const auto& name : body.uses) {
    if (name == iterator || body.decls.count(name)) continue;
    auto it = symbols.find(name);
    if (it == symbols.end()) continue;  // unknown: let transformer diagnose
    const Type& t = it->second;
    if (kernel.find_param(name))
      continue;  // parameters are uniform across all threads
    if (t.is_pointer || t.space == AddrSpace::kShared ||
        t.space == AddrSpace::kConstant)
      continue;  // already visible to all threads (Sec. 3.1)
    if (t.is_array() && t.space == AddrSpace::kLocal) {
      out.local_arrays.insert(name);
      continue;
    }
    if (t.is_scalar()) out.live_in.insert(name);
  }

  for (const auto& name : body.defs) {
    if (name == iterator || body.decls.count(name)) continue;
    auto it = symbols.find(name);
    if (it == symbols.end()) continue;
    const Type& t = it->second;
    if (t.is_array() && t.space == AddrSpace::kLocal)
      out.local_arrays.insert(name);
    if (!t.is_scalar() || t.space != AddrSpace::kRegister) continue;
    if (used_after.count(name)) out.live_out.insert(name);
  }
  return out;
}

}  // namespace cudanp::analysis
