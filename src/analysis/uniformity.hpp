// Group-uniformity ("uniform vector") analysis, paper Sec. 3.1.
//
// After the master/slave remap, every thread in a master group shares:
// literals, kernel parameters, blockIdx/blockDim/gridDim, and master_id.
// A sequential-section statement whose result depends only on such values
// (through pure arithmetic — no memory reads) can be executed redundantly
// by all slave threads instead of being computed by the master and
// broadcast; the paper reports this is usually cheaper than a broadcast
// because it removes shared-memory traffic and control flow.
//
// The analysis is flow-sensitive over a straight-line statement sequence:
// it maintains the set of variables currently holding group-uniform
// values and classifies each statement.
#pragma once

#include <set>
#include <string>
#include <unordered_map>

#include "ir/kernel.hpp"

namespace cudanp::analysis {

class UniformityTracker {
 public:
  /// `symbols` is the kernel symbol table; `uniform_seed` pre-seeds names
  /// that are group-uniform by construction (e.g. "master_id").
  UniformityTracker(std::unordered_map<std::string, ir::Type> symbols,
                    std::set<std::string> uniform_seed);

  /// True when `e` computes a group-uniform value *and* performs no memory
  /// access (redundant memory reads would multiply traffic, so the
  /// transformer keeps them in the master + broadcast path).
  [[nodiscard]] bool is_uniform_pure(const ir::Expr& e) const;

  /// Classifies a sequential statement: returns true when the statement
  /// can run redundantly in every thread of the group. Updates the
  /// tracked uniform set either way (a non-uniform def kills uniformity
  /// of its target).
  bool step(const ir::Stmt& s);

  /// Is this variable currently group-uniform?
  [[nodiscard]] bool is_uniform_var(const std::string& name) const {
    return uniform_.count(name) > 0;
  }

  void mark_uniform(const std::string& name) { uniform_.insert(name); }
  void mark_nonuniform(const std::string& name) { uniform_.erase(name); }

 private:
  std::unordered_map<std::string, ir::Type> symbols_;
  std::set<std::string> uniform_;
};

}  // namespace cudanp::analysis
