#include "transform/np_config.hpp"

#include <sstream>

namespace cudanp::transform {

const char* to_string(LocalPlacement p) {
  switch (p) {
    case LocalPlacement::kAuto: return "auto";
    case LocalPlacement::kGlobal: return "global";
    case LocalPlacement::kShared: return "shared";
    case LocalPlacement::kRegister: return "register";
    case LocalPlacement::kKeep: return "keep-local";
  }
  return "?";
}

std::string NpConfig::describe() const {
  std::ostringstream os;
  os << (intra_warp() ? "intra-warp" : "inter-warp") << " slave_size="
     << slave_size << " tb=" << master_count << "x" << slave_size
     << " placement=" << to_string(placement)
     << (shfl_available() ? " shfl" : " smem-comm");
  return os.str();
}

}  // namespace cudanp::transform
