// NpTransformer: the CUDA-NP compiler algorithm (paper Fig. 7).
//
// Given a kernel with `#pragma np parallel for` annotations and an
// NpConfig (inter/intra warp, slave_size, local-array placement), it
// produces a new kernel in which:
//   - the thread block grows a slave dimension (Sec. 3 / Fig. 3);
//   - sequential statements either run redundantly in all group threads
//     (group-uniform pure arithmetic, Sec. 3.1) or are guarded with
//     `if (slave_id == 0)`;
//   - scalar live-ins are broadcast master -> slaves via __shfl or shared
//     memory (Sec. 3.1);
//   - parallel loops are distributed cyclically over the group (Fig. 3b),
//     or in contiguous chunks for scan loops;
//   - reduction / scan / select live-outs are combined back (Sec. 3.2);
//   - live local arrays are re-homed to global memory, shared memory, or
//     per-slave register partitions (Sec. 3.3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/launch.hpp"
#include "support/diagnostics.hpp"
#include "transform/np_config.hpp"

namespace cudanp::transform {

struct TransformResult {
  std::unique_ptr<ir::Kernel> kernel;
  /// Block dimensions for launching the transformed kernel; the grid is
  /// unchanged from the baseline launch.
  sim::Dim3 block_dims;
  /// Buffers the host must allocate for globally re-homed local arrays.
  std::vector<ExtraBuffer> extra_buffers;
  NpConfig config;
  /// Human-readable log of decisions (placements, broadcasts, ...).
  std::vector<std::string> notes;
  /// Per-array placement actually chosen (after kAuto resolution).
  std::vector<std::pair<std::string, LocalPlacement>> placements;
};

/// Transforms `kernel` under `config`. Throws CompileError on invalid
/// configurations or unsupported kernel shapes; accumulates warnings in
/// `diags`.
[[nodiscard]] TransformResult apply_np_transform(const ir::Kernel& kernel,
                                                 const NpConfig& config,
                                                 cudanp::DiagnosticEngine& diags);

}  // namespace cudanp::transform
