#include "transform/preprocess.hpp"

#include <vector>

#include "ir/printer.hpp"
#include "transform/rewrite.hpp"

namespace cudanp::transform {

using namespace cudanp::ir;

int flatten_thread_dims(Kernel& kernel, sim::Dim3 block) {
  const int bx = block.x;
  const int by = block.y;
  const int flat = bx * by * block.z;
  rewrite_exprs(*kernel.body, [&](ExprPtr& e) {
    if (e->kind() != ExprKind::kVarRef) return;
    const std::string& n = static_cast<const VarRef&>(*e).name;
    // Fig. 8b: recover the original coordinates from the flat id.
    if (n == "threadIdx.x") {
      if (by * block.z > 1)
        e = make_bin(BinOp::kMod, make_var("threadIdx.x"), make_int(bx));
    } else if (n == "threadIdx.y") {
      e = make_bin(BinOp::kMod,
                   make_bin(BinOp::kDiv, make_var("threadIdx.x"),
                            make_int(bx)),
                   make_int(by));
    } else if (n == "threadIdx.z") {
      e = make_bin(BinOp::kDiv, make_var("threadIdx.x"),
                   make_int(bx * by));
    } else if (n == "blockDim.x") {
      e = make_int(bx);
    } else if (n == "blockDim.y") {
      e = make_int(by);
    } else if (n == "blockDim.z") {
      e = make_int(block.z);
    }
  });
  return flat;
}

namespace {

/// Skeleton of a statement: printed form with every integer literal
/// replaced by a placeholder; `literals` receives the original values in
/// visit order.
std::string skeleton_of(const Stmt& s, std::vector<std::int64_t>& literals) {
  StmtPtr clone = s.clone();
  rewrite_exprs(*clone, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kIntLit) {
      literals.push_back(static_cast<const IntLit&>(*e).value);
      e = make_var("__rr_lit");
    }
  });
  return print_stmt(*clone);
}

struct Run {
  std::size_t begin = 0;
  std::size_t count = 0;
  std::size_t literal_count = 0;
};

void reroll_block(Block& b, bool mark_parallel, int min_run,
                  RerollResult& result, int& table_counter) {
  // Recurse first.
  for (auto& s : b.stmts) {
    switch (s->kind()) {
      case StmtKind::kBlock:
        reroll_block(static_cast<Block&>(*s), mark_parallel, min_run, result,
                     table_counter);
        break;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(*s);
        reroll_block(*i.then_body, mark_parallel, min_run, result,
                     table_counter);
        if (i.else_body)
          reroll_block(*i.else_body, mark_parallel, min_run, result,
                       table_counter);
        break;
      }
      case StmtKind::kFor:
        reroll_block(*static_cast<ForStmt&>(*s).body, mark_parallel, min_run,
                     result, table_counter);
        break;
      case StmtKind::kWhile:
        reroll_block(*static_cast<WhileStmt&>(*s).body, mark_parallel,
                     min_run, result, table_counter);
        break;
      default:
        break;
    }
  }

  // Find maximal runs of same-skeleton assignment statements.
  std::vector<std::string> skeletons(b.stmts.size());
  std::vector<std::vector<std::int64_t>> lits(b.stmts.size());
  for (std::size_t i = 0; i < b.stmts.size(); ++i) {
    if (b.stmts[i]->kind() == StmtKind::kAssign)
      skeletons[i] = skeleton_of(*b.stmts[i], lits[i]);
  }

  std::vector<StmtPtr> rebuilt;
  std::size_t i = 0;
  while (i < b.stmts.size()) {
    std::size_t j = i;
    if (!skeletons[i].empty()) {
      while (j + 1 < b.stmts.size() && skeletons[j + 1] == skeletons[i] &&
             lits[j + 1].size() == lits[i].size())
        ++j;
    }
    std::size_t run = j - i + 1;
    if (skeletons[i].empty() || run < static_cast<std::size_t>(min_run)) {
      for (std::size_t k = i; k <= j; ++k)
        rebuilt.push_back(std::move(b.stmts[k]));
      i = j + 1;
      continue;
    }

    // Build per-literal tables; constant columns stay literal.
    const std::size_t m = lits[i].size();
    const std::size_t n = run;
    std::vector<bool> varying(m, false);
    for (std::size_t c = 0; c < m; ++c)
      for (std::size_t r = 1; r < n; ++r)
        if (lits[i + r][c] != lits[i][c]) varying[c] = true;

    std::vector<std::string> table_names(m);
    for (std::size_t c = 0; c < m; ++c) {
      if (!varying[c]) continue;
      std::string name = "__rr_tab" + std::to_string(table_counter++);
      table_names[c] = name;
      auto decl = std::make_unique<DeclStmt>(
          Type::array_of(ScalarType::kInt,
                         {static_cast<std::int64_t>(n)},
                         AddrSpace::kConstant),
          name);
      for (std::size_t r = 0; r < n; ++r)
        decl->init_list.push_back(make_int(lits[i + r][c]));
      rebuilt.push_back(std::move(decl));
    }

    // Loop body: first statement of the run with varying literals
    // replaced by table lookups.
    StmtPtr body_stmt = b.stmts[i]->clone();
    std::size_t col = 0;
    rewrite_exprs(*body_stmt, [&](ExprPtr& e) {
      if (e->kind() != ExprKind::kIntLit) return;
      std::size_t c = col++;
      if (c < m && varying[c])
        e = make_index1(table_names[c], make_var("__rr_u"));
    });

    auto body = make_block();
    body->push(std::move(body_stmt));
    auto loop = std::make_unique<ForStmt>(
        make_decl_int("__rr_u", make_int(0)),
        make_bin(BinOp::kLt, make_var("__rr_u"),
                 make_int(static_cast<std::int64_t>(n))),
        std::make_unique<AssignStmt>(make_var("__rr_u"), AssignOp::kAdd,
                                     make_int(1)),
        std::move(body));
    if (mark_parallel) {
      NpPragma pragma;
      pragma.parallel_for = true;
      loop->pragma = pragma;
    }
    rebuilt.push_back(std::move(loop));
    ++result.loops_created;
    result.statements_absorbed += static_cast<int>(n);
    i = j + 1;
  }
  b.stmts = std::move(rebuilt);
}

}  // namespace

RerollResult reroll_unrolled_statements(Kernel& kernel, bool mark_parallel,
                                        int min_run) {
  RerollResult result;
  int table_counter = 0;
  reroll_block(*kernel.body, mark_parallel, min_run, result, table_counter);
  return result;
}

}  // namespace cudanp::transform
