// Preprocessors (paper Sec. 3.7): transformations that normalize a kernel
// into the shape the NP transformer expects.
#pragma once

#include "ir/kernel.hpp"
#include "sim/launch.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::transform {

/// Sec. 3.7 item 1: converts a kernel written for a multi-dimensional
/// thread block into one-dimensional form using the Fig. 8 mapping:
///     flat = tz * (bx*by) + ty * bx + tx
/// Every threadIdx.x/y/z and blockDim.x/y/z is rewritten in terms of the
/// flat id; warps are unchanged (consecutive flat ids), so coalescing and
/// divergence are unaffected. Returns the flattened block size.
[[nodiscard]] int flatten_thread_dims(ir::Kernel& kernel, sim::Dim3 block);

struct RerollResult {
  int loops_created = 0;
  int statements_absorbed = 0;
};

/// Sec. 3.7 item 2: combines runs of >= `min_run` consecutive statements
/// that are identical up to integer literals into a loop, hoisting the
/// varying literals into constant index tables:
///
///     a[3] += b[0];              int __rr_tab0[3] = {3, 1, 4};
///     a[1] += b[1];      =>      for (int __rr_u = 0; __rr_u < 3; ...)
///     a[4] += b[2];                a[__rr_tab0[__rr_u]] += b[__rr_u];
///
/// When `mark_parallel` is set the created loop gets a
/// `#pragma np parallel for` so CUDA-NP can distribute it (the caller
/// must know the statements are independent).
RerollResult reroll_unrolled_statements(ir::Kernel& kernel,
                                        bool mark_parallel = false,
                                        int min_run = 3);

}  // namespace cudanp::transform
