// Code generators for master<->slave communication primitives.
//
// CUDA-NP expands read_from_master (broadcast), reduction, and scan into
// real kernel code — either __shfl-based (intra-warp, sm_30+) or
// shared-memory based (inter-warp, or older targets) — so that the cost
// of the communication itself is simulated, which is what Figs. 15/16
// measure.
//
// Shared-memory buffers are registered lazily: `take_shared_decls()`
// returns the declarations the transformer must prepend to the kernel,
// and `shared_bytes_added()` reports the extra shared-memory pressure
// (this is exactly the pressure that makes shfl win on MC/LU in Fig. 16).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "transform/np_config.hpp"

namespace cudanp::transform {

class CommCodegen {
 public:
  explicit CommCodegen(const NpConfig& cfg) : cfg_(cfg) {}

  /// var = value held by the group's master (slave_id == 0).
  void emit_broadcast(ir::Block& out, const std::string& var,
                      ir::ScalarType type);

  /// var = op-combine of all group threads' var; every thread receives
  /// the result.
  void emit_reduction(ir::Block& out, const std::string& var,
                      ir::ScalarType type, ir::ReduceOp op);

  /// out_var = op-combine of var over group threads with slave_id lower
  /// than this thread's (exclusive scan; identity for the master).
  /// `out_var` must already be declared.
  void emit_exclusive_scan(ir::Block& out, const std::string& var,
                           const std::string& out_var, ir::ScalarType type,
                           ir::ReduceOp op);

  /// var = value held by the group thread with slave_id == src, using the
  /// shared-memory path (for targets where __shfl is unavailable).
  void emit_reduction_buffer_broadcast(ir::Block& out, const std::string& var,
                                       ir::ScalarType type, int src);

  /// Declarations for the shared buffers used so far (prepend to kernel).
  [[nodiscard]] std::vector<ir::StmtPtr> take_shared_decls();
  [[nodiscard]] std::int64_t shared_bytes_added() const {
    return shared_bytes_;
  }

  /// a (op) b as an expression.
  [[nodiscard]] static ir::ExprPtr combine(ir::ReduceOp op, ir::ExprPtr a,
                                           ir::ExprPtr b,
                                           ir::ScalarType type);
  /// The identity literal of `op` for `type`.
  [[nodiscard]] static ir::ExprPtr identity_expr(ir::ReduceOp op,
                                                 ir::ScalarType type);

 private:
  [[nodiscard]] bool use_shfl() const { return cfg_.shfl_available(); }
  /// Lazily registers the [master] broadcast buffer for `type`; returns
  /// its name.
  std::string bcast_buffer(ir::ScalarType type);
  /// Lazily registers the [slave][master] combine buffer for `type`.
  std::string red_buffer(ir::ScalarType type);
  [[nodiscard]] static const char* suffix(ir::ScalarType t) {
    return t == ir::ScalarType::kFloat ? "_f" : "_i";
  }

  const NpConfig& cfg_;
  std::vector<ir::StmtPtr> shared_decls_;
  std::int64_t shared_bytes_ = 0;
  bool have_bcast_[2] = {false, false};  // [is_float]
  bool have_red_[2] = {false, false};
};

}  // namespace cudanp::transform
