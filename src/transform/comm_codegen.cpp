#include "transform/comm_codegen.hpp"

#include "support/diagnostics.hpp"

namespace cudanp::transform {

using namespace cudanp::ir;

namespace {

ExprPtr slave_id() { return make_var("slave_id"); }
ExprPtr master_id() { return make_var("master_id"); }

/// `buf[slave][master_id]`
ExprPtr red_at(const std::string& buf, ExprPtr slave) {
  std::vector<ExprPtr> idx;
  idx.push_back(std::move(slave));
  idx.push_back(master_id());
  return make_index(make_var(buf), std::move(idx));
}

StmtPtr sync() {
  return std::make_unique<ExprStmt>(make_call("__syncthreads", {}));
}

/// `if (slave_id == 0) { body }`
StmtPtr master_only(BlockPtr body) {
  return std::make_unique<IfStmt>(
      make_bin(BinOp::kEq, slave_id(), make_int(0)), std::move(body));
}

}  // namespace

ExprPtr CommCodegen::combine(ReduceOp op, ExprPtr a, ExprPtr b,
                             ScalarType type) {
  switch (op) {
    case ReduceOp::kAdd:
      return make_bin(BinOp::kAdd, std::move(a), std::move(b));
    case ReduceOp::kMul:
      return make_bin(BinOp::kMul, std::move(a), std::move(b));
    case ReduceOp::kMin: {
      std::vector<ExprPtr> args;
      args.push_back(std::move(a));
      args.push_back(std::move(b));
      return make_call(type == ScalarType::kFloat ? "fminf" : "min",
                       std::move(args));
    }
    case ReduceOp::kMax: {
      std::vector<ExprPtr> args;
      args.push_back(std::move(a));
      args.push_back(std::move(b));
      return make_call(type == ScalarType::kFloat ? "fmaxf" : "max",
                       std::move(args));
    }
  }
  throw cudanp::CompileError("unknown reduce op");
}

ExprPtr CommCodegen::identity_expr(ReduceOp op, ScalarType type) {
  double v = identity_of(op);
  if (type == ScalarType::kFloat) {
    // +/- infinity are not expressible as literals in the kernel
    // language; use extreme finite floats for min/max identities.
    if (op == ReduceOp::kMin) return make_float(3.4e38);
    if (op == ReduceOp::kMax) return make_float(-3.4e38);
    return make_float(v);
  }
  if (op == ReduceOp::kMin) return make_int(2147483647);
  if (op == ReduceOp::kMax) return make_int(-2147483648LL);
  return make_int(static_cast<std::int64_t>(v));
}

std::string CommCodegen::bcast_buffer(ScalarType type) {
  bool f = type == ScalarType::kFloat;
  std::string name = std::string("__np_bcast") + suffix(type);
  if (!have_bcast_[f]) {
    have_bcast_[f] = true;
    Type t = Type::array_of(type, {cfg_.master_count}, AddrSpace::kShared);
    shared_bytes_ += t.size_bytes();
    shared_decls_.push_back(std::make_unique<DeclStmt>(t, name));
  }
  return name;
}

std::string CommCodegen::red_buffer(ScalarType type) {
  bool f = type == ScalarType::kFloat;
  std::string name = std::string("__np_red") + suffix(type);
  if (!have_red_[f]) {
    have_red_[f] = true;
    Type t = Type::array_of(type, {cfg_.slave_size, cfg_.master_count},
                            AddrSpace::kShared);
    shared_bytes_ += t.size_bytes();
    shared_decls_.push_back(std::make_unique<DeclStmt>(t, name));
  }
  return name;
}

void CommCodegen::emit_broadcast(Block& out, const std::string& var,
                                 ScalarType type) {
  if (use_shfl()) {
    // var = __shfl(var, 0, slave_size): every lane of the group reads the
    // master's register (paper Sec. 3.1).
    std::vector<ExprPtr> args;
    args.push_back(make_var(var));
    args.push_back(make_int(0));
    args.push_back(make_int(cfg_.slave_size));
    out.push(make_assign(make_var(var), make_call("__shfl", std::move(args))));
    return;
  }
  // Shared-memory broadcast: master writes, everyone reads.
  std::string buf = bcast_buffer(type);
  auto wr = make_block();
  wr->push(make_assign(make_index1(buf, master_id()), make_var(var)));
  out.push(master_only(std::move(wr)));
  out.push(sync());
  out.push(make_assign(make_var(var), make_index1(buf, master_id())));
  out.push(sync());
}

void CommCodegen::emit_reduction(Block& out, const std::string& var,
                                 ScalarType type, ReduceOp op) {
  const int s = cfg_.slave_size;
  bool pow2 = (s & (s - 1)) == 0;
  if (use_shfl()) {
    // Butterfly with __shfl_xor: every lane ends with the group total.
    std::string tmp = std::string("__np_t") + suffix(type);
    auto body = make_block();
    {
      std::vector<ExprPtr> args;
      args.push_back(make_var(var));
      args.push_back(make_var("__np_off"));
      args.push_back(make_int(s));
      body->push(std::make_unique<DeclStmt>(
          Type::scalar_of(type), tmp, make_call("__shfl_xor", std::move(args))));
      body->push(make_assign(make_var(var),
                             combine(op, make_var(var), make_var(tmp), type)));
    }
    out.push(std::make_unique<ForStmt>(
        make_decl_int("__np_off", make_int(s / 2)),
        make_bin(BinOp::kGt, make_var("__np_off"), make_int(0)),
        make_assign(make_var("__np_off"),
                    make_bin(BinOp::kDiv, make_var("__np_off"), make_int(2))),
        std::move(body)));
    return;
  }

  std::string buf = red_buffer(type);
  out.push(make_assign(red_at(buf, slave_id()), make_var(var)));
  out.push(sync());
  if (pow2 && s > 1) {
    // Tree reduction over the slave dimension.
    auto inner = make_block();
    inner->push(make_assign(
        red_at(buf, slave_id()),
        combine(op, red_at(buf, slave_id()),
                red_at(buf, make_bin(BinOp::kAdd, slave_id(),
                                     make_var("__np_off"))),
                type)));
    auto guarded = std::make_unique<IfStmt>(
        make_bin(BinOp::kLt, slave_id(), make_var("__np_off")),
        std::move(inner));
    auto loop_body = make_block();
    loop_body->push(std::move(guarded));
    loop_body->push(sync());
    out.push(std::make_unique<ForStmt>(
        make_decl_int("__np_off", make_int(s / 2)),
        make_bin(BinOp::kGt, make_var("__np_off"), make_int(0)),
        make_assign(make_var("__np_off"),
                    make_bin(BinOp::kDiv, make_var("__np_off"), make_int(2))),
        std::move(loop_body)));
  } else {
    // General (non power-of-two) group size: master gathers linearly.
    auto gather = make_block();
    auto gather_body = make_block();
    gather_body->push(make_assign(
        make_var(var),
        combine(op, make_var(var), red_at(buf, make_var("__np_s")), type)));
    gather->push(std::make_unique<ForStmt>(
        make_decl_int("__np_s", make_int(1)),
        make_bin(BinOp::kLt, make_var("__np_s"), make_int(s)),
        make_assign(make_var("__np_s"),
                    make_bin(BinOp::kAdd, make_var("__np_s"), make_int(1))),
        std::move(gather_body)));
    gather->push(make_assign(red_at(buf, make_int(0)), make_var(var)));
    out.push(master_only(std::move(gather)));
    out.push(sync());
  }
  out.push(make_assign(make_var(var), red_at(buf, make_int(0))));
  out.push(sync());
}

void CommCodegen::emit_exclusive_scan(Block& out, const std::string& var,
                                      const std::string& out_var,
                                      ScalarType type, ReduceOp op) {
  const int s = cfg_.slave_size;
  if (use_shfl()) {
    // Hillis-Steele inclusive scan in registers, then shift by one.
    std::string incl = std::string("__np_incl") + suffix(type);
    std::string tmp = std::string("__np_t") + suffix(type);
    out.push(std::make_unique<DeclStmt>(Type::scalar_of(type), incl,
                                        make_var(var)));
    auto body = make_block();
    {
      std::vector<ExprPtr> args;
      args.push_back(make_var(incl));
      args.push_back(make_var("__np_d"));
      args.push_back(make_int(s));
      body->push(std::make_unique<DeclStmt>(
          Type::scalar_of(type), tmp,
          make_call("__shfl_up", std::move(args))));
      auto upd = make_block();
      upd->push(make_assign(make_var(incl),
                            combine(op, make_var(incl), make_var(tmp), type)));
      body->push(std::make_unique<IfStmt>(
          make_bin(BinOp::kGe, slave_id(), make_var("__np_d")),
          std::move(upd)));
    }
    out.push(std::make_unique<ForStmt>(
        make_decl_int("__np_d", make_int(1)),
        make_bin(BinOp::kLt, make_var("__np_d"), make_int(s)),
        make_assign(make_var("__np_d"),
                    make_bin(BinOp::kMul, make_var("__np_d"), make_int(2))),
        std::move(body)));
    {
      std::vector<ExprPtr> args;
      args.push_back(make_var(incl));
      args.push_back(make_int(1));
      args.push_back(make_int(s));
      out.push(make_assign(make_var(out_var),
                           make_call("__shfl_up", std::move(args))));
    }
    auto fix = make_block();
    fix->push(make_assign(make_var(out_var), identity_expr(op, type)));
    out.push(master_only(std::move(fix)));
    return;
  }

  // Shared-memory exclusive scan: each thread combines the partials of
  // lower slave ids (S <= 32, so the linear gather is cheap).
  std::string buf = red_buffer(type);
  out.push(make_assign(red_at(buf, slave_id()), make_var(var)));
  out.push(sync());
  out.push(make_assign(make_var(out_var), identity_expr(op, type)));
  auto body = make_block();
  body->push(make_assign(
      make_var(out_var),
      combine(op, make_var(out_var), red_at(buf, make_var("__np_s")), type)));
  out.push(std::make_unique<ForStmt>(
      make_decl_int("__np_s", make_int(0)),
      make_bin(BinOp::kLt, make_var("__np_s"), slave_id()),
      make_assign(make_var("__np_s"),
                  make_bin(BinOp::kAdd, make_var("__np_s"), make_int(1))),
      std::move(body)));
  out.push(sync());
}

void CommCodegen::emit_reduction_buffer_broadcast(Block& out,
                                                  const std::string& var,
                                                  ScalarType type, int src) {
  std::string buf = bcast_buffer(type);
  auto wr = make_block();
  wr->push(make_assign(make_index1(buf, master_id()), make_var(var)));
  out.push(std::make_unique<IfStmt>(
      make_bin(BinOp::kEq, slave_id(), make_int(src)), std::move(wr)));
  out.push(sync());
  out.push(make_assign(make_var(var), make_index1(buf, master_id())));
  out.push(sync());
}

std::vector<StmtPtr> CommCodegen::take_shared_decls() {
  return std::move(shared_decls_);
}

}  // namespace cudanp::transform
