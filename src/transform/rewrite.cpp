#include "transform/rewrite.hpp"

namespace cudanp::transform {

using namespace cudanp::ir;

void rewrite_exprs(ExprPtr& e, const std::function<void(ExprPtr&)>& fn) {
  switch (e->kind()) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kVarRef:
      break;
    case ExprKind::kArrayIndex: {
      auto& ai = static_cast<ArrayIndex&>(*e);
      rewrite_exprs(ai.base, fn);
      for (auto& i : ai.indices) rewrite_exprs(i, fn);
      break;
    }
    case ExprKind::kBinary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      rewrite_exprs(b.lhs, fn);
      rewrite_exprs(b.rhs, fn);
      break;
    }
    case ExprKind::kUnary:
      rewrite_exprs(static_cast<UnaryExpr&>(*e).operand, fn);
      break;
    case ExprKind::kCall:
      for (auto& a : static_cast<CallExpr&>(*e).args) rewrite_exprs(a, fn);
      break;
    case ExprKind::kTernary: {
      auto& t = static_cast<TernaryExpr&>(*e);
      rewrite_exprs(t.cond, fn);
      rewrite_exprs(t.then_value, fn);
      rewrite_exprs(t.else_value, fn);
      break;
    }
    case ExprKind::kCast:
      rewrite_exprs(static_cast<CastExpr&>(*e).operand, fn);
      break;
  }
  fn(e);
}

void rewrite_exprs(Stmt& s, const std::function<void(ExprPtr&)>& fn) {
  switch (s.kind()) {
    case StmtKind::kBlock:
      for (auto& c : static_cast<Block&>(s).stmts) rewrite_exprs(*c, fn);
      return;
    case StmtKind::kDecl: {
      auto& d = static_cast<DeclStmt&>(s);
      if (d.init) rewrite_exprs(d.init, fn);
      return;
    }
    case StmtKind::kAssign: {
      auto& a = static_cast<AssignStmt&>(s);
      rewrite_exprs(a.lhs, fn);
      rewrite_exprs(a.rhs, fn);
      return;
    }
    case StmtKind::kIf: {
      auto& i = static_cast<IfStmt&>(s);
      rewrite_exprs(i.cond, fn);
      rewrite_exprs(*i.then_body, fn);
      if (i.else_body) rewrite_exprs(*i.else_body, fn);
      return;
    }
    case StmtKind::kFor: {
      auto& f = static_cast<ForStmt&>(s);
      if (f.init) rewrite_exprs(*f.init, fn);
      if (f.cond) rewrite_exprs(f.cond, fn);
      if (f.inc) rewrite_exprs(*f.inc, fn);
      rewrite_exprs(*f.body, fn);
      return;
    }
    case StmtKind::kWhile: {
      auto& w = static_cast<WhileStmt&>(s);
      rewrite_exprs(w.cond, fn);
      rewrite_exprs(*w.body, fn);
      return;
    }
    case StmtKind::kExpr:
      rewrite_exprs(static_cast<ExprStmt&>(s).expr, fn);
      return;
    case StmtKind::kReturn:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return;
  }
}

void replace_var(Stmt& s, const std::string& name,
                 const std::function<ExprPtr()>& make) {
  rewrite_exprs(s, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kVarRef &&
        static_cast<const VarRef&>(*e).name == name)
      e = make();
  });
}

void rename_var(Stmt& s, const std::string& from, const std::string& to) {
  rewrite_exprs(s, [&](ExprPtr& e) {
    if (e->kind() == ExprKind::kVarRef) {
      auto& v = static_cast<VarRef&>(*e);
      if (v.name == from) v.name = to;
    }
  });
}

}  // namespace cudanp::transform
