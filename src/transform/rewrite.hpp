// In-place AST rewriting utilities shared by the transformation passes.
#pragma once

#include <functional>
#include <string>

#include "ir/stmt.hpp"

namespace cudanp::transform {

/// Applies `fn` to every expression slot in `e`'s subtree, children first,
/// then `e` itself. `fn` may replace the pointed-to expression.
void rewrite_exprs(ir::ExprPtr& e,
                   const std::function<void(ir::ExprPtr&)>& fn);

/// Applies `fn` to every expression slot anywhere under statement `s`.
void rewrite_exprs(ir::Stmt& s, const std::function<void(ir::ExprPtr&)>& fn);

/// Replaces every `VarRef` named `name` with a fresh expression from
/// `make` (cloned per occurrence).
void replace_var(ir::Stmt& s, const std::string& name,
                 const std::function<ir::ExprPtr()>& make);

/// Renames every `VarRef` named `from` to `to`.
void rename_var(ir::Stmt& s, const std::string& from, const std::string& to);

}  // namespace cudanp::transform
