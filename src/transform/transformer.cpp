#include "transform/transformer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/liveness.hpp"
#include "analysis/loop_info.hpp"
#include "analysis/uniformity.hpp"
#include "ir/printer.hpp"
#include "transform/comm_codegen.hpp"
#include "transform/rewrite.hpp"

namespace cudanp::transform {

using namespace cudanp::ir;
using analysis::UniformityTracker;

namespace {

constexpr int kMaxThreadsPerBlock = 1024;
constexpr int kMaxSlaveSize = 32;
/// Paper Sec. 3.3: shared-memory replacement threshold for local arrays.
constexpr std::int64_t kSharedPlacementThresholdBytes = 384;
constexpr std::int64_t kSharedMemPerSmx = 48 * 1024;

[[nodiscard]] ExprPtr slave_id() { return make_var("slave_id"); }

[[nodiscard]] StmtPtr master_guard(std::vector<StmtPtr> stmts) {
  auto body = make_block();
  body->stmts = std::move(stmts);
  return std::make_unique<IfStmt>(
      make_bin(BinOp::kEq, slave_id(), make_int(0)), std::move(body));
}

[[nodiscard]] bool subtree_contains(const Stmt& s,
                                    const std::function<bool(const Stmt&)>& p) {
  bool found = false;
  for_each_stmt(s, [&](const Stmt& c) { found = found || p(c); });
  return found;
}

[[nodiscard]] bool contains_parallel_loop(const Stmt& s) {
  return subtree_contains(s, [](const Stmt& c) {
    return c.kind() == StmtKind::kFor &&
           static_cast<const ForStmt&>(c).pragma.has_value();
  });
}

[[nodiscard]] bool contains_return(const Stmt& s) {
  return subtree_contains(
      s, [](const Stmt& c) { return c.kind() == StmtKind::kReturn; });
}

void collect_expr_var_uses(const Expr& e, std::set<std::string>& out) {
  for_each_expr(e, [&](const Expr& sub) {
    if (sub.kind() == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRef&>(sub);
      if (!is_builtin_geometry(v.name)) out.insert(v.name);
    }
  });
}

/// Per-local-array placement bookkeeping (paper Sec. 3.3).
struct ArrayInfo {
  DeclStmt* decl = nullptr;
  std::int64_t elems = 0;
  ScalarType scalar = ScalarType::kFloat;
  bool partitionable = true;
  bool accessed = false;
  std::int64_t trip = -1;  // common const trip count of accessing loops
  LocalPlacement resolved = LocalPlacement::kAuto;
};

class Transformer {
 public:
  Transformer(const Kernel& kernel, const NpConfig& config,
              cudanp::DiagnosticEngine& diags)
      : orig_(kernel), cfg_(config), diags_(diags), comm_(cfg_) {}

  TransformResult run() {
    validate();
    result_.config = cfg_;
    np_ = orig_.clone();
    np_->name += cfg_.name_suffix;

    rewrite_geometry();
    chunk_mode_ = kernel_has_scan();
    decide_placements();
    apply_nonregister_placements();

    symbols_ = analysis::build_symbol_table(*np_);
    std::set<std::string> seed = {"master_id"};
    tracker_ =
        std::make_unique<UniformityTracker>(symbols_, std::move(seed));
    // Scalar parameters are uniform across the whole grid.
    for (const auto& p : np_->params)
      if (!p.type.is_pointer) tracker_->mark_uniform(p.name);

    auto out = make_block();
    transform_region(*np_->body, *out, {});
    flush_guard(*out);

    // Assemble: prologue + comm shared buffers + transformed body.
    auto body = make_block();
    bool inter = !cfg_.intra_warp();
    body->push(std::make_unique<DeclStmt>(
        Type::scalar_of(ScalarType::kInt), "master_id",
        make_var(inter ? "threadIdx.x" : "threadIdx.y")));
    body->push(std::make_unique<DeclStmt>(
        Type::scalar_of(ScalarType::kInt), "slave_id",
        make_var(inter ? "threadIdx.y" : "threadIdx.x")));
    for (auto& d : comm_.take_shared_decls()) body->push(std::move(d));
    for (auto& s : out->stmts) body->push(std::move(s));
    np_->body = std::move(body);

    result_.kernel = std::move(np_);
    result_.block_dims = inter
                             ? sim::Dim3{cfg_.master_count, cfg_.slave_size, 1}
                             : sim::Dim3{cfg_.slave_size, cfg_.master_count, 1};
    return std::move(result_);
  }

 private:
  // ------------------------------------------------ validation & setup
  void validate() {
    if (cfg_.master_count <= 0)
      throw cudanp::CompileError("NpConfig.master_count must be set to the "
                                 "baseline thread-block size");
    if (cfg_.slave_size < 2)
      throw cudanp::CompileError("slave_size must be >= 2");
    if (cfg_.slave_size > kMaxSlaveSize)
      throw cudanp::CompileError("slave_size must be <= 32");
    if (cfg_.block_threads() > kMaxThreadsPerBlock)
      throw cudanp::CompileError(
          "transformed block would have " +
          std::to_string(cfg_.block_threads()) + " threads (max " +
          std::to_string(kMaxThreadsPerBlock) + ")");
    if (cfg_.intra_warp() &&
        (cfg_.slave_size & (cfg_.slave_size - 1)) != 0)
      throw cudanp::CompileError(
          "intra-warp NP requires a power-of-two slave_size so groups do "
          "not straddle warps (paper Sec. 3.4)");
    if (orig_.parallel_loop_count() == 0)
      throw cudanp::CompileError("kernel '" + orig_.name +
                                 "' has no #pragma np parallel loops");
    // Reserved names.
    auto symbols = analysis::build_symbol_table(orig_);
    for (const auto& [name, type] : symbols) {
      (void)type;
      if (name == "master_id" || name == "slave_id" ||
          name.rfind("__np_", 0) == 0)
        throw cudanp::CompileError("kernel uses reserved identifier '" +
                                   name + "'");
    }
  }

  /// threadIdx.x -> master_id; blockDim.x -> master_count literal. The
  /// preprocessor guarantees 1-D input blocks, so .y/.z must be absent.
  void rewrite_geometry() {
    bool bad_dim = false;
    rewrite_exprs(*np_->body, [&](ExprPtr& e) {
      if (e->kind() != ExprKind::kVarRef) return;
      const std::string& n = static_cast<const VarRef&>(*e).name;
      if (n == "threadIdx.x")
        e = make_var("master_id");
      else if (n == "blockDim.x")
        e = make_int(cfg_.master_count);
      else if (n == "threadIdx.y" || n == "threadIdx.z" ||
               n == "blockDim.y" || n == "blockDim.z")
        bad_dim = true;
    });
    if (bad_dim)
      throw cudanp::CompileError(
          "kernel uses multi-dimensional thread ids; run the "
          "flatten_thread_dims preprocessor first (paper Sec. 3.7)");
  }

  [[nodiscard]] bool kernel_has_scan() const {
    bool scan = false;
    for_each_stmt(*np_->body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::kFor) {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.pragma && !f.pragma->scans.empty()) scan = true;
      }
    });
    return scan;
  }

  // ------------------------------------------------ local-array placement
  void decide_placements() {
    // Find local-array declarations.
    for_each_stmt_mut(*np_->body, [&](Stmt& s) {
      if (s.kind() != StmtKind::kDecl) return;
      auto& d = static_cast<DeclStmt&>(s);
      if (d.type.is_array() && d.type.space == AddrSpace::kLocal) {
        ArrayInfo info;
        info.decl = &d;
        info.elems = d.type.element_count();
        info.scalar = d.type.scalar;
        arrays_[d.name] = info;
      }
    });
    if (arrays_.empty()) return;

    // Classify accesses: an array is register-partitionable iff every
    // access is `arr[iter]` inside a canonical `#pragma np` loop starting
    // at 0 with step 1 and a compile-time trip count (paper Sec. 3.3,
    // option 3's "no interleaving" condition).
    classify_accesses(*np_->body, /*iter=*/"", /*trip=*/-1);

    std::int64_t existing_smem = 0;
    for_each_stmt(*np_->body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::kDecl) {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.type.space == AddrSpace::kShared)
          existing_smem += d.type.size_bytes();
      }
    });

    // Shared-memory budget: whatever one SMX has left after the kernel's
    // own shared arrays. Arrays are re-homed in declaration order until
    // the budget runs out; later arrays fall back (to global under
    // kAuto, to staying in local memory under a forced kShared — the
    // paper's LIB keeps one of its arrays in local memory for exactly
    // this reason, Table 1's OPT LM = 640 B).
    std::int64_t smem_left = kSharedMemPerSmx - existing_smem;
    for (auto& [name, info] : arrays_) {
      std::int64_t bytes =
          info.elems * Type::scalar_size_bytes(info.scalar);
      std::int64_t smem_need = bytes * cfg_.master_count;
      LocalPlacement p = cfg_.placement;
      if (p == LocalPlacement::kAuto) {
        std::int64_t per_thread_budget = kSharedPlacementThresholdBytes -
                                         existing_smem / cfg_.master_count;
        if (info.partitionable && info.trip > 0)
          p = LocalPlacement::kRegister;
        else if (bytes <= per_thread_budget && smem_need <= smem_left)
          p = LocalPlacement::kShared;
        else
          p = LocalPlacement::kGlobal;
      }
      if (p == LocalPlacement::kRegister &&
          (!info.partitionable || info.trip <= 0))
        throw cudanp::CompileError(
            "local array '" + name +
            "' cannot be register-partitioned (accesses are not "
            "iterator-indexed inside canonical parallel loops)");
      if (p == LocalPlacement::kShared) {
        if (smem_need <= smem_left) {
          smem_left -= smem_need;
        } else if (info.partitionable) {
          // Keeping it per-thread is safe only when every access is
          // slave-private (the partitionable condition).
          p = LocalPlacement::kKeep;
        } else {
          p = LocalPlacement::kGlobal;
        }
      }
      info.resolved = p;
      result_.placements.emplace_back(name, p);
      result_.notes.push_back("local array '" + name + "' (" +
                              std::to_string(bytes) + " B) -> " +
                              to_string(p));
    }
  }

  void classify_accesses(const Stmt& s, const std::string& iter,
                         std::int64_t trip) {
    switch (s.kind()) {
      case StmtKind::kBlock:
        for (const auto& c : static_cast<const Block&>(s).stmts)
          classify_accesses(*c, iter, trip);
        return;
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        std::string inner_iter = iter;
        std::int64_t inner_trip = trip;
        if (f.pragma) {
          auto info = analysis::analyze_loop(f);
          if (info && info->const_trip_count &&
              info->init->kind() == ExprKind::kIntLit &&
              static_cast<const IntLit&>(*info->init).value == 0 &&
              info->step == 1) {
            inner_iter = info->iterator;
            inner_trip = *info->const_trip_count;
          } else {
            inner_iter = "";
            inner_trip = -1;
          }
        }
        if (f.init) check_exprs_in_stmt(*f.init, iter, trip);
        if (f.cond) check_expr(*f.cond, iter, trip);
        if (f.inc) check_exprs_in_stmt(*f.inc, iter, trip);
        classify_accesses(*f.body, inner_iter, inner_trip);
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        check_expr(*i.cond, iter, trip);
        classify_accesses(*i.then_body, iter, trip);
        if (i.else_body) classify_accesses(*i.else_body, iter, trip);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        check_expr(*w.cond, iter, trip);
        classify_accesses(*w.body, iter, trip);
        return;
      }
      default:
        check_exprs_in_stmt(s, iter, trip);
        return;
    }
  }

  void check_exprs_in_stmt(const Stmt& s, const std::string& iter,
                           std::int64_t trip) {
    if (s.kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(s);
      if (d.init) check_expr(*d.init, iter, trip);
    } else if (s.kind() == StmtKind::kAssign) {
      const auto& a = static_cast<const AssignStmt&>(s);
      check_expr(*a.lhs, iter, trip);
      check_expr(*a.rhs, iter, trip);
    } else if (s.kind() == StmtKind::kExpr) {
      check_expr(*static_cast<const ExprStmt&>(s).expr, iter, trip);
    }
  }

  void check_expr(const Expr& e, const std::string& iter, std::int64_t trip) {
    for_each_expr(e, [&](const Expr& sub) {
      if (sub.kind() != ExprKind::kArrayIndex) return;
      const auto& ai = static_cast<const ArrayIndex&>(sub);
      if (ai.base->kind() != ExprKind::kVarRef) return;
      const std::string& name = static_cast<const VarRef&>(*ai.base).name;
      auto it = arrays_.find(name);
      if (it == arrays_.end()) return;
      ArrayInfo& info = it->second;
      info.accessed = true;
      bool ok = !iter.empty() && ai.indices.size() == 1 &&
                ai.indices[0]->kind() == ExprKind::kVarRef &&
                static_cast<const VarRef&>(*ai.indices[0]).name == iter;
      if (!ok) {
        info.partitionable = false;
        return;
      }
      if (info.trip < 0)
        info.trip = trip;
      else if (info.trip != trip)
        info.partitionable = false;  // inconsistent element->slave mapping
    });
  }

  void apply_nonregister_placements() {
    for (auto& [name, info] : arrays_) {
      switch (info.resolved) {
        case LocalPlacement::kShared: {
          info.decl->type = Type::array_of(
              info.scalar, {info.elems, cfg_.master_count},
              AddrSpace::kShared);
          const std::string n = name;
          rewrite_exprs(*np_->body, [&](ExprPtr& e) {
            if (e->kind() != ExprKind::kArrayIndex) return;
            auto& ai = static_cast<ArrayIndex&>(*e);
            if (ai.base->kind() != ExprKind::kVarRef ||
                static_cast<const VarRef&>(*ai.base).name != n)
              return;
            if (ai.indices.size() == 1)
              ai.indices.push_back(make_var("master_id"));
          });
          break;
        }
        case LocalPlacement::kGlobal: {
          // Remove the declaration, append a pointer parameter, and
          // rewrite accesses to the interleaved-by-master layout of the
          // paper's Fig. 6a: elem e of master m in block b lives at
          // ((b * N) + e) * M + m.
          std::string pname = "__np_" + name + "_g";
          np_->params.push_back({Type::pointer_to(info.scalar), pname});
          result_.extra_buffers.push_back(
              {pname, info.scalar, info.elems * cfg_.master_count});
          const std::string n = name;
          const std::int64_t elems = info.elems;
          // Drop the decl: replace with an empty block.
          replace_decl_with_empty(n);
          rewrite_exprs(*np_->body, [&](ExprPtr& e) {
            if (e->kind() != ExprKind::kArrayIndex) return;
            auto& ai = static_cast<ArrayIndex&>(*e);
            if (ai.base->kind() != ExprKind::kVarRef ||
                static_cast<const VarRef&>(*ai.base).name != n)
              return;
            if (ai.indices.size() != 1) return;
            ExprPtr idx = std::move(ai.indices[0]);
            ExprPtr flat = make_bin(
                BinOp::kAdd,
                make_bin(BinOp::kMul,
                         make_bin(BinOp::kAdd,
                                  make_bin(BinOp::kMul,
                                           make_var("blockIdx.x"),
                                           make_int(elems)),
                                  std::move(idx)),
                         make_int(cfg_.master_count)),
                make_var("master_id"));
            std::vector<ExprPtr> iv;
            iv.push_back(std::move(flat));
            e = make_index(make_var(pname), std::move(iv));
          });
          break;
        }
        case LocalPlacement::kRegister: {
          std::int64_t per_slave =
              (info.trip + cfg_.slave_size - 1) / cfg_.slave_size;
          info.decl->type = Type::array_of(info.scalar, {per_slave},
                                           AddrSpace::kRegister);
          register_arrays_.insert(name);
          break;  // access rewriting happens at loop emission
        }
        case LocalPlacement::kKeep:
          break;  // stays a per-thread local-memory array
        case LocalPlacement::kAuto:
          break;  // unreachable: kAuto is resolved in decide_placements
      }
    }
  }

  void replace_decl_with_empty(const std::string& name) {
    for_each_stmt_mut(*np_->body, [&](Stmt& s) {
      if (s.kind() != StmtKind::kBlock) return;
      auto& b = static_cast<Block&>(s);
      for (auto& st : b.stmts) {
        if (st->kind() == StmtKind::kDecl &&
            static_cast<const DeclStmt&>(*st).name == name)
          st = make_block();
      }
    });
  }

  // ------------------------------------------------ region transformation
  void flush_guard(Block& out) {
    if (guard_.empty()) return;
    out.push(master_guard(std::move(guard_)));
    guard_.clear();
  }

  void transform_region(const Block& in, Block& out,
                        const std::set<std::string>& used_after) {
    // Suffix use-sets for live-out analysis.
    std::vector<std::set<std::string>> suffix(in.stmts.size() + 1);
    suffix[in.stmts.size()] = used_after;
    for (std::size_t k = in.stmts.size(); k-- > 0;) {
      suffix[k] = suffix[k + 1];
      analysis::VarSets vs = analysis::collect_vars(*in.stmts[k]);
      suffix[k].insert(vs.uses.begin(), vs.uses.end());
    }

    for (std::size_t k = 0; k < in.stmts.size(); ++k) {
      const Stmt& s = *in.stmts[k];
      const std::set<std::string>& after = suffix[k + 1];

      if (s.kind() == StmtKind::kBlock) {
        // Nested statement lists (e.g. from the preprocessors) splice
        // into the current region so declarations stay in scope.
        transform_region(static_cast<const Block&>(s), out, after);
        continue;
      }

      if (s.kind() == StmtKind::kFor &&
          static_cast<const ForStmt&>(s).pragma) {
        flush_guard(out);
        emit_parallel_loop(static_cast<const ForStmt&>(s), out, after);
        continue;
      }

      if (contains_parallel_loop(s) || contains_return(s)) {
        flush_guard(out);
        emit_structured(s, out, after);
        continue;
      }

      emit_sequential(s, out);
    }
  }

  /// Control flow that encloses parallel loops (or returns) executes in
  /// every thread of the group: its controlling scalars are broadcast
  /// first so all group threads take the same path.
  void emit_structured(const Stmt& s, Block& out,
                       const std::set<std::string>& used_after) {
    switch (s.kind()) {
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        broadcast_controlling_vars(*i.cond, out);
        auto then_out = make_block();
        transform_region(*i.then_body, *then_out, used_after);
        flush_guard(*then_out);
        BlockPtr else_out;
        if (i.else_body) {
          else_out = make_block();
          transform_region(*i.else_body, *else_out, used_after);
          flush_guard(*else_out);
        }
        out.push(std::make_unique<IfStmt>(i.cond->clone(),
                                          std::move(then_out),
                                          std::move(else_out)));
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        std::set<std::string> control_uses;
        if (f.cond) collect_expr_var_uses(*f.cond, control_uses);
        if (f.init) {
          analysis::VarSets vs = analysis::collect_vars(*f.init);
          control_uses.insert(vs.uses.begin(), vs.uses.end());
          // The iterator itself is established by the init clause, which
          // every group thread executes; it needs no broadcast.
          for (const auto& d : vs.decls) control_uses.erase(d);
          for (const auto& d : vs.defs) control_uses.erase(d);
        }
        for (const auto& v : control_uses) broadcast_if_needed(v, out);
        // All group threads execute init/inc, so the uniformity tracker
        // sees them (a literal-initialized iterator stays uniform).
        if (f.init) tracker_->step(*f.init);

        // Loop-carried values: anything the body uses may come from a
        // previous iteration of the body itself.
        std::set<std::string> body_after = used_after;
        analysis::VarSets body_vs = analysis::collect_vars(*f.body);
        body_after.insert(body_vs.uses.begin(), body_vs.uses.end());
        body_after.insert(control_uses.begin(), control_uses.end());

        auto body_out = make_block();
        transform_region(*f.body, *body_out, body_after);
        flush_guard(*body_out);
        // Values feeding the loop condition may have been recomputed by
        // masters inside the body; re-broadcast before re-testing.
        for (const auto& v : control_uses)
          if (!tracker_->is_uniform_var(v)) broadcast_if_needed(v, *body_out);

        out.push(std::make_unique<ForStmt>(
            f.init ? f.init->clone() : nullptr,
            f.cond ? f.cond->clone() : nullptr,
            f.inc ? f.inc->clone() : nullptr, std::move(body_out)));
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        broadcast_controlling_vars(*w.cond, out);
        std::set<std::string> control_uses;
        collect_expr_var_uses(*w.cond, control_uses);

        std::set<std::string> body_after = used_after;
        analysis::VarSets body_vs = analysis::collect_vars(*w.body);
        body_after.insert(body_vs.uses.begin(), body_vs.uses.end());

        auto body_out = make_block();
        transform_region(*w.body, *body_out, body_after);
        flush_guard(*body_out);
        for (const auto& v : control_uses)
          if (!tracker_->is_uniform_var(v)) broadcast_if_needed(v, *body_out);
        out.push(std::make_unique<WhileStmt>(w.cond->clone(),
                                             std::move(body_out)));
        return;
      }
      case StmtKind::kReturn:
        out.push(s.clone());
        return;
      case StmtKind::kBlock: {
        transform_region(static_cast<const Block&>(s), out, used_after);
        flush_guard(out);
        return;
      }
      default:
        // A lone statement containing neither loops nor returns cannot
        // reach here; fall back to sequential handling.
        emit_sequential(s, out);
        flush_guard(out);
        return;
    }
  }

  /// A plain sequential statement: redundantly computed when
  /// group-uniform (Sec. 3.1), otherwise master-guarded.
  void emit_sequential(const Stmt& s, Block& out) {
    switch (s.kind()) {
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (!d.type.is_scalar() || !d.init) {
          // Allocations (arrays) and bare decls are guard-neutral.
          tracker_->step(s);
          out.push(s.clone());
          return;
        }
        bool uniform = tracker_->step(s);
        if (uniform) {
          flush_guard(out);
          out.push(s.clone());
        } else {
          // Split: hoist the declaration, guard the initialization so the
          // variable stays in scope for later broadcasts (Fig. 3b).
          out.push(std::make_unique<DeclStmt>(d.type, d.name));
          guard_.push_back(
              make_assign(make_var(d.name), d.init->clone()));
        }
        return;
      }
      case StmtKind::kExpr: {
        const auto& e = static_cast<const ExprStmt&>(s);
        if (e.expr->kind() == ExprKind::kCall &&
            static_cast<const CallExpr&>(*e.expr).callee ==
                "__syncthreads") {
          flush_guard(out);
          out.push(s.clone());
          return;
        }
        guard_.push_back(s.clone());
        return;
      }
      case StmtKind::kAssign: {
        bool uniform = tracker_->step(s);
        if (uniform) {
          flush_guard(out);
          out.push(s.clone());
        } else {
          guard_.push_back(s.clone());
        }
        return;
      }
      default: {
        // Sequential control flow without parallel loops: master-only.
        analysis::VarSets vs = analysis::collect_vars(s);
        for (const auto& d : vs.defs) tracker_->mark_nonuniform(d);
        guard_.push_back(s.clone());
        return;
      }
    }
  }

  // ------------------------------------------------ broadcasts
  void broadcast_controlling_vars(const Expr& cond, Block& out) {
    std::set<std::string> uses;
    collect_expr_var_uses(cond, uses);
    for (const auto& v : uses) broadcast_if_needed(v, out);
  }

  void broadcast_if_needed(const std::string& name, Block& out) {
    if (tracker_->is_uniform_var(name)) return;
    auto it = symbols_.find(name);
    if (it == symbols_.end()) return;
    const Type& t = it->second;
    if (!t.is_scalar() || t.space != AddrSpace::kRegister) return;
    if (orig_.find_param(name)) return;
    flush_guard(out);
    comm_.emit_broadcast(out, name, t.scalar);
    tracker_->mark_uniform(name);
    result_.notes.push_back("broadcast '" + name + "'");
  }

  [[nodiscard]] ScalarType scalar_type_of(const std::string& name) const {
    auto it = symbols_.find(name);
    if (it == symbols_.end() || !it->second.is_scalar())
      throw cudanp::CompileError("'" + name +
                                 "' is not a known scalar variable");
    return it->second.scalar;
  }

  /// Recognizes an unannotated reduction: every write to `var` inside
  /// `body` is an associative self-update (`v += e`, `v = v * e`,
  /// `v = fminf(v, e)`, ...) whose other operand does not read `var`,
  /// and `var` is not read anywhere else. Returns the operator, or
  /// nullopt when the variable does not follow a reduction pattern.
  static std::optional<ReduceOp> detect_reduction(const Block& body,
                                                  const std::string& var) {
    auto uses_var = [&](const Expr& e) {
      bool found = false;
      for_each_expr(e, [&](const Expr& sub) {
        if (sub.kind() == ExprKind::kVarRef &&
            static_cast<const VarRef&>(sub).name == var)
          found = true;
      });
      return found;
    };

    std::optional<ReduceOp> op;
    int expected_refs = 0;
    bool bad = false;
    int writes = 0;
    for_each_stmt(body, [&](const Stmt& s) {
      if (bad || s.kind() != StmtKind::kAssign) return;
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.lhs->kind() != ExprKind::kVarRef ||
          static_cast<const VarRef&>(*a.lhs).name != var)
        return;
      ++writes;
      std::optional<ReduceOp> this_op;
      if ((a.op == AssignOp::kAdd || a.op == AssignOp::kMul) &&
          !uses_var(*a.rhs)) {
        this_op = a.op == AssignOp::kAdd ? ReduceOp::kAdd : ReduceOp::kMul;
        expected_refs += 1;  // the LHS reference
      } else if (a.op == AssignOp::kAssign &&
                 a.rhs->kind() == ExprKind::kBinary) {
        const auto& b = static_cast<const BinaryExpr&>(*a.rhs);
        bool lhs_is_var = b.lhs->kind() == ExprKind::kVarRef &&
                          static_cast<const VarRef&>(*b.lhs).name == var;
        bool rhs_is_var = b.rhs->kind() == ExprKind::kVarRef &&
                          static_cast<const VarRef&>(*b.rhs).name == var;
        const Expr& other = lhs_is_var ? *b.rhs : *b.lhs;
        if ((lhs_is_var != rhs_is_var) && !uses_var(other) &&
            (b.op == BinOp::kAdd || b.op == BinOp::kMul)) {
          this_op = b.op == BinOp::kAdd ? ReduceOp::kAdd : ReduceOp::kMul;
          expected_refs += 2;  // LHS + the self-operand
        }
      } else if (a.op == AssignOp::kAssign &&
                 a.rhs->kind() == ExprKind::kCall) {
        const auto& c = static_cast<const CallExpr&>(*a.rhs);
        bool is_min = c.callee == "fminf" || c.callee == "min";
        bool is_max = c.callee == "fmaxf" || c.callee == "max";
        if ((is_min || is_max) && c.args.size() == 2) {
          bool a0 = c.args[0]->kind() == ExprKind::kVarRef &&
                    static_cast<const VarRef&>(*c.args[0]).name == var;
          bool a1 = c.args[1]->kind() == ExprKind::kVarRef &&
                    static_cast<const VarRef&>(*c.args[1]).name == var;
          const Expr& other = a0 ? *c.args[1] : *c.args[0];
          if ((a0 != a1) && !uses_var(other)) {
            this_op = is_min ? ReduceOp::kMin : ReduceOp::kMax;
            expected_refs += 2;
          }
        }
      }
      if (!this_op || (op && *op != *this_op)) {
        bad = true;
        return;
      }
      op = this_op;
    });
    if (bad || writes == 0 || !op) return std::nullopt;

    // No other reads of var anywhere in the body.
    int total_refs = 0;
    for_each_expr_in(body, [&](const Expr& e) {
      if (e.kind() == ExprKind::kVarRef &&
          static_cast<const VarRef&>(e).name == var)
        ++total_refs;
    });
    if (total_refs != expected_refs) return std::nullopt;
    return op;
  }

  // ------------------------------------------------ parallel loops
  void emit_parallel_loop(const ForStmt& loop, Block& out,
                          const std::set<std::string>& used_after) {
    std::string why;
    auto info = analysis::analyze_loop(loop, &why);
    if (!info)
      throw cudanp::CompileError(loop.loc(),
                                 "cannot parallelize loop: " + why);
    const NpPragma& pragma = *loop.pragma;
    auto live = analysis::analyze_parallel_loop(*np_, loop, used_after);

    // Categorize live-outs.
    std::map<std::string, ReduceOp> reductions;
    for (const auto& c : pragma.reductions)
      for (const auto& v : c.vars) reductions[v] = c.op;
    std::map<std::string, ReduceOp> scans;
    for (const auto& c : pragma.scans)
      for (const auto& v : c.vars) scans[v] = c.op;
    std::set<std::string> selects;
    for (const auto& v : live.live_out) {
      if (reductions.count(v) || scans.count(v)) continue;
      // The compiler recognizes unannotated reduction patterns itself
      // (the paper's compiler "can also handle the reduction and scan
      // variables"); only non-reduction live-outs need the zero-init +
      // add-reduce select transformation.
      if (auto op = detect_reduction(*loop.body, v)) {
        reductions[v] = *op;
        diags_.note(loop.loc(), "live-out '" + v +
                                    "' recognized as an unannotated " +
                                    std::string(to_string(*op)) +
                                    "-reduction");
        result_.notes.push_back("auto-detected reduction on '" + v + "'");
        continue;
      }
      selects.insert(v);
    }

    // Broadcast live-ins (scan bases included; reduction/select excluded
    // because their slave copies start from the identity / zero).
    std::set<std::string> bcast(live.live_in.begin(), live.live_in.end());
    for (const auto& v : pragma.copy_in) bcast.insert(v);
    for (const auto& [v, op] : reductions) {
      (void)op;
      bcast.erase(v);
    }
    for (const auto& v : selects) bcast.erase(v);
    for (const auto& v : bcast) broadcast_if_needed(v, out);

    // Reduction slaves start from the identity; the master keeps its
    // running value (Sec. 3.2).
    for (const auto& [v, op] : reductions) {
      ScalarType t = scalar_type_of(v);
      auto init = make_block();
      init->push(make_assign(make_var(v), CommCodegen::identity_expr(op, t)));
      out.push(std::make_unique<IfStmt>(
          make_bin(BinOp::kNe, slave_id(), make_int(0)), std::move(init)));
      tracker_->mark_nonuniform(v);
    }
    // Select live-outs ("if (i==3) x = a[i]" pattern): zero-init all
    // copies and add-reduce afterwards (Sec. 3.2).
    for (const auto& v : selects) {
      ScalarType t = scalar_type_of(v);
      out.push(make_assign(make_var(v), t == ScalarType::kFloat
                                            ? make_float(0.0)
                                            : make_int(0)));
      tracker_->mark_nonuniform(v);
      diags_.warning(loop.loc(),
                     "live-out '" + v +
                         "' is not a reduction/scan variable; applying the "
                         "zero-init + add-reduce select transformation");
    }

    if (scans.empty()) {
      if (chunk_mode_)
        emit_chunk_loop(loop, *info, out);
      else
        emit_cyclic_loop(loop, *info, out);
    } else {
      if (scans.size() != 1)
        throw cudanp::CompileError(loop.loc(),
                                   "only one scan variable per loop is "
                                   "supported");
      if (!selects.empty() || !reductions.empty())
        throw cudanp::CompileError(loop.loc(),
                                   "scan loops cannot mix reduction/select "
                                   "live-outs");
      emit_scan_loop(loop, *info, scans.begin()->first,
                     scans.begin()->second, out);
    }

    // Combine results back; every group thread receives the value.
    for (const auto& [v, op] : reductions) {
      comm_.emit_reduction(out, v, scalar_type_of(v), op);
      tracker_->mark_uniform(v);
    }
    for (const auto& v : selects) {
      comm_.emit_reduction(out, v, scalar_type_of(v), ReduceOp::kAdd);
      tracker_->mark_uniform(v);
    }
  }

  /// Register-partitioned arrays referenced in this loop body.
  [[nodiscard]] std::set<std::string> reg_arrays_in(const Block& body) const {
    std::set<std::string> out;
    for_each_expr_in(body, [&](const Expr& e) {
      if (e.kind() == ExprKind::kArrayIndex) {
        const auto& ai = static_cast<const ArrayIndex&>(e);
        if (ai.base->kind() == ExprKind::kVarRef) {
          const std::string& n = static_cast<const VarRef&>(*ai.base).name;
          if (register_arrays_.count(n)) out.insert(n);
        }
      }
    });
    return out;
  }

  /// Rewrites `arr[<idx>]` into `arr[<new_idx(idx)>]` for register arrays.
  static void rewrite_reg_accesses(
      Block& body, const std::set<std::string>& arrays,
      const std::function<ExprPtr(ExprPtr)>& new_index) {
    rewrite_exprs(body, [&](ExprPtr& e) {
      if (e->kind() != ExprKind::kArrayIndex) return;
      auto& ai = static_cast<ArrayIndex&>(*e);
      if (ai.base->kind() != ExprKind::kVarRef) return;
      if (!arrays.count(static_cast<const VarRef&>(*ai.base).name)) return;
      ai.indices[0] = new_index(std::move(ai.indices[0]));
    });
  }

  /// Cyclic distribution (Fig. 3b): i = init + slave_id*step, i += S*step.
  void emit_cyclic_loop(const ForStmt& loop, const analysis::LoopInfo& info,
                        Block& out) {
    const int S = cfg_.slave_size;
    auto reg = reg_arrays_in(*loop.body);

    // Padding (Sec. 3.7 item 3): round a constant trip count up to a
    // multiple of slave_size and guard the body with `if (i < n)`.
    bool padded = false;
    std::int64_t pad_bound = 0;
    if (cfg_.pad_loops && info.const_trip_count &&
        info.init->kind() == ExprKind::kIntLit &&
        static_cast<const IntLit&>(*info.init).value == 0 &&
        info.step == 1 && *info.const_trip_count % S != 0) {
      padded = true;
      pad_bound = (*info.const_trip_count + S - 1) / S * S;
      result_.notes.push_back("padded loop at " + loop.loc().str() +
                              " from " +
                              std::to_string(*info.const_trip_count) +
                              " to " + std::to_string(pad_bound));
    }

    ExprPtr start = make_bin(
        BinOp::kAdd, info.init->clone(),
        info.step == 1
            ? slave_id()
            : make_bin(BinOp::kMul, slave_id(), make_int(info.step)));
    StmtPtr init_stmt;
    if (info.declares_iterator) {
      init_stmt = std::make_unique<DeclStmt>(
          Type::scalar_of(ScalarType::kInt), info.iterator,
          std::move(start));
    } else {
      init_stmt = make_assign(make_var(info.iterator), std::move(start));
    }

    StmtPtr inc_stmt = std::make_unique<AssignStmt>(
        make_var(info.iterator), AssignOp::kAdd,
        make_int(static_cast<std::int64_t>(S) * info.step));

    BlockPtr body = loop.body->clone_block();
    if (!reg.empty()) {
      // Maintain a per-slave element counter so arr[i] becomes
      // arr[__np_k] without a division (the Fig. 6 "ni" form).
      rewrite_reg_accesses(*body, reg, [&](ExprPtr) -> ExprPtr {
        return make_var("__np_k");
      });
      auto init_pair = make_block();
      init_pair->push(std::move(init_stmt));
      init_pair->push(make_decl_int("__np_k", make_int(0)));
      init_stmt = std::move(init_pair);
      auto inc_pair = make_block();
      inc_pair->push(std::move(inc_stmt));
      inc_pair->push(std::make_unique<AssignStmt>(
          make_var("__np_k"), AssignOp::kAdd, make_int(1)));
      inc_stmt = std::move(inc_pair);
    }
    if (padded) {
      auto guarded = make_block();
      auto guard_body = std::move(body);
      guarded->push(std::make_unique<IfStmt>(
          make_bin(BinOp::kLt, make_var(info.iterator), info.bound->clone()),
          std::move(guard_body)));
      body = std::move(guarded);
    }
    ExprPtr cond = padded ? make_bin(BinOp::kLt, make_var(info.iterator),
                                     make_int(pad_bound))
                          : loop.cond->clone();
    out.push(std::make_unique<ForStmt>(std::move(init_stmt), std::move(cond),
                                       std::move(inc_stmt),
                                       std::move(body)));
  }

  /// Contiguous-chunk distribution (used in kernels with scan loops so
  /// the element -> slave mapping is prefix-compatible).
  struct ChunkBounds {
    std::string lo;
    std::string hi;
  };
  ChunkBounds emit_chunk_bounds(const analysis::LoopInfo& info, Block& out) {
    const int S = cfg_.slave_size;
    if (info.step != 1)
      throw cudanp::CompileError(
          "chunk distribution requires unit-stride loops");
    int id = loop_counter_++;
    ChunkBounds b{"__np_lo" + std::to_string(id),
                  "__np_hi" + std::to_string(id)};
    ExprPtr chunk;
    if (info.const_trip_count) {
      chunk = make_int((*info.const_trip_count + S - 1) / S);
    } else {
      // (bound - init + S - 1) / S computed at run time.
      chunk = make_bin(
          BinOp::kDiv,
          make_bin(BinOp::kAdd,
                   make_bin(BinOp::kSub, info.bound->clone(),
                            info.init->clone()),
                   make_int(S - 1)),
          make_int(S));
    }
    auto chunk_name = "__np_chunk" + std::to_string(id);
    out.push(make_decl_int(chunk_name, std::move(chunk)));
    out.push(make_decl_int(
        b.lo, make_bin(BinOp::kAdd, info.init->clone(),
                       make_bin(BinOp::kMul, slave_id(),
                                make_var(chunk_name)))));
    {
      std::vector<ExprPtr> args;
      args.push_back(info.bound->clone());
      args.push_back(make_bin(BinOp::kAdd, make_var(b.lo),
                              make_var(chunk_name)));
      out.push(make_decl_int(b.hi, make_call("min", std::move(args))));
    }
    return b;
  }

  StmtPtr chunk_for(const analysis::LoopInfo& info, const ChunkBounds& b,
                    BlockPtr body) {
    StmtPtr init_stmt;
    if (info.declares_iterator)
      init_stmt = std::make_unique<DeclStmt>(
          Type::scalar_of(ScalarType::kInt), info.iterator, make_var(b.lo));
    else
      init_stmt = make_assign(make_var(info.iterator), make_var(b.lo));
    return std::make_unique<ForStmt>(
        std::move(init_stmt),
        make_bin(BinOp::kLt, make_var(info.iterator), make_var(b.hi)),
        std::make_unique<AssignStmt>(make_var(info.iterator), AssignOp::kAdd,
                                     make_int(1)),
        std::move(body));
  }

  void emit_chunk_loop(const ForStmt& loop, const analysis::LoopInfo& info,
                       Block& out) {
    auto reg = reg_arrays_in(*loop.body);
    ChunkBounds b = emit_chunk_bounds(info, out);
    BlockPtr body = loop.body->clone_block();
    if (!reg.empty()) {
      std::string lo = b.lo;
      rewrite_reg_accesses(*body, reg, [lo](ExprPtr idx) -> ExprPtr {
        return make_bin(BinOp::kSub, std::move(idx), make_var(lo));
      });
    }
    out.push(chunk_for(info, b, std::move(body)));
  }

  /// Scan loops (Sec. 3.2): two-pass chunk scan. Pass 1 accumulates each
  /// slave's chunk locally with stores stripped; an exclusive scan across
  /// the group yields each slave's prefix; pass 2 re-runs the body with
  /// the scan variable seeded to base (op) prefix. The group's final
  /// value is read back from the last slave.
  void emit_scan_loop(const ForStmt& loop, const analysis::LoopInfo& info,
                      const std::string& var, ReduceOp op, Block& out) {
    ScalarType t = scalar_type_of(var);
    const int S = cfg_.slave_size;
    int id = loop_counter_;  // emit_chunk_bounds will consume this id
    std::string base = "__np_base" + std::to_string(id);
    std::string local = "__np_local" + std::to_string(id);
    std::string prefix = "__np_prefix" + std::to_string(id);

    out.push(std::make_unique<DeclStmt>(Type::scalar_of(t), base,
                                        make_var(var)));
    out.push(std::make_unique<DeclStmt>(Type::scalar_of(t), local,
                                        CommCodegen::identity_expr(op, t)));
    ChunkBounds b = emit_chunk_bounds(info, out);

    auto reg = reg_arrays_in(*loop.body);
    auto chunk_rewrite = [&](Block& body) {
      if (reg.empty()) return;
      std::string lo = b.lo;
      rewrite_reg_accesses(body, reg, [lo](ExprPtr idx) -> ExprPtr {
        return make_bin(BinOp::kSub, std::move(idx), make_var(lo));
      });
    };

    // Pass 1: local accumulation, memory stores stripped.
    BlockPtr pass1 = loop.body->clone_block();
    strip_array_stores(*pass1);
    rename_var(*pass1, var, local);
    chunk_rewrite(*pass1);
    out.push(chunk_for(info, b, std::move(pass1)));

    // Exclusive scan of the local partials.
    out.push(std::make_unique<DeclStmt>(Type::scalar_of(t), prefix,
                                        CommCodegen::identity_expr(op, t)));
    comm_.emit_exclusive_scan(out, local, prefix, t, op);
    out.push(make_assign(make_var(var),
                         CommCodegen::combine(op, make_var(base),
                                              make_var(prefix), t)));

    // Pass 2: full body with the seeded prefix.
    BlockPtr pass2 = loop.body->clone_block();
    chunk_rewrite(*pass2);
    out.push(chunk_for(info, b, std::move(pass2)));

    // Final value lives in the last slave; publish it to the group.
    emit_broadcast_from(out, var, t, S - 1);
    tracker_->mark_uniform(var);
  }

  static void strip_array_stores(Block& b) {
    for (auto& s : b.stmts) {
      if (s->kind() == StmtKind::kAssign) {
        const auto& a = static_cast<const AssignStmt&>(*s);
        if (a.lhs->kind() == ExprKind::kArrayIndex) s = make_block();
      } else if (s->kind() == StmtKind::kBlock) {
        strip_array_stores(static_cast<Block&>(*s));
      } else if (s->kind() == StmtKind::kIf) {
        auto& i = static_cast<IfStmt&>(*s);
        strip_array_stores(*i.then_body);
        if (i.else_body) strip_array_stores(*i.else_body);
      } else if (s->kind() == StmtKind::kFor) {
        strip_array_stores(*static_cast<ForStmt&>(*s).body);
      } else if (s->kind() == StmtKind::kWhile) {
        strip_array_stores(*static_cast<WhileStmt&>(*s).body);
      }
    }
  }

  /// var = value held by the group thread with slave_id == src.
  void emit_broadcast_from(Block& out, const std::string& var, ScalarType t,
                           int src) {
    if (cfg_.shfl_available()) {
      std::vector<ExprPtr> args;
      args.push_back(make_var(var));
      args.push_back(make_int(src));
      args.push_back(make_int(cfg_.slave_size));
      out.push(make_assign(make_var(var),
                           make_call("__shfl", std::move(args))));
      return;
    }
    // Shared-memory path via the reduction buffer.
    comm_.emit_reduction_buffer_broadcast(out, var, t, src);
  }

  // ------------------------------------------------ members
  const Kernel& orig_;
  NpConfig cfg_;
  cudanp::DiagnosticEngine& diags_;
  CommCodegen comm_;
  std::unique_ptr<Kernel> np_;
  TransformResult result_;
  std::unordered_map<std::string, Type> symbols_;
  std::unique_ptr<UniformityTracker> tracker_;
  std::vector<StmtPtr> guard_;
  std::map<std::string, ArrayInfo> arrays_;
  std::set<std::string> register_arrays_;
  bool chunk_mode_ = false;
  int loop_counter_ = 0;
};

}  // namespace

TransformResult apply_np_transform(const Kernel& kernel,
                                   const NpConfig& config,
                                   cudanp::DiagnosticEngine& diags) {
  return Transformer(kernel, config, diags).run();
}

}  // namespace cudanp::transform
