// Configuration of one CUDA-NP transformed kernel variant.
//
// The auto-tuner (paper Sec. 6: "the optimal version can be found by
// testing these versions exhaustively") enumerates NpConfig instances
// over {inter, intra} x slave_size x local-array placement and picks the
// fastest on the simulator.
#pragma once

#include <string>
#include <vector>

#include "ir/pragma.hpp"
#include "ir/type.hpp"

namespace cudanp::transform {

/// Where a live local-memory array is re-homed (paper Sec. 3.3).
enum class LocalPlacement {
  kAuto,      // policy: register if partitionable, shared if < 384 B, global
  kGlobal,    // option 1: partitioned global-memory array
  kShared,    // option 2: [master][N] shared-memory array
  kRegister,  // option 3: per-slave partition promoted to registers
  kKeep,      // left in local memory (e.g. a forced-shared array that
              // does not fit the shared-memory budget)
};

[[nodiscard]] const char* to_string(LocalPlacement p);

struct NpConfig {
  /// Inter-warp (slaves in different warps) vs intra-warp (slaves in the
  /// same warp) distribution — paper Sec. 3.4.
  ir::NpType np_type = ir::NpType::kInterWarp;
  /// Threads per master group: 1 master + (slave_size-1) slaves.
  int slave_size = 4;
  /// Original thread-block size (the master dimension).
  int master_count = 0;
  LocalPlacement placement = LocalPlacement::kAuto;
  /// Use __shfl for broadcasts/reductions/scans when legal (intra-warp,
  /// sm >= 30). When false, shared memory is used even intra-warp
  /// (the Fig. 16 comparison).
  bool use_shfl = true;
  int sm_version = 30;
  /// Pad constant loop counts up to a multiple of slave_size, adding an
  /// `if (i < n)` guard over the body (paper Sec. 3.7 item 3). Padding
  /// introduces idle iterations -> the Fig. 12 comparison.
  bool pad_loops = false;
  std::string name_suffix = "_np";

  [[nodiscard]] bool intra_warp() const {
    return np_type == ir::NpType::kIntraWarp;
  }
  [[nodiscard]] bool shfl_available() const {
    return intra_warp() && use_shfl && sm_version >= 30 && slave_size <= 32 &&
           (slave_size & (slave_size - 1)) == 0;
  }
  [[nodiscard]] int block_threads() const {
    return master_count * slave_size;
  }
  [[nodiscard]] std::string describe() const;
};

/// Extra global buffer the transformed kernel needs (local arrays
/// re-homed to global memory). The runner allocates
/// grid.x * elems_per_block elements and appends the buffer as the last
/// kernel argument(s), in order.
struct ExtraBuffer {
  std::string param_name;
  ir::ScalarType type = ir::ScalarType::kFloat;
  std::int64_t elems_per_block = 0;
};

}  // namespace cudanp::transform
