#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace cudanp {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace cudanp
