// ASCII table printer used by the benchmark harness so each bench binary
// prints rows in the same layout as the corresponding paper table/figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cudanp {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one row; cells beyond the header width are dropped, missing cells
  /// are rendered empty.
  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a separator under the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cudanp
