// Diagnostics engine shared by the frontend, analyses and transforms.
//
// The compiler reports problems through a DiagnosticEngine rather than
// throwing at the point of detection, so that a single compile can surface
// several independent errors. Fatal conditions (parser cannot make progress,
// malformed IR reaching a pass) throw CompileError.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace cudanp {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced while compiling one kernel.
class DiagnosticEngine {
 public:
  void note(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void error(SourceLoc loc, std::string msg);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] std::string summary() const;
  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown for conditions the compiler cannot recover from.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
  CompileError(SourceLoc loc, const std::string& what)
      : std::runtime_error(loc.str() + ": " + what), loc_(loc) {}
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Thrown by the simulator for invalid launches / out-of-bounds accesses.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace cudanp
