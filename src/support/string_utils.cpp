#include "support/string_utils.hpp"

#include <cctype>
#include <cstdio>

namespace cudanp {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_'))
    return false;
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  return true;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::optional<std::int64_t> parse_i64(std::string_view s, std::int64_t min,
                                      std::int64_t max) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  // Accumulate negatively so INT64_MIN parses without overflow.
  std::int64_t v = 0;
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    int digit = c - '0';
    if (v < (kMin + digit) / 10) return std::nullopt;
    v = v * 10 - digit;
  }
  if (!negative) {
    if (v == kMin) return std::nullopt;
    v = -v;
  }
  if (v < min || v > max) return std::nullopt;
  return v;
}

std::optional<int> parse_int(std::string_view s, int min, int max) {
  auto v = parse_i64(s, min, max);
  if (!v) return std::nullopt;
  return static_cast<int>(*v);
}

}  // namespace cudanp
