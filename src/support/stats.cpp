#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cudanp {

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double arithmetic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.mean = arithmetic_mean(xs);
  s.geomean = geometric_mean(xs);
  return s;
}

}  // namespace cudanp
