// Deterministic PRNG for workload generation.
//
// All benchmark inputs are generated from SplitMix64 so that every run of
// every harness binary sees byte-identical inputs; this makes the paper
// figures reproducible bit-for-bit across machines.
#pragma once

#include <cstdint>

namespace cudanp {

/// SplitMix64: tiny, fast, excellent statistical quality for seeding and
/// for the uniform streams used by workload generators.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float next_float(float lo = 0.0f, float hi = 1.0f) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace cudanp
