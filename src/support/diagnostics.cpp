#include "support/diagnostics.hpp"

#include <sstream>

namespace cudanp {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << loc.str() << ": " << to_string(severity) << ": " << message;
  return os.str();
}

void DiagnosticEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::kNote, loc, std::move(msg)});
}

void DiagnosticEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::kWarning, loc, std::move(msg)});
}

void DiagnosticEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::kError, loc, std::move(msg)});
  ++error_count_;
}

std::string DiagnosticEngine::summary() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace cudanp
