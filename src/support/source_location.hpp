// Source locations for the CUDA-C frontend and diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace cudanp {

/// A position inside a kernel source buffer. Lines and columns are 1-based;
/// a value of 0 means "unknown" (e.g. compiler-synthesized IR nodes).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const {
    if (!valid()) return "<synthesized>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
  friend constexpr bool operator==(SourceLoc a, SourceLoc b) {
    return a.line == b.line && a.column == b.column;
  }
};

}  // namespace cudanp
