#include "support/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cudanp::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        int code = 0;
        for (int k = 1; k <= 4; ++k) {
          int d = hex_digit(s[i + static_cast<std::size_t>(k)]);
          if (d < 0) return std::nullopt;
          code = code * 16 + d;
        }
        i += 4;
        // Our emitters only produce \u00xx (control bytes); encode
        // larger code points as UTF-8 so round-trips stay lossless.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

bool Value::get_bool(std::string_view key, bool def) const {
  const Value* v = find(key);
  return v ? v->as_bool(def) : def;
}

std::int64_t Value::get_i64(std::string_view key, std::int64_t def) const {
  const Value* v = find(key);
  return v ? v->as_i64(def) : def;
}

std::string Value::get_str(std::string_view key,
                           const std::string& def) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->as_str() : def;
}

double Value::get_double(std::string_view key, double def) const {
  const Value* v = find(key);
  return v ? v->as_double(def) : def;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(std::int64_t i) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.i64_ = i;
  v.num_ = static_cast<double>(i);
  return v;
}

Value Value::make_double(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  v.i64_ = static_cast<std::int64_t>(d);
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(a);
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    auto v = parse_value(/*depth=*/0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& msg) {
    if (error_ && error_->empty())
      *error_ = "json: " + msg + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Value::make_string(std::move(*s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value::make_bool(true);
        }
        break;
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value::make_bool(false);
        }
        break;
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value::make_null();
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        break;
    }
    fail("unexpected token");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
    }
    std::string tok(text_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") {
      fail("bad number");
      return std::nullopt;
    }
    errno = 0;
    if (integral) {
      char* end = nullptr;
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == ERANGE || end != tok.c_str() + tok.size()) {
        // Out-of-range integers fall back to the double view.
        double d = std::strtod(tok.c_str(), nullptr);
        return Value::make_double(d);
      }
      return Value::make_number(v);
    }
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail("bad number");
      return std::nullopt;
    }
    return Value::make_double(d);
  }

  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        auto body = text_.substr(start, pos_ - start);
        ++pos_;
        auto s = unescape(body);
        if (!s) {
          fail("bad string escape");
          return std::nullopt;
        }
        return s;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
      }
      ++pos_;
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_array(int depth) {
    if (!expect('[')) return std::nullopt;
    Array items;
    skip_ws();
    if (consume(']')) return Value::make_array(std::move(items));
    while (true) {
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Value::make_array(std::move(items));
      if (!expect(',')) return std::nullopt;
    }
  }

  std::optional<Value> parse_object(int depth) {
    if (!expect('{')) return std::nullopt;
    Object members;
    skip_ws();
    if (consume('}')) return Value::make_object(std::move(members));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!expect(':')) return std::nullopt;
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return Value::make_object(std::move(members));
      if (!expect(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace cudanp::json
