// Minimal JSON: the escape helper every report emitter shares, and a
// small recursive-descent parser for the reports we ourselves emit.
//
// The serve layer's process-isolation split (serve/supervisor.*) and the
// durable batch journal (serve/journal.*) both need to *read back* the
// structured records the repo has always written — FallbackDecision,
// VariantFailure, JobResult, ServiceReport — so every one of those types
// now has a from_json next to its json(), built on this parser. The
// parser accepts standard JSON (objects, arrays, strings with the usual
// escapes, integers, doubles, bools, null); it is not a streaming parser
// and is sized for reports, not gigabyte documents.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cudanp::json {

/// Escapes `s` for embedding in a JSON string literal: quotes,
/// backslashes, \n \t \r, and \u00xx for remaining control bytes.
/// Exactly the escaping every json() emitter in the repo uses.
[[nodiscard]] std::string escape(const std::string& s);

/// Reverses escape(): returns nullopt on a malformed escape sequence.
[[nodiscard]] std::optional<std::string> unescape(std::string_view s);

class Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// One parsed JSON value. Numbers keep both an integer and a double
/// view; every numeric field the repo emits is an integer.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Value() = default;
  [[nodiscard]] Kind kind() const { return kind_; }

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the default is returned on a kind mismatch so
  /// report parsers can be written as straight-line field reads.
  [[nodiscard]] bool as_bool(bool def = false) const {
    return is_bool() ? bool_ : def;
  }
  [[nodiscard]] std::int64_t as_i64(std::int64_t def = 0) const {
    return is_number() ? i64_ : def;
  }
  [[nodiscard]] double as_double(double def = 0.0) const {
    return is_number() ? num_ : def;
  }
  [[nodiscard]] const std::string& as_str() const { return str_; }

  [[nodiscard]] const Array& arr() const { return arr_; }
  [[nodiscard]] const Object& obj() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience field reads straight off an object.
  [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key,
                                     std::int64_t def = 0) const;
  [[nodiscard]] std::string get_str(std::string_view key,
                                    const std::string& def = {}) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double def = 0.0) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(std::int64_t i);
  static Value make_double(double d);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t i64_ = 0;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, when `error` is
/// non-null, a byte-offset diagnostic.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

}  // namespace cudanp::json
