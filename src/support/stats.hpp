// Statistics helpers for the benchmark harness (geometric mean, summaries).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cudanp {

/// Geometric mean; the paper reports GM speedups (Fig. 10).
[[nodiscard]] double geometric_mean(std::span<const double> xs);

[[nodiscard]] double arithmetic_mean(std::span<const double> xs);

struct Summary {
  double min = 0, max = 0, mean = 0, geomean = 0;
};
[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace cudanp
