// Small string helpers used across the frontend and bench harness.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cudanp {

/// Splits `s` on `sep`, trimming nothing; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` is a valid C identifier.
[[nodiscard]] bool is_identifier(std::string_view s);

/// Formats a double with `digits` significant digits (for table output).
[[nodiscard]] std::string format_double(double v, int digits = 4);

/// Replaces every occurrence of `from` with `to` in `s`.
[[nodiscard]] std::string replace_all(std::string s, std::string_view from,
                                      std::string_view to);

/// Checked integer parsing for CLI flags, environment variables and
/// manifest fields. Unlike atoi/strtoll, the whole string (after
/// optional surrounding whitespace) must be a base-10 integer inside
/// [min, max]; partial parses ("8x"), empty strings, and out-of-range
/// values all return nullopt instead of silently becoming 0 or a
/// truncated prefix.
[[nodiscard]] std::optional<std::int64_t> parse_i64(
    std::string_view s,
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max());

/// parse_i64 narrowed to int, for the many int-typed knobs.
[[nodiscard]] std::optional<int> parse_int(
    std::string_view s, int min = std::numeric_limits<int>::min(),
    int max = std::numeric_limits<int>::max());

}  // namespace cudanp
