// Small string helpers used across the frontend and bench harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cudanp {

/// Splits `s` on `sep`, trimming nothing; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` is a valid C identifier.
[[nodiscard]] bool is_identifier(std::string_view s);

/// Formats a double with `digits` significant digits (for table output).
[[nodiscard]] std::string format_double(double v, int digits = 4);

/// Replaces every occurrence of `from` with `to` in `s`.
[[nodiscard]] std::string replace_all(std::string s, std::string_view from,
                                      std::string_view to);

}  // namespace cudanp
