#include "np/heuristic.hpp"

#include <algorithm>

namespace cudanp::np {

using analysis::AccessPatternSummary;
using transform::NpConfig;

HeuristicChoice suggest_config(const ir::Kernel& kernel, int master_count,
                               const sim::DeviceSpec& spec) {
  HeuristicChoice out;
  out.summary = analysis::summarize_access_patterns(kernel);
  const AccessPatternSummary& s = out.summary;

  // Warp-mapping priority (paper Sec. 6, first observation).
  bool intra = false;
  if (s.master_divergent_guard) {
    intra = true;
    out.rationale =
        "master-dependent guard around parallel loops: intra-warp keeps "
        "whole groups on one side of the branch";
  } else if (s.recoalesced_by_iterator > s.coalesced_by_master) {
    intra = true;
    out.rationale =
        "baseline global accesses stride with the master but are "
        "unit-stride in the iterator: intra-warp re-coalesces them";
  } else {
    out.rationale =
        "baseline accesses are already coalesced across masters: "
        "inter-warp preserves the pattern";
  }

  // Group size (paper Sec. 6, second observation: 1+3 or 1+7 threads).
  int slave = 8;
  if (s.max_const_trip > 0 && s.max_const_trip < 8)
    slave = 4;  // tiny loops (CFD's LC=4) cannot feed 7 slaves
  // Respect the hardware block-size cap.
  while (master_count * slave > spec.max_threads_per_block && slave > 2)
    slave /= 2;

  out.config.np_type = intra ? ir::NpType::kIntraWarp
                             : ir::NpType::kInterWarp;
  out.config.slave_size = slave;
  out.config.master_count = master_count;
  out.config.sm_version = spec.sm_version;
  out.config.use_shfl = spec.sm_version >= 30;
  return out;
}

}  // namespace cudanp::np
