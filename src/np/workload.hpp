// A Workload is everything needed to launch one kernel on the simulator:
// device memory with inputs filled in, the baseline launch geometry, and
// an optional output validator (CPU reference check).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/launch.hpp"
#include "sim/memory.hpp"

namespace cudanp::np {

struct Workload {
  std::unique_ptr<sim::DeviceMemory> mem = std::make_unique<sim::DeviceMemory>();
  sim::LaunchConfig launch;
  /// Returns true when device outputs match the CPU reference; fills
  /// `msg` with a description on mismatch. Null when not validating.
  std::function<bool(const sim::DeviceMemory&, std::string*)> validate;
};

using WorkloadFactory = std::function<Workload()>;

}  // namespace cudanp::np
