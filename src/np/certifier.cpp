#include "np/certifier.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "sim/symexec.hpp"
#include "support/json.hpp"

namespace cudanp::np {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kProven: return "proven";
    case Verdict::kProvenModuloReassoc: return "proven-modulo-reassoc";
    case Verdict::kRefuted: return "refuted";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

std::optional<Verdict> verdict_from_string(std::string_view s) {
  for (Verdict v : {Verdict::kProven, Verdict::kProvenModuloReassoc,
                    Verdict::kRefuted, Verdict::kInconclusive})
    if (s == to_string(v)) return v;
  return std::nullopt;
}

std::string Certificate::str() const {
  std::ostringstream os;
  os << "certificate '" << config << "' of kernel '" << kernel
     << "': " << to_string(verdict);
  if (verdict == Verdict::kRefuted)
    os << " (counterexample seed " << counterexample_seed << ")";
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string Certificate::json() const {
  std::ostringstream os;
  os << "{\"kernel\":\"" << json::escape(kernel) << "\",\"config\":\""
     << json::escape(config) << "\",\"verdict\":\"" << to_string(verdict)
     << "\",\"seed\":" << counterexample_seed << ",\"geometry\":\""
     << json::escape(geometry) << "\",\"detail\":\"" << json::escape(detail)
     << "\"}";
  return os.str();
}

std::optional<Certificate> Certificate::from_json_value(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  Certificate c;
  c.kernel = v.get_str("kernel");
  c.config = v.get_str("config");
  auto verdict = verdict_from_string(v.get_str("verdict"));
  if (!verdict) return std::nullopt;
  c.verdict = *verdict;
  c.counterexample_seed = static_cast<std::uint64_t>(v.get_i64("seed"));
  c.geometry = v.get_str("geometry");
  c.detail = v.get_str("detail");
  return c;
}

std::optional<Certificate> Certificate::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

std::string CertifyOptions::fingerprint() const {
  std::ostringstream os;
  os << "steps=" << max_steps << " gather=" << max_gather_cells
     << " nodes=" << max_nodes << " attempts=" << counterexample_attempts
     << " replay=" << (replay_check ? 1 : 0) << " rel=" << f32_rel_tol
     << " abs=" << f32_abs_tol;
  return os.str();
}

void seed_certify_floats(Workload& w, std::uint64_t seed) {
  for (std::size_t i = 0; i < w.launch.args.size(); ++i) {
    auto pi = static_cast<int>(i);
    if (const auto* id = std::get_if<sim::BufferId>(&w.launch.args[i])) {
      sim::DeviceBuffer& buf = w.mem->buffer(*id);
      if (buf.type() != ir::ScalarType::kFloat) continue;
      auto f = buf.f32();
      for (std::size_t e = 0; e < f.size(); ++e)
        f[e] = sim::sym_float_input(seed, pi, static_cast<std::int64_t>(e));
    } else if (const auto* v = std::get_if<sim::Value>(&w.launch.args[i])) {
      if (v->is_float())
        w.launch.args[i] = sim::LaunchConfig::scalar_float(
            static_cast<double>(sim::sym_float_input(seed, pi, -1)));
    }
  }
}

namespace {

/// One normalized-unequal output cell (candidate counterexample site).
struct DiffCell {
  int arg = 0;
  std::size_t idx = 0;
  std::uint32_t base_id = 0;
  std::uint32_t var_id = 0;
  bool is_float = false;
};

std::string cell_name(const ir::Kernel& k, const DiffCell& d) {
  std::ostringstream os;
  os << "'" << k.params[static_cast<std::size_t>(d.arg)].name << "["
     << d.idx << "]'";
  return os.str();
}

/// Compares the baseline-visible buffers of two replayed workloads with
/// the certifier's mixed tolerance; fills `msg` on mismatch. Both
/// workloads come from the same (deterministic) factory, so equal
/// allocation order means equal BufferIds.
bool replay_buffers_match(const sim::DeviceMemory& ref,
                          const sim::DeviceMemory& got,
                          const std::vector<sim::KernelArg>& args,
                          double abs_tol, double rel_tol, std::string* msg) {
  for (const auto& arg : args) {
    const auto* id = std::get_if<sim::BufferId>(&arg);
    if (!id) continue;
    const sim::DeviceBuffer& rb = ref.buffer(*id);
    const sim::DeviceBuffer& gb = got.buffer(*id);
    if (rb.type() == ir::ScalarType::kFloat) {
      auto r = rb.f32();
      auto g = gb.f32();
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (floats_close(r[i], g[i], abs_tol, rel_tol)) continue;
        std::ostringstream os;
        os << "buffer " << *id << " element " << i << ": baseline " << r[i]
           << ", variant " << g[i];
        *msg = os.str();
        return false;
      }
    } else {
      auto r = rb.i32();
      auto g = gb.i32();
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (r[i] == g[i]) continue;
        std::ostringstream os;
        os << "buffer " << *id << " element " << i << ": baseline " << r[i]
           << ", variant " << g[i];
        *msg = os.str();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Certificate Certifier::certify(const ir::Kernel& kernel,
                               const transform::NpConfig& config,
                               const WorkloadFactory& make_workload) const {
  try {
    transform::TransformResult variant = NpCompiler::transform(kernel, config);
    return certify_variant(kernel, variant, make_workload);
  } catch (const CompileError& e) {
    Certificate c;
    c.kernel = kernel.name;
    c.config = config.describe();
    c.verdict = Verdict::kInconclusive;
    c.detail = std::string("transform error: ") + e.what();
    return c;
  }
}

Certificate Certifier::certify_variant(
    const ir::Kernel& kernel, const transform::TransformResult& variant,
    const WorkloadFactory& make_workload) const {
  Certificate cert;
  cert.kernel = kernel.name;
  cert.config = variant.config.describe();

  // The probe workload fixes the proof environment's shape: launch
  // geometry, buffer sizes and all int data are taken concrete from it;
  // float buffers and float scalars are abstracted into symbolic leaves.
  const Workload probe = make_workload();
  const sim::Dim3 grid = probe.launch.grid;
  const sim::Dim3 block = probe.launch.block;
  {
    std::ostringstream os;
    os << "grid " << grid.x << "x" << grid.y << "x" << grid.z << " block "
       << block.x << "x" << block.y << "x" << block.z;
    cert.geometry = os.str();
  }

  auto inconclusive = [&](std::string why) {
    cert.verdict = Verdict::kInconclusive;
    cert.detail = std::move(why);
    return cert;
  };

  // The concrete counterexample environment for `seed`; returns true —
  // and commits the refutation — only when the interpreter reproduces a
  // misbehaviour the baseline does not show. With replay_check off the
  // symbolic evidence is trusted as-is (fuzzing cross-validates this).
  auto confirm_refute = [&](std::uint64_t seed, const std::string& sym_why) {
    if (!opt_.replay_check) {
      cert.verdict = Verdict::kRefuted;
      cert.counterexample_seed = seed;
      cert.detail = sym_why;
      return true;
    }
    Runner runner(spec_, opt_.interp);
    // Default (lockstep) sanitize: the simulator's lockstep model is the
    // repo's correctness contract, so a refutation must reproduce under
    // exactly the checks the empirical validation legs apply.
    Workload bw = make_workload();
    seed_certify_floats(bw, seed);
    ExecutionResult br =
        runner.execute(ExecutionRequest::baseline(kernel, bw).sanitized());
    if (!br.clean()) return false;  // can't pin the blame on the variant
    Workload vw = make_workload();
    seed_certify_floats(vw, seed);
    ExecutionResult vr =
        runner.execute(ExecutionRequest::transformed(variant, vw).sanitized());
    std::string evidence;
    if (!vr.clean()) {
      evidence = vr.hazards().empty() ? std::string("variant failed to run")
                                      : vr.hazards().front().str();
    } else if (!replay_buffers_match(*bw.mem, *vw.mem, bw.launch.args,
                                     opt_.f32_abs_tol, opt_.f32_rel_tol,
                                     &evidence)) {
      // evidence filled by the comparator
    } else {
      return false;  // did not reproduce
    }
    cert.verdict = Verdict::kRefuted;
    cert.counterexample_seed = seed;
    cert.detail = sym_why + "; replay: " + evidence;
    return true;
  };

  // Symbolic environments mirror the probe workload; the variant adds
  // its re-homed scratch buffers.
  std::vector<sim::SymArg> bargs;
  for (std::size_t i = 0; i < probe.launch.args.size(); ++i) {
    sim::SymArg a;
    if (const auto* id = std::get_if<sim::BufferId>(&probe.launch.args[i])) {
      const sim::DeviceBuffer& buf = probe.mem->buffer(*id);
      a.type = buf.type();
      a.elems = static_cast<std::int64_t>(buf.size());
      if (buf.type() == ir::ScalarType::kFloat) {
        a.kind = sim::SymArg::Kind::kBufferSymbolic;
      } else {
        a.kind = sim::SymArg::Kind::kBufferConcrete;
        auto iv = buf.i32();
        a.ints.assign(iv.begin(), iv.end());
      }
    } else {
      const auto& v = std::get<sim::Value>(probe.launch.args[i]);
      if (v.is_float()) {
        a.kind = sim::SymArg::Kind::kScalarSymbolic;
        a.type = ir::ScalarType::kFloat;
      } else {
        a.kind = sim::SymArg::Kind::kScalarConcrete;
        a.type = ir::ScalarType::kInt;
        a.scalar = v;
      }
    }
    bargs.push_back(std::move(a));
  }
  std::vector<sim::SymArg> vargs = bargs;
  for (const auto& extra : variant.extra_buffers) {
    sim::SymArg a;
    a.kind = sim::SymArg::Kind::kBufferScratch;
    a.type = extra.type;
    a.elems = extra.elems_per_block * grid.count();
    vargs.push_back(a);
  }

  sim::SymExecOptions sopt;
  sopt.max_steps = opt_.max_steps;
  sopt.max_gather_cells = opt_.max_gather_cells;
  sopt.max_nodes = opt_.max_nodes;
  sim::SymArena arena;

  sim::SymExecResult base =
      sim::sym_execute(kernel, grid, block, bargs, arena, sopt);
  if (!base.ok) return inconclusive("baseline: " + base.reason);

  sim::SymExecResult var = sim::sym_execute(*variant.kernel, grid,
                                            variant.block_dims, vargs, arena,
                                            sopt);
  if (!var.ok) {
    // A deterministic fault unique to the variant (OOB store, div by
    // zero, warp-level barrier divergence) refutes it — if the
    // interpreter agrees.
    if (var.fault &&
        confirm_refute(0, "variant faults symbolically: " + var.reason))
      return cert;
    return inconclusive("variant: " + var.reason);
  }
  // Cross-warp same-epoch accesses have a deterministic order under the
  // simulator's lockstep contract (NP handoffs rely on it; see
  // SanitizerEngine::RaceMode), so they annotate the certificate
  // instead of gating the verdict.
  std::string note;
  if (!base.races.empty() || !var.races.empty()) {
    const auto& first =
        var.races.empty() ? base.races.front() : var.races.front();
    note = "; note: " + std::to_string(base.races.size() + var.races.size()) +
           " lockstep-ordered cross-warp handoff(s) (portable-model race: " +
           first.message + ")";
  }

  // Per-output-element comparison over the baseline-visible buffers.
  bool all_raw_equal = true;
  bool all_norm_equal = true;
  bool float_reassoc = false;
  std::vector<DiffCell> diffs;
  try {
    for (std::size_t i = 0; i < bargs.size(); ++i) {
      const auto& bb = base.buffers[i];
      const auto& vv = var.buffers[i];
      if (bb.size() != vv.size())
        return inconclusive("output buffer shapes differ");
      bool is_float = kernel.params[i].type.scalar == ir::ScalarType::kFloat;
      for (std::size_t e = 0; e < bb.size(); ++e) {
        if (bb[e] == vv[e]) continue;
        if (static_cast<std::int64_t>(arena.size()) > opt_.max_nodes)
          return inconclusive("normalization expression budget of " +
                              std::to_string(opt_.max_nodes) +
                              " nodes exhausted");
        all_raw_equal = false;
        std::uint32_t nb = arena.normalize(bb[e]);
        std::uint32_t nv = arena.normalize(vv[e]);
        if (nb == nv) {
          if (is_float) float_reassoc = true;
          continue;
        }
        all_norm_equal = false;
        if (diffs.size() < 64)
          diffs.push_back(DiffCell{static_cast<int>(i), e, bb[e], vv[e],
                                   is_float});
      }
    }
  } catch (const sim::SymFault& f) {
    return inconclusive("normalization faulted: " + f.message);
  }

  if (all_raw_equal) {
    cert.verdict = Verdict::kProven;
    cert.detail = note.empty() ? "" : note.substr(2);  // drop "; "
    return cert;
  }
  if (all_norm_equal) {
    cert.verdict =
        float_reassoc ? Verdict::kProvenModuloReassoc : Verdict::kProven;
    cert.detail = note.empty() ? "" : note.substr(2);
    return cert;
  }

  // Normalized expressions differ: hunt for a concrete environment where
  // the values differ beyond tolerance, then make it reproduce.
  for (int attempt = 1; attempt <= opt_.counterexample_attempts; ++attempt) {
    auto seed = static_cast<std::uint64_t>(attempt);
    sim::SymEvaluator ev(arena, seed);
    for (const auto& d : diffs) {
      sim::Value a, b;
      if (!ev.eval(d.base_id, &a) || !ev.eval(d.var_id, &b)) continue;
      bool mismatch =
          d.is_float
              ? !floats_close(static_cast<float>(a.as_f()),
                              static_cast<float>(b.as_f()), opt_.f32_abs_tol,
                              opt_.f32_rel_tol)
              : a.as_i() != b.as_i();
      if (!mismatch) continue;
      std::ostringstream why;
      why << "output " << cell_name(kernel, d) << " differs: baseline "
          << arena.str(d.base_id, 4) << " = "
          << (d.is_float ? a.as_f() : static_cast<double>(a.as_i()))
          << ", variant " << arena.str(d.var_id, 4) << " = "
          << (d.is_float ? b.as_f() : static_cast<double>(b.as_i()));
      if (confirm_refute(seed, why.str())) return cert;
    }
  }
  return inconclusive(
      "normalized outputs differ at " + std::to_string(diffs.size()) +
      " cell(s) (e.g. " + cell_name(kernel, diffs.front()) +
      ") but no counterexample reproduced through the interpreter");
}

}  // namespace cudanp::np
