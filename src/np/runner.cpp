#include "np/runner.hpp"

namespace cudanp::np {

sim::RunResult Runner::run(const ir::Kernel& kernel,
                           Workload& workload) const {
  auto res = analysis::estimate_resources(kernel, spec_);
  return sim::run_and_time(spec_, *workload.mem, kernel, workload.launch,
                           res.usage, opt_);
}

sim::RunResult Runner::run_variant(const transform::TransformResult& variant,
                                   Workload& workload) const {
  sim::LaunchConfig cfg = workload.launch;
  cfg.block = variant.block_dims;
  for (const auto& extra : variant.extra_buffers) {
    std::size_t elems = static_cast<std::size_t>(extra.elems_per_block) *
                        static_cast<std::size_t>(cfg.grid.count());
    cfg.args.push_back(workload.mem->alloc(extra.type, elems));
  }
  auto res = analysis::estimate_resources(*variant.kernel, spec_);
  return sim::run_and_time(spec_, *workload.mem, *variant.kernel, cfg,
                           res.usage, opt_);
}

}  // namespace cudanp::np
