#include "np/runner.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace cudanp::np {

namespace {

/// Builds the variant launch config: block dims swapped, extra buffers
/// for globally re-homed local arrays allocated and appended.
sim::LaunchConfig variant_config(
    const transform::TransformResult& variant, Workload& workload,
    std::vector<std::pair<sim::BufferId, std::size_t>>* extras) {
  sim::LaunchConfig cfg = workload.launch;
  cfg.block = variant.block_dims;
  for (const auto& extra : variant.extra_buffers) {
    std::size_t elems = static_cast<std::size_t>(extra.elems_per_block) *
                        static_cast<std::size_t>(cfg.grid.count());
    sim::BufferId id = workload.mem->alloc(extra.type, elems);
    if (extras) extras->emplace_back(id, elems);
    cfg.args.push_back(id);
  }
  return cfg;
}

/// Returns variant scratch buffers to the workload's free pool once the
/// run is over; a later variant of the same shape reuses them instead of
/// growing device memory for every (variant, config) pair an autotuner
/// sweep tries.
void release_extras(
    Workload& workload,
    const std::vector<std::pair<sim::BufferId, std::size_t>>& extras) {
  for (const auto& [id, elems] : extras) {
    (void)elems;
    workload.mem->release(id);
  }
}

/// Records a launch-scoped failure (invalid launch geometry, zero
/// occupancy, bad arguments, a watchdog trip that escaped as an
/// exception) as a structured hazard so sanitized callers always get a
/// report instead of an exception. sim::validate_launch produces the
/// "invalid launch: ..." messages recorded here.
void record_launch_fault(sim::SanitizerEngine& engine,
                         const std::string& kernel, const char* what,
                         sim::HazardKind kind = sim::HazardKind::kSimFault,
                         SourceLoc loc = {}) {
  sim::HazardReport r;
  r.kind = kind;
  r.kernel = kernel;
  r.loc = loc;
  r.message = what;
  try {
    engine.report(std::move(r));
  } catch (const sim::HazardLimitReached&) {
    // Already at the limit; the fault still made it into the report list
    // or was deduplicated — either way there is nothing left to run.
  }
}

}  // namespace

ExecutionResult Runner::execute(const ExecutionRequest& req) const {
  if ((req.kernel != nullptr) == (req.variant != nullptr))
    throw SimError(
        "ExecutionRequest needs exactly one of kernel (baseline) or variant");
  if (req.workload == nullptr)
    throw SimError("ExecutionRequest needs a workload");
  Workload& workload = *req.workload;
  const ir::Kernel& kernel = req.variant ? *req.variant->kernel : *req.kernel;

  std::vector<std::pair<sim::BufferId, std::size_t>> extras;
  sim::LaunchConfig cfg = req.variant
                              ? variant_config(*req.variant, workload, &extras)
                              : workload.launch;

  ExecutionResult out;
  sim::Interpreter::Options iopt = opt_;
  if (req.engine) iopt.engine = *req.engine;
  if (req.limits) iopt.limits = *req.limits;
  if (req.jobs) iopt.jobs = *req.jobs;
  if (req.fault) iopt.fault = req.fault;
  if (req.sanitize) {
    out.engine = sim::SanitizerEngine(req.sanitizer_options);
    // Extra buffers are device scratch: the kernel must write an element
    // before reading it back.
    for (const auto& [id, elems] : extras)
      out.engine.mark_buffer_uninitialized(id, elems);
    iopt.sanitizer = &out.engine;
  }

  auto res = analysis::estimate_resources(kernel, spec_);
  try {
    out.run = sim::run_and_time(spec_, *workload.mem, kernel, cfg, res.usage,
                                iopt);
    out.ran = true;
  } catch (const sim::WatchdogError& e) {
    if (!req.sanitize) {
      release_extras(workload, extras);
      throw;
    }
    record_launch_fault(out.engine, kernel.name, e.what(),
                        sim::HazardKind::kWatchdogTrip, e.loc());
  } catch (const SimError& e) {
    if (!req.sanitize) {
      release_extras(workload, extras);
      throw;
    }
    record_launch_fault(out.engine, kernel.name, e.what());
  } catch (...) {
    release_extras(workload, extras);
    throw;
  }
  release_extras(workload, extras);
  return out;
}

Workload make_synthetic_workload(const ir::Kernel& kernel, int n, int tb) {
  Workload w;
  SplitMix64 rng(0x5eedu);
  std::size_t buf_elems =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  for (const auto& p : kernel.params) {
    if (p.type.is_pointer) {
      sim::BufferId id = w.mem->alloc(p.type.scalar, buf_elems);
      auto& buf = w.mem->buffer(id);
      if (p.type.scalar == ir::ScalarType::kFloat) {
        for (auto& v : buf.f32()) v = rng.next_float(-1.f, 1.f);
      } else {
        for (auto& v : buf.i32())
          v = static_cast<std::int32_t>(rng.next_below(7));
      }
      w.launch.args.push_back(id);
    } else if (p.type.scalar == ir::ScalarType::kFloat) {
      w.launch.args.push_back(sim::LaunchConfig::scalar_float(1.0));
    } else {
      w.launch.args.push_back(sim::LaunchConfig::scalar_int(n));
    }
  }
  w.launch.block = {tb, 1, 1};
  w.launch.grid = {std::max(1, (n + tb - 1) / tb), 1, 1};
  return w;
}

}  // namespace cudanp::np
