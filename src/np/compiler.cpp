#include "np/compiler.hpp"

#include "frontend/parser.hpp"

namespace cudanp::np {

using transform::NpConfig;

std::unique_ptr<ir::Program> NpCompiler::parse(const std::string& source) {
  return frontend::parse_program_or_throw(source);
}

namespace {

/// Reads tuning hints from the kernel's first annotated loop.
struct PragmaHints {
  int num_threads = 0;
  ir::NpType np_type = ir::NpType::kAuto;
  int sm_version = 30;
};

PragmaHints collect_hints(const ir::Kernel& k) {
  PragmaHints h;
  bool first = true;
  ir::for_each_stmt(*k.body, [&](const ir::Stmt& s) {
    if (s.kind() != ir::StmtKind::kFor) return;
    const auto& f = static_cast<const ir::ForStmt&>(s);
    if (!f.pragma || !first) return;
    first = false;
    h.num_threads = f.pragma->num_threads;
    h.np_type = f.pragma->np_type;
    h.sm_version = f.pragma->sm_version;
  });
  return h;
}

}  // namespace

std::vector<NpConfig> NpCompiler::enumerate_configs(
    const ir::Kernel& kernel, int master_count, const sim::DeviceSpec& spec) {
  PragmaHints hints = collect_hints(kernel);
  std::vector<NpConfig> out;
  const int sm = std::min(hints.sm_version, spec.sm_version);
  for (ir::NpType type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
    if (hints.np_type != ir::NpType::kAuto && hints.np_type != type) continue;
    for (int s : {2, 4, 8, 16, 32}) {
      if (hints.num_threads > 0 && s != hints.num_threads) continue;
      if (master_count * s > spec.max_threads_per_block) continue;
      if (type == ir::NpType::kIntraWarp && 32 % s != 0) continue;
      NpConfig cfg;
      cfg.np_type = type;
      cfg.slave_size = s;
      cfg.master_count = master_count;
      cfg.sm_version = sm;
      cfg.use_shfl = sm >= 30;
      out.push_back(cfg);
    }
  }
  return out;
}

transform::TransformResult NpCompiler::transform(
    const ir::Kernel& kernel, const transform::NpConfig& config) {
  cudanp::DiagnosticEngine diags;
  return transform::apply_np_transform(kernel, config, diags);
}

}  // namespace cudanp::np
