#include "np/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <utility>

#include "frontend/parser.hpp"
#include "np/heuristic.hpp"
#include "np/runner.hpp"
#include "support/json.hpp"

namespace cudanp::np {

using transform::NpConfig;

std::unique_ptr<ir::Program> NpCompiler::parse(const std::string& source) {
  return frontend::parse_program_or_throw(source);
}

namespace {

/// Reads tuning hints from the kernel's first annotated loop.
struct PragmaHints {
  int num_threads = 0;
  ir::NpType np_type = ir::NpType::kAuto;
  int sm_version = 30;
};

PragmaHints collect_hints(const ir::Kernel& k) {
  PragmaHints h;
  bool first = true;
  ir::for_each_stmt(*k.body, [&](const ir::Stmt& s) {
    if (s.kind() != ir::StmtKind::kFor) return;
    const auto& f = static_cast<const ir::ForStmt&>(s);
    if (!f.pragma || !first) return;
    first = false;
    h.num_threads = f.pragma->num_threads;
    h.np_type = f.pragma->np_type;
    h.sm_version = f.pragma->sm_version;
  });
  return h;
}

}  // namespace

std::vector<NpConfig> NpCompiler::enumerate_configs(
    const ir::Kernel& kernel, int master_count, const sim::DeviceSpec& spec) {
  PragmaHints hints = collect_hints(kernel);
  std::vector<NpConfig> out;
  const int sm = std::min(hints.sm_version, spec.sm_version);
  for (ir::NpType type : {ir::NpType::kInterWarp, ir::NpType::kIntraWarp}) {
    if (hints.np_type != ir::NpType::kAuto && hints.np_type != type) continue;
    for (int s : {2, 4, 8, 16, 32}) {
      if (hints.num_threads > 0 && s != hints.num_threads) continue;
      if (master_count * s > spec.max_threads_per_block) continue;
      if (type == ir::NpType::kIntraWarp && 32 % s != 0) continue;
      NpConfig cfg;
      cfg.np_type = type;
      cfg.slave_size = s;
      cfg.master_count = master_count;
      cfg.sm_version = sm;
      cfg.use_shfl = sm >= 30;
      out.push_back(cfg);
    }
  }
  return out;
}

transform::TransformResult NpCompiler::transform(
    const ir::Kernel& kernel, const transform::NpConfig& config) {
  cudanp::DiagnosticEngine diags;
  return transform::apply_np_transform(kernel, config, diags);
}

bool floats_close(float ref, float got, double abs_tol, double rel_tol) {
  if (std::isnan(ref) && std::isnan(got)) return true;
  double scale = std::max(std::fabs(static_cast<double>(ref)),
                          std::fabs(static_cast<double>(got)));
  return std::fabs(static_cast<double>(ref) - static_cast<double>(got)) <=
         abs_tol + rel_tol * scale;
}

namespace {

/// Compares every buffer argument of the baseline launch against the same
/// buffer in the variant's memory. Workloads come from the same factory, so
/// equal allocation order yields equal BufferIds; the variant's extra
/// scratch buffers are appended afterwards and never compared.
bool buffers_match(const sim::DeviceMemory& ref, const sim::DeviceMemory& got,
                   const std::vector<sim::KernelArg>& args, double abs_tol,
                   double rel_tol, std::string* msg) {
  for (const auto& arg : args) {
    const auto* id = std::get_if<sim::BufferId>(&arg);
    if (!id) continue;
    const sim::DeviceBuffer& rb = ref.buffer(*id);
    const sim::DeviceBuffer& gb = got.buffer(*id);
    if (rb.size() != gb.size() || rb.type() != gb.type()) {
      if (msg) {
        std::ostringstream os;
        os << "buffer " << *id << " shape differs (ref " << rb.size()
           << " elems, variant " << gb.size() << ")";
        *msg = os.str();
      }
      return false;
    }
    if (rb.type() == ir::ScalarType::kFloat) {
      auto r = rb.f32();
      auto g = gb.f32();
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (floats_close(r[i], g[i], abs_tol, rel_tol)) continue;
        if (msg) {
          std::ostringstream os;
          os << "buffer " << *id << " element " << i << ": baseline " << r[i]
             << ", variant " << g[i];
          *msg = os.str();
        }
        return false;
      }
    } else {
      auto r = rb.i32();
      auto g = gb.i32();
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (r[i] == g[i]) continue;
        if (msg) {
          std::ostringstream os;
          os << "buffer " << *id << " element " << i << ": baseline " << r[i]
             << ", variant " << g[i];
          *msg = os.str();
        }
        return false;
      }
    }
  }
  return true;
}

/// Certifies `variant`, going through the provider cache when bound.
/// Tolerances and interpreter knobs are inherited from the validation
/// options so the certifier and the empirical legs agree on what
/// "equal" means.
Certificate certify_with_cache(const ir::Kernel& kernel,
                               const transform::TransformResult& variant,
                               const sim::DeviceSpec& spec,
                               const ValidationOptions& opt,
                               const WorkloadFactory& make_workload) {
  const std::string config = variant.config.describe();
  if (opt.certificates.load) {
    if (auto cached = opt.certificates.load(config)) return *cached;
  }
  CertifyOptions copt = opt.certify_opts;
  copt.f32_rel_tol = opt.f32_rel_tol;
  copt.f32_abs_tol = opt.f32_abs_tol;
  copt.interp = opt.interp;
  Certificate cert =
      Certifier(spec, copt).certify_variant(kernel, variant, make_workload);
  if (opt.certificates.save) opt.certificates.save(cert);
  return cert;
}

}  // namespace

bool ValidationReport::all_clean() const {
  if (!baseline_ran || !baseline_hazards.empty()) return false;
  for (const auto& e : entries)
    if (!e.clean()) return false;
  return true;
}

std::size_t ValidationReport::hazard_count() const {
  std::size_t n = baseline_hazards.size();
  for (const auto& e : entries) n += e.hazards.size();
  return n;
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "baseline: ";
  if (!baseline_ran)
    os << "FAILED to run\n";
  else if (!baseline_hazards.empty())
    os << baseline_hazards.size() << " hazard(s)\n";
  else
    os << "clean [" << baseline_wall_ms << " ms]\n";
  for (const auto& r : baseline_hazards) os << "  " << r.str() << "\n";
  std::size_t checked = 0;
  for (const auto& e : entries) {
    os << e.config << ": ";
    if (!e.transform_ok) {
      os << "not applicable (" << e.transform_error << ")\n";
      continue;
    }
    ++checked;
    if (!e.ran)
      os << "FAILED to run";
    else if (!e.hazards.empty())
      os << e.hazards.size() << " hazard(s)";
    else if (!e.outputs_match)
      os << "OUTPUT MISMATCH: " << e.mismatch;
    else
      os << "clean, outputs match [" << e.wall_ms << " ms]";
    if (!e.verdict.empty()) {
      os << " | certified: " << e.verdict;
      if (!e.verdict_detail.empty()) os << " (" << e.verdict_detail << ")";
    }
    os << "\n";
    for (const auto& r : e.hazards) os << "  " << r.str() << "\n";
    if (e.ran && e.hazards.empty() && !e.outputs_match && !e.mismatch.empty())
      os << "  " << e.mismatch << "\n";
  }
  os << "validated " << checked << " of " << entries.size()
     << " configuration(s): " << (all_clean() ? "PASS" : "FAIL");
  return os.str();
}

const char* to_string(FailureCause c) {
  switch (c) {
    case FailureCause::kTransformError: return "transform-error";
    case FailureCause::kLaunchError: return "launch-error";
    case FailureCause::kWatchdogTrip: return "watchdog-trip";
    case FailureCause::kHazards: return "hazards";
    case FailureCause::kOutputMismatch: return "output-mismatch";
    case FailureCause::kRunError: return "run-error";
    case FailureCause::kCrash: return "crash";
    case FailureCause::kResourceLimit: return "resource-limit";
    case FailureCause::kProvenWrong: return "proven-wrong";
  }
  return "unknown";
}

std::optional<FailureCause> failure_cause_from_string(std::string_view s) {
  for (FailureCause c :
       {FailureCause::kTransformError, FailureCause::kLaunchError,
        FailureCause::kWatchdogTrip, FailureCause::kHazards,
        FailureCause::kOutputMismatch, FailureCause::kRunError,
        FailureCause::kCrash, FailureCause::kResourceLimit,
        FailureCause::kProvenWrong})
    if (s == to_string(c)) return c;
  return std::nullopt;
}

bool transient(FailureCause c) {
  // A worker crash is transient like a run error: the crash may be
  // load- or timing-dependent, so the retry loop gets a chance before
  // the job degrades. A resource-limit kill is deterministic for a
  // given cap and never retried (but still feeds the breaker). A
  // proven-wrong variant carries a replayable counterexample — the most
  // permanent quarantine of all.
  return c == FailureCause::kWatchdogTrip || c == FailureCause::kRunError ||
         c == FailureCause::kCrash;
}

namespace {

std::string json_escape(const std::string& s) { return json::escape(s); }

}  // namespace

std::string VariantFailure::str() const {
  std::ostringstream os;
  os << "quarantined '" << config << "' of kernel '" << kernel
     << "': " << to_string(cause);
  if (hazard_count > 0) os << " (" << hazard_count << " hazard(s))";
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string VariantFailure::json() const {
  std::ostringstream os;
  os << "{\"kernel\":\"" << json_escape(kernel) << "\",\"config\":\""
     << json_escape(config) << "\",\"cause\":\"" << to_string(cause)
     << "\",\"hazards\":" << hazard_count << ",\"detail\":\""
     << json_escape(detail) << "\"}";
  return os.str();
}

std::string FallbackDecision::summary() const {
  std::ostringstream os;
  for (const auto& q : quarantined) os << q.str() << "\n";
  if (used_baseline)
    os << "kernel '" << kernel << "': all " << quarantined.size()
       << " candidate(s) quarantined, falling back to the baseline kernel";
  else
    os << "kernel '" << kernel << "': chose '" << chosen_config << "' ("
       << quarantined.size() << " candidate(s) quarantined on the way)";
  return os.str();
}

std::string FallbackDecision::json() const {
  std::ostringstream os;
  os << "{\"kernel\":\"" << json_escape(kernel) << "\",\"used_baseline\":"
     << (used_baseline ? "true" : "false") << ",\"chosen_config\":\""
     << json_escape(chosen_config) << "\",\"first_choice\":\""
     << json_escape(first_choice) << "\",\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    if (i) os << ",";
    os << quarantined[i].json();
  }
  os << "]}";
  return os.str();
}

std::optional<VariantFailure> VariantFailure::from_json_value(
    const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  VariantFailure f;
  f.kernel = v.get_str("kernel");
  f.config = v.get_str("config");
  auto cause = failure_cause_from_string(v.get_str("cause"));
  if (!cause) return std::nullopt;
  f.cause = *cause;
  f.hazard_count = static_cast<std::size_t>(v.get_i64("hazards"));
  f.detail = v.get_str("detail");
  return f;
}

std::optional<VariantFailure> VariantFailure::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

std::optional<FallbackDecision> FallbackDecision::from_json_value(
    const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  FallbackDecision d;
  d.kernel = v.get_str("kernel");
  d.used_baseline = v.get_bool("used_baseline", true);
  d.chosen_config = v.get_str("chosen_config");
  d.first_choice = v.get_str("first_choice");
  const json::Value* q = v.find("quarantined");
  if (q) {
    if (!q->is_array()) return std::nullopt;
    for (const auto& item : q->arr()) {
      auto f = VariantFailure::from_json_value(item);
      if (!f) return std::nullopt;
      d.quarantined.push_back(std::move(*f));
    }
  }
  return d;
}

std::optional<FallbackDecision> FallbackDecision::from_json(
    std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

FallbackResult NpCompiler::compile_with_fallback(
    const ir::Kernel& kernel, const std::vector<transform::NpConfig>& configs,
    const WorkloadFactory& make_workload, const sim::DeviceSpec& spec,
    const ValidationOptions& opt) {
  FallbackResult out;
  out.decision.kernel = kernel.name;
  Runner runner(spec, opt.interp);

  auto classify = [](const ExecutionResult& run, VariantFailure* f) {
    if (!run.ran) {
      f->cause = FailureCause::kLaunchError;
      if (!run.engine.reports().empty())
        f->detail = run.engine.reports().back().message;
      return;
    }
    const auto& reports = run.engine.reports();
    f->hazard_count = reports.size();
    bool all_sim_faults = !reports.empty();
    for (const auto& r : reports) {
      if (r.kind == sim::HazardKind::kWatchdogTrip) {
        f->cause = FailureCause::kWatchdogTrip;
        f->detail = r.message;
        return;
      }
      if (r.kind != sim::HazardKind::kSimFault) all_sim_faults = false;
    }
    // Only contained SimErrors (injected faults, OOB aborts) and no
    // genuine hazards: a run error, which retry policies treat as
    // potentially transient — unlike races/uninit reads, which are
    // deterministic properties of the variant.
    f->cause =
        all_sim_faults ? FailureCause::kRunError : FailureCause::kHazards;
    if (!reports.empty()) f->detail = reports.front().str();
  };

  // The baseline is the reference for output cross-checks and the final
  // fallback. If it misbehaves itself there is nothing better to offer,
  // so that failure is recorded and the baseline still returned.
  Workload base = make_workload();
  ExecutionResult base_run = runner.execute(
      ExecutionRequest::baseline(kernel, base).sanitized(opt.sanitizer));
  if (!base_run.clean()) {
    VariantFailure f;
    f.kernel = kernel.name;
    f.config = "baseline";
    classify(base_run, &f);
    out.decision.quarantined.push_back(std::move(f));
    return out;
  }

  // Candidate order: the heuristic's static pick first (next-best choices
  // follow in enumeration order). Duplicates of the heuristic pick are
  // dropped rather than tried twice.
  std::vector<transform::NpConfig> candidates = configs;
  if (candidates.empty())
    candidates = enumerate_configs(
        kernel, static_cast<int>(base.launch.block.count()), spec);
  if (!candidates.empty()) {
    HeuristicChoice pick = suggest_config(
        kernel, static_cast<int>(base.launch.block.count()), spec);
    std::string best = pick.config.describe();
    auto it = std::find_if(candidates.begin(), candidates.end(),
                           [&](const transform::NpConfig& c) {
                             return c.describe() == best;
                           });
    if (it != candidates.end() && it != candidates.begin())
      std::rotate(candidates.begin(), it, it + 1);
    out.decision.first_choice = candidates.front().describe();
  }

  for (const auto& cfg : candidates) {
    VariantFailure f;
    f.kernel = kernel.name;
    f.config = cfg.describe();
    transform::TransformResult variant;
    try {
      variant = transform(kernel, cfg);
    } catch (const CompileError& e) {
      f.cause = FailureCause::kTransformError;
      f.detail = e.what();
      out.decision.quarantined.push_back(std::move(f));
      continue;
    }
    // Third leg: symbolic certification. A refuted variant is proven
    // wrong by a replayable counterexample and never runs at all; a
    // proven one may skip the per-run sanitize + cross-check entirely
    // when the certified fast path is on.
    bool fast_path = false;
    if (opt.certify) {
      Certificate cert = certify_with_cache(kernel, variant, spec, opt, make_workload);
      if (cert.verdict == Verdict::kRefuted) {
        f.cause = FailureCause::kProvenWrong;
        f.detail = cert.detail + " (counterexample seed " +
                   std::to_string(cert.counterexample_seed) + ")";
        out.decision.quarantined.push_back(std::move(f));
        continue;
      }
      fast_path = opt.certified_fast_path && cert.proven();
    }
    Workload w = make_workload();
    if (fast_path) {
      // Unguarded run for raw speed; the watchdog and launch validation
      // still apply, and any escape quarantines the candidate as usual.
      try {
        (void)runner.execute(ExecutionRequest::transformed(variant, w));
      } catch (const sim::WatchdogError& e) {
        f.cause = FailureCause::kWatchdogTrip;
        f.detail = e.what();
        out.decision.quarantined.push_back(std::move(f));
        continue;
      } catch (const SimError& e) {
        f.cause = FailureCause::kRunError;
        f.detail = e.what();
        out.decision.quarantined.push_back(std::move(f));
        continue;
      }
    } else {
      ExecutionResult run = runner.execute(
          ExecutionRequest::transformed(variant, w).sanitized(opt.sanitizer));
      if (!run.clean()) {
        classify(run, &f);
        out.decision.quarantined.push_back(std::move(f));
        continue;
      }
      std::string mismatch;
      if (!buffers_match(*base.mem, *w.mem, base.launch.args, opt.f32_abs_tol,
                         opt.f32_rel_tol, &mismatch)) {
        f.cause = FailureCause::kOutputMismatch;
        f.detail = mismatch;
        out.decision.quarantined.push_back(std::move(f));
        continue;
      }
    }
    out.decision.used_baseline = false;
    out.decision.chosen_config = f.config;
    out.variant = std::move(variant);
    break;
  }
  return out;
}

ValidationReport NpCompiler::validate(
    const ir::Kernel& kernel, const std::vector<transform::NpConfig>& configs,
    const WorkloadFactory& make_workload, const sim::DeviceSpec& spec,
    const ValidationOptions& opt) {
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  ValidationReport report;
  Runner runner(spec, opt.interp);

  Workload base = make_workload();
  auto t0 = Clock::now();
  ExecutionResult base_run = runner.execute(
      ExecutionRequest::baseline(kernel, base).sanitized(opt.sanitizer));
  report.baseline_wall_ms = ms_since(t0);
  report.baseline_ran = base_run.ran;
  report.baseline_hazards = base_run.engine.reports();

  for (const auto& cfg : configs) {
    ValidationEntry entry;
    entry.config = cfg.describe();
    transform::TransformResult variant;
    try {
      variant = transform(kernel, cfg);
      entry.transform_ok = true;
    } catch (const CompileError& e) {
      entry.transform_error = e.what();
      report.entries.push_back(std::move(entry));
      continue;
    }
    if (opt.certify) {
      Certificate cert = certify_with_cache(kernel, variant, spec, opt, make_workload);
      entry.verdict = to_string(cert.verdict);
      entry.verdict_detail = cert.detail;
    }
    Workload w = make_workload();
    auto tv = Clock::now();
    ExecutionResult run = runner.execute(
        ExecutionRequest::transformed(variant, w).sanitized(opt.sanitizer));
    entry.wall_ms = ms_since(tv);
    entry.ran = run.ran;
    entry.hazards = run.engine.reports();
    if (run.ran) {
      entry.outputs_match =
          buffers_match(*base.mem, *w.mem, base.launch.args, opt.f32_abs_tol,
                        opt.f32_rel_tol, &entry.mismatch);
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

std::string NpCompiler::artifact_key(std::string_view source,
                                     std::string_view options_fingerprint) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    // Field separator: "ab" + "c" must hash differently from "a" + "bc".
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
  };
  mix(source);
  mix(options_fingerprint);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace cudanp::np
