// Symbolic equivalence certification of NP variants (the third
// validation leg next to sanitize + output cross-check).
//
// The Certifier runs the baseline kernel and one transformed variant
// through sim/symexec.* on the same symbolic environment (concrete
// geometry and int data, opaque float inputs) and compares the
// per-output-element expression DAGs:
//
//   identical raw DAGs              -> kProven
//   identical after normalization   -> kProven (only int cells differed)
//                                      kProvenModuloReassoc (float cells
//                                      differed only by reassociation /
//                                      commutation — the expected shape
//                                      for NP-combined reductions/scans)
//   normalized DAGs differ          -> search concrete counterexample
//                                      seeds; a mismatch that REPRODUCES
//                                      through the interpreter
//                                      -> kRefuted(seed)
//   anything unsupported, or no
//   reproducible counterexample     -> kInconclusive (empirical checks
//                                      keep the final say)
//
// A refutation is never issued on symbolic evidence alone when
// CertifyOptions::replay_check is set (the default): the concrete
// counterexample environment is replayed through Runner::execute and
// must actually misbehave (hazards, fault, or output mismatch beyond
// the mixed abs/rel tolerance). That makes kRefuted safe to treat as
// non-transient, permanently-quarantining evidence
// (FailureCause::kProvenWrong).
//
// Certificates are plain serializable records so the serve layer can
// store them content-addressed in serve::ArtifactCache and certify each
// (kernel, variant) once per daemon lifetime (see docs/robustness.md,
// "Certification").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "ir/kernel.hpp"
#include "np/workload.hpp"
#include "sim/device.hpp"
#include "sim/interpreter.hpp"
#include "transform/np_config.hpp"
#include "transform/transformer.hpp"

namespace cudanp::json {
class Value;
}

namespace cudanp::np {

enum class Verdict : std::uint8_t {
  /// Per-element output expressions are identical (int-exact; float
  /// cells match bit-for-bit in expression structure).
  kProven,
  /// Equal after reassociation/commutation-aware normalization of float
  /// +, *, min, max chains — equivalent up to float rounding order.
  kProvenModuloReassoc,
  /// A concrete counterexample environment makes baseline and variant
  /// disagree (replayable through the interpreter).
  kRefuted,
  /// Outside the symbolic envelope, or a symbolic mismatch that no
  /// counterexample confirmed: falls back to the empirical checks.
  kInconclusive,
};

[[nodiscard]] const char* to_string(Verdict v);
/// Reverses to_string; nullopt on an unknown slug.
[[nodiscard]] std::optional<Verdict> verdict_from_string(std::string_view s);

/// One certification outcome: first-class, serializable, cacheable.
struct Certificate {
  std::string kernel;
  std::string config;  // NpConfig::describe()
  Verdict verdict = Verdict::kInconclusive;
  /// Why (abort reason, mismatch description, replay evidence).
  std::string detail;
  /// kRefuted: the sym_float_input seed of the counterexample
  /// environment (0 for input-independent faults/races).
  std::uint64_t counterexample_seed = 0;
  /// Proof geometry ("grid X*Y*Z block X*Y*Z"), taken from the probe
  /// workload the proof ran on.
  std::string geometry;

  /// True when the variant may take the certified fast path.
  [[nodiscard]] bool proven() const {
    return verdict == Verdict::kProven ||
           verdict == Verdict::kProvenModuloReassoc;
  }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;
  /// Parses a json() document back; nullopt on malformed input. The
  /// round trip is exact: from_json(x.json())->json() == x.json().
  [[nodiscard]] static std::optional<Certificate> from_json(
      std::string_view text);
  [[nodiscard]] static std::optional<Certificate> from_json_value(
      const json::Value& v);
};

struct CertifyOptions {
  /// Symbolic statement budget across the grid (both runs).
  std::int64_t max_steps = 4'000'000;
  /// Gather expansion cap for loads at symbolic indices.
  std::int64_t max_gather_cells = 4096;
  /// Expression-arena node budget across both runs and normalization;
  /// exceeded -> kInconclusive (bounds certification time and memory).
  std::int64_t max_nodes = 8'000'000;
  /// Concrete float seeds tried when normalized outputs differ.
  int counterexample_attempts = 6;
  /// Require every refutation to reproduce through the interpreter
  /// before it is issued (keep this on: kRefuted feeds permanent
  /// quarantine).
  bool replay_check = true;
  /// Interpreter knobs for replays (jobs, watchdog budget).
  sim::Interpreter::Options interp;
  /// Mixed tolerance for float comparisons in counterexample search and
  /// replay confirmation: |r-g| <= abs + rel*max(|r|,|g|).
  double f32_rel_tol = 1e-3;
  double f32_abs_tol = 1e-4;

  /// Outcome-relevant options as a stable string, for content-addressed
  /// certificate cache keys and journal fingerprints.
  [[nodiscard]] std::string fingerprint() const;
};

/// Cache hooks for certificates, keyed by the caller (the serve layer
/// binds content-addressed ArtifactCache keys in these closures; tests
/// bind plain maps). Either function may be null.
struct CertificateProvider {
  /// Returns the cached certificate for a config describe(), if any.
  std::function<std::optional<Certificate>(const std::string& config)> load;
  /// Persists a freshly computed certificate.
  std::function<void(const Certificate&)> save;
};

class Certifier {
 public:
  explicit Certifier(sim::DeviceSpec spec, CertifyOptions opt = {})
      : spec_(std::move(spec)), opt_(opt) {}

  /// Transforms `kernel` under `config` and certifies the result over
  /// the shape of `make_workload()` (buffer sizes, launch geometry and
  /// int data come from a probe workload; float data stays symbolic).
  /// Transform errors yield kInconclusive (the config is inapplicable,
  /// which the empirical path reports as such).
  [[nodiscard]] Certificate certify(const ir::Kernel& kernel,
                                    const transform::NpConfig& config,
                                    const WorkloadFactory& make_workload) const;

  /// Certifies an already-transformed variant against its baseline.
  [[nodiscard]] Certificate certify_variant(
      const ir::Kernel& kernel, const transform::TransformResult& variant,
      const WorkloadFactory& make_workload) const;

  [[nodiscard]] const CertifyOptions& options() const { return opt_; }

 private:
  sim::DeviceSpec spec_;
  CertifyOptions opt_;
};

/// Overwrites the float content of `w` with the certifier's concrete
/// input assignment for `seed`: float buffer element e of launch arg i
/// becomes sim::sym_float_input(seed, i, e) and float scalar args become
/// sym_float_input(seed, i, -1); int buffers and scalars are untouched
/// (they were concrete in the proof environment already). This is how
/// counterexamples replay through the interpreter byte-for-byte against
/// the symbolic evaluation.
void seed_certify_floats(Workload& w, std::uint64_t seed);

}  // namespace cudanp::np
