#include "np/autotuner.hpp"

#include "support/diagnostics.hpp"

namespace cudanp::np {

TuneResult Autotuner::tune(const ir::Kernel& kernel,
                           const WorkloadFactory& make_workload,
                           const TuneOptions& options) const {
  TuneResult result;

  // Baseline.
  {
    Workload w = make_workload();
    auto run = runner_.execute(ExecutionRequest::baseline(kernel, w)).run;
    result.baseline_seconds = run.timing.seconds;
    result.baseline_occupancy = run.occupancy;
    result.baseline_stats = run.stats;
    if (options.validate && w.validate) {
      std::string msg;
      if (!w.validate(*w.mem, &msg))
        throw SimError("baseline kernel '" + kernel.name +
                       "' failed validation: " + msg);
    }
  }

  std::vector<transform::NpConfig> configs = options.configs;
  if (configs.empty()) {
    Workload probe = make_workload();
    configs = NpCompiler::enumerate_configs(
        kernel, static_cast<int>(probe.launch.block.count()),
        runner_.spec());
  }

  auto quarantine = [&](const transform::NpConfig& cfg, FailureCause cause,
                        std::string detail) {
    VariantFailure f;
    f.kernel = kernel.name;
    f.config = cfg.describe();
    f.cause = cause;
    f.detail = std::move(detail);
    result.failures.push_back(std::move(f));
  };

  for (const auto& cfg : configs) {
    TuneEntry entry;
    entry.config = cfg;
    try {
      auto variant = NpCompiler::transform(kernel, cfg);
      Workload w = make_workload();
      auto run =
          runner_.execute(ExecutionRequest::transformed(variant, w)).run;
      if (options.validate && w.validate) {
        std::string msg;
        if (!w.validate(*w.mem, &msg)) {
          entry.note = "validation failed: " + msg;
          quarantine(cfg, FailureCause::kOutputMismatch, msg);
          result.entries.push_back(std::move(entry));
          continue;
        }
      }
      entry.ok = true;
      entry.seconds = run.timing.seconds;
      entry.occupancy = run.occupancy;
      entry.timing = run.timing;
      entry.stats = run.stats;
      for (const auto& [arr, placement] : variant.placements)
        entry.note += arr + "->" + transform::to_string(placement) + " ";
    } catch (const CompileError& e) {
      entry.note = std::string("transform failed: ") + e.what();
      quarantine(cfg, FailureCause::kTransformError, e.what());
    } catch (const sim::WatchdogError& e) {
      entry.note = std::string("watchdog tripped: ") + e.what();
      quarantine(cfg, FailureCause::kWatchdogTrip, e.what());
    } catch (const SimError& e) {
      entry.note = std::string("run failed: ") + e.what();
      quarantine(cfg, FailureCause::kRunError, e.what());
    }
    result.entries.push_back(std::move(entry));
  }

  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    if (!result.entries[i].ok) continue;
    if (result.best < 0 ||
        result.entries[i].seconds <
            result.entries[static_cast<std::size_t>(result.best)].seconds)
      result.best = static_cast<int>(i);
  }
  return result;
}

}  // namespace cudanp::np
