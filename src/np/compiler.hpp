// Public facade of the CUDA-NP source-to-source compiler.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto program = np::NpCompiler::parse(kernel_source);
//   const ir::Kernel* k = program->find_kernel("tmv");
//   auto configs = np::NpCompiler::enumerate_configs(*k, /*tb=*/32, spec);
//   auto variant = np::NpCompiler::transform(*k, configs[0]);
//   std::string cuda_text = ir::print_kernel(*variant.kernel);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/device.hpp"
#include "transform/np_config.hpp"
#include "transform/transformer.hpp"

namespace cudanp::np {

class NpCompiler {
 public:
  /// Parses kernel source (throws CompileError with diagnostics on error).
  [[nodiscard]] static std::unique_ptr<ir::Program> parse(
      const std::string& source);

  /// Enumerates the candidate configurations the auto-tuner will try for
  /// `kernel` with baseline block size `master_count`, honoring pragma
  /// hints (num_threads, np_type, sm_version — paper Sec. 3.6):
  ///   inter-warp: slave_size in {2,4,8,16,32} with tb <= 1024
  ///   intra-warp: slave_size in {2,4,8,16,32} (power of two)
  [[nodiscard]] static std::vector<transform::NpConfig> enumerate_configs(
      const ir::Kernel& kernel, int master_count,
      const sim::DeviceSpec& spec);

  /// Applies the NP transformation for one configuration.
  [[nodiscard]] static transform::TransformResult transform(
      const ir::Kernel& kernel, const transform::NpConfig& config);
};

}  // namespace cudanp::np
