// Public facade of the CUDA-NP source-to-source compiler.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto program = np::NpCompiler::parse(kernel_source);
//   const ir::Kernel* k = program->find_kernel("tmv");
//   auto configs = np::NpCompiler::enumerate_configs(*k, /*tb=*/32, spec);
//   auto variant = np::NpCompiler::transform(*k, configs[0]);
//   std::string cuda_text = ir::print_kernel(*variant.kernel);
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/kernel.hpp"
#include "np/certifier.hpp"
#include "np/workload.hpp"
#include "sim/device.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "transform/np_config.hpp"
#include "transform/transformer.hpp"

namespace cudanp::json {
class Value;
}

namespace cudanp::np {

/// Outcome of validating one transformed variant (NpCompiler::validate).
struct ValidationEntry {
  std::string config;
  /// False when the configuration is legitimately inapplicable to the
  /// kernel (the transform threw CompileError); such entries are recorded
  /// but never fail validation.
  bool transform_ok = false;
  std::string transform_error;
  bool ran = false;
  bool outputs_match = false;
  std::string mismatch;
  std::vector<sim::HazardReport> hazards;
  /// Host wall-clock of this variant's sanitized simulation (transform
  /// excluded); 0 when the transform was inapplicable.
  double wall_ms = 0.0;
  /// Certification verdict slug when ValidationOptions::certify is set
  /// (empty otherwise); see np::Verdict.
  std::string verdict;
  std::string verdict_detail;

  [[nodiscard]] bool clean() const {
    return !transform_ok || (ran && hazards.empty() && outputs_match &&
                             verdict != "refuted");
  }
};

struct ValidationReport {
  bool baseline_ran = false;
  std::vector<sim::HazardReport> baseline_hazards;
  /// Host wall-clock of the baseline's sanitized simulation.
  double baseline_wall_ms = 0.0;
  std::vector<ValidationEntry> entries;

  [[nodiscard]] bool all_clean() const;
  [[nodiscard]] std::size_t hazard_count() const;
  [[nodiscard]] std::string summary() const;
};

struct ValidationOptions {
  sim::SanitizerEngine::Options sanitizer;
  /// Interpreter knobs for every validation run — most usefully `jobs`,
  /// which simulates thread blocks on a host thread pool (results are
  /// bit-identical at any job count; see docs/performance.md), and
  /// `max_steps_per_block`, the watchdog budget a runaway variant trips.
  sim::Interpreter::Options interp;
  /// Mixed tolerance for float buffer cross-checks (NP reductions
  /// reassociate, so bit-exact equality is too strict):
  /// |ref-got| <= f32_abs_tol + f32_rel_tol * max(|ref|, |got|). The
  /// relative term covers large-magnitude outputs, the absolute term
  /// tiny ones where relative error is meaningless.
  double f32_rel_tol = 1e-3;
  double f32_abs_tol = 1e-4;
  /// Third validation leg: symbolically certify every variant (see
  /// np/certifier.hpp). A kRefuted verdict fails the entry / quarantines
  /// the candidate as FailureCause::kProvenWrong before it ever runs.
  bool certify = false;
  /// Knobs for the certifier (f32 tolerances and interp are inherited
  /// from this struct at use time and need not be set here).
  CertifyOptions certify_opts;
  /// With certify: variants holding a kProven/kProvenModuloReassoc
  /// certificate skip the per-run sanitize + output cross-check in
  /// compile_with_fallback and run unguarded for raw speed (the
  /// watchdog still applies).
  bool certified_fast_path = false;
  /// Optional certificate cache hooks (the serve layer binds
  /// ArtifactCache here so each (kernel, variant) certifies once).
  CertificateProvider certificates;
};

/// Mixed absolute/relative float comparison used by every output
/// cross-check: |ref-got| <= abs_tol + rel_tol * max(|ref|, |got|).
/// NaN matches NaN (both sides diverging identically is agreement).
[[nodiscard]] bool floats_close(float ref, float got, double abs_tol,
                                double rel_tol);

/// Why a variant was quarantined (see VariantFailure / docs/robustness.md).
enum class FailureCause : std::uint8_t {
  /// The NP transform itself threw CompileError.
  kTransformError,
  /// The launch aborted before any block ran (invalid geometry, zero
  /// occupancy, bad arguments).
  kLaunchError,
  /// The variant exceeded the per-block interpreted-statement budget.
  kWatchdogTrip,
  /// The sanitizer reported hazards (races, barrier divergence, uninit
  /// reads, shfl hazards, contained sim faults).
  kHazards,
  /// The variant ran clean but its output buffers diverged from the
  /// baseline's beyond tolerance.
  kOutputMismatch,
  /// Any other SimError raised while running (autotuner paths).
  kRunError,
  /// The execution worker process died (nonzero exit, signal, wedged
  /// pipe) while running the attempt — only produced by the serve
  /// layer's process-isolation mode (serve/supervisor.*).
  kCrash,
  /// The attempt exceeded a resource cap (allocation failure under the
  /// worker's RLIMIT_AS budget). Deterministic for a given cap, so it is
  /// never retried, but it is breaker-eligible like any other failure.
  kResourceLimit,
  /// The certifier refuted the variant: a concrete counterexample
  /// reproduces a baseline/variant divergence through the interpreter.
  /// Non-transient and permanent — stronger than kOutputMismatch
  /// ("failed here") because it is backed by a replayable proof.
  kProvenWrong,
};

[[nodiscard]] const char* to_string(FailureCause c);

/// Reverses to_string; nullopt on an unknown slug.
[[nodiscard]] std::optional<FailureCause> failure_cause_from_string(
    std::string_view s);

/// True when a failure of this cause is plausibly transient — worth a
/// retry with backoff rather than permanent quarantine. Watchdog trips
/// (the budget may have been deadline-tightened) and contained run
/// errors (injected faults, flaky inputs) qualify; transform errors,
/// hazards, launch errors and output mismatches are deterministic
/// properties of the (kernel, config) pair and will not improve. The
/// serve layer's retry policy is built on this split.
[[nodiscard]] bool transient(FailureCause c);

/// One quarantined variant: the structured record graceful degradation is
/// built on. Serializable both human-readable (str) and machine-readable
/// (json, one object per line in cudanp-cc's fallback report).
struct VariantFailure {
  std::string kernel;
  std::string config;  // NpConfig::describe(), or "baseline"
  FailureCause cause = FailureCause::kRunError;
  /// Error text, first hazard, or mismatch description.
  std::string detail;
  std::size_t hazard_count = 0;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;
  /// Parses a json() document back; nullopt on malformed input. The
  /// round trip is exact: from_json(x.json())->json() == x.json().
  [[nodiscard]] static std::optional<VariantFailure> from_json(
      std::string_view text);
  /// Same, from an already-parsed value (nested inside a larger doc).
  [[nodiscard]] static std::optional<VariantFailure> from_json_value(
      const json::Value& v);
};

/// Outcome of compile_with_fallback: which candidate was chosen and every
/// quarantined variant that was skipped on the way there.
struct FallbackDecision {
  std::string kernel;
  /// True when every candidate was quarantined and the baseline kernel is
  /// the answer (the baseline is always runnable by definition of the
  /// policy — its own failures are recorded too, but it is still
  /// returned).
  bool used_baseline = true;
  /// describe() of the chosen configuration; empty when used_baseline.
  std::string chosen_config;
  /// describe() of the first candidate tried (the heuristic's pick) —
  /// the configuration whose health per-(kernel, variant) circuit
  /// breakers track. Empty when there were no candidates at all.
  std::string first_choice;
  std::vector<VariantFailure> quarantined;

  /// True when the first-choice candidate was chosen with nothing
  /// quarantined — i.e. no degradation happened.
  [[nodiscard]] bool pristine() const {
    return !used_baseline && quarantined.empty();
  }
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string json() const;
  /// Parses a json() document back; nullopt on malformed input. This is
  /// how decisions cross the worker-process boundary in the serve
  /// layer's --isolate=process mode.
  [[nodiscard]] static std::optional<FallbackDecision> from_json(
      std::string_view text);
  /// Same, from an already-parsed value (nested inside a larger doc).
  [[nodiscard]] static std::optional<FallbackDecision> from_json_value(
      const json::Value& v);
};

struct FallbackResult {
  FallbackDecision decision;
  /// Valid only when !decision.used_baseline.
  transform::TransformResult variant;
};

class NpCompiler {
 public:
  /// Parses kernel source (throws CompileError with diagnostics on error).
  [[nodiscard]] static std::unique_ptr<ir::Program> parse(
      const std::string& source);

  /// Enumerates the candidate configurations the auto-tuner will try for
  /// `kernel` with baseline block size `master_count`, honoring pragma
  /// hints (num_threads, np_type, sm_version — paper Sec. 3.6):
  ///   inter-warp: slave_size in {2,4,8,16,32} with tb <= 1024
  ///   intra-warp: slave_size in {2,4,8,16,32} (power of two)
  [[nodiscard]] static std::vector<transform::NpConfig> enumerate_configs(
      const ir::Kernel& kernel, int master_count,
      const sim::DeviceSpec& spec);

  /// Applies the NP transformation for one configuration.
  [[nodiscard]] static transform::TransformResult transform(
      const ir::Kernel& kernel, const transform::NpConfig& config);

  /// Validation mode: runs the baseline kernel and every configuration's
  /// transformed variant under the sanitizer on fresh workloads from
  /// `make_workload`, then cross-checks each variant's launch-argument
  /// buffers against the baseline's (int exact, float to f32_rel_tol).
  /// This is the correctness oracle transform PRs are gated on.
  [[nodiscard]] static ValidationReport validate(
      const ir::Kernel& kernel,
      const std::vector<transform::NpConfig>& configs,
      const WorkloadFactory& make_workload, const sim::DeviceSpec& spec,
      const ValidationOptions& opt = {});

  /// Graceful degradation: walks the candidate configurations best-first
  /// (the heuristic's pick, then the remaining enumeration order) and
  /// returns the first variant that transforms, runs hazard-free under
  /// the sanitizer + watchdog, and matches the baseline's outputs. Every
  /// rejected candidate is quarantined with a structured VariantFailure;
  /// when all candidates fail, the baseline kernel is the answer
  /// (decision.used_baseline). Never throws on variant misbehaviour —
  /// this is the always-produce-a-runnable-answer mode behind
  /// `cudanp-cc --fallback=baseline`. Pass an empty `configs` to let the
  /// compiler enumerate candidates itself.
  [[nodiscard]] static FallbackResult compile_with_fallback(
      const ir::Kernel& kernel,
      const std::vector<transform::NpConfig>& configs,
      const WorkloadFactory& make_workload, const sim::DeviceSpec& spec,
      const ValidationOptions& opt = {});

  /// Content-addressed artifact identity: a 16-hex-digit FNV-1a hash of
  /// the kernel source plus a caller-built fingerprint of every option
  /// that can change the compile-and-validate outcome. Two equal keys
  /// mean compile_with_fallback would produce the identical decision,
  /// which is the contract serve::ArtifactCache caches on.
  [[nodiscard]] static std::string artifact_key(
      std::string_view source, std::string_view options_fingerprint);
};

}  // namespace cudanp::np
