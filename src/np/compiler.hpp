// Public facade of the CUDA-NP source-to-source compiler.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto program = np::NpCompiler::parse(kernel_source);
//   const ir::Kernel* k = program->find_kernel("tmv");
//   auto configs = np::NpCompiler::enumerate_configs(*k, /*tb=*/32, spec);
//   auto variant = np::NpCompiler::transform(*k, configs[0]);
//   std::string cuda_text = ir::print_kernel(*variant.kernel);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "np/workload.hpp"
#include "sim/device.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "transform/np_config.hpp"
#include "transform/transformer.hpp"

namespace cudanp::np {

/// Outcome of validating one transformed variant (NpCompiler::validate).
struct ValidationEntry {
  std::string config;
  /// False when the configuration is legitimately inapplicable to the
  /// kernel (the transform threw CompileError); such entries are recorded
  /// but never fail validation.
  bool transform_ok = false;
  std::string transform_error;
  bool ran = false;
  bool outputs_match = false;
  std::string mismatch;
  std::vector<sim::HazardReport> hazards;
  /// Host wall-clock of this variant's sanitized simulation (transform
  /// excluded); 0 when the transform was inapplicable.
  double wall_ms = 0.0;

  [[nodiscard]] bool clean() const {
    return !transform_ok || (ran && hazards.empty() && outputs_match);
  }
};

struct ValidationReport {
  bool baseline_ran = false;
  std::vector<sim::HazardReport> baseline_hazards;
  /// Host wall-clock of the baseline's sanitized simulation.
  double baseline_wall_ms = 0.0;
  std::vector<ValidationEntry> entries;

  [[nodiscard]] bool all_clean() const;
  [[nodiscard]] std::size_t hazard_count() const;
  [[nodiscard]] std::string summary() const;
};

struct ValidationOptions {
  sim::SanitizerEngine::Options sanitizer;
  /// Interpreter knobs for every validation run — most usefully `jobs`,
  /// which simulates thread blocks on a host thread pool (results are
  /// bit-identical at any job count; see docs/performance.md).
  sim::Interpreter::Options interp;
  /// Relative tolerance for float buffer cross-checks (NP reductions
  /// reassociate, so bit-exact equality is too strict).
  double f32_rel_tol = 1e-3;
};

class NpCompiler {
 public:
  /// Parses kernel source (throws CompileError with diagnostics on error).
  [[nodiscard]] static std::unique_ptr<ir::Program> parse(
      const std::string& source);

  /// Enumerates the candidate configurations the auto-tuner will try for
  /// `kernel` with baseline block size `master_count`, honoring pragma
  /// hints (num_threads, np_type, sm_version — paper Sec. 3.6):
  ///   inter-warp: slave_size in {2,4,8,16,32} with tb <= 1024
  ///   intra-warp: slave_size in {2,4,8,16,32} (power of two)
  [[nodiscard]] static std::vector<transform::NpConfig> enumerate_configs(
      const ir::Kernel& kernel, int master_count,
      const sim::DeviceSpec& spec);

  /// Applies the NP transformation for one configuration.
  [[nodiscard]] static transform::TransformResult transform(
      const ir::Kernel& kernel, const transform::NpConfig& config);

  /// Validation mode: runs the baseline kernel and every configuration's
  /// transformed variant under the sanitizer on fresh workloads from
  /// `make_workload`, then cross-checks each variant's launch-argument
  /// buffers against the baseline's (int exact, float to f32_rel_tol).
  /// This is the correctness oracle transform PRs are gated on.
  [[nodiscard]] static ValidationReport validate(
      const ir::Kernel& kernel,
      const std::vector<transform::NpConfig>& configs,
      const WorkloadFactory& make_workload, const sim::DeviceSpec& spec,
      const ValidationOptions& opt = {});
};

}  // namespace cudanp::np
