// Heuristic configuration selection without running anything — the
// paper's Sec. 6 observations as code:
//
//   "memory coalescing and intra-warp divergence can be used to
//    determine the priority between intra-warp NP and inter-warp NP.
//    Second, using 3 or 7 slave threads achieves close-to-optimal
//    performance for all benchmarks in our study."
//
// The heuristic prefers intra-warp when the static access-pattern
// analysis shows (a) a master-dependent guard around annotated loops
// (LU's shape — intra removes that divergence) or (b) baseline global
// accesses that stride with the master but move unit-stride with the
// loop iterator (SS/NN's shape — intra re-coalesces them); otherwise it
// preserves the baseline's coalescing with inter-warp NP. Group size is
// 4 or 8 (1+3 / 1+7 threads), scaled down for tiny loop counts.
//
// `bench/ablation_heuristic` measures how much of the exhaustive
// auto-tuner's benefit this single static pick captures.
#pragma once

#include "analysis/access_pattern.hpp"
#include "sim/device.hpp"
#include "transform/np_config.hpp"

namespace cudanp::np {

struct HeuristicChoice {
  transform::NpConfig config;
  analysis::AccessPatternSummary summary;
  std::string rationale;
};

[[nodiscard]] HeuristicChoice suggest_config(const ir::Kernel& kernel,
                                             int master_count,
                                             const sim::DeviceSpec& spec);

}  // namespace cudanp::np
