// Auto-tuner: exhaustively evaluates every candidate NP configuration on
// the simulator and picks the fastest (paper Sec. 6: "Since CUDA-NP only
// generates a small number of versions, the optimal version can be found
// by testing these versions exhaustively").
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "np/workload.hpp"

namespace cudanp::np {

struct TuneEntry {
  transform::NpConfig config;
  bool ok = false;
  std::string note;  // failure reason, or placement summary
  double seconds = std::numeric_limits<double>::infinity();
  sim::Occupancy occupancy;
  sim::TimingBreakdown timing;
  sim::KernelStats stats;
};

struct TuneResult {
  double baseline_seconds = 0;
  sim::Occupancy baseline_occupancy;
  sim::KernelStats baseline_stats;
  std::vector<TuneEntry> entries;
  int best = -1;  // index into entries; -1 when nothing beat validation
  /// Structured quarantine records mirroring the failed entries (same
  /// causes as NpCompiler::compile_with_fallback), so sweep harnesses get
  /// a machine-readable account of every disqualified variant.
  std::vector<VariantFailure> failures;

  [[nodiscard]] double best_seconds() const {
    return best >= 0 ? entries[static_cast<std::size_t>(best)].seconds
                     : baseline_seconds;
  }
  [[nodiscard]] double best_speedup() const {
    return baseline_seconds / best_seconds();
  }
  [[nodiscard]] const transform::NpConfig* best_config() const {
    return best >= 0 ? &entries[static_cast<std::size_t>(best)].config
                     : nullptr;
  }
};

struct TuneOptions {
  /// Validate every variant against the workload's CPU reference; a
  /// variant producing wrong answers is disqualified.
  bool validate = true;
  /// Restrict to these configs instead of enumerate_configs.
  std::vector<transform::NpConfig> configs;
};

class Autotuner {
 public:
  explicit Autotuner(Runner runner) : runner_(std::move(runner)) {}

  /// Tunes `kernel` (its baseline block size is taken from the factory's
  /// launch config). Each variant gets a fresh workload so outputs do not
  /// leak between runs.
  [[nodiscard]] TuneResult tune(const ir::Kernel& kernel,
                                const WorkloadFactory& make_workload,
                                const TuneOptions& options = {}) const;

  [[nodiscard]] const Runner& runner() const { return runner_; }

 private:
  Runner runner_;
};

}  // namespace cudanp::np
