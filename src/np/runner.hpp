// Runner: launches baseline or transformed kernels on the simulator,
// handling resource estimation, occupancy, extra buffers for globally
// re-homed local arrays, and timing.
#pragma once

#include "analysis/resources.hpp"
#include "np/workload.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "transform/transformer.hpp"

namespace cudanp::np {

/// Result of a sanitized launch: the usual timing/stats (valid when the
/// launch itself succeeded) plus every hazard the engine collected.
struct SanitizedRun {
  sim::RunResult result;
  sim::SanitizerEngine engine;
  /// False when the launch aborted before any block ran (bad geometry,
  /// zero occupancy); the failure is recorded as a kSimFault hazard.
  bool ran = false;

  [[nodiscard]] bool clean() const { return ran && engine.clean(); }
};

class Runner {
 public:
  explicit Runner(sim::DeviceSpec spec, sim::Interpreter::Options opt = {})
      : spec_(std::move(spec)), opt_(opt) {}

  /// Runs `kernel` with the workload's baseline launch config.
  [[nodiscard]] sim::RunResult run(const ir::Kernel& kernel,
                                   Workload& workload) const;

  /// Runs a transformed variant: swaps the block dims, allocates the
  /// variant's extra global buffers (appended to the argument list), and
  /// launches.
  [[nodiscard]] sim::RunResult run_variant(
      const transform::TransformResult& variant, Workload& workload) const;

  /// Like run(), but instrumented by a SanitizerEngine: hazards are
  /// collected instead of thrown, and per-block SimErrors become kSimFault
  /// reports while the rest of the grid keeps running.
  [[nodiscard]] SanitizedRun run_sanitized(
      const ir::Kernel& kernel, Workload& workload,
      sim::SanitizerEngine::Options sopt = {}) const;

  /// Like run_variant(), sanitized. The variant's extra global buffers
  /// (re-homed local arrays) are registered as device scratch, so a read
  /// of an element the kernel never wrote is an uninit-read hazard.
  [[nodiscard]] SanitizedRun run_variant_sanitized(
      const transform::TransformResult& variant, Workload& workload,
      sim::SanitizerEngine::Options sopt = {}) const;

  [[nodiscard]] const sim::DeviceSpec& spec() const { return spec_; }

  /// Resource estimate used for occupancy (exposed for Table 1).
  [[nodiscard]] analysis::ResourceEstimate resources(
      const ir::Kernel& kernel) const {
    return analysis::estimate_resources(kernel, spec_);
  }

  /// Mutable interpreter options, so a long-lived caller can re-budget
  /// between launches (the serve layer maps each job's remaining
  /// wall-clock deadline onto max_steps_per_block per attempt).
  [[nodiscard]] sim::Interpreter::Options& options() { return opt_; }
  [[nodiscard]] const sim::Interpreter::Options& options() const {
    return opt_;
  }

 private:
  sim::DeviceSpec spec_;
  sim::Interpreter::Options opt_;
};

/// Deterministic synthetic workload for kernels the driver knows nothing
/// about (cudanp-cc --sanitize / --fallback, and every serve-layer job):
/// each int scalar parameter becomes the problem size n, each float
/// scalar 1.0, each pointer an n*n-element buffer of seeded
/// pseudo-random data. Block {tb,1,1}, grid covering n elements — the
/// convention the paper suite itself launches with.
[[nodiscard]] Workload make_synthetic_workload(const ir::Kernel& kernel,
                                               int n, int tb);

}  // namespace cudanp::np
