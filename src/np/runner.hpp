// Runner: launches baseline or transformed kernels on the simulator,
// handling resource estimation, occupancy, extra buffers for globally
// re-homed local arrays, and timing.
#pragma once

#include <optional>

#include "analysis/resources.hpp"
#include "np/workload.hpp"
#include "sim/interpreter.hpp"
#include "sim/sanitizer.hpp"
#include "transform/transformer.hpp"

namespace cudanp::np {

/// One fully-specified launch: which kernel (a baseline ir::Kernel or a
/// transformed variant, exactly one), which workload, whether to
/// sanitize, and optional per-request overrides of the runner's
/// interpreter options. Built with the factories + chainable setters:
///
///   runner.execute(ExecutionRequest::transformed(variant, w)
///                      .sanitized(sopt)
///                      .with_engine(sim::Engine::kVm));
struct ExecutionRequest {
  const ir::Kernel* kernel = nullptr;
  const transform::TransformResult* variant = nullptr;
  Workload* workload = nullptr;
  /// Collect hazards instead of throwing; per-block SimErrors downgrade
  /// to kSimFault reports and the rest of the grid keeps running.
  bool sanitize = false;
  sim::SanitizerEngine::Options sanitizer_options{};
  /// Unset fields inherit the runner's Options for this launch.
  std::optional<sim::Engine> engine{};
  std::optional<sim::ExecutionLimits> limits{};
  std::optional<int> jobs{};
  /// Non-null overrides the runner's fault injector (chaos tests).
  const sim::FaultInjector* fault = nullptr;

  [[nodiscard]] static ExecutionRequest baseline(const ir::Kernel& k,
                                                 Workload& w) {
    ExecutionRequest r;
    r.kernel = &k;
    r.workload = &w;
    return r;
  }
  [[nodiscard]] static ExecutionRequest transformed(
      const transform::TransformResult& v, Workload& w) {
    ExecutionRequest r;
    r.variant = &v;
    r.workload = &w;
    return r;
  }
  ExecutionRequest& sanitized(sim::SanitizerEngine::Options sopt = {}) {
    sanitize = true;
    sanitizer_options = sopt;
    return *this;
  }
  ExecutionRequest& with_engine(sim::Engine e) {
    engine = e;
    return *this;
  }
  ExecutionRequest& with_limits(sim::ExecutionLimits l) {
    limits = l;
    return *this;
  }
  ExecutionRequest& with_jobs(int j) {
    jobs = j;
    return *this;
  }
  ExecutionRequest& with_fault(const sim::FaultInjector* f) {
    fault = f;
    return *this;
  }
};

/// What a launch produced. For unsanitized requests failures propagate
/// as exceptions, so `ran` is always true on return; for sanitized
/// requests launch-scoped failures land in `engine` as hazards and
/// `ran` stays false.
struct ExecutionResult {
  sim::RunResult run;
  sim::SanitizerEngine engine;
  bool ran = false;

  [[nodiscard]] bool clean() const { return ran && engine.clean(); }
  [[nodiscard]] const std::vector<sim::HazardReport>& hazards() const {
    return engine.reports();
  }
};

class Runner {
 public:
  explicit Runner(sim::DeviceSpec spec, sim::Interpreter::Options opt = {})
      : spec_(std::move(spec)), opt_(opt) {}

  /// The single execution entry point: baseline or variant, sanitized or
  /// not, with per-request option overrides. Variant requests swap the
  /// block dims and allocate the variant's extra global buffers
  /// (appended to the argument list, returned to the workload's free
  /// pool afterwards; registered as uninitialized device scratch when
  /// sanitizing).
  [[nodiscard]] ExecutionResult execute(const ExecutionRequest& req) const;

  [[nodiscard]] const sim::DeviceSpec& spec() const { return spec_; }

  /// Resource estimate used for occupancy (exposed for Table 1).
  [[nodiscard]] analysis::ResourceEstimate resources(
      const ir::Kernel& kernel) const {
    return analysis::estimate_resources(kernel, spec_);
  }

  /// Mutable interpreter options, so a long-lived caller can re-budget
  /// between launches (the serve layer maps each job's remaining
  /// wall-clock deadline onto max_steps_per_block per attempt).
  [[nodiscard]] sim::Interpreter::Options& options() { return opt_; }
  [[nodiscard]] const sim::Interpreter::Options& options() const {
    return opt_;
  }

 private:
  sim::DeviceSpec spec_;
  sim::Interpreter::Options opt_;
};

/// Deterministic synthetic workload for kernels the driver knows nothing
/// about (cudanp-cc --sanitize / --fallback, and every serve-layer job):
/// each int scalar parameter becomes the problem size n, each float
/// scalar 1.0, each pointer an n*n-element buffer of seeded
/// pseudo-random data. Block {tb,1,1}, grid covering n elements — the
/// convention the paper suite itself launches with.
[[nodiscard]] Workload make_synthetic_workload(const ir::Kernel& kernel,
                                               int n, int tb);

}  // namespace cudanp::np
