// Runner: launches baseline or transformed kernels on the simulator,
// handling resource estimation, occupancy, extra buffers for globally
// re-homed local arrays, and timing.
#pragma once

#include "analysis/resources.hpp"
#include "np/workload.hpp"
#include "sim/interpreter.hpp"
#include "transform/transformer.hpp"

namespace cudanp::np {

class Runner {
 public:
  explicit Runner(sim::DeviceSpec spec, sim::Interpreter::Options opt = {})
      : spec_(std::move(spec)), opt_(opt) {}

  /// Runs `kernel` with the workload's baseline launch config.
  [[nodiscard]] sim::RunResult run(const ir::Kernel& kernel,
                                   Workload& workload) const;

  /// Runs a transformed variant: swaps the block dims, allocates the
  /// variant's extra global buffers (appended to the argument list), and
  /// launches.
  [[nodiscard]] sim::RunResult run_variant(
      const transform::TransformResult& variant, Workload& workload) const;

  [[nodiscard]] const sim::DeviceSpec& spec() const { return spec_; }

  /// Resource estimate used for occupancy (exposed for Table 1).
  [[nodiscard]] analysis::ResourceEstimate resources(
      const ir::Kernel& kernel) const {
    return analysis::estimate_resources(kernel, spec_);
  }

 private:
  sim::DeviceSpec spec_;
  sim::Interpreter::Options opt_;
};

}  // namespace cudanp::np
