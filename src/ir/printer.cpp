#include "ir/printer.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/string_utils.hpp"

namespace cudanp::ir {

namespace {

class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string expr(const Expr& e, int parent_prec = 0) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return std::to_string(static_cast<const IntLit&>(e).value);
      case ExprKind::kFloatLit: {
        std::string s =
            cudanp::format_double(static_cast<const FloatLit&>(e).value, 9);
        // Ensure a float-looking literal so the round-trip keeps its type.
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos &&
            s.find("nan") == std::string::npos)
          s += ".0";
        return s + "f";
      }
      case ExprKind::kVarRef:
        return static_cast<const VarRef&>(e).name;
      case ExprKind::kArrayIndex: {
        const auto& ai = static_cast<const ArrayIndex&>(e);
        std::string s = expr(*ai.base, 100);
        for (const auto& i : ai.indices) s += "[" + expr(*i) + "]";
        return s;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        int prec = precedence(b.op);
        std::string s = expr(*b.lhs, prec) + " " + to_string(b.op) + " " +
                        expr(*b.rhs, prec + 1);
        if (prec < parent_prec) return "(" + s + ")";
        return s;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        return std::string(to_string(u.op)) + expr(*u.operand, 50);
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        std::string s = c.callee + "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) s += ", ";
          s += expr(*c.args[i]);
        }
        return s + ")";
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        std::string s = expr(*t.cond, 1) + " ? " + expr(*t.then_value) +
                        " : " + expr(*t.else_value);
        if (parent_prec > 0) return "(" + s + ")";
        return s;
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        return std::string("(") + to_string(c.to) + ")" +
               expr(*c.operand, 50);
      }
    }
    return "?";
  }

  void stmt(const Stmt& s, int depth) {
    switch (s.kind()) {
      case StmtKind::kBlock: {
        for (const auto& c : static_cast<const Block&>(s).stmts)
          stmt(*c, depth);
        break;
      }
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        indent(depth);
        if (d.type.space == AddrSpace::kShared) os_ << "__shared__ ";
        if (d.type.space == AddrSpace::kConstant) os_ << "__constant__ ";
        os_ << to_string(d.type.scalar);
        if (d.type.is_pointer) os_ << '*';
        os_ << ' ' << d.name;
        for (auto dim : d.type.array_dims) os_ << '[' << dim << ']';
        if (d.init) os_ << " = " << expr(*d.init);
        if (!d.init_list.empty()) {
          os_ << " = {";
          for (std::size_t i = 0; i < d.init_list.size(); ++i) {
            if (i) os_ << ", ";
            os_ << expr(*d.init_list[i]);
          }
          os_ << "}";
        }
        os_ << ";\n";
        break;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        indent(depth);
        os_ << expr(*a.lhs, 100) << ' ' << to_string(a.op) << ' '
            << expr(*a.rhs) << ";\n";
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        indent(depth);
        os_ << "if (" << expr(*i.cond) << ") {\n";
        stmt(*i.then_body, depth + 1);
        indent(depth);
        os_ << "}";
        if (i.else_body) {
          os_ << " else {\n";
          stmt(*i.else_body, depth + 1);
          indent(depth);
          os_ << "}";
        }
        os_ << "\n";
        break;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.pragma && opts_.print_pragmas) {
          indent(depth);
          os_ << f.pragma->str() << "\n";
        }
        indent(depth);
        os_ << "for (" << inline_stmt(f.init) << "; "
            << (f.cond ? expr(*f.cond) : std::string()) << "; "
            << inline_stmt(f.inc) << ") {\n";
        stmt(*f.body, depth + 1);
        indent(depth);
        os_ << "}\n";
        break;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        indent(depth);
        os_ << "while (" << expr(*w.cond) << ") {\n";
        stmt(*w.body, depth + 1);
        indent(depth);
        os_ << "}\n";
        break;
      }
      case StmtKind::kExpr: {
        indent(depth);
        os_ << expr(*static_cast<const ExprStmt&>(s).expr) << ";\n";
        break;
      }
      case StmtKind::kReturn:
        indent(depth);
        os_ << "return;\n";
        break;
      case StmtKind::kBreak:
        indent(depth);
        os_ << "break;\n";
        break;
      case StmtKind::kContinue:
        indent(depth);
        os_ << "continue;\n";
        break;
    }
  }

  /// Renders init/inc clauses of a for-header without trailing ';'.
  /// Blocks of same-type declarations render as `int a = x, b = y`;
  /// blocks of assignments render with the comma operator.
  std::string inline_stmt(const StmtPtr& s) {
    if (!s) return "";
    if (s->kind() == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(*s);
      std::string out = std::string(to_string(d.type.scalar)) + " " + d.name;
      if (d.init) out += " = " + expr(*d.init);
      return out;
    }
    if (s->kind() == StmtKind::kAssign) {
      const auto& a = static_cast<const AssignStmt&>(*s);
      return expr(*a.lhs, 100) + " " + to_string(a.op) + " " + expr(*a.rhs);
    }
    if (s->kind() == StmtKind::kBlock) {
      const auto& b = static_cast<const Block&>(*s);
      std::string out;
      for (std::size_t i = 0; i < b.stmts.size(); ++i) {
        const Stmt& c = *b.stmts[i];
        if (i == 0) {
          out = inline_stmt(b.stmts[i]);
          continue;
        }
        out += ", ";
        if (c.kind() == StmtKind::kDecl) {
          // Further declarators share the leading type keyword.
          const auto& d = static_cast<const DeclStmt&>(c);
          out += d.name;
          if (d.init) out += " = " + expr(*d.init);
        } else {
          out += inline_stmt(b.stmts[i]);
        }
      }
      return out;
    }
    return "/*?*/";
  }

  void kernel(const Kernel& k) {
    os_ << "__global__ void " << k.name << "(";
    for (std::size_t i = 0; i < k.params.size(); ++i) {
      if (i) os_ << ", ";
      const auto& p = k.params[i];
      os_ << to_string(p.type.scalar);
      if (p.type.is_pointer) os_ << '*';
      os_ << ' ' << p.name;
    }
    os_ << ") {\n";
    stmt(*k.body, 1);
    os_ << "}\n";
  }

  std::string take() { return os_.str(); }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth * opts_.indent_width; ++i) os_ << ' ';
  }

  const PrintOptions& opts_;
  std::ostringstream os_;
};

}  // namespace

std::string print_expr(const Expr& e) {
  PrintOptions opts;
  Printer p(opts);
  return p.expr(e);
}

std::string print_stmt(const Stmt& s, const PrintOptions& opts) {
  Printer p(opts);
  p.stmt(s, 0);
  return p.take();
}

std::string print_kernel(const Kernel& k, const PrintOptions& opts) {
  Printer p(opts);
  p.kernel(k);
  return p.take();
}

std::string print_program(const Program& prog, const PrintOptions& opts) {
  std::string out;
  // Deterministic order regardless of hash-map iteration.
  std::vector<std::pair<std::string, std::int64_t>> defines(
      prog.defines.begin(), prog.defines.end());
  std::sort(defines.begin(), defines.end());
  for (const auto& [name, value] : defines)
    out += "#define " + name + " " + std::to_string(value) + "\n";
  if (!prog.defines.empty()) out += "\n";
  for (const auto& k : prog.kernels) {
    Printer p(opts);
    p.kernel(*k);
    out += p.take();
    out += "\n";
  }
  return out;
}

}  // namespace cudanp::ir
