#include "ir/pragma.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace cudanp::ir {

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kAdd: return "+";
    case ReduceOp::kMul: return "*";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

double identity_of(ReduceOp op) {
  switch (op) {
    case ReduceOp::kAdd: return 0.0;
    case ReduceOp::kMul: return 1.0;
    case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

const char* to_string(NpType t) {
  switch (t) {
    case NpType::kAuto: return "auto";
    case NpType::kInterWarp: return "inter";
    case NpType::kIntraWarp: return "intra";
  }
  return "?";
}

namespace {
bool clause_names(const std::vector<ReductionClause>& clauses,
                  const std::string& v) {
  return std::any_of(clauses.begin(), clauses.end(), [&](const auto& c) {
    return std::find(c.vars.begin(), c.vars.end(), v) != c.vars.end();
  });
}

void append_clauses(std::ostringstream& os, const char* name,
                    const std::vector<ReductionClause>& clauses) {
  for (const auto& c : clauses) {
    os << ' ' << name << '(' << to_string(c.op) << ':';
    for (std::size_t i = 0; i < c.vars.size(); ++i) {
      if (i) os << ',';
      os << c.vars[i];
    }
    os << ')';
  }
}
}  // namespace

bool NpPragma::names_reduction_var(const std::string& v) const {
  return clause_names(reductions, v);
}

bool NpPragma::names_scan_var(const std::string& v) const {
  return clause_names(scans, v);
}

std::string NpPragma::str() const {
  std::ostringstream os;
  os << "#pragma np parallel for";
  append_clauses(os, "reduction", reductions);
  append_clauses(os, "scan", scans);
  if (!copy_in.empty()) {
    os << " copyin(";
    for (std::size_t i = 0; i < copy_in.size(); ++i) {
      if (i) os << ',';
      os << copy_in[i];
    }
    os << ')';
  }
  if (num_threads > 0) os << " num_threads(" << num_threads << ')';
  if (np_type != NpType::kAuto) os << " np_type(" << to_string(np_type) << ')';
  return os.str();
}

}  // namespace cudanp::ir
