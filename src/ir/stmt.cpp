#include "ir/stmt.hpp"

namespace cudanp::ir {

const char* to_string(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAdd: return "+=";
    case AssignOp::kSub: return "-=";
    case AssignOp::kMul: return "*=";
    case AssignOp::kDiv: return "/=";
  }
  return "?";
}

StmtPtr Block::clone() const { return clone_block(); }

BlockPtr Block::clone_block() const {
  auto b = std::make_unique<Block>(loc());
  b->stmts.reserve(stmts.size());
  for (const auto& s : stmts) b->stmts.push_back(s->clone());
  return b;
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(
      cond->clone(), then_body->clone_block(),
      else_body ? else_body->clone_block() : nullptr, loc());
}

StmtPtr ForStmt::clone() const {
  auto f = std::make_unique<ForStmt>(init ? init->clone() : nullptr,
                                     cond ? cond->clone() : nullptr,
                                     inc ? inc->clone() : nullptr,
                                     body->clone_block(), loc());
  f->pragma = pragma;
  return f;
}

StmtPtr WhileStmt::clone() const {
  return std::make_unique<WhileStmt>(cond->clone(), body->clone_block(),
                                     loc());
}

void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  switch (s.kind()) {
    case StmtKind::kBlock:
      for (const auto& c : static_cast<const Block&>(s).stmts)
        for_each_stmt(*c, fn);
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(s);
      for_each_stmt(*i.then_body, fn);
      if (i.else_body) for_each_stmt(*i.else_body, fn);
      break;
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(s);
      if (f.init) for_each_stmt(*f.init, fn);
      if (f.inc) for_each_stmt(*f.inc, fn);
      for_each_stmt(*f.body, fn);
      break;
    }
    case StmtKind::kWhile:
      for_each_stmt(*static_cast<const WhileStmt&>(s).body, fn);
      break;
    default:
      break;
  }
}

void for_each_stmt_mut(Stmt& s, const std::function<void(Stmt&)>& fn) {
  fn(s);
  switch (s.kind()) {
    case StmtKind::kBlock:
      for (auto& c : static_cast<Block&>(s).stmts) for_each_stmt_mut(*c, fn);
      break;
    case StmtKind::kIf: {
      auto& i = static_cast<IfStmt&>(s);
      for_each_stmt_mut(*i.then_body, fn);
      if (i.else_body) for_each_stmt_mut(*i.else_body, fn);
      break;
    }
    case StmtKind::kFor: {
      auto& f = static_cast<ForStmt&>(s);
      if (f.init) for_each_stmt_mut(*f.init, fn);
      if (f.inc) for_each_stmt_mut(*f.inc, fn);
      for_each_stmt_mut(*f.body, fn);
      break;
    }
    case StmtKind::kWhile:
      for_each_stmt_mut(*static_cast<WhileStmt&>(s).body, fn);
      break;
    default:
      break;
  }
}

void for_each_expr_in(const Stmt& s,
                      const std::function<void(const Expr&)>& fn) {
  for_each_stmt(s, [&](const Stmt& st) {
    switch (st.kind()) {
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(st);
        if (d.init) for_each_expr(*d.init, fn);
        break;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(st);
        for_each_expr(*a.lhs, fn);
        for_each_expr(*a.rhs, fn);
        break;
      }
      case StmtKind::kIf:
        for_each_expr(*static_cast<const IfStmt&>(st).cond, fn);
        break;
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(st);
        if (f.cond) for_each_expr(*f.cond, fn);
        break;
      }
      case StmtKind::kWhile:
        for_each_expr(*static_cast<const WhileStmt&>(st).cond, fn);
        break;
      case StmtKind::kExpr:
        for_each_expr(*static_cast<const ExprStmt&>(st).expr, fn);
        break;
      default:
        break;
    }
  });
}

}  // namespace cudanp::ir
