#include "ir/type.hpp"

namespace cudanp::ir {

const char* to_string(ScalarType t) {
  switch (t) {
    case ScalarType::kVoid: return "void";
    case ScalarType::kBool: return "bool";
    case ScalarType::kInt: return "int";
    case ScalarType::kFloat: return "float";
  }
  return "?";
}

const char* to_string(AddrSpace s) {
  switch (s) {
    case AddrSpace::kRegister: return "";
    case AddrSpace::kGlobal: return "__device__";
    case AddrSpace::kShared: return "__shared__";
    case AddrSpace::kLocal: return "__local__";
    case AddrSpace::kConstant: return "__constant__";
  }
  return "?";
}

std::string Type::str() const {
  std::string out;
  const char* space_kw = to_string(space);
  if (space_kw[0] != '\0' && space != AddrSpace::kGlobal) {
    out += space_kw;
    out += ' ';
  }
  out += to_string(scalar);
  if (is_pointer) out += '*';
  for (std::int64_t d : array_dims)
    out += "[" + std::to_string(d) + "]";
  return out;
}

}  // namespace cudanp::ir
