// Statement AST for the CUDA-C kernel subset.
//
// Control flow is fully structured (if / for / while, no goto), which is
// what lets the simulator use block-lockstep vector interpretation with
// per-lane active masks (see src/sim/interpreter.hpp) and what lets the
// CUDA-NP section splitter reason about sequential vs parallel regions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/pragma.hpp"
#include "ir/type.hpp"

namespace cudanp::ir {

enum class StmtKind : std::uint8_t {
  kDecl,
  kAssign,
  kIf,
  kFor,
  kWhile,
  kExpr,
  kBlock,
  kReturn,
  kBreak,
  kContinue,
};

enum class AssignOp : std::uint8_t { kAssign, kAdd, kSub, kMul, kDiv };
[[nodiscard]] const char* to_string(AssignOp op);

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
class Block;
using BlockPtr = std::unique_ptr<Block>;

class Stmt {
 public:
  explicit Stmt(StmtKind kind, SourceLoc loc = {}) : kind_(kind), loc_(loc) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

 private:
  StmtKind kind_;
  SourceLoc loc_;
};

class Block final : public Stmt {
 public:
  explicit Block(SourceLoc loc = {}) : Stmt(StmtKind::kBlock, loc) {}
  std::vector<StmtPtr> stmts;

  void push(StmtPtr s) { stmts.push_back(std::move(s)); }
  [[nodiscard]] StmtPtr clone() const override;
  [[nodiscard]] BlockPtr clone_block() const;
};

/// `float x = e;` / `__shared__ float a[16][16];` / `float g[150];`
/// (a per-thread array, i.e. local-memory resident — paper Sec. 3.3).
class DeclStmt final : public Stmt {
 public:
  DeclStmt(Type t, std::string n, ExprPtr i = nullptr, SourceLoc loc = {})
      : Stmt(StmtKind::kDecl, loc),
        type(std::move(t)),
        name(std::move(n)),
        init(std::move(i)) {}
  Type type;
  std::string name;
  ExprPtr init;  // may be null
  /// Array initializer list: `int t[4] = {3, 1, 4, 1};` — used for the
  /// constant index tables the re-rolling preprocessor builds
  /// (paper Sec. 3.7 item 2) and for lookup tables like MC's edge table.
  std::vector<ExprPtr> init_list;
  /// Simulator annotation (sim/binder.hpp): frame slot this declaration
  /// resolves to. Reset on clone(); not part of program identity.
  mutable std::int32_t sim_slot = std::numeric_limits<std::int32_t>::min();
  [[nodiscard]] StmtPtr clone() const override {
    auto d = std::make_unique<DeclStmt>(
        type, name, init ? init->clone() : nullptr, loc());
    d->init_list.reserve(init_list.size());
    for (const auto& e : init_list) d->init_list.push_back(e->clone());
    return d;
  }
};

/// `lhs op= rhs` where lhs is a VarRef or ArrayIndex.
class AssignStmt final : public Stmt {
 public:
  AssignStmt(ExprPtr l, AssignOp o, ExprPtr r, SourceLoc loc = {})
      : Stmt(StmtKind::kAssign, loc),
        lhs(std::move(l)),
        op(o),
        rhs(std::move(r)) {}
  ExprPtr lhs;
  AssignOp op;
  ExprPtr rhs;
  [[nodiscard]] StmtPtr clone() const override {
    return std::make_unique<AssignStmt>(lhs->clone(), op, rhs->clone(), loc());
  }
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr c, BlockPtr t, BlockPtr e = nullptr, SourceLoc loc = {})
      : Stmt(StmtKind::kIf, loc),
        cond(std::move(c)),
        then_body(std::move(t)),
        else_body(std::move(e)) {}
  ExprPtr cond;
  BlockPtr then_body;
  BlockPtr else_body;  // may be null
  [[nodiscard]] StmtPtr clone() const override;
};

/// `for (init; cond; inc) body`, optionally carrying a `#pragma np`.
class ForStmt final : public Stmt {
 public:
  ForStmt(StmtPtr i, ExprPtr c, StmtPtr in, BlockPtr b, SourceLoc loc = {})
      : Stmt(StmtKind::kFor, loc),
        init(std::move(i)),
        cond(std::move(c)),
        inc(std::move(in)),
        body(std::move(b)) {}
  StmtPtr init;  // DeclStmt or AssignStmt; may be null
  ExprPtr cond;  // may be null (infinite loop)
  StmtPtr inc;   // AssignStmt; may be null
  BlockPtr body;
  std::optional<NpPragma> pragma;
  [[nodiscard]] StmtPtr clone() const override;
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr c, BlockPtr b, SourceLoc loc = {})
      : Stmt(StmtKind::kWhile, loc), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  BlockPtr body;
  [[nodiscard]] StmtPtr clone() const override;
};

/// An expression evaluated for side effects: `__syncthreads();`.
class ExprStmt final : public Stmt {
 public:
  explicit ExprStmt(ExprPtr e, SourceLoc loc = {})
      : Stmt(StmtKind::kExpr, loc), expr(std::move(e)) {}
  ExprPtr expr;
  [[nodiscard]] StmtPtr clone() const override {
    return std::make_unique<ExprStmt>(expr->clone(), loc());
  }
};

class ReturnStmt final : public Stmt {
 public:
  explicit ReturnStmt(SourceLoc loc = {}) : Stmt(StmtKind::kReturn, loc) {}
  [[nodiscard]] StmtPtr clone() const override {
    return std::make_unique<ReturnStmt>(loc());
  }
};

class BreakStmt final : public Stmt {
 public:
  explicit BreakStmt(SourceLoc loc = {}) : Stmt(StmtKind::kBreak, loc) {}
  [[nodiscard]] StmtPtr clone() const override {
    return std::make_unique<BreakStmt>(loc());
  }
};

class ContinueStmt final : public Stmt {
 public:
  explicit ContinueStmt(SourceLoc loc = {}) : Stmt(StmtKind::kContinue, loc) {}
  [[nodiscard]] StmtPtr clone() const override {
    return std::make_unique<ContinueStmt>(loc());
  }
};

// ---- convenience builders for the transformation passes ----

[[nodiscard]] inline StmtPtr make_assign(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<AssignStmt>(std::move(lhs), AssignOp::kAssign,
                                      std::move(rhs));
}
[[nodiscard]] inline BlockPtr make_block() {
  return std::make_unique<Block>();
}
[[nodiscard]] inline StmtPtr make_decl_int(std::string name, ExprPtr init) {
  return std::make_unique<DeclStmt>(Type::scalar_of(ScalarType::kInt),
                                    std::move(name), std::move(init));
}

/// Calls `fn` on `s` and every nested statement (pre-order).
void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn);

/// Calls `fn` on every expression appearing anywhere in `s`.
void for_each_expr_in(const Stmt& s,
                      const std::function<void(const Expr&)>& fn);

/// Mutable pre-order walk over nested statements.
void for_each_stmt_mut(Stmt& s, const std::function<void(Stmt&)>& fn);

}  // namespace cudanp::ir
