// Source printer: renders the AST back to CUDA-like source text.
//
// This is the "source-to-source" half of CUDA-NP: the transformed kernel is
// emitted as compilable-looking CUDA so a developer can inspect (and the
// round-trip tests re-parse) exactly what the compiler produced.
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace cudanp::ir {

struct PrintOptions {
  int indent_width = 2;
  /// Emit `#pragma np ...` lines above annotated loops.
  bool print_pragmas = true;
};

[[nodiscard]] std::string print_expr(const Expr& e);
[[nodiscard]] std::string print_stmt(const Stmt& s,
                                     const PrintOptions& opts = {});
[[nodiscard]] std::string print_kernel(const Kernel& k,
                                       const PrintOptions& opts = {});
[[nodiscard]] std::string print_program(const Program& p,
                                        const PrintOptions& opts = {});

}  // namespace cudanp::ir
