// Type system for the CUDA-C kernel subset.
//
// The kernel language is deliberately small: 32-bit int, 32-bit float, bool,
// pointers to global memory (kernel parameters), and statically sized arrays
// in any of the GPU address spaces. That covers every construct used by the
// ten paper benchmarks while keeping the interpreter and the transformation
// passes tractable.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace cudanp::ir {

enum class ScalarType : std::uint8_t { kVoid, kBool, kInt, kFloat };

/// GPU address spaces, following the CUDA model (Sec. 2.1 of the paper).
/// kRegister is the default for scalar locals; kLocal holds per-thread
/// arrays that the hardware would spill to L1-cached local memory (the
/// subject of Sec. 3.3); kShared is per-block scratchpad; kGlobal is
/// device memory; kConstant is the broadcast-optimized read-only space.
enum class AddrSpace : std::uint8_t {
  kRegister,
  kGlobal,
  kShared,
  kLocal,
  kConstant,
};

[[nodiscard]] const char* to_string(ScalarType t);
[[nodiscard]] const char* to_string(AddrSpace s);

struct Type {
  ScalarType scalar = ScalarType::kVoid;
  bool is_pointer = false;
  /// Non-empty for array declarations, e.g. `float a[16][16]` -> {16, 16}.
  std::vector<std::int64_t> array_dims;
  AddrSpace space = AddrSpace::kRegister;

  [[nodiscard]] static Type scalar_of(ScalarType s,
                                      AddrSpace sp = AddrSpace::kRegister) {
    Type t;
    t.scalar = s;
    t.space = sp;
    return t;
  }
  [[nodiscard]] static Type pointer_to(ScalarType s,
                                       AddrSpace sp = AddrSpace::kGlobal) {
    Type t;
    t.scalar = s;
    t.is_pointer = true;
    t.space = sp;
    return t;
  }
  [[nodiscard]] static Type array_of(ScalarType s,
                                     std::vector<std::int64_t> dims,
                                     AddrSpace sp) {
    Type t;
    t.scalar = s;
    t.array_dims = std::move(dims);
    t.space = sp;
    return t;
  }

  [[nodiscard]] bool is_array() const { return !array_dims.empty(); }
  [[nodiscard]] bool is_scalar() const { return !is_pointer && !is_array(); }

  /// Total number of elements for arrays (product of dims), 1 for scalars.
  [[nodiscard]] std::int64_t element_count() const {
    return std::accumulate(array_dims.begin(), array_dims.end(),
                           std::int64_t{1}, std::multiplies<>());
  }

  /// Size of one scalar element in bytes (int/float are 32-bit, as on GPUs).
  [[nodiscard]] static std::int64_t scalar_size_bytes(ScalarType s) {
    switch (s) {
      case ScalarType::kVoid: return 0;
      case ScalarType::kBool: return 1;
      case ScalarType::kInt:
      case ScalarType::kFloat: return 4;
    }
    return 0;
  }
  [[nodiscard]] std::int64_t size_bytes() const {
    if (is_pointer) return 8;
    return scalar_size_bytes(scalar) * element_count();
  }

  /// Renders the declaration type, e.g. "__shared__ float [16][16]".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Type& a, const Type& b) {
    return a.scalar == b.scalar && a.is_pointer == b.is_pointer &&
           a.array_dims == b.array_dims && a.space == b.space;
  }
};

}  // namespace cudanp::ir
