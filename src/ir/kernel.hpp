// Kernel and Program containers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/stmt.hpp"

namespace cudanp::ir {

struct Param {
  Type type;
  std::string name;
};

/// One `__global__` function.
class Kernel {
 public:
  std::string name;
  std::vector<Param> params;
  BlockPtr body;

  /// Opaque per-kernel cache owned by the simulator's slot binder
  /// (sim/binder.hpp). Lifetime-tied to this Kernel so repeated launches
  /// of the same object (autotuner sweeps, validation) bind once.
  /// Deliberately not copied by clone(): a clone has fresh AST nodes and
  /// rebinds on first launch.
  mutable std::shared_ptr<const void> sim_binding;

  [[nodiscard]] std::unique_ptr<Kernel> clone() const {
    auto k = std::make_unique<Kernel>();
    k->name = name;
    k->params = params;
    k->body = body->clone_block();
    return k;
  }

  /// Number of `#pragma np parallel for` loops anywhere in the kernel.
  [[nodiscard]] std::size_t parallel_loop_count() const;

  /// Finds a parameter by name; nullptr if absent.
  [[nodiscard]] const Param* find_param(const std::string& n) const;
};

/// A translation unit: `#define` constants plus kernels.
class Program {
 public:
  std::unordered_map<std::string, std::int64_t> defines;
  std::vector<std::unique_ptr<Kernel>> kernels;

  [[nodiscard]] Kernel* find_kernel(const std::string& n);
  [[nodiscard]] const Kernel* find_kernel(const std::string& n) const;
};

}  // namespace cudanp::ir
