// Representation of `#pragma np ...` directives (paper Sec. 3.6).
//
// CUDA-NP adapts OpenMP syntax:
//
//   #pragma np parallel for [reduction(op:var,...)] [scan(op:var,...)]
//                           [copyin(var,...)] [num_threads(n)]
//                           [np_type(inter|intra)] [sm_version(n)]
//
// A pragma attaches to the `for` loop that immediately follows it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cudanp::ir {

/// Associative operators supported for reduction / scan clauses.
enum class ReduceOp : std::uint8_t { kAdd, kMul, kMin, kMax };

[[nodiscard]] const char* to_string(ReduceOp op);

/// Identity element of a reduction operator (paper Sec. 3.2: slave copies
/// of a reduction variable are initialized to the identity so the final
/// cross-thread combine recovers the master's running value).
[[nodiscard]] double identity_of(ReduceOp op);

struct ReductionClause {
  ReduceOp op = ReduceOp::kAdd;
  std::vector<std::string> vars;
};

/// Which warp-mapping the user asked for (Sec. 3.4); kAuto lets the
/// auto-tuner try both.
enum class NpType : std::uint8_t { kAuto, kInterWarp, kIntraWarp };

[[nodiscard]] const char* to_string(NpType t);

struct NpPragma {
  bool parallel_for = false;
  std::vector<ReductionClause> reductions;
  std::vector<ReductionClause> scans;
  /// Variables the user explicitly asked to broadcast master -> slaves;
  /// when empty the compiler's liveness analysis finds live-ins itself.
  std::vector<std::string> copy_in;
  /// Preferred number of threads per master (master + slaves); 0 = auto.
  int num_threads = 0;
  NpType np_type = NpType::kAuto;
  /// Target compute capability *10 (30 = sm_30). __shfl requires >= 30.
  int sm_version = 30;

  [[nodiscard]] bool has_reduction_or_scan() const {
    return !reductions.empty() || !scans.empty();
  }
  [[nodiscard]] bool names_reduction_var(const std::string& v) const;
  [[nodiscard]] bool names_scan_var(const std::string& v) const;
  /// Renders back to `#pragma np parallel for ...` source form.
  [[nodiscard]] std::string str() const;
};

}  // namespace cudanp::ir
