#include "ir/expr.hpp"

namespace cudanp::ir {

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
  }
  return "?";
}

const char* to_string(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kLNot: return "!";
  }
  return "?";
}

int precedence(BinOp op) {
  switch (op) {
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: return 10;
    case BinOp::kAdd:
    case BinOp::kSub: return 9;
    case BinOp::kShl:
    case BinOp::kShr: return 8;
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: return 7;
    case BinOp::kEq:
    case BinOp::kNe: return 6;
    case BinOp::kBitAnd: return 5;
    case BinOp::kBitXor: return 4;
    case BinOp::kBitOr: return 3;
    case BinOp::kLAnd: return 2;
    case BinOp::kLOr: return 1;
  }
  return 0;
}

ExprPtr ArrayIndex::clone() const {
  std::vector<ExprPtr> idx;
  idx.reserve(indices.size());
  for (const auto& i : indices) idx.push_back(i->clone());
  return std::make_unique<ArrayIndex>(base->clone(), std::move(idx), loc());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> a;
  a.reserve(args.size());
  for (const auto& e : args) a.push_back(e->clone());
  return std::make_unique<CallExpr>(callee, std::move(a), loc());
}

bool is_builtin_geometry(const std::string& name) {
  return name == "threadIdx.x" || name == "threadIdx.y" ||
         name == "threadIdx.z" || name == "blockIdx.x" ||
         name == "blockIdx.y" || name == "blockIdx.z" ||
         name == "blockDim.x" || name == "blockDim.y" ||
         name == "blockDim.z" || name == "gridDim.x" ||
         name == "gridDim.y" || name == "gridDim.z";
}

void for_each_expr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  switch (e.kind()) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kVarRef:
      break;
    case ExprKind::kArrayIndex: {
      const auto& ai = static_cast<const ArrayIndex&>(e);
      for_each_expr(*ai.base, fn);
      for (const auto& i : ai.indices) for_each_expr(*i, fn);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      for_each_expr(*b.lhs, fn);
      for_each_expr(*b.rhs, fn);
      break;
    }
    case ExprKind::kUnary:
      for_each_expr(*static_cast<const UnaryExpr&>(e).operand, fn);
      break;
    case ExprKind::kCall:
      for (const auto& a : static_cast<const CallExpr&>(e).args)
        for_each_expr(*a, fn);
      break;
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      for_each_expr(*t.cond, fn);
      for_each_expr(*t.then_value, fn);
      for_each_expr(*t.else_value, fn);
      break;
    }
    case ExprKind::kCast:
      for_each_expr(*static_cast<const CastExpr&>(e).operand, fn);
      break;
  }
}

}  // namespace cudanp::ir
