// Expression AST for the CUDA-C kernel subset.
//
// Builtin thread-geometry values (threadIdx.x, blockDim.y, ...) are
// represented as VarRef nodes with their dotted name; the interpreter and
// the transformation passes both special-case those names. Builtin
// functions (sqrtf, min, __shfl, tex1Dfetch, ...) are CallExpr nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hpp"
#include "support/source_location.hpp"

namespace cudanp::ir {

enum class ExprKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kVarRef,
  kArrayIndex,
  kBinary,
  kUnary,
  kCall,
  kTernary,
  kCast,
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLAnd, kLOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

enum class UnOp : std::uint8_t { kNeg, kLNot };

[[nodiscard]] const char* to_string(BinOp op);
[[nodiscard]] const char* to_string(UnOp op);
/// Operator precedence for the printer (higher binds tighter).
[[nodiscard]] int precedence(BinOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  explicit Expr(ExprKind kind, SourceLoc loc = {}) : kind_(kind), loc_(loc) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }
  [[nodiscard]] virtual ExprPtr clone() const = 0;

 private:
  ExprKind kind_;
  SourceLoc loc_;
};

class IntLit final : public Expr {
 public:
  explicit IntLit(std::int64_t v, SourceLoc loc = {})
      : Expr(ExprKind::kIntLit, loc), value(v) {}
  std::int64_t value;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<IntLit>(value, loc());
  }
};

class FloatLit final : public Expr {
 public:
  explicit FloatLit(double v, SourceLoc loc = {})
      : Expr(ExprKind::kFloatLit, loc), value(v) {}
  double value;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<FloatLit>(value, loc());
  }
};

class VarRef final : public Expr {
 public:
  explicit VarRef(std::string n, SourceLoc loc = {})
      : Expr(ExprKind::kVarRef, loc), name(std::move(n)) {}
  std::string name;
  /// Simulator annotation (sim/binder.hpp): frame slot index (>= 0),
  /// geometry code, or undeclared sentinel. Not part of program identity;
  /// clone() resets it so fresh ASTs rebind from scratch.
  mutable std::int32_t sim_slot = std::numeric_limits<std::int32_t>::min();
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<VarRef>(name, loc());
  }
};

/// `base[i]` or `base[i][j]`; `base` is a VarRef naming an array or a
/// pointer parameter.
class ArrayIndex final : public Expr {
 public:
  ArrayIndex(ExprPtr b, std::vector<ExprPtr> idx, SourceLoc loc = {})
      : Expr(ExprKind::kArrayIndex, loc),
        base(std::move(b)),
        indices(std::move(idx)) {}
  ExprPtr base;
  std::vector<ExprPtr> indices;
  [[nodiscard]] ExprPtr clone() const override;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinOp o, ExprPtr l, ExprPtr r, SourceLoc loc = {})
      : Expr(ExprKind::kBinary, loc),
        op(o),
        lhs(std::move(l)),
        rhs(std::move(r)) {}
  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone(), loc());
  }
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnOp o, ExprPtr e, SourceLoc loc = {})
      : Expr(ExprKind::kUnary, loc), op(o), operand(std::move(e)) {}
  UnOp op;
  ExprPtr operand;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->clone(), loc());
  }
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string c, std::vector<ExprPtr> a, SourceLoc loc = {})
      : Expr(ExprKind::kCall, loc), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  /// Simulator annotation (sim/binder.hpp): resolved builtin id, so the
  /// hot eval loop dispatches on an integer instead of the callee string.
  mutable std::int16_t sim_builtin = -32768;
  [[nodiscard]] ExprPtr clone() const override;
};

class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr c, ExprPtr t, ExprPtr f, SourceLoc loc = {})
      : Expr(ExprKind::kTernary, loc),
        cond(std::move(c)),
        then_value(std::move(t)),
        else_value(std::move(f)) {}
  ExprPtr cond;
  ExprPtr then_value;
  ExprPtr else_value;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<TernaryExpr>(cond->clone(), then_value->clone(),
                                         else_value->clone(), loc());
  }
};

/// `(int)x` / `(float)x`.
class CastExpr final : public Expr {
 public:
  CastExpr(ScalarType t, ExprPtr e, SourceLoc loc = {})
      : Expr(ExprKind::kCast, loc), to(t), operand(std::move(e)) {}
  ScalarType to;
  ExprPtr operand;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<CastExpr>(to, operand->clone(), loc());
  }
};

// ---- convenience builders (used heavily by the transformation passes) ----

[[nodiscard]] inline ExprPtr make_int(std::int64_t v) {
  return std::make_unique<IntLit>(v);
}
[[nodiscard]] inline ExprPtr make_float(double v) {
  return std::make_unique<FloatLit>(v);
}
[[nodiscard]] inline ExprPtr make_var(std::string name) {
  return std::make_unique<VarRef>(std::move(name));
}
[[nodiscard]] inline ExprPtr make_bin(BinOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr make_call(std::string callee,
                                       std::vector<ExprPtr> args) {
  return std::make_unique<CallExpr>(std::move(callee), std::move(args));
}
[[nodiscard]] inline ExprPtr make_index(ExprPtr base,
                                        std::vector<ExprPtr> idx) {
  return std::make_unique<ArrayIndex>(std::move(base), std::move(idx));
}
[[nodiscard]] inline ExprPtr make_index1(std::string array, ExprPtr idx) {
  std::vector<ExprPtr> v;
  v.push_back(std::move(idx));
  return make_index(make_var(std::move(array)), std::move(v));
}

/// True when the expression names one of the CUDA builtin geometry values.
[[nodiscard]] bool is_builtin_geometry(const std::string& name);

/// Calls `fn` on `e` and every sub-expression (pre-order).
void for_each_expr(const Expr& e, const std::function<void(const Expr&)>& fn);

}  // namespace cudanp::ir
