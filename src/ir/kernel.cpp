#include "ir/kernel.hpp"

namespace cudanp::ir {

std::size_t Kernel::parallel_loop_count() const {
  std::size_t n = 0;
  for_each_stmt(*body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kFor &&
        static_cast<const ForStmt&>(s).pragma.has_value())
      ++n;
  });
  return n;
}

const Param* Kernel::find_param(const std::string& n) const {
  for (const auto& p : params)
    if (p.name == n) return &p;
  return nullptr;
}

Kernel* Program::find_kernel(const std::string& n) {
  for (auto& k : kernels)
    if (k->name == n) return k.get();
  return nullptr;
}

const Kernel* Program::find_kernel(const std::string& n) const {
  for (const auto& k : kernels)
    if (k->name == n) return k.get();
  return nullptr;
}

}  // namespace cudanp::ir
