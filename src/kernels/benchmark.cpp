#include "kernels/benchmark.hpp"

#include <algorithm>
#include <cctype>

#include "frontend/parser.hpp"
#include "kernels/suite.hpp"
#include "kernels/workload_utils.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::kernels {

const ir::Kernel& Benchmark::kernel() const {
  if (!program_) program_ = frontend::parse_program_or_throw(source());
  const ir::Kernel* k = program_->find_kernel(kernel_name());
  if (!k)
    throw CompileError("benchmark '" + name() + "' source does not define "
                       "kernel '" + kernel_name() + "'");
  return *k;
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> kNames = {
      "MC", "LU", "LE", "MV", "SS", "LIB", "CFD", "BK", "TMV", "NN"};
  return kNames;
}

std::unique_ptr<Benchmark> make_benchmark(const std::string& name,
                                          double scale) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Paper input sizes (Table 1), scaled per DESIGN.md Sec. 6. Loop
  // *shapes* (LC) are never scaled; only the number of threads is.
  if (up == "TMV") return make_tmv(scaled(2048, scale), 2048);
  if (up == "MV") return make_mv(2048, scaled(2048, scale));
  if (up == "NN") return make_nn(1024, scaled(4096, scale));
  if (up == "LU") return make_lu(std::max(scaled(1024, scale, 64), 64));
  if (up == "LE") return make_le(scaled(4096, scale));
  if (up == "SS") return make_ss(2048, scaled(2048, scale, 128));
  if (up == "LIB") return make_lib(scaled(16384, scale, 64));
  if (up == "CFD") return make_cfd(scaled(65536, scale, 128));
  if (up == "BK") return make_bk(scaled(65536, scale, 2048));
  if (up == "MC") return make_mc(scale >= 1.0 ? 16 : 8);
  throw CompileError("unknown benchmark '" + name + "'");
}

std::vector<std::unique_ptr<Benchmark>> make_benchmark_suite(double scale) {
  std::vector<std::unique_ptr<Benchmark>> out;
  for (const auto& n : benchmark_names()) out.push_back(make_benchmark(n, scale));
  return out;
}

}  // namespace cudanp::kernels
