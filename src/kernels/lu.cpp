// LU: the LUD perimeter kernel (Rodinia), the paper's Fig. 3 example.
// BLOCK_SIZE = 16, TB = 32: the first 16 threads own perimeter-row
// columns, the last 16 own perimeter-col rows — the `master_id < 16`
// control flow whose divergence intra-warp NP removes (Sec. 5 / Fig. 11).
// Parallel loops: the three tile loads and the two triangular-solve
// inner products (R).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define BS 16
__global__ void lud_perimeter(float* m, int dim, int offset) {
  __shared__ float dia[BS][BS];
  __shared__ float peri_row[BS][BS];
  __shared__ float peri_col[BS][BS];
  int idx;
  int array_offset = offset * dim + offset;
  if (threadIdx.x < BS) {
    idx = threadIdx.x;
    #pragma np parallel for
    for (int i = 0; i < BS; i++)
      dia[i][idx] = m[array_offset + i * dim + idx];
    #pragma np parallel for
    for (int i = 0; i < BS; i++)
      peri_row[i][idx] = m[array_offset + (blockIdx.x + 1) * BS + i * dim + idx];
  } else {
    idx = threadIdx.x - BS;
    #pragma np parallel for
    for (int i = 0; i < BS; i++)
      peri_col[i][idx] = m[array_offset + (blockIdx.x + 1) * BS * dim + i * dim + idx];
  }
  __syncthreads();
  if (threadIdx.x < BS) {
    idx = threadIdx.x;
    for (int i = 1; i < BS; i++) {
      float s = 0.0f;
      #pragma np parallel for reduction(+:s)
      for (int j = 0; j < BS; j++) {
        if (j < i) {
          s += dia[i][j] * peri_row[j][idx];
        }
      }
      peri_row[i][idx] = peri_row[i][idx] - s;
    }
  } else {
    idx = threadIdx.x - BS;
    for (int i = 0; i < BS; i++) {
      float s = 0.0f;
      #pragma np parallel for reduction(+:s)
      for (int j = 0; j < BS; j++) {
        if (j < i) {
          s += peri_col[idx][j] * dia[j][i];
        }
      }
      peri_col[idx][i] = (peri_col[idx][i] - s) / dia[i][i];
    }
  }
  __syncthreads();
  if (threadIdx.x < BS) {
    idx = threadIdx.x;
    #pragma np parallel for
    for (int i = 0; i < BS; i++)
      m[array_offset + (blockIdx.x + 1) * BS + i * dim + idx] = peri_row[i][idx];
  } else {
    idx = threadIdx.x - BS;
    #pragma np parallel for
    for (int i = 0; i < BS; i++)
      m[array_offset + (blockIdx.x + 1) * BS * dim + idx * dim + i] = peri_col[idx][i];
  }
}
)";

constexpr int kBS = 16;

/// CPU reference of the perimeter update for one (offset, block) pair.
void reference_perimeter(std::vector<float>& m, int dim, int offset,
                         int block) {
  const std::size_t base =
      static_cast<std::size_t>(offset) * dim + static_cast<std::size_t>(offset);
  auto dia = [&](int r, int c) {
    return m[base + static_cast<std::size_t>(r) * dim + c];
  };
  // Row panel: peri_row[i][idx] -= sum_{j<i} dia[i][j] * peri_row[j][idx]
  std::size_t row_base = base + static_cast<std::size_t>(block + 1) * kBS;
  for (int idx = 0; idx < kBS; ++idx) {
    float col[kBS];
    for (int i = 0; i < kBS; ++i)
      col[i] = m[row_base + static_cast<std::size_t>(i) * dim + idx];
    for (int i = 1; i < kBS; ++i) {
      float s = 0.0f;
      for (int j = 0; j < i; ++j) s += dia(i, j) * col[j];
      col[i] = col[i] - s;
    }
    for (int i = 0; i < kBS; ++i)
      m[row_base + static_cast<std::size_t>(i) * dim + idx] = col[i];
  }
  // Column panel: peri_col[idx][i] = (peri_col[idx][i] - sum) / dia[i][i]
  std::size_t col_base =
      base + static_cast<std::size_t>(block + 1) * kBS * dim;
  for (int idx = 0; idx < kBS; ++idx) {
    float row[kBS];
    for (int i = 0; i < kBS; ++i)
      row[i] = m[col_base + static_cast<std::size_t>(idx) * dim + i];
    for (int i = 0; i < kBS; ++i) {
      float s = 0.0f;
      for (int j = 0; j < i; ++j) s += row[j] * dia(j, i);
      row[i] = (row[i] - s) / dia(i, i);
    }
    for (int i = 0; i < kBS; ++i)
      m[col_base + static_cast<std::size_t>(idx) * dim + i] = row[i];
  }
}

class LuBenchmark final : public Benchmark {
 public:
  explicit LuBenchmark(int dim) : dim_(dim) {}

  std::string name() const override { return "LU"; }
  std::string description() const override {
    return "LUD perimeter update, " + std::to_string(dim_) + "x" +
           std::to_string(dim_) + " matrix, BS=16";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "lud_perimeter"; }
  // The paper counts 4 parallel loops for LU; our kernel additionally
  // annotates the write-back loops, giving 7.
  Table1Row table1() const override { return {7, 16, "R"}; }

  np::Workload make_workload() const override {
    const int offset = 0;
    const int nblocks = dim_ / kBS - 1;
    np::Workload w;
    auto& mem = *w.mem;
    auto M = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(dim_) * dim_);
    SplitMix64 rng(0x10d10d);
    {
      auto m = mem.buffer(M).f32();
      for (auto& x : m) x = rng.next_float(0.1f, 1.0f);
      // Diagonally dominant diagonal tile keeps the solve stable.
      for (int i = 0; i < kBS; ++i)
        m[static_cast<std::size_t>(offset) * dim_ + offset +
          static_cast<std::size_t>(i) * dim_ + i] += 16.0f;
    }

    std::vector<float> expect(mem.buffer(M).f32().begin(),
                              mem.buffer(M).f32().end());
    for (int b = 0; b < nblocks; ++b)
      reference_perimeter(expect, dim_, offset, b);

    w.launch.grid = {nblocks, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {M, sim::Value::of_int(dim_),
                     sim::Value::of_int(offset)};
    w.validate = [M, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(M).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int dim_;
};

}  // namespace

std::unique_ptr<Benchmark> make_lu(int matrix_dim) {
  return std::make_unique<LuBenchmark>(matrix_dim);
}

}  // namespace cudanp::kernels
