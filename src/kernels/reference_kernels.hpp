// Reference comparator kernels for the Fig. 13/14 library comparison and
// the Fig. 1 memory-copy microbenchmark.
//
// Substitutions (see DESIGN.md): CUBLAS V5.0's gemv is represented by a
// hand-tuned block-per-output reduction kernel (the classic
// high-occupancy gemv structure); SMM [42] by the shared-memory-tiled MV
// with a doubled thread block, which is the shape shared-memory
// multiplexing produces.
#pragma once

#include <memory>
#include <string>

#include "kernels/benchmark.hpp"

namespace cudanp::kernels {

/// CUBLAS-style TMV (gemv-T): one 128-thread block per output element,
/// shared-memory tree reduction.
std::unique_ptr<Benchmark> make_tmv_cublas(int width = 2048,
                                           int height = 2048);

/// CUBLAS-style MV (gemv-N): one 128-thread block per output row.
std::unique_ptr<Benchmark> make_mv_cublas(int width = 2048,
                                          int height = 2048);

/// SMM-style MV [42]: shared-memory-tiled row-per-thread with a 256-wide
/// block multiplexing the tile buffer.
std::unique_ptr<Benchmark> make_mv_smm(int width = 2048, int height = 2048);

/// Plain memory copy (one float per thread) — the Fig. 1 baseline.
std::unique_ptr<Benchmark> make_memcopy(int floats = 1 << 22);

}  // namespace cudanp::kernels
