// Individual benchmark factories with explicit size parameters (the
// figure benches sweep these; make_benchmark_suite uses paper defaults).
#pragma once

#include <memory>

#include "kernels/benchmark.hpp"

namespace cudanp::kernels {

/// TMV: transposed-matrix-vector multiplication (paper Fig. 2).
/// Output vector length = width; dot-product loop length = height.
std::unique_ptr<Benchmark> make_tmv(int width = 2048, int height = 2048);

/// MV: matrix-vector multiplication with shared-memory tiling ([42]).
std::unique_ptr<Benchmark> make_mv(int width = 2048, int height = 2048);

/// NN: nearest neighbor (Rodinia), TB fixed at 32 threads per the
/// paper's modified baseline; min-reduction over the record list.
std::unique_ptr<Benchmark> make_nn(int records = 1024, int queries = 4096);

/// LU: LUD perimeter kernel (Rodinia, Fig. 3), BLOCK_SIZE=16, TB=32.
std::unique_ptr<Benchmark> make_lu(int matrix_dim = 2048);

/// LE: leukocyte ellipse-matching (Fig. 5), NPOINTS=150 local array.
std::unique_ptr<Benchmark> make_le(int pixels = 4096);

/// SS: streamcluster distance kernel, tiled over the dimension.
std::unique_ptr<Benchmark> make_ss(int dim = 2048, int points = 4096);

/// LIB: LIBOR swaption Monte-Carlo (GPGPU-Sim), 80 maturities, scan.
std::unique_ptr<Benchmark> make_lib(int paths = 16384);

/// CFD: Euler solver flux accumulation over 4 neighbors (Rodinia).
std::unique_ptr<Benchmark> make_cfd(int cells = 65536);

/// BK: bucket-count phase of Hybrid Sort's bucket sort.
std::unique_ptr<Benchmark> make_bk(int elements = 65536);

/// MC: marching cubes vertex generation, 12-edge loops + corner tables.
std::unique_ptr<Benchmark> make_mc(int grid = 16);

}  // namespace cudanp::kernels
