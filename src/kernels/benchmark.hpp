// The paper's benchmark suite (Table 1), rebuilt as self-contained kernel
// sources in the CUDA-C subset with deterministic synthetic inputs and
// CPU reference validators.
//
// Every benchmark preserves the *shape* that matters to CUDA-NP: the
// number of parallel loops (PL), their trip counts (LC), the presence of
// reduction/scan live-outs (R/S), and the resource profile (shared /
// local memory pressure) that limits baseline TLP. Inputs that only set
// problem size are scaled (see DESIGN.md Sec. 6) and configurable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "np/workload.hpp"

namespace cudanp::kernels {

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  /// Short paper name: "TMV", "LU", ...
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// Kernel source in the CUDA-C subset, with `#pragma np` annotations.
  [[nodiscard]] virtual std::string source() const = 0;
  [[nodiscard]] virtual std::string kernel_name() const = 0;
  /// Fresh workload: inputs filled, launch config set, validator bound.
  [[nodiscard]] virtual np::Workload make_workload() const = 0;

  /// Table 1 metadata (paper values, for the Table 1 bench report).
  struct Table1Row {
    int parallel_loops = 0;
    int max_loop_count = 0;
    const char* reduce_scan = "X";  // "R", "S" or "X"
  };
  [[nodiscard]] virtual Table1Row table1() const = 0;

  /// Parses (and caches) the program; returns the benchmark kernel.
  [[nodiscard]] const ir::Kernel& kernel() const;

 private:
  mutable std::unique_ptr<ir::Program> program_;
};

/// Factory by paper name (case-insensitive); throws on unknown name.
/// `scale` in (0, 1] shrinks the input sizes proportionally (tests use
/// small scales; the paper harness uses 1.0).
[[nodiscard]] std::unique_ptr<Benchmark> make_benchmark(
    const std::string& name, double scale = 1.0);

/// All ten paper benchmarks in Table 1 order.
[[nodiscard]] std::vector<std::unique_ptr<Benchmark>> make_benchmark_suite(
    double scale = 1.0);

[[nodiscard]] const std::vector<std::string>& benchmark_names();

}  // namespace cudanp::kernels
