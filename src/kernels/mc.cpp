// MC: marching-cubes vertex generation (Nvidia SDK). Each thread
// processes one voxel: samples the 8 cube corners into a per-thread
// local array via constant corner-offset tables (parallel loop, LC=8),
// derives the cube's case index, then interpolates the 12 edge vertices
// in three component loops (LC=12, PL=4 total, no reduction — the X row
// of Table 1). The corner array is accessed through edge-endpoint tables
// inside the interpolation loops, so it is *not* register-partitionable
// and exercises the shared/global re-homing paths of Sec. 3.3.
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
__global__ void mc(float* field, float* verts, int* caseidx,
                   int gx, int gy, int gz, float iso) {
  __constant__ int cox[8] = {0, 1, 1, 0, 0, 1, 1, 0};
  __constant__ int coy[8] = {0, 0, 1, 1, 0, 0, 1, 1};
  __constant__ int coz[8] = {0, 0, 0, 0, 1, 1, 1, 1};
  __constant__ int ev0[12] = {0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3};
  __constant__ int ev1[12] = {1, 2, 3, 0, 5, 6, 7, 4, 4, 5, 6, 7};
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  int vx = tid % gx;
  int vy = (tid / gx) % gy;
  int vz = tid / (gx * gy);
  float corner[8];
  #pragma np parallel for
  for (int v = 0; v < 8; v++) {
    corner[v] = field[(vz + coz[v]) * (gx + 1) * (gy + 1)
                    + (vy + coy[v]) * (gx + 1) + vx + cox[v]];
  }
  int cube = 0;
  for (int v = 0; v < 8; v++) {
    if (corner[v] < iso) {
      cube = cube + (1 << v);
    }
  }
  caseidx[tid] = cube;
  #pragma np parallel for
  for (int e = 0; e < 12; e++) {
    float a = corner[ev0[e]];
    float b = corner[ev1[e]];
    float t = (iso - a) / (b - a + 0.000001f);
    verts[tid * 36 + e * 3 + 0] = vx + t * (cox[ev1[e]] - cox[ev0[e]]);
  }
  #pragma np parallel for
  for (int e = 0; e < 12; e++) {
    float a = corner[ev0[e]];
    float b = corner[ev1[e]];
    float t = (iso - a) / (b - a + 0.000001f);
    verts[tid * 36 + e * 3 + 1] = vy + t * (coy[ev1[e]] - coy[ev0[e]]);
  }
  #pragma np parallel for
  for (int e = 0; e < 12; e++) {
    float a = corner[ev0[e]];
    float b = corner[ev1[e]];
    float t = (iso - a) / (b - a + 0.000001f);
    verts[tid * 36 + e * 3 + 2] = vz + t * (coz[ev1[e]] - coz[ev0[e]]);
  }
}
)";

constexpr int kCox[8] = {0, 1, 1, 0, 0, 1, 1, 0};
constexpr int kCoy[8] = {0, 0, 1, 1, 0, 0, 1, 1};
constexpr int kCoz[8] = {0, 0, 0, 0, 1, 1, 1, 1};
constexpr int kEv0[12] = {0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3};
constexpr int kEv1[12] = {1, 2, 3, 0, 5, 6, 7, 4, 4, 5, 6, 7};

class McBenchmark final : public Benchmark {
 public:
  explicit McBenchmark(int grid) : g_(grid) {}

  std::string name() const override { return "MC"; }
  std::string description() const override {
    return "marching cubes on a " + std::to_string(g_) + "^3 voxel grid";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "mc"; }
  Table1Row table1() const override { return {4, 12, "X"}; }

  np::Workload make_workload() const override {
    const int voxels = g_ * g_ * g_;
    const std::size_t fieldn = static_cast<std::size_t>(g_ + 1) * (g_ + 1) *
                               (g_ + 1);
    const float iso = 0.5f;
    np::Workload w;
    auto& mem = *w.mem;
    auto F = mem.alloc(ir::ScalarType::kFloat, fieldn);
    auto V = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(voxels) * 36);
    auto C = mem.alloc(ir::ScalarType::kInt, static_cast<std::size_t>(voxels));
    SplitMix64 rng(0x3c3c3c);
    fill_uniform(mem.buffer(F), rng, 0.0f, 1.0f);

    std::vector<float> expect_v(static_cast<std::size_t>(voxels) * 36);
    std::vector<std::int32_t> expect_c(static_cast<std::size_t>(voxels));
    {
      auto f = mem.buffer(F).f32();
      for (int tid = 0; tid < voxels; ++tid) {
        int vx = tid % g_;
        int vy = (tid / g_) % g_;
        int vz = tid / (g_ * g_);
        float corner[8];
        for (int v = 0; v < 8; ++v)
          corner[v] =
              f[static_cast<std::size_t>(vz + kCoz[v]) * (g_ + 1) * (g_ + 1) +
                static_cast<std::size_t>(vy + kCoy[v]) * (g_ + 1) +
                static_cast<std::size_t>(vx + kCox[v])];
        int cube = 0;
        for (int v = 0; v < 8; ++v)
          if (corner[v] < iso) cube += 1 << v;
        expect_c[static_cast<std::size_t>(tid)] = cube;
        for (int e = 0; e < 12; ++e) {
          float a = corner[kEv0[e]];
          float b = corner[kEv1[e]];
          float t = (iso - a) / (b - a + 0.000001f);
          std::size_t base = static_cast<std::size_t>(tid) * 36 +
                             static_cast<std::size_t>(e) * 3;
          expect_v[base + 0] =
              static_cast<float>(vx) + t * static_cast<float>(kCox[kEv1[e]] - kCox[kEv0[e]]);
          expect_v[base + 1] =
              static_cast<float>(vy) + t * static_cast<float>(kCoy[kEv1[e]] - kCoy[kEv0[e]]);
          expect_v[base + 2] =
              static_cast<float>(vz) + t * static_cast<float>(kCoz[kEv1[e]] - kCoz[kEv0[e]]);
        }
      }
    }

    w.launch.grid = {voxels / 32, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {F, V, C,
                     sim::Value::of_int(g_), sim::Value::of_int(g_),
                     sim::Value::of_int(g_), sim::Value::of_float(iso)};
    w.validate = [V, C, expect_v = std::move(expect_v),
                  expect_c = std::move(expect_c)](const sim::DeviceMemory& m,
                                                  std::string* msg) {
      return exact_equal(m.buffer(C).i32(), expect_c, msg) &&
             approx_equal(m.buffer(V).f32(), expect_v, 1e-4, msg);
    };
    return w;
  }

 private:
  int g_;
};

}  // namespace

std::unique_ptr<Benchmark> make_mc(int grid) {
  return std::make_unique<McBenchmark>(grid);
}

}  // namespace cudanp::kernels
