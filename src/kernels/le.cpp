// LE: leukocyte ellipse matching (Rodinia, array-order version [4];
// gradient samples are stored sample-major so baseline warp accesses are
// coalesced, which is exactly what [4]'s array reordering achieved) —
// the paper's Fig. 5 kernel. Each thread evaluates the GICOV score of an
// ellipse at one pixel: a 150-point gradient sample held in a per-thread
// local array (600 B of local memory, Table 1), then sum / variance
// reductions over it. This is the flagship Sec.-3.3 benchmark: the local
// array can be re-homed to registers (partitioned), shared, or global
// memory (Figs. 12 and 15).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define NPOINTS 150
__global__ void le(float* gradx, float* grady, float* gicov, int npix) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float grad[NPOINTS];
  float sum = 0.0f;
  #pragma np parallel for
  for (int n = 0; n < NPOINTS; n++) {
    grad[n] = gradx[n * npix + tid] * (1.5f + cosf(0.0418879f * n))
            + grady[n * npix + tid] * sinf(0.0418879f * n);
  }
  #pragma np parallel for reduction(+:sum)
  for (int n = 0; n < NPOINTS; n++)
    sum += grad[n];
  float ave = sum / 150.0f;
  float var = 0.0f;
  float ep = 0.0f;
  #pragma np parallel for reduction(+:var,ep)
  for (int n = 0; n < NPOINTS; n++) {
    float d = grad[n] - ave;
    var += d * d;
    ep += d;
  }
  var = (var - ep * ep / 150.0f) / 149.0f;
  if (ave * ave / var > 0.5f) {
    gicov[tid] = ave / sqrtf(var);
  } else {
    gicov[tid] = 0.0f;
  }
}
)";

class LeBenchmark final : public Benchmark {
 public:
  explicit LeBenchmark(int pixels) : npix_(pixels) {}

  std::string name() const override { return "LE"; }
  std::string description() const override {
    return "GICOV score at " + std::to_string(npix_) +
           " pixels, 150-point local gradient array";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "le"; }
  Table1Row table1() const override { return {3, 150, "R"}; }

  np::Workload make_workload() const override {
    constexpr int kNPoints = 150;
    np::Workload w;
    auto& mem = *w.mem;
    auto Gx = mem.alloc(ir::ScalarType::kFloat,
                        static_cast<std::size_t>(npix_) * kNPoints);
    auto Gy = mem.alloc(ir::ScalarType::kFloat,
                        static_cast<std::size_t>(npix_) * kNPoints);
    auto Out = mem.alloc(ir::ScalarType::kFloat,
                         static_cast<std::size_t>(npix_));
    SplitMix64 rng(0x1e1e1e);
    fill_uniform(mem.buffer(Gx), rng, 0.5f, 1.5f);
    fill_uniform(mem.buffer(Gy), rng);

    std::vector<float> expect(static_cast<std::size_t>(npix_));
    {
      auto gx = mem.buffer(Gx).f32();
      auto gy = mem.buffer(Gy).f32();
      for (int t = 0; t < npix_; ++t) {
        float grad[kNPoints];
        float sum = 0.0f;
        for (int n = 0; n < kNPoints; ++n) {
          grad[n] = gx[static_cast<std::size_t>(n) * static_cast<std::size_t>(npix_) + static_cast<std::size_t>(t)] *
                        (1.5f + std::cos(0.0418879f * static_cast<float>(n))) +
                    gy[static_cast<std::size_t>(n) * static_cast<std::size_t>(npix_) + static_cast<std::size_t>(t)] *
                        std::sin(0.0418879f * static_cast<float>(n));
          sum += grad[n];
        }
        float ave = sum / 150.0f;
        float var = 0.0f;
        float ep = 0.0f;
        for (int n = 0; n < kNPoints; ++n) {
          float d = grad[n] - ave;
          var += d * d;
          ep += d;
        }
        var = (var - ep * ep / 150.0f) / 149.0f;
        expect[static_cast<std::size_t>(t)] =
            (ave * ave / var > 0.5f) ? ave / std::sqrt(var) : 0.0f;
      }
    }

    w.launch.grid = {npix_ / 32, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {Gx, Gy, Out, sim::Value::of_int(npix_)};
    w.validate = [Out, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(Out).f32(), expect, 5e-3, msg);
    };
    return w;
  }

 private:
  int npix_;
};

}  // namespace

std::unique_ptr<Benchmark> make_le(int pixels) {
  return std::make_unique<LeBenchmark>(pixels);
}

}  // namespace cudanp::kernels
