#include "kernels/reference_kernels.hpp"

#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

// ---------------------------------------------------------------- gemv-T
// CUBLAS's sgemv-T on a row-major matrix reads columns coalesced with one
// thread per output element, using larger thread blocks than the paper's
// 32-thread baseline — structurally the Fig. 2 kernel at library tuning.
// (Paper Sec. 5: "our baseline has similar performance to CUBLAS".)
constexpr const char* kTmvCublasSource = R"(
#define TB 128
__global__ void tmv_cublas(float* a, float* b, float* c, int w, int h) {
  int col = threadIdx.x + blockIdx.x * blockDim.x;
  float s = 0.0f;
  for (int i = 0; i < h; i++)
    s += a[i * w + col] * b[i];
  c[col] = s;
}
)";

class TmvCublasBenchmark final : public Benchmark {
 public:
  TmvCublasBenchmark(int width, int height) : w_(width), h_(height) {}
  std::string name() const override { return "TMV-CUBLAS"; }
  std::string description() const override {
    return "library-style gemv-T, block-per-column";
  }
  std::string source() const override { return kTmvCublasSource; }
  std::string kernel_name() const override { return "tmv_cublas"; }
  Table1Row table1() const override { return {0, 0, "X"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto A = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(w_) * h_);
    auto B = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(h_));
    auto C = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(w_));
    SplitMix64 rng(0x7a11f001);  // same inputs as the TMV benchmark
    fill_uniform(mem.buffer(A), rng);
    fill_uniform(mem.buffer(B), rng);
    std::vector<float> expect(static_cast<std::size_t>(w_));
    {
      auto a = mem.buffer(A).f32();
      auto b = mem.buffer(B).f32();
      for (int x = 0; x < w_; ++x) {
        float s = 0.0f;
        for (int i = 0; i < h_; ++i)
          s += a[static_cast<std::size_t>(i) * w_ + x] *
               b[static_cast<std::size_t>(i)];
        expect[static_cast<std::size_t>(x)] = s;
      }
    }
    w.launch.grid = {w_ / 128, 1, 1};
    w.launch.block = {128, 1, 1};
    w.launch.args = {A, B, C, sim::Value::of_int(w_), sim::Value::of_int(h_)};
    w.validate = [C, expect = std::move(expect)](const sim::DeviceMemory& m,
                                                 std::string* msg) {
      return approx_equal(m.buffer(C).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int w_;
  int h_;
};

// ---------------------------------------------------------------- gemv-N
// CUBLAS's sgemv-N on a column-major matrix: one thread per output row,
// coalesced column reads, 128-thread blocks, no shared-memory staging.
constexpr const char* kMvCublasSource = R"(
#define TB 128
__global__ void mv_cublas(float* a, float* b, float* c, int w, int h) {
  int row = threadIdx.x + blockIdx.x * blockDim.x;
  float s = 0.0f;
  for (int i = 0; i < w; i++)
    s += a[i * h + row] * b[i];
  c[row] = s;
}
)";

// ---------------------------------------------------------------- SMM MV
constexpr const char* kMvSmmSource = R"(
#define TILE 32
#define TB 256
__global__ void mv_smm(float* a, float* b, float* c, int w, int h) {
  __shared__ float bs[TILE];
  int row = threadIdx.x + blockIdx.x * blockDim.x;
  float sum = 0.0f;
  for (int t = 0; t < w / TILE; t++) {
    if (threadIdx.x < TILE) {
      bs[threadIdx.x] = b[t * TILE + threadIdx.x];
    }
    __syncthreads();
    for (int j = 0; j < TILE; j++)
      sum += a[(t * TILE + j) * h + row] * bs[j];
    __syncthreads();
  }
  c[row] = sum;
}
)";

class MvRefBenchmark final : public Benchmark {
 public:
  MvRefBenchmark(std::string name, std::string kernel, const char* src,
                 int block, bool grid_per_row, int width, int height)
      : name_(std::move(name)),
        kernel_(std::move(kernel)),
        src_(src),
        block_(block),
        grid_per_row_(grid_per_row),
        w_(width),
        h_(height) {}

  std::string name() const override { return name_; }
  std::string description() const override { return "MV comparator"; }
  std::string source() const override { return src_; }
  std::string kernel_name() const override { return kernel_; }
  Table1Row table1() const override { return {0, 0, "X"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto A = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(w_) * h_);
    auto B = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(w_));
    auto C = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(h_));
    SplitMix64 rng(0x37a20c2);  // same inputs as the MV benchmark
    fill_uniform(mem.buffer(A), rng);
    fill_uniform(mem.buffer(B), rng);
    std::vector<float> expect(static_cast<std::size_t>(h_));
    {
      auto a = mem.buffer(A).f32();
      auto b = mem.buffer(B).f32();
      for (int r = 0; r < h_; ++r) {
        float s = 0.0f;
        for (int j = 0; j < w_; ++j)
          s += a[static_cast<std::size_t>(j) * h_ + r] *
               b[static_cast<std::size_t>(j)];
        expect[static_cast<std::size_t>(r)] = s;
      }
    }
    w.launch.grid = {grid_per_row_ ? h_ : h_ / block_, 1, 1};
    w.launch.block = {block_, 1, 1};
    w.launch.args = {A, B, C, sim::Value::of_int(w_), sim::Value::of_int(h_)};
    w.validate = [C, expect = std::move(expect)](const sim::DeviceMemory& m,
                                                 std::string* msg) {
      return approx_equal(m.buffer(C).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  std::string name_;
  std::string kernel_;
  const char* src_;
  int block_;
  bool grid_per_row_;
  int w_;
  int h_;
};

// ---------------------------------------------------------------- copy
constexpr const char* kMemcopySource = R"(
__global__ void memcopy(float* dst, float* src, int n) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  dst[tid] = src[tid];
}
)";

class MemcopyBenchmark final : public Benchmark {
 public:
  explicit MemcopyBenchmark(int floats) : n_(floats) {}
  std::string name() const override { return "MEMCOPY"; }
  std::string description() const override {
    return "copy " + std::to_string(n_) + " floats";
  }
  std::string source() const override { return kMemcopySource; }
  std::string kernel_name() const override { return "memcopy"; }
  Table1Row table1() const override { return {0, 0, "X"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto D = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    auto S = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    SplitMix64 rng(0xc0b1);
    fill_uniform(mem.buffer(S), rng);
    std::vector<float> expect(mem.buffer(S).f32().begin(),
                              mem.buffer(S).f32().end());
    w.launch.grid = {n_ / 256, 1, 1};
    w.launch.block = {256, 1, 1};
    w.launch.args = {D, S, sim::Value::of_int(n_)};
    w.validate = [D, expect = std::move(expect)](const sim::DeviceMemory& m,
                                                 std::string* msg) {
      return approx_equal(m.buffer(D).f32(), expect, 0.0, msg);
    };
    return w;
  }

 private:
  int n_;
};

}  // namespace

std::unique_ptr<Benchmark> make_tmv_cublas(int width, int height) {
  return std::make_unique<TmvCublasBenchmark>(width, height);
}

std::unique_ptr<Benchmark> make_mv_cublas(int width, int height) {
  return std::make_unique<MvRefBenchmark>("MV-CUBLAS", "mv_cublas",
                                          kMvCublasSource, 128,
                                          /*grid_per_row=*/false, width,
                                          height);
}

std::unique_ptr<Benchmark> make_mv_smm(int width, int height) {
  return std::make_unique<MvRefBenchmark>("MV-SMM", "mv_smm", kMvSmmSource,
                                          256, /*grid_per_row=*/false, width,
                                          height);
}

std::unique_ptr<Benchmark> make_memcopy(int floats) {
  return std::make_unique<MemcopyBenchmark>(floats);
}

}  // namespace cudanp::kernels
