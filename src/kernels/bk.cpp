// BK: the bucket-count phase of Hybrid Sort's bucket sort. Each thread
// classifies a 32-element strip against 32 pivots held in shared memory
// (PL=2, LC=32, no reduction — the X row of Table 1): one loop assigns
// bucket ids by branchless binary search over the pivot table (as the
// original does), a second computes the within-bucket rank key used by
// the scatter phase. Elements are laid out grid-stride so the baseline
// is coalesced.
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define STRIP 32
#define NPIV 32
__global__ void bk(float* data, float* pivots, int* bucket, float* key,
                   int n) {
  __shared__ float piv[NPIV];
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  int nt = blockDim.x * gridDim.x;
  if (threadIdx.x < NPIV) {
    piv[threadIdx.x] = pivots[threadIdx.x];
  }
  __syncthreads();
  #pragma np parallel for
  for (int e = 0; e < STRIP; e++) {
    float v = data[e * nt + tid];
    int b = 0;
    if (piv[b + 15] <= v) { b += 16; }
    if (piv[b + 7] <= v) { b += 8; }
    if (piv[b + 3] <= v) { b += 4; }
    if (piv[b + 1] <= v) { b += 2; }
    if (piv[b] <= v) { b += 1; }
    if (piv[b] <= v) { b += 1; }
    bucket[e * nt + tid] = b;
  }
  #pragma np parallel for
  for (int e = 0; e < STRIP; e++) {
    int b = bucket[e * nt + tid];
    float lo = 0.0f;
    if (b > 0) {
      lo = piv[b - 1];
    }
    key[e * nt + tid] = data[e * nt + tid] - lo;
  }
}
)";

class BkBenchmark final : public Benchmark {
 public:
  explicit BkBenchmark(int elements) : n_(elements) {}

  std::string name() const override { return "BK"; }
  std::string description() const override {
    return "bucket classification of " + std::to_string(n_) +
           " elements against 32 pivots";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "bk"; }
  Table1Row table1() const override { return {2, 32, "X"}; }

  np::Workload make_workload() const override {
    constexpr int kStrip = 32;
    constexpr int kPiv = 32;
    const int nthreads = n_ / kStrip;
    np::Workload w;
    auto& mem = *w.mem;
    auto D = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    auto P = mem.alloc(ir::ScalarType::kFloat, kPiv);
    auto B = mem.alloc(ir::ScalarType::kInt, static_cast<std::size_t>(n_));
    auto K = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    SplitMix64 rng(0xb0c8e7);
    fill_uniform(mem.buffer(D), rng, 0.0f, 1.0f);
    {
      auto piv = mem.buffer(P).f32();
      for (int p = 0; p < kPiv; ++p)
        piv[static_cast<std::size_t>(p)] =
            static_cast<float>(p + 1) / (kPiv + 1);
    }

    std::vector<std::int32_t> expect_b(static_cast<std::size_t>(n_));
    std::vector<float> expect_k(static_cast<std::size_t>(n_));
    {
      auto d = mem.buffer(D).f32();
      auto piv = mem.buffer(P).f32();
      for (int i = 0; i < n_; ++i) {
        int b = 0;
        for (int p = 0; p < kPiv; ++p)
          if (piv[static_cast<std::size_t>(p)] <= d[static_cast<std::size_t>(i)]) ++b;
        expect_b[static_cast<std::size_t>(i)] = b;
        float lo = b > 0 ? piv[static_cast<std::size_t>(b - 1)] : 0.0f;
        expect_k[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] - lo;
      }
    }

    w.launch.grid = {nthreads / 64, 1, 1};
    w.launch.block = {64, 1, 1};
    w.launch.args = {D, P, B, K, sim::Value::of_int(n_)};
    w.validate = [B, K, expect_b = std::move(expect_b),
                  expect_k = std::move(expect_k)](const sim::DeviceMemory& m,
                                                  std::string* msg) {
      return exact_equal(m.buffer(B).i32(), expect_b, msg) &&
             approx_equal(m.buffer(K).f32(), expect_k, 1e-5, msg);
    };
    return w;
  }

 private:
  int n_;
};

}  // namespace

std::unique_ptr<Benchmark> make_bk(int elements) {
  return std::make_unique<BkBenchmark>(elements);
}

}  // namespace cudanp::kernels
