// TMV: transposed-matrix-vector multiplication (paper Fig. 2).
//
// Each thread produces one element of the output vector by a dot product
// of one matrix column with the input vector — the paper's canonical
// example of a parallel loop with a loop-carried reduction. Baseline TB
// is 32 threads so the NP transformation can expand up to 32 slaves.
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++)
    sum += a[i * w + tx] * b[i];
  c[tx] = sum;
}
)";

class TmvBenchmark final : public Benchmark {
 public:
  TmvBenchmark(int width, int height) : w_(width), h_(height) {}

  std::string name() const override { return "TMV"; }
  std::string description() const override {
    return "transposed matrix(" + std::to_string(h_) + "x" +
           std::to_string(w_) + ") * vector";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "tmv"; }
  Table1Row table1() const override { return {1, h_, "R"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto A = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(w_) * h_);
    auto B = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(h_));
    auto C = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(w_));
    SplitMix64 rng(0x7a11f001);
    fill_uniform(mem.buffer(A), rng);
    fill_uniform(mem.buffer(B), rng);

    // CPU reference (float accumulation, same element order).
    std::vector<float> expect(static_cast<std::size_t>(w_));
    {
      auto a = mem.buffer(A).f32();
      auto b = mem.buffer(B).f32();
      for (int x = 0; x < w_; ++x) {
        float s = 0.0f;
        for (int i = 0; i < h_; ++i)
          s += a[static_cast<std::size_t>(i) * w_ + x] * b[static_cast<std::size_t>(i)];
        expect[static_cast<std::size_t>(x)] = s;
      }
    }

    w.launch.grid = {w_ / 32, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {A, B, C, sim::Value::of_int(w_),
                     sim::Value::of_int(h_)};
    w.validate = [C, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(C).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int w_;
  int h_;
};

}  // namespace

std::unique_ptr<Benchmark> make_tmv(int width, int height) {
  return std::make_unique<TmvBenchmark>(width, height);
}

}  // namespace cudanp::kernels
