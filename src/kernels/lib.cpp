// LIB: LIBOR swaption pricing by Monte Carlo (the GPGPU-Sim benchmark).
// Each thread simulates one path over NMAT=80 maturities: per-maturity
// volatility and forward-rate updates (parallel loops over three local
// arrays, 960 B of local memory per thread in the baseline — Table 1),
// a running log-discount accumulation (the paper's scan case, S), and a
// payoff reduction.
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define NMAT 80
__global__ void lib(float* z, float* lambda, float* price, int npath) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float zi = z[tid];
  float vol[NMAT];
  float fwd[NMAT];
  float disc[NMAT];
  #pragma np parallel for
  for (int i = 0; i < NMAT; i++) {
    vol[i] = lambda[i] * (0.2f + 0.01f * sinf(0.08f * i));
  }
  #pragma np parallel for
  for (int i = 0; i < NMAT; i++) {
    fwd[i] = 0.05f * expf(vol[i] * zi - 0.125f * vol[i] * vol[i]);
  }
  float acc = 0.0f;
  #pragma np parallel for scan(+:acc)
  for (int i = 0; i < NMAT; i++) {
    acc += logf(1.0f + 0.25f * fwd[i]);
    disc[i] = expf(0.0f - acc);
  }
  float v = 0.0f;
  #pragma np parallel for reduction(+:v)
  for (int i = 0; i < NMAT; i++) {
    v += disc[i] * (fwd[i] - 0.045f) * 0.25f;
  }
  price[tid] = fmaxf(v, 0.0f) * 100.0f;
}
)";

constexpr int kNMat = 80;

class LibBenchmark final : public Benchmark {
 public:
  explicit LibBenchmark(int paths) : npath_(paths) {}

  std::string name() const override { return "LIB"; }
  std::string description() const override {
    return std::to_string(npath_) + " Monte-Carlo paths, 80 maturities, "
           "scan-based discounting";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "lib"; }
  Table1Row table1() const override { return {4, kNMat, "S"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto Z = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(npath_));
    auto L = mem.alloc(ir::ScalarType::kFloat, kNMat);
    auto P = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(npath_));
    SplitMix64 rng(0x11b0b);
    fill_uniform(mem.buffer(Z), rng, -2.0f, 2.0f);
    fill_uniform(mem.buffer(L), rng, 0.5f, 1.5f);

    std::vector<float> expect(static_cast<std::size_t>(npath_));
    {
      auto z = mem.buffer(Z).f32();
      auto lam = mem.buffer(L).f32();
      for (int t = 0; t < npath_; ++t) {
        float zi = z[static_cast<std::size_t>(t)];
        float vol[kNMat], fwd[kNMat], disc[kNMat];
        for (int i = 0; i < kNMat; ++i)
          vol[i] = lam[static_cast<std::size_t>(i)] *
                   (0.2f + 0.01f * std::sin(0.08f * static_cast<float>(i)));
        for (int i = 0; i < kNMat; ++i)
          fwd[i] = 0.05f * std::exp(vol[i] * zi - 0.125f * vol[i] * vol[i]);
        float acc = 0.0f;
        for (int i = 0; i < kNMat; ++i) {
          acc += std::log(1.0f + 0.25f * fwd[i]);
          disc[i] = std::exp(-acc);
        }
        float v = 0.0f;
        for (int i = 0; i < kNMat; ++i)
          v += disc[i] * (fwd[i] - 0.045f) * 0.25f;
        expect[static_cast<std::size_t>(t)] = std::max(v, 0.0f) * 100.0f;
      }
    }

    w.launch.grid = {npath_ / 64, 1, 1};
    w.launch.block = {64, 1, 1};
    w.launch.args = {Z, L, P, sim::Value::of_int(npath_)};
    w.validate = [P, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(P).f32(), expect, 5e-3, msg);
    };
    return w;
  }

 private:
  int npath_;
};

}  // namespace

std::unique_ptr<Benchmark> make_lib(int paths) {
  return std::make_unique<LibBenchmark>(paths);
}

}  // namespace cudanp::kernels
