// Shared helpers for benchmark workload construction and validation.
#pragma once

#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "np/workload.hpp"
#include "support/rng.hpp"

namespace cudanp::kernels {

/// Fills a float buffer with uniform values in [lo, hi) from `rng`.
inline void fill_uniform(sim::DeviceBuffer& buf, SplitMix64& rng,
                         float lo = -1.0f, float hi = 1.0f) {
  for (auto& x : buf.f32()) x = rng.next_float(lo, hi);
}

/// Element-wise comparison with relative tolerance; fills `msg` with the
/// first mismatch.
inline bool approx_equal(std::span<const float> got,
                         std::span<const float> want, double rel_tol,
                         std::string* msg) {
  if (got.size() != want.size()) {
    if (msg) *msg = "size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    double g = got[i];
    double w = want[i];
    double err = std::fabs(g - w) / std::max(1.0, std::fabs(w));
    if (!(err <= rel_tol) || std::isnan(g)) {
      if (msg) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "element %zu: got %.7g want %.7g (rel err %.3g)", i, g,
                      w, err);
        *msg = buf;
      }
      return false;
    }
  }
  return true;
}

inline bool exact_equal(std::span<const std::int32_t> got,
                        std::span<const std::int32_t> want,
                        std::string* msg) {
  if (got.size() != want.size()) {
    if (msg) *msg = "size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      if (msg)
        *msg = "element " + std::to_string(i) + ": got " +
               std::to_string(got[i]) + " want " + std::to_string(want[i]);
      return false;
    }
  }
  return true;
}

/// Rounds `v` down to a multiple of `m` (at least m).
inline int scaled(int v, double scale, int multiple = 32) {
  int s = static_cast<int>(v * scale);
  s = std::max(s - s % multiple, multiple);
  return s;
}

}  // namespace cudanp::kernels
