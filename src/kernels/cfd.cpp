// CFD: the flux-accumulation step of Rodinia's Euler solver. Each thread
// gathers its cell's 4 neighbors and accumulates density/momentum/energy
// fluxes — a 4-iteration parallel loop with four simultaneous sum
// reductions and heavy per-thread arithmetic (the register-pressure
// benchmark of Table 1). LC = 4 makes CFD the case where large slave
// counts stop paying off (Fig. 11).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
__global__ void cfd(float* density, float* momx, float* momy,
                    float* energy, int* nbr, float* flux, int ncells) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  float de = density[i];
  float mx = momx[i];
  float my = momy[i];
  float en = energy[i];
  float pres = 0.4f * (en - 0.5f * (mx * mx + my * my) / de);
  float fd = 0.0f;
  float fx = 0.0f;
  float fy = 0.0f;
  float fe = 0.0f;
  #pragma np parallel for reduction(+:fd,fx,fy,fe)
  for (int k = 0; k < 4; k++) {
    int nb = nbr[i * 4 + k];
    float dn = density[nb];
    float nx = momx[nb];
    float ny = momy[nb];
    float ne = energy[nb];
    float np = 0.4f * (ne - 0.5f * (nx * nx + ny * ny) / dn);
    float a = sqrtf(1.4f * (pres + np) / (de + dn));
    fd += 0.5f * a * (dn - de);
    fx += 0.5f * (a * (nx - mx) + (np - pres));
    fy += 0.5f * (a * (ny - my) + (np - pres));
    fe += 0.5f * a * (ne - en + np - pres);
  }
  flux[i * 4 + 0] = fd;
  flux[i * 4 + 1] = fx;
  flux[i * 4 + 2] = fy;
  flux[i * 4 + 3] = fe;
}
)";

class CfdBenchmark final : public Benchmark {
 public:
  explicit CfdBenchmark(int cells) : n_(cells) {}

  std::string name() const override { return "CFD"; }
  std::string description() const override {
    return "flux accumulation over 4 neighbors, " + std::to_string(n_) +
           " cells";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "cfd"; }
  Table1Row table1() const override { return {1, 4, "R"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    std::size_t n = static_cast<std::size_t>(n_);
    auto De = mem.alloc(ir::ScalarType::kFloat, n);
    auto Mx = mem.alloc(ir::ScalarType::kFloat, n);
    auto My = mem.alloc(ir::ScalarType::kFloat, n);
    auto En = mem.alloc(ir::ScalarType::kFloat, n);
    auto Nb = mem.alloc(ir::ScalarType::kInt, n * 4);
    auto Fl = mem.alloc(ir::ScalarType::kFloat, n * 4);
    SplitMix64 rng(0xcfdcfd);
    fill_uniform(mem.buffer(De), rng, 0.8f, 1.2f);
    fill_uniform(mem.buffer(Mx), rng, -0.3f, 0.3f);
    fill_uniform(mem.buffer(My), rng, -0.3f, 0.3f);
    fill_uniform(mem.buffer(En), rng, 2.0f, 3.0f);
    // Structured-mesh-like neighbor lists (wrap-around 1-D stencil of
    // radius 2), matching the irregular-gather pattern of the original.
    {
      auto nb = mem.buffer(Nb).i32();
      for (int i = 0; i < n_; ++i) {
        nb[static_cast<std::size_t>(i) * 4 + 0] = (i + 1) % n_;
        nb[static_cast<std::size_t>(i) * 4 + 1] = (i + n_ - 1) % n_;
        nb[static_cast<std::size_t>(i) * 4 + 2] = (i + 64) % n_;
        nb[static_cast<std::size_t>(i) * 4 + 3] = (i + n_ - 64) % n_;
      }
    }

    std::vector<float> expect(n * 4);
    {
      auto de = mem.buffer(De).f32();
      auto mx = mem.buffer(Mx).f32();
      auto my = mem.buffer(My).f32();
      auto en = mem.buffer(En).f32();
      auto nb = mem.buffer(Nb).i32();
      for (int i = 0; i < n_; ++i) {
        std::size_t ii = static_cast<std::size_t>(i);
        float pres =
            0.4f * (en[ii] - 0.5f * (mx[ii] * mx[ii] + my[ii] * my[ii]) /
                                 de[ii]);
        float fd = 0, fx = 0, fy = 0, fe = 0;
        for (int k = 0; k < 4; ++k) {
          std::size_t j = static_cast<std::size_t>(nb[ii * 4 + static_cast<std::size_t>(k)]);
          float np =
              0.4f * (en[j] - 0.5f * (mx[j] * mx[j] + my[j] * my[j]) / de[j]);
          float a = std::sqrt(1.4f * (pres + np) / (de[ii] + de[j]));
          fd += 0.5f * a * (de[j] - de[ii]);
          fx += 0.5f * (a * (mx[j] - mx[ii]) + (np - pres));
          fy += 0.5f * (a * (my[j] - my[ii]) + (np - pres));
          fe += 0.5f * a * (en[j] - en[ii] + np - pres);
        }
        expect[ii * 4 + 0] = fd;
        expect[ii * 4 + 1] = fx;
        expect[ii * 4 + 2] = fy;
        expect[ii * 4 + 3] = fe;
      }
    }

    w.launch.grid = {n_ / 128, 1, 1};
    w.launch.block = {128, 1, 1};
    w.launch.args = {De, Mx, My, En, Nb, Fl, sim::Value::of_int(n_)};
    w.validate = [Fl, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(Fl).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int n_;
};

}  // namespace

std::unique_ptr<Benchmark> make_cfd(int cells) {
  return std::make_unique<CfdBenchmark>(cells);
}

}  // namespace cudanp::kernels
