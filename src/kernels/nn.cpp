// NN: nearest neighbor (Rodinia). Each thread finds the closest record
// to its query point — a min-reduction over the record list (LC = 1K).
// Following the paper (Sec. 4), the baseline uses 32-thread blocks (the
// original Rodinia kernel used one thread per block; the paper's
// modified 32-thread version is 2.89x faster and is the baseline here).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
__global__ void nn(float* lat, float* lng, float* qlat, float* qlng,
                   float* dist, int nrec, int nq) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float qla = qlat[tid];
  float qlo = qlng[tid];
  float best = 3.0e38f;
  #pragma np parallel for reduction(min:best)
  for (int i = 0; i < nrec; i++) {
    float dla = lat[i] - qla;
    float dlo = lng[i] - qlo;
    float d = dla * dla + dlo * dlo;
    best = fminf(best, d);
  }
  dist[tid] = sqrtf(best);
}
)";

class NnBenchmark final : public Benchmark {
 public:
  NnBenchmark(int records, int queries) : nrec_(records), nq_(queries) {}

  std::string name() const override { return "NN"; }
  std::string description() const override {
    return std::to_string(nq_) + " queries over " + std::to_string(nrec_) +
           " records";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "nn"; }
  Table1Row table1() const override { return {1, nrec_, "R"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto Lat = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(nrec_));
    auto Lng = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(nrec_));
    auto QLat = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(nq_));
    auto QLng = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(nq_));
    auto Dist = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(nq_));
    SplitMix64 rng(0x4e4e4e);
    fill_uniform(mem.buffer(Lat), rng, 0.0f, 90.0f);
    fill_uniform(mem.buffer(Lng), rng, 0.0f, 180.0f);
    fill_uniform(mem.buffer(QLat), rng, 0.0f, 90.0f);
    fill_uniform(mem.buffer(QLng), rng, 0.0f, 180.0f);

    std::vector<float> expect(static_cast<std::size_t>(nq_));
    {
      auto lat = mem.buffer(Lat).f32();
      auto lng = mem.buffer(Lng).f32();
      auto qlat = mem.buffer(QLat).f32();
      auto qlng = mem.buffer(QLng).f32();
      for (int q = 0; q < nq_; ++q) {
        float best = 3.0e38f;
        for (int i = 0; i < nrec_; ++i) {
          float dla = lat[static_cast<std::size_t>(i)] - qlat[static_cast<std::size_t>(q)];
          float dlo = lng[static_cast<std::size_t>(i)] - qlng[static_cast<std::size_t>(q)];
          best = std::min(best, dla * dla + dlo * dlo);
        }
        expect[static_cast<std::size_t>(q)] = std::sqrt(best);
      }
    }

    w.launch.grid = {nq_ / 32, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {Lat, Lng,
                     QLat, QLng,
                     Dist, sim::Value::of_int(nrec_),
                     sim::Value::of_int(nq_)};
    w.validate = [Dist, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(Dist).f32(), expect, 1e-4, msg);
    };
    return w;
  }

 private:
  int nrec_;
  int nq_;
};

}  // namespace

std::unique_ptr<Benchmark> make_nn(int records, int queries) {
  return std::make_unique<NnBenchmark>(records, queries);
}

}  // namespace cudanp::kernels
