// MV: matrix-vector multiplication, shared-memory-tiled baseline after
// [42] (Yang et al., PACT'12). One thread per output row; the matrix is
// stored column-major so a warp's row accesses are fully coalesced (the
// paper's baselines are "already optimized"); the input vector is staged
// tile-by-tile through shared memory, and the per-tile dot product is
// the annotated parallel loop (LC = tile = 32, matching Table 1's MV
// row). Intra-warp NP *breaks* this coalescing (Sec. 3.4 trade-off).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define TILE 32
__global__ void mv(float* a, float* b, float* c, int w, int h) {
  __shared__ float bs[TILE];
  int row = threadIdx.x + blockIdx.x * blockDim.x;
  float sum = 0.0f;
  for (int t = 0; t < w / TILE; t++) {
    bs[threadIdx.x] = b[t * TILE + threadIdx.x];
    __syncthreads();
    #pragma np parallel for reduction(+:sum)
    for (int j = 0; j < TILE; j++)
      sum += a[(t * TILE + j) * h + row] * bs[j];
    __syncthreads();
  }
  c[row] = sum;
}
)";

class MvBenchmark final : public Benchmark {
 public:
  MvBenchmark(int width, int height) : w_(width), h_(height) {}

  std::string name() const override { return "MV"; }
  std::string description() const override {
    return "matrix(" + std::to_string(h_) + "x" + std::to_string(w_) +
           ") * vector, smem tiled";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "mv"; }
  Table1Row table1() const override { return {1, 32, "R"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto A = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(w_) * h_);
    auto B = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(w_));
    auto C = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(h_));
    SplitMix64 rng(0x37a20c2);
    fill_uniform(mem.buffer(A), rng);
    fill_uniform(mem.buffer(B), rng);

    std::vector<float> expect(static_cast<std::size_t>(h_));
    {
      auto a = mem.buffer(A).f32();
      auto b = mem.buffer(B).f32();
      for (int r = 0; r < h_; ++r) {
        float s = 0.0f;
        for (int j = 0; j < w_; ++j)
          s += a[static_cast<std::size_t>(j) * h_ + r] * b[static_cast<std::size_t>(j)];
        expect[static_cast<std::size_t>(r)] = s;
      }
    }

    w.launch.grid = {h_ / 32, 1, 1};
    w.launch.block = {32, 1, 1};
    w.launch.args = {A, B, C, sim::Value::of_int(w_),
                     sim::Value::of_int(h_)};
    w.validate = [C, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(C).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int w_;
  int h_;
};

}  // namespace

std::unique_ptr<Benchmark> make_mv(int width, int height) {
  return std::make_unique<MvBenchmark>(width, height);
}

}  // namespace cudanp::kernels
