// SS: streamcluster's distance kernel (Rodinia). Each thread evaluates
// the cost of reassigning its point to two candidate centers: two
// dimension-loop reductions (PL=2) over a center tile staged in shared
// memory (the baseline's shared-memory pressure in Table 1).
#include "kernels/benchmark.hpp"
#include "kernels/workload_utils.hpp"

namespace cudanp::kernels {

namespace {

constexpr const char* kSource = R"(
#define TILE 128
__global__ void ss(float* pts, float* c1, float* c2, float* wt,
                   float* cost, int dim, int n) {
  __shared__ float s1[TILE];
  __shared__ float s2[TILE];
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  float d1 = 0.0f;
  float d2 = 0.0f;
  for (int t = 0; t < dim / TILE; t++) {
    s1[threadIdx.x] = c1[t * TILE + threadIdx.x];
    s2[threadIdx.x] = c2[t * TILE + threadIdx.x];
    __syncthreads();
    #pragma np parallel for reduction(+:d1)
    for (int j = 0; j < TILE; j++) {
      float u = pts[tid * dim + t * TILE + j] - s1[j];
      d1 += u * u;
    }
    #pragma np parallel for reduction(+:d2)
    for (int j = 0; j < TILE; j++) {
      float u = pts[tid * dim + t * TILE + j] - s2[j];
      d2 += u * u;
    }
    __syncthreads();
  }
  cost[tid] = fminf(d1, d2) * wt[tid];
}
)";

class SsBenchmark final : public Benchmark {
 public:
  SsBenchmark(int dim, int points) : dim_(dim), n_(points) {}

  std::string name() const override { return "SS"; }
  std::string description() const override {
    return std::to_string(n_) + " points, DIM=" + std::to_string(dim_) +
           " two-center assignment cost";
  }
  std::string source() const override { return kSource; }
  std::string kernel_name() const override { return "ss"; }
  Table1Row table1() const override { return {2, dim_, "R"}; }

  np::Workload make_workload() const override {
    np::Workload w;
    auto& mem = *w.mem;
    auto P = mem.alloc(ir::ScalarType::kFloat,
                       static_cast<std::size_t>(n_) * dim_);
    auto C1 = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(dim_));
    auto C2 = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(dim_));
    auto Wt = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    auto Cost = mem.alloc(ir::ScalarType::kFloat, static_cast<std::size_t>(n_));
    SplitMix64 rng(0x55cc55);
    fill_uniform(mem.buffer(P), rng);
    fill_uniform(mem.buffer(C1), rng);
    fill_uniform(mem.buffer(C2), rng);
    fill_uniform(mem.buffer(Wt), rng, 0.5f, 2.0f);

    std::vector<float> expect(static_cast<std::size_t>(n_));
    {
      auto p = mem.buffer(P).f32();
      auto c1 = mem.buffer(C1).f32();
      auto c2 = mem.buffer(C2).f32();
      auto wt = mem.buffer(Wt).f32();
      for (int i = 0; i < n_; ++i) {
        float d1 = 0.0f;
        float d2 = 0.0f;
        for (int j = 0; j < dim_; ++j) {
          float x = p[static_cast<std::size_t>(i) * dim_ + j];
          float u1 = x - c1[static_cast<std::size_t>(j)];
          float u2 = x - c2[static_cast<std::size_t>(j)];
          d1 += u1 * u1;
          d2 += u2 * u2;
        }
        expect[static_cast<std::size_t>(i)] =
            std::min(d1, d2) * wt[static_cast<std::size_t>(i)];
      }
    }

    w.launch.grid = {n_ / 128, 1, 1};
    w.launch.block = {128, 1, 1};
    w.launch.args = {P, C1, C2, Wt, Cost, sim::Value::of_int(dim_),
                     sim::Value::of_int(n_)};
    w.validate = [Cost, expect = std::move(expect)](
                     const sim::DeviceMemory& m, std::string* msg) {
      return approx_equal(m.buffer(Cost).f32(), expect, 2e-3, msg);
    };
    return w;
  }

 private:
  int dim_;
  int n_;
};

}  // namespace

std::unique_ptr<Benchmark> make_ss(int dim, int points) {
  return std::make_unique<SsBenchmark>(dim, points);
}

}  // namespace cudanp::kernels
